#include "sim/inline_callback.hpp"

#include <gtest/gtest.h>

#include <array>
#include <functional>
#include <memory>
#include <type_traits>
#include <utility>

namespace bicord::sim {
namespace {

// The queue's no-silent-copy guarantee is a property of the type itself:
// if InlineCallback ever becomes copyable, pop()/heap rebuilds could quietly
// duplicate captured state again. Lock it down at compile time.
static_assert(!std::is_copy_constructible_v<InlineCallback>);
static_assert(!std::is_copy_assignable_v<InlineCallback>);
static_assert(std::is_nothrow_move_constructible_v<InlineCallback>);
static_assert(std::is_nothrow_move_assignable_v<InlineCallback>);
static_assert(std::is_nothrow_destructible_v<InlineCallback>);

TEST(InlineCallbackTest, InvokesSmallLambdaWithoutHeapAllocation) {
  const std::uint64_t before = InlineCallback::heap_allocation_count();
  int hits = 0;
  InlineCallback cb([&hits] { ++hits; });
  cb();
  cb();
  EXPECT_EQ(hits, 2);
  EXPECT_EQ(InlineCallback::heap_allocation_count(), before);
}

TEST(InlineCallbackTest, CaptureAtInlineLimitStaysInline) {
  const std::uint64_t before = InlineCallback::heap_allocation_count();
  std::array<char, InlineCallback::kInlineSize - sizeof(int*)> payload{};
  payload[0] = 42;
  int out = 0;
  InlineCallback cb([payload, &out] { out = payload[0]; });
  cb();
  EXPECT_EQ(out, 42);
  EXPECT_EQ(InlineCallback::heap_allocation_count(), before);
}

TEST(InlineCallbackTest, OversizedCaptureFallsBackToOneCountedAllocation) {
  const std::uint64_t before = InlineCallback::heap_allocation_count();
  std::array<char, InlineCallback::kInlineSize + 1> big{};
  big[7] = 9;
  int out = 0;
  InlineCallback cb([big, &out] { out = big[7]; });
  EXPECT_EQ(InlineCallback::heap_allocation_count(), before + 1);
  // Moving the wrapper moves the owning pointer, never reallocates.
  InlineCallback moved(std::move(cb));
  moved();
  EXPECT_EQ(out, 9);
  EXPECT_EQ(InlineCallback::heap_allocation_count(), before + 1);
}

TEST(InlineCallbackTest, HoldsMoveOnlyCapture) {
  auto box = std::make_unique<int>(31);
  int out = 0;
  InlineCallback cb([box = std::move(box), &out] { out = *box; });
  InlineCallback moved(std::move(cb));
  EXPECT_FALSE(static_cast<bool>(cb));  // NOLINT(bugprone-use-after-move)
  EXPECT_TRUE(static_cast<bool>(moved));
  moved();
  EXPECT_EQ(out, 31);
}

TEST(InlineCallbackTest, MoveAssignDestroysPreviousTarget) {
  int destroyed = 0;
  struct Probe {
    int* destroyed;
    ~Probe() {
      if (destroyed != nullptr) ++*destroyed;
    }
    Probe(int* d) : destroyed(d) {}
    Probe(Probe&& o) noexcept : destroyed(std::exchange(o.destroyed, nullptr)) {}
  };
  {
    InlineCallback a([p = Probe(&destroyed)] { static_cast<void>(p); });
    InlineCallback b([] {});
    a = std::move(b);
    EXPECT_EQ(destroyed, 1);  // the Probe capture died on assignment
    EXPECT_TRUE(static_cast<bool>(a));
    EXPECT_FALSE(static_cast<bool>(b));  // NOLINT(bugprone-use-after-move)
    a();
  }
  EXPECT_EQ(destroyed, 1);
}

TEST(InlineCallbackTest, ResetReleasesCaptureEagerly) {
  auto token = std::make_shared<int>(5);
  std::weak_ptr<int> watch = token;
  InlineCallback cb([t = std::move(token)] { static_cast<void>(t); });
  EXPECT_FALSE(watch.expired());
  cb.reset();
  EXPECT_TRUE(watch.expired());
  EXPECT_FALSE(static_cast<bool>(cb));
}

TEST(InlineCallbackTest, EmptyStdFunctionYieldsNullWrapper) {
  InlineCallback from_empty(std::function<void()>{});
  EXPECT_FALSE(static_cast<bool>(from_empty));
  InlineCallback from_null(nullptr);
  EXPECT_FALSE(static_cast<bool>(from_null));
  InlineCallback from_live(std::function<void()>([] {}));
  EXPECT_TRUE(static_cast<bool>(from_live));
}

}  // namespace
}  // namespace bicord::sim
