// Tests for sim::WorkerPool and sim::ParallelDispatcher, plus the phased
// medium fan-out they enable.
//
// The contract under test is bitwise determinism: for any thread count, the
// dispatcher's merge and the medium's absorb/react split must reproduce the
// serial execution exactly — same event order, same RNG draws, same floating-
// point bits. Each suite runs the same randomized script serially and with a
// pool and compares the full observable record, including a shard-boundary
// teleport stress where nodes hop between shard stripes mid-flight.

#include "sim/parallel_dispatch.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <cstdint>
#include <cstring>
#include <memory>
#include <stdexcept>
#include <string>
#include <vector>

#include "phy/medium.hpp"
#include "phy/radio.hpp"
#include "phy/shard_map.hpp"
#include "phy/spectrum.hpp"
#include "sim/simulator.hpp"
#include "util/rng.hpp"
#include "util/time.hpp"

namespace bicord {
namespace {

using namespace bicord::time_literals;
using sim::ParallelDispatcher;
using sim::WorkerPool;

std::uint64_t bits(double v) {
  std::uint64_t b = 0;
  std::memcpy(&b, &v, sizeof(b));
  return b;
}

// --- WorkerPool -------------------------------------------------------------

TEST(WorkerPoolTest, RunsEveryIndexExactlyOnce) {
  WorkerPool pool(4);
  EXPECT_EQ(pool.threads(), 4);
  std::vector<std::atomic<int>> hits(1000);
  pool.parallel_for(hits.size(), [&](std::size_t i) { hits[i].fetch_add(1); });
  for (std::size_t i = 0; i < hits.size(); ++i) {
    EXPECT_EQ(hits[i].load(), 1) << "index " << i;
  }
}

TEST(WorkerPoolTest, SingleThreadRunsInline) {
  WorkerPool pool(1);
  int count = 0;  // no atomics needed: everything runs on the caller
  pool.parallel_for(64, [&](std::size_t) { ++count; });
  EXPECT_EQ(count, 64);
}

TEST(WorkerPoolTest, ReusableAcrossBatches) {
  WorkerPool pool(3);
  std::atomic<int> total{0};
  for (int batch = 0; batch < 20; ++batch) {
    pool.parallel_for(50, [&](std::size_t) { total.fetch_add(1); });
  }
  EXPECT_EQ(total.load(), 20 * 50);
}

TEST(WorkerPoolTest, EmptyBatchReturnsImmediately) {
  WorkerPool pool(2);
  pool.parallel_for(0, [&](std::size_t) { FAIL() << "no indices to run"; });
}

TEST(WorkerPoolTest, LowestIndexExceptionWinsDeterministically) {
  WorkerPool pool(4);
  for (int round = 0; round < 10; ++round) {
    try {
      pool.parallel_for(100, [&](std::size_t i) {
        if (i % 7 == 3) {  // throwers: 3, 10, 17, ...
          throw std::runtime_error("boom at " + std::to_string(i));
        }
      });
      FAIL() << "expected an exception";
    } catch (const std::runtime_error& e) {
      EXPECT_STREQ(e.what(), "boom at 3");  // lowest index, every round
    }
  }
  // The pool survives a throwing batch.
  std::atomic<int> ok{0};
  pool.parallel_for(10, [&](std::size_t) { ok.fetch_add(1); });
  EXPECT_EQ(ok.load(), 10);
}

// --- ParallelDispatcher: semantics -----------------------------------------

TEST(ParallelDispatcherTest, LaneEventsRunInTimeOrder) {
  sim::Simulator sim;
  ParallelDispatcher::Config cfg;
  cfg.shards = 1;
  ParallelDispatcher d(sim, nullptr, cfg);
  std::vector<std::int64_t> times;
  d.at(0, TimePoint::from_us(500), [&] { times.push_back(d.shard_now().us()); });
  d.at(0, TimePoint::from_us(100), [&] { times.push_back(d.shard_now().us()); });
  d.at(0, TimePoint::from_us(300), [&] { times.push_back(d.shard_now().us()); });
  d.run_for(1_ms);
  EXPECT_EQ(times, (std::vector<std::int64_t>{100, 300, 500}));
  EXPECT_EQ(sim.now().us(), 1000);
  EXPECT_TRUE(d.lanes_idle());
}

TEST(ParallelDispatcherTest, BarrierRunsBeforeLaneAtEqualTime) {
  sim::Simulator sim;
  ParallelDispatcher::Config cfg;
  cfg.shards = 2;
  ParallelDispatcher d(sim, nullptr, cfg);
  std::vector<std::string> order;
  d.at(0, TimePoint::from_us(200), [&] { order.push_back("lane"); });
  d.at_barrier(TimePoint::from_us(200), [&] { order.push_back("barrier"); });
  d.run_for(1_ms);
  EXPECT_EQ(order, (std::vector<std::string>{"barrier", "lane"}));
}

TEST(ParallelDispatcherTest, CurrentShardTracksLaneContext) {
  sim::Simulator sim;
  ParallelDispatcher::Config cfg;
  cfg.shards = 3;
  ParallelDispatcher d(sim, nullptr, cfg);
  EXPECT_EQ(d.current_shard(), ParallelDispatcher::kBarrierShard);
  std::vector<int> seen;
  for (int s = 0; s < 3; ++s) {
    d.at(s, TimePoint::from_us(100 + s), [&, s] {
      EXPECT_EQ(d.current_shard(), s);
      seen.push_back(d.current_shard());
    });
  }
  d.at_barrier(TimePoint::from_us(50), [&] {
    EXPECT_EQ(d.current_shard(), ParallelDispatcher::kBarrierShard);
  });
  d.run_for(1_ms);
  EXPECT_EQ(seen.size(), 3u);
  EXPECT_EQ(d.current_shard(), ParallelDispatcher::kBarrierShard);
}

TEST(ParallelDispatcherTest, SameShardSendFiresWithinWindow) {
  sim::Simulator sim;
  ParallelDispatcher::Config cfg;
  cfg.shards = 2;
  cfg.lookahead = Duration::from_us(1000);
  ParallelDispatcher d(sim, nullptr, cfg);
  std::vector<std::int64_t> times;
  d.at(0, TimePoint::from_us(100), [&] {
    times.push_back(d.shard_now().us());
    // Same-shard, 1us ahead: applies immediately, still inside the window.
    d.after(0, 1_us, [&] { times.push_back(d.shard_now().us()); });
  });
  d.run_for(1_ms);
  EXPECT_EQ(times, (std::vector<std::int64_t>{100, 101}));
  const auto st = d.stats();
  EXPECT_EQ(st.sharded_events, 2u);
  EXPECT_EQ(st.deferred_events, 0u);
  EXPECT_GE(st.windows, 1u);
}

TEST(ParallelDispatcherTest, CrossShardSendDefersToWindowEdge) {
  sim::Simulator sim;
  ParallelDispatcher::Config cfg;
  cfg.shards = 2;
  cfg.lookahead = Duration::from_us(50);
  ParallelDispatcher d(sim, nullptr, cfg);
  std::vector<std::string> log;
  d.at(0, TimePoint::from_us(100), [&] {
    // Cross-shard: must respect the lookahead (>= window bound).
    d.at(1, TimePoint::from_us(200), [&] {
      log.push_back("shard1@" + std::to_string(d.shard_now().us()));
    });
  });
  d.run_for(1_ms);
  EXPECT_EQ(log, (std::vector<std::string>{"shard1@200"}));
  EXPECT_EQ(d.stats().deferred_events, 1u);
  EXPECT_EQ(d.stats().sharded_events, 2u);
}

TEST(ParallelDispatcherTest, LookaheadViolationThrowsAtCommit) {
  sim::Simulator sim;
  ParallelDispatcher::Config cfg;
  cfg.shards = 2;
  cfg.lookahead = Duration::from_us(100);
  ParallelDispatcher d(sim, nullptr, cfg);
  d.at(0, TimePoint::from_us(100), [&] {
    // 1us ahead on ANOTHER shard: inside the active window — a conservative-
    // lookahead violation the commit step must refuse.
    d.at(1, TimePoint::from_us(101), [] {});
  });
  EXPECT_THROW(d.run_for(1_ms), std::logic_error);
}

TEST(ParallelDispatcherTest, BarrierSendFromLaneDefers) {
  sim::Simulator sim;
  ParallelDispatcher::Config cfg;
  cfg.shards = 2;
  cfg.lookahead = Duration::from_us(50);
  ParallelDispatcher d(sim, nullptr, cfg);
  std::vector<std::string> order;
  d.at(1, TimePoint::from_us(100), [&] {
    d.at_barrier(TimePoint::from_us(500), [&] { order.push_back("barrier"); });
  });
  d.at(1, TimePoint::from_us(500), [&] { order.push_back("lane"); });
  d.run_for(1_ms);
  // The deferred barrier event still beats the equal-timestamp lane event.
  EXPECT_EQ(order, (std::vector<std::string>{"barrier", "lane"}));
  EXPECT_EQ(d.stats().deferred_events, 1u);
}

// --- ParallelDispatcher: bitwise determinism across thread counts -----------

/// One shard's record: every event appends (shard, lane time, rng draw).
/// Concatenated per shard (not globally), the record is exactly comparable
/// across runs regardless of worker interleaving.
struct ShardLog {
  std::vector<std::uint64_t> entries;
};

/// Random event web: each shard runs a self-rescheduling chain with its own
/// Rng stream; every few hops it pings a neighbor shard (cross-shard defer)
/// or the barrier queue. Returns the per-shard logs plus the barrier log.
std::vector<ShardLog> run_web(int shards, WorkerPool* pool, std::uint64_t seed,
                              std::uint64_t* barrier_hash) {
  sim::Simulator sim(seed);
  ParallelDispatcher::Config cfg;
  cfg.shards = shards;
  cfg.lookahead = Duration::from_us(40);
  ParallelDispatcher d(sim, pool, cfg);
  std::vector<ShardLog> logs(static_cast<std::size_t>(shards));
  std::vector<Rng> rngs;
  for (int s = 0; s < shards; ++s) rngs.push_back(Rng(seed).split(static_cast<std::uint64_t>(s)));
  std::uint64_t bh = 0;

  // `chain` hops self-reschedule until the time horizon; pinged peer hops are
  // one-shot, so the event population stays bounded.
  std::function<void(int, bool)> hop = [&](int s, bool chain) {
    auto& rng = rngs[static_cast<std::size_t>(s)];
    const auto draw = static_cast<std::uint64_t>(rng.uniform_int(0, 1 << 20));
    auto& log = logs[static_cast<std::size_t>(s)];
    log.entries.push_back(static_cast<std::uint64_t>(d.shard_now().us()));
    log.entries.push_back(draw);
    if (draw % 5 == 0) {
      const int peer = (s + 1) % shards;
      d.at(peer, d.shard_now() + cfg.lookahead + Duration::from_us(1 + draw % 30),
           [&, peer] { hop(peer, false); });
    } else if (draw % 11 == 0) {
      d.at_barrier(d.shard_now() + Duration::from_us(60),
                   [&, s] { bh = bh * 1315423911u + static_cast<std::uint64_t>(s); });
    }
    if (chain && d.shard_now() < TimePoint::from_us(30000)) {
      d.after(s, Duration::from_us(5 + draw % 25), [&, s] { hop(s, true); });
    }
  };
  for (int s = 0; s < shards; ++s) {
    d.at(s, TimePoint::from_us(10 + s), [&, s] { hop(s, true); });
  }
  d.run_for(40_ms);
  EXPECT_TRUE(d.lanes_idle());
  EXPECT_GT(d.stats().sharded_events, 1000u);
  EXPECT_GT(d.stats().deferred_events, 10u);
  *barrier_hash = bh;
  return logs;
}

TEST(ParallelDispatcherTest, EventWebBitwiseIdenticalAcrossThreadCounts) {
  for (const std::uint64_t seed : {1ull, 7ull, 23ull}) {
    std::uint64_t h_serial = 0;
    const auto serial = run_web(4, nullptr, seed, &h_serial);
    for (const int threads : {2, 4, 8}) {
      WorkerPool pool(threads);
      std::uint64_t h_par = 0;
      const auto par = run_web(4, &pool, seed, &h_par);
      ASSERT_EQ(serial.size(), par.size());
      for (std::size_t s = 0; s < serial.size(); ++s) {
        EXPECT_EQ(serial[s].entries, par[s].entries)
            << "seed " << seed << " threads " << threads << " shard " << s;
      }
      EXPECT_EQ(h_serial, h_par) << "seed " << seed << " threads " << threads;
    }
  }
}

// --- Phased medium fan-out: pool-attached Medium vs serial Medium -----------

/// Per-radio observable record — every reception outcome, bit-exact.
struct RxLog {
  std::vector<std::uint64_t> entries;
};

struct RadioWorld {
  explicit RadioWorld(std::uint64_t seed) : sim(seed) {}

  sim::Simulator sim;
  std::unique_ptr<phy::Medium> medium;
  std::unique_ptr<WorkerPool> pool;
  std::vector<std::unique_ptr<phy::Radio>> radios;
  std::vector<RxLog> logs;

  void build(const std::vector<phy::Position>& sites, int threads) {
    phy::PathLossModel pl;
    pl.exponent = 3.0;
    phy::MediumTuning tuning;
    tuning.spatial_index = true;
    // Small explicit cells: the shard planner stripes by cell column, and the
    // default derived cell (interference radius / 3) would swallow the whole
    // field into a single unsplittable column.
    tuning.cell_size_m = 10.0;
    medium = std::make_unique<phy::Medium>(sim, pl, tuning);
    if (threads > 1) {
      pool = std::make_unique<WorkerPool>(threads);
      medium->set_worker_pool(pool.get());
    }
    logs.resize(sites.size());
    for (std::size_t i = 0; i < sites.size(); ++i) {
      medium->add_node("n" + std::to_string(i), sites[i]);
      phy::Radio::Config rc;
      rc.tech = phy::Technology::WiFi;
      rc.band = phy::wifi_channel(6);
      auto radio = std::make_unique<phy::Radio>(
          *medium, static_cast<phy::NodeId>(i), rc);
      radio->set_rx_callback([this, i](const phy::RxResult& rx) {
        auto& log = logs[i].entries;
        log.push_back(static_cast<std::uint64_t>(rx.frame.src));
        log.push_back(rx.success ? 1u : 0u);
        log.push_back(bits(rx.rssi_dbm));
        log.push_back(bits(rx.min_sinr_db));
      });
      radios.push_back(std::move(radio));
    }
  }

  ~RadioWorld() {
    if (medium) medium->set_worker_pool(nullptr);
  }
};

/// Drives one world through a deterministic traffic-and-teleport script.
/// `teleport` hops nodes across the whole field (crossing shard stripes)
/// while transmissions are in flight.
void drive(RadioWorld& w, const std::vector<phy::Position>& sites,
           std::uint64_t seed, bool teleport) {
  Rng rng(seed * 131 + 5);
  const auto n = static_cast<std::int64_t>(sites.size());
  for (int step = 0; step < 400; ++step) {
    const double roll = rng.uniform();
    if (roll < 0.55) {
      const auto src = static_cast<phy::NodeId>(rng.uniform_int(0, n - 1));
      const auto dur = Duration::from_us(rng.uniform_int(60, 900));
      w.sim.after(Duration::from_us(rng.uniform_int(1, 40)), [&w, src, dur] {
        if (!w.radios[src]->transmitting()) {
          phy::Frame f;
          f.tech = phy::Technology::WiFi;
          f.src = src;
          w.radios[src]->transmit(f, 14.0, dur);
        }
      });
    } else if (teleport && roll < 0.75) {
      // Teleport: jump to (a jittered copy of) any site in the field —
      // routinely crossing the shard stripes plan_shards would draw.
      const auto m = static_cast<phy::NodeId>(rng.uniform_int(0, n - 1));
      phy::Position pos = sites[static_cast<std::size_t>(rng.uniform_int(0, n - 1))];
      pos.x += rng.normal(0.0, 3.0);
      pos.y += rng.normal(0.0, 3.0);
      w.sim.after(Duration::from_us(rng.uniform_int(1, 40)),
                  [&w, m, pos] { w.medium->set_position(m, pos); });
    }
    w.sim.run_for(Duration::from_us(rng.uniform_int(30, 400)));
  }
  w.sim.run_for(5_ms);  // drain in-flight transmissions
}

void expect_worlds_equal(const RadioWorld& serial, const RadioWorld& par,
                         const std::string& label) {
  ASSERT_EQ(serial.radios.size(), par.radios.size());
  std::uint64_t receptions = 0;
  for (std::size_t i = 0; i < serial.radios.size(); ++i) {
    EXPECT_EQ(serial.radios[i]->frames_sent(), par.radios[i]->frames_sent())
        << label << " node " << i;
    EXPECT_EQ(serial.radios[i]->frames_received(), par.radios[i]->frames_received())
        << label << " node " << i;
    EXPECT_EQ(serial.radios[i]->frames_corrupted(), par.radios[i]->frames_corrupted())
        << label << " node " << i;
    EXPECT_EQ(serial.logs[i].entries, par.logs[i].entries) << label << " node " << i;
    EXPECT_EQ(bits(serial.radios[i]->energy_dbm()), bits(par.radios[i]->energy_dbm()))
        << label << " node " << i;
    receptions += serial.radios[i]->frames_received();
  }
  EXPECT_GT(receptions, 50u) << label << ": script produced too little traffic";
  EXPECT_EQ(serial.medium->airtime(phy::Technology::WiFi).us(),
            par.medium->airtime(phy::Technology::WiFi).us());
}

std::vector<phy::Position> grid_sites(std::size_t n, double area_m,
                                      std::uint64_t seed) {
  Rng rng(seed);
  std::vector<phy::Position> sites;
  sites.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    sites.push_back({rng.uniform() * area_m, rng.uniform() * area_m});
  }
  return sites;
}

TEST(PhasedFanoutTest, PoolAttachedMediumBitwiseEqualsSerial) {
  for (const std::uint64_t seed : {3ull, 17ull}) {
    const auto sites = grid_sites(40, 120.0, seed);
    RadioWorld serial(seed);
    serial.build(sites, 1);
    drive(serial, sites, seed, /*teleport=*/false);
    for (const int threads : {2, 8}) {
      RadioWorld par(seed);
      par.build(sites, threads);
      drive(par, sites, seed, /*teleport=*/false);
      expect_worlds_equal(serial, par,
                          "seed " + std::to_string(seed) + " threads " +
                              std::to_string(threads));
    }
  }
}

TEST(PhasedFanoutTest, ShardBoundaryTeleportStressStaysBitwise) {
  // Nodes teleport across the field (and so across any shard stripes) while
  // frames are in flight; the phased fan-out must not notice. The shard plan
  // is recomputed each hop to pin that the planner itself is deterministic
  // and keeps classifying the coupled field as barrier-bound.
  const std::uint64_t seed = 29;
  const auto sites = grid_sites(48, 150.0, seed);
  RadioWorld serial(seed);
  serial.build(sites, 1);
  drive(serial, sites, seed, /*teleport=*/true);
  RadioWorld par(seed);
  par.build(sites, 8);
  drive(par, sites, seed, /*teleport=*/true);
  expect_worlds_equal(serial, par, "teleport stress");

  const auto plan_a = phy::plan_shards(*serial.medium, 8, Duration::from_us(10));
  const auto plan_b = phy::plan_shards(*par.medium, 8, Duration::from_us(10));
  EXPECT_EQ(plan_a.node_shard, plan_b.node_shard);
  EXPECT_EQ(plan_a.cross_shard_pairs, plan_b.cross_shard_pairs);
  EXPECT_EQ(plan_a.lookahead.us(), plan_b.lookahead.us());
  // A 150m field with 48 Wi-Fi radios is one coupled cell: the plan must
  // classify every medium event as barrier-class.
  EXPECT_TRUE(plan_a.medium_coupled_barrier);
}

TEST(ShardPlanTest, StripesBalanceAndRespectColumns) {
  sim::Simulator sim(1);
  phy::PathLossModel pl;
  phy::MediumTuning tuning;
  tuning.cell_size_m = 10.0;
  phy::Medium medium(sim, pl, tuning);
  // 80 nodes across a 400m strip: 4 stripes of ~20.
  for (int i = 0; i < 80; ++i) {
    medium.add_node("n", {static_cast<double>(i * 5), 0.0});
  }
  const auto plan = phy::plan_shards(medium, 4, Duration::from_us(10));
  EXPECT_EQ(plan.shards, 4);
  ASSERT_EQ(plan.node_shard.size(), 80u);
  std::vector<int> counts(4, 0);
  for (const int s : plan.node_shard) {
    ASSERT_GE(s, 0);
    ASSERT_LT(s, 4);
    ++counts[static_cast<std::size_t>(s)];
  }
  for (const int c : counts) EXPECT_GE(c, 10);  // roughly balanced
  // Nodes in the same 10m cell column never split across shards.
  for (int i = 0; i + 1 < 80; ++i) {
    const auto col_a = static_cast<int>(medium.position(static_cast<phy::NodeId>(i)).x / 10.0);
    const auto col_b =
        static_cast<int>(medium.position(static_cast<phy::NodeId>(i + 1)).x / 10.0);
    if (col_a == col_b) {
      EXPECT_EQ(plan.node_shard[static_cast<std::size_t>(i)],
                plan.node_shard[static_cast<std::size_t>(i + 1)]);
    }
  }
  EXPECT_EQ(phy::plan_shards(medium, 1, 1_us).node_shard,
            std::vector<int>(80, 0));
}

}  // namespace
}  // namespace bicord
