#include "sim/simulator.hpp"

#include <gtest/gtest.h>

#include <vector>

namespace bicord::sim {
namespace {

using namespace bicord::time_literals;

TEST(SimulatorTest, ClockAdvancesToEvents) {
  Simulator sim;
  std::vector<std::int64_t> times;
  sim.after(5_ms, [&] { times.push_back(sim.now().us()); });
  sim.after(1_ms, [&] { times.push_back(sim.now().us()); });
  sim.run_all();
  EXPECT_EQ(times, (std::vector<std::int64_t>{1000, 5000}));
  EXPECT_EQ(sim.now().us(), 5000);
}

TEST(SimulatorTest, RunUntilStopsAtDeadline) {
  Simulator sim;
  bool late_fired = false;
  sim.after(10_ms, [&] { late_fired = true; });
  sim.run_until(TimePoint::from_us(5000));
  EXPECT_FALSE(late_fired);
  EXPECT_EQ(sim.now().us(), 5000);  // clock lands exactly on the deadline
  sim.run_for(5_ms);
  EXPECT_TRUE(late_fired);
}

TEST(SimulatorTest, EventsScheduledDuringRunFire) {
  Simulator sim;
  int count = 0;
  sim.after(1_ms, [&] {
    ++count;
    sim.after(1_ms, [&] { ++count; });
  });
  sim.run_for(10_ms);
  EXPECT_EQ(count, 2);
}

TEST(SimulatorTest, CancelPreventsDispatch) {
  Simulator sim;
  bool fired = false;
  const EventId id = sim.after(1_ms, [&] { fired = true; });
  EXPECT_TRUE(sim.cancel(id));
  sim.run_all();
  EXPECT_FALSE(fired);
}

TEST(SimulatorTest, RejectsSchedulingInThePast) {
  Simulator sim;
  sim.after(1_ms, [] {});
  sim.run_all();
  EXPECT_THROW(sim.at(TimePoint::origin(), [] {}), std::invalid_argument);
  EXPECT_THROW(sim.after(Duration::from_us(-1), [] {}), std::invalid_argument);
}

TEST(SimulatorTest, StepFiresExactlyOne) {
  Simulator sim;
  int count = 0;
  sim.after(1_ms, [&] { ++count; });
  sim.after(2_ms, [&] { ++count; });
  EXPECT_TRUE(sim.step());
  EXPECT_EQ(count, 1);
  EXPECT_TRUE(sim.step());
  EXPECT_EQ(count, 2);
  EXPECT_FALSE(sim.step());
}

TEST(SimulatorTest, DispatchCounter) {
  Simulator sim;
  for (int i = 0; i < 5; ++i) sim.after(Duration::from_us(i + 1), [] {});
  sim.run_all();
  EXPECT_EQ(sim.dispatched_events(), 5u);
}

TEST(SimulatorTest, SeedIsRecorded) {
  Simulator sim(777);
  EXPECT_EQ(sim.seed(), 777u);
}

TEST(PeriodicTaskTest, FiresAtPeriod) {
  Simulator sim;
  int ticks = 0;
  PeriodicTask task(sim, 10_ms, [&] { ++ticks; });
  task.start();
  sim.run_for(35_ms);
  EXPECT_EQ(ticks, 3);  // t = 10, 20, 30
}

TEST(PeriodicTaskTest, StartAfterCustomDelay) {
  Simulator sim;
  int ticks = 0;
  PeriodicTask task(sim, 10_ms, [&] { ++ticks; });
  task.start_after(Duration::zero());
  sim.run_for(25_ms);
  EXPECT_EQ(ticks, 3);  // t = 0, 10, 20
}

TEST(PeriodicTaskTest, StopHalts) {
  Simulator sim;
  int ticks = 0;
  PeriodicTask task(sim, 10_ms, [&] { ++ticks; });
  task.start();
  sim.run_for(15_ms);
  task.stop();
  EXPECT_FALSE(task.running());
  sim.run_for(100_ms);
  EXPECT_EQ(ticks, 1);
}

TEST(PeriodicTaskTest, TickMayRestartItself) {
  Simulator sim;
  int ticks = 0;
  PeriodicTask task(sim, 10_ms, [&] { ++ticks; });
  PeriodicTask restarter(sim, 15_ms, [&] { task.start_after(1_ms); });
  task.start();
  restarter.start();
  sim.run_for(100_ms);
  EXPECT_GT(ticks, 3);
}

TEST(PeriodicTaskTest, SetPeriodTakesEffectNextArm) {
  Simulator sim;
  std::vector<std::int64_t> times;
  PeriodicTask task(sim, 10_ms, [&] { times.push_back(sim.now().us()); });
  task.start();
  sim.run_for(10_ms);
  // The tick at t=10 already re-armed itself for t=20 with the old period;
  // the new period applies from the arm after that.
  task.set_period(20_ms);
  sim.run_for(50_ms);
  ASSERT_GE(times.size(), 3u);
  EXPECT_EQ(times[0], 10000);
  EXPECT_EQ(times[1], 20000);
  EXPECT_EQ(times[2], 40000);
}

TEST(PeriodicTaskTest, RejectsBadConstruction) {
  Simulator sim;
  EXPECT_THROW(PeriodicTask(sim, Duration::zero(), [] {}), std::invalid_argument);
  EXPECT_THROW(PeriodicTask(sim, 1_ms, std::function<void()>{}), std::invalid_argument);
}

TEST(PeriodicTaskTest, DestructorCancels) {
  Simulator sim;
  int ticks = 0;
  {
    PeriodicTask task(sim, 1_ms, [&] { ++ticks; });
    task.start();
  }
  sim.run_for(10_ms);
  EXPECT_EQ(ticks, 0);
}

}  // namespace
}  // namespace bicord::sim
