#include "sim/event_queue.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <stdexcept>
#include <unordered_map>
#include <vector>

namespace bicord::sim {
namespace {

TimePoint at_us(std::int64_t us) { return TimePoint::from_us(us); }

TEST(EventQueueTest, PopsInTimeOrder) {
  EventQueue q;
  std::vector<int> order;
  q.schedule(at_us(30), [&] { order.push_back(3); });
  q.schedule(at_us(10), [&] { order.push_back(1); });
  q.schedule(at_us(20), [&] { order.push_back(2); });
  while (!q.empty()) q.pop().callback();
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
}

TEST(EventQueueTest, TiesFireInScheduleOrder) {
  EventQueue q;
  std::vector<int> order;
  for (int i = 0; i < 10; ++i) {
    q.schedule(at_us(5), [&order, i] { order.push_back(i); });
  }
  while (!q.empty()) q.pop().callback();
  for (int i = 0; i < 10; ++i) EXPECT_EQ(order[static_cast<std::size_t>(i)], i);
}

TEST(EventQueueTest, SizeTracksLiveEvents) {
  EventQueue q;
  const EventId a = q.schedule(at_us(1), [] {});
  q.schedule(at_us(2), [] {});
  EXPECT_EQ(q.size(), 2u);
  EXPECT_TRUE(q.cancel(a));
  EXPECT_EQ(q.size(), 1u);
  q.pop();
  EXPECT_TRUE(q.empty());
}

TEST(EventQueueTest, CancelledEventNeverFires) {
  EventQueue q;
  bool fired = false;
  const EventId id = q.schedule(at_us(1), [&] { fired = true; });
  q.schedule(at_us(2), [] {});
  EXPECT_TRUE(q.cancel(id));
  while (!q.empty()) q.pop().callback();
  EXPECT_FALSE(fired);
}

TEST(EventQueueTest, CancelReturnsFalseForFiredEvent) {
  EventQueue q;
  const EventId id = q.schedule(at_us(1), [] {});
  q.pop().callback();
  EXPECT_FALSE(q.cancel(id));
}

TEST(EventQueueTest, CancelReturnsFalseTwice) {
  EventQueue q;
  const EventId id = q.schedule(at_us(1), [] {});
  EXPECT_TRUE(q.cancel(id));
  EXPECT_FALSE(q.cancel(id));
}

TEST(EventQueueTest, CancelInvalidId) {
  EventQueue q;
  EXPECT_FALSE(q.cancel(kInvalidEventId));
  EXPECT_FALSE(q.cancel(999));
}

TEST(EventQueueTest, NextTimeSkipsCancelled) {
  EventQueue q;
  const EventId early = q.schedule(at_us(1), [] {});
  q.schedule(at_us(5), [] {});
  q.cancel(early);
  EXPECT_EQ(q.next_time(), at_us(5));
}

TEST(EventQueueTest, ThrowsOnEmptyAccess) {
  EventQueue q;
  EXPECT_THROW(q.next_time(), std::logic_error);
  EXPECT_THROW(q.pop(), std::logic_error);
}

TEST(EventQueueTest, RejectsNullCallback) {
  EventQueue q;
  EXPECT_THROW(q.schedule(at_us(1), EventCallback{}), std::invalid_argument);
}

TEST(EventQueueTest, CancelHeavyWorkloadKeepsDeadFractionBounded) {
  EventQueue q;
  std::vector<EventId> ids;
  std::uint64_t x = 7;
  for (int i = 0; i < 10000; ++i) {
    x = x * 6364136223846793005ULL + 1442695040888963407ULL;
    ids.push_back(q.schedule(at_us(static_cast<std::int64_t>(x % 50000)), [] {}));
  }
  // Cancel 90% in shuffled order; after every cancel the lazy-deletion debt
  // must respect the compaction bound: either the heap is trivially small or
  // dead entries are at most half of it.
  std::vector<std::size_t> victims;
  for (std::size_t i = 0; i < ids.size(); ++i) {
    if (i % 10 != 0) victims.push_back(i);
  }
  for (std::size_t i = victims.size(); i > 1; --i) {
    x = x * 6364136223846793005ULL + 1442695040888963407ULL;
    std::swap(victims[i - 1], victims[x % i]);
  }
  for (const std::size_t v : victims) {
    ASSERT_TRUE(q.cancel(ids[v]));
    const std::size_t heap_entries = q.size() + q.dead_entries();
    EXPECT_TRUE(heap_entries < 64 || q.dead_entries() * 2 <= heap_entries)
        << "dead=" << q.dead_entries() << " heap=" << heap_entries;
  }
  EXPECT_GE(q.compactions(), 1u);
  EXPECT_EQ(q.size(), 1000u);
  // Slots are recycled through the free list, never leaked.
  EXPECT_LE(q.slot_capacity(), 10000u);
  // The survivors still pop in time order and all of them fire.
  TimePoint last = TimePoint::origin();
  std::size_t popped = 0;
  while (!q.empty()) {
    const auto fired = q.pop();
    EXPECT_GE(fired.time, last);
    last = fired.time;
    ++popped;
  }
  EXPECT_EQ(popped, 1000u);
  // Lazy deletion may leave a residue of dead entries that never reached the
  // heap top; it must stay below the compaction threshold.
  EXPECT_LT(q.dead_entries(), 64u);
}

TEST(EventQueueTest, RandomizedTraceMatchesReferenceModel) {
  // Drives the queue with a random schedule/cancel/pop mix and checks every
  // pop against a brute-force reference: the live event with the smallest
  // (time, schedule-call index), i.e. FIFO among same-instant ties.
  struct RefEntry {
    std::int64_t time_us;
    std::size_t schedule_idx;
    EventId id;
  };
  for (const std::uint64_t seed : {1ULL, 2ULL, 3ULL}) {
    EventQueue q;
    std::uint64_t x = seed;
    const auto rnd = [&x](std::uint64_t m) {
      x = x * 6364136223846793005ULL + 1442695040888963407ULL;
      return (x >> 33) % m;
    };
    std::vector<RefEntry> live;
    std::unordered_map<EventId, std::size_t> idx_of;
    std::size_t schedules = 0;
    std::int64_t now_us = 0;  // pops advance time; schedules never go backward
    for (int op = 0; op < 4000; ++op) {
      const std::uint64_t r = rnd(100);
      if (r < 55 || q.empty()) {
        const std::int64_t t = now_us + static_cast<std::int64_t>(rnd(40));
        const EventId id = q.schedule(at_us(t), [] {});
        idx_of[id] = schedules;
        live.push_back(RefEntry{t, schedules, id});
        ++schedules;
      } else if (r < 75 && !live.empty()) {
        const std::size_t v = rnd(live.size());
        ASSERT_TRUE(q.cancel(live[v].id));
        live.erase(live.begin() + static_cast<std::ptrdiff_t>(v));
      } else {
        const auto expect = std::min_element(
            live.begin(), live.end(), [](const RefEntry& a, const RefEntry& b) {
              return a.time_us != b.time_us ? a.time_us < b.time_us
                                            : a.schedule_idx < b.schedule_idx;
            });
        ASSERT_EQ(q.next_time(), at_us(expect->time_us));
        const auto fired = q.pop();
        ASSERT_EQ(fired.time, at_us(expect->time_us));
        ASSERT_EQ(idx_of.at(fired.id), expect->schedule_idx);
        now_us = expect->time_us;
        live.erase(expect);
      }
      ASSERT_EQ(q.size(), live.size());
    }
    // Drain: the remaining trace must replay the reference exactly.
    std::stable_sort(live.begin(), live.end(), [](const RefEntry& a, const RefEntry& b) {
      return a.time_us != b.time_us ? a.time_us < b.time_us
                                    : a.schedule_idx < b.schedule_idx;
    });
    for (const RefEntry& e : live) {
      const auto fired = q.pop();
      ASSERT_EQ(fired.time, at_us(e.time_us));
      ASSERT_EQ(idx_of.at(fired.id), e.schedule_idx);
    }
    EXPECT_TRUE(q.empty());
  }
}

TEST(EventQueueTest, PeriodicTickSurvivesSlabGrowthFromItsOwnSchedules) {
  // Regression: the periodic trampoline used to invoke the tick in place in
  // the slot slab; a tick that schedules enough events to grow the slab left
  // its own closure's captures in freed storage (use-after-free, caught by
  // ASan). The tick must touch its captures after forcing the growth.
  EventQueue q;
  int ticks = 0;
  std::vector<EventId> spawned;
  const EventId id = q.schedule_periodic(at_us(10), Duration::from_us(10), [&] {
    ++ticks;
    for (int i = 0; i < 4096; ++i) {
      spawned.push_back(q.schedule(at_us(1000000 + i), [] {}));
    }
    ++ticks;  // reads the capture frame again after the slab reallocated
  });
  for (int i = 0; i < 2; ++i) {
    auto fired = q.pop();
    ASSERT_EQ(fired.time, at_us(10 * (i + 1)));
    fired.callback();
  }
  EXPECT_EQ(ticks, 4);
  EXPECT_EQ(q.size(), spawned.size() + 1);
  EXPECT_TRUE(q.cancel(id));
  for (const EventId e : spawned) EXPECT_TRUE(q.cancel(e));
  EXPECT_TRUE(q.empty());
}

TEST(EventQueueTest, ExecutingPeriodicTickCountsAsLive) {
  // empty()/size() must include the periodic event whose tick is currently
  // running: it will fire again unless cancelled, so code inspecting the
  // queue from inside a callback sees a consistent count.
  EventQueue q;
  std::size_t size_inside = 999;
  bool empty_inside = true;
  const EventId id = q.schedule_periodic(at_us(5), Duration::from_us(5), [&] {
    size_inside = q.size();
    empty_inside = q.empty();
  });
  q.pop().callback();
  EXPECT_EQ(size_inside, 1u);
  EXPECT_FALSE(empty_inside);
  EXPECT_EQ(q.size(), 1u);
  EXPECT_TRUE(q.cancel(id));
  EXPECT_TRUE(q.empty());
}

TEST(EventQueueTest, PeriodicCancelledInsideOwnTickStopsCounting) {
  EventQueue q;
  EventId id = kInvalidEventId;
  std::size_t size_after_cancel = 999;
  id = q.schedule_periodic(at_us(1), Duration::from_us(1), [&] {
    EXPECT_TRUE(q.cancel(id));
    size_after_cancel = q.size();
  });
  q.pop().callback();
  EXPECT_EQ(size_after_cancel, 0u);
  EXPECT_TRUE(q.empty());
}

TEST(EventQueueTest, ThrowingPeriodicTickReleasesItsSlot) {
  EventQueue q;
  q.schedule_periodic(at_us(1), Duration::from_us(1),
                      [] { throw std::runtime_error("tick failed"); });
  auto fired = q.pop();
  EXPECT_THROW(fired.callback(), std::runtime_error);
  // The event is dropped, not wedged in a half-executed state: the queue
  // drains and the slot is recycled for new work.
  EXPECT_TRUE(q.empty());
  bool ran = false;
  q.schedule(at_us(2), [&] { ran = true; });
  q.pop().callback();
  EXPECT_TRUE(ran);
}

TEST(EventQueueTest, ManyEventsStressOrdering) {
  EventQueue q;
  // Deterministic pseudo-random times; verify global ordering on pop.
  std::uint64_t x = 42;
  for (int i = 0; i < 5000; ++i) {
    x = x * 6364136223846793005ULL + 1442695040888963407ULL;
    q.schedule(at_us(static_cast<std::int64_t>(x % 100000)), [] {});
  }
  TimePoint last = TimePoint::origin();
  while (!q.empty()) {
    const auto fired = q.pop();
    EXPECT_GE(fired.time, last);
    last = fired.time;
  }
}

}  // namespace
}  // namespace bicord::sim
