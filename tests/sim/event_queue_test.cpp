#include "sim/event_queue.hpp"

#include <gtest/gtest.h>

#include <vector>

namespace bicord::sim {
namespace {

TimePoint at_us(std::int64_t us) { return TimePoint::from_us(us); }

TEST(EventQueueTest, PopsInTimeOrder) {
  EventQueue q;
  std::vector<int> order;
  q.schedule(at_us(30), [&] { order.push_back(3); });
  q.schedule(at_us(10), [&] { order.push_back(1); });
  q.schedule(at_us(20), [&] { order.push_back(2); });
  while (!q.empty()) q.pop().callback();
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
}

TEST(EventQueueTest, TiesFireInScheduleOrder) {
  EventQueue q;
  std::vector<int> order;
  for (int i = 0; i < 10; ++i) {
    q.schedule(at_us(5), [&order, i] { order.push_back(i); });
  }
  while (!q.empty()) q.pop().callback();
  for (int i = 0; i < 10; ++i) EXPECT_EQ(order[static_cast<std::size_t>(i)], i);
}

TEST(EventQueueTest, SizeTracksLiveEvents) {
  EventQueue q;
  const EventId a = q.schedule(at_us(1), [] {});
  q.schedule(at_us(2), [] {});
  EXPECT_EQ(q.size(), 2u);
  EXPECT_TRUE(q.cancel(a));
  EXPECT_EQ(q.size(), 1u);
  q.pop();
  EXPECT_TRUE(q.empty());
}

TEST(EventQueueTest, CancelledEventNeverFires) {
  EventQueue q;
  bool fired = false;
  const EventId id = q.schedule(at_us(1), [&] { fired = true; });
  q.schedule(at_us(2), [] {});
  EXPECT_TRUE(q.cancel(id));
  while (!q.empty()) q.pop().callback();
  EXPECT_FALSE(fired);
}

TEST(EventQueueTest, CancelReturnsFalseForFiredEvent) {
  EventQueue q;
  const EventId id = q.schedule(at_us(1), [] {});
  q.pop().callback();
  EXPECT_FALSE(q.cancel(id));
}

TEST(EventQueueTest, CancelReturnsFalseTwice) {
  EventQueue q;
  const EventId id = q.schedule(at_us(1), [] {});
  EXPECT_TRUE(q.cancel(id));
  EXPECT_FALSE(q.cancel(id));
}

TEST(EventQueueTest, CancelInvalidId) {
  EventQueue q;
  EXPECT_FALSE(q.cancel(kInvalidEventId));
  EXPECT_FALSE(q.cancel(999));
}

TEST(EventQueueTest, NextTimeSkipsCancelled) {
  EventQueue q;
  const EventId early = q.schedule(at_us(1), [] {});
  q.schedule(at_us(5), [] {});
  q.cancel(early);
  EXPECT_EQ(q.next_time(), at_us(5));
}

TEST(EventQueueTest, ThrowsOnEmptyAccess) {
  EventQueue q;
  EXPECT_THROW(q.next_time(), std::logic_error);
  EXPECT_THROW(q.pop(), std::logic_error);
}

TEST(EventQueueTest, RejectsNullCallback) {
  EventQueue q;
  EXPECT_THROW(q.schedule(at_us(1), EventCallback{}), std::invalid_argument);
}

TEST(EventQueueTest, ManyEventsStressOrdering) {
  EventQueue q;
  // Deterministic pseudo-random times; verify global ordering on pop.
  std::uint64_t x = 42;
  for (int i = 0; i < 5000; ++i) {
    x = x * 6364136223846793005ULL + 1442695040888963407ULL;
    q.schedule(at_us(static_cast<std::int64_t>(x % 100000)), [] {});
  }
  TimePoint last = TimePoint::origin();
  while (!q.empty()) {
    const auto fired = q.pop();
    EXPECT_GE(fired.time, last);
    last = fired.time;
  }
}

}  // namespace
}  // namespace bicord::sim
