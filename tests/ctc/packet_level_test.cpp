#include "ctc/packet_level.hpp"

#include <gtest/gtest.h>

#include "coex/scenario.hpp"
#include "wifi/traffic.hpp"

namespace bicord::ctc {
namespace {

using namespace bicord::time_literals;

struct CtcFixture : ::testing::Test {
  CtcFixture() : sim(71), medium(sim, phy::PathLossModel{40.0, 3.0, 0.0, 0.1}) {
    const auto e = medium.add_node("wifi-E", {0.0, 0.0});
    const auto f = medium.add_node("wifi-F", {3.0, 0.0});
    const auto z =
        medium.add_node("zigbee", coex::location_position(coex::ZigbeeLocation::A));
    wifi::WifiMac::Config wc;
    wc.channel = 11;
    wc.ed_threshold_dbm = -51.0;
    wc.cca_noise_sigma_db = 2.0;
    sender = std::make_unique<wifi::WifiMac>(medium, e, wc);
    receiver = std::make_unique<wifi::WifiMac>(medium, f, wc);
    zigbee::ZigbeeMac::Config zc;
    zc.channel = 24;
    zigbee = std::make_unique<zigbee::ZigbeeMac>(medium, z, zc);
  }

  void start_wifi() {
    cbr = std::make_unique<wifi::CbrSource>(*sender, receiver->node(), 100, 1_ms);
    cbr->start();
    sim.run_for(20_ms);
  }

  sim::Simulator sim;
  phy::Medium medium;
  std::unique_ptr<wifi::WifiMac> sender;
  std::unique_ptr<wifi::WifiMac> receiver;
  std::unique_ptr<zigbee::ZigbeeMac> zigbee;
  std::unique_ptr<wifi::CbrSource> cbr;
};

TEST_F(CtcFixture, ZigfiDecodesOnBusyChannel) {
  start_wifi();
  ZigfiCtcLink link(*zigbee, *receiver, csi::CsiModelParams{});
  std::optional<std::uint8_t> got;
  Duration latency;
  link.set_message_callback([&](std::uint8_t m, Duration d) {
    got = m;
    latency = d;
  });
  link.send(0x5A, 10);
  sim.run_for(10_sec);
  ASSERT_TRUE(got.has_value());
  EXPECT_EQ(*got, 0x5A);
  // 15 windows of 16 ms minimum; synchronisation alone costs 7 windows.
  EXPECT_GE(latency, link.sync_duration());
  EXPECT_GE(latency, 200_ms);
  EXPECT_EQ(link.messages_decoded(), 1u);
  EXPECT_GE(link.attempts_used(), 1u);
}

TEST_F(CtcFixture, ZigfiSyncCostMatchesAdaCommScale) {
  ZigfiCtcLink link(*zigbee, *receiver, csi::CsiModelParams{});
  // 7 Barker chips x 16 ms = 112 ms — the paper quotes ~110 ms for AdaComm.
  EXPECT_EQ(link.sync_duration(), Duration::from_ms(112));
}

TEST_F(CtcFixture, ZigfiRejectsConcurrentSend) {
  start_wifi();
  ZigfiCtcLink link(*zigbee, *receiver, csi::CsiModelParams{});
  link.send(1);
  EXPECT_TRUE(link.busy());
  EXPECT_THROW(link.send(2), std::logic_error);
}

TEST_F(CtcFixture, ZigfiGivesUpWithoutWifiTraffic) {
  // No Wi-Fi frames -> no CSI stream -> nothing to modulate onto.
  ZigfiCtcLink link(*zigbee, *receiver, csi::CsiModelParams{});
  bool delivered = false;
  link.set_message_callback([&](std::uint8_t, Duration) { delivered = true; });
  link.send(0x42, 2);
  sim.run_for(5_sec);
  EXPECT_FALSE(delivered);
  EXPECT_FALSE(link.busy());
}

TEST_F(CtcFixture, FreeBeeWorksOnClearChannel) {
  FreeBeeCtcLink link(*zigbee, *receiver);
  std::optional<Duration> latency;
  link.set_message_callback([&](Duration d) { latency = d; });
  link.send();
  sim.run_for(3_sec);
  ASSERT_TRUE(latency.has_value());
  // 5 beacons at ~100 ms intervals.
  EXPECT_GE(*latency, 400_ms);
  EXPECT_LE(*latency, 800_ms);
  EXPECT_EQ(link.beacons_clean(), 5u);
}

TEST_F(CtcFixture, FreeBeeStallsUnderWifi) {
  start_wifi();
  FreeBeeCtcLink link(*zigbee, *receiver);
  bool delivered = false;
  link.set_message_callback([&](Duration) { delivered = true; });
  link.send();
  sim.run_for(10_sec);
  // With 100-byte CBR every 1 ms, nearly every beacon overlaps Wi-Fi
  // activity: the message takes far longer than on clear air, if it
  // completes at all (paper: "inefficient and even useless").
  EXPECT_GT(link.beacons_sent(), 80u);
  EXPECT_LT(link.beacons_clean(), link.beacons_sent() / 4);
  (void)delivered;
}

TEST_F(CtcFixture, FreeBeeRejectsConcurrentSend) {
  FreeBeeCtcLink link(*zigbee, *receiver);
  link.send();
  EXPECT_THROW(link.send(), std::logic_error);
}

}  // namespace
}  // namespace bicord::ctc
