#include <gtest/gtest.h>

#include "coex/scenario.hpp"

namespace bicord::coex {
namespace {

using namespace bicord::time_literals;

ScenarioConfig two_link_config(Coordination scheme) {
  ScenarioConfig cfg;
  cfg.seed = 31337;
  cfg.coordination = scheme;
  cfg.location = ZigbeeLocation::A;
  cfg.burst.packets_per_burst = 5;
  cfg.burst.payload_bytes = 50;
  cfg.burst.mean_interval = 250_ms;
  ExtraZigbeeSpec spec;
  spec.location = ZigbeeLocation::C;
  spec.burst.packets_per_burst = 3;
  spec.burst.payload_bytes = 30;
  spec.burst.mean_interval = 180_ms;
  cfg.extra_zigbee.push_back(spec);
  return cfg;
}

TEST(MultiNodeTest, LinkCountReflectsExtras) {
  Scenario one(two_link_config(Coordination::BiCord));
  EXPECT_EQ(one.zigbee_link_count(), 2u);
  ScenarioConfig single = two_link_config(Coordination::BiCord);
  single.extra_zigbee.clear();
  Scenario zero(single);
  EXPECT_EQ(zero.zigbee_link_count(), 1u);
}

TEST(MultiNodeTest, BothLinksDeliverUnderBiCord) {
  Scenario sc(two_link_config(Coordination::BiCord));
  sc.run_for(8_sec);
  for (std::size_t i = 0; i < sc.zigbee_link_count(); ++i) {
    const auto& s = sc.zigbee_stats_at(i);
    EXPECT_GT(s.generated, 50u) << "link " << i;
    EXPECT_GT(s.delivery_ratio(), 0.85) << "link " << i;
  }
}

TEST(MultiNodeTest, AggregateSumsAllLinks) {
  Scenario sc(two_link_config(Coordination::BiCord));
  sc.run_for(5_sec);
  const auto agg = sc.aggregate_zigbee_stats();
  std::uint64_t generated = 0;
  std::uint64_t delivered = 0;
  std::size_t delays = 0;
  for (std::size_t i = 0; i < sc.zigbee_link_count(); ++i) {
    generated += sc.zigbee_stats_at(i).generated;
    delivered += sc.zigbee_stats_at(i).delivered;
    delays += sc.zigbee_stats_at(i).delay_ms.count();
  }
  EXPECT_EQ(agg.generated, generated);
  EXPECT_EQ(agg.delivered, delivered);
  EXPECT_EQ(agg.delay_ms.count(), delays);
}

TEST(MultiNodeTest, SharedWhitespacesServeBothLinks) {
  // Two requesters are indistinguishable to the Wi-Fi device; grants must
  // still flow and both agents make progress.
  Scenario sc(two_link_config(Coordination::BiCord));
  sc.run_for(8_sec);
  EXPECT_GT(sc.bicord_wifi()->whitespaces_granted(), 20u);
  auto* extra = dynamic_cast<core::BiCordZigbeeAgent*>(&sc.zigbee_agent_at(1));
  ASSERT_NE(extra, nullptr);
  EXPECT_GT(extra->control_packets_sent(), 0u);
}

TEST(MultiNodeTest, EccServesExtrasToo) {
  Scenario sc(two_link_config(Coordination::Ecc));
  sc.run_for(8_sec);
  EXPECT_GT(sc.zigbee_stats_at(1).delivery_ratio(), 0.7);
}

TEST(MultiNodeTest, CsmaExtrasStarveLikeThePrimary) {
  Scenario sc(two_link_config(Coordination::Csma));
  sc.run_for(5_sec);
  EXPECT_LT(sc.zigbee_stats_at(0).delivery_ratio(), 0.1);
  EXPECT_LT(sc.zigbee_stats_at(1).delivery_ratio(), 0.35);
}

TEST(MultiNodeTest, UtilizationStaysHealthy) {
  Scenario sc(two_link_config(Coordination::BiCord));
  sc.run_for(1_sec);
  sc.start_measurement();
  sc.run_for(8_sec);
  EXPECT_GT(sc.utilization().total, 0.6);
}

TEST(MultiNodeTest, OutOfRangeIndexThrows) {
  Scenario sc(two_link_config(Coordination::BiCord));
  EXPECT_THROW((void)sc.zigbee_stats_at(2), std::out_of_range);
  EXPECT_THROW((void)sc.zigbee_agent_at(5), std::out_of_range);
}

}  // namespace
}  // namespace bicord::coex
