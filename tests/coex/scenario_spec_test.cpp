#include "coex/scenario_spec.hpp"

#include <gtest/gtest.h>

using namespace bicord;
using namespace bicord::coex;
using namespace bicord::time_literals;

namespace {

TEST(ScenarioSpecTest, ParseSerializeRoundTripIsBitwiseStable) {
  const std::string text =
      "# comment\n"
      "seed = 42\n"
      "coordination = ecc\n"
      "burst.interval = 203120us\n"
      "wifi.high_share = 0.35\n"
      "\n"
      "extra.link = loc=C packets=3 payload=30 interval=150ms\n";
  std::string error;
  auto spec = ScenarioSpec::parse(text, &error);
  ASSERT_TRUE(spec.has_value()) << error;
  const std::string once = spec->serialize();
  auto again = ScenarioSpec::parse(once, &error);
  ASSERT_TRUE(again.has_value()) << error;
  EXPECT_EQ(once, again->serialize());
}

TEST(ScenarioSpecTest, EveryPresetParsesAndLowers) {
  const auto names = ScenarioSpec::preset_names();
  ASSERT_FALSE(names.empty());
  for (const auto& name : names) {
    auto spec = ScenarioSpec::preset(name);
    ASSERT_TRUE(spec.has_value()) << name;
    EXPECT_FALSE(ScenarioSpec::preset_summary(name).empty()) << name;
    std::string error;
    if (spec->is_ble()) {
      EXPECT_TRUE(spec->ble_config(&error).has_value()) << name << ": " << error;
    } else {
      EXPECT_TRUE(spec->config(&error).has_value()) << name << ": " << error;
    }
    // Round-trip: a preset survives serialize -> parse unchanged.
    auto again = ScenarioSpec::parse(spec->serialize(), &error);
    ASSERT_TRUE(again.has_value()) << name << ": " << error;
    EXPECT_EQ(spec->serialize(), again->serialize()) << name;
  }
  EXPECT_FALSE(ScenarioSpec::preset("no-such-preset").has_value());
}

TEST(ScenarioSpecTest, PresetValuesMatchThePaperBenches) {
  auto fig7 = ScenarioSpec::preset("fig7")->must_config();
  EXPECT_EQ(fig7.seed, 77u);
  EXPECT_EQ(fig7.burst.packets_per_burst, 10);
  EXPECT_FALSE(fig7.burst.poisson);
  EXPECT_EQ(fig7.allocator.initial_whitespace, 30_ms);

  auto fig13 = ScenarioSpec::preset("fig13")->must_config();
  EXPECT_EQ(fig13.seed, 1313u);
  EXPECT_EQ(fig13.wifi_traffic, WifiTrafficKind::Priority);

  auto multi = ScenarioSpec::preset("multinode")->must_config();
  ASSERT_EQ(multi.extra_zigbee.size(), 2u);
  EXPECT_EQ(multi.extra_zigbee[0].location, ZigbeeLocation::C);
  EXPECT_EQ(multi.extra_zigbee[0].burst.packets_per_burst, 3);
  EXPECT_EQ(multi.extra_zigbee[0].burst.mean_interval, 150_ms);
  EXPECT_EQ(multi.extra_zigbee[1].location, ZigbeeLocation::B);
  EXPECT_DOUBLE_EQ(multi.extra_zigbee[1].offset.x, -0.5);
  EXPECT_DOUBLE_EQ(multi.extra_zigbee[1].offset.y, 0.6);

  auto ble = ScenarioSpec::preset("ble");
  ASSERT_TRUE(ble->is_ble());
  auto bcfg = ble->must_ble_config();
  EXPECT_EQ(bcfg.seed, 2626u);
  EXPECT_EQ(bcfg.ble_links, 4);
  EXPECT_TRUE(bcfg.coordinate);
  EXPECT_EQ(bcfg.burst.mean_interval, 150_ms);
}

TEST(ScenarioSpecTest, UnknownKeyFailsWithLineNumber) {
  std::string error;
  auto spec = ScenarioSpec::parse("seed = 1\nnot.a.key = 3\n", &error);
  EXPECT_FALSE(spec.has_value());
  EXPECT_NE(error.find("line 2"), std::string::npos) << error;
  EXPECT_NE(error.find("not.a.key"), std::string::npos) << error;
}

TEST(ScenarioSpecTest, MissingEqualsFailsWithLineNumber) {
  std::string error;
  auto spec = ScenarioSpec::parse("seed = 1\njust words\n", &error);
  EXPECT_FALSE(spec.has_value());
  EXPECT_NE(error.find("line 2"), std::string::npos) << error;
}

TEST(ScenarioSpecTest, MalformedValueFailsAtLoweringWithKeyAndLine) {
  std::string error;
  auto spec = ScenarioSpec::parse("seed = 1\nburst.packets = lots\n", &error);
  ASSERT_TRUE(spec.has_value()) << error;
  EXPECT_FALSE(spec->config(&error).has_value());
  EXPECT_NE(error.find("line 2"), std::string::npos) << error;
  EXPECT_NE(error.find("burst.packets"), std::string::npos) << error;

  // Durations need a unit suffix.
  spec = ScenarioSpec::parse("burst.interval = 200\n", &error);
  ASSERT_TRUE(spec.has_value()) << error;
  EXPECT_FALSE(spec->config(&error).has_value());
  EXPECT_NE(error.find("burst.interval"), std::string::npos) << error;
}

TEST(ScenarioSpecTest, OverridesComposeInDeclarationOrder) {
  std::string error;
  auto spec = ScenarioSpec::parse(
      "seed = 1\ncoordination = csma\nseed = 9\ncoordination = ecc\n", &error);
  ASSERT_TRUE(spec.has_value()) << error;
  auto cfg = spec->config(&error);
  ASSERT_TRUE(cfg.has_value()) << error;
  EXPECT_EQ(cfg->seed, 9u);
  EXPECT_EQ(cfg->coordination, Coordination::Ecc);

  // set() appends, so it wins over everything already in the spec.
  spec->set("seed", std::uint64_t{123});
  spec->set("coordination", "bicord");
  cfg = spec->config(&error);
  ASSERT_TRUE(cfg.has_value()) << error;
  EXPECT_EQ(cfg->seed, 123u);
  EXPECT_EQ(cfg->coordination, Coordination::BiCord);
}

TEST(ScenarioSpecTest, SettersRoundTripExactValues) {
  ScenarioSpec spec;
  spec.set("burst.interval", Duration::from_us(203120));
  spec.set("wifi.high_share", 0.1 + 0.2);  // a double with no short decimal form
  spec.set("burst.poisson", false);
  spec.set("burst.packets", 12);
  std::string error;
  auto cfg = spec.config(&error);
  ASSERT_TRUE(cfg.has_value()) << error;
  EXPECT_EQ(cfg->burst.mean_interval.us(), 203120);
  EXPECT_EQ(cfg->wifi_high_share, 0.1 + 0.2);
  EXPECT_FALSE(cfg->burst.poisson);
  EXPECT_EQ(cfg->burst.packets_per_burst, 12);
}

TEST(ScenarioSpecTest, ExtraLinksAppendAndClear) {
  auto spec = *ScenarioSpec::preset("multinode");
  spec.set("extra.link", "loc=D packets=2 payload=20 interval=1s power=-3");
  auto cfg = spec.must_config();
  ASSERT_EQ(cfg.extra_zigbee.size(), 3u);
  EXPECT_EQ(cfg.extra_zigbee[2].location, ZigbeeLocation::D);
  EXPECT_EQ(cfg.extra_zigbee[2].burst.mean_interval, 1_sec);
  EXPECT_DOUBLE_EQ(cfg.extra_zigbee[2].data_power_dbm, -3.0);

  spec.set("extra.clear", true);
  cfg = spec.must_config();
  EXPECT_TRUE(cfg.extra_zigbee.empty());

  std::string error;
  ScenarioSpec bad;
  bad.set("extra.link", "loc=Z");
  EXPECT_FALSE(bad.config(&error).has_value());
  EXPECT_NE(error.find("extra.link"), std::string::npos) << error;
}

TEST(ScenarioSpecTest, FaultPlanKeysLower) {
  std::string error;
  auto spec = ScenarioSpec::parse("fault.preset = mixed\n", &error);
  ASSERT_TRUE(spec.has_value()) << error;
  auto cfg = spec->config(&error);
  ASSERT_TRUE(cfg.has_value()) << error;
  EXPECT_FALSE(cfg->fault_plan.empty());
  const auto preset_events = cfg->fault_plan.size();

  spec->set("fault.event", "cts-loss at=2s count=3");
  cfg = spec->config(&error);
  ASSERT_TRUE(cfg.has_value()) << error;
  EXPECT_EQ(cfg->fault_plan.size(), preset_events + 1);

  ScenarioSpec bad_event;
  bad_event.set("fault.event", "gremlins at=2s");
  EXPECT_FALSE(bad_event.config(&error).has_value());
  EXPECT_NE(error.find("fault.event"), std::string::npos) << error;

  ScenarioSpec bad;
  bad.set("fault.preset", "no-such-plan");
  EXPECT_FALSE(bad.config(&error).has_value());
  EXPECT_NE(error.find("fault.preset"), std::string::npos) << error;
}

TEST(ScenarioSpecTest, GrantorsKeyLowersToDistances) {
  std::string error;
  auto spec = ScenarioSpec::parse(
      "grantors = 2.5, 4\nelection.grace = 80ms\n", &error);
  ASSERT_TRUE(spec.has_value()) << error;
  auto cfg = spec->config(&error);
  ASSERT_TRUE(cfg.has_value()) << error;
  ASSERT_EQ(cfg->extra_grantors_m.size(), 2u);
  EXPECT_EQ(cfg->extra_grantors_m[0], 2.5);
  EXPECT_EQ(cfg->extra_grantors_m[1], 4.0);
  EXPECT_EQ(cfg->election_grace, 80_ms);
}

TEST(ScenarioSpecTest, GrantorsRejectsZeroAndDuplicates) {
  std::string error;
  // Zero distance: degenerate election metric.
  auto spec = ScenarioSpec::parse("seed = 1\ngrantors = 2.5,0\n", &error);
  ASSERT_TRUE(spec.has_value()) << error;
  EXPECT_FALSE(spec->config(&error).has_value());
  EXPECT_NE(error.find("line 2"), std::string::npos) << error;
  EXPECT_NE(error.find("grantors"), std::string::npos) << error;

  // Duplicate distance: two members would tie on the metric *and* geometry.
  spec = ScenarioSpec::parse("seed = 1\ngrantors = 3,4,3\n", &error);
  ASSERT_TRUE(spec.has_value()) << error;
  EXPECT_FALSE(spec->config(&error).has_value());
  EXPECT_NE(error.find("duplicate"), std::string::npos) << error;
  EXPECT_NE(error.find("line 2"), std::string::npos) << error;

  // Negative, empty element, and trailing comma are malformed too.
  for (const char* bad : {"grantors = -2\n", "grantors = 2.5,,4\n",
                          "grantors = 2.5,\n"}) {
    spec = ScenarioSpec::parse(bad, &error);
    ASSERT_TRUE(spec.has_value()) << bad;
    EXPECT_FALSE(spec->config(&error).has_value()) << bad;
    EXPECT_NE(error.find("grantors"), std::string::npos) << error;
  }
}

TEST(ScenarioSpecTest, ElectionGraceMustBePositive) {
  std::string error;
  for (const char* bad : {"election.grace = 0ms\n", "election.grace = -5ms\n",
                          "election.grace = soon\n"}) {
    auto spec = ScenarioSpec::parse(bad, &error);
    ASSERT_TRUE(spec.has_value()) << bad;
    EXPECT_FALSE(spec->config(&error).has_value()) << bad;
    EXPECT_NE(error.find("election.grace"), std::string::npos) << error;
  }
}

TEST(ScenarioSpecTest, ClockSkewPpmLowersToFaultEventAndValidatesRange) {
  std::string error;
  auto spec = ScenarioSpec::parse("fault.clock_skew_ppm = 200\n", &error);
  ASSERT_TRUE(spec.has_value()) << error;
  auto cfg = spec->config(&error);
  ASSERT_TRUE(cfg.has_value()) << error;
  ASSERT_EQ(cfg->fault_plan.size(), 1u);
  EXPECT_EQ(cfg->fault_plan.events()[0].kind, fault::FaultKind::ClockSkew);
  EXPECT_EQ(cfg->fault_plan.events()[0].magnitude, 200.0);
  EXPECT_EQ(cfg->fault_plan.events()[0].at, TimePoint::origin());

  for (const char* bad :
       {"fault.clock_skew_ppm = 0\n", "fault.clock_skew_ppm = -10\n",
        "fault.clock_skew_ppm = 1001\n", "fault.clock_skew_ppm = drifty\n"}) {
    spec = ScenarioSpec::parse(bad, &error);
    ASSERT_TRUE(spec.has_value()) << bad;
    EXPECT_FALSE(spec->config(&error).has_value()) << bad;
    EXPECT_NE(error.find("clock_skew_ppm"), std::string::npos) << error;
    EXPECT_NE(error.find("line 1"), std::string::npos) << error;
  }
}

TEST(ScenarioSpecTest, TopologySwitchSelectsBleLowering) {
  std::string error;
  auto spec = ScenarioSpec::parse(
      "topology = ble\nseed = 7\nble.links = 8\nble.coordinate = false\n", &error);
  ASSERT_TRUE(spec.has_value()) << error;
  EXPECT_TRUE(spec->is_ble());
  auto cfg = spec->ble_config(&error);
  ASSERT_TRUE(cfg.has_value()) << error;
  EXPECT_EQ(cfg->seed, 7u);
  EXPECT_EQ(cfg->ble_links, 8);
  EXPECT_FALSE(cfg->coordinate);

  ScenarioSpec plain;
  plain.set("seed", std::uint64_t{3});
  EXPECT_FALSE(plain.is_ble());
}

}  // namespace
