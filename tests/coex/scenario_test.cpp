#include "coex/scenario.hpp"

#include <gtest/gtest.h>

namespace bicord::coex {
namespace {

using namespace bicord::time_literals;

ScenarioConfig config_for(Coordination scheme, std::uint64_t seed = 5) {
  ScenarioConfig cfg;
  cfg.seed = seed;
  cfg.coordination = scheme;
  cfg.burst.packets_per_burst = 5;
  cfg.burst.payload_bytes = 50;
  cfg.burst.mean_interval = 200_ms;
  return cfg;
}

TEST(ScenarioTest, TopologyMatchesFig6) {
  Scenario sc(config_for(Coordination::BiCord));
  auto& medium = sc.medium();
  // E and F are 3 m apart.
  EXPECT_NEAR(phy::distance(medium.position(sc.wifi_sender().node()),
                            medium.position(sc.wifi_receiver().node())),
              3.0, 1e-9);
  // The ZigBee link is 1-5 m.
  const double d = phy::distance(medium.position(sc.zigbee_sender().node()),
                                 medium.position(sc.zigbee_receiver().node()));
  EXPECT_GE(d, 1.0);
  EXPECT_LE(d, 5.0);
}

TEST(ScenarioTest, LocationDefaultsMatchPaperFootnote) {
  EXPECT_DOUBLE_EQ(default_signaling_power_dbm(ZigbeeLocation::A), 0.0);
  EXPECT_DOUBLE_EQ(default_signaling_power_dbm(ZigbeeLocation::B), 0.0);
  EXPECT_DOUBLE_EQ(default_signaling_power_dbm(ZigbeeLocation::C), -1.0);
  EXPECT_DOUBLE_EQ(default_signaling_power_dbm(ZigbeeLocation::D), -3.0);
}

TEST(ScenarioTest, LocationsAreDistinct) {
  const auto a = location_position(ZigbeeLocation::A);
  const auto b = location_position(ZigbeeLocation::B);
  const auto c = location_position(ZigbeeLocation::C);
  const auto d = location_position(ZigbeeLocation::D);
  EXPECT_GT(phy::distance(a, b), 0.5);
  EXPECT_GT(phy::distance(a, c), 0.5);
  EXPECT_GT(phy::distance(c, d), 0.3);
  // D is the closest to the Wi-Fi sender at the origin.
  EXPECT_LT(phy::distance(d, {0.0, 0.0}), phy::distance(a, {0.0, 0.0}));
  EXPECT_LT(phy::distance(d, {0.0, 0.0}), phy::distance(b, {0.0, 0.0}));
}

TEST(ScenarioTest, BiCordBeatsEccOnUtilization) {
  double bicord_util = 0.0;
  double ecc_util = 0.0;
  {
    Scenario sc(config_for(Coordination::BiCord));
    sc.run_for(1_sec);
    sc.start_measurement();
    sc.run_for(8_sec);
    bicord_util = sc.utilization().total;
  }
  {
    auto cfg = config_for(Coordination::Ecc);
    cfg.ecc.whitespace = 40_ms;
    Scenario sc(cfg);
    sc.run_for(1_sec);
    sc.start_measurement();
    sc.run_for(8_sec);
    ecc_util = sc.utilization().total;
  }
  EXPECT_GT(bicord_util, 0.7);
  EXPECT_GT(bicord_util, ecc_util);
}

TEST(ScenarioTest, BiCordBeatsEccOnDelay) {
  auto run_delay = [](Coordination c) {
    Scenario sc(config_for(c));
    sc.run_for(6_sec);
    return sc.zigbee_stats().delay_ms.mean();
  };
  const double bicord = run_delay(Coordination::BiCord);
  const double ecc = run_delay(Coordination::Ecc);
  EXPECT_LT(bicord, ecc / 2.0);
}

TEST(ScenarioTest, UtilizationReportConsistent) {
  Scenario sc(config_for(Coordination::BiCord));
  sc.run_for(1_sec);
  sc.start_measurement();
  sc.run_for(4_sec);
  const auto u = sc.utilization();
  EXPECT_NEAR(u.total, u.wifi + u.zigbee, 1e-12);
  EXPECT_GT(u.wifi, 0.0);
  EXPECT_GT(u.zigbee, 0.0);
  EXPECT_LT(u.total, 1.0);
}

TEST(ScenarioTest, GoodputMatchesDeliveredBytes) {
  Scenario sc(config_for(Coordination::BiCord));
  sc.start_measurement();
  sc.run_for(5_sec);
  const double expected =
      static_cast<double>(sc.zigbee_stats().payload_bytes_delivered) * 8.0 / 1000.0 /
      5.0;
  EXPECT_NEAR(sc.zigbee_goodput_kbps(), expected, 1e-9);
}

TEST(ScenarioTest, WifiDeliveryHealthy) {
  Scenario sc(config_for(Coordination::BiCord));
  sc.run_for(5_sec);
  EXPECT_GT(sc.wifi_delivery_ratio(), 0.95);
  EXPECT_GT(sc.wifi_delay_ms(0).count(), 100u);
}

TEST(ScenarioTest, PersonMobilityStillWorks) {
  auto cfg = config_for(Coordination::BiCord);
  cfg.person_mobility = true;
  Scenario sc(cfg);
  sc.run_for(1_sec);
  sc.start_measurement();
  sc.run_for(6_sec);
  EXPECT_GT(sc.zigbee_stats().delivery_ratio(), 0.9);
  EXPECT_GT(sc.utilization().total, 0.55);
}

TEST(ScenarioTest, DeviceMobilityStillWorks) {
  auto cfg = config_for(Coordination::BiCord);
  cfg.device_mobility = true;
  Scenario sc(cfg);
  sc.run_for(1_sec);
  sc.start_measurement();
  sc.run_for(6_sec);
  EXPECT_GT(sc.zigbee_stats().delivery_ratio(), 0.85);
}

TEST(ScenarioTest, DeviceMobilityMovesTheSender) {
  auto cfg = config_for(Coordination::BiCord);
  cfg.device_mobility = true;
  cfg.device_move_period = 100_ms;
  Scenario sc(cfg);
  const auto before = sc.medium().position(sc.zigbee_sender().node());
  sc.run_for(1_sec);
  const auto after = sc.medium().position(sc.zigbee_sender().node());
  EXPECT_GT(phy::distance(before, after), 0.0);
  EXPECT_LT(phy::distance(location_position(cfg.location), after), 1.0);
}

TEST(ScenarioTest, PriorityTrafficPolicyIgnoresDuringVideo) {
  auto cfg = config_for(Coordination::BiCord);
  cfg.wifi_traffic = WifiTrafficKind::Priority;
  cfg.wifi_high_share = 0.5;
  Scenario sc(cfg);
  sc.run_for(8_sec);
  EXPECT_GT(sc.bicord_wifi()->requests_ignored(), 0u);
  EXPECT_GT(sc.bicord_wifi()->whitespaces_granted(), 0u);
  // High-priority Wi-Fi frames keep flowing.
  EXPECT_GT(sc.wifi_delay_ms(1).count(), 50u);
}

TEST(ScenarioTest, DeterministicForSameSeed) {
  auto run = [](std::uint64_t seed) {
    Scenario sc(config_for(Coordination::BiCord, seed));
    sc.run_for(3_sec);
    return sc.zigbee_stats().delivered;
  };
  EXPECT_EQ(run(123), run(123));
}

TEST(ScenarioTest, SeedChangesOutcome) {
  auto run = [](std::uint64_t seed) {
    Scenario sc(config_for(Coordination::BiCord, seed));
    sc.run_for(3_sec);
    return sc.zigbee_stats().delay_ms.mean();
  };
  EXPECT_NE(run(123), run(321));
}

TEST(ScenarioTest, ToStringHelpers) {
  EXPECT_STREQ(to_string(Coordination::BiCord), "BiCord");
  EXPECT_STREQ(to_string(Coordination::Ecc), "ECC");
  EXPECT_STREQ(to_string(Coordination::Csma), "CSMA");
  EXPECT_STREQ(to_string(ZigbeeLocation::A), "A");
  EXPECT_STREQ(to_string(ZigbeeLocation::D), "D");
}

}  // namespace
}  // namespace bicord::coex
