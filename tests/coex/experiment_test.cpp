#include "coex/experiment.hpp"

#include <gtest/gtest.h>

namespace bicord::coex {
namespace {

using namespace bicord::time_literals;

ScenarioConfig quick_config() {
  ScenarioConfig cfg;
  cfg.seed = 1000;
  cfg.coordination = Coordination::BiCord;
  cfg.burst.packets_per_burst = 5;
  cfg.burst.payload_bytes = 50;
  cfg.burst.mean_interval = 200_ms;
  return cfg;
}

TEST(ExperimentRunnerTest, AggregatesAcrossSeeds) {
  ExperimentRunner runner(quick_config(), 200_ms, 2_sec);
  runner.add_metric("util", metric_total_utilization());
  runner.add_metric("delay", metric_zigbee_mean_delay_ms());
  runner.add_metric("delivery", metric_zigbee_delivery());
  const auto summaries = runner.run(4);
  ASSERT_EQ(summaries.size(), 3u);
  EXPECT_EQ(summaries[0].name, "util");
  EXPECT_EQ(summaries[0].stats.count(), 4u);
  EXPECT_GT(summaries[0].stats.mean(), 0.5);
  EXPECT_GT(summaries[1].stats.mean(), 5.0);
  EXPECT_GT(summaries[2].stats.mean(), 0.8);
  // Different seeds genuinely vary the runs.
  EXPECT_GT(summaries[1].stats.stddev(), 0.0);
}

TEST(ExperimentRunnerTest, Ci95ShrinksWithSamples) {
  ExperimentRunner small(quick_config(), 200_ms, 1_sec);
  small.add_metric("util", metric_total_utilization());
  ExperimentRunner large(quick_config(), 200_ms, 1_sec);
  large.add_metric("util", metric_total_utilization());
  const auto s = small.run(3);
  const auto l = large.run(9);
  if (s[0].stats.stddev() > 0 && l[0].stats.stddev() > 0) {
    EXPECT_LT(l[0].ci95(), s[0].ci95() * 1.5);
  }
  EXPECT_NE(l[0].to_string().find("+/-"), std::string::npos);
}

TEST(ExperimentRunnerTest, SingleRunHasZeroCi) {
  ExperimentRunner runner(quick_config(), 100_ms, 500_ms);
  runner.add_metric("delivery", metric_zigbee_delivery());
  const auto summaries = runner.run(1);
  EXPECT_DOUBLE_EQ(summaries[0].ci95(), 0.0);
}

TEST(ExperimentRunnerTest, ValidatesArguments) {
  EXPECT_THROW(ExperimentRunner(quick_config(), 0_ms, 0_ms), std::invalid_argument);
  ExperimentRunner runner(quick_config(), 0_ms, 1_sec);
  EXPECT_THROW(runner.add_metric("x", Metric{}), std::invalid_argument);
  EXPECT_THROW(runner.run(1), std::logic_error);  // no metrics
  runner.add_metric("util", metric_total_utilization());
  EXPECT_THROW(runner.run(0), std::invalid_argument);
}

TEST(ExperimentRunnerTest, GoodputAndZigbeeUtilMetrics) {
  ExperimentRunner runner(quick_config(), 200_ms, 1_sec);
  runner.add_metric("goodput", metric_zigbee_goodput_kbps());
  runner.add_metric("zb-util", metric_zigbee_utilization());
  const auto s = runner.run(2);
  EXPECT_GT(s[0].stats.mean(), 1.0);   // kbit/s
  EXPECT_GT(s[1].stats.mean(), 0.01);  // share
  EXPECT_LT(s[1].stats.mean(), 0.5);
}

}  // namespace
}  // namespace bicord::coex
