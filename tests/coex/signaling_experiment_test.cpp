#include "coex/signaling_experiment.hpp"

#include <gtest/gtest.h>

namespace bicord::coex {
namespace {

SignalingExperimentConfig base_config(int trials = 120) {
  SignalingExperimentConfig cfg;
  cfg.seed = 404;
  cfg.location = ZigbeeLocation::A;
  cfg.power_dbm = 0.0;
  cfg.control_packets = 4;
  cfg.trials = trials;
  return cfg;
}

TEST(SignalingExperimentTest, CountsAreConsistent) {
  const auto r = run_signaling_experiment(base_config());
  EXPECT_EQ(r.trials, 120);
  EXPECT_LE(r.detected_trials, r.trials);
  EXPECT_EQ(r.true_positives, r.detected_trials);
  EXPECT_GE(r.false_positives, 0);
  EXPECT_GE(r.recall(), 0.0);
  EXPECT_LE(r.recall(), 1.0);
  EXPECT_GE(r.precision(), 0.0);
  EXPECT_LE(r.precision(), 1.0);
}

TEST(SignalingExperimentTest, LocationAIsReliable) {
  const auto r = run_signaling_experiment(base_config());
  // Paper Table II anchor: ~0.93 recall at A / 0 dBm / 4 packets.
  EXPECT_GT(r.recall(), 0.8);
  EXPECT_GT(r.precision(), 0.9);
}

TEST(SignalingExperimentTest, RecallRisesWithPacketCount) {
  auto cfg3 = base_config();
  cfg3.control_packets = 3;
  auto cfg5 = base_config();
  cfg5.control_packets = 5;
  const auto r3 = run_signaling_experiment(cfg3);
  const auto r5 = run_signaling_experiment(cfg5);
  EXPECT_GE(r5.recall() + 0.03, r3.recall());  // small statistical slack
}

TEST(SignalingExperimentTest, LocationDNeedsLowPower) {
  auto high = base_config();
  high.location = ZigbeeLocation::D;
  high.power_dbm = 0.0;
  auto low = high;
  low.power_dbm = -3.0;
  const auto r_high = run_signaling_experiment(high);
  const auto r_low = run_signaling_experiment(low);
  // Sec. VIII-B: at D the ZigBee node silences the nearby Wi-Fi sender when
  // it signals too loudly; -3 dBm works far better than 0 dBm.
  EXPECT_GT(r_low.recall(), r_high.recall() + 0.2);
}

TEST(SignalingExperimentTest, WifiPrrBarelyAffected) {
  const auto r = run_signaling_experiment(base_config());
  EXPECT_GT(r.wifi_prr_baseline, 0.97);
  // Paper: 1-6 % PRR impact from signaling.
  EXPECT_GT(r.wifi_prr, r.wifi_prr_baseline - 0.08);
}

TEST(SignalingExperimentTest, AmplitudeOnlyAblationLosesPrecision) {
  auto naive = base_config();
  naive.amplitude_only = true;
  naive.detector.n_required = 1;
  const auto r_naive = run_signaling_experiment(naive);
  const auto r_paper = run_signaling_experiment(base_config());
  EXPECT_GT(r_naive.false_positives, r_paper.false_positives);
  EXPECT_LT(r_naive.precision(), r_paper.precision());
}

TEST(SignalingExperimentTest, DeterministicPerSeed) {
  const auto a = run_signaling_experiment(base_config(60));
  const auto b = run_signaling_experiment(base_config(60));
  EXPECT_EQ(a.detected_trials, b.detected_trials);
  EXPECT_EQ(a.false_positives, b.false_positives);
  EXPECT_DOUBLE_EQ(a.wifi_prr, b.wifi_prr);
}

}  // namespace
}  // namespace bicord::coex
