// Property-style end-to-end invariants: whatever the seed, workload, and
// coordination scheme, physical and accounting invariants must hold after a
// multi-second run of the full stack.

#include <gtest/gtest.h>

#include "coex/scenario.hpp"
#include "phy/tracer.hpp"

namespace bicord::coex {
namespace {

using namespace bicord::time_literals;

struct InvariantParam {
  std::uint64_t seed;
  Coordination scheme;
};

class ScenarioInvariants : public ::testing::TestWithParam<InvariantParam> {};

TEST_P(ScenarioInvariants, HoldAfterThreeSeconds) {
  const auto [seed, scheme] = GetParam();

  ScenarioConfig cfg;
  cfg.seed = seed;
  cfg.coordination = scheme;
  // Derive a varied workload from the seed.
  cfg.location = static_cast<ZigbeeLocation>(seed % 4);
  cfg.burst.packets_per_burst = 2 + static_cast<int>(seed % 9);
  cfg.burst.payload_bytes = 20 + static_cast<std::uint32_t>((seed * 7) % 90);
  cfg.burst.mean_interval = Duration::from_ms(120 + static_cast<std::int64_t>(seed % 5) * 80);
  cfg.person_mobility = (seed % 3) == 0;
  cfg.device_mobility = (seed % 5) == 0;

  Scenario sc(cfg);
  phy::MediumTracer tracer(sc.medium(), 1 << 15);
  sc.start_measurement();
  sc.run_for(3_sec);
  const Duration elapsed = 3_sec;

  // --- physical invariants ---------------------------------------------------
  // A half-duplex node can never be on the air longer than wall time.
  for (phy::NodeId n = 0; n < sc.medium().node_count(); ++n) {
    EXPECT_LE(sc.medium().airtime_of(n), elapsed) << "node " << n;
  }
  // Technology airtime is the sum over its (serialised per-node) senders.
  EXPECT_GE(sc.medium().airtime(phy::Technology::WiFi), Duration::zero());
  // Utilization shares are sane.
  const auto util = sc.utilization();
  EXPECT_GE(util.wifi, 0.0);
  EXPECT_GE(util.zigbee, 0.0);
  EXPECT_NEAR(util.total, util.wifi + util.zigbee, 1e-12);
  EXPECT_LT(util.total, 2.0);  // two technologies can overlap, each <= 1

  // Every traced transmission has positive duration and a valid source.
  for (const auto& r : tracer.records()) {
    EXPECT_LT(r.start, r.end);
    EXPECT_LT(r.src, sc.medium().node_count());
    EXPECT_GT(r.band_center_mhz, 2400.0);
    EXPECT_LT(r.band_center_mhz, 2500.0);
  }

  // --- accounting invariants ---------------------------------------------------
  const auto& zb = sc.zigbee_stats();
  EXPECT_EQ(zb.generated, zb.delivered + zb.dropped + sc.zigbee_agent().backlog());
  EXPECT_EQ(zb.delay_ms.count(), zb.delivered);
  for (double d : zb.delay_ms.values()) {
    EXPECT_GE(d, 0.0);
    EXPECT_LE(d, elapsed.ms());
  }
  EXPECT_EQ(zb.payload_bytes_delivered,
            zb.delivered * cfg.burst.payload_bytes);
  EXPECT_LE(sc.wifi_delivery_ratio(), 1.0);

  // --- scheme-specific sanity ---------------------------------------------------
  if (scheme == Coordination::BiCord) {
    auto* wifi_agent = sc.bicord_wifi();
    ASSERT_NE(wifi_agent, nullptr);
    EXPECT_LE(wifi_agent->whitespaces_granted(), wifi_agent->requests_detected());
    EXPECT_EQ(wifi_agent->grant_history().total(), wifi_agent->whitespaces_granted());
    for (Duration g : wifi_agent->grant_history()) {
      EXPECT_GT(g, Duration::zero());
      EXPECT_LE(g, cfg.allocator.max_whitespace);
    }
  }
}

std::vector<InvariantParam> make_params() {
  std::vector<InvariantParam> params;
  for (std::uint64_t seed = 1; seed <= 6; ++seed) {
    params.push_back({seed, Coordination::BiCord});
  }
  params.push_back({7, Coordination::Ecc});
  params.push_back({8, Coordination::Ecc});
  params.push_back({9, Coordination::Csma});
  return params;
}

INSTANTIATE_TEST_SUITE_P(
    Fuzz, ScenarioInvariants, ::testing::ValuesIn(make_params()),
    [](const ::testing::TestParamInfo<InvariantParam>& info) {
      return std::string(to_string(info.param.scheme)) + "_seed" +
             std::to_string(info.param.seed);
    });

}  // namespace
}  // namespace bicord::coex
