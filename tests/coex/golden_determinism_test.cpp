// Behavior-preservation goldens for the coordination-engine refactor.
//
// Pins the per-trial metrics of representative spec-built scenarios —
// default, fig10 in all three coordination modes, multinode, ble, and a
// fault-plan config — as hexfloat/integer lines against a committed golden
// file. Any change to agent state machines, event scheduling order, or RNG
// stream consumption shows up as a bitwise diff here. Regenerate (after an
// *intentional* behavior change only) with:
//
//   BICORD_UPDATE_GOLDEN=1 ./build/tests/coex_tests \
//       --gtest_filter='GoldenDeterminismTest.*'

#include <gtest/gtest.h>

#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <sstream>
#include <string>

#include "coex/ble_scenario.hpp"
#include "coex/experiment.hpp"
#include "coex/scenario.hpp"
#include "coex/scenario_spec.hpp"

using namespace bicord;
using namespace bicord::coex;

namespace {

std::string hex(double v) {
  char buf[48];
  std::snprintf(buf, sizeof(buf), "%a", v);
  return buf;
}

ScenarioSpec spec_for(const std::string& preset) {
  auto spec = ScenarioSpec::preset(preset);
  EXPECT_TRUE(spec.has_value()) << "unknown preset " << preset;
  return *spec;
}

/// One line of headline metrics + agent counters for a finished scenario.
std::string coex_line(const std::string& name, Scenario& s) {
  std::ostringstream out;
  const auto util = s.utilization();
  const auto& stats = s.zigbee_stats();
  out << name << " util=" << hex(util.total) << "," << hex(util.wifi) << ","
      << hex(util.zigbee) << " zb=" << stats.generated << "/" << stats.delivered
      << "/" << stats.dropped
      << " delay=" << hex(stats.delay_ms.empty() ? -1.0 : stats.delay_ms.mean())
      << " goodput=" << hex(s.zigbee_goodput_kbps())
      << " wifi_delivery=" << hex(s.wifi_delivery_ratio());
  if (auto* wifi = s.bicord_wifi()) {
    out << " wifi_agent=" << wifi->requests_detected() << "/"
        << wifi->whitespaces_granted() << "/" << wifi->requests_ignored() << "/"
        << wifi->watchdog_recoveries()
        << " ws=" << wifi->allocator().estimate().us() << "us";
  }
  if (auto* zb = s.bicord_zigbee()) {
    out << " zb_agent=" << zb->control_packets_sent() << "/" << zb->signaling_rounds()
        << "/" << zb->ignored_requests() << "/" << zb->give_ups();
  }
  if (s.zigbee_link_count() > 1) {
    const auto agg = s.aggregate_zigbee_stats();
    out << " agg=" << agg.generated << "/" << agg.delivered << "/" << agg.dropped
        << " agg_delay=" << hex(agg.delay_ms.empty() ? -1.0 : agg.delay_ms.mean());
  }
  if (s.dense_wifi_pair_count() > 0 || s.dense_zigbee_link_count() > 0 ||
      s.dense_ble_count() > 0) {
    out << " dense=" << s.dense_wifi_pair_count() << "/" << s.dense_zigbee_link_count()
        << "/" << s.dense_ble_count() << " dense_wifi_del=" << s.dense_wifi_delivered()
        << " dense_zb_del=" << s.dense_zigbee_delivered();
  }
  // Technology blocks only for the matching coordination mode, so every
  // historical line stays byte-identical.
  if (auto* g = s.lteu_grantor()) {
    out << " lteu=" << g->requests_detected() << "/" << g->suppressions_granted()
        << "/" << g->requests_ignored()
        << " enb=" << s.lteu_device()->bursts_sent() << "/"
        << s.lteu_device()->cycles_suppressed()
        << " lease_ws=" << g->allocator().estimate().us() << "us";
  }
  if (auto* r = s.tsch_requester()) {
    out << " tsch_agent=" << r->control_packets_sent() << "/"
        << r->signaling_rounds() << "/" << r->ignored_requests() << "/"
        << r->give_ups() << " hops=" << s.tsch_schedule()->hops();
  }
  // Election block only for multi-grantor scenarios, so every historical
  // single-grantor line above stays byte-identical.
  if (const auto* e = s.election()) {
    out << " election=" << e->member_count() << "/" << e->primary() << "/"
        << e->takeovers() << "/" << e->shadowed_cts() << "/"
        << e->requests_observed()
        << " handoff_gap=" << (e->max_handoff_gap().has_value()
                                   ? e->max_handoff_gap()->us()
                                   : -1)
        << "us";
  }
  return out.str();
}

std::string run_coex(const std::string& name, const ScenarioSpec& spec,
                     Duration warmup, Duration measure) {
  Scenario scenario(spec.must_config());
  scenario.run_for(warmup);
  scenario.start_measurement();
  scenario.run_for(measure);
  return coex_line(name, scenario);
}

std::string run_ble(const std::string& name, const ScenarioSpec& spec, Duration d) {
  BleScenario scenario(spec.must_ble_config());
  scenario.run_for(d);
  const auto r = scenario.report();
  std::ostringstream out;
  out << name << " zb_delivery=" << hex(r.zb_delivery)
      << " zb_delay=" << hex(r.zb_delay_ms)
      << " overhead=" << hex(r.zb_attempt_overhead)
      << " ble_success=" << hex(r.ble_success) << " leases=" << r.leases
      << " controls=" << r.controls;
  for (const auto& a : scenario.ble_agents()) {
    out << " agent=" << a->requests_detected() << "/" << a->leases_granted() << "/"
        << a->allocator().estimate().us() << "us";
  }
  return out.str();
}

std::string golden_blob() {
  std::ostringstream out;
  using namespace bicord::time_literals;

  out << run_coex("default", spec_for("default"), 500_ms, 2_sec) << "\n";

  // Fig. 10 cell (203.12 ms interval) in each coordination mode; ECC uses
  // the bench's 20 ms blind white space.
  for (const char* mode : {"bicord", "ecc", "csma"}) {
    auto spec = spec_for("fig10");
    spec.set("coordination", mode);
    spec.set("burst.interval", Duration::from_us(203120));
    spec.set("ecc.whitespace", 20_ms);
    out << run_coex(std::string("fig10-") + mode, spec, 1_sec, 3_sec) << "\n";
  }

  out << run_coex("multinode", spec_for("multinode"), 1_sec, 3_sec) << "\n";

  {
    // Densify the BLE cluster so delivery failures actually trigger the
    // signal -> lease -> expire loop inside the golden window.
    auto spec = spec_for("ble");
    spec.set("ble.links", 16);
    out << run_ble("ble", spec, 5_sec) << "\n";
  }

  {
    auto spec = spec_for("default");
    spec.set("fault.preset", "mixed");
    out << run_coex("fault-mixed", spec, 500_ms, 3_sec) << "\n";
  }

  // Dense family: the spatially-indexed medium at scale. The `dense` preset
  // carries its own churn plan (field links leaving and rejoining), so its
  // golden pins the spatial index, the clustered placement, and the fault
  // hooks together; the dense1k pair pins that an empty fault plan and a
  // populated one differ only through the faults themselves.
  out << run_coex("dense", spec_for("dense"), 500_ms, 2500_ms) << "\n";
  {
    auto spec = spec_for("dense1k");
    out << run_coex("dense1k-nofault", spec, 250_ms, 750_ms) << "\n";
    spec.set("fault.preset", "mixed");
    out << run_coex("dense1k-mixed", spec, 250_ms, 750_ms) << "\n";
  }

  // Multi-grantor family, appended after every historical line: the election
  // counters (takeovers, shadowed CTS, handoff gap) are pinned alongside the
  // headline metrics, and the failover preset additionally pins the ±200 ppm
  // clock-skew draws and the mid-run primary kill/rejoin.
  out << run_coex("multigrantor", spec_for("multigrantor"), 500_ms, 2500_ms) << "\n";
  out << run_coex("failover", spec_for("failover"), 500_ms, 4500_ms) << "\n";

  // Traits-counter pinning across the remaining paper presets: after the
  // port-seam inversion every legacy preset's wifi/zigbee agent counters are
  // pinned bitwise, proving kWifiTraits behaviour came through untouched.
  for (const char* preset : {"motivation", "table1", "fig7", "fig8", "fig9",
                             "fig11", "fig12", "fig13"}) {
    out << run_coex(preset, spec_for(preset), 500_ms, 1500_ms) << "\n";
  }

  // Third and fourth technologies, appended last: the LTE-U lease loop
  // (energy-envelope requests, duty-cycle suppression) and the TSCH hopping
  // requester under the clock-bounded kTschTraits grant path.
  out << run_coex("lteu", spec_for("lteu"), 500_ms, 2500_ms) << "\n";
  out << run_coex("tsch", spec_for("tsch"), 500_ms, 2500_ms) << "\n";
  return out.str();
}

}  // namespace

TEST(GoldenDeterminismTest, MatchesCommittedGolden) {
  const std::string path = BICORD_GOLDEN_FILE;
  const std::string blob = golden_blob();
  if (std::getenv("BICORD_UPDATE_GOLDEN") != nullptr) {
    std::ofstream out(path, std::ios::binary | std::ios::trunc);
    ASSERT_TRUE(out.good()) << "cannot write " << path;
    out << blob;
    GTEST_SKIP() << "golden file updated: " << path;
  }
  std::ifstream in(path, std::ios::binary);
  ASSERT_TRUE(in.good()) << "missing golden file " << path
                         << " — run with BICORD_UPDATE_GOLDEN=1 to create it";
  std::stringstream want;
  want << in.rdbuf();
  EXPECT_EQ(want.str(), blob)
      << "scenario output diverged from the committed golden — if this change "
         "in behavior is intentional, regenerate with BICORD_UPDATE_GOLDEN=1";
}

TEST(GoldenDeterminismTest, RepeatedRunIsBitwiseStable) {
  using namespace bicord::time_literals;
  auto spec = spec_for("default");
  const std::string a = run_coex("x", spec, 500_ms, 1_sec);
  const std::string b = run_coex("x", spec, 500_ms, 1_sec);
  EXPECT_EQ(a, b);
}

TEST(GoldenDeterminismTest, DenseJobsOneVsEightBitwiseIdentical) {
  using namespace bicord::time_literals;
  // Same shape as the default-preset jobs test, but on the spatially-indexed
  // dense preset: per-trial seeds must survive parallel dispatch even when
  // the medium runs the grid path and the scenario carries a churn plan.
  auto make = [] {
    ExperimentRunner runner(ScenarioSpec::preset("dense")->must_config(),
                            250_ms, 750_ms);
    runner.add_metric("util", metric_total_utilization());
    runner.add_metric("delay", metric_zigbee_mean_delay_ms());
    runner.add_metric("delivery", metric_zigbee_delivery());
    return runner;
  };
  auto seq = make();
  seq.set_jobs(1);
  const auto a = seq.run(4);
  auto par = make();
  par.set_jobs(8);
  const auto b = par.run(4);
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i].stats.mean(), b[i].stats.mean()) << a[i].name;
    EXPECT_EQ(a[i].stats.stddev(), b[i].stats.stddev()) << a[i].name;
    EXPECT_EQ(a[i].stats.count(), b[i].stats.count()) << a[i].name;
  }
}

TEST(GoldenDeterminismTest, MultigrantorJobsOneVsEightBitwiseIdentical) {
  using namespace bicord::time_literals;
  // The election layer must not perturb per-trial seeding under parallel
  // dispatch: extra grantor APs, the shared election, and the takeover timer
  // all live inside one trial's simulator.
  auto make = [] {
    ExperimentRunner runner(ScenarioSpec::preset("multigrantor")->must_config(),
                            250_ms, 750_ms);
    runner.add_metric("util", metric_total_utilization());
    runner.add_metric("delay", metric_zigbee_mean_delay_ms());
    runner.add_metric("delivery", metric_zigbee_delivery());
    return runner;
  };
  auto seq = make();
  seq.set_jobs(1);
  const auto a = seq.run(4);
  auto par = make();
  par.set_jobs(8);
  const auto b = par.run(4);
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i].stats.mean(), b[i].stats.mean()) << a[i].name;
    EXPECT_EQ(a[i].stats.stddev(), b[i].stats.stddev()) << a[i].name;
    EXPECT_EQ(a[i].stats.count(), b[i].stats.count()) << a[i].name;
  }
}

// --- sim.threads: intra-simulation parallelism ------------------------------
//
// The whole point of the sharded dispatcher and the phased medium fan-out is
// that per-seed output never depends on sim.threads. These tests compare the
// complete metric line (hexfloat — bitwise) of a serial run against an
// 8-thread run of the same spec, for each gate scenario named in the
// acceptance criteria: dense, dense1k with a fault plan, and multigrantor.

std::string threads_line(const std::string& preset, int threads,
                         const std::string& fault, Duration warmup,
                         Duration measure) {
  auto spec = spec_for(preset);
  spec.set("sim.threads", threads);
  if (!fault.empty()) spec.set("fault.preset", fault);
  return run_coex(preset, spec, warmup, measure);
}

TEST(GoldenDeterminismTest, DenseSimThreadsOneVsEightBitwiseIdentical) {
  using namespace bicord::time_literals;
  EXPECT_EQ(threads_line("dense", 1, "", 250_ms, 750_ms),
            threads_line("dense", 8, "", 250_ms, 750_ms));
}

TEST(GoldenDeterminismTest, Dense1kMixedFaultsSimThreadsOneVsEightBitwiseIdentical) {
  using namespace bicord::time_literals;
  // Fault plans replay through the barrier queue; the injected drops,
  // corruptions, and node churn must land on identical events either way.
  EXPECT_EQ(threads_line("dense1k", 1, "mixed", 250_ms, 500_ms),
            threads_line("dense1k", 8, "mixed", 250_ms, 500_ms));
}

TEST(GoldenDeterminismTest, MultigrantorSimThreadsOneVsEightBitwiseIdentical) {
  using namespace bicord::time_literals;
  // The election layer (takeover timers, shadowed CTS, ±ppm clock skew)
  // shares the barrier queue; its counters are part of the compared line.
  EXPECT_EQ(threads_line("multigrantor", 1, "", 250_ms, 750_ms),
            threads_line("multigrantor", 8, "", 250_ms, 750_ms));
}

TEST(GoldenDeterminismTest, SimThreadsComposeWithJobsBitwiseIdentical) {
  using namespace bicord::time_literals;
  // sim.threads inside each trial, --jobs across trials: the two layers of
  // parallelism must compose without perturbing per-trial seeds. The budget
  // helper divides the worker count, so this also exercises
  // resolve_jobs_budgeted at runtime.
  auto make = [](int threads) {
    auto spec = *ScenarioSpec::preset("dense");
    spec.set("sim.threads", threads);
    ExperimentRunner runner(spec.must_config(), 250_ms, 500_ms);
    runner.add_metric("util", metric_total_utilization());
    runner.add_metric("delivery", metric_zigbee_delivery());
    return runner;
  };
  auto serial = make(1);
  serial.set_jobs(1);
  const auto a = serial.run(3);
  auto par = make(4);
  par.set_jobs(8);
  const auto b = par.run(3);
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i].stats.mean(), b[i].stats.mean()) << a[i].name;
    EXPECT_EQ(a[i].stats.stddev(), b[i].stats.stddev()) << a[i].name;
  }
}

TEST(GoldenDeterminismTest, TschSimThreadsOneVsEightBitwiseIdentical) {
  using namespace bicord::time_literals;
  // Frequency agility under sharded dispatch: the lockstep hop retunes and
  // the lease-based grant path must land on identical events either way.
  EXPECT_EQ(threads_line("tsch", 1, "", 500_ms, 1500_ms),
            threads_line("tsch", 8, "", 500_ms, 1500_ms));
}

TEST(GoldenDeterminismTest, LteuSimThreadsOneVsEightBitwiseIdentical) {
  using namespace bicord::time_literals;
  // The eNB's raw wideband begin_tx (no radio behind it) rides the phased
  // medium fan-out the same way the dense BLE interferers do.
  EXPECT_EQ(threads_line("lteu", 1, "", 500_ms, 1500_ms),
            threads_line("lteu", 8, "", 500_ms, 1500_ms));
}

TEST(GoldenDeterminismTest, TschJobsOneVsEightBitwiseIdentical) {
  using namespace bicord::time_literals;
  auto make = [] {
    ExperimentRunner runner(ScenarioSpec::preset("tsch")->must_config(),
                            500_ms, 1_sec);
    runner.add_metric("util", metric_total_utilization());
    runner.add_metric("delay", metric_zigbee_mean_delay_ms());
    runner.add_metric("delivery", metric_zigbee_delivery());
    return runner;
  };
  auto seq = make();
  seq.set_jobs(1);
  const auto a = seq.run(4);
  auto par = make();
  par.set_jobs(8);
  const auto b = par.run(4);
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i].stats.mean(), b[i].stats.mean()) << a[i].name;
    EXPECT_EQ(a[i].stats.stddev(), b[i].stats.stddev()) << a[i].name;
    EXPECT_EQ(a[i].stats.count(), b[i].stats.count()) << a[i].name;
  }
}

TEST(GoldenDeterminismTest, JobsOneVsEightBitwiseIdentical) {
  using namespace bicord::time_literals;
  auto make = [] {
    ExperimentRunner runner(ScenarioSpec::preset("default")->must_config(),
                            500_ms, 1_sec);
    runner.add_metric("util", metric_total_utilization());
    runner.add_metric("delay", metric_zigbee_mean_delay_ms());
    runner.add_metric("delivery", metric_zigbee_delivery());
    runner.add_metric("goodput", metric_zigbee_goodput_kbps());
    return runner;
  };
  auto seq = make();
  seq.set_jobs(1);
  const auto a = seq.run(6);
  auto par = make();
  par.set_jobs(8);
  const auto b = par.run(6);
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i].stats.mean(), b[i].stats.mean()) << a[i].name;
    EXPECT_EQ(a[i].stats.stddev(), b[i].stats.stddev()) << a[i].name;
    EXPECT_EQ(a[i].stats.count(), b[i].stats.count()) << a[i].name;
  }
}
