#include "coex/cti_training.hpp"

#include <gtest/gtest.h>

namespace bicord::coex {
namespace {

// The full paper-scale collection (200 segments x 6 sources) runs in the
// bench; tests use a reduced set for speed.
CtiTrainingResult small_pipeline(std::uint64_t seed = 42) {
  CtiTrainingConfig cfg;
  cfg.seed = seed;
  cfg.segments_per_source = 60;
  return train_cti_pipeline(cfg);
}

TEST(CtiTrainingTest, CollectsBalancedSegments) {
  const auto result = small_pipeline();
  // 6 source configurations (ZigBee, BT, microwave, 3 Wi-Fi distances).
  EXPECT_EQ(result.training_segments + result.test_segments, 6u * 60u);
  EXPECT_EQ(result.training_segments, result.test_segments);
}

TEST(CtiTrainingTest, WifiDetectionAccuracyHigh) {
  const auto result = small_pipeline();
  // Paper: 96.39 %. Demand > 90 % from the reduced training set.
  EXPECT_GT(result.wifi_detection_accuracy, 0.90);
}

TEST(CtiTrainingTest, MultiClassAccuracyReasonable) {
  const auto result = small_pipeline();
  EXPECT_GT(result.tech_accuracy, 0.80);
}

TEST(CtiTrainingTest, DeviceIdentificationWellAboveChance) {
  const auto result = small_pipeline();
  // Paper: 89.76 % for 3 devices (chance = 33 %).
  EXPECT_GT(result.device_accuracy, 0.70);
  EXPECT_GE(result.device_accuracy_std, 0.0);
  EXPECT_LT(result.device_accuracy_std, 0.25);
}

TEST(CtiTrainingTest, ClassifierUsableDownstream) {
  auto result = small_pipeline();
  EXPECT_TRUE(result.classifier.trained());
  EXPECT_TRUE(result.identifier.built());
  EXPECT_EQ(result.identifier.cluster_count(), 3);
  EXPECT_GT(result.classifier.training_accuracy(), 0.9);
}

TEST(CtiTrainingTest, DeterministicForSeed) {
  const auto a = small_pipeline(7);
  const auto b = small_pipeline(7);
  EXPECT_DOUBLE_EQ(a.wifi_detection_accuracy, b.wifi_detection_accuracy);
  EXPECT_DOUBLE_EQ(a.device_accuracy, b.device_accuracy);
}

}  // namespace
}  // namespace bicord::coex
