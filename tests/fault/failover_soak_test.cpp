// Failover soak: the `failover` preset (testbed grantor F + two shadow APs,
// ±200 ppm per-agent crystal drift, mid-run primary kill and rejoin) across
// 16 seeds. Every seed must hold both failover invariants — no double-grant
// overlap, every handoff gap within grace + lease margin — and the fleet as
// a whole must actually exercise takeovers and shadowing. This is the tier-1
// variant of `scripts/check.sh failover` (same rig under ASan/TSan).

#include <gtest/gtest.h>

#include <cstdint>
#include <tuple>

#include "coex/scenario.hpp"
#include "coex/scenario_spec.hpp"
#include "fault/invariant_checker.hpp"

namespace bicord::fault {
namespace {

using namespace bicord::time_literals;
using coex::Scenario;
using coex::ScenarioConfig;

ScenarioConfig failover_config(std::uint64_t seed) {
  auto spec = coex::ScenarioSpec::preset("failover");
  spec->set("seed", seed);
  return spec->must_config();
}

TEST(FailoverSoakTest, SixteenSeedsHoldFailoverInvariants) {
  std::uint64_t total_takeovers = 0;
  std::uint64_t total_shadowed = 0;
  std::uint64_t filled_handoffs = 0;
  for (std::uint64_t seed = 1; seed <= 16; ++seed) {
    Scenario sc(failover_config(seed));
    ASSERT_NE(sc.bicord_wifi(), nullptr);
    ASSERT_NE(sc.bicord_zigbee(), nullptr);
    ASSERT_NE(sc.election(), nullptr);
    ASSERT_NE(sc.fault_injector(), nullptr);
    ASSERT_EQ(sc.election()->member_count(), 3u);

    InvariantChecker checker(sc.simulator());
    checker.watch_wifi(*sc.bicord_wifi());
    checker.watch_zigbee(*sc.bicord_zigbee());
    checker.watch_election(*sc.election());
    checker.start();

    // The preset kills F at 1.5 s and rejoins it at 4.5 s; run past both,
    // then drain so end-of-run checks see a quiet band.
    sc.run_for(6_sec);
    sc.burst_source().stop();
    sc.run_for(1500_ms);
    checker.finish(sc.fault_injector());

    EXPECT_TRUE(checker.ok()) << "seed " << seed << ":\n" << checker.report();
    EXPECT_GT(checker.checks_run(), 0u);

    const auto& c = sc.fault_injector()->counters();
    EXPECT_EQ(c.clock_skew_activations, 1u) << "seed " << seed;
    EXPECT_EQ(c.node_leaves, 1u) << "seed " << seed;
    EXPECT_EQ(c.node_joins, 1u) << "seed " << seed;

    const auto* election = sc.election();
    total_takeovers += election->takeovers();
    total_shadowed += election->shadowed_cts();
    const Duration bound = election->handoff_bound();
    for (const auto& h : election->handoffs()) {
      if (!h.first_grant.has_value()) continue;
      ++filled_handoffs;
      EXPECT_LE(*h.first_grant - h.request, bound) << "seed " << seed;
    }
  }
  // The rig is only a soak if the failover machinery actually ran.
  EXPECT_GT(total_takeovers, 0u);
  EXPECT_GT(total_shadowed, 0u);
  EXPECT_GT(filled_handoffs, 0u);
}

TEST(FailoverSoakTest, SameSeedRunsAreBitwiseIdentical) {
  auto soak = [](std::uint64_t seed) {
    Scenario sc(failover_config(seed));
    sc.start_measurement();
    sc.run_for(6_sec);
    const auto util = sc.utilization();
    const auto* e = sc.election();
    return std::tuple{sc.zigbee_stats().generated,
                      sc.zigbee_stats().delivered,
                      util.total,
                      util.wifi,
                      util.zigbee,
                      e->takeovers(),
                      e->shadowed_cts(),
                      e->requests_observed(),
                      e->primary(),
                      sc.bicord_wifi()->whitespaces_granted()};
  };
  EXPECT_EQ(soak(11), soak(11));
}

TEST(FailoverSoakTest, PrimaryKillPromotesAndRejoinRestores) {
  // Deterministic storyline on the preset seed: F is primary at build time,
  // a secondary holds the role while F is down, and F (best metric) wins the
  // role back after it rejoins and a takeover cycles succession to it.
  Scenario sc(failover_config(4040));
  const auto* election = sc.election();
  ASSERT_NE(election, nullptr);
  // F joins the election first (member 0) and, at ~1.3 m from the requester,
  // out-ranks the extras at 2.5 m and 4 m.
  const auto f_member = election->primary();
  EXPECT_EQ(f_member, 0u);

  sc.run_for(3_sec);  // kill at 1.5 s has happened, rejoin has not
  EXPECT_TRUE(sc.bicord_wifi()->offline());
  EXPECT_NE(election->primary(), f_member);
  EXPECT_GT(election->takeovers(), 0u);

  sc.run_for(4_sec);  // past the 4.5 s rejoin
  EXPECT_FALSE(sc.bicord_wifi()->offline());
}

}  // namespace
}  // namespace bicord::fault
