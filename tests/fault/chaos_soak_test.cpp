// Chaos soak: the "mixed" preset throws every fault family at a full BiCord
// scenario while the always-on InvariantChecker watches for wedged agents,
// runaway queues, and unanswered faults. This is the short tier-1 variant of
// the soak that `scripts/check.sh chaos` runs under ASan/UBSan and TSan.

#include <gtest/gtest.h>

#include <tuple>

#include "coex/experiment.hpp"
#include "coex/scenario.hpp"
#include "fault/fault_plan.hpp"
#include "fault/invariant_checker.hpp"

namespace bicord::fault {
namespace {

using namespace bicord::time_literals;
using coex::Coordination;
using coex::Scenario;
using coex::ScenarioConfig;

ScenarioConfig soak_config(std::uint64_t seed) {
  ScenarioConfig cfg;
  cfg.seed = seed;
  cfg.coordination = Coordination::BiCord;
  cfg.location = coex::ZigbeeLocation::A;
  cfg.burst.packets_per_burst = 5;
  cfg.burst.payload_bytes = 60;
  cfg.burst.mean_interval = 200_ms;
  cfg.fault_plan = *FaultPlan::preset("mixed");
  return cfg;
}

TEST(ChaosSoakTest, MixedPresetEveryFaultIsAbsorbed) {
  Scenario sc(soak_config(42));
  ASSERT_NE(sc.bicord_wifi(), nullptr);
  ASSERT_NE(sc.bicord_zigbee(), nullptr);

  InvariantChecker checker(sc.simulator());
  checker.watch_wifi(*sc.bicord_wifi());
  checker.watch_zigbee(*sc.bicord_zigbee());
  checker.start();

  // The mixed preset's last activation is at 4.5 s; run past it, then drain.
  sc.run_for(6_sec);
  sc.burst_source().stop();
  sc.run_for(1500_ms);

  checker.finish(sc.fault_injector());
  EXPECT_TRUE(checker.ok()) << checker.report();
  EXPECT_GT(checker.checks_run(), 0u);

  // Every fault family in the preset actually fired.
  const auto& c = sc.fault_injector()->counters();
  EXPECT_GE(c.cts_corrupted, 1u);
  EXPECT_EQ(c.pause_ends_swallowed, 1u);
  EXPECT_GE(c.detector_false_positives, 2u);
  EXPECT_EQ(c.detector_fn_windows, 1u);
  EXPECT_EQ(c.csi_dropout_windows, 2u);
  EXPECT_EQ(c.rssi_glitch_windows, 2u);
  EXPECT_GT(c.frames_corrupted, 0u);
  EXPECT_EQ(c.clock_jitter_windows, 1u);
  EXPECT_EQ(c.burst_shifts, 2u);
  EXPECT_EQ(c.node_leaves, 1u);
  EXPECT_EQ(c.node_joins, 1u);

  // Recovery pairing: every swallowed pause-end answered by the watchdog,
  // no grant left outstanding, the ZigBee link fully drained.
  EXPECT_GE(sc.bicord_wifi()->watchdog_recoveries(), c.pause_ends_swallowed);
  EXPECT_FALSE(sc.bicord_wifi()->grant_outstanding());
  EXPECT_EQ(sc.zigbee_agent().backlog(), 0u);
  const auto& zb = sc.zigbee_stats();
  EXPECT_EQ(zb.generated, zb.delivered + zb.dropped);
  EXPECT_GT(zb.delivered, 0u);
}

TEST(ChaosSoakTest, SameSeedRunsAreBitwiseIdentical) {
  auto soak = [](std::uint64_t seed) {
    Scenario sc(soak_config(seed));
    sc.start_measurement();
    sc.run_for(6_sec);
    const auto util = sc.utilization();
    const auto& c = sc.fault_injector()->counters();
    auto* wifi = sc.bicord_wifi();
    return std::tuple{
        sc.zigbee_stats().generated,  sc.zigbee_stats().delivered,
        sc.zigbee_stats().dropped,    util.total,
        util.wifi,                    util.zigbee,
        c.total(),                    c.frames_corrupted,
        wifi->whitespaces_granted(),  wifi->watchdog_recoveries(),
        wifi->grant_history().mean_ms(), sc.bicord_zigbee()->give_ups()};
  };
  EXPECT_EQ(soak(7), soak(7));
}

TEST(ChaosSoakTest, JobsCountDoesNotChangeAggregates) {
  auto run_with_jobs = [](int jobs) {
    coex::ExperimentRunner runner(soak_config(1), 500_ms, 2_sec);
    runner.add_metric("delivery", coex::metric_zigbee_delivery());
    runner.add_metric("util", coex::metric_total_utilization());
    runner.set_jobs(jobs);
    return runner.run(4);
  };
  const auto serial = run_with_jobs(1);
  const auto threaded = run_with_jobs(3);
  ASSERT_EQ(serial.size(), threaded.size());
  for (std::size_t i = 0; i < serial.size(); ++i) {
    EXPECT_EQ(serial[i].stats.count(), threaded[i].stats.count());
    EXPECT_EQ(serial[i].stats.mean(), threaded[i].stats.mean()) << serial[i].name;
    EXPECT_EQ(serial[i].stats.stddev(), threaded[i].stats.stddev()) << serial[i].name;
  }
}

TEST(ChaosSoakTest, SoakUnderIgnorePolicyStaysBounded) {
  // Faults while the Wi-Fi side ignores every request: the give-up path and
  // the invariant checker must both hold.
  auto cfg = soak_config(9);
  cfg.wifi_grants_requests = false;
  Scenario sc(cfg);
  ASSERT_NE(sc.bicord_zigbee(), nullptr);

  InvariantChecker checker(sc.simulator());
  checker.watch_zigbee(*sc.bicord_zigbee());
  checker.start();

  sc.run_for(6_sec);
  sc.burst_source().stop();
  sc.run_for(2_sec);

  checker.finish(sc.fault_injector());
  EXPECT_TRUE(checker.ok()) << checker.report();
  EXPECT_GE(sc.bicord_zigbee()->give_ups(), 1u);
  // Saturated Wi-Fi + ignore policy means the backlog need not drain; the
  // guarantee is exact accounting with no wedged agent (checker above).
  const auto& zb = sc.zigbee_stats();
  EXPECT_EQ(zb.generated, zb.delivered + zb.dropped + sc.zigbee_agent().backlog());
}

}  // namespace
}  // namespace bicord::fault
