// FaultPlan: presets, the text DSL, and describe().

#include "fault/fault_plan.hpp"

#include <gtest/gtest.h>

namespace bicord::fault {
namespace {

using namespace bicord::time_literals;

TEST(FaultPlanTest, PresetsExistAndAreNonEmpty) {
  for (const char* name : {"cts-loss", "detector", "rssi", "burst-shift", "frame-loss",
                           "clock-jitter", "mixed"}) {
    const auto plan = FaultPlan::preset(name);
    ASSERT_TRUE(plan.has_value()) << name;
    EXPECT_FALSE(plan->empty()) << name;
  }
  EXPECT_FALSE(FaultPlan::preset("no-such-plan").has_value());
}

TEST(FaultPlanTest, MixedPresetConcatenatesAllParts) {
  const auto mixed = FaultPlan::preset("mixed");
  std::size_t parts_total = 0;
  for (const char* name : {"cts-loss", "detector", "rssi", "burst-shift", "frame-loss",
                           "clock-jitter"}) {
    parts_total += FaultPlan::preset(name)->size();
  }
  EXPECT_EQ(mixed->size(), parts_total);
}

TEST(FaultPlanTest, ParsesTheDsl) {
  const std::string text =
      "# chaos plan\n"
      "cts-loss at=1s count=2\n"
      "\n"
      "frame-corrupt at=800ms window=1.5s prob=0.25 tech=zigbee\n"
      "rssi-glitch at=2500ms window=400ms mag=-30\n"
      "burst-shift at=1500ms packets=12 interval=120ms\n"
      "node-leave at=3s link=1\n";
  std::string error;
  const auto plan = FaultPlan::parse(text, &error);
  ASSERT_TRUE(plan.has_value()) << error;
  ASSERT_EQ(plan->size(), 5u);

  const auto& ev = plan->events();
  EXPECT_EQ(ev[0].kind, FaultKind::CtsLoss);
  EXPECT_EQ(ev[0].at, TimePoint::origin() + 1_sec);
  EXPECT_EQ(ev[0].count, 2);
  EXPECT_EQ(ev[1].kind, FaultKind::FrameCorrupt);
  EXPECT_EQ(ev[1].window, 1500_ms);
  EXPECT_DOUBLE_EQ(ev[1].probability, 0.25);
  EXPECT_EQ(ev[1].tech, phy::Technology::ZigBee);
  EXPECT_EQ(ev[2].kind, FaultKind::RssiGlitch);
  EXPECT_DOUBLE_EQ(ev[2].magnitude, -30.0);
  EXPECT_EQ(ev[3].kind, FaultKind::BurstShift);
  EXPECT_EQ(ev[3].burst_packets, 12);
  EXPECT_EQ(ev[3].burst_interval, 120_ms);
  EXPECT_EQ(ev[4].kind, FaultKind::NodeLeave);
  EXPECT_EQ(ev[4].link, 1);
}

TEST(FaultPlanTest, ParseRejectsMalformedInput) {
  std::string error;
  EXPECT_FALSE(FaultPlan::parse("frob at=1s", &error).has_value());
  EXPECT_NE(error.find("unknown fault kind"), std::string::npos);

  EXPECT_FALSE(FaultPlan::parse("cts-loss count=2", &error).has_value());
  EXPECT_NE(error.find("missing at="), std::string::npos);

  EXPECT_FALSE(FaultPlan::parse("cts-loss at=fast", &error).has_value());
  EXPECT_FALSE(FaultPlan::parse("cts-loss at=1s count=two", &error).has_value());
  EXPECT_FALSE(FaultPlan::parse("cts-loss at=1s bogus=1", &error).has_value());
  EXPECT_FALSE(FaultPlan::parse("frame-corrupt at=1s tech=lte", &error).has_value());
}

TEST(FaultPlanTest, ParseAcceptsCommentsAndBlankLines) {
  const auto plan = FaultPlan::parse("\n# nothing but comments\n\n");
  ASSERT_TRUE(plan.has_value());
  EXPECT_TRUE(plan->empty());
}

TEST(FaultPlanTest, DescribeMentionsEveryEvent) {
  const auto plan = FaultPlan::preset("mixed");
  const std::string text = plan->describe();
  for (const char* token : {"cts-loss", "pause-end-loss", "csi-dropout", "detector-fp",
                            "detector-fn", "rssi-glitch", "burst-shift", "node-leave",
                            "node-join", "frame-corrupt", "clock-jitter"}) {
    EXPECT_NE(text.find(token), std::string::npos) << token;
  }
}

TEST(FaultPlanTest, DescribeRoundTripsThroughParse) {
  // describe() output is not the DSL (times print as timestamps), but every
  // preset must survive a manual DSL round trip of its own fields.
  const std::string text =
      "pause-end-loss at=2200ms count=1\n"
      "detector-fp at=3s\n"
      "clock-jitter at=500ms window=5s mag=0.2\n";
  const auto plan = FaultPlan::parse(text);
  ASSERT_TRUE(plan.has_value());
  EXPECT_EQ(plan->size(), 3u);
  EXPECT_EQ(plan->events()[2].kind, FaultKind::ClockJitter);
  EXPECT_DOUBLE_EQ(plan->events()[2].magnitude, 0.2);
}

}  // namespace
}  // namespace bicord::fault
