// FaultInjector behavior, one fault kind at a time, through the full
// Scenario wiring: every injected fault must show up in the counters and the
// protocol must absorb it (recover or give up in a bounded way).

#include <gtest/gtest.h>

#include "coex/scenario.hpp"
#include "fault/fault_plan.hpp"

namespace bicord::fault {
namespace {

using namespace bicord::time_literals;
using coex::Coordination;
using coex::Scenario;
using coex::ScenarioConfig;
using coex::ZigbeeLocation;

ScenarioConfig base_config(std::uint64_t seed) {
  ScenarioConfig cfg;
  cfg.seed = seed;
  cfg.coordination = Coordination::BiCord;
  cfg.location = ZigbeeLocation::A;
  cfg.burst.packets_per_burst = 5;
  cfg.burst.payload_bytes = 60;
  cfg.burst.mean_interval = 200_ms;
  return cfg;
}

FaultPlan plan_from(const std::string& text) {
  std::string error;
  auto plan = FaultPlan::parse(text, &error);
  EXPECT_TRUE(plan.has_value()) << error;
  return plan.value_or(FaultPlan{});
}

TEST(FaultInjectorTest, EmptyPlanBuildsNoInjector) {
  Scenario sc(base_config(11));
  EXPECT_EQ(sc.fault_injector(), nullptr);
}

TEST(FaultInjectorTest, CtsLossCorruptsGrantsAndAgentRecovers) {
  auto cfg = base_config(12);
  cfg.fault_plan = plan_from("cts-loss at=500ms count=2");
  Scenario sc(cfg);
  sc.run_for(3_sec);

  ASSERT_NE(sc.fault_injector(), nullptr);
  EXPECT_EQ(sc.fault_injector()->counters().cts_corrupted, 2u);

  // Drain: with the workload stopped, no grant may stay outstanding.
  sc.burst_source().stop();
  sc.run_for(1_sec);
  ASSERT_NE(sc.bicord_wifi(), nullptr);
  EXPECT_FALSE(sc.bicord_wifi()->grant_outstanding());
  // Life goes on: packets still flowed despite the corrupted grants.
  EXPECT_GT(sc.zigbee_stats().delivered, 0u);
}

TEST(FaultInjectorTest, PauseEndLossIsRescuedByWatchdog) {
  auto cfg = base_config(13);
  cfg.fault_plan = plan_from("pause-end-loss at=1s count=1");
  Scenario sc(cfg);
  sc.run_for(4_sec);

  const auto& counters = sc.fault_injector()->counters();
  EXPECT_EQ(counters.pause_ends_swallowed, 1u);
  ASSERT_NE(sc.bicord_wifi(), nullptr);
  EXPECT_GE(sc.bicord_wifi()->watchdog_recoveries(), counters.pause_ends_swallowed);
  EXPECT_FALSE(sc.bicord_wifi()->grant_outstanding());
}

TEST(FaultInjectorTest, ControlDeafDropsControlPackets) {
  auto cfg = base_config(14);
  cfg.fault_plan = plan_from("control-deaf at=500ms count=4");
  Scenario sc(cfg);
  sc.run_for(4_sec);

  EXPECT_EQ(sc.fault_injector()->counters().controls_dropped, 4u);
  // Bounded retries + backoff keep the link alive afterwards.
  EXPECT_GT(sc.zigbee_stats().delivered, 0u);
}

TEST(FaultInjectorTest, DetectorFalsePositiveForcesADetection) {
  auto cfg = base_config(15);
  // Keep organic traffic out of the way: one packet every 30 s.
  cfg.burst.packets_per_burst = 1;
  cfg.burst.mean_interval = Duration::from_sec(30);
  cfg.fault_plan = plan_from("detector-fp at=700ms");
  Scenario sc(cfg);
  sc.run_for(2_sec);

  EXPECT_EQ(sc.fault_injector()->counters().detector_false_positives, 1u);
  ASSERT_NE(sc.bicord_wifi(), nullptr);
  EXPECT_EQ(sc.bicord_wifi()->detector().injected_detections(), 1u);
  EXPECT_GE(sc.bicord_wifi()->requests_detected(), 1u);
  // The spurious grant must clear like a real one.
  EXPECT_FALSE(sc.bicord_wifi()->grant_outstanding());
}

TEST(FaultInjectorTest, DetectorFalseNegativeSuppressesDetections) {
  auto cfg = base_config(16);
  cfg.fault_plan = plan_from("detector-fn at=500ms window=2s");
  Scenario sc(cfg);
  sc.run_for(4_sec);

  EXPECT_EQ(sc.fault_injector()->counters().detector_fn_windows, 1u);
  ASSERT_NE(sc.bicord_wifi(), nullptr);
  EXPECT_GT(sc.bicord_wifi()->detector().suppressed_detections(), 0u);
  // The ZigBee side must survive being ignored: bounded retries, then CSMA.
  EXPECT_GT(sc.zigbee_stats().delivered + sc.zigbee_stats().dropped, 0u);
}

TEST(FaultInjectorTest, CsiDropoutStallsTheSampleStream) {
  auto cfg = base_config(17);
  cfg.fault_plan = plan_from("csi-dropout at=500ms window=500ms");
  Scenario sc(cfg);
  sc.run_for(2_sec);

  EXPECT_EQ(sc.fault_injector()->counters().csi_dropout_windows, 1u);
  ASSERT_NE(sc.bicord_wifi(), nullptr);
  EXPECT_GT(sc.bicord_wifi()->csi_stream().samples_dropped(), 0u);
}

TEST(FaultInjectorTest, FrameCorruptWindowCorruptsFrames) {
  auto cfg = base_config(18);
  cfg.fault_plan = plan_from("frame-corrupt at=500ms window=2s prob=0.5 tech=zigbee");
  Scenario sc(cfg);
  sc.run_for(4_sec);

  EXPECT_GT(sc.fault_injector()->counters().frames_corrupted, 0u);
  // Retransmissions bound the damage: the link keeps delivering.
  EXPECT_GT(sc.zigbee_stats().delivered, 0u);
}

TEST(FaultInjectorTest, RssiGlitchAndClockJitterWindowsActivate) {
  auto cfg = base_config(19);
  cfg.fault_plan = plan_from(
      "rssi-glitch at=500ms window=400ms mag=25\n"
      "clock-jitter at=500ms window=2s mag=0.2\n");
  Scenario sc(cfg);
  sc.run_for(3_sec);

  const auto& counters = sc.fault_injector()->counters();
  EXPECT_EQ(counters.rssi_glitch_windows, 1u);
  EXPECT_EQ(counters.clock_jitter_windows, 1u);
  // Jittered timers must not break delivery accounting.
  const auto& zb = sc.zigbee_stats();
  EXPECT_EQ(zb.generated, zb.delivered + zb.dropped + sc.zigbee_agent().backlog());
}

TEST(FaultInjectorTest, BurstShiftReconfiguresTheSource) {
  auto cfg = base_config(20);
  cfg.fault_plan = plan_from("burst-shift at=500ms packets=9 interval=77ms");
  Scenario sc(cfg);
  sc.run_for(1_sec);

  EXPECT_EQ(sc.fault_injector()->counters().burst_shifts, 1u);
  EXPECT_EQ(sc.burst_source().config().packets_per_burst, 9);
  EXPECT_EQ(sc.burst_source().config().mean_interval, 77_ms);
}

TEST(FaultInjectorTest, NodeLeaveThenJoinTogglesTheSource) {
  auto cfg = base_config(21);
  cfg.fault_plan = plan_from(
      "node-leave at=500ms link=0\n"
      "node-join at=1500ms link=0\n");
  Scenario sc(cfg);

  sc.run_for(1_sec);
  EXPECT_FALSE(sc.burst_source().running());
  sc.run_for(1_sec);
  EXPECT_TRUE(sc.burst_source().running());

  const auto& counters = sc.fault_injector()->counters();
  EXPECT_EQ(counters.node_leaves, 1u);
  EXPECT_EQ(counters.node_joins, 1u);
}

TEST(FaultInjectorTest, IgnoredRequestsTriggerBoundedGiveUp) {
  // Not a fault plan at all: the grant-ignoring Wi-Fi policy must drive the
  // hardened ZigBee agent into its bounded give-up -> CSMA fallback path.
  auto cfg = base_config(22);
  cfg.wifi_grants_requests = false;
  Scenario sc(cfg);
  sc.run_for(5_sec);

  ASSERT_NE(sc.bicord_zigbee(), nullptr);
  EXPECT_GE(sc.bicord_zigbee()->give_ups(), 1u);

  // Under saturated Wi-Fi plus the ignore policy, CSMA fallback delivers
  // almost nothing — the backlog may stay non-empty. What hardening
  // guarantees is *progress*, not throughput: packets keep being attempted
  // (delivered or dropped after bounded retries) and accounting stays exact.
  sc.burst_source().stop();
  const auto before = sc.zigbee_stats().delivered + sc.zigbee_stats().dropped;
  sc.run_for(2_sec);
  const auto& zb = sc.zigbee_stats();
  EXPECT_GT(zb.delivered + zb.dropped, before);
  EXPECT_EQ(zb.generated, zb.delivered + zb.dropped + sc.zigbee_agent().backlog());
}

TEST(FaultInjectorTest, SameSeedSameFaultsSameResult) {
  auto run = [](std::uint64_t seed) {
    auto cfg = base_config(seed);
    cfg.fault_plan = *FaultPlan::preset("mixed");
    Scenario sc(cfg);
    sc.run_for(5_sec);
    const auto& c = sc.fault_injector()->counters();
    return std::tuple{sc.zigbee_stats().generated, sc.zigbee_stats().delivered,
                      sc.zigbee_stats().dropped, c.total(), c.frames_corrupted,
                      sc.bicord_wifi()->whitespaces_granted(),
                      sc.bicord_wifi()->watchdog_recoveries()};
  };
  EXPECT_EQ(run(77), run(77));
  EXPECT_NE(run(77), run(78));  // the plan reacts to the seed, not a constant
}

}  // namespace
}  // namespace bicord::fault
