// InvariantChecker failover invariants, driven by synthetic election traces:
// the double-grant-overlap check must fire on overlapping protections, the
// handoff-gap check must fire on late and on never-arriving first grants,
// and a clean failover must stay silent.

#include <gtest/gtest.h>

#include <string>

#include "core/grantor_election.hpp"
#include "fault/invariant_checker.hpp"
#include "sim/simulator.hpp"

namespace bicord::fault {
namespace {

using namespace bicord::time_literals;
using core::GrantorElection;

constexpr Duration kGrace = 60_ms;
constexpr Duration kMargin = 500_us;

struct Rig {
  sim::Simulator sim{1};
  GrantorElection election{sim, kGrace, kMargin};
  InvariantChecker checker{sim};
  GrantorElection::MemberId a;
  GrantorElection::MemberId b;

  Rig() {
    a = election.add_member(1, -30.0, nullptr);
    b = election.add_member(2, -40.0, nullptr);
    checker.watch_election(election);
    checker.start();
  }

  [[nodiscard]] bool any_violation_contains(const std::string& needle) const {
    for (const auto& v : checker.violations()) {
      if (v.find(needle) != std::string::npos) return true;
    }
    return false;
  }
};

TEST(InvariantElectionTest, DoubleGrantOverlapFires) {
  Rig rig;
  const TimePoint t0 = rig.sim.now();
  rig.election.on_grant_issued(rig.a, t0, 20_ms);
  // b grants 5 ms in, squarely inside a's protection window.
  rig.election.on_grant_issued(rig.b, t0 + 5_ms, 20_ms);
  rig.sim.run_for(200_ms);
  rig.checker.finish();

  EXPECT_FALSE(rig.checker.ok());
  EXPECT_TRUE(rig.any_violation_contains("double-grant overlap"))
      << rig.checker.report();
}

TEST(InvariantElectionTest, BackToBackGrantsAreClean) {
  Rig rig;
  const TimePoint t0 = rig.sim.now();
  rig.election.on_grant_issued(rig.a, t0, 20_ms);
  // b's grant starts exactly when a's protection ends: no overlap.
  rig.election.on_grant_issued(rig.b, t0 + 20_ms, 20_ms);
  rig.sim.run_for(200_ms);
  rig.checker.finish();

  EXPECT_TRUE(rig.checker.ok()) << rig.checker.report();
}

TEST(InvariantElectionTest, UnboundedHandoffGapFires) {
  Rig rig;
  rig.election.on_request_observed(rig.b, rig.sim.now());
  // The takeover fires after kGrace; nobody ever grants afterwards.
  rig.sim.run_for(1_sec);
  rig.checker.finish();

  EXPECT_EQ(rig.election.takeovers(), 1u);
  EXPECT_FALSE(rig.checker.ok());
  EXPECT_TRUE(rig.any_violation_contains("handoff gap unbounded"))
      << rig.checker.report();
}

TEST(InvariantElectionTest, LateFirstGrantFires) {
  Rig rig;
  const TimePoint request = rig.sim.now();
  rig.election.on_request_observed(rig.b, request);
  rig.sim.run_for(kGrace + 1_ms);
  ASSERT_EQ(rig.election.takeovers(), 1u);
  // The new primary answers, but 40 ms past the bound.
  rig.election.on_grant_issued(rig.b, request + kGrace + kMargin + 40_ms, 20_ms);
  rig.sim.run_for(200_ms);
  rig.checker.finish();

  EXPECT_FALSE(rig.checker.ok());
  EXPECT_TRUE(rig.any_violation_contains("exceeds bound")) << rig.checker.report();
}

TEST(InvariantElectionTest, CleanFailoverIsSilent) {
  Rig rig;
  const TimePoint request = rig.sim.now();
  rig.election.on_request_observed(rig.b, request);
  rig.sim.run_for(kGrace + 1_ms);
  ASSERT_EQ(rig.election.takeovers(), 1u);
  // Replayed immediately at takeover: gap == grace <= grace + margin.
  rig.election.on_grant_issued(rig.b, request + kGrace, 20_ms);
  rig.sim.run_for(1_sec);
  rig.checker.finish();

  EXPECT_TRUE(rig.checker.ok()) << rig.checker.report();
  const auto gap = rig.election.max_handoff_gap();
  ASSERT_TRUE(gap.has_value());
  EXPECT_EQ(*gap, kGrace);
}

TEST(InvariantElectionTest, FinishFlagsPendingUnfilledHandoff) {
  // finish() must not let a just-expired unfilled handoff slide even when
  // the periodic tick has not reached it yet.
  Rig rig;
  rig.election.on_request_observed(rig.b, rig.sim.now());
  rig.sim.run_for(kGrace + kMargin + 1_ms);  // past the bound, under one period
  ASSERT_EQ(rig.election.takeovers(), 1u);
  rig.checker.finish();

  EXPECT_FALSE(rig.checker.ok());
  EXPECT_TRUE(rig.any_violation_contains("handoff gap unbounded"))
      << rig.checker.report();
}

}  // namespace
}  // namespace bicord::fault
