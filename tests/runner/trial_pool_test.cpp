#include "runner/trial_pool.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <cstdlib>
#include <numeric>
#include <stdexcept>
#include <string>
#include <thread>
#include <vector>

namespace bicord::runner {
namespace {

TEST(TrialPoolTest, RunsEveryTrialExactlyOnce) {
  TrialPool pool(4);
  constexpr std::size_t n = 200;
  std::vector<std::atomic<int>> hits(n);
  pool.run(n, [&](std::size_t i) { hits[i].fetch_add(1); });
  for (std::size_t i = 0; i < n; ++i) EXPECT_EQ(hits[i].load(), 1) << "trial " << i;
}

TEST(TrialPoolTest, MapReturnsResultsInSubmissionOrder) {
  TrialPool pool(4);
  const auto out = pool.map<std::size_t>(100, [](std::size_t i) { return i * i; });
  ASSERT_EQ(out.size(), 100u);
  for (std::size_t i = 0; i < out.size(); ++i) EXPECT_EQ(out[i], i * i);
}

TEST(TrialPoolTest, PropagatesLowestIndexedException) {
  TrialPool pool(4);
  std::vector<std::atomic<int>> hits(64);
  auto fn = [&](std::size_t i) {
    hits[i].fetch_add(1);
    if (i == 7 || i == 3 || i == 50) {
      throw std::runtime_error("trial " + std::to_string(i));
    }
  };
  try {
    pool.run(64, fn);
    FAIL() << "expected the trial exception to propagate";
  } catch (const std::runtime_error& e) {
    EXPECT_STREQ(e.what(), "trial 3");  // lowest index, not first-to-fail
  }
  // A failing trial must not abort its siblings: every trial still ran.
  for (std::size_t i = 0; i < 64; ++i) EXPECT_EQ(hits[i].load(), 1) << "trial " << i;
}

TEST(TrialPoolTest, MoreJobsThanTrialsDoesNotHang) {
  TrialPool pool(8);
  const auto out = pool.map<std::size_t>(3, [](std::size_t i) { return i; });
  EXPECT_EQ(out, (std::vector<std::size_t>{0, 1, 2}));
}

TEST(TrialPoolTest, ZeroTrialsReturnsImmediately) {
  TrialPool pool(4);
  bool called = false;
  pool.run(0, [&](std::size_t) { called = true; });
  EXPECT_FALSE(called);
}

TEST(TrialPoolTest, SingleJobRunsInline) {
  TrialPool pool(1);
  const auto caller = std::this_thread::get_id();
  pool.run(8, [&](std::size_t) { EXPECT_EQ(std::this_thread::get_id(), caller); });
}

TEST(TrialPoolTest, PoolIsReusableAcrossBatches) {
  TrialPool pool(3);
  for (int batch = 0; batch < 5; ++batch) {
    const auto out = pool.map<int>(20, [batch](std::size_t i) {
      return batch * 100 + static_cast<int>(i);
    });
    for (std::size_t i = 0; i < out.size(); ++i) {
      EXPECT_EQ(out[i], batch * 100 + static_cast<int>(i));
    }
  }
}

TEST(TrialPoolTest, RecoversAfterAFailedBatch) {
  TrialPool pool(2);
  EXPECT_THROW(pool.run(4,
                        [](std::size_t i) {
                          if (i == 2) throw std::runtime_error("boom");
                        }),
               std::runtime_error);
  const auto out = pool.map<std::size_t>(4, [](std::size_t i) { return i + 1; });
  EXPECT_EQ(out, (std::vector<std::size_t>{1, 2, 3, 4}));
}

TEST(TrialPoolTest, ParallelMapConvenience) {
  const auto out = parallel_map<int>(50, 4, [](std::size_t i) {
    return static_cast<int>(i) * 2;
  });
  int sum = std::accumulate(out.begin(), out.end(), 0);
  EXPECT_EQ(sum, 2 * (49 * 50 / 2));
}

TEST(ResolveJobsTest, HonorsExplicitRequest) {
  EXPECT_EQ(resolve_jobs(1), 1);
  EXPECT_EQ(resolve_jobs(5), 5);
}

TEST(ResolveJobsTest, FallsBackToEnvThenHardware) {
  const char* saved = std::getenv("BICORD_JOBS");
  const std::string saved_value = saved != nullptr ? saved : "";

  ::setenv("BICORD_JOBS", "3", 1);
  EXPECT_EQ(resolve_jobs(0), 3);
  EXPECT_EQ(resolve_jobs(2), 2);  // explicit request still wins

  ::setenv("BICORD_JOBS", "not-a-number", 1);
  EXPECT_GE(resolve_jobs(0), 1);  // garbage env -> hardware fallback

  ::unsetenv("BICORD_JOBS");
  EXPECT_GE(resolve_jobs(0), 1);
  EXPECT_GE(resolve_jobs(-7), 1);

  if (saved != nullptr) ::setenv("BICORD_JOBS", saved_value.c_str(), 1);
}

}  // namespace
}  // namespace bicord::runner
