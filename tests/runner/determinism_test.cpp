// The determinism contract of the parallel experiment engine: aggregated
// metrics are a pure function of (config, seed, repetitions) — the thread
// count, scheduling order, and reruns must never change a single bit.

#include <gtest/gtest.h>

#include <cmath>
#include <cstdint>
#include <cstring>
#include <set>
#include <vector>

#include "coex/experiment.hpp"
#include "runner/parallel_runner.hpp"

namespace bicord {
namespace {

using namespace bicord::time_literals;

/// The exact bit pattern, so "identical" means identical (== would also
/// accept -0.0 vs 0.0 and can be weakened by x87-style extended precision).
std::uint64_t bits(double v) {
  std::uint64_t u = 0;
  static_assert(sizeof(u) == sizeof(v));
  std::memcpy(&u, &v, sizeof(u));
  return u;
}

void expect_bitwise_equal(const std::vector<runner::MetricSummary>& a,
                          const std::vector<runner::MetricSummary>& b) {
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t m = 0; m < a.size(); ++m) {
    EXPECT_EQ(a[m].name, b[m].name);
    EXPECT_EQ(a[m].stats.count(), b[m].stats.count());
    EXPECT_EQ(bits(a[m].stats.mean()), bits(b[m].stats.mean())) << a[m].name;
    EXPECT_EQ(bits(a[m].stats.stddev()), bits(b[m].stats.stddev())) << a[m].name;
    EXPECT_EQ(bits(a[m].stats.min()), bits(b[m].stats.min())) << a[m].name;
    EXPECT_EQ(bits(a[m].stats.max()), bits(b[m].stats.max())) << a[m].name;
  }
}

// A cheap trial with "awkward" irrational values: any reordering of the
// Welford updates would change the low-order bits immediately.
std::vector<double> synthetic_trial(std::size_t i) {
  const double x = static_cast<double>(i + 1);
  return {std::sqrt(x), std::sin(x) / 3.0 + 1e-9 * x};
}

std::vector<runner::MetricSummary> run_synthetic(int jobs, int trials) {
  runner::ParallelExperimentRunner engine({"sqrt", "wobble"}, synthetic_trial);
  engine.set_jobs(jobs);
  return engine.run(trials);
}

TEST(DeterminismTest, SyntheticTrialsBitwiseIdenticalAcrossJobs) {
  const auto j1 = run_synthetic(1, 97);
  const auto j2 = run_synthetic(2, 97);
  const auto j8 = run_synthetic(8, 97);
  expect_bitwise_equal(j1, j2);
  expect_bitwise_equal(j1, j8);
  EXPECT_EQ(j1[0].stats.count(), 97u);
}

coex::ScenarioConfig quick_config() {
  coex::ScenarioConfig cfg;
  cfg.seed = 4242;
  cfg.coordination = coex::Coordination::BiCord;
  cfg.burst.packets_per_burst = 5;
  cfg.burst.payload_bytes = 50;
  cfg.burst.mean_interval = 200_ms;
  return cfg;
}

std::vector<runner::MetricSummary> run_scenarios(int jobs) {
  coex::ExperimentRunner runner(quick_config(), 100_ms, 1_sec);
  runner.set_jobs(jobs);
  runner.add_metric("util", coex::metric_total_utilization());
  runner.add_metric("delay", coex::metric_zigbee_mean_delay_ms());
  runner.add_metric("delivery", coex::metric_zigbee_delivery());
  return runner.run(6);
}

TEST(DeterminismTest, ScenarioSweepBitwiseIdenticalAcrossJobs) {
  const auto j1 = run_scenarios(1);
  const auto j2 = run_scenarios(2);
  const auto j8 = run_scenarios(8);
  expect_bitwise_equal(j1, j2);
  expect_bitwise_equal(j1, j8);
  EXPECT_EQ(j1[0].stats.count(), 6u);
  EXPECT_GT(j1[0].stats.mean(), 0.0);
}

TEST(DeterminismTest, SameSeedRerunReproduces) {
  expect_bitwise_equal(run_scenarios(2), run_scenarios(2));
}

TEST(DeterminismTest, DifferentBaseSeedChangesResults) {
  coex::ScenarioConfig other = quick_config();
  other.seed = 4243;
  coex::ExperimentRunner runner(other, 100_ms, 1_sec);
  runner.set_jobs(2);
  runner.add_metric("delay", coex::metric_zigbee_mean_delay_ms());
  const auto a = runner.run(6);
  const auto b = run_scenarios(2);
  EXPECT_NE(bits(a[0].stats.mean()), bits(b[1].stats.mean()));
}

TEST(DeterminismTest, TrialSeedsAreDistinctAndStable) {
  coex::ExperimentRunner runner(quick_config(), 100_ms, 1_sec);
  std::set<std::uint64_t> seeds;
  for (std::size_t rep = 0; rep < 256; ++rep) seeds.insert(runner.trial_seed(rep));
  EXPECT_EQ(seeds.size(), 256u);  // no per-trial stream collides

  coex::ExperimentRunner again(quick_config(), 100_ms, 1_sec);
  for (std::size_t rep = 0; rep < 256; ++rep) {
    EXPECT_EQ(runner.trial_seed(rep), again.trial_seed(rep));
  }
}

TEST(DeterminismTest, ReportCountsTrialsAndJobs) {
  coex::ExperimentRunner runner(quick_config(), 100_ms, 500_ms);
  runner.set_jobs(2);
  runner.add_metric("util", coex::metric_total_utilization());
  std::size_t progress_calls = 0;
  runner.set_progress([&](std::size_t, std::size_t total) {
    ++progress_calls;
    EXPECT_EQ(total, 4u);
  });
  (void)runner.run(4);
  const auto& report = runner.last_report();
  EXPECT_EQ(report.trials, 4u);
  EXPECT_EQ(report.jobs, 2);
  EXPECT_GT(report.wall_seconds, 0.0);
  EXPECT_GE(report.trial_seconds, 0.0);
  EXPECT_EQ(progress_calls, 4u);
  EXPECT_NE(report.to_string().find("trials"), std::string::npos);
}

}  // namespace
}  // namespace bicord
