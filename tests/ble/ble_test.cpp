#include <gtest/gtest.h>

#include "ble/ble_bicord.hpp"
#include "ble/ble_link.hpp"
#include "ble/ble_zigbee_agent.hpp"
#include "phy/spectrum.hpp"
#include "sim/simulator.hpp"
#include "zigbee/traffic.hpp"
#include "zigbee/zigbee_mac.hpp"

namespace bicord::ble {
namespace {

using namespace bicord::time_literals;

TEST(BleChannelsTest, DataChannelBandsSkipAdvertising) {
  EXPECT_DOUBLE_EQ(data_channel_band(0).center_mhz, 2404.0);
  EXPECT_DOUBLE_EQ(data_channel_band(10).center_mhz, 2424.0);
  EXPECT_DOUBLE_EQ(data_channel_band(11).center_mhz, 2428.0);
  EXPECT_DOUBLE_EQ(data_channel_band(36).center_mhz, 2478.0);
  EXPECT_THROW((void)data_channel_band(-1), std::invalid_argument);
  EXPECT_THROW((void)data_channel_band(37), std::invalid_argument);
}

TEST(BleChannelsTest, OverlapWithZigbeeChannel24) {
  // ZigBee ch 24 = 2470 MHz / 2 MHz: BLE data channels at 2468/2470/2472.
  const auto hits = BleConnection::channels_overlapping(phy::zigbee_channel(24));
  EXPECT_GE(hits.size(), 1u);
  EXPECT_LE(hits.size(), 3u);
  for (int c : hits) {
    EXPECT_GT(phy::overlap_mhz(data_channel_band(c), phy::zigbee_channel(24)), 0.0);
  }
}

struct BleFixture : ::testing::Test {
  BleFixture() : sim(81), medium(sim, phy::PathLossModel{40.0, 3.0, 0.0, 0.1}) {
    master = medium.add_node("ble-master", {0.0, 0.0});
    slave = medium.add_node("ble-slave", {1.0, 0.0});
  }
  sim::Simulator sim;
  phy::Medium medium;
  phy::NodeId master{};
  phy::NodeId slave{};
};

TEST_F(BleFixture, ConnectionEventsAtInterval) {
  BleConnection::Config cfg;
  cfg.connection_interval = 15_ms;
  BleConnection link(medium, master, slave, cfg);
  link.start();
  sim.run_for(1_sec);
  EXPECT_NEAR(static_cast<double>(link.stats().events), 66.0, 2.0);
  // Clean air: essentially all packets succeed.
  EXPECT_GT(link.stats().packet_success(), 0.98);
  link.stop();
}

TEST_F(BleFixture, HopCoversAllChannels) {
  BleConnection link(medium, master, slave, BleConnection::Config{});
  link.start();
  std::array<int, kDataChannels> seen{};
  for (int i = 0; i < 200; ++i) {
    sim.run_for(15_ms);
    ++seen[static_cast<std::size_t>(link.current_channel())];
  }
  int covered = 0;
  for (int n : seen) covered += n > 0 ? 1 : 0;
  EXPECT_GE(covered, 30);  // hop increment 7 covers all 37 over time
  link.stop();
}

TEST_F(BleFixture, ChannelExclusionRespected) {
  BleConnection link(medium, master, slave, BleConnection::Config{});
  EXPECT_TRUE(link.set_channel_enabled(5, false));
  EXPECT_FALSE(link.channel_enabled(5));
  EXPECT_EQ(link.enabled_channels(), 36);
  link.start();
  for (int i = 0; i < 300; ++i) {
    sim.run_for(15_ms);
    EXPECT_NE(link.current_channel(), 5);
  }
  link.stop();
  EXPECT_TRUE(link.set_channel_enabled(5, true));
  EXPECT_THROW(link.set_channel_enabled(37, false), std::invalid_argument);
}

TEST_F(BleFixture, CannotDisableBelowTwoChannels) {
  BleConnection link(medium, master, slave, BleConnection::Config{});
  int disabled = 0;
  for (int c = 0; c < kDataChannels; ++c) {
    if (link.set_channel_enabled(c, false)) ++disabled;
  }
  EXPECT_EQ(disabled, kDataChannels - 2);
  EXPECT_EQ(link.enabled_channels(), 2);
}

TEST_F(BleFixture, RejectsBadHopIncrement) {
  BleConnection::Config cfg;
  cfg.hop_increment = 37;  // not coprime
  EXPECT_THROW(BleConnection(medium, master, slave, cfg), std::invalid_argument);
}

struct BleCoexFixture : BleFixture {
  BleCoexFixture() {
    zb_tx = medium.add_node("zb-tx", {0.8, 0.8});
    zb_rx = medium.add_node("zb-rx", {1.6, 1.6});
    zigbee::ZigbeeMac::Config zc;
    zc.channel = 24;
    zc.retry_limit = 1;
    sender = std::make_unique<zigbee::ZigbeeMac>(medium, zb_tx, zc);
    receiver = std::make_unique<zigbee::ZigbeeMac>(medium, zb_rx, zc);
  }
  phy::NodeId zb_tx{};
  phy::NodeId zb_rx{};
  std::unique_ptr<zigbee::ZigbeeMac> sender;
  std::unique_ptr<zigbee::ZigbeeMac> receiver;
};

TEST_F(BleCoexFixture, AgentLeasesChannelsOnRequest) {
  BleConnection link(medium, master, slave, BleConnection::Config{});
  link.start();
  BleBiCordAgent::Config acfg;
  BleBiCordAgent agent(medium, link, acfg);
  ASSERT_FALSE(agent.protected_channels().empty());

  // A control packet from the ZigBee node triggers a lease.
  zigbee::ZigbeeMac::SendRequest control;
  control.dst = phy::kBroadcastNode;
  control.payload_bytes = 120;
  control.kind = phy::FrameKind::Control;
  sender->send_raw(control);
  sim.run_for(10_ms);

  EXPECT_GE(agent.requests_detected(), 1u);
  EXPECT_EQ(agent.leases_granted(), 1u);
  EXPECT_TRUE(agent.lease_active());
  for (int c : agent.protected_channels()) EXPECT_FALSE(link.channel_enabled(c));

  // After the lease expires the channels come back.
  sim.run_for(300_ms);
  EXPECT_FALSE(agent.lease_active());
  for (int c : agent.protected_channels()) EXPECT_TRUE(link.channel_enabled(c));
}

TEST_F(BleCoexFixture, DataFramesDoNotTriggerLeases) {
  BleConnection link(medium, master, slave, BleConnection::Config{});
  BleBiCordAgent agent(medium, link, BleBiCordAgent::Config{});
  zigbee::ZigbeeMac::SendRequest data;
  data.dst = phy::kBroadcastNode;
  data.payload_bytes = 50;
  data.kind = phy::FrameKind::Data;
  sender->send_raw(data);
  sim.run_for(10_ms);
  EXPECT_EQ(agent.leases_granted(), 0u);
}

TEST_F(BleCoexFixture, CoordinationImprovesZigbeeUnderDenseBle) {
  // Four aggressive BLE links around the ZigBee pair.
  std::vector<std::unique_ptr<BleConnection>> links;
  for (int i = 0; i < 4; ++i) {
    const auto m = medium.add_node("m", {0.3 * i, 0.2});
    const auto s = medium.add_node("s", {0.3 * i, 1.2});
    BleConnection::Config cfg;
    cfg.connection_interval = Duration::from_us(7500);
    cfg.payload_bytes = 200;
    cfg.hop_increment = 7 + 2 * i;
    links.push_back(std::make_unique<BleConnection>(medium, m, s, cfg));
    links.back()->start();
  }

  auto run = [&](bool coordinate) {
    std::vector<std::unique_ptr<BleBiCordAgent>> agents;
    if (coordinate) {
      for (auto& l : links) {
        agents.push_back(std::make_unique<BleBiCordAgent>(medium, *l,
                                                          BleBiCordAgent::Config{}));
      }
    }
    BleAwareZigbeeAgent::Config acfg;
    BleAwareZigbeeAgent agent(*sender, zb_rx, acfg);
    zigbee::BurstSource::Config bcfg;
    bcfg.packets_per_burst = 5;
    bcfg.payload_bytes = 50;
    bcfg.mean_interval = 150_ms;
    zigbee::BurstSource source(sim, bcfg);
    source.set_burst_callback(
        [&](int n, std::uint32_t payload) { agent.submit_burst(n, payload); });
    source.start();
    sim.run_for(10_sec);
    source.stop();
    sim.run_for(200_ms);
    return agent.stats().delivery_ratio();
  };

  const double uncoordinated = run(false);
  const double coordinated = run(true);
  EXPECT_GT(coordinated, 0.95);
  EXPECT_GE(coordinated + 1e-9, uncoordinated);
}

}  // namespace
}  // namespace bicord::ble
