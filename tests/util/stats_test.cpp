#include "util/stats.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "util/rng.hpp"

namespace bicord {
namespace {

TEST(RunningStatsTest, EmptyIsZero) {
  RunningStats s;
  EXPECT_EQ(s.count(), 0u);
  EXPECT_DOUBLE_EQ(s.mean(), 0.0);
  EXPECT_DOUBLE_EQ(s.variance(), 0.0);
  EXPECT_DOUBLE_EQ(s.min(), 0.0);
  EXPECT_DOUBLE_EQ(s.max(), 0.0);
}

TEST(RunningStatsTest, MatchesDirectComputation) {
  RunningStats s;
  const double vals[] = {1.0, 2.0, 4.0, 8.0};
  for (double v : vals) s.add(v);
  EXPECT_EQ(s.count(), 4u);
  EXPECT_DOUBLE_EQ(s.mean(), 3.75);
  EXPECT_DOUBLE_EQ(s.min(), 1.0);
  EXPECT_DOUBLE_EQ(s.max(), 8.0);
  EXPECT_DOUBLE_EQ(s.sum(), 15.0);
  // Sample variance with n-1 denominator.
  const double expected_var = ((1 - 3.75) * (1 - 3.75) + (2 - 3.75) * (2 - 3.75) +
                               (4 - 3.75) * (4 - 3.75) + (8 - 3.75) * (8 - 3.75)) /
                              3.0;
  EXPECT_NEAR(s.variance(), expected_var, 1e-12);
  EXPECT_NEAR(s.stddev(), std::sqrt(expected_var), 1e-12);
}

TEST(RunningStatsTest, MergeEqualsSingleStream) {
  Rng rng(5);
  RunningStats whole;
  RunningStats a;
  RunningStats b;
  for (int i = 0; i < 1000; ++i) {
    const double v = rng.normal(10.0, 4.0);
    whole.add(v);
    (i % 2 == 0 ? a : b).add(v);
  }
  a.merge(b);
  EXPECT_EQ(a.count(), whole.count());
  EXPECT_NEAR(a.mean(), whole.mean(), 1e-9);
  EXPECT_NEAR(a.variance(), whole.variance(), 1e-6);
  EXPECT_DOUBLE_EQ(a.min(), whole.min());
  EXPECT_DOUBLE_EQ(a.max(), whole.max());
}

TEST(RunningStatsTest, MergeWithEmpty) {
  RunningStats a;
  a.add(3.0);
  RunningStats b;
  a.merge(b);
  EXPECT_EQ(a.count(), 1u);
  b.merge(a);
  EXPECT_EQ(b.count(), 1u);
  EXPECT_DOUBLE_EQ(b.mean(), 3.0);
}

TEST(RunningStatsTest, ResetClears) {
  RunningStats s;
  s.add(1.0);
  s.reset();
  EXPECT_EQ(s.count(), 0u);
}

TEST(SamplesTest, QuantilesOnKnownData) {
  Samples s;
  for (int i = 1; i <= 100; ++i) s.add(static_cast<double>(i));
  EXPECT_DOUBLE_EQ(s.min(), 1.0);
  EXPECT_DOUBLE_EQ(s.max(), 100.0);
  EXPECT_DOUBLE_EQ(s.median(), 50.5);
  EXPECT_NEAR(s.quantile(0.9), 90.1, 1e-9);
  EXPECT_DOUBLE_EQ(s.quantile(0.0), 1.0);
  EXPECT_DOUBLE_EQ(s.quantile(1.0), 100.0);
  EXPECT_DOUBLE_EQ(s.mean(), 50.5);
}

TEST(SamplesTest, QuantileAfterInterleavedInsertions) {
  Samples s;
  s.add(5.0);
  EXPECT_DOUBLE_EQ(s.median(), 5.0);
  s.add(1.0);  // re-sorts lazily
  s.add(9.0);
  EXPECT_DOUBLE_EQ(s.median(), 5.0);
}

TEST(SamplesTest, ErrorsOnEmptyOrBadArgs) {
  Samples s;
  EXPECT_TRUE(s.empty());
  EXPECT_THROW(s.quantile(0.5), std::logic_error);
  EXPECT_THROW(s.min(), std::logic_error);
  EXPECT_THROW(s.max(), std::logic_error);
  s.add(1.0);
  EXPECT_THROW(s.quantile(-0.1), std::invalid_argument);
  EXPECT_THROW(s.quantile(1.1), std::invalid_argument);
}

TEST(SamplesTest, StddevMatchesFormula) {
  Samples s;
  s.add(2.0);
  s.add(4.0);
  s.add(6.0);
  EXPECT_NEAR(s.stddev(), 2.0, 1e-12);
}

TEST(HistogramTest, BinningAndClamping) {
  Histogram h(0.0, 10.0, 10);
  h.add(0.5);   // bin 0
  h.add(9.5);   // bin 9
  h.add(-5.0);  // clamps to bin 0
  h.add(15.0);  // clamps to bin 9
  h.add(5.0);   // bin 5
  EXPECT_EQ(h.total(), 5u);
  EXPECT_EQ(h.count_in_bin(0), 2u);
  EXPECT_EQ(h.count_in_bin(9), 2u);
  EXPECT_EQ(h.count_in_bin(5), 1u);
  EXPECT_DOUBLE_EQ(h.bin_lo(5), 5.0);
  EXPECT_DOUBLE_EQ(h.bin_hi(5), 6.0);
}

TEST(HistogramTest, RejectsBadConstruction) {
  EXPECT_THROW(Histogram(1.0, 1.0, 10), std::invalid_argument);
  EXPECT_THROW(Histogram(0.0, 1.0, 0), std::invalid_argument);
}

TEST(HistogramTest, RenderShowsNonEmptyBins) {
  Histogram h(0.0, 2.0, 2);
  h.add(0.5);
  const std::string out = h.render(10);
  EXPECT_NE(out.find("[0, 1)"), std::string::npos);
  EXPECT_EQ(out.find("[1, 2)"), std::string::npos);
}

TEST(MeanOfTest, HandlesEmptyAndValues) {
  EXPECT_DOUBLE_EQ(mean_of({}), 0.0);
  EXPECT_DOUBLE_EQ(mean_of({2.0, 4.0}), 3.0);
}

}  // namespace
}  // namespace bicord
