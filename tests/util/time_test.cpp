#include "util/time.hpp"

#include <gtest/gtest.h>

#include <sstream>

namespace bicord {
namespace {

using namespace bicord::time_literals;

TEST(DurationTest, FactoryUnitsAgree) {
  EXPECT_EQ(Duration::from_ms(3).us(), 3000);
  EXPECT_EQ(Duration::from_sec(2).us(), 2'000'000);
  EXPECT_EQ(Duration::from_us(7).us(), 7);
  EXPECT_EQ(Duration::from_sec_f(0.5).us(), 500'000);
  EXPECT_EQ(Duration::from_ms_f(1.5).us(), 1500);
}

TEST(DurationTest, LiteralsMatchFactories) {
  EXPECT_EQ(5_us, Duration::from_us(5));
  EXPECT_EQ(5_ms, Duration::from_ms(5));
  EXPECT_EQ(5_sec, Duration::from_sec(5));
}

TEST(DurationTest, ArithmeticAndComparison) {
  EXPECT_EQ(2_ms + 3_ms, 5_ms);
  EXPECT_EQ(5_ms - 3_ms, 2_ms);
  EXPECT_EQ(2_ms * 3, 6_ms);
  EXPECT_EQ(3 * 2_ms, 6_ms);
  EXPECT_EQ(6_ms / 3, 2_ms);
  EXPECT_EQ(6_ms / 2_ms, 3);
  EXPECT_LT(1_ms, 2_ms);
  EXPECT_EQ(-(3_ms), Duration::zero() - 3_ms);
}

TEST(DurationTest, CompoundAssignment) {
  Duration d = 1_ms;
  d += 2_ms;
  EXPECT_EQ(d, 3_ms);
  d -= 1_ms;
  EXPECT_EQ(d, 2_ms);
}

TEST(DurationTest, ConversionsToFloating) {
  EXPECT_DOUBLE_EQ((1500_us).ms(), 1.5);
  EXPECT_DOUBLE_EQ((2500_ms).sec(), 2.5);
}

TEST(DurationTest, RoundingInFractionalFactories) {
  EXPECT_EQ(Duration::from_sec_f(1e-6 * 0.4).us(), 0);
  EXPECT_EQ(Duration::from_sec_f(1e-6 * 0.6).us(), 1);
  EXPECT_EQ(Duration::from_sec_f(-1e-6 * 0.6).us(), -1);
}

TEST(TimePointTest, OffsetArithmetic) {
  const TimePoint t = TimePoint::origin() + 5_ms;
  EXPECT_EQ(t.us(), 5000);
  EXPECT_EQ((t + 1_ms).us(), 6000);
  EXPECT_EQ((t - 1_ms).us(), 4000);
  EXPECT_EQ(t - TimePoint::origin(), 5_ms);
}

TEST(TimePointTest, Ordering) {
  const TimePoint a = TimePoint::from_us(10);
  const TimePoint b = TimePoint::from_us(20);
  EXPECT_LT(a, b);
  EXPECT_EQ(a, TimePoint::from_us(10));
  EXPECT_LE(a, a);
}

TEST(TimeFormattingTest, PicksHumanUnits) {
  EXPECT_EQ((500_us).to_string(), "500us");
  EXPECT_EQ((1500_us).to_string(), "1.500ms");
  EXPECT_EQ((2_sec).to_string(), "2.000s");
  std::ostringstream os;
  os << 1500_us << " " << TimePoint::from_us(42);
  EXPECT_EQ(os.str(), "1.500ms 42us");
}

}  // namespace
}  // namespace bicord
