#include "util/flags.hpp"

#include <gtest/gtest.h>

#include <limits>
#include <string>

namespace bicord {
namespace {

TEST(ParsePositiveIntTest, AcceptsPlainPositiveIntegers) {
  EXPECT_EQ(parse_positive_int("1"), 1);
  EXPECT_EQ(parse_positive_int("42"), 42);
  EXPECT_EQ(parse_positive_int("600"), 600);
  EXPECT_EQ(parse_positive_int("2147483647"), std::numeric_limits<int>::max());
}

TEST(ParsePositiveIntTest, RejectsGarbage) {
  EXPECT_FALSE(parse_positive_int("").has_value());
  EXPECT_FALSE(parse_positive_int("garbage").has_value());
  EXPECT_FALSE(parse_positive_int("abc123").has_value());
}

TEST(ParsePositiveIntTest, RejectsTrailingJunk) {
  // The std::atoi it replaced would have silently returned 12 here.
  EXPECT_FALSE(parse_positive_int("12abc").has_value());
  EXPECT_FALSE(parse_positive_int("3.5").has_value());
  EXPECT_FALSE(parse_positive_int("7 ").has_value());
}

TEST(ParsePositiveIntTest, RejectsNonPositive) {
  EXPECT_FALSE(parse_positive_int("0").has_value());
  EXPECT_FALSE(parse_positive_int("-5").has_value());
}

TEST(ParsePositiveIntTest, RejectsOutOfRange) {
  // One past INT_MAX, and far past long range.
  EXPECT_FALSE(parse_positive_int("2147483648").has_value());
  EXPECT_FALSE(parse_positive_int("99999999999999999999999999").has_value());
}

}  // namespace
}  // namespace bicord
