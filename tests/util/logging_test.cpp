#include "util/logging.hpp"

#include <gtest/gtest.h>

#include <cstdlib>
#include <vector>

namespace bicord {
namespace {

struct LogCapture {
  LogCapture() {
    set_log_sink([this](const std::string& line) { lines.push_back(line); });
  }
  ~LogCapture() {
    set_log_sink(nullptr);
    set_log_level(LogLevel::Warn);
  }
  std::vector<std::string> lines;
};

TEST(LoggingTest, RespectsLevelThreshold) {
  LogCapture capture;
  set_log_level(LogLevel::Info);
  BICORD_LOG(Debug, TimePoint::from_us(1), "test", "hidden");
  BICORD_LOG(Info, TimePoint::from_us(2), "test", "shown " << 42);
  BICORD_LOG(Error, TimePoint::from_us(3), "test", "also shown");
  ASSERT_EQ(capture.lines.size(), 2u);
  EXPECT_NE(capture.lines[0].find("shown 42"), std::string::npos);
  EXPECT_NE(capture.lines[1].find("ERROR"), std::string::npos);
}

TEST(LoggingTest, LineContainsTimeComponentLevel) {
  LogCapture capture;
  set_log_level(LogLevel::Trace);
  BICORD_LOG(Warn, TimePoint::from_us(1500), "wifi.mac", "nav set");
  ASSERT_EQ(capture.lines.size(), 1u);
  const std::string& line = capture.lines[0];
  EXPECT_NE(line.find("1.500ms"), std::string::npos);
  EXPECT_NE(line.find("WARN"), std::string::npos);
  EXPECT_NE(line.find("wifi.mac"), std::string::npos);
  EXPECT_NE(line.find("nav set"), std::string::npos);
}

TEST(LoggingTest, OffSuppressesEverything) {
  LogCapture capture;
  set_log_level(LogLevel::Off);
  BICORD_LOG(Error, TimePoint::from_us(1), "test", "nope");
  EXPECT_TRUE(capture.lines.empty());
}

TEST(LoggingTest, LevelRoundTrip) {
  set_log_level(LogLevel::Debug);
  EXPECT_EQ(log_level(), LogLevel::Debug);
  set_log_level(LogLevel::Warn);
  EXPECT_EQ(log_level(), LogLevel::Warn);
}

TEST(LoggingTest, ParseLogLevelAcceptsAllSpellings) {
  EXPECT_EQ(parse_log_level("trace"), LogLevel::Trace);
  EXPECT_EQ(parse_log_level("DEBUG"), LogLevel::Debug);
  EXPECT_EQ(parse_log_level("Info"), LogLevel::Info);
  EXPECT_EQ(parse_log_level("warn"), LogLevel::Warn);
  EXPECT_EQ(parse_log_level("warning"), LogLevel::Warn);
  EXPECT_EQ(parse_log_level("error"), LogLevel::Error);
  EXPECT_EQ(parse_log_level("off"), LogLevel::Off);
  EXPECT_EQ(parse_log_level("none"), LogLevel::Off);
  EXPECT_EQ(parse_log_level("loud"), std::nullopt);
  EXPECT_EQ(parse_log_level(""), std::nullopt);
}

TEST(LoggingTest, RefreshFromEnvAppliesBicordLogLevel) {
  LogCapture capture;  // restores Warn on teardown
  ASSERT_EQ(setenv("BICORD_LOG_LEVEL", "debug", 1), 0);
  refresh_log_level_from_env();
  EXPECT_EQ(log_level(), LogLevel::Debug);

  // An unknown value must leave the level untouched (and not crash).
  ASSERT_EQ(setenv("BICORD_LOG_LEVEL", "shouty", 1), 0);
  refresh_log_level_from_env();
  EXPECT_EQ(log_level(), LogLevel::Debug);

  // An unset variable is a no-op too.
  ASSERT_EQ(unsetenv("BICORD_LOG_LEVEL"), 0);
  set_log_level(LogLevel::Error);
  refresh_log_level_from_env();
  EXPECT_EQ(log_level(), LogLevel::Error);
}

}  // namespace
}  // namespace bicord
