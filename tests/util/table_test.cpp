#include "util/table.hpp"

#include <gtest/gtest.h>

namespace bicord {
namespace {

TEST(AsciiTableTest, AlignsColumns) {
  AsciiTable t;
  t.set_header({"name", "value"});
  t.add_row({"a", "1"});
  t.add_row({"long-name", "23456"});
  const std::string out = t.render();
  EXPECT_NE(out.find("| name      | value |"), std::string::npos);
  EXPECT_NE(out.find("| long-name | 23456 |"), std::string::npos);
}

TEST(AsciiTableTest, TitleAndSeparators) {
  AsciiTable t("My Table");
  t.set_header({"x"});
  t.add_row({"1"});
  t.add_separator();
  t.add_row({"2"});
  const std::string out = t.render();
  EXPECT_EQ(out.rfind("My Table", 0), 0u);
  // header line + 3 separators from hline + 1 explicit = 5 '+--' lines
  std::size_t lines = 0;
  for (std::size_t pos = out.find("+-"); pos != std::string::npos;
       pos = out.find("+-", pos + 1)) {
    ++lines;
  }
  EXPECT_GE(lines, 4u);
}

TEST(AsciiTableTest, RaggedRowsPadded) {
  AsciiTable t;
  t.set_header({"a", "b", "c"});
  t.add_row({"1"});
  EXPECT_NO_THROW(t.render());
}

TEST(AsciiTableTest, CellFormatting) {
  EXPECT_EQ(AsciiTable::cell(3.14159, 2), "3.14");
  EXPECT_EQ(AsciiTable::cell(std::int64_t{42}), "42");
  EXPECT_EQ(AsciiTable::percent(0.4567), "45.7%");
  EXPECT_EQ(AsciiTable::percent(0.4567, 2), "45.67%");
}

TEST(BarChartTest, ScalesToWidth) {
  const std::string out = bar_chart({{"x", 10.0}, {"y", 5.0}}, 10, "ms");
  EXPECT_NE(out.find("x | ##########"), std::string::npos);
  EXPECT_NE(out.find("y | #####"), std::string::npos);
  EXPECT_NE(out.find("ms"), std::string::npos);
}

TEST(BarChartTest, HandlesAllZero) {
  const std::string out = bar_chart({{"x", 0.0}}, 10);
  EXPECT_NE(out.find("x | "), std::string::npos);
}

}  // namespace
}  // namespace bicord
