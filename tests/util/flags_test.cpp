#include "util/flags.hpp"

#include <gtest/gtest.h>

namespace bicord {
namespace {

std::vector<const char*> argv_of(std::initializer_list<const char*> args) {
  std::vector<const char*> v{"prog"};
  v.insert(v.end(), args.begin(), args.end());
  return v;
}

Flags make_flags() {
  Flags f("test program");
  f.add_string("name", "default", "a string");
  f.add_int("count", 5, "an int");
  f.add_double("ratio", 0.5, "a double");
  f.add_bool("verbose", false, "a bool");
  return f;
}

TEST(FlagsTest, DefaultsApplyWithoutArgs) {
  Flags f = make_flags();
  const auto argv = argv_of({});
  ASSERT_TRUE(f.parse(static_cast<int>(argv.size()), argv.data()));
  EXPECT_EQ(f.get_string("name"), "default");
  EXPECT_EQ(f.get_int("count"), 5);
  EXPECT_DOUBLE_EQ(f.get_double("ratio"), 0.5);
  EXPECT_FALSE(f.get_bool("verbose"));
  EXPECT_FALSE(f.provided("name"));
}

TEST(FlagsTest, SpaceSeparatedValues) {
  Flags f = make_flags();
  const auto argv = argv_of({"--name", "zig", "--count", "42", "--ratio", "2.25"});
  ASSERT_TRUE(f.parse(static_cast<int>(argv.size()), argv.data()));
  EXPECT_EQ(f.get_string("name"), "zig");
  EXPECT_EQ(f.get_int("count"), 42);
  EXPECT_DOUBLE_EQ(f.get_double("ratio"), 2.25);
  EXPECT_TRUE(f.provided("count"));
}

TEST(FlagsTest, EqualsSeparatedValues) {
  Flags f = make_flags();
  const auto argv = argv_of({"--name=bee", "--count=-3", "--ratio=1e-3"});
  ASSERT_TRUE(f.parse(static_cast<int>(argv.size()), argv.data()));
  EXPECT_EQ(f.get_string("name"), "bee");
  EXPECT_EQ(f.get_int("count"), -3);
  EXPECT_DOUBLE_EQ(f.get_double("ratio"), 1e-3);
}

TEST(FlagsTest, BooleanForms) {
  {
    Flags f = make_flags();
    const auto argv = argv_of({"--verbose"});
    ASSERT_TRUE(f.parse(static_cast<int>(argv.size()), argv.data()));
    EXPECT_TRUE(f.get_bool("verbose"));
  }
  {
    Flags f = make_flags();
    const auto argv = argv_of({"--verbose", "--no-verbose"});
    ASSERT_TRUE(f.parse(static_cast<int>(argv.size()), argv.data()));
    EXPECT_FALSE(f.get_bool("verbose"));
  }
  {
    Flags f = make_flags();
    const auto argv = argv_of({"--verbose=true"});
    ASSERT_TRUE(f.parse(static_cast<int>(argv.size()), argv.data()));
    EXPECT_TRUE(f.get_bool("verbose"));
  }
}

TEST(FlagsTest, RejectsUnknownFlag) {
  Flags f = make_flags();
  const auto argv = argv_of({"--bogus", "1"});
  EXPECT_FALSE(f.parse(static_cast<int>(argv.size()), argv.data()));
  EXPECT_NE(f.error().find("bogus"), std::string::npos);
}

TEST(FlagsTest, RejectsTypeMismatch) {
  Flags f = make_flags();
  const auto argv = argv_of({"--count", "many"});
  EXPECT_FALSE(f.parse(static_cast<int>(argv.size()), argv.data()));
  EXPECT_NE(f.error().find("integer"), std::string::npos);

  Flags g = make_flags();
  const auto argv2 = argv_of({"--ratio", "fast"});
  EXPECT_FALSE(g.parse(static_cast<int>(argv2.size()), argv2.data()));

  Flags h = make_flags();
  const auto argv3 = argv_of({"--verbose=maybe"});
  EXPECT_FALSE(h.parse(static_cast<int>(argv3.size()), argv3.data()));
}

TEST(FlagsTest, RejectsMissingValue) {
  Flags f = make_flags();
  const auto argv = argv_of({"--count"});
  EXPECT_FALSE(f.parse(static_cast<int>(argv.size()), argv.data()));
  EXPECT_NE(f.error().find("missing a value"), std::string::npos);
}

TEST(FlagsTest, HelpRequested) {
  Flags f = make_flags();
  const auto argv = argv_of({"--help"});
  ASSERT_TRUE(f.parse(static_cast<int>(argv.size()), argv.data()));
  EXPECT_TRUE(f.help_requested());
  const std::string usage = f.usage("prog");
  EXPECT_NE(usage.find("--count"), std::string::npos);
  EXPECT_NE(usage.find("a double"), std::string::npos);
  EXPECT_NE(usage.find("test program"), std::string::npos);
}

TEST(FlagsTest, PositionalArgumentsCollected) {
  Flags f = make_flags();
  const auto argv = argv_of({"alpha", "--count", "7", "beta"});
  ASSERT_TRUE(f.parse(static_cast<int>(argv.size()), argv.data()));
  ASSERT_EQ(f.positional().size(), 2u);
  EXPECT_EQ(f.positional()[0], "alpha");
  EXPECT_EQ(f.positional()[1], "beta");
}

TEST(FlagsTest, WrongTypeAccessThrows) {
  Flags f = make_flags();
  const auto argv = argv_of({});
  ASSERT_TRUE(f.parse(static_cast<int>(argv.size()), argv.data()));
  EXPECT_THROW(f.get_int("name"), std::logic_error);
  EXPECT_THROW(f.get_string("count"), std::logic_error);
  EXPECT_THROW(f.get_bool("unregistered"), std::logic_error);
}

}  // namespace
}  // namespace bicord
