#include "util/rng.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <vector>

namespace bicord {
namespace {

TEST(RngTest, DeterministicForSameSeed) {
  Rng a(123);
  Rng b(123);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.next(), b.next());
}

TEST(RngTest, DifferentSeedsDiverge) {
  Rng a(1);
  Rng b(2);
  int same = 0;
  for (int i = 0; i < 100; ++i) {
    if (a.next() == b.next()) ++same;
  }
  EXPECT_LT(same, 2);
}

TEST(RngTest, UniformInUnitInterval) {
  Rng rng(7);
  for (int i = 0; i < 10000; ++i) {
    const double u = rng.uniform();
    EXPECT_GE(u, 0.0);
    EXPECT_LT(u, 1.0);
  }
}

TEST(RngTest, UniformMeanNearHalf) {
  Rng rng(7);
  double sum = 0.0;
  const int n = 100000;
  for (int i = 0; i < n; ++i) sum += rng.uniform();
  EXPECT_NEAR(sum / n, 0.5, 0.01);
}

TEST(RngTest, UniformIntCoversRangeInclusive) {
  Rng rng(3);
  std::vector<int> counts(6, 0);
  for (int i = 0; i < 6000; ++i) {
    const auto v = rng.uniform_int(0, 5);
    ASSERT_GE(v, 0);
    ASSERT_LE(v, 5);
    ++counts[static_cast<std::size_t>(v)];
  }
  for (int c : counts) EXPECT_GT(c, 800);  // roughly uniform
}

TEST(RngTest, UniformIntSingletonRange) {
  Rng rng(3);
  for (int i = 0; i < 10; ++i) EXPECT_EQ(rng.uniform_int(42, 42), 42);
}

TEST(RngTest, UniformIntRejectsInvertedRange) {
  Rng rng(3);
  EXPECT_THROW(rng.uniform_int(5, 4), std::invalid_argument);
}

TEST(RngTest, BernoulliExtremes) {
  Rng rng(9);
  for (int i = 0; i < 100; ++i) {
    EXPECT_FALSE(rng.bernoulli(0.0));
    EXPECT_TRUE(rng.bernoulli(1.0));
  }
}

TEST(RngTest, BernoulliFrequency) {
  Rng rng(9);
  int hits = 0;
  const int n = 100000;
  for (int i = 0; i < n; ++i) hits += rng.bernoulli(0.3) ? 1 : 0;
  EXPECT_NEAR(static_cast<double>(hits) / n, 0.3, 0.01);
}

TEST(RngTest, NormalMoments) {
  Rng rng(11);
  const int n = 100000;
  double sum = 0.0;
  double sum2 = 0.0;
  for (int i = 0; i < n; ++i) {
    const double v = rng.normal(2.0, 3.0);
    sum += v;
    sum2 += v * v;
  }
  const double mean = sum / n;
  const double var = sum2 / n - mean * mean;
  EXPECT_NEAR(mean, 2.0, 0.05);
  EXPECT_NEAR(std::sqrt(var), 3.0, 0.05);
}

TEST(RngTest, ExponentialMeanAndPositivity) {
  Rng rng(13);
  const int n = 100000;
  double sum = 0.0;
  for (int i = 0; i < n; ++i) {
    const double v = rng.exponential(5.0);
    ASSERT_GT(v, 0.0);
    sum += v;
  }
  EXPECT_NEAR(sum / n, 5.0, 0.1);
}

TEST(RngTest, ExponentialRejectsNonPositiveMean) {
  Rng rng(13);
  EXPECT_THROW(rng.exponential(0.0), std::invalid_argument);
  EXPECT_THROW(rng.exponential(-1.0), std::invalid_argument);
}

TEST(RngTest, PoissonMoments) {
  Rng rng(17);
  const int n = 50000;
  double sum = 0.0;
  for (int i = 0; i < n; ++i) sum += static_cast<double>(rng.poisson(4.0));
  EXPECT_NEAR(sum / n, 4.0, 0.1);
  // Large-mean branch (normal approximation).
  sum = 0.0;
  for (int i = 0; i < n; ++i) sum += static_cast<double>(rng.poisson(100.0));
  EXPECT_NEAR(sum / n, 100.0, 1.0);
}

TEST(RngTest, PoissonZeroMean) {
  Rng rng(17);
  EXPECT_EQ(rng.poisson(0.0), 0);
  EXPECT_THROW(rng.poisson(-1.0), std::invalid_argument);
}

TEST(RngTest, RayleighMean) {
  Rng rng(19);
  const int n = 100000;
  double sum = 0.0;
  for (int i = 0; i < n; ++i) sum += rng.rayleigh(2.0);
  // E[Rayleigh(sigma)] = sigma * sqrt(pi/2)
  EXPECT_NEAR(sum / n, 2.0 * std::sqrt(std::acos(-1.0) / 2.0), 0.05);
}

TEST(RngTest, ExpDurationMean) {
  Rng rng(23);
  const int n = 20000;
  std::int64_t total = 0;
  for (int i = 0; i < n; ++i) total += rng.exp_duration(Duration::from_ms(10)).us();
  EXPECT_NEAR(static_cast<double>(total) / n, 10000.0, 300.0);
}

TEST(RngTest, UniformDurationWithinBounds) {
  Rng rng(29);
  for (int i = 0; i < 1000; ++i) {
    const Duration d = rng.uniform_duration(Duration::from_ms(1), Duration::from_ms(2));
    EXPECT_GE(d, Duration::from_ms(1));
    EXPECT_LE(d, Duration::from_ms(2));
  }
}

TEST(RngTest, SplitProducesIndependentStream) {
  Rng parent(31);
  Rng child = parent.split();
  // The child stream should differ from the parent's continued stream.
  int same = 0;
  for (int i = 0; i < 64; ++i) {
    if (parent.next() == child.next()) ++same;
  }
  EXPECT_LT(same, 2);
}

TEST(RngTest, SatisfiesUniformRandomBitGenerator) {
  static_assert(std::uniform_random_bit_generator<Rng>);
  EXPECT_EQ(Rng::min(), 0u);
  EXPECT_EQ(Rng::max(), std::numeric_limits<std::uint64_t>::max());
}

}  // namespace
}  // namespace bicord
