#include "util/rng.hpp"

#include <gtest/gtest.h>

#include <cstdint>
#include <set>
#include <vector>

namespace bicord {
namespace {

std::vector<std::uint64_t> draw(Rng rng, int n) {
  std::vector<std::uint64_t> out;
  out.reserve(static_cast<std::size_t>(n));
  for (int i = 0; i < n; ++i) out.push_back(rng.next());
  return out;
}

TEST(RngSplitTest, SplitKDoesNotPerturbParent) {
  Rng parent(42);
  const auto before = draw(parent, 32);  // copy: parent itself untouched
  (void)parent.split(0);
  (void)parent.split(17);
  (void)parent.split(0xFFFFFFFFFFFFFFFFULL);
  const auto after = draw(parent, 32);
  EXPECT_EQ(before, after);
}

TEST(RngSplitTest, SplitKIsPureFunctionOfStateAndK) {
  const Rng parent(123);
  const auto a = draw(parent.split(5), 64);
  const auto b = draw(parent.split(5), 64);
  EXPECT_EQ(a, b);
}

TEST(RngSplitTest, SiblingStreamsHaveDistinctPrefixes) {
  const Rng parent(7);
  const auto s0 = draw(parent.split(0), 64);
  const auto s1 = draw(parent.split(1), 64);
  const auto s2 = draw(parent.split(2), 64);
  int collisions = 0;
  for (std::size_t i = 0; i < 64; ++i) {
    if (s0[i] == s1[i]) ++collisions;
    if (s0[i] == s2[i]) ++collisions;
    if (s1[i] == s2[i]) ++collisions;
  }
  EXPECT_LT(collisions, 2);
}

TEST(RngSplitTest, FirstDrawsOfManyChildrenAreAllDistinct) {
  const Rng parent(2021);
  std::set<std::uint64_t> seen;
  for (std::uint64_t k = 0; k < 1000; ++k) seen.insert(parent.split(k).next());
  EXPECT_EQ(seen.size(), 1000u);
}

TEST(RngSplitTest, ChildDiffersFromParentContinuation) {
  Rng parent(31);
  Rng child = parent.split(3);
  int same = 0;
  for (int i = 0; i < 64; ++i) {
    if (parent.next() == child.next()) ++same;
  }
  EXPECT_LT(same, 2);
}

TEST(RngSplitTest, StableAcrossRuns) {
  // Golden prefix: per-trial seeds must never drift between builds or
  // machines, or archived experiment outputs stop being reproducible.
  const Rng parent(1000);
  Rng child0 = parent.split(0);
  Rng child1 = parent.split(1);
  const std::uint64_t c0 = child0.next();
  const std::uint64_t c1 = child1.next();
  Rng again0 = Rng(1000).split(0);
  Rng again1 = Rng(1000).split(1);
  EXPECT_EQ(c0, again0.next());
  EXPECT_EQ(c1, again1.next());
  EXPECT_NE(c0, c1);
}

TEST(RngSplitTest, DifferentParentsDifferentChildren) {
  EXPECT_NE(Rng(1).split(0).next(), Rng(2).split(0).next());
}

TEST(RngSplitTest, JumpedStreamsAgreeAndDiverge) {
  Rng a(55);
  Rng b(55);
  a.jump();
  b.jump();
  // Equal jumps land on the same state...
  for (int i = 0; i < 32; ++i) EXPECT_EQ(a.next(), b.next());
  // ...which differs from the un-jumped stream.
  Rng plain(55);
  Rng jumped(55);
  jumped.jump();
  int same = 0;
  for (int i = 0; i < 64; ++i) {
    if (plain.next() == jumped.next()) ++same;
  }
  EXPECT_LT(same, 2);
}

}  // namespace
}  // namespace bicord
