#include "csi/csi_model.hpp"

#include <gtest/gtest.h>

#include "phy/medium.hpp"
#include "sim/simulator.hpp"

namespace bicord::csi {
namespace {

using namespace bicord::time_literals;

phy::RxResult wifi_rx(double rssi_dbm, bool zb_overlap, double zb_dbm,
                      phy::TxId zb_tx = phy::kInvalidTx) {
  phy::RxResult rx;
  rx.frame.tech = phy::Technology::WiFi;
  rx.rssi_dbm = rssi_dbm;
  rx.zigbee_overlap = zb_overlap;
  rx.zigbee_overlap_dbm = zb_dbm;
  rx.zigbee_overlap_tx = zb_tx;
  rx.success = true;
  return rx;
}

struct CsiModelFixture : ::testing::Test {
  CsiModelFixture() : sim(41) {}

  /// Feeds `n` frames spaced 1 ms apart, changing the overlapping ZigBee
  /// transmission id every `samples_per_packet` frames (a fresh visibility
  /// draw per packet). Returns the fraction of samples above `threshold`.
  double high_fraction(CsiStream& stream, int n, bool overlap, double zb_dbm,
                       int samples_per_packet = 4, double threshold = 0.45) {
    int high = 0;
    int total = 0;
    stream.set_sample_callback([&](const CsiSample& s) {
      ++total;
      if (s.amplitude > threshold) ++high;
    });
    for (int i = 0; i < n; ++i) {
      const auto tx = static_cast<phy::TxId>(1 + i / samples_per_packet);
      stream.on_frame(wifi_rx(-35.0, overlap, zb_dbm, overlap ? tx : phy::kInvalidTx));
      sim.run_for(1_ms);
    }
    return total ? static_cast<double>(high) / total : 0.0;
  }

  sim::Simulator sim;
};

TEST_F(CsiModelFixture, QuiescentJitterIsLow) {
  CsiStream stream(sim, CsiModelParams{});
  const double frac = high_fraction(stream, 5000, false, -120.0);
  // Only impulse noise exceeds the threshold: ~1.2 % of samples.
  EXPECT_LT(frac, 0.03);
  EXPECT_GT(frac, 0.002);
  EXPECT_EQ(stream.samples_emitted(), 5000u);
}

TEST_F(CsiModelFixture, StrongOverlapDisturbsMostPackets) {
  CsiStream stream(sim, CsiModelParams{});
  // ISR = -20 - (-35) = +15 dB: essentially every packet is visible and
  // most of its samples go high.
  const double frac = high_fraction(stream, 2000, true, -20.0);
  EXPECT_GT(frac, 0.7);
}

TEST_F(CsiModelFixture, WeakOverlapRarelyDisturbs) {
  CsiStream stream(sim, CsiModelParams{});
  // ISR = -75 - (-35) = -40 dB: far below the visibility midpoint.
  const double frac = high_fraction(stream, 2000, true, -75.0);
  EXPECT_LT(frac, 0.05);
}

TEST_F(CsiModelFixture, MidIsrDisturbsAboutHalfThePackets) {
  CsiStream stream(sim, CsiModelParams{});
  // ISR = -44 - (-35) = -9 dB = the default visibility midpoint.
  const double frac = high_fraction(stream, 4000, true, -44.0);
  const double expected = 0.5 * CsiModelParams{}.visible_high_prob;
  EXPECT_NEAR(frac, expected, 0.08);
}

TEST_F(CsiModelFixture, DisturbanceProbabilityMonotoneInIsr) {
  CsiModelParams params;
  double prev = -1.0;
  for (double zb : {-70.0, -55.0, -46.0, -38.0}) {
    CsiStream stream(sim, params);
    const double frac = high_fraction(stream, 3000, true, zb);
    EXPECT_GE(frac, prev - 0.03);  // allow small statistical slack
    prev = frac;
  }
}

TEST_F(CsiModelFixture, VisibilityIsPerPacketNotPerSample) {
  // With one shared tx id, the whole run is a single visibility draw: the
  // high fraction is either ~0 or ~visible_high_prob, nothing in between.
  CsiModelParams params;
  params.impulse_prob = 0.0;
  int bimodal_hits = 0;
  for (std::uint64_t seed = 0; seed < 20; ++seed) {
    sim::Simulator local_sim(seed);
    CsiStream stream(local_sim, params);
    int high = 0;
    stream.set_sample_callback([&](const CsiSample& s) {
      if (s.amplitude > 0.45) ++high;
    });
    for (int i = 0; i < 200; ++i) {
      stream.on_frame(wifi_rx(-35.0, true, -44.0, 7));  // same tx id always
      local_sim.run_for(1_ms);
    }
    const double frac = high / 200.0;
    if (frac < 0.05 || frac > 0.6) ++bimodal_hits;
  }
  EXPECT_EQ(bimodal_hits, 20);
}

TEST_F(CsiModelFixture, GroundTruthFlagOnlyWithOverlap) {
  CsiStream stream(sim, CsiModelParams{});
  bool truth_seen_without_overlap = false;
  stream.set_sample_callback([&](const CsiSample& s) {
    if (s.zigbee_ground_truth) truth_seen_without_overlap = true;
  });
  for (int i = 0; i < 2000; ++i) {
    stream.on_frame(wifi_rx(-35.0, false, -120.0));
    sim.run_for(1_ms);
  }
  EXPECT_FALSE(truth_seen_without_overlap);
}

TEST_F(CsiModelFixture, TailResetsAfterReceptionGap) {
  CsiModelParams params;
  params.impulse_prob = 0.0;
  CsiStream stream(sim, params);
  int high_tail = 0;
  stream.set_sample_callback([&](const CsiSample& s) {
    if (s.amplitude > 0.45) ++high_tail;
  });
  // Strongly visible packet, then a long pause, then clean frames: the
  // estimator must have settled — no residual disturbance at all.
  for (int i = 0; i < 5; ++i) {
    stream.on_frame(wifi_rx(-35.0, true, -20.0, 9));
    sim.run_for(1_ms);
  }
  sim.run_for(50_ms);
  high_tail = 0;
  for (int i = 0; i < 300; ++i) {
    stream.on_frame(wifi_rx(-35.0, false, -120.0));
    sim.run_for(1_ms);
  }
  EXPECT_EQ(high_tail, 0);
}

TEST_F(CsiModelFixture, PersonMobilityRaisesFalseFluctuations) {
  CsiModelParams params;
  CsiStream still(sim, params);
  const double base = high_fraction(still, 4000, false, -120.0);
  CsiStream moving(sim, params);
  moving.set_mobility(2.0);  // person walking
  const double mob = high_fraction(moving, 4000, false, -120.0);
  EXPECT_GT(mob, base + 0.02);
}

}  // namespace
}  // namespace bicord::csi
