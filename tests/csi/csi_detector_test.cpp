#include "csi/csi_detector.hpp"

#include <gtest/gtest.h>

#include <vector>

namespace bicord::csi {
namespace {

CsiSample sample(std::int64_t us, double amplitude) {
  CsiSample s;
  s.time = TimePoint::from_us(us);
  s.amplitude = amplitude;
  return s;
}

TEST(CsiDetectorTest, TwoHighSamplesWithinWindowDetect) {
  CsiDetector det;
  std::vector<TimePoint> detections;
  det.set_detection_callback([&](TimePoint t) { detections.push_back(t); });
  det.add_sample(sample(0, 0.9));
  det.add_sample(sample(3000, 0.9));  // 3 ms later, inside T = 5 ms
  ASSERT_EQ(detections.size(), 1u);
  EXPECT_EQ(detections[0].us(), 3000);
}

TEST(CsiDetectorTest, IsolatedImpulsesDoNotDetect) {
  // The continuity rule: strong but isolated noise impulses are ignored.
  CsiDetector det;
  int detections = 0;
  det.set_detection_callback([&](TimePoint) { ++detections; });
  for (int i = 0; i < 100; ++i) {
    det.add_sample(sample(i * 20000, 1.2));  // one impulse every 20 ms
  }
  EXPECT_EQ(detections, 0);
  EXPECT_EQ(det.high_samples(), 100u);
}

TEST(CsiDetectorTest, LowAmplitudeNeverDetects) {
  CsiDetector det;
  int detections = 0;
  det.set_detection_callback([&](TimePoint) { ++detections; });
  for (int i = 0; i < 1000; ++i) det.add_sample(sample(i * 500, 0.2));
  EXPECT_EQ(detections, 0);
  EXPECT_EQ(det.high_samples(), 0u);
  EXPECT_EQ(det.samples_seen(), 1000u);
}

TEST(CsiDetectorTest, RefractorySuppressesBurstDuplicates) {
  DetectorParams p;
  p.refractory = Duration::from_ms(8);
  CsiDetector det(p);
  int detections = 0;
  det.set_detection_callback([&](TimePoint) { ++detections; });
  // A dense run of high samples 1 ms apart for 6 ms: one detection only.
  for (int i = 0; i < 7; ++i) det.add_sample(sample(i * 1000, 1.0));
  EXPECT_EQ(detections, 1);
  // After the refractory a fresh run detects again.
  for (int i = 0; i < 7; ++i) det.add_sample(sample(20000 + i * 1000, 1.0));
  EXPECT_EQ(detections, 2);
}

TEST(CsiDetectorTest, HigherNRequiresMoreEvidence) {
  DetectorParams p;
  p.n_required = 4;
  CsiDetector det(p);
  int detections = 0;
  det.set_detection_callback([&](TimePoint) { ++detections; });
  det.add_sample(sample(0, 1.0));
  det.add_sample(sample(1000, 1.0));
  det.add_sample(sample(2000, 1.0));
  EXPECT_EQ(detections, 0);
  det.add_sample(sample(3000, 1.0));
  EXPECT_EQ(detections, 1);
}

TEST(CsiDetectorTest, WindowBoundaryIsExclusiveOfStale) {
  DetectorParams p;
  p.window = Duration::from_ms(5);
  CsiDetector det(p);
  int detections = 0;
  det.set_detection_callback([&](TimePoint) { ++detections; });
  det.add_sample(sample(0, 1.0));
  det.add_sample(sample(6000, 1.0));  // 6 ms later: outside window
  EXPECT_EQ(detections, 0);
  det.add_sample(sample(9000, 1.0));  // 3 ms after previous: inside
  EXPECT_EQ(detections, 1);
}

TEST(CsiDetectorTest, AmplitudeOnlyAblationFiresPerImpulse) {
  CsiDetector det;
  det.set_amplitude_only(true);
  int detections = 0;
  det.set_detection_callback([&](TimePoint) { ++detections; });
  det.add_sample(sample(0, 1.0));
  det.add_sample(sample(50000, 1.0));
  det.add_sample(sample(100000, 1.0));
  EXPECT_EQ(detections, 3);  // every isolated impulse is a (false) positive
}

TEST(CsiDetectorTest, ResetClearsState) {
  CsiDetector det;
  det.add_sample(sample(0, 1.0));
  det.reset();
  EXPECT_EQ(det.samples_seen(), 0u);
  EXPECT_EQ(det.high_samples(), 0u);
  int detections = 0;
  det.set_detection_callback([&](TimePoint) { ++detections; });
  det.add_sample(sample(1000, 1.0));  // single high after reset: no pair
  EXPECT_EQ(detections, 0);
}

TEST(CsiDetectorTest, RejectsBadParams) {
  DetectorParams p;
  p.n_required = 0;
  EXPECT_THROW(CsiDetector{p}, std::invalid_argument);
  DetectorParams q;
  q.window = Duration::zero();
  EXPECT_THROW(CsiDetector{q}, std::invalid_argument);
}

class DetectorSweep : public ::testing::TestWithParam<int> {};

TEST_P(DetectorSweep, NWithinWindowAlwaysDetectsDenseRun) {
  // Property: a run of N high samples 1 ms apart always triggers exactly one
  // detection for any N in the sweep.
  DetectorParams p;
  p.n_required = GetParam();
  p.window = Duration::from_ms(5);
  CsiDetector det(p);
  int detections = 0;
  det.set_detection_callback([&](TimePoint) { ++detections; });
  for (int i = 0; i < GetParam(); ++i) det.add_sample(sample(i * 1000, 1.0));
  EXPECT_EQ(detections, 1);
}

INSTANTIATE_TEST_SUITE_P(Continuity, DetectorSweep, ::testing::Values(1, 2, 3, 4, 5));

}  // namespace
}  // namespace bicord::csi
