// WhitespaceAllocator edge cases: expiry exactly on the boundary, reset()
// racing an in-progress burst, burst-end events with no preceding request,
// and the sanity clamps added for adversarial-channel hardening.

#include "core/whitespace.hpp"

#include <gtest/gtest.h>

namespace bicord::core {
namespace {

using namespace bicord::time_literals;

AllocatorParams edge_params() {
  AllocatorParams p;
  p.initial_whitespace = 30_ms;
  p.control_duration = 5_ms;  // per-round credit = 30 - 2*5 = 20 ms
  p.end_of_burst_gap = 20_ms;
  p.reestimate_period = Duration::from_sec(10);
  p.max_whitespace = 250_ms;
  return p;
}

TimePoint at(Duration d) { return TimePoint::origin() + d; }

TEST(WhitespaceEdgeTest, RequestExactlyAtExpiryBoundaryReestimates) {
  WhitespaceAllocator alloc(edge_params());
  EXPECT_EQ(alloc.on_request(at(1_sec)), 30_ms);
  alloc.on_burst_end(at(1050_ms));
  ASSERT_EQ(alloc.phase(), AllocatorPhase::Adjusted);
  ASSERT_EQ(alloc.estimate(), 20_ms);

  // now - last_reset == reestimate_period exactly: the >= comparison must
  // fire, dropping back to learning instead of serving the stale estimate.
  EXPECT_EQ(alloc.on_request(at(Duration::from_sec(10))), 30_ms);
  EXPECT_EQ(alloc.phase(), AllocatorPhase::Learning);
  EXPECT_EQ(alloc.estimate(), Duration::zero());
}

TEST(WhitespaceEdgeTest, RequestOneMicrosecondBeforeExpiryKeepsEstimate) {
  WhitespaceAllocator alloc(edge_params());
  (void)alloc.on_request(at(1_sec));
  alloc.on_burst_end(at(1050_ms));

  const TimePoint just_before = at(Duration::from_sec(10) - Duration::from_us(1));
  EXPECT_EQ(alloc.on_request(just_before), 20_ms);
  EXPECT_EQ(alloc.phase(), AllocatorPhase::Adjusted);
}

TEST(WhitespaceEdgeTest, ExpiryNeverFiresMidBurst) {
  WhitespaceAllocator alloc(edge_params());
  (void)alloc.on_request(at(1_sec));
  // Second round of the same burst, far past the re-estimate period: the
  // in-burst guard must win and this must be a supplemental grant, not a
  // learning restart.
  EXPECT_EQ(alloc.on_request(at(Duration::from_sec(12))), 30_ms);
  EXPECT_EQ(alloc.rounds_this_burst(), 2);

  alloc.on_burst_end(at(Duration::from_sec(12) + 50_ms));
  EXPECT_EQ(alloc.phase(), AllocatorPhase::Adjusted);
  EXPECT_EQ(alloc.estimate(), 40_ms);  // 2 rounds * 20 ms credit
}

TEST(WhitespaceEdgeTest, ResetRacingInProgressBurstIsSafe) {
  WhitespaceAllocator alloc(edge_params());
  (void)alloc.on_request(at(1_sec));
  alloc.reset(at(1010_ms));  // pattern change mid-burst

  // The burst-end for the abandoned burst arrives afterwards: it must be a
  // no-op, not a bogus estimate from zero recorded rounds.
  alloc.on_burst_end(at(1020_ms));
  EXPECT_EQ(alloc.phase(), AllocatorPhase::Learning);
  EXPECT_EQ(alloc.estimate(), Duration::zero());
  EXPECT_EQ(alloc.rounds_this_burst(), 0);

  // And the allocator still works normally afterwards.
  EXPECT_EQ(alloc.on_request(at(1100_ms)), 30_ms);
  alloc.on_burst_end(at(1150_ms));
  EXPECT_EQ(alloc.estimate(), 20_ms);
}

TEST(WhitespaceEdgeTest, BurstEndWithoutRequestIsANoOp) {
  WhitespaceAllocator alloc(edge_params());
  alloc.on_burst_end(at(1_sec));
  EXPECT_EQ(alloc.phase(), AllocatorPhase::Learning);
  EXPECT_EQ(alloc.estimate(), Duration::zero());
  EXPECT_FALSE(alloc.converged());

  // Two in a row (fault-duplicated end event) are equally harmless.
  alloc.on_burst_end(at(1100_ms));
  EXPECT_EQ(alloc.on_request(at(1200_ms)), 30_ms);
}

TEST(WhitespaceEdgeTest, LearningEstimateIsClampedToMaxWhitespace) {
  auto params = edge_params();
  params.max_whitespace = 100_ms;
  WhitespaceAllocator alloc(params);

  // A fault-stretched learning burst: 10 rounds * 20 ms credit = 200 ms,
  // which must clamp to the 100 ms cap.
  for (int i = 0; i < 10; ++i) {
    (void)alloc.on_request(at(1_sec + Duration::from_ms(i * 40)));
  }
  alloc.on_burst_end(at(2_sec));
  EXPECT_EQ(alloc.estimate(), 100_ms);
  EXPECT_EQ(alloc.on_request(at(2100_ms)), 100_ms);
}

TEST(WhitespaceEdgeTest, SingleGrantNeverExceedsMaxWhitespace) {
  auto params = edge_params();
  params.initial_whitespace = 300_ms;  // misconfigured past the cap
  params.max_whitespace = 250_ms;
  WhitespaceAllocator alloc(params);
  EXPECT_EQ(alloc.on_request(at(1_sec)), 250_ms);
}

TEST(WhitespaceEdgeTest, AdversarialEventOrderingsAlwaysGrantUsableWhitespace) {
  // Replay a storm of contradictory orderings (the kind a fault plan
  // produces) and require every grant to stay within (0, max].
  WhitespaceAllocator alloc(edge_params());
  Duration t = 1_sec;
  for (int i = 0; i < 200; ++i) {
    t = t + Duration::from_ms(37);
    switch (i % 7) {
      case 0:
      case 1:
      case 3: {
        const Duration grant = alloc.on_request(at(t));
        EXPECT_GT(grant, Duration::zero()) << "iteration " << i;
        EXPECT_LE(grant, edge_params().max_whitespace) << "iteration " << i;
        break;
      }
      case 2:
      case 5:
        alloc.on_burst_end(at(t));
        break;
      case 4:
        alloc.reset(at(t));
        break;
      default:
        alloc.on_burst_end(at(t));  // duplicated end event
        break;
    }
    EXPECT_GE(alloc.estimate(), Duration::zero());
    EXPECT_LE(alloc.estimate(), edge_params().max_whitespace);
  }
}

}  // namespace
}  // namespace bicord::core
