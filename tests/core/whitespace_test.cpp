#include "core/whitespace.hpp"

#include <gtest/gtest.h>

namespace bicord::core {
namespace {

using namespace bicord::time_literals;

TimePoint at_ms(std::int64_t ms) { return TimePoint::from_us(ms * 1000); }

AllocatorParams params_30ms() {
  AllocatorParams p;
  p.initial_whitespace = 30_ms;
  p.control_duration = 8_ms;
  return p;
}

TEST(WhitespaceAllocatorTest, LearningGrantsInitialWhitespace) {
  WhitespaceAllocator alloc(params_30ms());
  EXPECT_EQ(alloc.phase(), AllocatorPhase::Learning);
  EXPECT_EQ(alloc.on_request(at_ms(0)), 30_ms);
  EXPECT_EQ(alloc.on_request(at_ms(40)), 30_ms);
  EXPECT_EQ(alloc.rounds_this_burst(), 2);
}

TEST(WhitespaceAllocatorTest, PaperEstimationFormula) {
  // T_est = (T_w - 2 T_c) * N_round: 5 rounds of 30 ms with T_c = 8 ms
  // estimate 70 ms — exactly the paper's Fig. 7 anchor (10-packet burst,
  // 62.7 ms, converges to ~70 ms after ~5 iterations).
  WhitespaceAllocator alloc(params_30ms());
  for (int i = 0; i < 5; ++i) alloc.on_request(at_ms(i * 40));
  alloc.on_burst_end(at_ms(250));
  EXPECT_EQ(alloc.phase(), AllocatorPhase::Adjusted);
  EXPECT_EQ(alloc.estimate(), 70_ms);
}

TEST(WhitespaceAllocatorTest, AdjustedPhaseGrantsEstimate) {
  WhitespaceAllocator alloc(params_30ms());
  for (int i = 0; i < 3; ++i) alloc.on_request(at_ms(i * 40));
  alloc.on_burst_end(at_ms(150));
  EXPECT_EQ(alloc.estimate(), 42_ms);
  EXPECT_EQ(alloc.on_request(at_ms(200)), 42_ms);
}

TEST(WhitespaceAllocatorTest, SupplementalGrantIsInitialWhitespace) {
  WhitespaceAllocator alloc(params_30ms());
  alloc.on_request(at_ms(0));
  alloc.on_burst_end(at_ms(50));  // estimate 14 ms
  EXPECT_EQ(alloc.on_request(at_ms(100)), 14_ms);
  EXPECT_EQ(alloc.on_request(at_ms(120)), 30_ms);  // fell short: supplement
}

TEST(WhitespaceAllocatorTest, SingleShortfallDoesNotRatchet) {
  // A lone over-long burst (two Poisson bursts coinciding) must not grow
  // the steady-state estimate.
  WhitespaceAllocator alloc(params_30ms());
  alloc.on_request(at_ms(0));
  alloc.on_request(at_ms(35));
  alloc.on_burst_end(at_ms(80));  // learning: estimate 28
  const Duration estimate = alloc.estimate();

  alloc.on_request(at_ms(200));
  alloc.on_request(at_ms(235));  // shortfall 1
  alloc.on_burst_end(at_ms(280));
  EXPECT_EQ(alloc.estimate(), estimate);  // transient: unchanged
}

TEST(WhitespaceAllocatorTest, PersistentShortfallsRatchet) {
  WhitespaceAllocator alloc(params_30ms());
  alloc.on_request(at_ms(0));
  alloc.on_burst_end(at_ms(50));  // estimate 14
  for (int burst = 0; burst < 3; ++burst) {
    alloc.on_request(at_ms(200 + burst * 100));
    alloc.on_request(at_ms(235 + burst * 100));
    alloc.on_burst_end(at_ms(280 + burst * 100));
  }
  // Third consecutive shortfall of 1 round: estimate += (30 - 16).
  EXPECT_EQ(alloc.estimate(), 28_ms);
}

TEST(WhitespaceAllocatorTest, TwoShortfallsAreStillTransient) {
  WhitespaceAllocator alloc(params_30ms());
  alloc.on_request(at_ms(0));
  alloc.on_burst_end(at_ms(50));  // estimate 14
  for (int burst = 0; burst < 2; ++burst) {
    alloc.on_request(at_ms(200 + burst * 100));
    alloc.on_request(at_ms(235 + burst * 100));
    alloc.on_burst_end(at_ms(280 + burst * 100));
  }
  alloc.on_request(at_ms(500));
  alloc.on_burst_end(at_ms(550));  // fits again: streak broken
  EXPECT_EQ(alloc.estimate(), 14_ms);
}

TEST(WhitespaceAllocatorTest, ConvergenceFlagAndIterationCount) {
  WhitespaceAllocator alloc(params_30ms());
  for (int i = 0; i < 3; ++i) alloc.on_request(at_ms(i * 40));  // 3 grants
  alloc.on_burst_end(at_ms(150));
  EXPECT_FALSE(alloc.converged());
  alloc.on_request(at_ms(300));  // 4th grant, fits
  alloc.on_burst_end(at_ms(400));
  EXPECT_TRUE(alloc.converged());
  EXPECT_EQ(alloc.iterations_to_converge(), 4);
}

TEST(WhitespaceAllocatorTest, GrantsCappedAtMaximum) {
  AllocatorParams p = params_30ms();
  p.max_whitespace = 50_ms;
  WhitespaceAllocator alloc(p);
  for (int i = 0; i < 10; ++i) alloc.on_request(at_ms(i * 40));
  alloc.on_burst_end(at_ms(500));
  // Raw estimate 140 ms clamps to 50 ms on grant.
  EXPECT_EQ(alloc.on_request(at_ms(600)), 50_ms);
}

TEST(WhitespaceAllocatorTest, ExpiryForcesRelearning) {
  AllocatorParams p = params_30ms();
  p.reestimate_period = 1_sec;
  WhitespaceAllocator alloc(p);
  alloc.on_request(at_ms(0));
  alloc.on_burst_end(at_ms(50));
  EXPECT_EQ(alloc.phase(), AllocatorPhase::Adjusted);
  // 2 s later (past the expiry), the next request re-enters learning.
  EXPECT_EQ(alloc.on_request(at_ms(2000)), 30_ms);
  EXPECT_EQ(alloc.phase(), AllocatorPhase::Learning);
}

TEST(WhitespaceAllocatorTest, NoExpiryMidBurst) {
  AllocatorParams p = params_30ms();
  p.reestimate_period = 100_ms;
  WhitespaceAllocator alloc(p);
  alloc.on_request(at_ms(0));
  alloc.on_burst_end(at_ms(10));
  alloc.on_request(at_ms(200));  // expired: relearn, burst open
  EXPECT_EQ(alloc.phase(), AllocatorPhase::Learning);
  alloc.on_request(at_ms(500));  // mid-burst: must not reset again
  EXPECT_EQ(alloc.rounds_this_burst(), 2);
}

TEST(WhitespaceAllocatorTest, ManualResetClearsEverything) {
  WhitespaceAllocator alloc(params_30ms());
  alloc.on_request(at_ms(0));
  alloc.on_burst_end(at_ms(50));
  alloc.reset(at_ms(100));
  EXPECT_EQ(alloc.phase(), AllocatorPhase::Learning);
  EXPECT_EQ(alloc.estimate(), Duration::zero());
  EXPECT_FALSE(alloc.converged());
  EXPECT_EQ(alloc.rounds_this_burst(), 0);
}

TEST(WhitespaceAllocatorTest, BurstEndWithoutBurstIsIgnored) {
  WhitespaceAllocator alloc(params_30ms());
  alloc.on_burst_end(at_ms(0));
  EXPECT_EQ(alloc.phase(), AllocatorPhase::Learning);
  EXPECT_EQ(alloc.estimate(), Duration::zero());
}

TEST(WhitespaceAllocatorTest, DegenerateParamsStillGrantPositive) {
  AllocatorParams p;
  p.initial_whitespace = 10_ms;
  p.control_duration = 8_ms;  // W0 - 2 T_c < 0: credit clamps to 1 ms
  WhitespaceAllocator alloc(p);
  alloc.on_request(at_ms(0));
  alloc.on_burst_end(at_ms(50));
  EXPECT_GT(alloc.estimate(), Duration::zero());
}

// --- Property sweep: emulate the paper's Fig. 8/9 arithmetic ---------------
//
// For every (burst size, step) combination, simulate the allocator against an
// idealised ZigBee burst of `n` packets with the paper's ~6 ms per-packet
// cycle and verify: (a) the allocator converges, (b) the converged white
// space covers the burst, (c) over-provisioning is bounded.

struct SweepParam {
  int packets;
  std::int64_t step_ms;
};

class AllocatorSweep : public ::testing::TestWithParam<SweepParam> {};

TEST_P(AllocatorSweep, ConvergesAndCoversBurst) {
  const auto [packets, step_ms] = GetParam();
  AllocatorParams p;
  p.initial_whitespace = Duration::from_ms(step_ms);
  p.control_duration = 8_ms;
  WhitespaceAllocator alloc(p);

  const Duration per_packet = Duration::from_us(6270);  // paper: 62.7ms / 10
  const Duration lead_in = 6_ms;  // signaling + CCA before the first packet
  const Duration need = lead_in + per_packet * packets;

  std::int64_t clock_ms = 0;
  Duration final_grant;
  for (int burst = 0; burst < 12; ++burst) {
    Duration remaining = need;
    int guard = 0;
    while (remaining > Duration::zero() && ++guard < 50) {
      const Duration grant = alloc.on_request(at_ms(clock_ms));
      final_grant = grant;
      remaining -= grant;  // idealised: the whole grant is usable
      clock_ms += 40;
    }
    alloc.on_burst_end(at_ms(clock_ms));
    clock_ms += 200;
  }

  EXPECT_TRUE(alloc.converged());
  // Converged single-grant covers the burst...
  EXPECT_GE(alloc.estimate() + 1_ms, need - p.initial_whitespace);
  // ...and over-provisioning stays below one step + one round credit.
  EXPECT_LE(alloc.estimate(), need + p.initial_whitespace + 14_ms);
  (void)final_grant;
}

INSTANTIATE_TEST_SUITE_P(
    PaperWorkloads, AllocatorSweep,
    ::testing::Values(SweepParam{5, 30}, SweepParam{5, 40}, SweepParam{10, 30},
                      SweepParam{10, 40}, SweepParam{15, 30}, SweepParam{15, 40}),
    [](const ::testing::TestParamInfo<SweepParam>& info) {
      return "pkts" + std::to_string(info.param.packets) + "_step" +
             std::to_string(info.param.step_ms);
    });

}  // namespace
}  // namespace bicord::core
