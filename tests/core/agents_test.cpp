// Integration tests of the coordination agents over the full simulated
// stack, using the Scenario builder (the paper's Fig. 6 testbed).

#include <gtest/gtest.h>

#include "coex/scenario.hpp"

namespace bicord::core {
namespace {

using namespace bicord::time_literals;
using coex::Coordination;
using coex::Scenario;
using coex::ScenarioConfig;
using coex::ZigbeeLocation;

ScenarioConfig base_config(Coordination scheme) {
  ScenarioConfig cfg;
  cfg.seed = 99;
  cfg.coordination = scheme;
  cfg.location = ZigbeeLocation::A;
  cfg.burst.packets_per_burst = 5;
  cfg.burst.payload_bytes = 50;
  cfg.burst.mean_interval = 200_ms;
  return cfg;
}

TEST(BiCordAgentsTest, DeliversAllPacketsUnderSaturatedWifi) {
  Scenario sc(base_config(Coordination::BiCord));
  sc.run_for(5_sec);
  const auto& stats = sc.zigbee_stats();
  EXPECT_GT(stats.generated, 80u);
  // Every generated packet is either delivered or still queued (a burst may
  // arrive right before the cutoff); nothing is dropped.
  EXPECT_EQ(stats.delivered + sc.zigbee_agent().backlog(), stats.generated);
  EXPECT_GT(stats.delivery_ratio(), 0.9);
  EXPECT_EQ(stats.dropped, 0u);
}

TEST(BiCordAgentsTest, DelayStaysLow) {
  Scenario sc(base_config(Coordination::BiCord));
  sc.run_for(5_sec);
  EXPECT_LT(sc.zigbee_stats().delay_ms.mean(), 60.0);
  EXPECT_LT(sc.zigbee_stats().delay_ms.quantile(0.5), 45.0);
}

TEST(BiCordAgentsTest, SignalingDrivesGrants) {
  Scenario sc(base_config(Coordination::BiCord));
  sc.run_for(5_sec);
  auto* wifi = sc.bicord_wifi();
  auto* zigbee = sc.bicord_zigbee();
  ASSERT_NE(wifi, nullptr);
  ASSERT_NE(zigbee, nullptr);
  EXPECT_GT(zigbee->control_packets_sent(), 0u);
  EXPECT_GT(wifi->requests_detected(), 0u);
  EXPECT_GT(wifi->whitespaces_granted(), 0u);
  // Roughly one grant per burst (some bursts need a supplement).
  const auto bursts = sc.burst_source().bursts_generated();
  EXPECT_GE(wifi->whitespaces_granted(), bursts / 2);
  EXPECT_LE(wifi->whitespaces_granted(), bursts * 3);
}

TEST(BiCordAgentsTest, AllocatorConvergesToCoveringEstimate) {
  Scenario sc(base_config(Coordination::BiCord));
  sc.run_for(8_sec);
  const auto& alloc = sc.bicord_wifi()->allocator();
  EXPECT_EQ(alloc.phase(), AllocatorPhase::Adjusted);
  // A 5-packet burst occupies ~35 ms; the estimate must be in a sane band.
  EXPECT_GE(alloc.estimate(), 10_ms);
  EXPECT_LE(alloc.estimate(), 90_ms);
}

TEST(BiCordAgentsTest, PolicyIgnoreStopsGrants) {
  auto cfg = base_config(Coordination::BiCord);
  cfg.wifi_grants_requests = false;
  Scenario sc(cfg);
  sc.run_for(3_sec);
  EXPECT_EQ(sc.bicord_wifi()->whitespaces_granted(), 0u);
  EXPECT_GT(sc.bicord_wifi()->requests_ignored(), 0u);
  EXPECT_GT(sc.bicord_zigbee()->ignored_requests(), 0u);
  // Without white spaces almost nothing gets through.
  EXPECT_LT(sc.zigbee_stats().delivery_ratio(), 0.3);
}

TEST(BiCordAgentsTest, WorksWithCbrWifiTraffic) {
  auto cfg = base_config(Coordination::BiCord);
  cfg.wifi_traffic = coex::WifiTrafficKind::Cbr;
  Scenario sc(cfg);
  sc.run_for(5_sec);
  EXPECT_GT(sc.zigbee_stats().delivery_ratio(), 0.9);
}

TEST(EccAgentsTest, DeliversButSlowly) {
  auto cfg = base_config(Coordination::Ecc);
  cfg.ecc.whitespace = 30_ms;
  Scenario sc(cfg);
  sc.run_for(5_sec);
  const auto& stats = sc.zigbee_stats();
  EXPECT_GT(stats.delivery_ratio(), 0.85);
  // Blind periodic white spaces force waiting for the next notification.
  EXPECT_GT(stats.delay_ms.mean(), 40.0);
  EXPECT_NE(sc.ecc_wifi(), nullptr);
  EXPECT_GT(sc.ecc_wifi()->notifications_sent(), 40u);
}

TEST(EccAgentsTest, ZigbeeHearsNotifications) {
  auto cfg = base_config(Coordination::Ecc);
  Scenario sc(cfg);
  sc.run_for(3_sec);
  auto* agent = dynamic_cast<EccZigbeeAgent*>(&sc.zigbee_agent());
  ASSERT_NE(agent, nullptr);
  EXPECT_GT(agent->notifications_heard(), 20u);
}

TEST(CsmaAgentsTest, StarvesUnderSaturatedWifi) {
  Scenario sc(base_config(Coordination::Csma));
  sc.run_for(5_sec);
  // The uncoordinated baseline loses nearly everything — the paper's
  // motivation (>95 % loss under Wi-Fi interference).
  EXPECT_LT(sc.zigbee_stats().delivery_ratio(), 0.05);
}

TEST(CsmaAgentsTest, FineOnCleanChannel) {
  auto cfg = base_config(Coordination::Csma);
  cfg.wifi_traffic = coex::WifiTrafficKind::Cbr;
  cfg.wifi_cbr_interval = 1_sec;  // nearly idle Wi-Fi
  Scenario sc(cfg);
  sc.run_for(5_sec);
  EXPECT_GT(sc.zigbee_stats().delivery_ratio(), 0.9);
}

TEST(AgentsTest, StatsAccounting) {
  Scenario sc(base_config(Coordination::BiCord));
  sc.run_for(3_sec);
  const auto& stats = sc.zigbee_stats();
  EXPECT_EQ(stats.generated, sc.burst_source().bursts_generated() * 5);
  EXPECT_LE(stats.delivered + stats.dropped, stats.generated);
  EXPECT_EQ(stats.delay_ms.count(), stats.delivered);
  EXPECT_EQ(stats.payload_bytes_delivered, stats.delivered * 50);
}

}  // namespace
}  // namespace bicord::core
