// The paper's protocol constants and the timing arithmetic its analysis
// relies on — pinned so refactors cannot silently drift from Sec. V-VI.

#include <gtest/gtest.h>

#include "core/protocol_params.hpp"
#include "wifi/wifi_phy.hpp"
#include "zigbee/zigbee_phy.hpp"

namespace bicord::core {
namespace {

using namespace bicord::time_literals;

TEST(ProtocolParamsTest, PaperDefaults) {
  const SignalingParams sig;
  EXPECT_EQ(sig.control_payload_bytes, 120u);  // Sec. V
  EXPECT_GE(sig.max_control_packets, 5);

  const AllocatorParams alloc;
  EXPECT_EQ(alloc.initial_whitespace, 30_ms);       // Sec. VI (30 or 40 ms)
  EXPECT_EQ(alloc.control_duration, 8_ms);          // T_c in estimation
  EXPECT_EQ(alloc.end_of_burst_gap, 20_ms);         // end-of-burst silence
  EXPECT_EQ(alloc.reestimate_period, 10_sec);       // expiry timer
}

TEST(ProtocolParamsTest, ControlPacketSpansTwoWifiFrames) {
  // Sec. V: "long enough (120 bytes) to cover two continuous Wi-Fi
  // packets" — with the evaluation's 100-byte CBR frames.
  const SignalingParams sig;
  const Duration control =
      zigbee::PhyTimings{}.data_airtime(sig.control_payload_bytes);
  const Duration wifi_frame = wifi::PhyTimings{}.data_airtime(100);
  EXPECT_GE(control, 2 * wifi_frame);
}

TEST(ProtocolParamsTest, PaperBurstArithmetic) {
  // Sec. III-A: a 50-byte packet exchange (data + turnaround + ACK + app
  // pacing + mean CSMA backoff) takes a handful of milliseconds; the
  // paper's hardware measured ~6 ms per packet ("five packets ... about
  // 30 ms"), this substrate lands slightly faster at ~4.6 ms.
  const zigbee::PhyTimings t;
  const Duration cycle = t.data_airtime(50) + t.turnaround + t.ack_airtime() +
                         Duration::from_us(1600) /* pacing */ +
                         t.backoff_period /* mean CSMA */;
  EXPECT_GT(cycle, 4_ms);
  EXPECT_LT(cycle, 7_ms);
  // Five packets land in the paper's "about 30 ms" band.
  EXPECT_GT(cycle * 5, 20_ms);
  EXPECT_LT(cycle * 5, 35_ms);
}

TEST(ProtocolParamsTest, ZigbeeControlPacketAirtime) {
  // 120 B payload + 17 B overhead at 32 us/byte = 4.384 ms.
  EXPECT_EQ(zigbee::PhyTimings{}.data_airtime(120), Duration::from_us(4384));
}

TEST(ProtocolParamsTest, EstimationFormulaMatchesPaperExample) {
  // Paper Sec. VIII-C anchor: 5 rounds of 30 ms with T_c = 8 ms -> 70 ms.
  const AllocatorParams p;
  const Duration t_est = (p.initial_whitespace - 2 * p.control_duration) * 5;
  EXPECT_EQ(t_est, 70_ms);
}

}  // namespace
}  // namespace bicord::core
