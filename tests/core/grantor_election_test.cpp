// GrantorElection unit tests: deterministic ranking, grace-clock arming and
// cancellation, succession (including skipping dead members), handoff
// records, and the capped grant log the InvariantChecker replays.

#include "core/grantor_election.hpp"

#include <gtest/gtest.h>

#include <optional>
#include <vector>

#include "sim/simulator.hpp"

namespace bicord::core {
namespace {

using namespace bicord::time_literals;

constexpr Duration kGrace = 60_ms;
constexpr Duration kMargin = 500_us;

struct Rig {
  sim::Simulator sim{1};
  GrantorElection election{sim, kGrace, kMargin};
  /// Per-member takeover timestamps, in hook-call order.
  std::vector<std::vector<TimePoint>> hook_calls;
  std::vector<bool> alive;

  GrantorElection::MemberId add(phy::NodeId node, double metric_dbm) {
    const std::size_t idx = hook_calls.size();
    hook_calls.emplace_back();
    alive.push_back(true);
    return election.add_member(
        node, metric_dbm, [this, idx](TimePoint t) { hook_calls[idx].push_back(t); },
        [this, idx] { return alive[idx]; });
  }
};

TEST(GrantorElectionTest, PrimaryIsBestMetricWithNodeIdTieBreak) {
  Rig rig;
  const auto a = rig.add(/*node=*/7, /*metric=*/-40.0);
  const auto b = rig.add(/*node=*/3, /*metric=*/-35.0);
  const auto c = rig.add(/*node=*/1, /*metric=*/-35.0);
  EXPECT_EQ(rig.election.member_count(), 3u);
  // -35 dBm beats -40; the tie between b and c goes to the lower node id.
  EXPECT_EQ(rig.election.primary(), c);
  EXPECT_TRUE(rig.election.is_primary(c));
  EXPECT_FALSE(rig.election.is_primary(a));
  EXPECT_FALSE(rig.election.is_primary(b));
  EXPECT_EQ(rig.election.member_node(c), 1u);
  EXPECT_EQ(rig.election.member_metric_dbm(b), -35.0);
}

TEST(GrantorElectionTest, UncoveredRequestPromotesNextAfterGrace) {
  Rig rig;
  const auto best = rig.add(1, -30.0);
  const auto second = rig.add(2, -40.0);
  ASSERT_EQ(rig.election.primary(), best);

  const TimePoint request = rig.sim.now() + Duration::from_ms(5);
  rig.sim.run_until(request);
  rig.election.on_request_observed(second, request);
  rig.sim.run_until(request + kGrace + 1_ms);

  EXPECT_EQ(rig.election.primary(), second);
  EXPECT_EQ(rig.election.takeovers(), 1u);
  ASSERT_EQ(rig.hook_calls[second].size(), 1u);
  EXPECT_EQ(rig.hook_calls[second][0], request + kGrace);
  ASSERT_EQ(rig.election.handoffs().size(), 1u);
  const auto& h = rig.election.handoffs()[0];
  EXPECT_EQ(h.request, request);
  EXPECT_EQ(h.takeover, request + kGrace);
  EXPECT_EQ(h.from, best);
  EXPECT_EQ(h.to, second);
  EXPECT_FALSE(h.first_grant.has_value());
}

TEST(GrantorElectionTest, GrantBeforeGraceCancelsTakeover) {
  Rig rig;
  const auto best = rig.add(1, -30.0);
  const auto second = rig.add(2, -40.0);

  rig.election.on_request_observed(second, rig.sim.now());
  rig.sim.run_until(rig.sim.now() + 10_ms);
  rig.election.on_grant_issued(best, rig.sim.now(), 20_ms);
  rig.sim.run_until(rig.sim.now() + kGrace + kGrace);

  EXPECT_EQ(rig.election.takeovers(), 0u);
  EXPECT_EQ(rig.election.primary(), best);
  EXPECT_TRUE(rig.hook_calls[second].empty());
}

TEST(GrantorElectionTest, ShadowedCtsCancelsTakeoverAndExtendsCoverage) {
  Rig rig;
  const auto best = rig.add(1, -30.0);
  const auto second = rig.add(2, -40.0);

  rig.election.on_request_observed(second, rig.sim.now());
  rig.sim.run_until(rig.sim.now() + 10_ms);
  const TimePoint heard = rig.sim.now();
  rig.election.on_grant_shadowed(second, heard, 25_ms);
  rig.sim.run_until(heard + kGrace + kGrace);

  EXPECT_EQ(rig.election.takeovers(), 0u);
  EXPECT_EQ(rig.election.primary(), best);
  EXPECT_EQ(rig.election.shadowed_cts(), 1u);
  EXPECT_EQ(rig.election.covered_until(), heard + 25_ms);
}

TEST(GrantorElectionTest, CoveredRequestDoesNotArmGraceClock) {
  Rig rig;
  rig.add(1, -30.0);
  const auto second = rig.add(2, -40.0);

  rig.election.on_grant_shadowed(second, rig.sim.now(), 50_ms);
  rig.election.on_request_observed(second, rig.sim.now() + 10_ms);
  rig.sim.run_until(rig.sim.now() + kGrace + kGrace);

  EXPECT_EQ(rig.election.takeovers(), 0u);
  EXPECT_EQ(rig.election.requests_observed(), 1u);
}

TEST(GrantorElectionTest, SuccessionSkipsDeadMembers) {
  Rig rig;
  const auto best = rig.add(1, -30.0);
  const auto second = rig.add(2, -40.0);
  const auto third = rig.add(3, -50.0);
  rig.alive[best] = false;    // primary crashed
  rig.alive[second] = false;  // ...and so did the next in line

  rig.election.on_request_observed(third, rig.sim.now());
  rig.sim.run_until(rig.sim.now() + kGrace + 1_ms);

  EXPECT_EQ(rig.election.primary(), third);
  EXPECT_EQ(rig.election.takeovers(), 1u);
  EXPECT_TRUE(rig.hook_calls[second].empty());
  EXPECT_EQ(rig.hook_calls[third].size(), 1u);
}

TEST(GrantorElectionTest, NoAliveSuccessorAbortsTakeover) {
  Rig rig;
  const auto best = rig.add(1, -30.0);
  const auto second = rig.add(2, -40.0);
  rig.alive[best] = false;
  rig.alive[second] = false;

  rig.election.on_request_observed(second, rig.sim.now());
  rig.sim.run_until(rig.sim.now() + kGrace + kGrace);

  EXPECT_EQ(rig.election.takeovers(), 0u);
  EXPECT_EQ(rig.election.primary(), best);
  EXPECT_TRUE(rig.election.handoffs().empty());
}

TEST(GrantorElectionTest, HandoffGapIsExactlyGraceOnCleanFailover) {
  Rig rig;
  rig.add(1, -30.0);
  const auto second = rig.add(2, -40.0);

  const TimePoint request = rig.sim.now();
  rig.election.on_request_observed(second, request);
  rig.sim.run_until(request + kGrace + 1_ms);
  ASSERT_EQ(rig.election.takeovers(), 1u);
  // A clean failover replays the request at the takeover instant.
  rig.election.on_grant_issued(second, request + kGrace, 20_ms);

  ASSERT_TRUE(rig.election.handoffs()[0].first_grant.has_value());
  const auto gap = rig.election.max_handoff_gap();
  ASSERT_TRUE(gap.has_value());
  EXPECT_EQ(*gap, kGrace);
  EXPECT_LE(*gap, rig.election.handoff_bound());
  EXPECT_EQ(rig.election.handoff_bound(), kGrace + kMargin);
}

TEST(GrantorElectionTest, GrantLogCapsAndKeepsAllTimeIndices) {
  sim::Simulator sim{1};
  GrantorElection election{sim, kGrace, kMargin, /*grant_log_capacity=*/4};
  const auto m = election.add_member(1, -30.0, nullptr);

  for (int i = 0; i < 10; ++i) {
    election.on_grant_issued(m, TimePoint::origin() + Duration::from_ms(i), 1_ms);
  }
  EXPECT_EQ(election.grant_log_base(), 6u);
  EXPECT_EQ(election.grant_log_end(), 10u);
  // Record 7 (all-time) is the grant issued at t = 7 ms.
  EXPECT_EQ(election.grant_record(7).start, TimePoint::origin() + 7_ms);
  EXPECT_EQ(election.grant_record(7).protected_until,
            TimePoint::origin() + 7_ms + 1_ms);
}

TEST(GrantorElectionTest, ConsumesNoRngDraws) {
  // The PR 5 determinism contract: elections are pure bookkeeping. Any RNG
  // draw here would shift every downstream stream in scenarios that build one.
  sim::Simulator sim{99};
  const auto before = sim.rng().split(0x5EED).uniform(0.0, 1.0);
  {
    GrantorElection election{sim, kGrace, kMargin};
    const auto a = election.add_member(1, -30.0, nullptr);
    const auto b = election.add_member(2, -40.0, nullptr);
    election.on_request_observed(b, sim.now());
    sim.run_until(sim.now() + kGrace + 1_ms);
    election.on_grant_issued(b, sim.now(), 10_ms);
    (void)a;
  }
  const auto after = sim.rng().split(0x5EED).uniform(0.0, 1.0);
  EXPECT_EQ(before, after);
}

}  // namespace
}  // namespace bicord::core
