// Unit-level tests of the ECC baseline agents over a minimal wired stack.

#include "core/ecc.hpp"

#include <gtest/gtest.h>

#include "phy/tracer.hpp"
#include "wifi/bicord_port.hpp"
#include "wifi/traffic.hpp"
#include "zigbee/bicord_port.hpp"
#include "zigbee/zigbee_mac.hpp"

namespace bicord::core {
namespace {

using namespace bicord::time_literals;

struct EccFixture : ::testing::Test {
  EccFixture() : sim(111), medium(sim, phy::PathLossModel{40.0, 3.0, 0.0, 0.1}) {
    e = medium.add_node("wifi-E", {0.0, 0.0});
    f = medium.add_node("wifi-F", {3.0, 0.0});
    zt = medium.add_node("zb-tx", {3.4, 1.2});
    zr = medium.add_node("zb-rx", {4.4, 1.6});
    wifi::WifiMac::Config wc;
    wc.channel = 11;
    sender = std::make_unique<wifi::WifiMac>(medium, e, wc);
    receiver = std::make_unique<wifi::WifiMac>(medium, f, wc);
    zigbee::ZigbeeMac::Config zc;
    zc.channel = 24;
    zb_sender = std::make_unique<zigbee::ZigbeeMac>(medium, zt, zc);
    zb_receiver = std::make_unique<zigbee::ZigbeeMac>(medium, zr, zc);
  }

  sim::Simulator sim;
  phy::Medium medium;
  phy::NodeId e{}, f{}, zt{}, zr{};
  std::unique_ptr<wifi::WifiMac> sender;
  std::unique_ptr<wifi::WifiMac> receiver;
  std::unique_ptr<zigbee::ZigbeeMac> zb_sender;
  std::unique_ptr<zigbee::ZigbeeMac> zb_receiver;
};

TEST_F(EccFixture, NotificationsAreStrictlyPeriodic) {
  EccWifiAgent::Config cfg;
  cfg.period = 100_ms;
  cfg.whitespace = 20_ms;
  EccWifiAgent agent(wifi::grantor_port(*sender), cfg);
  agent.start();
  sim.run_for(1_sec);
  EXPECT_EQ(agent.notifications_sent(), 10u);
  agent.stop();
  sim.run_for(500_ms);
  EXPECT_EQ(agent.notifications_sent(), 10u);
}

TEST_F(EccFixture, EmulatedNotifyAppearsOnZigbeeChannel) {
  EccWifiAgent::Config cfg;
  cfg.period = 100_ms;
  cfg.whitespace = 25_ms;
  EccWifiAgent agent(wifi::grantor_port(*sender), cfg);
  phy::MediumTracer tracer(medium);
  agent.start();
  sim.run_for(250_ms);

  int notify_count = 0;
  for (const auto& r : tracer.records()) {
    if (r.kind == phy::FrameKind::Notify) {
      ++notify_count;
      EXPECT_EQ(r.tech, phy::Technology::ZigBee);  // WEBee-style emulation
      EXPECT_NEAR(r.band_center_mhz, 2470.0, 0.1);
      EXPECT_EQ(r.src, e);
    }
  }
  EXPECT_EQ(notify_count, 2);
}

TEST_F(EccFixture, SenderPausesForTheWhitespace) {
  EccWifiAgent::Config cfg;
  cfg.period = 100_ms;
  cfg.whitespace = 30_ms;
  EccWifiAgent agent(wifi::grantor_port(*sender), cfg);
  wifi::SaturatedSource traffic(*sender, f, 2000);
  traffic.start();
  phy::MediumTracer tracer(medium);
  agent.start();
  sim.run_for(500_ms);

  // After each Notify there must be a gap with no Wi-Fi data from E.
  std::vector<std::pair<TimePoint, TimePoint>> gaps;
  for (const auto& r : tracer.records()) {
    if (r.kind == phy::FrameKind::Notify) {
      gaps.emplace_back(r.end, r.end + 25_ms);
    }
  }
  ASSERT_GE(gaps.size(), 3u);
  for (const auto& [lo, hi] : gaps) {
    for (const auto& r : tracer.records()) {
      if (r.tech == phy::Technology::WiFi && r.kind == phy::FrameKind::Data &&
          r.start >= lo && r.start < hi) {
        FAIL() << "Wi-Fi data at " << r.start.to_string() << " inside white space";
      }
    }
  }
}

TEST_F(EccFixture, ZigbeeAgentTransmitsOnlyInWindows) {
  EccWifiAgent::Config cfg;
  cfg.period = 100_ms;
  cfg.whitespace = 30_ms;
  EccWifiAgent wifi_agent(wifi::grantor_port(*sender), cfg);
  wifi::SaturatedSource traffic(*sender, f, 2000);
  traffic.start();

  EccZigbeeAgent::Config zcfg;
  zcfg.ctc_fidelity = 1.0;  // deterministic for the test
  EccZigbeeAgent zb_agent(zigbee::requester_port(*zb_sender), zr, zcfg);
  wifi_agent.start();

  sim.run_for(120_ms);  // past the first notification
  EXPECT_GE(zb_agent.notifications_heard(), 1u);

  zb_agent.submit_burst(3, 50);
  sim.run_for(500_ms);
  EXPECT_EQ(zb_agent.stats().delivered, 3u);
  // Delivery must have happened inside an advertised window.
  EXPECT_GT(zb_agent.window_until().us(), 0);
}

TEST_F(EccFixture, ZigbeeWaitsWhenWindowTooSmall) {
  EccWifiAgent::Config cfg;
  cfg.period = 100_ms;
  cfg.whitespace = 5_ms;  // too small for even one 50 B exchange + slack
  EccWifiAgent wifi_agent(wifi::grantor_port(*sender), cfg);
  EccZigbeeAgent::Config zcfg;
  zcfg.ctc_fidelity = 1.0;
  zcfg.packet_budget_slack = 3_ms;
  EccZigbeeAgent zb_agent(zigbee::requester_port(*zb_sender), zr, zcfg);
  wifi_agent.start();
  sim.run_for(150_ms);
  zb_agent.submit_burst(2, 50);
  sim.run_for(300_ms);
  // Window never fits the budget: nothing transmits (starvation by design).
  EXPECT_EQ(zb_agent.stats().delivered, 0u);
  EXPECT_EQ(zb_agent.backlog(), 2u);
}

TEST_F(EccFixture, FidelityZeroMeansDeaf) {
  EccWifiAgent::Config cfg;
  EccWifiAgent wifi_agent(wifi::grantor_port(*sender), cfg);
  EccZigbeeAgent::Config zcfg;
  zcfg.ctc_fidelity = 0.0;
  EccZigbeeAgent zb_agent(zigbee::requester_port(*zb_sender), zr, zcfg);
  wifi_agent.start();
  sim.run_for(500_ms);
  EXPECT_EQ(zb_agent.notifications_heard(), 0u);
}

TEST_F(EccFixture, CsmaAgentPumpsImmediately) {
  CsmaZigbeeAgent agent(zigbee::requester_port(*zb_sender), zr, 0.0);
  agent.submit_burst(4, 50);
  sim.run_for(100_ms);
  EXPECT_EQ(agent.stats().delivered, 4u);
  EXPECT_LT(agent.stats().delay_ms.max(), 40.0);
}

}  // namespace
}  // namespace bicord::core
