// Focused tests of the Wi-Fi-side BiCord agent: detection-to-grant wiring,
// policy gating, grant bookkeeping, and end-of-burst feedback — driven by
// injecting CSI samples directly into the agent's detector.

#include "core/bicord_wifi.hpp"

#include <gtest/gtest.h>

#include "phy/tracer.hpp"
#include "wifi/bicord_port.hpp"
#include "wifi/traffic.hpp"
#include "wifi/wifi_mac.hpp"

namespace bicord::core {
namespace {

using namespace bicord::time_literals;

struct BiCordWifiFixture : ::testing::Test {
  BiCordWifiFixture() : sim(121), medium(sim, phy::PathLossModel{40.0, 3.0, 0.0, 0.1}) {
    e = medium.add_node("wifi-E", {0.0, 0.0});
    f = medium.add_node("wifi-F", {3.0, 0.0});
    wifi::WifiMac::Config wc;
    wc.channel = 11;
    sender = std::make_unique<wifi::WifiMac>(medium, e, wc);
    receiver = std::make_unique<wifi::WifiMac>(medium, f, wc);
    traffic = std::make_unique<wifi::SaturatedSource>(*sender, f, 2000);
    traffic->start();
  }

  BiCordWifiAgent::Config agent_config() {
    BiCordWifiAgent::Config cfg;
    cfg.allocator.initial_whitespace = 30_ms;
    cfg.allocator.control_duration = 5_ms;
    cfg.allocator.end_of_burst_gap = 20_ms;
    return cfg;
  }

  /// Injects a run of high-amplitude CSI samples (a "ZigBee request").
  static void inject_request(BiCordWifiAgent& agent, TimePoint t) {
    for (int i = 0; i < 3; ++i) {
      csi::CsiSample s;
      s.time = t + Duration::from_us(i * 700);
      s.amplitude = 1.0;
      agent.detector().add_sample(s);
    }
  }

  sim::Simulator sim;
  phy::Medium medium;
  phy::NodeId e{}, f{};
  std::unique_ptr<wifi::WifiMac> sender;
  std::unique_ptr<wifi::WifiMac> receiver;
  std::unique_ptr<wifi::SaturatedSource> traffic;
};

TEST_F(BiCordWifiFixture, DetectionGrantsCtsAndPausesWifi) {
  BiCordWifiAgent agent(wifi::grantor_port(*receiver), agent_config());
  phy::MediumTracer tracer(medium);
  sim.run_for(20_ms);
  inject_request(agent, sim.now());
  sim.run_for(50_ms);

  EXPECT_EQ(agent.requests_detected(), 1u);
  EXPECT_EQ(agent.whitespaces_granted(), 1u);
  ASSERT_EQ(agent.grant_history().size(), 1u);
  EXPECT_EQ(agent.grant_history()[0], 30_ms);  // learning phase grant

  // A CTS from F must be on the trace, followed by a Wi-Fi-silent gap.
  TimePoint cts_end;
  bool cts_seen = false;
  for (const auto& r : tracer.records()) {
    if (r.kind == phy::FrameKind::Cts && r.src == f) {
      cts_seen = true;
      cts_end = r.end;
    }
  }
  ASSERT_TRUE(cts_seen);
  for (const auto& r : tracer.records()) {
    if (r.tech == phy::Technology::WiFi && r.kind == phy::FrameKind::Data &&
        r.start > cts_end && r.start < cts_end + 25_ms) {
      FAIL() << "Wi-Fi data inside the granted white space";
    }
  }
}

TEST_F(BiCordWifiFixture, PolicyDeniesGrants) {
  BiCordWifiAgent agent(wifi::grantor_port(*receiver), agent_config());
  agent.set_policy([] { return false; });
  sim.run_for(20_ms);
  inject_request(agent, sim.now());
  sim.run_for(30_ms);
  EXPECT_EQ(agent.requests_detected(), 1u);
  EXPECT_EQ(agent.whitespaces_granted(), 0u);
  EXPECT_EQ(agent.requests_ignored(), 1u);
  EXPECT_FALSE(receiver->paused());
}

TEST_F(BiCordWifiFixture, DuplicateRequestsDuringGrantAreAbsorbed) {
  BiCordWifiAgent agent(wifi::grantor_port(*receiver), agent_config());
  sim.run_for(20_ms);
  inject_request(agent, sim.now());
  sim.run_for(10_ms);  // inside the white space / pending grant
  inject_request(agent, sim.now());
  sim.run_for(5_ms);
  EXPECT_EQ(agent.requests_detected(), 2u);
  EXPECT_EQ(agent.whitespaces_granted(), 1u);  // one reservation serves both
}

TEST_F(BiCordWifiFixture, BurstEndFeedsAllocator) {
  BiCordWifiAgent agent(wifi::grantor_port(*receiver), agent_config());
  sim.run_for(20_ms);
  inject_request(agent, sim.now());
  // One grant (30 ms) elapses with no further requests: after the 20 ms
  // end-of-burst gap the allocator enters the adjusted phase.
  sim.run_for(80_ms);
  EXPECT_EQ(agent.allocator().phase(), AllocatorPhase::Adjusted);
  EXPECT_EQ(agent.allocator().estimate(), 30_ms - 2 * 5_ms);
}

TEST_F(BiCordWifiFixture, SecondBurstGetsAdjustedGrant) {
  BiCordWifiAgent agent(wifi::grantor_port(*receiver), agent_config());
  sim.run_for(20_ms);
  inject_request(agent, sim.now());
  sim.run_for(100_ms);  // burst 1 over, adjusted
  inject_request(agent, sim.now());
  sim.run_for(50_ms);
  ASSERT_EQ(agent.grant_history().size(), 2u);
  EXPECT_EQ(agent.grant_history()[1], 20_ms);  // the adjusted estimate
}

TEST_F(BiCordWifiFixture, GrantObserverSeesEveryGrant) {
  BiCordWifiAgent agent(wifi::grantor_port(*receiver), agent_config());
  int observed = 0;
  Duration last;
  agent.set_grant_observer([&](TimePoint, Duration g) {
    ++observed;
    last = g;
  });
  sim.run_for(20_ms);
  inject_request(agent, sim.now());
  sim.run_for(100_ms);
  EXPECT_EQ(observed, 1);
  EXPECT_EQ(last, 30_ms);
}

}  // namespace
}  // namespace bicord::core
