// GrantHistory: a capped ring buffer whose running statistics cover every
// grant ever pushed, not just the retained window.

#include "core/grant_history.hpp"

#include <gtest/gtest.h>

#include "core/technology_traits.hpp"

namespace bicord::core {
namespace {

using namespace bicord::time_literals;

TEST(GrantHistoryTest, StartsEmpty) {
  GrantHistory h;
  EXPECT_TRUE(h.empty());
  EXPECT_EQ(h.size(), 0u);
  EXPECT_EQ(h.total(), 0u);
  EXPECT_EQ(h.sum(), Duration::zero());
  EXPECT_EQ(h.mean_ms(), 0.0);
}

TEST(GrantHistoryTest, RetainsInOrderBelowCapacity) {
  GrantHistory h(4);
  h.push(10_ms);
  h.push(20_ms);
  h.push(30_ms);
  ASSERT_EQ(h.size(), 3u);
  EXPECT_EQ(h[0], 10_ms);
  EXPECT_EQ(h[1], 20_ms);
  EXPECT_EQ(h[2], 30_ms);
  EXPECT_EQ(h.back(), 30_ms);
  EXPECT_EQ(h.total(), 3u);
  EXPECT_EQ(h.sum(), 60_ms);
}

TEST(GrantHistoryTest, EvictsOldestAtCapacityButKeepsAllTimeStats) {
  GrantHistory h(2);
  h.push(10_ms);
  h.push(20_ms);
  h.push(40_ms);  // evicts the 10 ms entry
  ASSERT_EQ(h.size(), 2u);
  EXPECT_EQ(h[0], 20_ms);
  EXPECT_EQ(h[1], 40_ms);

  // All-time stats still cover the evicted grant.
  EXPECT_EQ(h.total(), 3u);
  EXPECT_EQ(h.sum(), 70_ms);
  EXPECT_EQ(h.min(), 10_ms);
  EXPECT_EQ(h.max(), 40_ms);
  EXPECT_NEAR(h.mean_ms(), 70.0 / 3.0, 1e-9);
}

TEST(GrantHistoryTest, BoundedMemoryUnderLongRuns) {
  GrantHistory h(8);
  for (int i = 1; i <= 10000; ++i) {
    h.push(Duration::from_ms(i % 50 + 1));
  }
  EXPECT_EQ(h.size(), 8u);
  EXPECT_EQ(h.capacity(), 8u);
  EXPECT_EQ(h.total(), 10000u);
  EXPECT_EQ(h.min(), 1_ms);
  EXPECT_EQ(h.max(), 50_ms);
}

TEST(GrantHistoryTest, ZeroCapacityIsCoercedToOne) {
  GrantHistory h(0);
  h.push(5_ms);
  h.push(7_ms);
  EXPECT_EQ(h.size(), 1u);
  EXPECT_EQ(h.back(), 7_ms);
  EXPECT_EQ(h.total(), 2u);
}

TEST(GrantHistoryTest, ClearResetsEverything) {
  GrantHistory h(4);
  h.push(10_ms);
  h.push(20_ms);
  h.clear();
  EXPECT_TRUE(h.empty());
  EXPECT_EQ(h.total(), 0u);
  EXPECT_EQ(h.sum(), Duration::zero());
  h.push(30_ms);
  EXPECT_EQ(h.min(), 30_ms);
  EXPECT_EQ(h.max(), 30_ms);
}

TEST(GrantHistoryTest, RangeForIterationWorks) {
  GrantHistory h(4);
  h.push(1_ms);
  h.push(2_ms);
  Duration sum = Duration::zero();
  for (Duration d : h) sum = sum + d;
  EXPECT_EQ(sum, 3_ms);
}

TEST(GrantHistoryTest, StartStampedEntriesKeepStartAndLength) {
  GrantHistory h(4);
  const TimePoint t0 = TimePoint::origin() + 100_ms;
  h.push(t0, 20_ms);
  h.push(t0 + 50_ms, 30_ms);
  EXPECT_EQ(h.start(0), t0);
  EXPECT_EQ(h[0], 20_ms);
  EXPECT_EQ(h.start(1), t0 + 50_ms);
  EXPECT_EQ(h.back(), 30_ms);
}

// The lease boundary is half-open on both technologies: a grant whose
// protection (length + margin) ends exactly at instant T no longer covers T.
// This pins the same strict-`<` tie the engine's lease check uses, so the
// watchdog and the invariant replay agree about the expiry instant.
TEST(GrantHistoryTest, LeaseBoundaryInstantIsExpiredUnderWifiMargin) {
  const Duration margin = kWifiTraits.grant_margin;
  GrantHistory h(4);
  const TimePoint t0 = TimePoint::origin() + 1_sec;
  h.push(t0, 20_ms);
  const TimePoint boundary = t0 + 20_ms + margin;
  EXPECT_TRUE(h.covers(0, boundary - 1_us, margin));
  EXPECT_FALSE(h.covers(0, boundary, margin));
  EXPECT_FALSE(h.expired(0, boundary - 1_us, margin));
  EXPECT_TRUE(h.expired(0, boundary, margin));
}

TEST(GrantHistoryTest, LeaseBoundaryInstantIsExpiredUnderBleMargin) {
  const Duration margin = kBleTraits.grant_margin;
  ASSERT_NE(margin, kWifiTraits.grant_margin);  // distinct technology margins
  GrantHistory h(4);
  const TimePoint t0 = TimePoint::origin() + 1_sec;
  h.push(t0, 15_ms);
  const TimePoint boundary = t0 + 15_ms + margin;
  EXPECT_TRUE(h.covers(0, boundary - 1_us, margin));
  EXPECT_FALSE(h.covers(0, boundary, margin));
  EXPECT_FALSE(h.expired(0, boundary - 1_us, margin));
  EXPECT_TRUE(h.expired(0, boundary, margin));
}

TEST(GrantHistoryTest, CoversIsFalseBeforeTheGrantStarts) {
  GrantHistory h(4);
  const TimePoint t0 = TimePoint::origin() + 1_sec;
  h.push(t0, 20_ms);
  EXPECT_FALSE(h.covers(0, t0 - 1_us, kWifiTraits.grant_margin));
  EXPECT_TRUE(h.covers(0, t0, kWifiTraits.grant_margin));
}

}  // namespace
}  // namespace bicord::core
