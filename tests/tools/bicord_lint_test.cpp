// Fixture-driven tests for tools/bicord_lint.cpp: every rule must fire on a
// minimal snippet, the allow-annotation must waive it, and the baseline
// ratchet must reject growth. The PR-3 periodic-callback capture pattern —
// the bug that motivated the lifetime rules — is reproduced verbatim as a
// fixture so the linter provably catches the real thing.
//
// The linter binary path is injected by CMake via BICORD_LINT_BIN.

#include <gtest/gtest.h>

#include <sys/wait.h>

#include <cstdio>
#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <string>

namespace {

namespace fs = std::filesystem;

class BicordLintTest : public ::testing::Test {
 protected:
  void SetUp() override {
    const auto* info = ::testing::UnitTest::GetInstance()->current_test_info();
    root_ = fs::path(::testing::TempDir()) /
            (std::string("bicord_lint_") + info->name());
    fs::remove_all(root_);
    // Rules scope by path segment: determinism/lifetime fire under src/ only,
    // float-equality under src/detect/ and src/csi/.
    fs::create_directories(root_ / "src" / "detect");
  }

  void TearDown() override { fs::remove_all(root_); }

  fs::path write(const std::string& rel, const std::string& content) {
    const fs::path p = root_ / rel;
    fs::create_directories(p.parent_path());
    std::ofstream out(p);
    out << content;
    return p;
  }

  struct Result {
    int exit_code = -1;
    std::string output;
  };

  /// Runs the linter over `args` (paths/flags), capturing stdout+stderr.
  Result run(const std::string& args) {
    const fs::path out_file = root_ / "lint_out.txt";
    const std::string cmd = std::string(BICORD_LINT_BIN) + " " + args + " > " +
                            out_file.string() + " 2>&1";
    const int raw = std::system(cmd.c_str());
    Result r;
    r.exit_code = WIFEXITED(raw) ? WEXITSTATUS(raw) : -1;
    std::ifstream in(out_file);
    std::stringstream ss;
    ss << in.rdbuf();
    r.output = ss.str();
    return r;
  }

  Result run_on(const fs::path& target, const std::string& extra = "") {
    return run(extra.empty() ? target.string() : extra + " " + target.string());
  }

  fs::path root_;
};

TEST_F(BicordLintTest, CleanFilePasses) {
  const auto p = write("src/clean.cpp",
                       "#include \"util/rng.hpp\"\n"
                       "int draw(bicord::Rng& rng) { return 4; }\n");
  const Result r = run_on(p);
  EXPECT_EQ(r.exit_code, 0) << r.output;
  EXPECT_NE(r.output.find("clean"), std::string::npos) << r.output;
}

TEST_F(BicordLintTest, BannedRandFires) {
  const auto p = write("src/a.cpp",
                       "#include <cstdlib>\n"
                       "int roll() { return std::rand() % 6; }\n");
  const Result r = run_on(p);
  EXPECT_EQ(r.exit_code, 2) << r.output;
  EXPECT_NE(r.output.find("[banned-rand]"), std::string::npos) << r.output;
}

TEST_F(BicordLintTest, RandomDeviceFires) {
  const auto p = write("src/b.cpp",
                       "#include <random>\n"
                       "unsigned seed() { return std::random_device{}(); }\n");
  const Result r = run_on(p);
  EXPECT_EQ(r.exit_code, 2) << r.output;
  EXPECT_NE(r.output.find("[banned-rand]"), std::string::npos) << r.output;
}

TEST_F(BicordLintTest, WallClockFires) {
  const auto p = write("src/c.cpp",
                       "#include <chrono>\n"
                       "auto t() { return std::chrono::steady_clock::now(); }\n");
  const Result r = run_on(p);
  EXPECT_EQ(r.exit_code, 2) << r.output;
  EXPECT_NE(r.output.find("[wall-clock]"), std::string::npos) << r.output;
}

TEST_F(BicordLintTest, CTimeFires) {
  const auto p = write("src/d.cpp",
                       "#include <ctime>\n"
                       "long now() { return time(nullptr); }\n");
  const Result r = run_on(p);
  EXPECT_EQ(r.exit_code, 2) << r.output;
  EXPECT_NE(r.output.find("[wall-clock]"), std::string::npos) << r.output;
}

TEST_F(BicordLintTest, AirtimeDoesNotTripWallClock) {
  // `airtime(...)`, `next_time()` and friends share the `time(` suffix; the
  // word boundary must keep them clean.
  const auto p = write("src/e.cpp",
                       "struct M { double airtime(int t); double next_time(); };\n"
                       "double f(M& m) { return m.airtime(3) + m.next_time(); }\n");
  const Result r = run_on(p);
  EXPECT_EQ(r.exit_code, 0) << r.output;
}

TEST_F(BicordLintTest, UnorderedIterationFires) {
  const auto p = write("src/f.cpp",
                       "#include <unordered_map>\n"
                       "int sum(const std::unordered_map<int, int>& m) {\n"
                       "  std::unordered_map<int, int> copy = m;\n"
                       "  int s = 0;\n"
                       "  for (const auto& kv : copy) s += kv.second;\n"
                       "  return s;\n"
                       "}\n");
  const Result r = run_on(p);
  EXPECT_EQ(r.exit_code, 2) << r.output;
  EXPECT_NE(r.output.find("[unordered-iteration]"), std::string::npos) << r.output;
}

TEST_F(BicordLintTest, DelayedCatchAllCaptureFires) {
  const auto p = write("src/g.cpp",
                       "void arm(Sim& sim, int& n) {\n"
                       "  sim.after(Duration::from_ms(5), [&] { ++n; });\n"
                       "}\n");
  const Result r = run_on(p);
  EXPECT_EQ(r.exit_code, 2) << r.output;
  EXPECT_NE(r.output.find("[delayed-ref-capture]"), std::string::npos) << r.output;
}

TEST_F(BicordLintTest, ZeroDelayCatchAllIsAllowed) {
  // A zero-delay post runs before control returns to the caller's caller;
  // the capture cannot dangle, so the rule stays quiet.
  const auto p = write("src/h.cpp",
                       "void drain(Sim& sim, int& n) {\n"
                       "  sim.after(Duration::zero(), [&] { ++n; });\n"
                       "}\n");
  const Result r = run_on(p);
  EXPECT_EQ(r.exit_code, 0) << r.output;
}

TEST_F(BicordLintTest, RawThisToDirectQueueScheduleFires) {
  const auto p = write("src/i.cpp",
                       "void Foo::arm() {\n"
                       "  queue_.schedule(when_, [this] { tick(); });\n"
                       "}\n");
  const Result r = run_on(p);
  EXPECT_EQ(r.exit_code, 2) << r.output;
  EXPECT_NE(r.output.find("[delayed-ref-capture]"), std::string::npos) << r.output;
}

TEST_F(BicordLintTest, ThisToSimulatorAfterIsSanctionedIdiom) {
  // Simulator::after + [this] with cancel-in-destructor discipline is the
  // codebase-wide idiom; only the direct EventQueue calls flag raw this.
  const auto p = write("src/j.cpp",
                       "void Foo::arm() {\n"
                       "  timer_ = sim_.after(gap_, [this] { tick(); });\n"
                       "}\n");
  const Result r = run_on(p);
  EXPECT_EQ(r.exit_code, 0) << r.output;
}

TEST_F(BicordLintTest, Pr3PeriodicSlabCapturePatternFires) {
  // The PR-3 use-after-free, reduced: run_periodic() invokes the callback
  // while it still lives in slab storage; if the tick schedules enough events
  // to grow `slots_`, the std::vector reallocates and the executing callback's
  // captures are freed under it. The fixed EventQueue moves the callback to a
  // local first — this fixture keeps the buggy shape pinned.
  const auto p = write("src/k.cpp",
                       "void EventQueue::run_periodic(std::uint32_t idx) {\n"
                       "  slots_[idx].callback();  // executes out of the slab\n"
                       "  rearm(idx);\n"
                       "}\n");
  const Result r = run_on(p);
  EXPECT_EQ(r.exit_code, 2) << r.output;
  EXPECT_NE(r.output.find("[slab-callback-invoke]"), std::string::npos) << r.output;
}

TEST_F(BicordLintTest, MovedToLocalSlabInvokeIsClean) {
  const auto p = write("src/l.cpp",
                       "void EventQueue::run_periodic(std::uint32_t idx) {\n"
                       "  EventCallback cb = std::move(slots_[idx].callback);\n"
                       "  cb();\n"
                       "}\n");
  const Result r = run_on(p);
  EXPECT_EQ(r.exit_code, 0) << r.output;
}

TEST_F(BicordLintTest, MissingPragmaOnceFires) {
  const auto p = write("src/m.hpp", "struct M { int x = 0; };\n");
  const Result r = run_on(p);
  EXPECT_EQ(r.exit_code, 2) << r.output;
  EXPECT_NE(r.output.find("[pragma-once]"), std::string::npos) << r.output;
}

TEST_F(BicordLintTest, UsingNamespaceInHeaderFires) {
  const auto p = write("src/n.hpp",
                       "#pragma once\n"
                       "using namespace std;\n");
  const Result r = run_on(p);
  EXPECT_EQ(r.exit_code, 2) << r.output;
  EXPECT_NE(r.output.find("[using-namespace-header]"), std::string::npos)
      << r.output;
}

TEST_F(BicordLintTest, FloatEqualityInDetectorFires) {
  const auto p = write("src/detect/o.cpp",
                       "bool match(double score) { return score == 0.5; }\n");
  const Result r = run_on(p);
  EXPECT_EQ(r.exit_code, 2) << r.output;
  EXPECT_NE(r.output.find("[float-equality]"), std::string::npos) << r.output;
}

TEST_F(BicordLintTest, FloatEqualityOutsideDetectorScopeIsQuiet) {
  const auto p = write("src/p.cpp",
                       "bool match(double score) { return score == 0.5; }\n");
  const Result r = run_on(p);
  EXPECT_EQ(r.exit_code, 0) << r.output;
}

TEST_F(BicordLintTest, AllowAnnotationSameLineHonored) {
  const auto p = write(
      "src/q.cpp",
      "#include <chrono>\n"
      "auto t() { return std::chrono::steady_clock::now(); }  "
      "// bicord-lint: allow(wall-clock)\n");
  const Result r = run_on(p);
  EXPECT_EQ(r.exit_code, 0) << r.output;
}

TEST_F(BicordLintTest, AllowAnnotationPrecedingLineHonored) {
  const auto p = write("src/r.cpp",
                       "#include <chrono>\n"
                       "// bicord-lint: allow(wall-clock)\n"
                       "auto t() { return std::chrono::steady_clock::now(); }\n");
  const Result r = run_on(p);
  EXPECT_EQ(r.exit_code, 0) << r.output;
}

TEST_F(BicordLintTest, AllowAnnotationForOtherRuleDoesNotWaive) {
  const auto p = write(
      "src/s.cpp",
      "#include <chrono>\n"
      "auto t() { return std::chrono::steady_clock::now(); }  "
      "// bicord-lint: allow(banned-rand)\n");
  const Result r = run_on(p);
  EXPECT_EQ(r.exit_code, 2) << r.output;
}

TEST_F(BicordLintTest, CommentedBannedCallIsIgnored) {
  const auto p = write("src/t.cpp",
                       "// std::rand() must never appear in live code\n"
                       "/* neither may time(nullptr) */\n"
                       "const char* doc = \"std::rand()\";\n"
                       "int live = 1;\n");
  // String literals are blanked too, so the quoted std::rand() stays quiet.
  const Result r = run_on(p);
  EXPECT_EQ(r.exit_code, 0) << r.output;
}

TEST_F(BicordLintTest, DigitSeparatorsAreNotCharLiterals) {
  // An odd number of C++14 digit separators (500'000 has one quote) used to
  // open a bogus char literal and blank the rest of the line from the scan,
  // hiding the banned call after it.
  const auto p = write("src/ds.cpp",
                       "int f() { int n = 500'000; return std::rand() % n; }\n");
  const Result r = run_on(p);
  EXPECT_EQ(r.exit_code, 2) << r.output;
  EXPECT_NE(r.output.find("[banned-rand]"), std::string::npos) << r.output;
}

TEST_F(BicordLintTest, RealCharLiteralStillBlanked) {
  // 'r' carries no identifier char before it: still a char literal, and the
  // banned-looking text inside a string literal stays invisible.
  const auto p = write("src/cl.cpp",
                       "char tag() { return 'r'; }\n"
                       "const char* doc = \"std::rand()\";\n");
  const Result r = run_on(p);
  EXPECT_EQ(r.exit_code, 0) << r.output;
}

TEST_F(BicordLintTest, BaselineSuppressesKnownFindingOnly) {
  const auto p = write("src/u.cpp", "int roll() { return std::rand() % 6; }\n");
  const fs::path baseline = root_ / "baseline.txt";
  // Baseline the rand finding...
  Result r = run("--baseline " + baseline.string() + " --write-baseline " +
                 p.string());
  EXPECT_EQ(r.exit_code, 0) << r.output;
  r = run("--baseline " + baseline.string() + " " + p.string());
  EXPECT_EQ(r.exit_code, 0) << r.output;
  // ...then a NEW finding in another file must still fail.
  const auto p2 =
      write("src/v.cpp", "long now() { return time(nullptr); }\n");
  r = run("--baseline " + baseline.string() + " " + p.string() + " " +
          p2.string());
  EXPECT_EQ(r.exit_code, 2) << r.output;
  EXPECT_NE(r.output.find("[wall-clock]"), std::string::npos) << r.output;
}

TEST_F(BicordLintTest, BaselineRatchetRejectsGrowth) {
  const auto p = write("src/w.cpp", "int roll() { return std::rand() % 6; }\n");
  const fs::path baseline = root_ / "baseline.txt";
  Result r = run("--baseline " + baseline.string() + " --write-baseline " +
                 p.string());
  ASSERT_EQ(r.exit_code, 0) << r.output;
  // Introduce a second violation and try to re-baseline: the ratchet must
  // refuse (exit 3) and leave the committed baseline untouched.
  write("src/w.cpp",
        "int roll() { return std::rand() % 6; }\n"
        "long now() { return time(nullptr); }\n");
  r = run("--baseline " + baseline.string() + " --write-baseline " + p.string());
  EXPECT_EQ(r.exit_code, 3) << r.output;
  EXPECT_NE(r.output.find("ratchet"), std::string::npos) << r.output;
  // Check mode still reports exactly the new finding.
  r = run("--baseline " + baseline.string() + " " + p.string());
  EXPECT_EQ(r.exit_code, 2) << r.output;
  EXPECT_NE(r.output.find("[wall-clock]"), std::string::npos) << r.output;
  EXPECT_EQ(r.output.find("[banned-rand]"), std::string::npos) << r.output;
}

TEST_F(BicordLintTest, BaselineShrinkIsReportedAndRewritable) {
  const auto p = write("src/x.cpp", "int roll() { return std::rand() % 6; }\n");
  const fs::path baseline = root_ / "baseline.txt";
  Result r = run("--baseline " + baseline.string() + " --write-baseline " +
                 p.string());
  ASSERT_EQ(r.exit_code, 0) << r.output;
  // Fix the violation: check mode passes and nudges toward the ratchet.
  write("src/x.cpp", "int roll() { return 4; }\n");
  r = run("--baseline " + baseline.string() + " " + p.string());
  EXPECT_EQ(r.exit_code, 0) << r.output;
  EXPECT_NE(r.output.find("ratchet down"), std::string::npos) << r.output;
  // Shrinking rewrite is allowed.
  r = run("--baseline " + baseline.string() + " --write-baseline " + p.string());
  EXPECT_EQ(r.exit_code, 0) << r.output;
  r = run("--baseline " + baseline.string() + " " + p.string());
  EXPECT_EQ(r.exit_code, 0) << r.output;
  EXPECT_EQ(r.output.find("ratchet down"), std::string::npos) << r.output;
}

TEST_F(BicordLintTest, DirectoryScanFindsNestedViolations) {
  write("src/deep/nested/y.cpp", "unsigned s() { return std::random_device{}(); }\n");
  write("src/deep/z.hpp", "#pragma once\nstruct Z {};\n");
  const Result r = run((root_ / "src").string());
  EXPECT_EQ(r.exit_code, 2) << r.output;
  EXPECT_NE(r.output.find("[banned-rand]"), std::string::npos) << r.output;
}

TEST_F(BicordLintTest, ScenarioConfigLiteralInBenchFires) {
  const auto p = write("bench/bench_new.cpp",
                       "int main() {\n"
                       "  coex::ScenarioConfig cfg;\n"
                       "  cfg.seed = 1;\n"
                       "  return 0;\n"
                       "}\n");
  const Result r = run_on(p);
  EXPECT_EQ(r.exit_code, 2) << r.output;
  EXPECT_NE(r.output.find("[scenario-config-literal]"), std::string::npos)
      << r.output;
}

TEST_F(BicordLintTest, BleScenarioConfigLiteralInToolsFires) {
  const auto p = write("tools/t.cpp",
                       "int main() { coex::BleScenarioConfig cfg; return 0; }\n");
  const Result r = run_on(p);
  EXPECT_EQ(r.exit_code, 2) << r.output;
  EXPECT_NE(r.output.find("[scenario-config-literal]"), std::string::npos)
      << r.output;
}

TEST_F(BicordLintTest, ScenarioConfigAtHomeLayerAndTestsIsQuiet) {
  // src/coex/ owns the structs; tests may build configs directly to probe
  // edge cases the spec layer deliberately cannot express.
  write("src/coex/scenario_user.cpp",
        "coex::ScenarioConfig lowered() { return coex::ScenarioConfig{}; }\n");
  write("tests/coex/scenario_test.cpp",
        "void probe() { coex::ScenarioConfig cfg; (void)cfg; }\n");
  Result r = run((root_ / "src" / "coex").string());
  EXPECT_EQ(r.exit_code, 0) << r.output;
  r = run((root_ / "tests").string());
  EXPECT_EQ(r.exit_code, 0) << r.output;
}

TEST_F(BicordLintTest, ScenarioConfigLiteralIsWaivable) {
  const auto p = write("bench/bench_waived.cpp",
                       "int main() {\n"
                       "  // bicord-lint: allow(scenario-config-literal)\n"
                       "  coex::ScenarioConfig cfg;\n"
                       "  return 0;\n"
                       "}\n");
  const Result r = run_on(p);
  EXPECT_EQ(r.exit_code, 0) << r.output;
}

TEST_F(BicordLintTest, ScenarioSpecUsageDoesNotTrip) {
  const auto p = write("bench/bench_spec.cpp",
                       "int main() {\n"
                       "  auto spec = *coex::ScenarioSpec::preset(\"fig7\");\n"
                       "  spec.set(\"seed\", 7);\n"
                       "  coex::Scenario scenario(spec.must_config());\n"
                       "  return 0;\n"
                       "}\n");
  const Result r = run_on(p);
  EXPECT_EQ(r.exit_code, 0) << r.output;
}

TEST_F(BicordLintTest, GrantIssueOutsideEngineFires) {
  const auto p = write("src/mac/rogue.cpp",
                       "void Rogue::on_request() {\n"
                       "  engine_.begin_grant(sim_.now());\n"
                       "  engine_.arm_watchdog(sim_.now() + grace_);\n"
                       "}\n");
  const Result r = run_on(p);
  EXPECT_EQ(r.exit_code, 2) << r.output;
  EXPECT_NE(r.output.find("[grant-issue-outside-engine]"), std::string::npos)
      << r.output;
  EXPECT_NE(r.output.find("begin_grant"), std::string::npos) << r.output;
}

TEST_F(BicordLintTest, PrivateGrantHistoryOutsideEngineFires) {
  const auto p = write("src/mac/ledger.hpp",
                       "#pragma once\n"
                       "#include \"core/grant_history.hpp\"\n"
                       "struct Ledger { core::GrantHistory grants{16}; };\n");
  const Result r = run_on(p);
  EXPECT_EQ(r.exit_code, 2) << r.output;
  EXPECT_NE(r.output.find("[grant-issue-outside-engine]"), std::string::npos)
      << r.output;
}

TEST_F(BicordLintTest, GrantIssueInsideEngineAndTestsIsQuiet) {
  // src/core/ owns grant issuance; tests drive the primitives directly to
  // probe lease edges.
  write("src/core/agent.cpp",
        "void Agent::grant() { engine_.begin_grant(sim_.now()); }\n");
  write("tests/core/grant_test.cpp",
        "void probe(Engine& e) { e.begin_lease(t0, Duration::from_ms(4)); }\n");
  Result r = run((root_ / "src" / "core").string());
  EXPECT_EQ(r.exit_code, 0) << r.output;
  r = run((root_ / "tests").string());
  EXPECT_EQ(r.exit_code, 0) << r.output;
}

TEST_F(BicordLintTest, GrantIssueIsWaivable) {
  const auto p = write("src/ble/agent.cpp",
                       "void Agent::lease() {\n"
                       "  // bicord-lint: allow(grant-issue-outside-engine)\n"
                       "  engine_.begin_lease(sim_.now(), grant_);\n"
                       "}\n");
  const Result r = run_on(p);
  EXPECT_EQ(r.exit_code, 0) << r.output;
}

TEST_F(BicordLintTest, GrantHistoryIncludeAndReadAccessAreQuiet) {
  // Including the header or reading the engine's history through the const
  // accessor is observation, not issuance.
  const auto p = write("src/mac/reader.cpp",
                       "#include \"core/grant_history.hpp\"\n"
                       "std::size_t n(const Engine& e) { return "
                       "e.grant_history().size(); }\n");
  const Result r = run_on(p);
  EXPECT_EQ(r.exit_code, 0) << r.output;
}

TEST_F(BicordLintTest, ThreadOutsidePoolFires) {
  const auto p = write("src/mac/worker.cpp",
                       "#include <thread>\n"
                       "void spin() { std::thread t([] {}); t.join(); }\n");
  const Result r = run_on(p);
  EXPECT_EQ(r.exit_code, 2) << r.output;
  EXPECT_NE(r.output.find("[thread-outside-pool]"), std::string::npos)
      << r.output;
}

TEST_F(BicordLintTest, AsyncAndJthreadOutsidePoolFire) {
  const auto p = write("src/coex/fan.cpp",
                       "#include <future>\n"
                       "#include <thread>\n"
                       "void go() {\n"
                       "  auto f = std::async([] { return 1; });\n"
                       "  std::jthread t([] {});\n"
                       "}\n");
  const Result r = run_on(p);
  EXPECT_EQ(r.exit_code, 2) << r.output;
  EXPECT_NE(r.output.find("[thread-outside-pool]"), std::string::npos)
      << r.output;
  EXPECT_NE(r.output.find("2 new finding"), std::string::npos) << r.output;
}

TEST_F(BicordLintTest, ThreadInsidePoolHomesIsQuiet) {
  // The two sanctioned homes: the trial pool and the intra-sim worker pool.
  write("src/runner/trial_pool.cpp",
        "#include <thread>\n"
        "void pool() { std::thread t([] {}); t.join(); }\n");
  write("src/sim/parallel_dispatch.cpp",
        "#include <thread>\n"
        "void pool() { std::thread t([] {}); t.join(); }\n");
  const Result r = run((root_ / "src").string());
  EXPECT_EQ(r.exit_code, 0) << r.output;
}

TEST_F(BicordLintTest, ThreadOutsidePoolIsWaivable) {
  const auto p = write("src/sim/parallel_dispatch.hpp",
                       "#pragma once\n"
                       "#include <thread>\n"
                       "#include <vector>\n"
                       "struct Pool {\n"
                       "  // bicord-lint: allow(thread-outside-pool)\n"
                       "  std::vector<std::thread> workers_;\n"
                       "};\n");
  const Result r = run_on(p);
  EXPECT_EQ(r.exit_code, 0) << r.output;
}

TEST_F(BicordLintTest, ThreadOutsideSrcIsQuiet) {
  // tools/ and tests/ spawn helper threads freely (e.g. test harnesses).
  write("tools/loadgen.cpp",
        "#include <thread>\n"
        "void go() { std::thread t([] {}); t.join(); }\n");
  const Result r = run((root_ / "tools").string());
  EXPECT_EQ(r.exit_code, 0) << r.output;
}

TEST_F(BicordLintTest, RulesDoNotApplyOutsideSrc) {
  // Determinism rules scope to src/: tools/ and tests/ may read wall clocks.
  write("tools/cli.cpp",
        "#include <chrono>\n"
        "auto t() { return std::chrono::steady_clock::now(); }\n");
  const Result r = run((root_ / "tools").string());
  EXPECT_EQ(r.exit_code, 0) << r.output;
}

// --- stripper regressions: raw strings and line continuations ---------------

TEST_F(BicordLintTest, RawStringBodyIsOpaque) {
  // Quotes, comment markers and unbalanced parens inside R"(...)" used to
  // desynchronize the comment/string state machine; the whole literal is one
  // opaque token now.
  const auto p = write("src/rs1.cpp",
                       "const char* doc = R\"(std::rand() // \" ( /* )\";\n"
                       "int live = 1;\n");
  const Result r = run_on(p);
  EXPECT_EQ(r.exit_code, 0) << r.output;
}

TEST_F(BicordLintTest, CodeAfterRawStringStillScanned) {
  // The desync bug's worst case: a raw string containing a quote blanked the
  // *rest of the line*, hiding the banned call after it.
  const auto p = write("src/rs2.cpp",
                       "long t() { const char* s = R\"(quote \" // marker)\"; "
                       "return time(nullptr); }\n");
  const Result r = run_on(p);
  EXPECT_EQ(r.exit_code, 2) << r.output;
  EXPECT_NE(r.output.find("[wall-clock]"), std::string::npos) << r.output;
}

TEST_F(BicordLintTest, MultiLineRawStringBlanked) {
  const auto p = write("src/rs3.cpp",
                       "const char* s = R\"(\n"
                       "std::rand()\n"
                       "time(nullptr)\n"
                       ")\";\n"
                       "int live = 1;\n");
  const Result r = run_on(p);
  EXPECT_EQ(r.exit_code, 0) << r.output;
}

TEST_F(BicordLintTest, CustomDelimiterRawStringHandled) {
  // With a custom delimiter, a bare )" inside the body does NOT terminate
  // the literal; only )x" does. The banned call after it must still fire.
  const auto p = write("src/rs4.cpp",
                       "int f() { const char* s = R\"x(body with )\" inside)x\"; "
                       "return std::rand(); }\n");
  const Result r = run_on(p);
  EXPECT_EQ(r.exit_code, 2) << r.output;
  EXPECT_NE(r.output.find("[banned-rand]"), std::string::npos) << r.output;
  EXPECT_NE(r.output.find("1 new finding"), std::string::npos) << r.output;
}

TEST_F(BicordLintTest, IdentifierEndingInRIsNotARawString) {
  // `str"..."`-style: the R must not be glued to a preceding identifier.
  const auto p = write("src/rs5.cpp",
                       "#define STR(x) #x\n"
                       "const char* s = STR\"not raw\";\n"
                       "int live = 1;\n");
  const Result r = run_on(p);
  EXPECT_EQ(r.exit_code, 0) << r.output;
}

TEST_F(BicordLintTest, LineContinuationCommentConsumesNextLine) {
  // A // comment ending in \ swallows the next physical line; scanning that
  // line as code manufactured phantom findings.
  const auto p = write("src/lc1.cpp",
                       "// note: do not call \\\n"
                       "time(nullptr) here\n"
                       "int live = 1;\n");
  const Result r = run_on(p);
  EXPECT_EQ(r.exit_code, 0) << r.output;
}

TEST_F(BicordLintTest, LineContinuationChainsAndThenEnds) {
  // Continuations chain while each line ends in \; the first line without
  // one ends the comment, and real code after that is scanned again.
  const auto p = write("src/lc2.cpp",
                       "// chain \\\n"
                       "still comment \\\n"
                       "last comment line\n"
                       "long t() { return time(nullptr); }\n");
  const Result r = run_on(p);
  EXPECT_EQ(r.exit_code, 2) << r.output;
  EXPECT_NE(r.output.find("[wall-clock]"), std::string::npos) << r.output;
  EXPECT_NE(r.output.find("1 new finding"), std::string::npos) << r.output;
}

// --- parallel-phase rules: rng-in-parallel ----------------------------------

TEST_F(BicordLintTest, RngDrawInParallelForFires) {
  const auto p = write("src/pr1.cpp",
                       "void jitter(Pool& pool, util::Rng& rng) {\n"
                       "  pool.parallel_for(4, [&](std::size_t i) {\n"
                       "    const double v = rng.uniform(0.0, 1.0);\n"
                       "    sink(i, v);\n"
                       "  });\n"
                       "}\n");
  const Result r = run_on(p);
  EXPECT_EQ(r.exit_code, 2) << r.output;
  EXPECT_NE(r.output.find("[rng-in-parallel]"), std::string::npos) << r.output;
  EXPECT_NE(r.output.find("parallel_for"), std::string::npos) << r.output;
}

TEST_F(BicordLintTest, RngDrawOutsideRegionIsQuiet) {
  const auto p = write("src/pr2.cpp",
                       "void jitter(Pool& pool, util::Rng& rng) {\n"
                       "  const double v = rng.uniform(0.0, 1.0);\n"
                       "  pool.parallel_for(4, [&](std::size_t i) { sink(i, v); });\n"
                       "}\n");
  const Result r = run_on(p);
  EXPECT_EQ(r.exit_code, 0) << r.output;
}

TEST_F(BicordLintTest, RngDrawInAbsorbOverrideFires) {
  const auto p = write("src/pr3.cpp",
                       "void Radio::on_tx_start_absorb(const Tx& tx) {\n"
                       "  const double fading = rng_.normal(0.0, sigma_);\n"
                       "  track(tx, fading);\n"
                       "}\n");
  const Result r = run_on(p);
  EXPECT_EQ(r.exit_code, 2) << r.output;
  EXPECT_NE(r.output.find("[rng-in-parallel]"), std::string::npos) << r.output;
  EXPECT_NE(r.output.find("absorb-phase override"), std::string::npos)
      << r.output;
}

TEST_F(BicordLintTest, RngAccessorChainInRegionFires) {
  const auto p = write("src/pr4.cpp",
                       "void go(Pool& pool, Sim& sim) {\n"
                       "  pool.parallel_for(4, [&](std::size_t i) {\n"
                       "    sink(i, sim.rng().bernoulli(0.5));\n"
                       "  });\n"
                       "}\n");
  const Result r = run_on(p);
  EXPECT_EQ(r.exit_code, 2) << r.output;
  EXPECT_NE(r.output.find("[rng-in-parallel]"), std::string::npos) << r.output;
}

TEST_F(BicordLintTest, RngInParallelIsWaivable) {
  // The sanctioned shape: a listener-local split stream, waived in place
  // (src/phy/radio.cpp carries exactly this annotation).
  const auto p = write("src/pr5.cpp",
                       "void Radio::on_tx_start_absorb(const Tx& tx) {\n"
                       "  // bicord-lint: allow(rng-in-parallel) — own split stream\n"
                       "  const double fading = rng_.normal(0.0, sigma_);\n"
                       "  track(tx, fading);\n"
                       "}\n");
  const Result r = run_on(p);
  EXPECT_EQ(r.exit_code, 0) << r.output;
}

// --- parallel-phase rules: parallel-shared-mutation -------------------------

TEST_F(BicordLintTest, CatchAllPushBackInParallelForFires) {
  const auto p = write("src/pm1.cpp",
                       "void gather(Pool& pool, std::vector<int>& out) {\n"
                       "  pool.parallel_for(4, [&](std::size_t i) {\n"
                       "    out.push_back(static_cast<int>(i));\n"
                       "  });\n"
                       "}\n");
  const Result r = run_on(p);
  EXPECT_EQ(r.exit_code, 2) << r.output;
  EXPECT_NE(r.output.find("[parallel-shared-mutation]"), std::string::npos)
      << r.output;
  EXPECT_NE(r.output.find("`out`"), std::string::npos) << r.output;
}

TEST_F(BicordLintTest, ShardedIndexedWriteIsQuiet) {
  // Writing through the region's own index parameter is the sanctioned
  // pattern (each worker owns its slot).
  const auto p = write("src/pm2.cpp",
                       "void gather(Pool& pool, std::vector<int>& out) {\n"
                       "  pool.parallel_for(4, [&](std::size_t i) {\n"
                       "    out[i] = static_cast<int>(i);\n"
                       "  });\n"
                       "}\n");
  const Result r = run_on(p);
  EXPECT_EQ(r.exit_code, 0) << r.output;
}

TEST_F(BicordLintTest, RegionLocalMutationIsQuiet) {
  const auto p = write("src/pm3.cpp",
                       "void sum(Pool& pool, std::vector<int>& out) {\n"
                       "  pool.parallel_for(4, [&](std::size_t i) {\n"
                       "    int local = 0;\n"
                       "    local += static_cast<int>(i);\n"
                       "    out[i] = local;\n"
                       "  });\n"
                       "}\n");
  const Result r = run_on(p);
  EXPECT_EQ(r.exit_code, 0) << r.output;
}

TEST_F(BicordLintTest, ExplicitRefCaptureAccumulationFires) {
  const auto p = write("src/pm4.cpp",
                       "void sum(Pool& pool, double& total) {\n"
                       "  pool.parallel_for(4, [&total](std::size_t i) {\n"
                       "    total += static_cast<double>(i);\n"
                       "  });\n"
                       "}\n");
  const Result r = run_on(p);
  EXPECT_EQ(r.exit_code, 2) << r.output;
  EXPECT_NE(r.output.find("[parallel-shared-mutation]"), std::string::npos)
      << r.output;
  EXPECT_NE(r.output.find("`total`"), std::string::npos) << r.output;
}

TEST_F(BicordLintTest, DispatcherLaneCallbackMutationFires) {
  const auto p = write("src/pm5.cpp",
                       "void plan(ParallelDispatcher& dispatcher,\n"
                       "          std::vector<int>& hits) {\n"
                       "  dispatcher.after(shard, delay, [&hits] {\n"
                       "    hits.push_back(1);\n"
                       "  });\n"
                       "}\n");
  const Result r = run_on(p);
  EXPECT_EQ(r.exit_code, 2) << r.output;
  EXPECT_NE(r.output.find("[parallel-shared-mutation]"), std::string::npos)
      << r.output;
  EXPECT_NE(r.output.find("lane callback"), std::string::npos) << r.output;
}

TEST_F(BicordLintTest, BarrierClassCallbackIsSerialAndQuiet) {
  // at_barrier callbacks run serially on the dispatch thread — mutation
  // there is the *point* (merging shard results).
  const auto p = write("src/pm6.cpp",
                       "void merge(ParallelDispatcher& dispatcher,\n"
                       "           std::vector<int>& hits) {\n"
                       "  dispatcher.at_barrier(when, [&hits] {\n"
                       "    hits.push_back(1);\n"
                       "  });\n"
                       "}\n");
  const Result r = run_on(p);
  EXPECT_EQ(r.exit_code, 0) << r.output;
}

TEST_F(BicordLintTest, MutationOutsideRegionIsQuiet) {
  const auto p = write("src/pm7.cpp",
                       "void gather(Pool& pool, std::vector<int>& out) {\n"
                       "  out.push_back(0);\n"
                       "  pool.parallel_for(4, [&](std::size_t i) { sink(i); });\n"
                       "  out.push_back(1);\n"
                       "}\n");
  const Result r = run_on(p);
  EXPECT_EQ(r.exit_code, 0) << r.output;
}

TEST_F(BicordLintTest, ParallelRulesSkipThePoolHomes) {
  // The pool/dispatcher implementations orchestrate the workers; their own
  // internal mutation is the machinery itself, mirroring thread-outside-pool.
  write("src/sim/parallel_dispatch.cpp",
        "void Pool::run(std::vector<int>& out) {\n"
        "  parallel_for(4, [&](std::size_t i) { out.push_back(1); });\n"
        "}\n");
  const Result r = run((root_ / "src" / "sim").string());
  EXPECT_EQ(r.exit_code, 0) << r.output;
}

// --- unordered-accumulation -------------------------------------------------

TEST_F(BicordLintTest, UnorderedFloatAccumulationFires) {
  const auto p = write("src/ua1.cpp",
                       "#include <unordered_map>\n"
                       "double total(const std::unordered_map<int, double>& m) {\n"
                       "  std::unordered_map<int, double> copy = m;\n"
                       "  double sum = 0.0;\n"
                       "  for (const auto& kv : copy) sum += kv.second;\n"
                       "  return sum;\n"
                       "}\n");
  const Result r = run_on(p);
  EXPECT_EQ(r.exit_code, 2) << r.output;
  EXPECT_NE(r.output.find("[unordered-iteration]"), std::string::npos)
      << r.output;
  EXPECT_NE(r.output.find("[unordered-accumulation]"), std::string::npos)
      << r.output;
}

TEST_F(BicordLintTest, OrderedMapAccumulationIsQuiet) {
  const auto p = write("src/ua2.cpp",
                       "#include <map>\n"
                       "double total(const std::map<int, double>& m) {\n"
                       "  double sum = 0.0;\n"
                       "  for (const auto& kv : m) sum += kv.second;\n"
                       "  return sum;\n"
                       "}\n");
  const Result r = run_on(p);
  EXPECT_EQ(r.exit_code, 0) << r.output;
}

TEST_F(BicordLintTest, IntegerAccumulationOnlyTripsIteration) {
  // Integer addition commutes: the unordered loop still flags iteration
  // order, but not the accumulation refinement.
  const auto p = write("src/ua3.cpp",
                       "#include <unordered_map>\n"
                       "int total(const std::unordered_map<int, int>& m) {\n"
                       "  std::unordered_map<int, int> copy = m;\n"
                       "  int sum = 0;\n"
                       "  for (const auto& kv : copy) sum += kv.second;\n"
                       "  return sum;\n"
                       "}\n");
  const Result r = run_on(p);
  EXPECT_EQ(r.exit_code, 2) << r.output;
  EXPECT_NE(r.output.find("[unordered-iteration]"), std::string::npos)
      << r.output;
  EXPECT_EQ(r.output.find("[unordered-accumulation]"), std::string::npos)
      << r.output;
}

// --- layering ---------------------------------------------------------------

class BicordLintLayeringTest : public BicordLintTest {
 protected:
  fs::path layering(const std::string& content) {
    return write("layering.txt", content);
  }

  Result run_layered(const fs::path& dag) {
    return run("--layering " + dag.string() + " --src-root " +
               (root_ / "src").string() + " " + (root_ / "src").string());
  }
};

TEST_F(BicordLintLayeringTest, DirectViolationFires) {
  const auto dag = layering("a: util\nb: util\nutil:\n");
  write("src/a/x.hpp", "#pragma once\n#include \"b/y.hpp\"\n");
  write("src/b/y.hpp", "#pragma once\n");
  const Result r = run_layered(dag);
  EXPECT_EQ(r.exit_code, 2) << r.output;
  EXPECT_NE(r.output.find("[layering]"), std::string::npos) << r.output;
  EXPECT_NE(r.output.find("may not depend on `b`"), std::string::npos)
      << r.output;
}

TEST_F(BicordLintLayeringTest, AllowedIncludeIsQuiet) {
  const auto dag = layering("a: util\nutil:\n");
  write("src/a/x.hpp", "#pragma once\n#include \"util/u.hpp\"\n");
  write("src/util/u.hpp", "#pragma once\n");
  const Result r = run_layered(dag);
  EXPECT_EQ(r.exit_code, 0) << r.output;
}

TEST_F(BicordLintLayeringTest, WaivedIncludeIsQuiet) {
  // The grandfathered-include shape: allow(layering) at the include site.
  const auto dag = layering("a: util\nb: util\nutil:\n");
  write("src/a/x.hpp",
        "#pragma once\n"
        "#include \"b/y.hpp\"  // bicord-lint: allow(layering) — legacy\n");
  write("src/b/y.hpp", "#pragma once\n");
  const Result r = run_layered(dag);
  EXPECT_EQ(r.exit_code, 0) << r.output;
}

TEST_F(BicordLintLayeringTest, TransitiveChainIsReportedWithFullPath) {
  // Non-transitively-closed DAG: a->b allowed, b->c allowed, a->c NOT.
  // Every hop is individually legal, so only the chain walk catches the
  // escape — and the message must show the whole path.
  const auto dag = layering("a: b\nb: c\nc:\n");
  write("src/a/x.hpp", "#pragma once\n#include \"b/y.hpp\"\n");
  write("src/b/y.hpp", "#pragma once\n#include \"c/z.hpp\"\n");
  write("src/c/z.hpp", "#pragma once\n");
  const Result r = run_layered(dag);
  EXPECT_EQ(r.exit_code, 2) << r.output;
  EXPECT_NE(r.output.find("[layering]"), std::string::npos) << r.output;
  EXPECT_NE(r.output.find("b/y.hpp -> "), std::string::npos) << r.output;
  EXPECT_NE(r.output.find("c/z.hpp"), std::string::npos) << r.output;
  EXPECT_NE(r.output.find("may not depend on `c`"), std::string::npos)
      << r.output;
}

TEST_F(BicordLintLayeringTest, MissingLayeringFileIsUsageError) {
  write("src/a/x.hpp", "#pragma once\n");
  const Result r = run("--layering " + (root_ / "no_such.txt").string() + " " +
                       (root_ / "src").string());
  EXPECT_EQ(r.exit_code, 1) << r.output;
}

TEST_F(BicordLintLayeringTest, UnlistedModuleWarnsAndIsUnconstrained) {
  const auto dag = layering("b: util\nutil:\n");
  write("src/a/x.hpp", "#pragma once\n#include \"b/y.hpp\"\n");
  write("src/b/y.hpp", "#pragma once\n");
  const Result r = run_layered(dag);
  EXPECT_EQ(r.exit_code, 0) << r.output;
  EXPECT_NE(r.output.find("no entry in the layering file"), std::string::npos)
      << r.output;
}

// --- waiver edge cases ------------------------------------------------------

TEST_F(BicordLintTest, AllowInsideParallelRegionHonored) {
  const auto p = write("src/we1.cpp",
                       "void jitter(Pool& pool, util::Rng& rng) {\n"
                       "  pool.parallel_for(4, [&](std::size_t i) {\n"
                       "    sink(i, rng.uniform(0.0, 1.0));  "
                       "// bicord-lint: allow(rng-in-parallel)\n"
                       "  });\n"
                       "}\n");
  const Result r = run_on(p);
  EXPECT_EQ(r.exit_code, 0) << r.output;
}

TEST_F(BicordLintTest, StackedMultiRuleWaiverHonored) {
  // One annotation naming several rules waives each of them on the next line.
  const auto p = write(
      "src/we2.cpp",
      "void mix(Pool& pool, util::Rng& rng, std::vector<double>& out) {\n"
      "  pool.parallel_for(4, [&](std::size_t i) {\n"
      "    // bicord-lint: allow(rng-in-parallel, parallel-shared-mutation)\n"
      "    out.push_back(rng.uniform(0.0, 1.0));\n"
      "  });\n"
      "}\n");
  const Result r = run_on(p);
  EXPECT_EQ(r.exit_code, 0) << r.output;
}

TEST_F(BicordLintTest, UnknownRuleInAllowWarnsOnCleanFile) {
  const auto p = write("src/we3.cpp",
                       "// bicord-lint: allow(no-such-rule)\n"
                       "int live = 1;\n");
  const Result r = run_on(p);
  EXPECT_EQ(r.exit_code, 0) << r.output;
  EXPECT_NE(r.output.find("unknown rule 'no-such-rule'"), std::string::npos)
      << r.output;
}

TEST_F(BicordLintTest, UnknownRuleInAllowDoesNotWaive) {
  // A typo'd rule name must not silently pass the finding it meant to waive.
  const auto p = write("src/we4.cpp",
                       "// bicord-lint: allow(wallclock)\n"
                       "long t() { return time(nullptr); }\n");
  const Result r = run_on(p);
  EXPECT_EQ(r.exit_code, 2) << r.output;
  EXPECT_NE(r.output.find("[wall-clock]"), std::string::npos) << r.output;
  EXPECT_NE(r.output.find("unknown rule 'wallclock'"), std::string::npos)
      << r.output;
}

// --- JSON output and rule-scoped baselines ----------------------------------

TEST_F(BicordLintTest, JsonModeEmitsFindings) {
  const auto p = write("src/js1.cpp", "int roll() { return std::rand() % 6; }\n");
  const Result r = run("--json " + p.string());
  EXPECT_EQ(r.exit_code, 2) << r.output;
  EXPECT_NE(r.output.find("\"version\": 2"), std::string::npos) << r.output;
  EXPECT_NE(r.output.find("\"rule\": \"banned-rand\""), std::string::npos)
      << r.output;
  EXPECT_NE(r.output.find("\"baselined\": false"), std::string::npos)
      << r.output;
}

TEST_F(BicordLintTest, JsonModeCleanFileExitsZero) {
  const auto p = write("src/js2.cpp", "int live = 1;\n");
  const Result r = run("--json " + p.string());
  EXPECT_EQ(r.exit_code, 0) << r.output;
  EXPECT_NE(r.output.find("\"new\": 0"), std::string::npos) << r.output;
}

TEST_F(BicordLintTest, FingerprintsAreRuleTagged) {
  const auto p = write("src/ft1.cpp", "int roll() { return std::rand() % 6; }\n");
  const fs::path baseline = root_ / "baseline.txt";
  Result r = run("--baseline " + baseline.string() + " --write-baseline " +
                 p.string());
  ASSERT_EQ(r.exit_code, 0) << r.output;
  std::ifstream in(baseline);
  std::stringstream ss;
  ss << in.rdbuf();
  EXPECT_NE(ss.str().find("banned-rand:"), std::string::npos) << ss.str();
}

TEST_F(BicordLintTest, RuleScopedRefreshOnlyTouchesThatRulesSlice) {
  const auto p = write("src/rr1.cpp",
                       "int roll() { return std::rand() % 6; }\n"
                       "long now() { return time(nullptr); }\n");
  const fs::path baseline = root_ / "baseline.txt";
  Result r = run("--baseline " + baseline.string() + " --write-baseline " +
                 p.string());
  ASSERT_EQ(r.exit_code, 0) << r.output;
  // Fix the rand; the wall-clock stays. A banned-rand-scoped refresh shrinks
  // only that slice, and the wall-clock entry keeps suppressing.
  write("src/rr1.cpp",
        "int roll() { return 4; }\n"
        "long now() { return time(nullptr); }\n");
  r = run("--baseline " + baseline.string() +
          " --write-baseline --rule banned-rand " + p.string());
  EXPECT_EQ(r.exit_code, 0) << r.output;
  r = run("--baseline " + baseline.string() + " " + p.string());
  EXPECT_EQ(r.exit_code, 0) << r.output;
  std::ifstream in(baseline);
  std::stringstream ss;
  ss << in.rdbuf();
  EXPECT_EQ(ss.str().find("banned-rand:"), std::string::npos) << ss.str();
  EXPECT_NE(ss.str().find("wall-clock:"), std::string::npos) << ss.str();
}

TEST_F(BicordLintTest, RuleScopedRefreshCannotAbsorbOtherRulesRegressions) {
  const auto p = write("src/rr2.cpp", "int roll() { return std::rand() % 6; }\n");
  const fs::path baseline = root_ / "baseline.txt";
  Result r = run("--baseline " + baseline.string() + " --write-baseline " +
                 p.string());
  ASSERT_EQ(r.exit_code, 0) << r.output;
  // Introduce a NEW wall-clock regression, then refresh the banned-rand
  // slice: the refresh succeeds (its slice didn't grow) but must NOT absorb
  // the wall-clock finding — check mode still fails on it.
  write("src/rr2.cpp",
        "int roll() { return std::rand() % 6; }\n"
        "long now() { return time(nullptr); }\n");
  r = run("--baseline " + baseline.string() +
          " --write-baseline --rule banned-rand " + p.string());
  EXPECT_EQ(r.exit_code, 0) << r.output;
  r = run("--baseline " + baseline.string() + " " + p.string());
  EXPECT_EQ(r.exit_code, 2) << r.output;
  EXPECT_NE(r.output.find("[wall-clock]"), std::string::npos) << r.output;
}

TEST_F(BicordLintTest, RuleScopedRefreshRefusesScopedGrowth) {
  const auto p = write("src/rr3.cpp", "int roll() { return std::rand() % 6; }\n");
  const fs::path baseline = root_ / "baseline.txt";
  Result r = run("--baseline " + baseline.string() + " --write-baseline " +
                 p.string());
  ASSERT_EQ(r.exit_code, 0) << r.output;
  write("src/rr3.cpp",
        "int roll() { return std::rand() % 6; }\n"
        "int toss() { return std::rand() & 1; }\n");
  r = run("--baseline " + baseline.string() +
          " --write-baseline --rule banned-rand " + p.string());
  EXPECT_EQ(r.exit_code, 3) << r.output;
  EXPECT_NE(r.output.find("ratchet"), std::string::npos) << r.output;
}

TEST_F(BicordLintTest, RuleFlagWithoutWriteBaselineIsUsageError) {
  const auto p = write("src/rr4.cpp", "int live = 1;\n");
  Result r = run("--rule banned-rand " + p.string());
  EXPECT_EQ(r.exit_code, 1) << r.output;
  r = run("--baseline " + (root_ / "b.txt").string() +
          " --write-baseline --rule no-such-rule " + p.string());
  EXPECT_EQ(r.exit_code, 1) << r.output;
  EXPECT_NE(r.output.find("unknown rule"), std::string::npos) << r.output;
}

}  // namespace
