// Exit-code contract of the bicordsim CLI: a run whose invariant checker
// records violations must exit 1 so scripted sweeps (scripts/check.sh,
// EXPERIMENTS.md recipes) fail loudly, and a clean multigrantor run must
// exit 0 while still printing the election report block.
//
// The binary path is injected by CMake via BICORD_SIM_BIN.

#include <gtest/gtest.h>

#include <sys/wait.h>

#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <string>

namespace {

namespace fs = std::filesystem;

struct Result {
  int exit_code = -1;
  std::string output;
};

Result run_sim(const std::string& args) {
  const fs::path out_file =
      fs::path(::testing::TempDir()) / "bicordsim_cli_out.txt";
  const std::string cmd = std::string(BICORD_SIM_BIN) + " " + args + " > " +
                          out_file.string() + " 2>&1";
  const int raw = std::system(cmd.c_str());
  Result r;
  r.exit_code = WIFEXITED(raw) ? WEXITSTATUS(raw) : -1;
  std::ifstream in(out_file);
  std::stringstream ss;
  ss << in.rdbuf();
  r.output = ss.str();
  return r;
}

TEST(BicordsimCliTest, CleanMultigrantorRunExitsZeroWithElectionReport) {
  const Result r = run_sim("--scenario multigrantor --seconds 1");
  EXPECT_EQ(r.exit_code, 0) << r.output;
  // The election block must make it into the report table.
  EXPECT_NE(r.output.find("grantors"), std::string::npos) << r.output;
  EXPECT_NE(r.output.find("max handoff gap"), std::string::npos) << r.output;
  EXPECT_NE(r.output.find("invariant checks / violations"), std::string::npos)
      << r.output;
}

TEST(BicordsimCliTest, InvariantViolationsGateTheExitCode) {
  // Refusing every grant strands each takeover without a first grant: the
  // handoff-gap invariant fires and the process must exit 1.
  const Result r = run_sim(
      "--scenario multigrantor --set wifi.grants_requests=false --seconds 1");
  EXPECT_EQ(r.exit_code, 1) << r.output;
  EXPECT_NE(r.output.find("handoff gap unbounded"), std::string::npos)
      << r.output;
}

TEST(BicordsimCliTest, UnknownPresetExitsWithUsageError) {
  const Result r = run_sim("--scenario no-such-preset --seconds 1");
  EXPECT_EQ(r.exit_code, 2) << r.output;
}

}  // namespace
