// LTE-U duty cycling and the energy-envelope grantor (ISSUE 10).
//
// The device half is purely periodic (ON/OFF edges, suppression windows);
// the grantor half must lease white space from a burst's energy envelope
// alone — airtime + receive power, never payload bits.

#include <gtest/gtest.h>

#include "coex/scenario.hpp"
#include "coex/scenario_spec.hpp"
#include "interferers/lteu.hpp"
#include "phy/medium.hpp"
#include "phy/spectrum.hpp"
#include "sim/simulator.hpp"

namespace bicord::interferers {
namespace {

using namespace bicord::time_literals;

struct LteUFixture : ::testing::Test {
  LteUFixture() : sim(71), medium(sim, phy::PathLossModel{40.0, 3.0, 0.0, 0.1}) {
    enb = medium.add_node("enb", {0.0, 0.0});
    sender = medium.add_node("sender", {1.5, 0.0});
  }

  /// A raw ZigBee-band burst of `airtime` at `power_dbm` from the sender —
  /// what the eNB's envelope detector sees of a BiCord control packet.
  void send_burst(Duration airtime, double power_dbm, std::uint64_t seq = 1) {
    phy::Frame frame;
    frame.tech = phy::Technology::ZigBee;
    frame.kind = phy::FrameKind::Data;  // deliberately NOT Control: the
                                        // grantor must match without reading
                                        // any payload-dependent field
    frame.src = sender;
    frame.dst = phy::kBroadcastNode;
    frame.seq = seq;
    medium.begin_tx(frame, phy::zigbee_channel(24), power_dbm, airtime);
  }

  sim::Simulator sim;
  phy::Medium medium;
  phy::NodeId enb{};
  phy::NodeId sender{};
};

TEST_F(LteUFixture, DutyCyclesOnOffEdges) {
  LteUDevice::Config cfg;
  cfg.period = 20_ms;
  cfg.duty = 0.5;
  LteUDevice device(medium, enb, cfg);
  EXPECT_EQ(device.on_duration(), 10_ms);

  device.start();
  sim.run_for(200_ms);
  // Cycle ticks at 0, 20, ..., 200 ms (run_for drains events at exactly
  // t = end): one ON burst each.
  EXPECT_EQ(device.bursts_sent(), 11u);
  EXPECT_EQ(device.cycles_suppressed(), 0u);

  device.stop();
  const auto frozen = device.bursts_sent();
  sim.run_for(100_ms);
  EXPECT_EQ(device.bursts_sent(), frozen);
}

TEST_F(LteUFixture, SuppressionSkipsWholeCycles) {
  LteUDevice::Config cfg;
  cfg.period = 20_ms;
  cfg.duty = 0.5;
  LteUDevice device(medium, enb, cfg);
  device.start();
  sim.run_for(10_ms);  // one burst on the air already (t = 0)
  ASSERT_EQ(device.bursts_sent(), 1u);

  device.suppress_for(45_ms);  // until t = 55 ms: covers the 20 and 40 ms ticks
  EXPECT_TRUE(device.suppressed());
  sim.run_for(60_ms);  // now t = 70 ms, ticks at 20/40 skipped, 60 resumed
  EXPECT_EQ(device.bursts_sent(), 2u);
  EXPECT_EQ(device.cycles_suppressed(), 2u);
  EXPECT_FALSE(device.suppressed());
}

TEST_F(LteUFixture, SuppressionExtendsButNeverShortens) {
  LteUDevice device(medium, enb);
  device.start();
  device.suppress_for(40_ms);
  device.suppress_for(10_ms);  // shorter: must not pull the window in
  sim.run_for(30_ms);
  EXPECT_TRUE(device.suppressed());
  sim.run_for(15_ms);
  EXPECT_FALSE(device.suppressed());
}

TEST_F(LteUFixture, GrantorLeasesFromEnergyEnvelopeWithoutDecoding) {
  LteUDevice device(medium, enb);
  LteUGrantor::Config gc;
  LteUGrantor grantor(medium, enb, device, gc);

  // The burst is a Data frame (not Control) — only its airtime and receive
  // power match the control-packet envelope.
  send_burst(gc.control_airtime, 0.0);
  sim.run_for(10_ms);

  EXPECT_EQ(grantor.requests_detected(), 1u);
  EXPECT_EQ(grantor.suppressions_granted(), 1u);
  EXPECT_TRUE(grantor.lease_active());
  EXPECT_TRUE(device.suppressed());
}

TEST_F(LteUFixture, GrantorIgnoresWrongAirtime) {
  LteUDevice device(medium, enb);
  LteUGrantor grantor(medium, enb, device, {});

  send_burst(2_ms, 0.0);  // far outside the control-airtime tolerance
  sim.run_for(10_ms);

  EXPECT_EQ(grantor.requests_detected(), 0u);
  EXPECT_FALSE(grantor.lease_active());
  EXPECT_FALSE(device.suppressed());
}

TEST_F(LteUFixture, GrantorIgnoresWeakBurst) {
  LteUDevice device(medium, enb);
  LteUGrantor::Config gc;
  LteUGrantor grantor(medium, enb, device, gc);

  // Control-length burst, but ~-90 dBm at the eNB: below the envelope
  // detector's plausible-request power.
  send_burst(gc.control_airtime, -45.0);
  sim.run_for(10_ms);

  EXPECT_EQ(grantor.requests_detected(), 0u);
  EXPECT_FALSE(device.suppressed());
}

TEST_F(LteUFixture, LeaseWindowMatchesAllocatorGrantAndDutyResumes) {
  LteUDevice::Config dc;
  dc.period = 20_ms;
  dc.duty = 0.5;
  LteUDevice device(medium, enb, dc);
  device.start();

  LteUGrantor::Config gc;
  LteUGrantor grantor(medium, enb, device, gc);

  sim.run_for(1_ms);  // t = 1 ms: first ON burst is on the air
  send_burst(gc.control_airtime, 0.0);
  sim.run_for(9_ms);  // burst ends at ~5.4 ms -> detection + lease
  ASSERT_TRUE(grantor.lease_active());

  // The lease is the allocator's initial white space plus the traits margin;
  // the 30 ms default spans the 20 ms cycle, so the next ON edge is skipped.
  const Duration lease =
      gc.allocator.initial_whitespace + core::kLteUTraits.grant_margin;
  sim.run_for(lease - 5_ms);  // just inside the window
  EXPECT_TRUE(device.suppressed());
  EXPECT_EQ(device.bursts_sent(), 1u);
  EXPECT_GE(device.cycles_suppressed(), 1u);

  sim.run_for(30_ms);  // past expiry: lease released, duty cycle resumed
  EXPECT_FALSE(grantor.lease_active());
  EXPECT_FALSE(device.suppressed());
  EXPECT_GT(device.bursts_sent(), 1u);
}

TEST_F(LteUFixture, RepeatRequestDuringLeaseIsAbsorbed) {
  LteUDevice device(medium, enb);
  LteUGrantor::Config gc;
  LteUGrantor grantor(medium, enb, device, gc);

  send_burst(gc.control_airtime, 0.0, 1);
  sim.run_for(10_ms);
  ASSERT_EQ(grantor.suppressions_granted(), 1u);

  send_burst(gc.control_airtime, 0.0, 2);
  sim.run_for(10_ms);
  EXPECT_EQ(grantor.requests_detected(), 2u);
  EXPECT_EQ(grantor.suppressions_granted(), 1u);  // absorbed, not re-granted
}

TEST(LteUScenarioTest, PresetRunsTheFullLeaseLoop) {
  using namespace bicord::coex;
  auto spec = ScenarioSpec::preset("lteu");
  ASSERT_TRUE(spec.has_value());
  Scenario scenario(spec->must_config());
  warm_and_measure(scenario, 500_ms, 1500_ms);

  ASSERT_NE(scenario.lteu_device(), nullptr);
  ASSERT_NE(scenario.lteu_grantor(), nullptr);
  EXPECT_EQ(scenario.bicord_wifi(), nullptr);
  EXPECT_NE(scenario.bicord_zigbee(), nullptr);  // unmodified BiCord requester

  const auto& stats = scenario.zigbee_stats();
  EXPECT_GT(stats.generated, 0u);
  EXPECT_EQ(stats.delivered, stats.generated);
  EXPECT_GT(scenario.lteu_grantor()->suppressions_granted(), 0u);
  EXPECT_GT(scenario.lteu_device()->cycles_suppressed(), 0u);
  EXPECT_GT(scenario.lteu_device()->bursts_sent(), 0u);
}

}  // namespace
}  // namespace bicord::interferers
