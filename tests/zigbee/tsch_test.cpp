// 802.15.4e TSCH under BiCord (ISSUE 10): the hop schedule's lockstep
// retunes, slot-boundary reception truncation, and the clock-bounded lease
// path (kTschTraits) running under frequency agility.

#include <gtest/gtest.h>

#include "coex/scenario.hpp"
#include "coex/scenario_spec.hpp"
#include "core/coordination_engine.hpp"
#include "core/technology_traits.hpp"
#include "phy/medium.hpp"
#include "phy/radio.hpp"
#include "phy/spectrum.hpp"
#include "sim/simulator.hpp"
#include "zigbee/tsch.hpp"

namespace bicord::zigbee {
namespace {

using namespace bicord::time_literals;

phy::Radio::Config radio_config(int channel) {
  phy::Radio::Config rc;
  rc.tech = phy::Technology::ZigBee;
  rc.band = phy::zigbee_channel(channel);
  rc.sensitivity_dbm = -85.0;
  return rc;
}

struct TschFixture : ::testing::Test {
  TschFixture() : sim(81), medium(sim, phy::PathLossModel{40.0, 3.0, 0.0, 0.1}) {
    tx_node = medium.add_node("tx", {0.0, 0.0});
    rx_node = medium.add_node("rx", {2.0, 0.0});
  }

  sim::Simulator sim;
  phy::Medium medium;
  phy::NodeId tx_node{};
  phy::NodeId rx_node{};
};

TEST_F(TschFixture, HopScheduleRetunesEnrolledRadiosInLockstep) {
  phy::Radio a(medium, tx_node, radio_config(24));
  phy::Radio b(medium, rx_node, radio_config(24));

  TschHopSchedule::Config cfg;
  cfg.hop_period = 10_ms;
  TschHopSchedule schedule(sim, cfg);
  schedule.add_radio(a);
  schedule.add_radio(b);

  // Enrollment snaps both radios to the current hop channel immediately.
  EXPECT_EQ(schedule.current_channel(), 21);
  EXPECT_EQ(a.band().center_mhz, phy::zigbee_channel(21).center_mhz);
  EXPECT_EQ(b.band().center_mhz, phy::zigbee_channel(21).center_mhz);

  schedule.start();
  sim.run_for(10_ms + 100_us);
  EXPECT_EQ(schedule.current_channel(), 22);
  EXPECT_EQ(a.band().center_mhz, b.band().center_mhz);
  EXPECT_EQ(a.band().center_mhz, phy::zigbee_channel(22).center_mhz);

  sim.run_for(30_ms);  // three more boundaries: wrapped back to 21
  EXPECT_EQ(schedule.hops(), 4u);
  EXPECT_EQ(schedule.current_channel(), 21);
  EXPECT_EQ(a.band().center_mhz, phy::zigbee_channel(21).center_mhz);
}

TEST_F(TschFixture, RetuneTruncatesInProgressReception) {
  phy::Radio a(medium, tx_node, radio_config(21));
  phy::Radio b(medium, rx_node, radio_config(21));
  bool delivered = false;
  b.set_rx_callback([&](const phy::RxResult&) { delivered = true; });

  phy::Frame frame;
  frame.tech = phy::Technology::ZigBee;
  frame.kind = phy::FrameKind::Data;
  frame.src = tx_node;
  frame.dst = rx_node;
  a.transmit(frame, 0.0, 4_ms);
  ASSERT_EQ(b.state(), phy::RadioState::Rx);  // locked onto the frame

  // The slot boundary lands mid-frame: the lock is gone, no decode draw,
  // no rx callback — the frame simply never finished for this receiver.
  b.retune(phy::zigbee_channel(22));
  EXPECT_EQ(b.state(), phy::RadioState::Idle);
  EXPECT_EQ(b.receptions_truncated(), 1u);

  sim.run_for(10_ms);
  EXPECT_FALSE(delivered);
  EXPECT_EQ(b.frames_received(), 0u);
  EXPECT_EQ(b.frames_corrupted(), 0u);
}

TEST_F(TschFixture, RetuneDuringOwnTransmissionKeepsCarrierOnAir) {
  phy::Radio a(medium, tx_node, radio_config(21));
  phy::Radio b(medium, rx_node, radio_config(21));
  bool delivered = false;
  b.set_rx_callback([&](const phy::RxResult& rx) { delivered = rx.success; });

  phy::Frame frame;
  frame.tech = phy::Technology::ZigBee;
  frame.kind = phy::FrameKind::Data;
  frame.src = tx_node;
  frame.dst = rx_node;
  bool done = false;
  a.transmit(frame, 0.0, 4_ms, [&] { done = true; });

  // The sender retunes mid-transmission: the carrier already on the air
  // keeps its original band on the medium, so the receiver (still on 21)
  // finishes the frame and the tx-done callback still fires.
  a.retune(phy::zigbee_channel(23));
  sim.run_for(10_ms);
  EXPECT_TRUE(done);
  EXPECT_TRUE(delivered);
  EXPECT_EQ(a.state(), phy::RadioState::Idle);
}

TEST_F(TschFixture, LeaseExpiresOnItsOwnClockAcrossHopBoundaries) {
  // A hopping radio under the schedule while the grantor-side engine runs a
  // clock-bounded lease: the hops must neither stall nor re-time the expiry.
  phy::Radio r(medium, rx_node, radio_config(21));
  TschHopSchedule::Config hc;
  hc.hop_period = 5_ms;
  TschHopSchedule schedule(sim, hc);
  schedule.add_radio(r);
  schedule.start();

  core::CoordinationEngine engine(sim, core::kTschTraits, core::AllocatorParams{},
                                  8);
  int released = 0;
  engine.set_release_hook([&] { ++released; });

  const auto grant = engine.on_request(sim.now());
  ASSERT_TRUE(grant.has_value());
  const Duration lease = *grant + core::kTschTraits.grant_margin;
  // bicord-lint: allow(grant-issue-outside-engine) — test drives the lease path directly.
  engine.begin_lease(sim.now(), lease);
  engine.arm_lease_expiry();  // bicord-lint: allow(grant-issue-outside-engine)

  sim.run_for(lease - 1_ms);
  EXPECT_TRUE(engine.grant_active());
  EXPECT_GE(schedule.hops(), 4u);  // several boundaries inside the lease

  sim.run_for(2_ms);
  EXPECT_FALSE(engine.grant_active());
  EXPECT_EQ(released, 1);
  EXPECT_EQ(engine.watchdog_recoveries(), 0u);  // lease path, no watchdog

  sim.run_for(20_ms);
  EXPECT_EQ(released, 1);  // expiry fires exactly once
}

TEST(TschScenarioTest, PresetDeliversThroughLeasedGrantsWhileHopping) {
  using namespace bicord::coex;
  auto spec = ScenarioSpec::preset("tsch");
  ASSERT_TRUE(spec.has_value());
  Scenario scenario(spec->must_config());
  warm_and_measure(scenario, 500_ms, 1500_ms);

  ASSERT_NE(scenario.tsch_requester(), nullptr);
  ASSERT_NE(scenario.tsch_schedule(), nullptr);
  ASSERT_NE(scenario.bicord_wifi(), nullptr);
  EXPECT_EQ(scenario.bicord_zigbee(), nullptr);

  const auto& stats = scenario.zigbee_stats();
  EXPECT_GT(stats.generated, 0u);
  // The last burst may still be draining when the window closes; what the
  // lease path must guarantee is that nothing is lost or abandoned.
  EXPECT_EQ(stats.dropped, 0u);
  EXPECT_GE(stats.delivered + scenario.zigbee_agent().backlog(),
            stats.generated);
  EXPECT_GT(stats.delivered, stats.generated / 2);
  EXPECT_EQ(scenario.tsch_requester()->give_ups(), 0u);
  EXPECT_GT(scenario.bicord_wifi()->whitespaces_granted(), 0u);
  // The grantor ran the clock-bounded lease path, not flag + watchdog.
  EXPECT_EQ(scenario.bicord_wifi()->watchdog_recoveries(), 0u);
  EXPECT_GT(scenario.tsch_schedule()->hops(), 100u);  // 2 s at 10 ms/hop
}

TEST(TschScenarioTest, LeasesSpanHopBoundaries) {
  using namespace bicord::coex;
  auto spec = ScenarioSpec::preset("tsch");
  ASSERT_TRUE(spec.has_value());
  auto cfg = spec->must_config();
  Scenario scenario(cfg);
  warm_and_measure(scenario, 500_ms, 1500_ms);

  ASSERT_GT(scenario.bicord_wifi()->whitespaces_granted(), 0u);
  // Converged white space well beyond one hop period: every grant lived
  // through at least one lockstep retune of both link radios.
  EXPECT_GT(scenario.bicord_wifi()->allocator().estimate(), cfg.tsch_hop_period);
}

}  // namespace
}  // namespace bicord::zigbee
