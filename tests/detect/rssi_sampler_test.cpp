#include "detect/rssi_sampler.hpp"

#include <gtest/gtest.h>

#include "phy/spectrum.hpp"
#include "sim/simulator.hpp"

namespace bicord::detect {
namespace {

using namespace bicord::time_literals;

struct SamplerFixture : ::testing::Test {
  SamplerFixture() : sim(51), medium(sim, phy::PathLossModel{40.0, 3.0, 0.0, 0.1}) {
    node = medium.add_node("collector", {0.0, 0.0});
    source = medium.add_node("source", {1.0, 0.0});
  }
  sim::Simulator sim;
  phy::Medium medium;
  phy::NodeId node{};
  phy::NodeId source{};
};

TEST_F(SamplerFixture, DefaultCaptureIs200SamplesAt40kHz) {
  RssiSampler sampler(medium, node, phy::zigbee_channel(24));
  RssiSegment got;
  sampler.capture([&](RssiSegment s) { got = std::move(s); });
  sim.run_all();
  EXPECT_EQ(got.dbm.size(), 200u);
  EXPECT_EQ(got.sample_period, Duration::from_us(25));
  EXPECT_EQ(got.length(), 5_ms);
}

TEST_F(SamplerFixture, QuietChannelReadsNoiseFloor) {
  RssiSampler sampler(medium, node, phy::zigbee_channel(24));
  RssiSegment got;
  sampler.capture([&](RssiSegment s) { got = std::move(s); });
  sim.run_all();
  for (double v : got.dbm) {
    EXPECT_NEAR(v, phy::Medium::noise_floor_dbm(phy::zigbee_channel(24)), 0.01);
  }
}

TEST_F(SamplerFixture, CapturesTransmissionEdges) {
  RssiSampler sampler(medium, node, phy::zigbee_channel(24));
  // Source transmits from t = 1 ms to t = 3 ms; capture spans 0-5 ms.
  sim.after(1_ms, [&] {
    phy::Frame f;
    f.tech = phy::Technology::ZigBee;
    f.src = source;
    medium.begin_tx(f, phy::zigbee_channel(24), 0.0, 2_ms);
  });
  RssiSegment got;
  sampler.capture([&](RssiSegment s) { got = std::move(s); });
  sim.run_all();
  int busy = 0;
  for (double v : got.dbm) {
    if (v > -60.0) ++busy;
  }
  // 2 ms busy of 5 ms window at 25 us/sample: about 80 samples.
  EXPECT_NEAR(busy, 80, 3);
}

TEST_F(SamplerFixture, BusyFlagAndListenTime) {
  RssiSampler sampler(medium, node, phy::zigbee_channel(24));
  EXPECT_FALSE(sampler.busy());
  sampler.capture([](RssiSegment) {});
  EXPECT_TRUE(sampler.busy());
  EXPECT_THROW(sampler.capture([](RssiSegment) {}), std::logic_error);
  sim.run_all();
  EXPECT_FALSE(sampler.busy());
  EXPECT_EQ(sampler.listen_time(), 5_ms);
}

TEST_F(SamplerFixture, BatchedCaptureMatchesPerInstantReference) {
  // Random traffic with edges on a 5 us grid — several land exactly on
  // 25 us sample instants — plus a mid-capture node move. The reference
  // probes the medium 1 us after each sample instant: energy is piecewise
  // constant between edges and no edge can fall inside (t, t+1us], so each
  // probe reads exactly what a sample with post-edge tie semantics must
  // read. Values must match bitwise.
  RssiSampler sampler(medium, node, phy::zigbee_channel(24));
  Rng traffic(99);
  for (int i = 0; i < 12; ++i) {
    const auto start = Duration::from_us(traffic.uniform_int(0, 900) * 5);
    const auto dur = Duration::from_us(traffic.uniform_int(1, 300) * 5);
    sim.after(start, [this, dur] {
      phy::Frame f;
      f.tech = phy::Technology::WiFi;
      f.src = source;
      medium.begin_tx(f, phy::wifi_channel(11), 15.0, dur);
    });
  }
  sim.after(Duration::from_us(2500), [this] { medium.set_position(source, {3.0, 1.0}); });

  std::vector<double> reference(200, 0.0);
  for (int i = 0; i < 200; ++i) {
    sim.after(Duration::from_us(i * 25 + 1), [this, &reference, i] {
      reference[static_cast<std::size_t>(i)] =
          medium.energy_dbm(node, phy::zigbee_channel(24), node);
    });
  }
  RssiSegment got;
  sampler.capture([&](RssiSegment s) { got = std::move(s); });
  sim.run_all();
  ASSERT_EQ(got.dbm.size(), 200u);
  for (std::size_t i = 0; i < 200; ++i) {
    EXPECT_EQ(got.dbm[i], reference[i]) << "sample " << i;
  }
}

TEST_F(SamplerFixture, TxEndingExactlyOnFinalSampleReadsPostEdgeLevel) {
  // Regression: the finish event used to be scheduled at capture start, so a
  // transmission that began mid-capture and ended exactly at the final sample
  // instant (t = 4975 us) had a later tie-break seq — its end edge fired
  // after finish() and the last sample read the pre-edge (busy) level.
  RssiSampler sampler(medium, node, phy::zigbee_channel(24));
  RssiSegment got;
  sampler.capture([&](RssiSegment s) { got = std::move(s); });
  sim.after(1_ms, [&] {
    phy::Frame f;
    f.tech = phy::Technology::ZigBee;
    f.src = source;
    medium.begin_tx(f, phy::zigbee_channel(24), 0.0, Duration::from_us(3975));
  });
  sim.run_all();
  ASSERT_EQ(got.dbm.size(), 200u);
  EXPECT_GT(got.dbm[198], -60.0);  // t = 4950 us: still mid-transmission
  // t = 4975 us: the tx ends exactly here; the tie reads the post-edge level.
  EXPECT_NEAR(got.dbm[199], phy::Medium::noise_floor_dbm(phy::zigbee_channel(24)),
              0.01);
}

TEST_F(SamplerFixture, CustomCadence) {
  RssiSampler sampler(medium, node, phy::zigbee_channel(24));
  RssiSegment got;
  sampler.capture(10, Duration::from_us(100), [&](RssiSegment s) { got = std::move(s); });
  const TimePoint start = sim.now();
  sim.run_all();
  EXPECT_EQ(got.dbm.size(), 10u);
  EXPECT_EQ(sim.now() - start, Duration::from_us(900));  // 9 gaps
  EXPECT_THROW(sampler.capture(0, 1_ms, [](RssiSegment) {}), std::invalid_argument);
}

}  // namespace
}  // namespace bicord::detect
