#include "detect/rssi_sampler.hpp"

#include <gtest/gtest.h>

#include "phy/spectrum.hpp"
#include "sim/simulator.hpp"

namespace bicord::detect {
namespace {

using namespace bicord::time_literals;

struct SamplerFixture : ::testing::Test {
  SamplerFixture() : sim(51), medium(sim, phy::PathLossModel{40.0, 3.0, 0.0, 0.1}) {
    node = medium.add_node("collector", {0.0, 0.0});
    source = medium.add_node("source", {1.0, 0.0});
  }
  sim::Simulator sim;
  phy::Medium medium;
  phy::NodeId node{};
  phy::NodeId source{};
};

TEST_F(SamplerFixture, DefaultCaptureIs200SamplesAt40kHz) {
  RssiSampler sampler(medium, node, phy::zigbee_channel(24));
  RssiSegment got;
  sampler.capture([&](RssiSegment s) { got = std::move(s); });
  sim.run_all();
  EXPECT_EQ(got.dbm.size(), 200u);
  EXPECT_EQ(got.sample_period, Duration::from_us(25));
  EXPECT_EQ(got.length(), 5_ms);
}

TEST_F(SamplerFixture, QuietChannelReadsNoiseFloor) {
  RssiSampler sampler(medium, node, phy::zigbee_channel(24));
  RssiSegment got;
  sampler.capture([&](RssiSegment s) { got = std::move(s); });
  sim.run_all();
  for (double v : got.dbm) {
    EXPECT_NEAR(v, phy::Medium::noise_floor_dbm(phy::zigbee_channel(24)), 0.01);
  }
}

TEST_F(SamplerFixture, CapturesTransmissionEdges) {
  RssiSampler sampler(medium, node, phy::zigbee_channel(24));
  // Source transmits from t = 1 ms to t = 3 ms; capture spans 0-5 ms.
  sim.after(1_ms, [&] {
    phy::Frame f;
    f.tech = phy::Technology::ZigBee;
    f.src = source;
    medium.begin_tx(f, phy::zigbee_channel(24), 0.0, 2_ms);
  });
  RssiSegment got;
  sampler.capture([&](RssiSegment s) { got = std::move(s); });
  sim.run_all();
  int busy = 0;
  for (double v : got.dbm) {
    if (v > -60.0) ++busy;
  }
  // 2 ms busy of 5 ms window at 25 us/sample: about 80 samples.
  EXPECT_NEAR(busy, 80, 3);
}

TEST_F(SamplerFixture, BusyFlagAndListenTime) {
  RssiSampler sampler(medium, node, phy::zigbee_channel(24));
  EXPECT_FALSE(sampler.busy());
  sampler.capture([](RssiSegment) {});
  EXPECT_TRUE(sampler.busy());
  EXPECT_THROW(sampler.capture([](RssiSegment) {}), std::logic_error);
  sim.run_all();
  EXPECT_FALSE(sampler.busy());
  EXPECT_EQ(sampler.listen_time(), 5_ms);
}

TEST_F(SamplerFixture, CustomCadence) {
  RssiSampler sampler(medium, node, phy::zigbee_channel(24));
  RssiSegment got;
  sampler.capture(10, Duration::from_us(100), [&](RssiSegment s) { got = std::move(s); });
  const TimePoint start = sim.now();
  sim.run_all();
  EXPECT_EQ(got.dbm.size(), 10u);
  EXPECT_EQ(sim.now() - start, Duration::from_us(900));  // 9 gaps
  EXPECT_THROW(sampler.capture(0, 1_ms, [](RssiSegment) {}), std::invalid_argument);
}

}  // namespace
}  // namespace bicord::detect
