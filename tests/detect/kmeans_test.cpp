#include "detect/kmeans.hpp"

#include <gtest/gtest.h>

namespace bicord::detect {
namespace {

TEST(ManhattanTest, DistanceArithmetic) {
  EXPECT_DOUBLE_EQ(manhattan({0.0, 0.0}, {3.0, 4.0}), 7.0);
  EXPECT_DOUBLE_EQ(manhattan({1.0}, {1.0}), 0.0);
  EXPECT_DOUBLE_EQ(manhattan({-1.0, 2.0}, {1.0, -2.0}), 6.0);
  EXPECT_THROW((void)manhattan({1.0}, {1.0, 2.0}), std::invalid_argument);
}

TEST(ZscoreTest, NormalizesToZeroMeanUnitSd) {
  const auto out = zscore_normalize({{0.0, 10.0}, {2.0, 20.0}, {4.0, 30.0}});
  ASSERT_EQ(out.size(), 3u);
  double mean0 = 0.0;
  for (const auto& r : out) mean0 += r[0];
  EXPECT_NEAR(mean0 / 3.0, 0.0, 1e-12);
  EXPECT_NEAR(out[0][0], -out[2][0], 1e-12);
}

TEST(ZscoreTest, ConstantDimensionPassesThrough) {
  const auto out = zscore_normalize({{5.0, 1.0}, {5.0, 2.0}});
  EXPECT_DOUBLE_EQ(out[0][0], 5.0);
  EXPECT_DOUBLE_EQ(out[1][0], 5.0);
}

TEST(ZscoreTest, EmptyAndRagged) {
  EXPECT_TRUE(zscore_normalize({}).empty());
  EXPECT_THROW(zscore_normalize({{1.0}, {1.0, 2.0}}), std::invalid_argument);
}

TEST(KmeansTest, RecoversWellSeparatedClusters) {
  Rng rng(5);
  std::vector<std::vector<double>> rows;
  std::vector<int> truth;
  const double centers[3][2] = {{0.0, 0.0}, {10.0, 0.0}, {0.0, 10.0}};
  for (int c = 0; c < 3; ++c) {
    for (int i = 0; i < 40; ++i) {
      rows.push_back({centers[c][0] + rng.normal(0.0, 0.5),
                      centers[c][1] + rng.normal(0.0, 0.5)});
      truth.push_back(c);
    }
  }
  KmeansParams p;
  p.k = 3;
  const auto result = kmeans_manhattan(rows, p, rng);
  EXPECT_TRUE(result.converged);
  EXPECT_EQ(result.centroids.size(), 3u);
  EXPECT_GT(cluster_purity(result.labels, truth), 0.98);
}

TEST(KmeansTest, SingleCluster) {
  Rng rng(6);
  std::vector<std::vector<double>> rows;
  for (int i = 0; i < 10; ++i) rows.push_back({rng.uniform(), rng.uniform()});
  KmeansParams p;
  p.k = 1;
  const auto result = kmeans_manhattan(rows, p, rng);
  for (int label : result.labels) EXPECT_EQ(label, 0);
}

TEST(KmeansTest, ValidatesInput) {
  Rng rng(7);
  KmeansParams p;
  p.k = 3;
  EXPECT_THROW(kmeans_manhattan({}, p, rng), std::invalid_argument);
  EXPECT_THROW(kmeans_manhattan({{1.0}, {2.0}}, p, rng), std::invalid_argument);
  p.k = 0;
  EXPECT_THROW(kmeans_manhattan({{1.0}}, p, rng), std::invalid_argument);
}

TEST(KmeansTest, DeterministicGivenSameRngState) {
  std::vector<std::vector<double>> rows;
  Rng data_rng(8);
  for (int i = 0; i < 50; ++i) {
    rows.push_back({data_rng.uniform() + (i < 25 ? 0.0 : 5.0)});
  }
  KmeansParams p;
  p.k = 2;
  Rng a(99);
  Rng b(99);
  const auto ra = kmeans_manhattan(rows, p, a);
  const auto rb = kmeans_manhattan(rows, p, b);
  EXPECT_EQ(ra.labels, rb.labels);
}

TEST(ClusterPurityTest, PerfectAndWorstCase) {
  EXPECT_DOUBLE_EQ(cluster_purity({0, 0, 1, 1}, {5, 5, 7, 7}), 1.0);
  // Every cluster is a 50/50 mix: purity 0.5.
  EXPECT_DOUBLE_EQ(cluster_purity({0, 0, 1, 1}, {5, 7, 5, 7}), 0.5);
  EXPECT_THROW((void)cluster_purity({}, {}), std::invalid_argument);
  EXPECT_THROW((void)cluster_purity({0}, {0, 1}), std::invalid_argument);
}

class KSweep : public ::testing::TestWithParam<int> {};

TEST_P(KSweep, LabelsAlwaysInRange) {
  Rng rng(11);
  std::vector<std::vector<double>> rows;
  for (int i = 0; i < 100; ++i) {
    rows.push_back({rng.uniform() * 10.0, rng.uniform() * 10.0});
  }
  KmeansParams p;
  p.k = GetParam();
  const auto result = kmeans_manhattan(rows, p, rng);
  for (int label : result.labels) {
    EXPECT_GE(label, 0);
    EXPECT_LT(label, p.k);
  }
}

INSTANTIATE_TEST_SUITE_P(Kmeans, KSweep, ::testing::Values(1, 2, 3, 5, 8));

}  // namespace
}  // namespace bicord::detect
