#include <gtest/gtest.h>

#include "detect/features.hpp"
#include "detect/rssi_sampler.hpp"
#include "interferers/bluetooth.hpp"
#include "interferers/microwave.hpp"
#include "phy/medium.hpp"
#include "sim/simulator.hpp"

namespace bicord::interferers {
namespace {

using namespace bicord::time_literals;

struct InterfererFixture : ::testing::Test {
  InterfererFixture() : sim(61), medium(sim, phy::PathLossModel{40.0, 3.0, 0.0, 0.1}) {
    collector = medium.add_node("collector", {0.0, 0.0});
    source = medium.add_node("source", {1.5, 0.0});
  }

  detect::RssiSegment capture_segment() {
    detect::RssiSampler sampler(medium, collector, phy::zigbee_channel(24));
    detect::RssiSegment got;
    bool done = false;
    sampler.capture([&](detect::RssiSegment s) {
      got = std::move(s);
      done = true;
    });
    while (!done && sim.step()) {
    }
    return got;
  }

  sim::Simulator sim;
  phy::Medium medium;
  phy::NodeId collector{};
  phy::NodeId source{};
};

TEST_F(InterfererFixture, BluetoothHopsAcrossBand) {
  BluetoothDevice bt(medium, source);
  bt.start();
  sim.run_for(1_sec);
  // 1600 slots/s at 60 % occupancy for 1 s.
  EXPECT_NEAR(static_cast<double>(bt.packets_sent()), 960.0, 100.0);
  bt.stop();
  const auto count = bt.packets_sent();
  sim.run_for(100_ms);
  EXPECT_EQ(bt.packets_sent(), count);
}

TEST_F(InterfererFixture, BluetoothOnlySometimesLandsInZigbeeChannel) {
  BluetoothDevice bt(medium, source);
  bt.start();
  sim.run_for(20_ms);
  const auto seg = capture_segment();
  bt.stop();
  // Most hops miss the 2 MHz ZigBee channel: occupancy far below 50 %.
  const auto fp = detect::extract_fingerprint(seg, detect::FeatureParams{});
  EXPECT_LT(fp.occupancy, 0.4);
}

TEST_F(InterfererFixture, MicrowaveDutyCyclesAtMains) {
  MicrowaveOven oven(medium, source);
  oven.start();
  sim.run_for(1_sec);
  // 50 Hz; the cycle landing exactly on the 1 s boundary may also fire.
  EXPECT_GE(oven.cycles(), 50u);
  EXPECT_LE(oven.cycles(), 51u);
  oven.stop();
}

TEST_F(InterfererFixture, MicrowaveShowsLongOnTimes) {
  MicrowaveOven oven(medium, source);
  oven.start();
  sim.run_for(25_ms);  // land inside a cycle
  const auto seg = capture_segment();
  oven.stop();
  const auto f = detect::extract_tech_features(seg, detect::FeatureParams{});
  // Within a 5 ms window the oven is either fully on or off; when captured
  // mid-burst the on-air time dwarfs a Wi-Fi frame's.
  if (detect::has_activity(seg, detect::FeatureParams{})) {
    EXPECT_GT(f.avg_on_air_us, 500.0);
  }
}

TEST_F(InterfererFixture, MicrowaveEnergyIsStrong) {
  MicrowaveOven oven(medium, source);
  oven.start();
  sim.run_for(5_ms);  // first cycle's on-phase
  EXPECT_GT(medium.energy_dbm(collector, phy::zigbee_channel(24)), -60.0);
  oven.stop();
}

TEST_F(InterfererFixture, StartIsIdempotent) {
  BluetoothDevice bt(medium, source);
  bt.start();
  bt.start();
  sim.run_for(10_ms);
  // Double start must not double the slot rate: <= 16 slots in 10 ms.
  EXPECT_LE(bt.packets_sent(), 16u);
}

}  // namespace
}  // namespace bicord::interferers
