#include "detect/decision_tree.hpp"

#include <gtest/gtest.h>

#include "util/rng.hpp"

namespace bicord::detect {
namespace {

TEST(DecisionTreeTest, LearnsAxisAlignedSplit) {
  DecisionTree tree;
  std::vector<std::vector<double>> x;
  std::vector<int> y;
  for (int i = 0; i < 20; ++i) {
    x.push_back({static_cast<double>(i), 0.0});
    y.push_back(i < 10 ? 0 : 1);
  }
  tree.fit(x, y);
  EXPECT_TRUE(tree.trained());
  EXPECT_EQ(tree.predict({3.0, 0.0}), 0);
  EXPECT_EQ(tree.predict({15.0, 0.0}), 1);
  EXPECT_DOUBLE_EQ(tree.accuracy(x, y), 1.0);
}

TEST(DecisionTreeTest, LearnsTwoFeatureInteraction) {
  // XOR-like corners need depth 2.
  DecisionTree tree;
  std::vector<std::vector<double>> x;
  std::vector<int> y;
  Rng rng(1);
  for (int i = 0; i < 400; ++i) {
    const double a = rng.uniform();
    const double b = rng.uniform();
    x.push_back({a, b});
    y.push_back((a < 0.5) == (b < 0.5) ? 0 : 1);
  }
  tree.fit(x, y);
  EXPECT_GT(tree.accuracy(x, y), 0.95);
  EXPECT_GE(tree.depth(), 2);
}

TEST(DecisionTreeTest, MultiClass) {
  DecisionTree tree;
  std::vector<std::vector<double>> x;
  std::vector<int> y;
  for (int c = 0; c < 4; ++c) {
    for (int i = 0; i < 30; ++i) {
      x.push_back({static_cast<double>(c) * 10.0 + static_cast<double>(i % 5)});
      y.push_back(c);
    }
  }
  tree.fit(x, y);
  EXPECT_EQ(tree.predict({2.0}), 0);
  EXPECT_EQ(tree.predict({12.0}), 1);
  EXPECT_EQ(tree.predict({22.0}), 2);
  EXPECT_EQ(tree.predict({32.0}), 3);
}

TEST(DecisionTreeTest, DepthLimitCapsTree) {
  DecisionTree::Params p;
  p.max_depth = 1;
  DecisionTree tree(p);
  std::vector<std::vector<double>> x;
  std::vector<int> y;
  Rng rng(2);
  for (int i = 0; i < 200; ++i) {
    const double a = rng.uniform();
    const double b = rng.uniform();
    x.push_back({a, b});
    y.push_back((a < 0.5) == (b < 0.5) ? 0 : 1);  // needs depth 2
  }
  tree.fit(x, y);
  EXPECT_LE(tree.depth(), 1);
  EXPECT_LT(tree.accuracy(x, y), 0.8);  // stump cannot solve XOR
}

TEST(DecisionTreeTest, MinLeafPreventsTinySplits) {
  DecisionTree::Params p;
  p.min_leaf = 50;
  DecisionTree tree(p);
  std::vector<std::vector<double>> x;
  std::vector<int> y;
  for (int i = 0; i < 60; ++i) {
    x.push_back({static_cast<double>(i)});
    y.push_back(i < 5 ? 1 : 0);  // minority class smaller than min_leaf
  }
  tree.fit(x, y);
  EXPECT_EQ(tree.node_count(), 1u);  // no split possible
  EXPECT_EQ(tree.predict({0.0}), 0);  // majority label
}

TEST(DecisionTreeTest, PureInputMakesLeaf) {
  DecisionTree tree;
  tree.fit({{1.0}, {2.0}, {3.0}}, {7, 7, 7});
  EXPECT_EQ(tree.node_count(), 1u);
  EXPECT_EQ(tree.predict({100.0}), 7);
}

TEST(DecisionTreeTest, IdenticalFeaturesCannotSplit) {
  DecisionTree tree;
  tree.fit({{5.0}, {5.0}, {5.0}, {5.0}, {5.0}, {5.0}}, {0, 1, 0, 1, 0, 0});
  EXPECT_EQ(tree.node_count(), 1u);
  EXPECT_EQ(tree.predict({5.0}), 0);
}

TEST(DecisionTreeTest, ValidatesInput) {
  DecisionTree tree;
  EXPECT_THROW(tree.fit({}, {}), std::invalid_argument);
  EXPECT_THROW(tree.fit({{1.0}}, {0, 1}), std::invalid_argument);
  EXPECT_THROW(tree.fit({{1.0}, {1.0, 2.0}}, {0, 1}), std::invalid_argument);
  EXPECT_THROW((void)tree.predict({1.0}), std::logic_error);
  tree.fit({{1.0, 2.0}, {3.0, 4.0}, {1.0, 2.0}, {3.0, 4.0}, {1.0, 2.0}, {3.0, 4.0}},
           {0, 1, 0, 1, 0, 1});
  EXPECT_THROW((void)tree.predict({}), std::invalid_argument);
}

class NoiseSweep : public ::testing::TestWithParam<double> {};

TEST_P(NoiseSweep, RobustToLabelNoise) {
  // Property: training accuracy stays above 1 - 2*noise for moderate noise.
  const double noise = GetParam();
  DecisionTree::Params p;
  p.max_depth = 4;
  p.min_leaf = 8;
  DecisionTree tree(p);
  std::vector<std::vector<double>> x;
  std::vector<int> y;
  Rng rng(3);
  for (int i = 0; i < 500; ++i) {
    const double a = rng.uniform();
    int label = a < 0.5 ? 0 : 1;
    if (rng.bernoulli(noise)) label = 1 - label;
    x.push_back({a});
    y.push_back(label);
  }
  tree.fit(x, y);
  EXPECT_GT(tree.accuracy(x, y), 1.0 - 2.0 * noise - 0.05);
}

INSTANTIATE_TEST_SUITE_P(Noise, NoiseSweep, ::testing::Values(0.0, 0.05, 0.1, 0.2));

}  // namespace
}  // namespace bicord::detect
