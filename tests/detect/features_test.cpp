#include "detect/features.hpp"

#include <gtest/gtest.h>

namespace bicord::detect {
namespace {

RssiSegment segment(std::vector<double> dbm) {
  RssiSegment s;
  s.sample_period = Duration::from_us(25);
  s.dbm = std::move(dbm);
  return s;
}

/// Builds a segment of `n` samples: floor everywhere except the runs given
/// as (start, length, level).
RssiSegment with_runs(std::size_t n,
                      std::vector<std::tuple<std::size_t, std::size_t, double>> runs,
                      double floor_dbm = -97.0) {
  std::vector<double> v(n, floor_dbm);
  for (const auto& [start, len, level] : runs) {
    for (std::size_t i = start; i < start + len && i < n; ++i) v[i] = level;
  }
  return segment(std::move(v));
}

const FeatureParams kParams{};  // floor -97, busy margin +5

TEST(FeaturesTest, HasActivityDetectsBusySamples) {
  EXPECT_FALSE(has_activity(with_runs(200, {}), kParams));
  EXPECT_TRUE(has_activity(with_runs(200, {{10, 5, -60.0}}), kParams));
  // Samples below floor + margin do not count as activity.
  EXPECT_FALSE(has_activity(with_runs(200, {{10, 5, -93.0}}), kParams));
}

TEST(FeaturesTest, AverageOnAirTime) {
  // Two runs of 4 and 8 samples at 25 us: mean 6 * 25 = 150 us.
  const auto seg = with_runs(200, {{10, 4, -60.0}, {50, 8, -60.0}});
  const auto f = extract_tech_features(seg, kParams);
  EXPECT_NEAR(f.avg_on_air_us, 150.0, 1e-9);
}

TEST(FeaturesTest, MinPacketInterval) {
  // Gaps: 10 samples and 30 samples -> min 10 * 25 = 250 us.
  const auto seg = with_runs(200, {{10, 4, -60.0}, {24, 4, -60.0}, {58, 4, -60.0}});
  const auto f = extract_tech_features(seg, kParams);
  EXPECT_NEAR(f.min_packet_interval_us, 250.0, 1e-9);
}

TEST(FeaturesTest, SingleRunReportsFullWindowInterval) {
  const auto seg = with_runs(200, {{10, 20, -60.0}});
  const auto f = extract_tech_features(seg, kParams);
  EXPECT_NEAR(f.min_packet_interval_us, 200 * 25.0, 1e-9);
}

TEST(FeaturesTest, PeakToAveragePowerRatio) {
  // Busy samples at -60 and -70 dBm: peak/avg = 1 uW over 0.55 uW = 2.6 dB.
  const auto seg = with_runs(200, {{10, 1, -60.0}, {20, 1, -70.0}});
  const auto f = extract_tech_features(seg, kParams);
  EXPECT_NEAR(f.peak_to_avg_db, 2.596, 0.01);
}

TEST(FeaturesTest, ConstantPowerHasZeroPapr) {
  const auto seg = with_runs(200, {{10, 50, -60.0}});
  const auto f = extract_tech_features(seg, kParams);
  EXPECT_NEAR(f.peak_to_avg_db, 0.0, 1e-9);
}

TEST(FeaturesTest, UnderNoiseFloorFraction) {
  // 150 of 200 samples at the floor, 50 busy.
  const auto seg = with_runs(200, {{0, 50, -60.0}});
  const auto f = extract_tech_features(seg, kParams);
  EXPECT_NEAR(f.under_noise_floor, 150.0 / 200.0, 1e-9);
}

TEST(FeaturesTest, FingerprintSpanLevelVariance) {
  const auto seg = with_runs(200, {{10, 1, -50.0}, {20, 1, -60.0}});
  const auto fp = extract_fingerprint(seg, kParams);
  EXPECT_NEAR(fp.energy_span_db, 10.0, 1e-9);
  EXPECT_NEAR(fp.energy_level_dbm, -55.0, 1e-9);
  EXPECT_NEAR(fp.energy_variance, 25.0, 1e-9);
  EXPECT_NEAR(fp.occupancy, 2.0 / 200.0, 1e-9);
}

TEST(FeaturesTest, IdleFingerprintIsZero) {
  const auto fp = extract_fingerprint(with_runs(200, {}), kParams);
  EXPECT_DOUBLE_EQ(fp.energy_span_db, 0.0);
  EXPECT_DOUBLE_EQ(fp.energy_level_dbm, 0.0);
  EXPECT_DOUBLE_EQ(fp.occupancy, 0.0);
}

TEST(FeaturesTest, AsArrayOrderingStable) {
  TechFeatures f;
  f.avg_on_air_us = 1;
  f.min_packet_interval_us = 2;
  f.peak_to_avg_db = 3;
  f.under_noise_floor = 4;
  const auto arr = f.as_array();
  EXPECT_EQ(arr[0], 1);
  EXPECT_EQ(arr[1], 2);
  EXPECT_EQ(arr[2], 3);
  EXPECT_EQ(arr[3], 4);
}

TEST(FeaturesTest, WifiVsZigbeeSignatureDiffer) {
  // Wi-Fi: short dense frames (3 samples on, 37 off at 40 kHz ~ 75 us on /
  // 925 us off). ZigBee: long frames (86 samples ~ 2.1 ms).
  RssiSegment wifi = with_runs(
      200, {{0, 3, -55.0}, {40, 3, -55.0}, {80, 3, -55.0}, {120, 3, -55.0}, {160, 3, -55.0}});
  RssiSegment zigbee = with_runs(200, {{20, 86, -55.0}});
  const auto fw = extract_tech_features(wifi, kParams);
  const auto fz = extract_tech_features(zigbee, kParams);
  EXPECT_LT(fw.avg_on_air_us, fz.avg_on_air_us / 5.0);
}

}  // namespace
}  // namespace bicord::detect
