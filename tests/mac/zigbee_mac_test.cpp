#include "zigbee/zigbee_mac.hpp"

#include <gtest/gtest.h>

#include <vector>

#include "sim/simulator.hpp"
#include "zigbee/traffic.hpp"

namespace bicord::zigbee {
namespace {

using namespace bicord::time_literals;
using phy::FrameKind;

struct ZigbeeMacFixture : ::testing::Test {
  ZigbeeMacFixture()
      : sim(21), medium(sim, phy::PathLossModel{40.0, 3.0, 0.0, 0.1}) {
    node_a = medium.add_node("zA", {0.0, 0.0});
    node_b = medium.add_node("zB", {2.0, 0.0});
    wifi_node = medium.add_node("wifi", {1.0, 0.5});
    mac_a = std::make_unique<ZigbeeMac>(medium, node_a, config());
    mac_b = std::make_unique<ZigbeeMac>(medium, node_b, config());
  }

  static ZigbeeMac::Config config() {
    ZigbeeMac::Config c;
    c.channel = 24;
    c.tx_power_dbm = 0.0;
    return c;
  }

  void start_wifi_interference() {
    // Continuous strong Wi-Fi emission overlapping ZigBee channel 24.
    schedule_wifi_frame();
  }

  void schedule_wifi_frame() {
    phy::Frame f;
    f.tech = phy::Technology::WiFi;
    f.kind = FrameKind::Data;
    f.src = wifi_node;
    medium.begin_tx(f, phy::wifi_channel(11), 20.0, 900_us);
    wifi_event = sim.after(1_ms, [this] { schedule_wifi_frame(); });
  }

  sim::Simulator sim;
  phy::Medium medium;
  phy::NodeId node_a{};
  phy::NodeId node_b{};
  phy::NodeId wifi_node{};
  sim::EventId wifi_event = sim::kInvalidEventId;
  std::unique_ptr<ZigbeeMac> mac_a;
  std::unique_ptr<ZigbeeMac> mac_b;
};

TEST_F(ZigbeeMacFixture, CleanChannelDelivery) {
  std::vector<ZigbeeMac::SendOutcome> outcomes;
  mac_a->set_sent_callback([&](const ZigbeeMac::SendOutcome& o) { outcomes.push_back(o); });
  mac_a->enqueue({node_b, 50, FrameKind::Data, ZigbeeMac::kNoOverride, 0});
  sim.run_for(20_ms);
  ASSERT_EQ(outcomes.size(), 1u);
  EXPECT_TRUE(outcomes[0].delivered);
  EXPECT_FALSE(outcomes[0].channel_access_failure);
  EXPECT_EQ(outcomes[0].retries, 0);
}

TEST_F(ZigbeeMacFixture, FiftyBytePacketCycleIsAboutFiveMs) {
  // The paper's arithmetic: data (2.14 ms) + turnaround + ACK + CSMA.
  std::vector<ZigbeeMac::SendOutcome> outcomes;
  mac_a->set_sent_callback([&](const ZigbeeMac::SendOutcome& o) { outcomes.push_back(o); });
  mac_a->enqueue({node_b, 50, FrameKind::Data, ZigbeeMac::kNoOverride, 0});
  sim.run_for(30_ms);
  ASSERT_EQ(outcomes.size(), 1u);
  const Duration cycle = outcomes[0].completed - outcomes[0].enqueued;
  EXPECT_GT(cycle, 2500_us);
  EXPECT_LT(cycle, 8_ms);
}

TEST_F(ZigbeeMacFixture, CcaBlocksUnderWifi) {
  start_wifi_interference();
  sim.run_for(1_ms);
  EXPECT_TRUE(mac_a->channel_busy());
  std::vector<ZigbeeMac::SendOutcome> outcomes;
  mac_a->set_sent_callback([&](const ZigbeeMac::SendOutcome& o) { outcomes.push_back(o); });
  mac_a->enqueue({node_b, 50, FrameKind::Data, ZigbeeMac::kNoOverride, 0});
  sim.run_for(500_ms);
  ASSERT_EQ(outcomes.size(), 1u);
  // Either CSMA never got through (access failure) or every transmission
  // was corrupted by Wi-Fi: the packet is not delivered either way — the
  // paper's ">95 % loss under Wi-Fi" situation.
  EXPECT_FALSE(outcomes[0].delivered);
}

TEST_F(ZigbeeMacFixture, RawSendBypassesCca) {
  start_wifi_interference();
  sim.run_for(1_ms);
  bool done = false;
  mac_a->send_raw({phy::kBroadcastNode, 120, FrameKind::Control,
                   ZigbeeMac::kNoOverride, 0},
                  [&] { done = true; });
  EXPECT_TRUE(mac_a->radio().transmitting());
  sim.run_for(10_ms);
  EXPECT_TRUE(done);
}

TEST_F(ZigbeeMacFixture, RawSendWhileTransmittingThrows) {
  mac_a->send_raw({phy::kBroadcastNode, 120, FrameKind::Control,
                   ZigbeeMac::kNoOverride, 0});
  EXPECT_THROW(mac_a->send_raw({phy::kBroadcastNode, 120, FrameKind::Control,
                                ZigbeeMac::kNoOverride, 0}),
               std::logic_error);
}

TEST_F(ZigbeeMacFixture, PowerOverrideChangesReceivedStrength) {
  double rssi_default = 0.0;
  double rssi_low = 0.0;
  mac_b->set_rx_hook([&](const phy::RxResult& rx) {
    if (rx.frame.kind != FrameKind::Control) return;
    if (rx.frame.tag == 1) {
      rssi_default = rx.rssi_dbm;
    } else {
      rssi_low = rx.rssi_dbm;
    }
  });
  mac_a->send_raw({phy::kBroadcastNode, 120, FrameKind::Control,
                   ZigbeeMac::kNoOverride, 1});
  sim.run_for(10_ms);
  mac_a->send_raw({phy::kBroadcastNode, 120, FrameKind::Control, -10.0, 2});
  sim.run_for(10_ms);
  EXPECT_NEAR(rssi_default - rssi_low, 10.0, 4.0);  // fading adds noise
}

TEST_F(ZigbeeMacFixture, QueueAndFlush) {
  for (int i = 0; i < 4; ++i) {
    mac_a->enqueue({node_b, 50, FrameKind::Data, ZigbeeMac::kNoOverride, 0});
  }
  EXPECT_EQ(mac_a->queue_depth(), 3u);  // one became the in-flight attempt
  mac_a->flush_queue();
  EXPECT_EQ(mac_a->queue_depth(), 0u);
}

TEST_F(ZigbeeMacFixture, RetransmitsOnLostAck) {
  // Receiver disappears mid-run: sender must retry and finally give up.
  medium.set_position(node_b, {500.0, 0.0});
  std::vector<ZigbeeMac::SendOutcome> outcomes;
  mac_a->set_sent_callback([&](const ZigbeeMac::SendOutcome& o) { outcomes.push_back(o); });
  mac_a->enqueue({node_b, 50, FrameKind::Data, ZigbeeMac::kNoOverride, 0});
  sim.run_for(1_sec);
  ASSERT_EQ(outcomes.size(), 1u);
  EXPECT_FALSE(outcomes[0].delivered);
  EXPECT_EQ(outcomes[0].retries, mac_a->config().retry_limit + 1);
}

TEST_F(ZigbeeMacFixture, BurstSourceStatistics) {
  BurstSource::Config cfg;
  cfg.packets_per_burst = 5;
  cfg.payload_bytes = 50;
  cfg.mean_interval = 50_ms;
  cfg.poisson = false;
  BurstSource src(sim, cfg);
  int bursts = 0;
  int packets = 0;
  src.set_burst_callback([&](int n, std::uint32_t payload) {
    ++bursts;
    packets += n;
    EXPECT_EQ(payload, 50u);
  });
  src.start();
  sim.run_for(500_ms);
  EXPECT_EQ(bursts, 10);
  EXPECT_EQ(packets, 50);
  src.stop();
  sim.run_for(200_ms);
  EXPECT_EQ(bursts, 10);
}

TEST_F(ZigbeeMacFixture, PoissonBurstIntervalsHaveRightMean) {
  BurstSource::Config cfg;
  cfg.packets_per_burst = 1;
  cfg.mean_interval = 20_ms;
  cfg.poisson = true;
  BurstSource src(sim, cfg);
  int bursts = 0;
  src.set_burst_callback([&](int, std::uint32_t) { ++bursts; });
  src.start();
  sim.run_for(20_sec);
  EXPECT_NEAR(static_cast<double>(bursts), 1000.0, 150.0);
}

}  // namespace
}  // namespace bicord::zigbee
