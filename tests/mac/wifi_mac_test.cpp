#include "wifi/wifi_mac.hpp"

#include <gtest/gtest.h>

#include <vector>

#include "sim/simulator.hpp"
#include "wifi/traffic.hpp"

namespace bicord::wifi {
namespace {

using namespace bicord::time_literals;
using phy::FrameKind;

struct WifiMacFixture : ::testing::Test {
  WifiMacFixture()
      : sim(11), medium(sim, phy::PathLossModel{40.0, 3.0, 0.0, 0.1}) {
    node_a = medium.add_node("A", {0.0, 0.0});
    node_b = medium.add_node("B", {3.0, 0.0});
    node_c = medium.add_node("C", {1.5, 1.0});
    mac_a = std::make_unique<WifiMac>(medium, node_a, config());
    mac_b = std::make_unique<WifiMac>(medium, node_b, config());
  }

  static WifiMac::Config config() {
    WifiMac::Config c;
    c.channel = 11;
    c.tx_power_dbm = 20.0;
    return c;
  }

  sim::Simulator sim;
  phy::Medium medium;
  phy::NodeId node_a{};
  phy::NodeId node_b{};
  phy::NodeId node_c{};
  std::unique_ptr<WifiMac> mac_a;
  std::unique_ptr<WifiMac> mac_b;
};

TEST_F(WifiMacFixture, UnicastDataIsAcked) {
  std::vector<WifiMac::SendOutcome> outcomes;
  mac_a->set_sent_callback([&](const WifiMac::SendOutcome& o) { outcomes.push_back(o); });
  mac_a->enqueue({node_b, 500, FrameKind::Data, Duration::zero(), 0});
  sim.run_for(10_ms);
  ASSERT_EQ(outcomes.size(), 1u);
  EXPECT_TRUE(outcomes[0].delivered);
  EXPECT_EQ(outcomes[0].retries, 0);
  EXPECT_EQ(mac_a->delivered(), 1u);
  EXPECT_EQ(mac_a->dropped(), 0u);
}

TEST_F(WifiMacFixture, BroadcastNeedsNoAck) {
  bool sent = false;
  mac_a->set_sent_callback([&](const WifiMac::SendOutcome& o) {
    sent = true;
    EXPECT_TRUE(o.delivered);
  });
  mac_a->enqueue({phy::kBroadcastNode, 100, FrameKind::Data, Duration::zero(), 0});
  sim.run_for(5_ms);
  EXPECT_TRUE(sent);
}

TEST_F(WifiMacFixture, QueueDrainsInOrder) {
  std::vector<std::uint64_t> seqs;
  mac_a->set_sent_callback(
      [&](const WifiMac::SendOutcome& o) { seqs.push_back(o.frame.seq); });
  for (int i = 0; i < 5; ++i) {
    mac_a->enqueue({node_b, 200, FrameKind::Data, Duration::zero(), 0});
  }
  sim.run_for(50_ms);
  ASSERT_EQ(seqs.size(), 5u);
  for (std::size_t i = 1; i < seqs.size(); ++i) EXPECT_GT(seqs[i], seqs[i - 1]);
}

TEST_F(WifiMacFixture, EnqueueFrontPreempts) {
  std::vector<FrameKind> kinds;
  mac_a->set_sent_callback(
      [&](const WifiMac::SendOutcome& o) { kinds.push_back(o.frame.kind); });
  mac_a->enqueue({node_b, 1200, FrameKind::Data, Duration::zero(), 0});
  mac_a->enqueue({node_b, 1200, FrameKind::Data, Duration::zero(), 0});
  mac_a->enqueue_front({phy::kBroadcastNode, 0, FrameKind::Cts, Duration::zero(), 0});
  sim.run_for(50_ms);
  ASSERT_GE(kinds.size(), 2u);
  // The CTS entered at the front: it must not come last.
  EXPECT_NE(kinds.back(), FrameKind::Cts);
}

TEST_F(WifiMacFixture, RetriesWhenReceiverGone) {
  // Move B out of range: data cannot be ACKed, A retries then drops.
  medium.set_position(node_b, {1000.0, 0.0});
  std::vector<WifiMac::SendOutcome> outcomes;
  mac_a->set_sent_callback([&](const WifiMac::SendOutcome& o) { outcomes.push_back(o); });
  mac_a->enqueue({node_b, 200, FrameKind::Data, Duration::zero(), 0});
  sim.run_for(2_sec);
  ASSERT_EQ(outcomes.size(), 1u);
  EXPECT_FALSE(outcomes[0].delivered);
  EXPECT_EQ(outcomes[0].retries, mac_a->config().retry_limit + 1);
  EXPECT_EQ(mac_a->dropped(), 1u);
}

TEST_F(WifiMacFixture, CtsSilencesOtherMacs) {
  // B broadcasts a CTS with a 20 ms NAV; A must stay silent until it expires.
  std::vector<TimePoint> a_tx_times;
  mac_a->set_sent_callback(
      [&](const WifiMac::SendOutcome& o) { a_tx_times.push_back(o.completed); });

  mac_b->enqueue_front({phy::kBroadcastNode, 0, FrameKind::Cts, 20_ms, 0});
  sim.run_for(2_ms);  // CTS is on air / delivered
  const TimePoint nav_set = sim.now();
  mac_a->enqueue({node_b, 100, FrameKind::Data, Duration::zero(), 0});
  sim.run_for(50_ms);

  ASSERT_FALSE(a_tx_times.empty());
  EXPECT_GE(a_tx_times[0], nav_set + 18_ms);
  EXPECT_GT(mac_a->nav_until().us(), 0);
}

TEST_F(WifiMacFixture, CtsToSelfPausesSender) {
  mac_b->enqueue_front({phy::kBroadcastNode, 0, FrameKind::Cts, 30_ms, 0});
  sim.run_for(2_ms);
  EXPECT_TRUE(mac_b->paused());
  sim.run_for(40_ms);
  EXPECT_FALSE(mac_b->paused());
}

TEST_F(WifiMacFixture, PauseEndCallbackFires) {
  TimePoint ended;
  mac_a->set_pause_end_callback([&](TimePoint t) { ended = t; });
  mac_a->pause_for(10_ms);
  EXPECT_TRUE(mac_a->paused());
  sim.run_for(20_ms);
  EXPECT_EQ(ended.us(), 10000);
}

TEST_F(WifiMacFixture, PausesExtendNotShorten) {
  mac_a->pause_for(20_ms);
  mac_a->pause_for(5_ms);  // shorter: ignored
  sim.run_for(10_ms);
  EXPECT_TRUE(mac_a->paused());
  sim.run_for(15_ms);
  EXPECT_FALSE(mac_a->paused());
}

TEST_F(WifiMacFixture, PausedMacDefersTraffic) {
  std::vector<TimePoint> tx_times;
  mac_a->set_sent_callback(
      [&](const WifiMac::SendOutcome& o) { tx_times.push_back(o.completed); });
  mac_a->pause_for(25_ms);
  mac_a->enqueue({node_b, 100, FrameKind::Data, Duration::zero(), 0});
  sim.run_for(60_ms);
  ASSERT_EQ(tx_times.size(), 1u);
  EXPECT_GE(tx_times[0], TimePoint::from_us(25000));
}

TEST_F(WifiMacFixture, RxHookSeesOverheardFrames) {
  WifiMac mac_c(medium, node_c, config());
  int heard = 0;
  mac_c.set_rx_hook([&](const phy::RxResult& rx) {
    if (rx.frame.kind == FrameKind::Data) ++heard;
  });
  mac_a->enqueue({node_b, 300, FrameKind::Data, Duration::zero(), 0});
  sim.run_for(10_ms);
  EXPECT_EQ(heard, 1);  // C is not the destination but still hears it
}

TEST_F(WifiMacFixture, TwoSaturatedSendersShareChannel) {
  WifiMac mac_c(medium, node_c, config());
  SaturatedSource src_a(*mac_a, node_b, 1000);
  SaturatedSource src_c(mac_c, node_b, 1000);
  int a_done = 0;
  int c_done = 0;
  src_a.set_sent_callback([&](const WifiMac::SendOutcome& o) { a_done += o.delivered; });
  src_c.set_sent_callback([&](const WifiMac::SendOutcome& o) { c_done += o.delivered; });
  src_a.start();
  src_c.start();
  sim.run_for(200_ms);
  EXPECT_GT(a_done, 50);
  EXPECT_GT(c_done, 50);
  // Rough fairness: neither sender starves.
  EXPECT_GT(a_done, c_done / 4);
  EXPECT_GT(c_done, a_done / 4);
}

TEST_F(WifiMacFixture, CbrSourceGeneratesAtInterval) {
  CbrSource src(*mac_a, node_b, 100, 1_ms);
  src.start();
  sim.run_for(100_ms);
  EXPECT_NEAR(static_cast<double>(src.generated()), 100.0, 2.0);
  src.stop();
  const auto before = src.generated();
  sim.run_for(10_ms);
  EXPECT_EQ(src.generated(), before);
}

TEST_F(WifiMacFixture, PrioritySourceSchedulesWindows) {
  PriorityScheduleSource src(*mac_a, node_b, 500, 0.3, 100_ms);
  src.start();
  // At t=10ms we are inside the high-priority window (first 30 ms of cycle).
  sim.run_for(10_ms);
  EXPECT_TRUE(src.high_priority_active());
  sim.run_for(40_ms);  // t=50ms: low-priority part
  EXPECT_FALSE(src.high_priority_active());
  sim.run_for(60_ms);  // t=110ms: next cycle, high again
  EXPECT_TRUE(src.high_priority_active());
}

}  // namespace
}  // namespace bicord::wifi
