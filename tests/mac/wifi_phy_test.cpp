#include "wifi/wifi_phy.hpp"

#include <gtest/gtest.h>

namespace bicord::wifi {
namespace {

TEST(WifiPhyTest, DerivedIfsTimings) {
  PhyTimings t;
  EXPECT_EQ(t.difs(), Duration::from_us(28));  // SIFS + 2 slots
  EXPECT_EQ(t.pifs(), Duration::from_us(19));  // SIFS + 1 slot
}

TEST(WifiPhyTest, AirtimeWholeSymbols) {
  PhyTimings t;
  // 0-byte PSDU: 22 bits at 24 Mb/s -> 96 bits/symbol -> 1 symbol.
  EXPECT_EQ(t.airtime(0, 24.0), Duration::from_us(24));
  // 100 bytes + 28 MAC overhead at 24 Mb/s: 16+1024+6=1046 bits -> 11 sym.
  EXPECT_EQ(t.data_airtime(100), Duration::from_us(20 + 11 * 4));
}

TEST(WifiPhyTest, AirtimeMonotoneInSize) {
  PhyTimings t;
  Duration prev = t.data_airtime(0);
  for (std::uint32_t b = 50; b <= 2000; b += 50) {
    const Duration cur = t.data_airtime(b);
    EXPECT_GE(cur, prev);
    prev = cur;
  }
}

TEST(WifiPhyTest, FasterRateShorterAirtime) {
  PhyTimings t;
  EXPECT_LT(t.airtime(1000, 54.0), t.airtime(1000, 24.0));
  EXPECT_LT(t.airtime(1000, 24.0), t.airtime(1000, 6.0));
}

TEST(WifiPhyTest, ControlFrameAirtimes) {
  PhyTimings t;
  // ACK/CTS are 14 bytes at the basic rate (6 Mb/s -> 24 bits/symbol):
  // 16 + 112 + 6 = 134 bits -> 6 symbols -> 20 + 24 us.
  EXPECT_EQ(t.ack_airtime(), Duration::from_us(44));
  EXPECT_EQ(t.cts_airtime(), Duration::from_us(44));
}

TEST(WifiPhyTest, HundredByteCbrFrameFitsWellUnderAMillisecond) {
  // The paper's Wi-Fi workload: 100-byte packets every 1 ms must leave idle
  // air between frames (that is what ZigBee control packets overlap).
  PhyTimings t;
  EXPECT_LT(t.data_airtime(100), Duration::from_us(200));
}

}  // namespace
}  // namespace bicord::wifi
