#include "zigbee/duty_cycle.hpp"

#include <gtest/gtest.h>

#include "zigbee/energy.hpp"

namespace bicord::zigbee {
namespace {

using namespace bicord::time_literals;

struct DutyFixture : ::testing::Test {
  DutyFixture() : sim(131), medium(sim, phy::PathLossModel{40.0, 3.0, 0.0, 0.1}) {
    a = medium.add_node("a", {0.0, 0.0});
    b = medium.add_node("b", {1.0, 0.0});
    mac_a = std::make_unique<ZigbeeMac>(medium, a, ZigbeeMac::Config{});
    mac_b = std::make_unique<ZigbeeMac>(medium, b, ZigbeeMac::Config{});
  }
  sim::Simulator sim;
  phy::Medium medium;
  phy::NodeId a{}, b{};
  std::unique_ptr<ZigbeeMac> mac_a;
  std::unique_ptr<ZigbeeMac> mac_b;
};

TEST_F(DutyFixture, SleepsAfterIdleTimeout) {
  DutyCycler cycler(*mac_a, {5_ms});
  EXPECT_FALSE(cycler.sleeping());
  sim.run_for(10_ms);
  EXPECT_TRUE(cycler.sleeping());
  EXPECT_EQ(cycler.sleep_transitions(), 1u);
}

TEST_F(DutyFixture, WakeRestoresOperation) {
  DutyCycler cycler(*mac_a, {5_ms});
  sim.run_for(10_ms);
  ASSERT_TRUE(cycler.sleeping());
  cycler.wake();
  EXPECT_FALSE(cycler.sleeping());
  mac_a->enqueue({b, 50, phy::FrameKind::Data, ZigbeeMac::kNoOverride, 0});
  sim.run_for(20_ms);
  EXPECT_EQ(mac_a->delivered(), 1u);
  // And it goes back to sleep after the exchange.
  sim.run_for(20_ms);
  EXPECT_TRUE(cycler.sleeping());
}

TEST_F(DutyFixture, DoesNotSleepWhileQueueBusy) {
  DutyCycler cycler(*mac_a, {2_ms});
  for (int i = 0; i < 5; ++i) {
    mac_a->enqueue({b, 100, phy::FrameKind::Data, ZigbeeMac::kNoOverride, 0});
  }
  sim.run_for(4_ms);  // mid-burst: must stay awake
  EXPECT_FALSE(cycler.sleeping());
  sim.run_for(100_ms);
  EXPECT_TRUE(cycler.sleeping());
  EXPECT_EQ(mac_a->delivered(), 5u);
}

TEST_F(DutyFixture, SleepSlashesIdleEnergy) {
  EnergyMeter awake_meter(sim);
  awake_meter.attach(mac_a->radio());
  EnergyMeter duty_meter(sim);
  duty_meter.attach(mac_b->radio());
  DutyCycler cycler(*mac_b, {5_ms});
  sim.run_for(1_sec);
  // Always-idle listen: 0.426 mA x 3 V x 1 s. Duty-cycled: ~0.02 mA after
  // the first 5 ms.
  EXPECT_GT(awake_meter.total_mj(), 1.0);
  EXPECT_LT(duty_meter.total_mj(), 0.15);
}

}  // namespace
}  // namespace bicord::zigbee
