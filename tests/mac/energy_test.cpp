#include "zigbee/energy.hpp"

#include <gtest/gtest.h>

#include "phy/medium.hpp"
#include "sim/simulator.hpp"
#include "zigbee/zigbee_mac.hpp"

namespace bicord::zigbee {
namespace {

using namespace bicord::time_literals;

struct EnergyFixture : ::testing::Test {
  EnergyFixture() : sim(31), medium(sim, phy::PathLossModel{40.0, 3.0, 0.0, 0.1}) {
    node = medium.add_node("z", {0.0, 0.0});
    peer = medium.add_node("p", {1.0, 0.0});
  }
  sim::Simulator sim;
  phy::Medium medium;
  phy::NodeId node{};
  phy::NodeId peer{};
};

TEST_F(EnergyFixture, IdleDrawMatchesDatasheet) {
  EnergyMeter meter(sim);
  ZigbeeMac mac(medium, node, ZigbeeMac::Config{});
  meter.attach(mac.radio());
  sim.run_for(1_sec);
  // Idle: 0.426 mA * 3 V * 1 s = 1.278 mJ.
  EXPECT_NEAR(meter.total_mj(), 1.278, 0.01);
  EXPECT_EQ(meter.time_in(phy::RadioState::Idle), 1_sec);
}

TEST_F(EnergyFixture, TransmitEnergyAccounted) {
  EnergyMeter meter(sim);
  ZigbeeMac mac(medium, node, ZigbeeMac::Config{});
  meter.attach(mac.radio());
  meter.set_tx_power_dbm(0.0);
  mac.send_raw({phy::kBroadcastNode, 120, phy::FrameKind::Control,
                ZigbeeMac::kNoOverride, 0});
  sim.run_for(10_ms);
  // Control frame: (120+17) bytes * 32 us = 4.384 ms at 17.4 mA, 3 V.
  const double expected_tx = 17.4 * 3.0 * 0.004384;
  EXPECT_NEAR(meter.tx_mj(), expected_tx, 0.005);
  EXPECT_EQ(meter.time_in(phy::RadioState::Tx), Duration::from_us(137 * 32));
}

TEST_F(EnergyFixture, LowerPowerDrawsLessCurrent) {
  EnergyMeter meter_hi(sim);
  EnergyMeter meter_lo(sim);
  meter_hi.set_tx_power_dbm(0.0);
  meter_lo.set_tx_power_dbm(-25.0);
  ZigbeeMac mac_hi(medium, node, ZigbeeMac::Config{});
  ZigbeeMac mac_lo(medium, peer, ZigbeeMac::Config{});
  meter_hi.attach(mac_hi.radio());
  meter_lo.attach(mac_lo.radio());
  mac_hi.send_raw({phy::kBroadcastNode, 120, phy::FrameKind::Control, 0.0, 0});
  mac_lo.send_raw({phy::kBroadcastNode, 120, phy::FrameKind::Control, -25.0, 0});
  sim.run_for(10_ms);
  EXPECT_GT(meter_hi.tx_mj(), meter_lo.tx_mj());
  EXPECT_NEAR(meter_lo.tx_mj() / meter_hi.tx_mj(), 8.5 / 17.4, 0.01);
}

TEST_F(EnergyFixture, AddListenCreditsRxEnergy) {
  EnergyMeter meter(sim);
  meter.add_listen(5_ms);
  EXPECT_NEAR(meter.rx_mj(), 18.8 * 3.0 * 0.005, 1e-9);
  meter.add_listen(Duration::zero());
  meter.add_listen(Duration::from_us(-5));
  EXPECT_NEAR(meter.rx_mj(), 18.8 * 3.0 * 0.005, 1e-9);
}

TEST_F(EnergyFixture, ResetZeroesAccumulators) {
  EnergyMeter meter(sim);
  meter.add_listen(5_ms);
  meter.reset();
  EXPECT_DOUBLE_EQ(meter.rx_mj(), 0.0);
  EXPECT_NEAR(meter.total_mj(), 0.0, 1e-9);
}

TEST_F(EnergyFixture, SleepDrawsAlmostNothing) {
  EnergyMeter meter(sim);
  ZigbeeMac mac(medium, node, ZigbeeMac::Config{});
  meter.attach(mac.radio());
  mac.radio().sleep();
  sim.run_for(1_sec);
  EXPECT_LT(meter.total_mj(), 0.1);
  EXPECT_EQ(meter.time_in(phy::RadioState::Sleep), 1_sec);
}

}  // namespace
}  // namespace bicord::zigbee
