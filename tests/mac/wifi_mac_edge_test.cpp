// Edge cases of the Wi-Fi MAC: NAV vs pause interaction, control-frame
// expedited access, CCA measurement noise, and listener lifecycle safety.

#include <gtest/gtest.h>

#include "phy/tracer.hpp"
#include "sim/simulator.hpp"
#include "wifi/wifi_mac.hpp"

namespace bicord::wifi {
namespace {

using namespace bicord::time_literals;
using phy::FrameKind;

struct EdgeFixture : ::testing::Test {
  EdgeFixture() : sim(141), medium(sim, phy::PathLossModel{40.0, 3.0, 0.0, 0.1}) {
    a = medium.add_node("A", {0.0, 0.0});
    b = medium.add_node("B", {3.0, 0.0});
    c = medium.add_node("C", {1.5, 1.0});
    mac_a = std::make_unique<WifiMac>(medium, a, WifiMac::Config{});
    mac_b = std::make_unique<WifiMac>(medium, b, WifiMac::Config{});
  }
  sim::Simulator sim;
  phy::Medium medium;
  phy::NodeId a{}, b{}, c{};
  std::unique_ptr<WifiMac> mac_a;
  std::unique_ptr<WifiMac> mac_b;
};

TEST_F(EdgeFixture, NavAndPauseComposeToLaterGate) {
  // A is paused for 10 ms and then hears a CTS reserving 30 ms: the later
  // gate (NAV) wins.
  mac_a->pause_for(10_ms);
  mac_b->enqueue_front({phy::kBroadcastNode, 0, FrameKind::Cts, 30_ms, 0});
  sim.run_for(2_ms);
  std::vector<TimePoint> sent;
  mac_a->set_sent_callback(
      [&](const WifiMac::SendOutcome& o) { sent.push_back(o.completed); });
  mac_a->enqueue({b, 100, FrameKind::Data, Duration::zero(), 0});
  sim.run_for(60_ms);
  ASSERT_EQ(sent.size(), 1u);
  EXPECT_GE(sent[0], TimePoint::from_us(30000));
}

TEST_F(EdgeFixture, CtsGetsPifsExpeditedAccess) {
  // A CTS reaches the air after a bare PIFS with no random backoff.
  phy::MediumTracer tracer(medium);
  mac_a->enqueue_front({phy::kBroadcastNode, 0, FrameKind::Cts, 5_ms, 0});
  sim.run_for(5_ms);
  ASSERT_GE(tracer.records().size(), 1u);
  EXPECT_EQ(tracer.records()[0].kind, FrameKind::Cts);
  EXPECT_LE(tracer.records()[0].start.us(), 30);  // PIFS = 19 us (+ slack)

  // enqueue_front queues ahead of *pending* frames but cannot preempt an
  // attempt already contending: data enqueued first still wins.
  tracer.clear();
  sim.run_for(10_ms);
  mac_a->enqueue({b, 1000, FrameKind::Data, Duration::zero(), 0});
  mac_a->enqueue({b, 1000, FrameKind::Data, Duration::zero(), 0});
  mac_a->enqueue_front({phy::kBroadcastNode, 0, FrameKind::Cts, 5_ms, 0});
  sim.run_for(30_ms);
  // Consider only A's transmissions (B's ACKs interleave on the trace).
  std::vector<FrameKind> from_a;
  for (const auto& r : tracer.records()) {
    if (r.src == a) from_a.push_back(r.kind);
  }
  ASSERT_GE(from_a.size(), 3u);
  EXPECT_EQ(from_a[0], FrameKind::Data);  // already contending: not preempted
  EXPECT_EQ(from_a[1], FrameKind::Cts);   // front of the pending queue
  EXPECT_EQ(from_a[2], FrameKind::Data);
}

TEST_F(EdgeFixture, SelfPauseDoesNotBlockAcks) {
  // B is inside its own reservation but must still ACK A's traffic once the
  // NAV (set on A by the same CTS) expires — ACKs bypass contention.
  mac_b->enqueue_front({phy::kBroadcastNode, 0, FrameKind::Cts, 15_ms, 0});
  sim.run_for(20_ms);  // reservation over
  bool delivered = false;
  mac_a->set_sent_callback(
      [&](const WifiMac::SendOutcome& o) { delivered = o.delivered; });
  mac_a->enqueue({b, 200, FrameKind::Data, Duration::zero(), 0});
  sim.run_for(20_ms);
  EXPECT_TRUE(delivered);
}

TEST_F(EdgeFixture, ZeroCcaNoiseIsDeterministic) {
  // Two identically-seeded simulators with zero CCA noise must produce the
  // exact same delivery timeline.
  auto run = [](std::uint64_t seed) {
    sim::Simulator sim2(seed);
    phy::Medium medium2(sim2, phy::PathLossModel{40.0, 3.0, 0.0, 0.1});
    const auto x = medium2.add_node("x", {0.0, 0.0});
    const auto y = medium2.add_node("y", {3.0, 0.0});
    WifiMac mx(medium2, x, WifiMac::Config{});
    WifiMac my(medium2, y, WifiMac::Config{});
    std::vector<std::int64_t> times;
    mx.set_sent_callback(
        [&](const WifiMac::SendOutcome& o) { times.push_back(o.completed.us()); });
    for (int i = 0; i < 10; ++i) {
      mx.enqueue({y, 500, FrameKind::Data, Duration::zero(), 0});
    }
    sim2.run_for(100_ms);
    return times;
  };
  EXPECT_EQ(run(77), run(77));
  EXPECT_NE(run(77), run(78));
}

TEST_F(EdgeFixture, QueueDepthTracksLifecycle) {
  EXPECT_EQ(mac_a->queue_depth(), 0u);
  for (int i = 0; i < 3; ++i) {
    mac_a->enqueue({b, 100, FrameKind::Data, Duration::zero(), 0});
  }
  // One became the in-flight attempt.
  EXPECT_EQ(mac_a->queue_depth(), 2u);
  sim.run_for(50_ms);
  EXPECT_EQ(mac_a->queue_depth(), 0u);
  EXPECT_EQ(mac_a->delivered(), 3u);
}

TEST_F(EdgeFixture, MediumListenerDetachDuringCallbackIsSafe) {
  struct OneShot : phy::MediumListener {
    phy::Medium& medium;
    int events = 0;
    explicit OneShot(phy::Medium& m) : medium(m) { medium.attach(this); }
    void on_tx_start(const phy::ActiveTransmission&) override {
      ++events;
      medium.detach(this);  // detach from inside the notification
    }
    void on_tx_end(const phy::ActiveTransmission&) override { ++events; }
  } listener(medium);

  mac_a->enqueue({phy::kBroadcastNode, 100, FrameKind::Data, Duration::zero(), 0});
  sim.run_for(10_ms);
  mac_a->enqueue({phy::kBroadcastNode, 100, FrameKind::Data, Duration::zero(), 0});
  sim.run_for(10_ms);
  // Only the first start event observed: one from on_tx_start, possibly one
  // end from the snapshot taken before detach.
  EXPECT_LE(listener.events, 2);
  EXPECT_GE(listener.events, 1);
}

TEST_F(EdgeFixture, AttachDuringCallbackTakesEffectNextTransmission) {
  struct Spawner : phy::MediumListener {
    phy::Medium& medium;
    phy::MediumListener* child;
    explicit Spawner(phy::Medium& m, phy::MediumListener* kid)
        : medium(m), child(kid) {
      medium.attach(this);
    }
    void on_tx_start(const phy::ActiveTransmission&) override {
      medium.attach(child);
      medium.detach(this);
    }
    void on_tx_end(const phy::ActiveTransmission&) override {}
  };
  struct Counter : phy::MediumListener {
    int starts = 0;
    void on_tx_start(const phy::ActiveTransmission&) override { ++starts; }
    void on_tx_end(const phy::ActiveTransmission&) override {}
  } counter;
  Spawner spawner(medium, &counter);

  mac_a->enqueue({phy::kBroadcastNode, 100, FrameKind::Data, Duration::zero(), 0});
  sim.run_for(10_ms);
  const int after_first = counter.starts;
  mac_a->enqueue({phy::kBroadcastNode, 100, FrameKind::Data, Duration::zero(), 0});
  sim.run_for(10_ms);
  EXPECT_EQ(counter.starts, after_first + 1);
  medium.detach(&counter);
}

}  // namespace
}  // namespace bicord::wifi
