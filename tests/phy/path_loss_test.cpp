#include "phy/path_loss.hpp"

#include <gtest/gtest.h>

#include "phy/geometry.hpp"

namespace bicord::phy {
namespace {

TEST(PathLossTest, ReferenceLossAtOneMetre) {
  PathLossModel m{40.0, 3.0, 0.0, 0.1};
  EXPECT_DOUBLE_EQ(m.mean_loss_db(1.0), 40.0);
}

TEST(PathLossTest, TenXDistanceAdds10nDb) {
  PathLossModel m{40.0, 3.0, 0.0, 0.1};
  EXPECT_NEAR(m.mean_loss_db(10.0) - m.mean_loss_db(1.0), 30.0, 1e-9);
}

TEST(PathLossTest, MonotoneInDistance) {
  PathLossModel m{40.0, 2.8, 0.0, 0.1};
  double prev = m.mean_loss_db(0.2);
  for (double d = 0.4; d < 50.0; d += 0.4) {
    const double cur = m.mean_loss_db(d);
    EXPECT_GT(cur, prev);
    prev = cur;
  }
}

TEST(PathLossTest, NearFieldClamped) {
  PathLossModel m{40.0, 3.0, 0.0, 0.5};
  EXPECT_DOUBLE_EQ(m.mean_loss_db(0.01), m.mean_loss_db(0.5));
}

TEST(PathLossTest, ShadowingDeterministicPerLink) {
  PathLossModel m{40.0, 3.0, 4.0, 0.1};
  EXPECT_DOUBLE_EQ(m.shadowing_db(12345), m.shadowing_db(12345));
  EXPECT_NE(m.shadowing_db(12345), m.shadowing_db(54321));
}

TEST(PathLossTest, ShadowingZeroWhenDisabled) {
  PathLossModel m{40.0, 3.0, 0.0, 0.1};
  EXPECT_DOUBLE_EQ(m.shadowing_db(999), 0.0);
}

TEST(PathLossTest, ShadowingRoughlyZeroMeanUnitSpread) {
  PathLossModel m{40.0, 3.0, 4.0, 0.1};
  double sum = 0.0;
  double sum2 = 0.0;
  const int n = 10000;
  for (int i = 0; i < n; ++i) {
    const double v = m.shadowing_db(static_cast<std::uint64_t>(i) * 2654435761u);
    sum += v;
    sum2 += v * v;
  }
  const double mean = sum / n;
  const double sd = std::sqrt(sum2 / n - mean * mean);
  EXPECT_NEAR(mean, 0.0, 0.15);
  EXPECT_NEAR(sd, 4.0, 0.15);
}

TEST(GeometryTest, DistanceMatchesPythagoras) {
  EXPECT_DOUBLE_EQ(distance({0.0, 0.0}, {3.0, 4.0}), 5.0);
  EXPECT_DOUBLE_EQ(distance({1.0, 1.0}, {1.0, 1.0}), 0.0);
  EXPECT_DOUBLE_EQ(distance({-1.0, 0.0}, {2.0, 4.0}), 5.0);
}

}  // namespace
}  // namespace bicord::phy
