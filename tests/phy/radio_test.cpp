#include "phy/radio.hpp"

#include <gtest/gtest.h>

#include <optional>

#include "sim/simulator.hpp"

namespace bicord::phy {
namespace {

using namespace bicord::time_literals;

struct RadioFixture : ::testing::Test {
  RadioFixture() : sim(1), medium(sim, PathLossModel{40.0, 3.0, 0.0, 0.1}) {
    tx_node = medium.add_node("tx", {0.0, 0.0});
    rx_node = medium.add_node("rx", {1.0, 0.0});
    jam_node = medium.add_node("jam", {1.5, 0.5});
  }

  Radio::Config zb_config(double sensitivity = -95.0) {
    Radio::Config c;
    c.tech = Technology::ZigBee;
    c.band = zigbee_channel(24);
    c.sensitivity_dbm = sensitivity;
    c.sinr_threshold_db = 3.0;
    c.sinr_width_db = 0.01;   // near-hard decision for deterministic tests
    c.fading_sigma_db = 0.0;  // deterministic power
    return c;
  }

  Frame data_frame(NodeId src, NodeId dst) {
    Frame f;
    f.tech = Technology::ZigBee;
    f.kind = FrameKind::Data;
    f.src = src;
    f.dst = dst;
    f.bytes = 60;
    f.seq = 7;
    return f;
  }

  sim::Simulator sim;
  Medium medium;
  NodeId tx_node{};
  NodeId rx_node{};
  NodeId jam_node{};
};

TEST_F(RadioFixture, CleanFrameIsReceived) {
  Radio tx(medium, tx_node, zb_config());
  Radio rx(medium, rx_node, zb_config());
  std::optional<RxResult> got;
  rx.set_rx_callback([&](const RxResult& r) { got = r; });

  tx.transmit(data_frame(tx_node, rx_node), 0.0, 2_ms);
  EXPECT_TRUE(rx.receiving());
  sim.run_for(3_ms);

  ASSERT_TRUE(got.has_value());
  EXPECT_TRUE(got->success);
  EXPECT_EQ(got->frame.seq, 7u);
  EXPECT_NEAR(got->rssi_dbm, -40.0, 0.01);
  EXPECT_GT(got->min_sinr_db, 50.0);
  EXPECT_FALSE(got->zigbee_overlap);
  EXPECT_EQ(rx.frames_received(), 1u);
  EXPECT_EQ(tx.frames_sent(), 1u);
}

TEST_F(RadioFixture, StrongInterferenceCorruptsFrame) {
  Radio tx(medium, tx_node, zb_config());
  Radio rx(medium, rx_node, zb_config());
  std::optional<RxResult> got;
  rx.set_rx_callback([&](const RxResult& r) { got = r; });

  tx.transmit(data_frame(tx_node, rx_node), 0.0, 2_ms);
  // Jam mid-frame with comparable power from close range.
  sim.run_for(Duration::from_us(500));
  Frame jam;
  jam.tech = Technology::ZigBee;
  jam.kind = FrameKind::Data;
  jam.src = jam_node;
  medium.begin_tx(jam, zigbee_channel(24), 10.0, 1_ms);
  sim.run_for(3_ms);

  ASSERT_TRUE(got.has_value());
  EXPECT_FALSE(got->success);
  EXPECT_TRUE(got->zigbee_overlap);
  EXPECT_GT(got->zigbee_overlap_dbm, -60.0);
  EXPECT_EQ(rx.frames_corrupted(), 1u);
}

TEST_F(RadioFixture, BelowSensitivityNotLocked) {
  Radio rx(medium, rx_node, zb_config(-30.0));  // deaf radio
  bool any = false;
  rx.set_rx_callback([&](const RxResult&) { any = true; });
  medium.begin_tx(data_frame(tx_node, rx_node), zigbee_channel(24), 0.0, 1_ms);
  EXPECT_FALSE(rx.receiving());
  sim.run_for(2_ms);
  EXPECT_FALSE(any);
}

TEST_F(RadioFixture, CrossTechnologyFramesAreEnergyNotFrames) {
  Radio rx(medium, rx_node, zb_config());
  bool any = false;
  rx.set_rx_callback([&](const RxResult&) { any = true; });
  Frame wf;
  wf.tech = Technology::WiFi;
  wf.src = tx_node;
  medium.begin_tx(wf, wifi_channel(11), 20.0, 1_ms);
  EXPECT_FALSE(rx.receiving());
  EXPECT_GT(rx.energy_dbm(), -60.0);  // but the energy is visible
  sim.run_for(2_ms);
  EXPECT_FALSE(any);
}

TEST_F(RadioFixture, HalfDuplexTransmitAbortsReception) {
  Radio tx(medium, tx_node, zb_config());
  Radio rx(medium, rx_node, zb_config());
  int received = 0;
  rx.set_rx_callback([&](const RxResult&) { ++received; });

  tx.transmit(data_frame(tx_node, rx_node), 0.0, 2_ms);
  EXPECT_TRUE(rx.receiving());
  rx.transmit(data_frame(rx_node, tx_node), 0.0, 1_ms);
  EXPECT_TRUE(rx.transmitting());
  sim.run_for(5_ms);
  EXPECT_EQ(received, 0);  // aborted reception is not delivered
}

TEST_F(RadioFixture, TxDoneCallbackAndStateTransitions) {
  Radio tx(medium, tx_node, zb_config());
  std::vector<std::pair<RadioState, RadioState>> transitions;
  tx.set_state_callback([&](RadioState a, RadioState b) { transitions.emplace_back(a, b); });
  bool done = false;
  tx.transmit(data_frame(tx_node, rx_node), 0.0, 1_ms, [&] { done = true; });
  EXPECT_EQ(tx.state(), RadioState::Tx);
  sim.run_for(2_ms);
  EXPECT_TRUE(done);
  EXPECT_EQ(tx.state(), RadioState::Idle);
  ASSERT_EQ(transitions.size(), 2u);
  EXPECT_EQ(transitions[0], std::make_pair(RadioState::Idle, RadioState::Tx));
  EXPECT_EQ(transitions[1], std::make_pair(RadioState::Tx, RadioState::Idle));
}

TEST_F(RadioFixture, TransmitWhileTransmittingThrows) {
  Radio tx(medium, tx_node, zb_config());
  tx.transmit(data_frame(tx_node, rx_node), 0.0, 2_ms);
  EXPECT_THROW(tx.transmit(data_frame(tx_node, rx_node), 0.0, 1_ms), std::logic_error);
}

TEST_F(RadioFixture, SleepingRadioIgnoresFrames) {
  Radio rx(medium, rx_node, zb_config());
  rx.sleep();
  EXPECT_EQ(rx.state(), RadioState::Sleep);
  EXPECT_THROW(rx.transmit(data_frame(rx_node, tx_node), 0.0, 1_ms), std::logic_error);
  bool any = false;
  rx.set_rx_callback([&](const RxResult&) { any = true; });
  medium.begin_tx(data_frame(tx_node, rx_node), zigbee_channel(24), 0.0, 1_ms);
  sim.run_for(2_ms);
  EXPECT_FALSE(any);
  rx.wake();
  EXPECT_EQ(rx.state(), RadioState::Idle);
}

TEST_F(RadioFixture, ActivityCallbackFiresOnEdges) {
  Radio rx(medium, rx_node, zb_config());
  int edges = 0;
  rx.set_activity_callback([&] { ++edges; });
  medium.begin_tx(data_frame(tx_node, rx_node), zigbee_channel(24), 0.0, 1_ms);
  sim.run_for(2_ms);
  EXPECT_EQ(edges, 2);  // start + end
}

TEST_F(RadioFixture, NarrowbandDiscountProtectsWideReceiver) {
  // A Wi-Fi radio with a narrowband discount survives a strong ZigBee
  // overlap that would otherwise corrupt the frame.
  Radio::Config wf_cfg;
  wf_cfg.tech = Technology::WiFi;
  wf_cfg.band = wifi_channel(11);
  wf_cfg.sensitivity_dbm = -82.0;
  wf_cfg.sinr_threshold_db = 5.0;
  wf_cfg.sinr_width_db = 0.01;
  wf_cfg.fading_sigma_db = 0.0;
  wf_cfg.narrowband_discount_db = 20.0;

  Radio rx(medium, rx_node, wf_cfg);
  std::optional<RxResult> got;
  rx.set_rx_callback([&](const RxResult& r) { got = r; });

  Frame wifi_data;
  wifi_data.tech = Technology::WiFi;
  wifi_data.kind = FrameKind::Data;
  wifi_data.src = tx_node;
  wifi_data.dst = rx_node;
  medium.begin_tx(wifi_data, wifi_channel(11), 20.0, 1_ms);  // -20 dBm at rx

  Frame zb;
  zb.tech = Technology::ZigBee;
  zb.src = jam_node;
  medium.begin_tx(zb, zigbee_channel(24), 0.0, 1_ms);  // approx -35 dBm at rx

  sim.run_for(2_ms);
  ASSERT_TRUE(got.has_value());
  // Raw SINR approx 15 dB is above threshold already, but the test asserts
  // the diagnostics too: overlap was seen and the frame survived.
  EXPECT_TRUE(got->success);
  EXPECT_TRUE(got->zigbee_overlap);
}

TEST_F(RadioFixture, RetuneRecomputesOngoingForeignPowers) {
  // An idle radio may retune while foreign transmissions are on the air; the
  // tracked powers must follow the new band (the old code froze them at the
  // band active when each transmission appeared), and the per-transmission
  // fading draw must survive the recompute.
  Radio::Config cfg = zb_config();
  cfg.fading_sigma_db = 3.0;  // nonzero so a lost draw would show up
  Radio rx(medium, rx_node, cfg);

  Frame f;
  f.tech = Technology::WiFi;  // not lockable by a ZigBee radio: rx stays Idle
  f.kind = FrameKind::Data;
  f.src = tx_node;
  medium.begin_tx(f, wifi_channel(11), 15.0, 2_ms);  // covers ZigBee ch 24

  const double on_band = rx.energy_dbm();
  EXPECT_GT(on_band, -60.0);
  // Retune to a channel outside the transmission's band: only noise remains.
  rx.set_band(zigbee_channel(11));
  EXPECT_NEAR(rx.energy_dbm(), Medium::noise_floor_dbm(zigbee_channel(11)), 0.5);
  // Retune back: the original reading returns exactly (same fading draw).
  rx.set_band(zigbee_channel(24));
  EXPECT_DOUBLE_EQ(rx.energy_dbm(), on_band);
}

TEST_F(RadioFixture, NoiseFramesAreNeverDecodable) {
  Radio rx(medium, rx_node, zb_config());
  bool any = false;
  rx.set_rx_callback([&](const RxResult&) { any = true; });
  Frame noise;
  noise.tech = Technology::ZigBee;  // even same tech:
  noise.kind = FrameKind::Noise;    // noise kind is not lockable
  noise.src = tx_node;
  medium.begin_tx(noise, zigbee_channel(24), 0.0, 1_ms);
  EXPECT_FALSE(rx.receiving());
  sim.run_for(2_ms);
  EXPECT_FALSE(any);
}

}  // namespace
}  // namespace bicord::phy
