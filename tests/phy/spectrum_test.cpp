#include "phy/spectrum.hpp"

#include <gtest/gtest.h>

#include <cmath>

namespace bicord::phy {
namespace {

TEST(SpectrumTest, WifiChannelCenters) {
  EXPECT_DOUBLE_EQ(wifi_channel(1).center_mhz, 2412.0);
  EXPECT_DOUBLE_EQ(wifi_channel(6).center_mhz, 2437.0);
  EXPECT_DOUBLE_EQ(wifi_channel(11).center_mhz, 2462.0);
  EXPECT_DOUBLE_EQ(wifi_channel(13).center_mhz, 2472.0);
  EXPECT_DOUBLE_EQ(wifi_channel(1).width_mhz, 20.0);
}

TEST(SpectrumTest, ZigbeeChannelCenters) {
  EXPECT_DOUBLE_EQ(zigbee_channel(11).center_mhz, 2405.0);
  EXPECT_DOUBLE_EQ(zigbee_channel(24).center_mhz, 2470.0);
  EXPECT_DOUBLE_EQ(zigbee_channel(26).center_mhz, 2480.0);
  EXPECT_DOUBLE_EQ(zigbee_channel(11).width_mhz, 2.0);
}

TEST(SpectrumTest, BluetoothChannels) {
  EXPECT_DOUBLE_EQ(bluetooth_channel(0).center_mhz, 2402.0);
  EXPECT_DOUBLE_EQ(bluetooth_channel(78).center_mhz, 2480.0);
  EXPECT_DOUBLE_EQ(bluetooth_channel(10).width_mhz, 1.0);
}

TEST(SpectrumTest, RejectsOutOfRangeChannels) {
  EXPECT_THROW(wifi_channel(0), std::invalid_argument);
  EXPECT_THROW(wifi_channel(14), std::invalid_argument);
  EXPECT_THROW(zigbee_channel(10), std::invalid_argument);
  EXPECT_THROW(zigbee_channel(27), std::invalid_argument);
  EXPECT_THROW(bluetooth_channel(-1), std::invalid_argument);
  EXPECT_THROW(bluetooth_channel(79), std::invalid_argument);
}

TEST(SpectrumTest, PaperChannelPairingOverlaps) {
  // The paper pairs Wi-Fi ch 11/13 with ZigBee ch 24/26 "such that they
  // overlap in the frequency domain".
  EXPECT_GT(overlap_mhz(wifi_channel(11), zigbee_channel(24)), 0.0);
  EXPECT_GT(overlap_mhz(wifi_channel(13), zigbee_channel(26)), 0.0);
  // ZigBee ch 24 sits fully inside Wi-Fi ch 11.
  EXPECT_DOUBLE_EQ(overlap_mhz(wifi_channel(11), zigbee_channel(24)), 2.0);
}

TEST(SpectrumTest, DisjointBands) {
  EXPECT_DOUBLE_EQ(overlap_mhz(wifi_channel(1), zigbee_channel(26)), 0.0);
  EXPECT_DOUBLE_EQ(in_band_fraction(zigbee_channel(26), wifi_channel(1)), 0.0);
}

TEST(SpectrumTest, InBandFractionAsymmetry) {
  // ZigBee transmitter -> Wi-Fi receiver: the whole 2 MHz lands in band.
  EXPECT_DOUBLE_EQ(in_band_fraction(zigbee_channel(24), wifi_channel(11)), 1.0);
  // Wi-Fi transmitter -> ZigBee receiver: only 2/20 of the power lands.
  EXPECT_DOUBLE_EQ(in_band_fraction(wifi_channel(11), zigbee_channel(24)), 0.1);
}

TEST(SpectrumTest, OverlapLossDbMatchesFraction) {
  EXPECT_NEAR(overlap_loss_db(wifi_channel(11), zigbee_channel(24)), 10.0, 1e-9);
  EXPECT_NEAR(overlap_loss_db(zigbee_channel(24), wifi_channel(11)), 0.0, 1e-9);
  EXPECT_GE(overlap_loss_db(wifi_channel(1), zigbee_channel(26)), 200.0);
}

TEST(SpectrumTest, OverlapIsCommutative) {
  EXPECT_DOUBLE_EQ(overlap_mhz(wifi_channel(11), zigbee_channel(24)),
                   overlap_mhz(zigbee_channel(24), wifi_channel(11)));
}

class AllZigbeeChannels : public ::testing::TestWithParam<int> {};

TEST_P(AllZigbeeChannels, FiveMhzSpacingAndPositiveWidth) {
  const int n = GetParam();
  const Band b = zigbee_channel(n);
  EXPECT_DOUBLE_EQ(b.center_mhz, 2405.0 + 5.0 * (n - 11));
  EXPECT_GT(b.width_mhz, 0.0);
  EXPECT_LT(b.lo(), b.hi());
}

INSTANTIATE_TEST_SUITE_P(Spectrum, AllZigbeeChannels, ::testing::Range(11, 27));

class AllWifiChannels : public ::testing::TestWithParam<int> {};

TEST_P(AllWifiChannels, EveryWifiChannelCoversSomeZigbeeChannel) {
  const Band w = wifi_channel(GetParam());
  int covered = 0;
  for (int z = 11; z <= 26; ++z) {
    if (in_band_fraction(zigbee_channel(z), w) == 1.0) ++covered;
  }
  // A 20 MHz Wi-Fi channel fully contains at least three ZigBee channels.
  EXPECT_GE(covered, 3);
}

INSTANTIATE_TEST_SUITE_P(Spectrum, AllWifiChannels, ::testing::Range(1, 14));

}  // namespace
}  // namespace bicord::phy
