#include "phy/medium.hpp"

#include <gtest/gtest.h>

#include "phy/units.hpp"
#include "sim/simulator.hpp"

namespace bicord::phy {
namespace {

using namespace bicord::time_literals;

struct Fixture : ::testing::Test {
  Fixture() : sim(1), medium(sim, PathLossModel{40.0, 3.0, 0.0, 0.1}) {}

  Frame zigbee_frame(NodeId src) {
    Frame f;
    f.tech = Technology::ZigBee;
    f.src = src;
    return f;
  }

  sim::Simulator sim;
  Medium medium;
};

TEST_F(Fixture, NodeRegistryRoundTrip) {
  const NodeId a = medium.add_node("a", {1.0, 2.0});
  const NodeId b = medium.add_node("b", {3.0, 4.0});
  EXPECT_EQ(medium.node_count(), 2u);
  EXPECT_EQ(medium.node_name(a), "a");
  EXPECT_EQ(medium.position(b).x, 3.0);
  medium.set_position(a, {5.0, 6.0});
  EXPECT_EQ(medium.position(a).y, 6.0);
  EXPECT_THROW(medium.position(99), std::out_of_range);
  EXPECT_THROW(medium.set_position(99, {0, 0}), std::out_of_range);
}

TEST_F(Fixture, RxPowerFollowsPathLossAndOverlap) {
  const NodeId tx = medium.add_node("tx", {0.0, 0.0});
  const NodeId rx = medium.add_node("rx", {1.0, 0.0});
  const Band zb = zigbee_channel(24);
  const Band wf = wifi_channel(11);

  // Same band at 1 m: P - PL(1m) = 0 - 40.
  EXPECT_NEAR(medium.rx_power_dbm(tx, 0.0, zb, rx, zb), -40.0, 1e-9);
  // ZigBee victim of a Wi-Fi transmission: extra 10 dB overlap loss.
  EXPECT_NEAR(medium.rx_power_dbm(tx, 20.0, wf, rx, zb), 20.0 - 40.0 - 10.0, 1e-9);
  // Wi-Fi victim of a ZigBee transmission: no overlap loss.
  EXPECT_NEAR(medium.rx_power_dbm(tx, 0.0, zb, rx, wf), -40.0, 1e-9);
}

TEST_F(Fixture, RxPowerSymmetricLinks) {
  const NodeId a = medium.add_node("a", {0.0, 0.0});
  const NodeId b = medium.add_node("b", {2.0, 0.0});
  const Band zb = zigbee_channel(24);
  EXPECT_DOUBLE_EQ(medium.rx_power_dbm(a, 0.0, zb, b, zb),
                   medium.rx_power_dbm(b, 0.0, zb, a, zb));
}

TEST_F(Fixture, EnergyIsNoiseFloorWhenIdle) {
  const NodeId rx = medium.add_node("rx", {0.0, 0.0});
  const Band zb = zigbee_channel(24);
  EXPECT_NEAR(medium.energy_dbm(rx, zb), Medium::noise_floor_dbm(zb), 1e-9);
}

TEST_F(Fixture, NoiseFloorScalesWithBandwidth) {
  // 20 MHz floor should be 10 dB above the 2 MHz floor.
  EXPECT_NEAR(Medium::noise_floor_dbm(wifi_channel(11)) -
                  Medium::noise_floor_dbm(zigbee_channel(24)),
              10.0, 1e-9);
}

TEST_F(Fixture, ActiveTransmissionRaisesEnergy) {
  const NodeId tx = medium.add_node("tx", {0.0, 0.0});
  const NodeId rx = medium.add_node("rx", {1.0, 0.0});
  const Band zb = zigbee_channel(24);
  medium.begin_tx(zigbee_frame(tx), zb, 0.0, 2_ms);
  EXPECT_NEAR(medium.energy_dbm(rx, zb), -40.0, 0.1);
  sim.run_for(3_ms);
  EXPECT_NEAR(medium.energy_dbm(rx, zb), Medium::noise_floor_dbm(zb), 1e-9);
}

TEST_F(Fixture, EnergyExcludesSelfAndRequestedSource) {
  const NodeId a = medium.add_node("a", {0.0, 0.0});
  const NodeId b = medium.add_node("b", {1.0, 0.0});
  const Band zb = zigbee_channel(24);
  medium.begin_tx(zigbee_frame(a), zb, 0.0, 2_ms);
  // a's own emission is not part of a's received energy.
  EXPECT_NEAR(medium.energy_dbm(a, zb), Medium::noise_floor_dbm(zb), 1e-9);
  // Excluding the transmitter removes its contribution at b.
  EXPECT_NEAR(medium.energy_dbm(b, zb, a), Medium::noise_floor_dbm(zb), 1e-9);
}

TEST_F(Fixture, EnergyCombinesMultipleSources) {
  const NodeId a = medium.add_node("a", {0.0, 1.0});
  const NodeId b = medium.add_node("b", {0.0, -1.0});
  const NodeId rx = medium.add_node("rx", {0.0, 0.0});
  const Band zb = zigbee_channel(24);
  medium.begin_tx(zigbee_frame(a), zb, 0.0, 2_ms);
  medium.begin_tx(zigbee_frame(b), zb, 0.0, 2_ms);
  // Two equal -40 dBm signals combine to -37 dBm.
  EXPECT_NEAR(medium.energy_dbm(rx, zb), -37.0, 0.1);
}

TEST_F(Fixture, ListenersSeeStartAndEnd) {
  struct Listener : MediumListener {
    int starts = 0;
    int ends = 0;
    void on_tx_start(const ActiveTransmission&) override { ++starts; }
    void on_tx_end(const ActiveTransmission&) override { ++ends; }
  } listener;
  const NodeId tx = medium.add_node("tx", {0.0, 0.0});
  medium.attach(&listener);
  medium.begin_tx(zigbee_frame(tx), zigbee_channel(24), 0.0, 1_ms);
  EXPECT_EQ(listener.starts, 1);
  EXPECT_EQ(listener.ends, 0);
  sim.run_for(2_ms);
  EXPECT_EQ(listener.ends, 1);
  medium.detach(&listener);
  medium.begin_tx(zigbee_frame(tx), zigbee_channel(24), 0.0, 1_ms);
  sim.run_for(2_ms);
  EXPECT_EQ(listener.starts, 1);
}

TEST_F(Fixture, AirtimeAccounting) {
  const NodeId z = medium.add_node("z", {0.0, 0.0});
  const NodeId w = medium.add_node("w", {1.0, 0.0});
  medium.begin_tx(zigbee_frame(z), zigbee_channel(24), 0.0, 3_ms);
  Frame wf;
  wf.tech = Technology::WiFi;
  wf.src = w;
  medium.begin_tx(wf, wifi_channel(11), 20.0, 5_ms);
  sim.run_for(10_ms);
  EXPECT_EQ(medium.airtime(Technology::ZigBee), 3_ms);
  EXPECT_EQ(medium.airtime(Technology::WiFi), 5_ms);
  EXPECT_EQ(medium.airtime(Technology::Bluetooth), Duration::zero());
  EXPECT_EQ(medium.airtime_of(z), 3_ms);
  EXPECT_EQ(medium.airtime_of(w), 5_ms);
}

TEST_F(Fixture, ActiveListReflectsInFlight) {
  const NodeId tx = medium.add_node("tx", {0.0, 0.0});
  EXPECT_TRUE(medium.active().empty());
  medium.begin_tx(zigbee_frame(tx), zigbee_channel(24), 0.0, 1_ms);
  EXPECT_EQ(medium.active().size(), 1u);
  sim.run_for(2_ms);
  EXPECT_TRUE(medium.active().empty());
}

TEST_F(Fixture, BeginTxValidatesArguments) {
  Frame f = zigbee_frame(0);
  EXPECT_THROW(medium.begin_tx(f, zigbee_channel(24), 0.0, 1_ms),
               std::invalid_argument);  // node 0 not registered
  const NodeId tx = medium.add_node("tx", {0.0, 0.0});
  f.src = tx;
  EXPECT_THROW(medium.begin_tx(f, zigbee_channel(24), 0.0, Duration::zero()),
               std::invalid_argument);
}

TEST_F(Fixture, FloorsVeryWeakSignals) {
  const NodeId tx = medium.add_node("tx", {0.0, 0.0});
  const NodeId rx = medium.add_node("rx", {1000.0, 0.0});
  const double p = medium.rx_power_dbm(tx, 0.0, zigbee_channel(24), rx, zigbee_channel(24));
  EXPECT_DOUBLE_EQ(p, kFloorDbm);
}

}  // namespace
}  // namespace bicord::phy
