#include "phy/tracer.hpp"

#include <gtest/gtest.h>

#include <sstream>

#include "sim/simulator.hpp"

namespace bicord::phy {
namespace {

using namespace bicord::time_literals;

struct TracerFixture : ::testing::Test {
  TracerFixture() : sim(91), medium(sim, PathLossModel{40.0, 3.0, 0.0, 0.1}) {
    wifi_node = medium.add_node("wifi", {0.0, 0.0});
    zb_node = medium.add_node("zigbee", {1.0, 0.0});
  }

  /// Schedules a transmission `delay` from *now* lasting `len`.
  void emit(Technology tech, FrameKind kind, NodeId src, Duration delay, Duration len) {
    sim.after(delay, [this, tech, kind, src, len] {
      Frame f;
      f.tech = tech;
      f.kind = kind;
      f.src = src;
      f.bytes = 42;
      const Band band = tech == Technology::WiFi ? wifi_channel(11) : zigbee_channel(24);
      medium.begin_tx(f, band, 0.0, len);
    });
  }

  sim::Simulator sim;
  Medium medium;
  NodeId wifi_node{};
  NodeId zb_node{};
};

TEST_F(TracerFixture, RecordsTransmissions) {
  MediumTracer tracer(medium);
  emit(Technology::WiFi, FrameKind::Data, wifi_node, 1_ms, 2_ms);
  emit(Technology::ZigBee, FrameKind::Control, zb_node, 2_ms, 4_ms);
  sim.run_for(10_ms);
  ASSERT_EQ(tracer.records().size(), 2u);
  EXPECT_EQ(tracer.records()[0].tech, Technology::WiFi);
  EXPECT_EQ(tracer.records()[0].start.us(), 1000);
  EXPECT_EQ(tracer.records()[0].end.us(), 3000);
  EXPECT_EQ(tracer.records()[1].kind, FrameKind::Control);
  EXPECT_EQ(tracer.records()[1].bytes, 42u);
}

TEST_F(TracerFixture, StopDetaches) {
  MediumTracer tracer(medium);
  emit(Technology::WiFi, FrameKind::Data, wifi_node, 1_ms, 1_ms);
  sim.run_for(3_ms);
  tracer.stop();
  emit(Technology::WiFi, FrameKind::Data, wifi_node, 1_ms, 1_ms);
  sim.run_for(3_ms);
  EXPECT_EQ(tracer.records().size(), 1u);
}

TEST_F(TracerFixture, WindowFiltersOverlap) {
  MediumTracer tracer(medium);
  emit(Technology::WiFi, FrameKind::Data, wifi_node, 1_ms, 1_ms);   // 1-2 ms
  emit(Technology::WiFi, FrameKind::Data, wifi_node, 5_ms, 1_ms);   // 5-6 ms
  emit(Technology::WiFi, FrameKind::Data, wifi_node, 10_ms, 1_ms);  // 10-11 ms
  sim.run_for(20_ms);
  const auto w = tracer.window(TimePoint::from_us(4000), TimePoint::from_us(7000));
  ASSERT_EQ(w.size(), 1u);
  EXPECT_EQ(w[0].start.us(), 5000);
}

TEST_F(TracerFixture, JsonlContainsFields) {
  MediumTracer tracer(medium);
  emit(Technology::ZigBee, FrameKind::Data, zb_node, 1_ms, 2_ms);
  sim.run_for(5_ms);
  std::ostringstream os;
  tracer.write_jsonl(os);
  const std::string line = os.str();
  EXPECT_NE(line.find("\"start_us\":1000"), std::string::npos);
  EXPECT_NE(line.find("\"end_us\":3000"), std::string::npos);
  EXPECT_NE(line.find("\"node\":\"zigbee\""), std::string::npos);
  EXPECT_NE(line.find("\"tech\":\"ZigBee\""), std::string::npos);
  EXPECT_NE(line.find("\"kind\":\"Data\""), std::string::npos);
  EXPECT_EQ(std::count(line.begin(), line.end(), '\n'), 1);
}

TEST_F(TracerFixture, TimelineShowsActivity) {
  MediumTracer tracer(medium);
  emit(Technology::WiFi, FrameKind::Data, wifi_node, 0_ms, 5_ms);
  emit(Technology::WiFi, FrameKind::Cts, wifi_node, 5_ms, 1_ms);
  emit(Technology::ZigBee, FrameKind::Data, zb_node, 6_ms, 4_ms);
  sim.run_for(20_ms);
  const std::string timeline =
      tracer.render_timeline(TimePoint::origin(), TimePoint::from_us(10000), 10);
  // Wi-Fi row: data for first half, CTS at bucket 5-6; ZigBee after.
  EXPECT_NE(timeline.find("wifi   |WWWWWC"), std::string::npos);
  EXPECT_NE(timeline.find("ZZZZ|"), std::string::npos);
  EXPECT_NE(timeline.find("other  |........"), std::string::npos);
}

TEST_F(TracerFixture, TimelineHandlesDegenerateArgs) {
  MediumTracer tracer(medium);
  EXPECT_TRUE(tracer.render_timeline(TimePoint::from_us(5), TimePoint::from_us(5)).empty());
  EXPECT_TRUE(
      tracer.render_timeline(TimePoint::from_us(9), TimePoint::from_us(5)).empty());
  EXPECT_TRUE(
      tracer.render_timeline(TimePoint::origin(), TimePoint::from_us(10), 0).empty());
}

TEST_F(TracerFixture, ClearResets) {
  MediumTracer tracer(medium);
  emit(Technology::WiFi, FrameKind::Data, wifi_node, 1_ms, 1_ms);
  sim.run_for(5_ms);
  tracer.clear();
  EXPECT_TRUE(tracer.records().empty());
}

}  // namespace
}  // namespace bicord::phy
