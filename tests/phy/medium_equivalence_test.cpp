// Reference-equivalence suite for the spatially-indexed medium.
//
// Two worlds run the same randomized script — same nodes, same transmissions,
// same moves, same listener churn — one on the brute-force Medium, one on the
// spatially-indexed Medium. Every energy query and rx-power probe must agree
// BITWISE (the index may only skip contributions the audibility predicate
// proves irrelevant, never change arithmetic), and the material notification
// streams (events audible at each bound listener, all events for globals)
// must be identical in content and order. DESIGN.md Sec. 12 documents why
// this holds by construction; this suite enforces it per seed across
// topology sizes from 10 to 1500 nodes, clustered and uniform placement,
// mobility (including sources that move mid-transmission), band retunes,
// and listener attach/detach churn.

#include <gtest/gtest.h>

#include <cstdint>
#include <cstring>
#include <memory>
#include <vector>

#include "coex/placement.hpp"
#include "phy/medium.hpp"
#include "phy/spectrum.hpp"
#include "phy/units.hpp"
#include "sim/simulator.hpp"
#include "util/rng.hpp"

namespace bicord::phy {
namespace {

std::uint64_t bits(double v) {
  std::uint64_t b = 0;
  std::memcpy(&b, &v, sizeof(b));
  return b;
}

/// Records the events material at its node: tx edges filtered by the shared
/// audibility predicate, moves filtered by the maximum interference radius.
/// Filtering at delivery time makes brute (which sees everything) and indexed
/// (which sees a superset of the material events) directly comparable: if the
/// indexed world ever culls a material event, its recorder's stream comes up
/// short; if both streams match, the superset difference was all no-ops.
struct BoundRecorder final : MediumListener {
  struct Ev {
    char kind;         // 'S' tx start, 'E' tx end, 'P' position change
    std::uint64_t id;  // tx id or moved node
  };

  Medium* medium = nullptr;
  NodeId node = kInvalidNode;
  double reach_m = 0.0;  ///< interference radius at the script's max power
  std::vector<Ev> evs;

  void on_tx_start(const ActiveTransmission& tx) override {
    if (medium->audible(tx, node)) evs.push_back({'S', tx.id});
  }
  void on_tx_end(const ActiveTransmission& tx) override {
    if (medium->audible(tx, node)) evs.push_back({'E', tx.id});
  }
  void on_position_change(NodeId moved) override {
    const Position self = medium->position(node);
    const Position other = medium->position(moved);
    if (distance2(self, other) <= reach_m * reach_m || moved == node) {
      evs.push_back({'P', moved});
    }
  }
};

/// Global listeners are promised the complete event stream in both modes, so
/// their recording carries no filter at all.
struct GlobalRecorder final : MediumListener {
  std::vector<BoundRecorder::Ev> evs;
  void on_tx_start(const ActiveTransmission& tx) override { evs.push_back({'S', tx.id}); }
  void on_tx_end(const ActiveTransmission& tx) override { evs.push_back({'E', tx.id}); }
  void on_position_change(NodeId moved) override { evs.push_back({'P', moved}); }
};

struct ScriptParams {
  std::size_t nodes = 50;
  int clusters = 0;          ///< 0 = uniform placement
  double area_m = 400.0;
  double cluster_sigma_m = 40.0;
  double shadow_sigma_db = 0.0;
  double snap_floor_dbm = -97.0;
  double cell_size_m = 0.0;  ///< 0 = derived
  int steps = 250;
  std::size_t bound_listeners = 40;  ///< capped at `nodes`
  int burst = 0;  ///< extra long-lived txes up front (drives the merge path)
  std::uint64_t seed = 1;
};

Band band_for(int i) {
  switch (i % 5) {
    case 0: return zigbee_channel(11 + (i / 5) % 16);
    case 1: return wifi_channel(1);
    case 2: return wifi_channel(6);
    case 3: return wifi_channel(11);
    default: return zigbee_channel(26 - (i / 5) % 16);
  }
}

class World {
 public:
  World(const ScriptParams& p, const std::vector<Position>& sites, bool spatial)
      : sim_(p.seed) {
    PathLossModel pl;
    pl.exponent = 3.8;
    pl.shadowing_sigma_db = p.shadow_sigma_db;
    MediumTuning tuning;
    tuning.snap_floor_dbm = p.snap_floor_dbm;
    tuning.spatial_index = spatial;
    tuning.cell_size_m = p.cell_size_m;
    tuning.max_tx_power_dbm = 20.0;
    medium_ = std::make_unique<Medium>(sim_, pl, tuning);
    for (std::size_t i = 0; i < sites.size(); ++i) {
      medium_->add_node("n" + std::to_string(i), sites[i]);
    }
  }

  sim::Simulator sim_;
  std::unique_ptr<Medium> medium_;
  std::vector<std::unique_ptr<BoundRecorder>> bound_;
  GlobalRecorder global_;
};

void attach_recorder(World& w, NodeId node) {
  auto rec = std::make_unique<BoundRecorder>();
  rec->medium = w.medium_.get();
  rec->node = node;
  rec->reach_m = w.medium_->interference_radius_m(20.0);
  w.medium_->attach(rec.get(), node);
  w.bound_.push_back(std::move(rec));
}

/// Drives both worlds through one shared script (one Rng, identical draws)
/// and asserts bitwise/stream equality after every step.
void run_equivalence(const ScriptParams& p) {
  SCOPED_TRACE("nodes=" + std::to_string(p.nodes) + " clusters=" +
               std::to_string(p.clusters) + " seed=" + std::to_string(p.seed));
  coex::PlacementParams pp;
  pp.area_m = p.area_m;
  pp.clusters = p.clusters;
  pp.cluster_sigma_m = p.cluster_sigma_m;
  const auto sites = coex::generate_placement(pp, p.nodes, p.seed * 31 + 7);

  World brute(p, sites, false);
  World indexed(p, sites, true);
  ASSERT_FALSE(brute.medium_->spatially_indexed());
  ASSERT_TRUE(indexed.medium_->spatially_indexed());

  const std::size_t bound = std::min(p.bound_listeners, p.nodes);
  for (std::size_t i = 0; i < bound; ++i) {
    const auto node = static_cast<NodeId>((i * 13) % p.nodes);
    attach_recorder(brute, node);
    attach_recorder(indexed, node);
  }
  brute.medium_->attach(&brute.global_);
  indexed.medium_->attach(&indexed.global_);

  Rng rng(p.seed);
  auto node_count = p.nodes;

  const auto probe = [&](int step) {
    for (int k = 0; k < 3; ++k) {
      const auto rx =
          static_cast<NodeId>((static_cast<std::size_t>(step) * 7 + static_cast<std::size_t>(k) * 11) %
                              node_count);
      const Band band = band_for(step + k);
      const double eb = brute.medium_->energy_dbm(rx, band);
      const double ei = indexed.medium_->energy_dbm(rx, band);
      ASSERT_EQ(bits(eb), bits(ei))
          << "energy mismatch at step " << step << " rx=" << rx << ": brute=" << eb
          << " indexed=" << ei;
    }
    const auto src = static_cast<NodeId>(rng.uniform_int(0, static_cast<std::int64_t>(node_count) - 1));
    const auto dst = static_cast<NodeId>(rng.uniform_int(0, static_cast<std::int64_t>(node_count) - 1));
    const Band tb = band_for(step);
    const Band rb = band_for(step + 2);
    ASSERT_EQ(bits(brute.medium_->rx_power_dbm(src, 12.0, tb, dst, rb)),
              bits(indexed.medium_->rx_power_dbm(src, 12.0, tb, dst, rb)));
  };

  const auto begin_tx = [&](NodeId src, int bi, double power, Duration dur) {
    Frame f;
    f.tech = (bi % 5 == 0) ? Technology::ZigBee : Technology::WiFi;
    f.src = src;
    const Band band = band_for(bi);
    const TxId a = brute.medium_->begin_tx(f, band, power, dur);
    const TxId b = indexed.medium_->begin_tx(f, band, power, dur);
    ASSERT_EQ(a, b);
  };

  // Optional burst of long-lived transmissions: enough concurrently active
  // sources to push the indexed energy query past its linear-scan cutover
  // into the sorted-merge path.
  for (int i = 0; i < p.burst; ++i) {
    const auto src = static_cast<NodeId>((static_cast<std::size_t>(i) * 17) % node_count);
    begin_tx(src, i, i % 3 == 0 ? 20.0 : 5.0, Duration::from_ms(40 + i % 7));
  }

  for (int step = 0; step < p.steps; ++step) {
    const double roll = rng.uniform();
    if (roll < 0.45) {
      // Transmit: mixed powers hit several interference radii (per-power
      // rings); mixed bands exercise retuned receivers via the probes.
      const auto src = static_cast<NodeId>(rng.uniform_int(0, static_cast<std::int64_t>(node_count) - 1));
      const double power = 20.0 - 4.0 * static_cast<double>(step % 6);
      begin_tx(src, step, power, Duration::from_us(rng.uniform_int(80, 4000)));
    } else if (roll < 0.70) {
      // Move: mostly local jitter, sometimes a hop to a far site — crossing
      // many grid cells while transmissions are in flight (pinning paths).
      const auto m = static_cast<NodeId>(rng.uniform_int(0, static_cast<std::int64_t>(node_count) - 1));
      Position pos = brute.medium_->position(m);
      if (rng.bernoulli(0.25)) {
        pos = sites[static_cast<std::size_t>(rng.uniform_int(0, static_cast<std::int64_t>(p.nodes) - 1))];
      }
      pos.x += rng.normal(0.0, 8.0);
      pos.y += rng.normal(0.0, 8.0);
      brute.medium_->set_position(m, pos);
      indexed.medium_->set_position(m, pos);
    } else if (roll < 0.80) {
      // Listener churn: detach one bound recorder, attach a fresh one
      // (fresh attach seq — exercises the end-edge watermark fence).
      if (!brute.bound_.empty() && rng.bernoulli(0.5)) {
        const auto victim = static_cast<std::size_t>(
            rng.uniform_int(0, static_cast<std::int64_t>(brute.bound_.size()) - 1));
        brute.medium_->detach(brute.bound_[victim].get());
        indexed.medium_->detach(indexed.bound_[victim].get());
        ASSERT_EQ(brute.bound_[victim]->evs.size(), indexed.bound_[victim]->evs.size());
        brute.bound_.erase(brute.bound_.begin() + static_cast<std::ptrdiff_t>(victim));
        indexed.bound_.erase(indexed.bound_.begin() + static_cast<std::ptrdiff_t>(victim));
      } else {
        const auto node =
            static_cast<NodeId>(rng.uniform_int(0, static_cast<std::int64_t>(node_count) - 1));
        attach_recorder(brute, node);
        attach_recorder(indexed, node);
      }
    } else if (roll < 0.85) {
      // Node join mid-run, immediately active.
      Position pos = sites[static_cast<std::size_t>(rng.uniform_int(0, static_cast<std::int64_t>(p.nodes) - 1))];
      pos.x += 1.5;
      const NodeId a = brute.medium_->add_node("j", pos);
      const NodeId b = indexed.medium_->add_node("j", pos);
      ASSERT_EQ(a, b);
      node_count = brute.medium_->node_count();
      attach_recorder(brute, a);
      attach_recorder(indexed, b);
      begin_tx(a, step, 10.0, Duration::from_us(500));
    } else {
      const Duration dt = Duration::from_us(rng.uniform_int(100, 2500));
      brute.sim_.run_for(dt);
      indexed.sim_.run_for(dt);
      ASSERT_EQ(brute.sim_.now().us(), indexed.sim_.now().us());
    }
    ASSERT_EQ(brute.medium_->active().size(), indexed.medium_->active().size());
    probe(step);
  }

  // Drain every scheduled end event, then compare the recorded streams.
  brute.sim_.run_for(Duration::from_ms(200));
  indexed.sim_.run_for(Duration::from_ms(200));
  ASSERT_TRUE(brute.medium_->active().empty());
  ASSERT_TRUE(indexed.medium_->active().empty());

  ASSERT_EQ(brute.bound_.size(), indexed.bound_.size());
  for (std::size_t i = 0; i < brute.bound_.size(); ++i) {
    const auto& eb = brute.bound_[i]->evs;
    const auto& ei = indexed.bound_[i]->evs;
    ASSERT_EQ(eb.size(), ei.size()) << "bound listener " << i << " at node "
                                    << brute.bound_[i]->node;
    for (std::size_t k = 0; k < eb.size(); ++k) {
      ASSERT_EQ(eb[k].kind, ei[k].kind) << "listener " << i << " event " << k;
      ASSERT_EQ(eb[k].id, ei[k].id) << "listener " << i << " event " << k;
    }
    brute.medium_->detach(brute.bound_[i].get());
    indexed.medium_->detach(indexed.bound_[i].get());
  }
  // Vacuousness guard: the script must actually have produced traffic.
  ASSERT_GT(brute.global_.evs.size(), static_cast<std::size_t>(p.steps));
  ASSERT_EQ(brute.global_.evs.size(), indexed.global_.evs.size());
  for (std::size_t k = 0; k < brute.global_.evs.size(); ++k) {
    ASSERT_EQ(brute.global_.evs[k].kind, indexed.global_.evs[k].kind) << "global event " << k;
    ASSERT_EQ(brute.global_.evs[k].id, indexed.global_.evs[k].id) << "global event " << k;
  }
  brute.medium_->detach(&brute.global_);
  indexed.medium_->detach(&indexed.global_);

  // Airtime bookkeeping is shared arithmetic, but assert it anyway: a culled
  // begin_tx would show up here first.
  ASSERT_EQ(brute.medium_->airtime(Technology::WiFi).us(),
            indexed.medium_->airtime(Technology::WiFi).us());
  ASSERT_EQ(brute.medium_->airtime(Technology::ZigBee).us(),
            indexed.medium_->airtime(Technology::ZigBee).us());
}

TEST(MediumEquivalence, TinyUniform) {
  ScriptParams p;
  p.nodes = 10;
  p.area_m = 120.0;
  p.steps = 300;
  p.bound_listeners = 10;
  p.seed = 11;
  run_equivalence(p);
}

TEST(MediumEquivalence, SmallClusteredWithShadowing) {
  ScriptParams p;
  p.nodes = 60;
  p.clusters = 4;
  p.area_m = 500.0;
  p.cluster_sigma_m = 30.0;
  p.shadow_sigma_db = 3.0;  // radius picks up the 9-sigma margin
  p.steps = 300;
  p.seed = 22;
  run_equivalence(p);
}

TEST(MediumEquivalence, MidClusteredDefaultSnapNeverCulls) {
  // At the permissive default floor the derived radius dwarfs the field, so
  // the indexed path must degenerate to exactly the brute-force behavior.
  ScriptParams p;
  p.nodes = 120;
  p.clusters = 6;
  p.area_m = 300.0;
  p.snap_floor_dbm = -120.0;
  p.steps = 200;
  p.seed = 33;
  run_equivalence(p);
}

TEST(MediumEquivalence, MidUniformSmallCellsMergePath) {
  // Small explicit cells shrink the energy-query window; the up-front burst
  // keeps more transmissions active than the window has probes, forcing the
  // indexed energy path off the cutover scan and into the sorted merge.
  ScriptParams p;
  p.nodes = 250;
  p.area_m = 900.0;
  p.cell_size_m = 25.0;
  p.burst = 220;
  p.steps = 200;
  p.seed = 44;
  run_equivalence(p);
}

TEST(MediumEquivalence, DenseClusteredField) {
  ScriptParams p;
  p.nodes = 700;
  p.clusters = 12;
  p.area_m = 1600.0;
  p.cluster_sigma_m = 120.0;
  p.steps = 180;
  p.bound_listeners = 80;
  p.seed = 55;
  run_equivalence(p);
}

TEST(MediumEquivalence, CityScaleClustered) {
  ScriptParams p;
  p.nodes = 1500;
  p.clusters = 24;
  p.area_m = 3200.0;
  p.cluster_sigma_m = 120.0;
  p.steps = 140;
  p.bound_listeners = 100;
  p.seed = 66;
  run_equivalence(p);
}

}  // namespace
}  // namespace bicord::phy
