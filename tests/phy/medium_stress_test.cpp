// Reentrancy stress for the medium's listener fan-out, in both execution
// modes. Listeners mutate the world from inside notifications: they detach
// themselves and each other, attach fresh listeners, add nodes, transmit
// (nested begin_tx), and teleport their own node across the field — which
// rebuckets the spatial grid in the middle of the very notification that is
// being delivered. The invariants checked are the ones scenario code depends
// on: a detached listener is never invoked again (not even later in the same
// event), a listener attached mid-flight never sees a transmission's end
// without its start (the seq watermark fence), and the medium stays
// internally consistent (every begin gets its end, active drains to empty).
// scripts/check.sh runs this under ASan/UBSan and TSan, where the pinned
// audience and snapshot machinery would light up on any dangling reference.

#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "coex/placement.hpp"
#include "phy/medium.hpp"
#include "phy/spectrum.hpp"
#include "phy/units.hpp"
#include "sim/simulator.hpp"
#include "util/rng.hpp"

namespace bicord::phy {
namespace {

struct Stress;

struct ChaosListener final : MediumListener {
  Stress* owner = nullptr;
  NodeId node = kInvalidNode;
  bool detached = false;
  /// Transmissions already on the air when this listener attached: the
  /// watermark fence promises their end edges are never delivered here.
  std::vector<TxId> preexisting;
  int starts = 0;
  int ends = 0;
  int moves = 0;

  void on_tx_start(const ActiveTransmission& tx) override;
  void on_tx_end(const ActiveTransmission& tx) override;
  void on_position_change(NodeId moved) override;
};

struct Stress {
  explicit Stress(bool spatial, std::uint64_t seed)
      : sim(seed), rng(seed * 101 + 3) {
    PathLossModel pl;
    pl.exponent = 3.8;
    pl.shadowing_sigma_db = 0.0;
    MediumTuning tuning;
    tuning.snap_floor_dbm = -97.0;
    tuning.spatial_index = spatial;
    tuning.max_tx_power_dbm = 20.0;
    medium = std::make_unique<Medium>(sim, pl, tuning);

    coex::PlacementParams pp;
    pp.area_m = 900.0;
    pp.clusters = 8;
    pp.cluster_sigma_m = 60.0;
    sites = coex::generate_placement(pp, 300, seed);
    for (std::size_t i = 0; i < sites.size(); ++i) {
      medium->add_node("n" + std::to_string(i), sites[i]);
    }
    for (std::size_t i = 0; i < 120; ++i) {
      attach_listener(static_cast<NodeId>((i * 5) % medium->node_count()));
    }
  }

  ChaosListener* attach_listener(NodeId node) {
    auto l = std::make_unique<ChaosListener>();
    l->owner = this;
    l->node = node;
    for (const auto& tx : medium->active()) l->preexisting.push_back(tx.id);
    medium->attach(l.get(), node);
    listeners.push_back(std::move(l));
    ++attaches;
    return listeners.back().get();
  }

  void transmit(NodeId src, Duration dur) {
    Frame f;
    f.tech = (transmissions % 4 == 0) ? Technology::ZigBee : Technology::WiFi;
    f.src = src;
    const Band band = (transmissions % 4 == 0)
                          ? zigbee_channel(11 + transmissions % 16)
                          : wifi_channel(1 + 5 * (transmissions % 3));
    const double power = (transmissions % 4 == 0) ? 0.0 : 20.0;
    medium->begin_tx(f, band, power, dur);
    ++transmissions;
  }

  /// The chaos menu, invoked from inside listener callbacks.
  void mutate(ChaosListener* self) {
    if (depth >= 3) return;  // keep the recursion structured, not unbounded
    ++depth;
    const double roll = rng.uniform();
    if (roll < 0.015 && listeners.size() > 20) {
      // Detach a random live listener (possibly one later in this very
      // audience): it must never hear anything again.
      const auto victim = static_cast<std::size_t>(
          rng.uniform_int(0, static_cast<std::int64_t>(listeners.size()) - 1));
      if (!listeners[victim]->detached) {
        medium->detach(listeners[victim].get());
        listeners[victim]->detached = true;
        ++detaches;
      }
    } else if (roll < 0.03 && listeners.size() < 400) {
      // Population cap: attach probability is per callback, and callbacks
      // scale with the listener count — uncapped, the growth compounds.
      attach_listener(static_cast<NodeId>(
          rng.uniform_int(0, static_cast<std::int64_t>(medium->node_count()) - 1)));
    } else if (roll < 0.05) {
      // Teleport our own node across the field mid-notification: the grid
      // rebuckets (swap-remove + possibly new cells) while this event's
      // audience snapshot is still being walked.
      Position pos = sites[static_cast<std::size_t>(
          rng.uniform_int(0, static_cast<std::int64_t>(sites.size()) - 1))];
      pos.x += rng.normal(0.0, 5.0);
      pos.y += rng.normal(0.0, 5.0);
      medium->set_position(self->node, pos);
      ++teleports;
    } else if (roll < 0.06 && joins < 40) {
      // A node joins during a notification and speaks immediately.
      Position pos = sites[static_cast<std::size_t>(
          rng.uniform_int(0, static_cast<std::int64_t>(sites.size()) - 1))];
      pos.y += 2.0;
      const NodeId id = medium->add_node("joiner", pos);
      attach_listener(id);
      transmit(id, Duration::from_us(300));
      ++joins;
    } else if (roll < 0.09) {
      transmit(self->node, Duration::from_us(rng.uniform_int(100, 900)));
    } else if (roll < 0.12) {
      // Query energy while the world is mid-mutation.
      const auto rx = static_cast<NodeId>(
          rng.uniform_int(0, static_cast<std::int64_t>(medium->node_count()) - 1));
      const double e = medium->energy_dbm(rx, zigbee_channel(15));
      EXPECT_TRUE(e <= 40.0 && e >= -180.0) << "implausible energy " << e;
    }
    --depth;
  }

  sim::Simulator sim;
  Rng rng;
  std::unique_ptr<Medium> medium;
  std::vector<Position> sites;
  std::vector<std::unique_ptr<ChaosListener>> listeners;
  int depth = 0;
  int transmissions = 0;
  int attaches = 0;
  int detaches = 0;
  int teleports = 0;
  int joins = 0;
};

void ChaosListener::on_tx_start(const ActiveTransmission& tx) {
  EXPECT_FALSE(detached) << "detached listener invoked for tx start " << tx.id;
  ++starts;
  owner->mutate(this);
}

void ChaosListener::on_tx_end(const ActiveTransmission& tx) {
  EXPECT_FALSE(detached) << "detached listener invoked for tx end " << tx.id;
  // The watermark fence: transmissions begun before we attached must end
  // silently for us, in both execution modes.
  EXPECT_TRUE(std::find(preexisting.begin(), preexisting.end(), tx.id) ==
              preexisting.end())
      << "end edge for pre-attach tx " << tx.id;
  ++ends;
  owner->mutate(this);
}

void ChaosListener::on_position_change(NodeId moved) {
  EXPECT_FALSE(detached) << "detached listener invoked for move of " << moved;
  ++moves;
  // No mutation here: moves are already triggered from tx callbacks, and
  // recursing on them too would make the chaos volume explode.
}

void run_stress(bool spatial, std::uint64_t seed) {
  SCOPED_TRACE(std::string(spatial ? "indexed" : "brute") + " seed=" +
               std::to_string(seed));
  Stress s(spatial, seed);
  ASSERT_EQ(s.medium->spatially_indexed(), spatial);

  // Outer driver: a steady drumbeat of transmissions from random nodes; all
  // the interesting behavior happens inside the listener callbacks.
  for (int step = 0; step < 900; ++step) {
    const auto src = static_cast<NodeId>(
        s.rng.uniform_int(0, static_cast<std::int64_t>(s.medium->node_count()) - 1));
    s.transmit(src, Duration::from_us(s.rng.uniform_int(80, 1200)));
    if (step % 3 == 0) s.sim.run_for(Duration::from_us(s.rng.uniform_int(50, 700)));
  }
  s.sim.run_for(Duration::from_ms(50));
  EXPECT_TRUE(s.medium->active().empty());

  // The chaos must actually have happened for this test to mean anything.
  EXPECT_GT(s.detaches, 3);
  EXPECT_GT(s.attaches, 130);
  EXPECT_GT(s.teleports, 10);
  EXPECT_GT(s.joins, 2);
  int total_starts = 0;
  for (const auto& l : s.listeners) total_starts += l->starts;
  EXPECT_GT(total_starts, 1000);

  for (auto& l : s.listeners) {
    if (!l->detached) s.medium->detach(l.get());
  }
}

TEST(MediumStress, BruteForceReentrantChurn) { run_stress(false, 5); }
TEST(MediumStress, IndexedReentrantChurn) { run_stress(true, 5); }
TEST(MediumStress, IndexedReentrantChurnAltSeed) { run_stress(true, 77); }

}  // namespace
}  // namespace bicord::phy
