#pragma once
// Parallel multi-seed experiment engine with bitwise-deterministic
// aggregation.
//
// A trial is an opaque function of its index that returns one value per
// registered metric (the caller derives the trial's seed/config from the
// index). Trials fan out across a TrialPool; the per-trial metric vectors
// are kept by index and merged in index (== seed) order afterwards, so the
// aggregated MetricSummary values are bitwise identical for any thread
// count — `--jobs 8` reproduces `--jobs 1` exactly, and a rerun with the
// same seed reproduces both.
//
// The engine is scenario-agnostic on purpose: coex::ExperimentRunner wraps
// it for Scenario sweeps, and the signaling/energy benches drive it (or the
// raw TrialPool) with their own trial shapes.

#include <chrono>
#include <cmath>
#include <cstddef>
#include <functional>
#include <string>
#include <vector>

#include "runner/trial_pool.hpp"
#include "util/stats.hpp"

namespace bicord::runner {

/// Aggregate of one metric across all trials of an experiment.
struct MetricSummary {
  std::string name;
  RunningStats stats;

  /// Half-width of the ~95 % confidence interval (normal approximation).
  [[nodiscard]] double ci95() const {
    if (stats.count() < 2) return 0.0;
    return 1.96 * stats.stddev() / std::sqrt(static_cast<double>(stats.count()));
  }
  [[nodiscard]] std::string to_string(int precision = 2) const;
};

/// Wall-clock accounting for one run(): enough for benches to report
/// throughput on long sweeps. Timing is observational only — it never
/// feeds into the metric aggregation.
struct RunReport {
  std::size_t trials = 0;
  int jobs = 1;
  double wall_seconds = 0.0;
  double trial_seconds = 0.0;  ///< summed per-trial wall time

  [[nodiscard]] double trials_per_second() const {
    return wall_seconds > 0.0 ? static_cast<double>(trials) / wall_seconds : 0.0;
  }
  /// Ratio of summed trial time to wall time (~effective parallelism).
  [[nodiscard]] double speedup() const {
    return wall_seconds > 0.0 ? trial_seconds / wall_seconds : 0.0;
  }
  /// e.g. "20 trials in 3.41 s (5.9 trials/s, jobs=4, speedup 3.8x)"
  [[nodiscard]] std::string to_string() const;
};

/// One trial: index -> one value per registered metric.
using TrialFn = std::function<std::vector<double>(std::size_t trial)>;
/// Progress callback, invoked after each finished trial (from the caller's
/// lock; completion order, not index order).
using ProgressFn = std::function<void(std::size_t done, std::size_t total)>;

class ParallelExperimentRunner {
 public:
  /// `metric_names` fixes the width and labels of every trial's result
  /// vector; `trial` produces exactly that many values per index.
  ParallelExperimentRunner(std::vector<std::string> metric_names, TrialFn trial);

  /// Worker threads for run(); <= 0 selects BICORD_JOBS / all hardware.
  void set_jobs(int jobs) { jobs_ = jobs; }
  void set_progress(ProgressFn progress) { progress_ = std::move(progress); }

  /// Runs `trials` independent trials and aggregates each metric in trial
  /// order. Thread count never affects the returned values.
  [[nodiscard]] std::vector<MetricSummary> run(int trials);

  /// Timing of the most recent run().
  [[nodiscard]] const RunReport& last_report() const { return report_; }

 private:
  std::vector<std::string> names_;
  TrialFn trial_;
  ProgressFn progress_;
  int jobs_ = 0;
  RunReport report_;
};

}  // namespace bicord::runner
