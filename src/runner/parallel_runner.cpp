#include "runner/parallel_runner.hpp"

#include <algorithm>
#include <cstdio>
#include <mutex>
#include <stdexcept>

namespace bicord::runner {

std::string MetricSummary::to_string(int precision) const {
  char buf[96];
  std::snprintf(buf, sizeof(buf), "%.*f +/- %.*f", precision, stats.mean(),
                precision, ci95());
  return buf;
}

std::string RunReport::to_string() const {
  char buf[128];
  std::snprintf(buf, sizeof(buf),
                "%zu trials in %.2f s (%.1f trials/s, jobs=%d, speedup %.1fx)",
                trials, wall_seconds, trials_per_second(), jobs, speedup());
  return buf;
}

ParallelExperimentRunner::ParallelExperimentRunner(
    std::vector<std::string> metric_names, TrialFn trial)
    : names_(std::move(metric_names)), trial_(std::move(trial)) {
  if (names_.empty()) {
    throw std::logic_error("ParallelExperimentRunner: no metrics registered");
  }
  if (!trial_) {
    throw std::invalid_argument("ParallelExperimentRunner: null trial function");
  }
}

std::vector<MetricSummary> ParallelExperimentRunner::run(int trials) {
  if (trials < 1) {
    throw std::invalid_argument("ParallelExperimentRunner: trials < 1");
  }
  const auto n = static_cast<std::size_t>(trials);
  // Never spawn more workers than there are trials.
  const int jobs = std::min(resolve_jobs(jobs_), trials);

  std::vector<std::vector<double>> results(n);
  std::mutex accounting_mutex;  // guards done/trial_seconds/progress_
  std::size_t done = 0;
  double trial_seconds = 0.0;

  // Wall-clock reads below feed only the human-facing RunReport (throughput,
  // speedup); no simulation state depends on them, so the determinism rule is
  // waived explicitly rather than baselined.
  const auto wall_start = std::chrono::steady_clock::now();  // bicord-lint: allow(wall-clock)
  TrialPool pool(jobs);
  pool.run(n, [&](std::size_t i) {
    const auto t0 = std::chrono::steady_clock::now();  // bicord-lint: allow(wall-clock)
    std::vector<double> values = trial_(i);
    const std::chrono::duration<double> elapsed =
        std::chrono::steady_clock::now() - t0;  // bicord-lint: allow(wall-clock)
    if (values.size() != names_.size()) {
      throw std::logic_error(
          "ParallelExperimentRunner: trial returned " +
          std::to_string(values.size()) + " values for " +
          std::to_string(names_.size()) + " metrics");
    }
    results[i] = std::move(values);
    const std::lock_guard lock(accounting_mutex);
    trial_seconds += elapsed.count();
    ++done;
    if (progress_) progress_(done, n);
  });
  const std::chrono::duration<double> wall =
      std::chrono::steady_clock::now() - wall_start;  // bicord-lint: allow(wall-clock)

  report_ = RunReport{n, jobs, wall.count(), trial_seconds};

  // Seed-ordered merge: identical add() sequence per metric as a serial
  // loop over trials, hence bitwise-identical Welford state.
  std::vector<MetricSummary> summaries;
  summaries.reserve(names_.size());
  for (std::size_t m = 0; m < names_.size(); ++m) {
    MetricSummary summary{names_[m], {}};
    for (std::size_t i = 0; i < n; ++i) summary.stats.add(results[i][m]);
    summaries.push_back(std::move(summary));
  }
  return summaries;
}

}  // namespace bicord::runner
