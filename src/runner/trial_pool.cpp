#include "runner/trial_pool.hpp"

#include <algorithm>
#include <cstdlib>
#include <stdexcept>

#include "util/flags.hpp"

namespace bicord::runner {

int resolve_jobs(int requested) {
  if (requested >= 1) return requested;
  // NOLINTNEXTLINE(concurrency-mt-unsafe) — read once at pool construction, before workers exist.
  if (const char* env = std::getenv("BICORD_JOBS")) {
    if (const auto v = parse_positive_int(env)) return *v;
  }
  const unsigned hw = std::thread::hardware_concurrency();
  return hw > 0 ? static_cast<int>(hw) : 1;
}

int resolve_jobs_budgeted(int requested, int threads_per_trial) {
  const int budget = resolve_jobs(requested);
  if (threads_per_trial <= 1) return budget;
  return std::max(1, budget / threads_per_trial);
}

TrialPool::TrialPool(int jobs) : jobs_(resolve_jobs(jobs)) {
  if (jobs_ == 1) return;  // inline mode: no workers
  workers_.reserve(static_cast<std::size_t>(jobs_));
  for (int i = 0; i < jobs_; ++i) workers_.push_back(std::make_unique<Worker>());
  threads_.reserve(static_cast<std::size_t>(jobs_));
  for (int i = 0; i < jobs_; ++i) {
    threads_.emplace_back([this, i] { worker_loop(static_cast<std::size_t>(i)); });
  }
}

TrialPool::~TrialPool() {
  if (threads_.empty()) return;
  {
    const std::lock_guard lock(batch_mutex_);
    shutdown_ = true;
  }
  work_cv_.notify_all();
  for (auto& t : threads_) t.join();
}

bool TrialPool::take_index(std::size_t self, std::size_t& index) {
  // Own queue first (front), then steal from the siblings' backs.
  {
    Worker& own = *workers_[self];
    const std::lock_guard lock(own.mutex);
    if (!own.queue.empty()) {
      index = own.queue.front();
      own.queue.pop_front();
      return true;
    }
  }
  for (std::size_t k = 1; k < workers_.size(); ++k) {
    Worker& victim = *workers_[(self + k) % workers_.size()];
    const std::lock_guard lock(victim.mutex);
    if (!victim.queue.empty()) {
      index = victim.queue.back();
      victim.queue.pop_back();
      return true;
    }
  }
  return false;
}

void TrialPool::execute(std::size_t index) {
  const std::function<void(std::size_t)>* fn = nullptr;
  {
    const std::lock_guard lock(batch_mutex_);
    fn = fn_;
  }
  try {
    (*fn)(index);
  } catch (...) {
    errors_[index] = std::current_exception();
  }
  {
    const std::lock_guard lock(batch_mutex_);
    if (--remaining_ == 0) done_cv_.notify_all();
  }
}

void TrialPool::worker_loop(std::size_t self) {
  std::uint64_t seen = 0;
  for (;;) {
    {
      std::unique_lock lock(batch_mutex_);
      work_cv_.wait(lock, [&] { return shutdown_ || batch_id_ != seen; });
      if (shutdown_) return;
      seen = batch_id_;
    }
    std::size_t index = 0;
    while (take_index(self, index)) execute(index);
  }
}

void TrialPool::rethrow_first_error() {
  for (auto& e : errors_) {
    if (e) std::rethrow_exception(e);
  }
}

void TrialPool::run(std::size_t n, const std::function<void(std::size_t)>& fn) {
  if (!fn) throw std::invalid_argument("TrialPool::run: null trial function");
  if (n == 0) return;
  const std::lock_guard run_lock(run_mutex_);

  if (threads_.empty()) {  // jobs == 1: inline, same exactly-once semantics
    errors_.assign(n, nullptr);
    for (std::size_t i = 0; i < n; ++i) {
      try {
        fn(i);
      } catch (...) {
        errors_[i] = std::current_exception();
      }
    }
    rethrow_first_error();
    return;
  }

  {
    const std::lock_guard lock(batch_mutex_);
    fn_ = &fn;
    errors_.assign(n, nullptr);
    remaining_ = n;
    ++batch_id_;
  }
  // Round-robin pre-distribution; idle workers re-balance by stealing.
  for (std::size_t i = 0; i < n; ++i) {
    Worker& w = *workers_[i % workers_.size()];
    const std::lock_guard lock(w.mutex);
    w.queue.push_back(i);
  }
  work_cv_.notify_all();
  {
    std::unique_lock lock(batch_mutex_);
    done_cv_.wait(lock, [&] { return remaining_ == 0; });
    fn_ = nullptr;
  }
  rethrow_first_error();
}

}  // namespace bicord::runner
