#pragma once
// Work-stealing thread pool for independent simulation trials.
//
// A TrialPool owns `jobs` worker threads for its whole lifetime. Each run()
// distributes trial indices round-robin across per-worker deques; a worker
// drains its own queue from the front and, once empty, steals from its
// siblings' backs, so a slow (or still-sleeping) worker never strands work.
// Results keyed by trial index are inherently in submission order, which is
// what makes seed-ordered — and therefore bitwise-deterministic —
// aggregation possible regardless of thread count.

#include <condition_variable>
#include <cstddef>
#include <cstdint>
#include <deque>
#include <exception>
#include <functional>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

namespace bicord::runner {

/// Worker-count resolution shared by every parallel entry point:
/// `requested` if >= 1, else the BICORD_JOBS environment variable if it
/// parses as a positive integer, else std::thread::hardware_concurrency()
/// (minimum 1).
[[nodiscard]] int resolve_jobs(int requested = 0);

/// resolve_jobs() composed with intra-trial parallelism: when every trial
/// spawns `threads_per_trial` workers of its own (sim.threads), the trial
/// fan-out must divide the shared core budget instead of multiplying it.
/// Returns max(1, resolve_jobs(requested) / threads_per_trial).
[[nodiscard]] int resolve_jobs_budgeted(int requested, int threads_per_trial);

class TrialPool {
 public:
  /// `jobs <= 0` resolves via resolve_jobs(). With jobs == 1 the pool runs
  /// trials inline on the caller's thread (no workers are spawned).
  explicit TrialPool(int jobs = 0);
  ~TrialPool();

  TrialPool(const TrialPool&) = delete;
  TrialPool& operator=(const TrialPool&) = delete;

  [[nodiscard]] int jobs() const { return jobs_; }

  /// Executes fn(0) .. fn(n-1), each exactly once, and blocks until every
  /// trial has finished. If trials throw, every remaining trial still runs;
  /// afterwards the exception of the LOWEST-indexed failing trial is
  /// rethrown (deterministic regardless of scheduling). n == 0 returns
  /// immediately; n < jobs leaves the surplus workers idle.
  void run(std::size_t n, const std::function<void(std::size_t)>& fn);

  /// run() collecting one result per trial, in submission (index) order.
  template <typename R>
  [[nodiscard]] std::vector<R> map(std::size_t n,
                                   const std::function<R(std::size_t)>& fn) {
    std::vector<R> out(n);
    run(n, [&](std::size_t i) { out[i] = fn(i); });
    return out;
  }

 private:
  struct Worker {
    std::mutex mutex;
    std::deque<std::size_t> queue;
  };

  void worker_loop(std::size_t self);
  bool take_index(std::size_t self, std::size_t& index);
  void execute(std::size_t index);
  void run_inline(std::size_t n);
  void rethrow_first_error();

  int jobs_;
  std::vector<std::unique_ptr<Worker>> workers_;
  std::vector<std::thread> threads_;

  std::mutex run_mutex_;  ///< serializes concurrent run() callers

  // Batch state, guarded by batch_mutex_ (remaining_ also read lock-free).
  std::mutex batch_mutex_;
  std::condition_variable work_cv_;
  std::condition_variable done_cv_;
  const std::function<void(std::size_t)>* fn_ = nullptr;
  std::size_t remaining_ = 0;
  std::uint64_t batch_id_ = 0;
  bool shutdown_ = false;
  std::vector<std::exception_ptr> errors_;  ///< slot i written only by trial i
};

/// One-shot convenience: map fn over [0, n) with a transient pool.
template <typename R>
[[nodiscard]] std::vector<R> parallel_map(std::size_t n, int jobs,
                                          const std::function<R(std::size_t)>& fn) {
  TrialPool pool(jobs);
  return pool.map<R>(n, fn);
}

}  // namespace bicord::runner
