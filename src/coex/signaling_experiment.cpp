#include "coex/signaling_experiment.hpp"

#include <algorithm>

#include "wifi/traffic.hpp"

namespace bicord::coex {

namespace {
using namespace bicord::time_literals;

struct TrialWindow {
  TimePoint start;
  TimePoint end;  ///< includes the guard
};

struct World {
  explicit World(const SignalingExperimentConfig& cfg)
      : sim(cfg.seed),
        medium(sim, phy::PathLossModel{40.0, 3.0, 0.0, 0.1}) {
    const phy::NodeId e = medium.add_node("wifi-E", {0.0, 0.0});
    const phy::NodeId f = medium.add_node("wifi-F", {3.0, 0.0});
    const phy::NodeId z = medium.add_node("zigbee", location_position(cfg.location));

    wifi::WifiMac::Config wc;
    wc.channel = 11;
    wc.tx_power_dbm = 20.0;
    wc.timings.data_rate_mbps = 54.0;
    wc.timings.basic_rate_mbps = 24.0;
    wc.ed_threshold_dbm = -51.0;
    wc.cca_noise_sigma_db = 2.0;
    sender = std::make_unique<wifi::WifiMac>(medium, e, wc);
    receiver = std::make_unique<wifi::WifiMac>(medium, f, wc);

    zigbee::ZigbeeMac::Config zc;
    zc.channel = 24;
    zc.tx_power_dbm = cfg.power_dbm;
    zigbee = std::make_unique<zigbee::ZigbeeMac>(medium, z, zc);

    cbr = std::make_unique<wifi::CbrSource>(*sender, f, 100, 1_ms);
    cbr->start();
  }

  sim::Simulator sim;
  phy::Medium medium;
  std::unique_ptr<wifi::WifiMac> sender;
  std::unique_ptr<wifi::WifiMac> receiver;
  std::unique_ptr<zigbee::ZigbeeMac> zigbee;
  std::unique_ptr<wifi::CbrSource> cbr;

  /// Link-layer packet reception ratio at F (per transmission, before MAC
  /// retries) — the paper's PRR metric.
  [[nodiscard]] double wifi_prr() const {
    const auto ok = receiver->radio().frames_received();
    const auto bad = receiver->radio().frames_corrupted();
    return ok + bad ? static_cast<double>(ok) / static_cast<double>(ok + bad) : 0.0;
  }
};
}  // namespace

SignalingResult run_signaling_experiment(const SignalingExperimentConfig& config) {
  SignalingResult result;
  result.trials = config.trials;

  // --- baseline Wi-Fi PRR without any ZigBee signaling ----------------------
  {
    World world(config);
    world.sim.run_for(2_sec);
    result.wifi_prr_baseline = world.wifi_prr();
  }

  World world(config);
  csi::CsiStream stream(world.sim, config.csi);
  csi::CsiDetector detector(config.detector);
  detector.set_amplitude_only(config.amplitude_only);
  world.receiver->set_rx_hook(
      [&stream](const phy::RxResult& rx) { stream.on_frame(rx); });
  stream.set_sample_callback(
      [&detector](const csi::CsiSample& s) { detector.add_sample(s); });

  std::vector<TimePoint> detections;
  detector.set_detection_callback(
      [&detections](TimePoint t) { detections.push_back(t); });

  std::vector<TrialWindow> windows;
  windows.reserve(static_cast<std::size_t>(config.trials));

  // Trial chain: k raw control packets spaced by `control_gap`, then the
  // quiet inter-trial gap. Scheduling is fully event-driven.
  const Duration guard = 2_ms;
  int trials_left = config.trials;
  int packets_left = 0;
  TimePoint trial_start;

  std::function<void()> next_step = [&] {
    if (packets_left == 0) {
      // Close the previous trial window, maybe start a new trial.
      if (!windows.empty() || trials_left < config.trials) {
        windows.back().end = world.sim.now() + guard;
      }
      if (trials_left == 0) return;
      --trials_left;
      packets_left = config.control_packets;
      trial_start = world.sim.now() + config.trial_gap;
      // Explicit captures (not [&]): everything named here outlives the
      // enclosing run_for() that drains these events.
      world.sim.after(config.trial_gap, [&windows, &world, &next_step] {
        windows.push_back(TrialWindow{world.sim.now(), world.sim.now()});
        next_step();
      });
      return;
    }
    --packets_left;
    zigbee::ZigbeeMac::SendRequest control;
    control.dst = phy::kBroadcastNode;
    control.payload_bytes = config.control_payload_bytes;
    control.kind = phy::FrameKind::Control;
    control.power_dbm_override = config.power_dbm;
    world.zigbee->send_raw(control, [&world, &config, &next_step] {
      world.sim.after(config.control_gap, [&next_step] { next_step(); });
    });
  };

  // Warm the Wi-Fi link, then run the trial chain to completion.
  world.sim.run_for(50_ms);
  next_step();
  const Duration per_trial =
      config.trial_gap +
      (world.zigbee->config().timings.data_airtime(config.control_payload_bytes) +
       config.control_gap) *
          config.control_packets;
  world.sim.run_for(per_trial * (config.trials + 2) + 1_sec);
  result.wifi_prr = world.wifi_prr();

  // --- score ------------------------------------------------------------------
  std::size_t next_detection = 0;
  for (const auto& w : windows) {
    bool hit = false;
    while (next_detection < detections.size() && detections[next_detection] < w.start) {
      ++result.false_positives;  // detection in a quiet gap
      ++next_detection;
    }
    while (next_detection < detections.size() && detections[next_detection] <= w.end) {
      // Any detection inside the trial window is a correct positive; only
      // the first counts (one white-space request per trial).
      hit = true;
      ++next_detection;
    }
    if (hit) ++result.detected_trials;
  }
  result.false_positives +=
      static_cast<int>(detections.size() - next_detection);  // tail gap
  result.true_positives = result.detected_trials;
  return result;
}

}  // namespace bicord::coex
