#pragma once
// Evaluation metrics matching the paper's definitions (Sec. VIII-D):
// channel utilization is the summed transmission time of Wi-Fi and ZigBee
// devices divided by elapsed time; ZigBee delay is burst-arrival to ACK per
// packet; throughput is delivered ZigBee payload per second.

#include "phy/medium.hpp"
#include "util/stats.hpp"
#include "util/time.hpp"

namespace bicord::coex {

struct UtilizationReport {
  double total = 0.0;   ///< (Wi-Fi + ZigBee airtime) / elapsed
  double wifi = 0.0;
  double zigbee = 0.0;
};

/// Snapshots the medium's airtime counters; diff two snapshots to measure a
/// window.
class AirtimeProbe {
 public:
  explicit AirtimeProbe(const phy::Medium& medium) : medium_(medium) {}

  /// Marks the start of the measurement window.
  void start(TimePoint now);
  [[nodiscard]] UtilizationReport report(TimePoint now) const;

 private:
  const phy::Medium& medium_;
  TimePoint started_;
  Duration wifi_at_start_;
  Duration zigbee_at_start_;
};

}  // namespace bicord::coex
