#include "coex/experiment.hpp"

#include <cmath>
#include <cstdio>
#include <stdexcept>

namespace bicord::coex {

std::string MetricSummary::to_string(int precision) const {
  char buf[96];
  std::snprintf(buf, sizeof(buf), "%.*f +/- %.*f", precision, stats.mean(), precision,
                ci95());
  return buf;
}

ExperimentRunner::ExperimentRunner(ScenarioConfig base, Duration warmup,
                                   Duration measure)
    : base_(std::move(base)), warmup_(warmup), measure_(measure) {
  if (measure_ <= Duration::zero()) {
    throw std::invalid_argument("ExperimentRunner: measure window must be positive");
  }
}

void ExperimentRunner::add_metric(std::string name, Metric metric) {
  if (!metric) throw std::invalid_argument("ExperimentRunner: null metric");
  metrics_.emplace_back(std::move(name), std::move(metric));
}

std::vector<MetricSummary> ExperimentRunner::run(int repetitions) {
  if (repetitions < 1) throw std::invalid_argument("ExperimentRunner: repetitions < 1");
  if (metrics_.empty()) throw std::logic_error("ExperimentRunner: no metrics registered");

  std::vector<MetricSummary> summaries;
  summaries.reserve(metrics_.size());
  for (const auto& [name, metric] : metrics_) {
    summaries.push_back(MetricSummary{name, {}});
  }

  for (int rep = 0; rep < repetitions; ++rep) {
    ScenarioConfig cfg = base_;
    cfg.seed = base_.seed + static_cast<std::uint64_t>(rep) * 7919;
    Scenario scenario(cfg);
    scenario.run_for(warmup_);
    scenario.start_measurement();
    scenario.run_for(measure_);
    for (std::size_t m = 0; m < metrics_.size(); ++m) {
      summaries[m].stats.add(metrics_[m].second(scenario));
    }
  }
  return summaries;
}

Metric metric_total_utilization() {
  return [](Scenario& s) { return s.utilization().total; };
}

Metric metric_zigbee_utilization() {
  return [](Scenario& s) { return s.utilization().zigbee; };
}

Metric metric_zigbee_mean_delay_ms() {
  return [](Scenario& s) {
    const auto& d = s.zigbee_stats().delay_ms;
    return d.empty() ? 0.0 : d.mean();
  };
}

Metric metric_zigbee_delivery() {
  return [](Scenario& s) { return s.zigbee_stats().delivery_ratio(); };
}

Metric metric_zigbee_goodput_kbps() {
  return [](Scenario& s) { return s.zigbee_goodput_kbps(); };
}

}  // namespace bicord::coex
