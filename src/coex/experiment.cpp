#include "coex/experiment.hpp"

#include <stdexcept>
#include <utility>

#include "runner/trial_pool.hpp"
#include "util/rng.hpp"

namespace bicord::coex {

ExperimentRunner::ExperimentRunner(ScenarioConfig base, Duration warmup,
                                   Duration measure)
    : base_(std::move(base)), warmup_(warmup), measure_(measure) {
  if (measure_ <= Duration::zero()) {
    throw std::invalid_argument("ExperimentRunner: measure window must be positive");
  }
}

void ExperimentRunner::add_metric(std::string name, Metric metric) {
  if (!metric) throw std::invalid_argument("ExperimentRunner: null metric");
  metrics_.emplace_back(std::move(name), std::move(metric));
}

std::uint64_t ExperimentRunner::trial_seed(std::size_t rep) const {
  // Independent per-trial stream: SplitMix64-derived from (base seed, rep)
  // without consuming any draws from the base stream.
  return Rng(base_.seed).split(rep)();
}

std::vector<MetricSummary> ExperimentRunner::run(int repetitions) {
  if (repetitions < 1) throw std::invalid_argument("ExperimentRunner: repetitions < 1");
  if (metrics_.empty()) throw std::logic_error("ExperimentRunner: no metrics registered");

  std::vector<std::string> names;
  names.reserve(metrics_.size());
  for (const auto& [name, metric] : metrics_) names.push_back(name);

  runner::ParallelExperimentRunner engine(
      std::move(names), [this](std::size_t rep) {
        ScenarioConfig cfg = base_;
        cfg.seed = trial_seed(rep);
        Scenario scenario(cfg);
        warm_and_measure(scenario, warmup_, measure_);
        std::vector<double> values;
        values.reserve(metrics_.size());
        for (const auto& [name, metric] : metrics_) {
          values.push_back(metric(scenario));
        }
        return values;
      });
  // Each trial spawns base_.sim_threads workers of its own, so the trial
  // fan-out divides the shared core budget rather than multiplying it.
  engine.set_jobs(base_.sim_threads > 1
                      ? runner::resolve_jobs_budgeted(jobs_, base_.sim_threads)
                      : jobs_);
  if (progress_) engine.set_progress(progress_);
  auto summaries = engine.run(repetitions);
  report_ = engine.last_report();
  return summaries;
}

Metric metric_total_utilization() {
  return [](Scenario& s) { return s.utilization().total; };
}

Metric metric_zigbee_utilization() {
  return [](Scenario& s) { return s.utilization().zigbee; };
}

Metric metric_zigbee_mean_delay_ms() {
  return [](Scenario& s) {
    const auto& d = s.zigbee_stats().delay_ms;
    return d.empty() ? 0.0 : d.mean();
  };
}

Metric metric_zigbee_delivery() {
  return [](Scenario& s) { return s.zigbee_stats().delivery_ratio(); };
}

Metric metric_zigbee_goodput_kbps() {
  return [](Scenario& s) { return s.zigbee_goodput_kbps(); };
}

}  // namespace bicord::coex
