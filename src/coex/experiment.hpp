#pragma once
// Multi-seed experiment runner: repeat a scenario over independent seeds and
// aggregate any scalar metric with a confidence interval. Benches use this
// to report mean +/- CI instead of single-run numbers.

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "coex/scenario.hpp"
#include "util/stats.hpp"

namespace bicord::coex {

/// A scalar extracted from a finished scenario run.
using Metric = std::function<double(Scenario&)>;

struct MetricSummary {
  std::string name;
  RunningStats stats;

  /// Half-width of the ~95 % confidence interval (normal approximation).
  [[nodiscard]] double ci95() const {
    if (stats.count() < 2) return 0.0;
    return 1.96 * stats.stddev() /
           std::sqrt(static_cast<double>(stats.count()));
  }
  [[nodiscard]] std::string to_string(int precision = 2) const;
};

class ExperimentRunner {
 public:
  /// `base` is copied per repetition with the seed replaced.
  ExperimentRunner(ScenarioConfig base, Duration warmup, Duration measure);

  void add_metric(std::string name, Metric metric);

  /// Runs `repetitions` independent scenarios (seeds base.seed + k) and
  /// aggregates every registered metric.
  [[nodiscard]] std::vector<MetricSummary> run(int repetitions);

 private:
  ScenarioConfig base_;
  Duration warmup_;
  Duration measure_;
  std::vector<std::pair<std::string, Metric>> metrics_;
};

// Ready-made metrics for the paper's quantities.
[[nodiscard]] Metric metric_total_utilization();
[[nodiscard]] Metric metric_zigbee_utilization();
[[nodiscard]] Metric metric_zigbee_mean_delay_ms();
[[nodiscard]] Metric metric_zigbee_delivery();
[[nodiscard]] Metric metric_zigbee_goodput_kbps();

}  // namespace bicord::coex
