#pragma once
// Multi-seed experiment runner: repeat a scenario over independent seeds and
// aggregate any scalar metric with a confidence interval. Benches use this
// to report mean +/- CI instead of single-run numbers.
//
// Execution is delegated to runner::ParallelExperimentRunner: repetitions
// fan out across worker threads (set_jobs / --jobs / BICORD_JOBS) while the
// per-trial metric vectors are merged in seed order, so the aggregated
// numbers are bitwise identical for any thread count.

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "coex/scenario.hpp"
#include "runner/parallel_runner.hpp"
#include "util/stats.hpp"

namespace bicord::coex {

/// A scalar extracted from a finished scenario run.
using Metric = std::function<double(Scenario&)>;

/// Aggregate of one metric across repetitions (shared with the runner
/// layer so benches can mix Scenario and non-Scenario trials).
using runner::MetricSummary;

class ExperimentRunner {
 public:
  /// `base` is copied per repetition with the seed replaced by an
  /// independent SplitMix64-derived stream seed (Rng::split).
  ExperimentRunner(ScenarioConfig base, Duration warmup, Duration measure);

  void add_metric(std::string name, Metric metric);

  /// Worker threads for run(); <= 0 (the default) selects BICORD_JOBS or
  /// all hardware threads. The thread count never changes the results.
  void set_jobs(int jobs) { jobs_ = jobs; }
  /// Optional per-trial completion callback for long sweeps.
  void set_progress(runner::ProgressFn progress) { progress_ = std::move(progress); }

  /// Runs `repetitions` independent scenarios and aggregates every
  /// registered metric in seed order.
  [[nodiscard]] std::vector<MetricSummary> run(int repetitions);

  /// Timing/throughput of the most recent run().
  [[nodiscard]] const runner::RunReport& last_report() const { return report_; }

  /// The seed the k-th repetition runs with (exposed for determinism tests).
  [[nodiscard]] std::uint64_t trial_seed(std::size_t rep) const;

 private:
  ScenarioConfig base_;
  Duration warmup_;
  Duration measure_;
  std::vector<std::pair<std::string, Metric>> metrics_;
  int jobs_ = 0;
  runner::ProgressFn progress_;
  runner::RunReport report_;
};

// Ready-made metrics for the paper's quantities.
[[nodiscard]] Metric metric_total_utilization();
[[nodiscard]] Metric metric_zigbee_utilization();
[[nodiscard]] Metric metric_zigbee_mean_delay_ms();
[[nodiscard]] Metric metric_zigbee_delivery();
[[nodiscard]] Metric metric_zigbee_goodput_kbps();

}  // namespace bicord::coex
