#pragma once
// Declarative scenario descriptions (the data layer above ScenarioConfig).
//
// A ScenarioSpec is an ordered list of `key = value` assignments — parsed
// from a small text DSL in the style of fault::FaultPlan, taken from a named
// preset (one per paper figure), or built programmatically with set(). It
// lowers to the C++ config structs (`ScenarioConfig`, or `BleScenarioConfig`
// when `topology = ble`) on demand. Benches, examples, and bicordsim build
// their scenarios from presets plus explicit overrides, so an experiment's
// setup is diffable data rather than a hand-rolled config block; the
// bicord_lint rule `scenario-config-literal` keeps it that way.
//
// DSL: one assignment per line, `#` starts a comment, later assignments win
// (overrides compose in declaration order). Durations take a us/ms/s suffix.
// Repeatable keys (`extra.link`, `fault.event`) append instead of replace.

#include <cstdint>
#include <optional>
#include <string>
#include <utility>
#include <vector>

#include "coex/ble_scenario.hpp"
#include "coex/scenario.hpp"
#include "util/time.hpp"

namespace bicord::coex {

class ScenarioSpec {
 public:
  /// One `key = value` assignment; `line` is the 1-based source line when the
  /// entry came from parse() (0 for set() / preset-internal entries), echoed
  /// in lowering errors so `--scenario @file` diagnostics stay actionable.
  struct Entry {
    std::string key;
    std::string value;
    int line = 0;
  };

  ScenarioSpec() = default;

  /// Parses the text DSL. Returns nullopt and fills *error ("line N: ...")
  /// on syntax errors or unknown keys.
  [[nodiscard]] static std::optional<ScenarioSpec> parse(const std::string& text,
                                                         std::string* error = nullptr);

  /// Named specs for the paper's experiments ("default", "motivation",
  /// "table1", "fig7".."fig13", "multinode", "ble") plus the dense scaling
  /// family ("dense", "dense1k", "city") and the multi-grantor failover rig
  /// ("multigrantor", "failover"). Nullopt for unknown names.
  [[nodiscard]] static std::optional<ScenarioSpec> preset(const std::string& name);
  /// Registered preset names, in presentation order.
  [[nodiscard]] static std::vector<std::string> preset_names();
  /// One-line summary for --list-presets; empty for unknown names.
  [[nodiscard]] static std::string preset_summary(const std::string& name);

  // --- overrides (append; lowering applies entries in declaration order) ----
  void set(const std::string& key, const std::string& value);
  void set(const std::string& key, const char* value) { set(key, std::string(value)); }
  void set(const std::string& key, std::int64_t value);
  void set(const std::string& key, std::uint64_t value);
  void set(const std::string& key, int value) { set(key, static_cast<std::int64_t>(value)); }
  void set(const std::string& key, double value);
  void set(const std::string& key, bool value);
  void set(const std::string& key, Duration value);

  [[nodiscard]] const std::vector<Entry>& entries() const { return entries_; }
  [[nodiscard]] bool empty() const { return entries_.empty(); }

  /// Canonical text form; parse(serialize()) round-trips bitwise.
  [[nodiscard]] std::string serialize() const;

  // --- lowering -------------------------------------------------------------
  /// True when the spec selects the ZigBee/BLE topology (`topology = ble`).
  [[nodiscard]] bool is_ble() const;

  /// Lowers to the Wi-Fi/ZigBee testbed config. Returns nullopt and fills
  /// *error (mentioning key and source line) on malformed values.
  [[nodiscard]] std::optional<ScenarioConfig> config(std::string* error = nullptr) const;
  /// Lowers to the BLE-extension config (`topology = ble` specs).
  [[nodiscard]] std::optional<BleScenarioConfig> ble_config(std::string* error = nullptr) const;

  /// config() that aborts with the lowering error on stderr — for benches and
  /// examples whose specs are compile-time-known presets + literal overrides.
  [[nodiscard]] ScenarioConfig must_config() const;
  [[nodiscard]] BleScenarioConfig must_ble_config() const;

 private:
  std::vector<Entry> entries_;
};

}  // namespace bicord::coex
