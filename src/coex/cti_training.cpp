#include "coex/cti_training.hpp"

#include <cmath>
#include <map>
#include <utility>

#include "interferers/bluetooth.hpp"
#include "interferers/microwave.hpp"
#include "phy/medium.hpp"
#include "sim/simulator.hpp"
#include "wifi/wifi_phy.hpp"
#include "util/stats.hpp"
#include "zigbee/zigbee_phy.hpp"

namespace bicord::coex {

namespace {
using detect::RssiSegment;

struct LabelledSegment {
  RssiSegment segment;
  phy::Technology tech;
  int device = -1;  ///< Wi-Fi device index, -1 otherwise
};

/// Repeating raw transmission: `airtime` on, `gap` off.
class RawPeriodicTx {
 public:
  RawPeriodicTx(phy::Medium& medium, phy::Frame frame, phy::Band band,
                double power_dbm, Duration airtime, Duration gap)
      : medium_(medium),
        sim_(medium.simulator()),
        frame_(frame),
        band_(band),
        power_dbm_(power_dbm),
        airtime_(airtime),
        gap_(gap) {}

  void start() {
    running_ = true;
    fire();
  }
  void stop() {
    running_ = false;
    if (event_ != sim::kInvalidEventId) {
      sim_.cancel(event_);
      event_ = sim::kInvalidEventId;
    }
  }

 private:
  void fire() {
    if (!running_) return;
    ++frame_.seq;
    medium_.begin_tx(frame_, band_, power_dbm_, airtime_);
    event_ = sim_.after(airtime_ + gap_, [this] {
      event_ = sim::kInvalidEventId;
      fire();
    });
  }

  phy::Medium& medium_;
  sim::Simulator& sim_;
  phy::Frame frame_;
  phy::Band band_;
  double power_dbm_;
  Duration airtime_;
  Duration gap_;
  bool running_ = false;
  sim::EventId event_ = sim::kInvalidEventId;
};

void collect_segments(sim::Simulator& sim, detect::RssiSampler& sampler, int count,
                      phy::Technology tech, int device,
                      std::vector<LabelledSegment>& out) {
  using namespace bicord::time_literals;
  sim.run_for(30_ms);  // let the source reach steady state
  for (int i = 0; i < count; ++i) {
    bool done = false;
    sampler.capture([&](RssiSegment seg) {
      out.push_back(LabelledSegment{std::move(seg), tech, device});
      done = true;
    });
    while (!done && sim.step()) {
    }
    sim.run_for(2_ms);  // inter-capture gap
  }
}
}  // namespace

CtiTrainingResult train_cti_pipeline(const CtiTrainingConfig& config) {
  using namespace bicord::time_literals;

  sim::Simulator sim(config.seed);
  phy::Medium medium(sim, phy::PathLossModel{40.0, 3.3, 0.0, 0.1});
  const phy::Band zb_band = phy::zigbee_channel(24);

  const phy::NodeId collector = medium.add_node("collector", {0.0, 0.0});
  detect::RssiSampler sampler(medium, collector, zb_band);
  // TelosB-grade RSSI accuracy plus slow indoor fading: the register is
  // noisy sample to sample, and whole captures shift as people move.
  sampler.set_measurement_noise(0.8, 3.0);

  std::vector<LabelledSegment> all;

  // --- foreign ZigBee sender: 50-byte broadcasts every 2 ms ---------------
  {
    const phy::NodeId node = medium.add_node("zb-src", {1.5, 0.5});
    phy::Frame f;
    f.tech = phy::Technology::ZigBee;
    f.kind = phy::FrameKind::Data;
    f.src = node;
    const Duration airtime = zigbee::PhyTimings{}.data_airtime(50);
    RawPeriodicTx tx(medium, f, zb_band, 0.0, airtime, 2_ms);
    tx.start();
    collect_segments(sim, sampler, config.segments_per_source,
                     phy::Technology::ZigBee, -1, all);
    tx.stop();
    sim.run_for(50_ms);
  }

  // --- Bluetooth headset stream --------------------------------------------
  {
    const phy::NodeId node = medium.add_node("bt-src", {1.2, 0.8});
    interferers::BluetoothDevice bt(medium, node);
    bt.start();
    collect_segments(sim, sampler, config.segments_per_source,
                     phy::Technology::Bluetooth, -1, all);
    bt.stop();
    sim.run_for(50_ms);
  }

  // --- microwave oven --------------------------------------------------------
  {
    const phy::NodeId node = medium.add_node("oven", {2.5, 1.0});
    interferers::MicrowaveOven oven(medium, node);
    oven.start();
    collect_segments(sim, sampler, config.segments_per_source,
                     phy::Technology::Microwave, -1, all);
    oven.stop();
    sim.run_for(50_ms);
  }

  // --- Wi-Fi sender at each distance (one "device" per placement). Real
  // devices also differ in workload: frame size and pacing vary slightly
  // per device, which is what the Smoggy-Link fingerprint keys on beyond
  // the raw energy level.
  const std::uint32_t device_payload[] = {150, 100, 60};
  const Duration device_interval[] = {Duration::from_us(800), 1_ms,
                                      Duration::from_us(1300)};
  for (std::size_t d = 0; d < config.wifi_distances_m.size(); ++d) {
    const phy::NodeId node =
        medium.add_node("wifi-src", {config.wifi_distances_m[d], 0.0});
    phy::Frame f;
    f.tech = phy::Technology::WiFi;
    f.kind = phy::FrameKind::Data;
    f.src = node;
    const Duration airtime = wifi::PhyTimings{}.data_airtime(device_payload[d % 3]);
    RawPeriodicTx tx(medium, f, phy::wifi_channel(11), 20.0, airtime,
                     device_interval[d % 3] - airtime);
    tx.start();
    collect_segments(sim, sampler, config.segments_per_source,
                     phy::Technology::WiFi, static_cast<int>(d), all);
    tx.stop();
    sim.run_for(50_ms);
  }

  // --- split train / test (interleaved) -------------------------------------
  CtiTrainingResult result;
  result.classifier = detect::InterferenceClassifier(config.features);
  result.identifier = detect::DeviceIdentifier(config.features);

  std::vector<const LabelledSegment*> train;
  std::vector<const LabelledSegment*> test;
  for (std::size_t i = 0; i < all.size(); ++i) {
    (i % 2 == 0 ? train : test).push_back(&all[i]);
  }
  result.training_segments = train.size();
  result.test_segments = test.size();

  std::vector<int> train_device_truth;
  for (const auto* s : train) {
    result.classifier.add_training_segment(s->segment, s->tech);
    if (s->tech == phy::Technology::WiFi) {
      result.identifier.add_fingerprint(s->segment);
      train_device_truth.push_back(s->device);
    }
  }
  result.classifier.train();

  Rng rng(config.seed ^ 0xD1CEu);
  result.identifier.build(static_cast<int>(config.wifi_distances_m.size()), rng);

  // Map clusters to true devices by majority vote on the training set.
  std::map<int, std::map<int, int>> votes;
  const auto& train_clusters = result.identifier.training_labels();
  for (std::size_t i = 0; i < train_clusters.size(); ++i) {
    ++votes[train_clusters[i]][train_device_truth[i]];
  }
  std::map<int, int> cluster_to_device;
  for (const auto& [cluster, counts] : votes) {
    int best_device = -1;
    int best_votes = -1;
    for (const auto& [device, n] : counts) {
      if (n > best_votes) {
        best_votes = n;
        best_device = device;
      }
    }
    cluster_to_device[cluster] = best_device;
  }

  // --- held-out evaluation ----------------------------------------------------
  std::size_t tech_hits = 0;
  std::size_t wifi_hits = 0;
  std::map<int, std::pair<int, int>> per_device;  // device -> (hits, total)
  for (const auto* s : test) {
    const auto verdict = result.classifier.classify(s->segment);
    const phy::Technology predicted =
        verdict.value_or(phy::Technology::Microwave);  // "no activity" != Wi-Fi
    if (verdict.has_value() && predicted == s->tech) ++tech_hits;
    const bool is_wifi = s->tech == phy::Technology::WiFi;
    const bool said_wifi = verdict.has_value() && predicted == phy::Technology::WiFi;
    if (is_wifi == said_wifi) ++wifi_hits;

    if (is_wifi) {
      const int cluster = result.identifier.identify(s->segment);
      auto& [hits, total] = per_device[s->device];
      ++total;
      const auto it = cluster_to_device.find(cluster);
      if (it != cluster_to_device.end() && it->second == s->device) ++hits;
    }
  }
  result.tech_accuracy =
      static_cast<double>(tech_hits) / static_cast<double>(test.size());
  result.wifi_detection_accuracy =
      static_cast<double>(wifi_hits) / static_cast<double>(test.size());

  std::vector<double> dev_acc;
  for (const auto& [device, ht] : per_device) {
    dev_acc.push_back(static_cast<double>(ht.first) / static_cast<double>(ht.second));
  }
  result.device_accuracy = bicord::mean_of(dev_acc);
  double var = 0.0;
  for (double a : dev_acc) var += (a - result.device_accuracy) * (a - result.device_accuracy);
  result.device_accuracy_std =
      dev_acc.size() > 1 ? std::sqrt(var / static_cast<double>(dev_acc.size())) : 0.0;

  return result;
}

}  // namespace bicord::coex
