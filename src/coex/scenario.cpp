#include "coex/scenario.hpp"

#include <cmath>
#include <stdexcept>

#include "coex/placement.hpp"
#include "wifi/bicord_port.hpp"
#include "zigbee/bicord_port.hpp"

namespace bicord::coex {

namespace {
constexpr phy::Position kWifiSenderPos{0.0, 0.0};    // E in Fig. 6
constexpr phy::Position kWifiReceiverPos{3.0, 0.0};  // F in Fig. 6
constexpr double kGoldenAngle = 2.39996322972865332;

/// Radio config shared by the testbed pair E/F and any extra grantor APs —
/// every grantor must overhear the same traffic the testbed receiver does.
wifi::WifiMac::Config testbed_wifi_config() {
  wifi::WifiMac::Config wifi_cfg;
  wifi_cfg.channel = 11;
  wifi_cfg.tx_power_dbm = 20.0;
  wifi_cfg.timings.data_rate_mbps = 54.0;
  wifi_cfg.timings.basic_rate_mbps = 24.0;
  // Calibrated office ED behaviour for narrowband (ZigBee-width) energy:
  // ~10 dB less sensitive than the -62 dBm wideband figure, with a soft
  // measurement edge. This is what couples signaling power to Wi-Fi
  // deferral at locations C and D (Sec. VIII-B).
  wifi_cfg.ed_threshold_dbm = -51.0;
  wifi_cfg.cca_noise_sigma_db = 2.0;
  return wifi_cfg;
}

/// ZigBee-receiver distance per location (paper: receivers laid 1-5 m from
/// the sender; location B is the far-receiver case).
double receiver_distance_m(ZigbeeLocation loc) {
  switch (loc) {
    case ZigbeeLocation::A: return 1.5;
    case ZigbeeLocation::B: return 4.2;
    case ZigbeeLocation::C: return 2.0;
    case ZigbeeLocation::D: return 2.0;
  }
  return 2.0;
}
}  // namespace

const char* to_string(Coordination c) {
  switch (c) {
    case Coordination::BiCord: return "BiCord";
    case Coordination::Ecc: return "ECC";
    case Coordination::Csma: return "CSMA";
    case Coordination::LteU: return "LTE-U";
    case Coordination::Tsch: return "TSCH";
  }
  return "?";
}

const char* to_string(ZigbeeLocation l) {
  switch (l) {
    case ZigbeeLocation::A: return "A";
    case ZigbeeLocation::B: return "B";
    case ZigbeeLocation::C: return "C";
    case ZigbeeLocation::D: return "D";
  }
  return "?";
}

double default_signaling_power_dbm(ZigbeeLocation loc) {
  // Paper footnote 3: 0, 0, -1, -3 dBm at locations A-D.
  switch (loc) {
    case ZigbeeLocation::A: return 0.0;
    case ZigbeeLocation::B: return 0.0;
    case ZigbeeLocation::C: return -1.0;
    case ZigbeeLocation::D: return -3.0;
  }
  return 0.0;
}

phy::Position location_position(ZigbeeLocation loc) {
  switch (loc) {
    case ZigbeeLocation::A: return {3.4, 1.2};  // near the Wi-Fi receiver F
    case ZigbeeLocation::B: return {4.0, 1.2};  // behind F, far from E and
                                                // from its own receiver
    case ZigbeeLocation::C: return {1.6, 1.4};  // mid-room, closer to E
    case ZigbeeLocation::D: return {1.7, 1.0};  // near the Wi-Fi sender E
  }
  return {3.4, 1.2};
}

Scenario::Scenario(ScenarioConfig config)
    : config_(std::move(config)),
      sim_(std::make_unique<sim::Simulator>(config_.seed)),
      medium_(std::make_unique<phy::Medium>(*sim_, config_.path_loss, config_.medium)),
      probe_(*medium_) {
  build_topology();
  build_wifi_traffic();
  build_coordination();
  build_extra_zigbee();
  build_dense();
  build_mobility();
  build_faults();
  build_parallel();
  probe_.start(sim_->now());
  measure_start_ = sim_->now();
}

Scenario::~Scenario() {
  // Members destroy in reverse declaration order (pool before medium);
  // detaching first keeps the medium from holding a dangling pool pointer
  // while radios unwind.
  if (medium_) medium_->set_worker_pool(nullptr);
}

void Scenario::build_parallel() {
  if (config_.sim_threads <= 1) return;
  worker_pool_ = std::make_unique<sim::WorkerPool>(config_.sim_threads);
  medium_->set_worker_pool(worker_pool_.get());
  // Conservative lookahead: the smallest receive→react→transmit latency any
  // active technology can manage. Wi-Fi turns around in SIFS, 802.15.4 in
  // aTurnaroundTime; the coordination layers (traits grant margins) are far
  // slower. Propagation is instantaneous in the model, so the shard plan
  // classifies medium-coupled interactions as barrier-class on its own.
  const Duration turnaround =
      std::min({wifi::PhyTimings{}.sifs, zigbee::PhyTimings{}.turnaround,
                core::kWifiTraits.grant_margin, core::kBleTraits.grant_margin});
  shard_plan_ = phy::plan_shards(*medium_, config_.sim_threads, turnaround);
  sim::ParallelDispatcher::Config dcfg;
  dcfg.shards = config_.sim_threads;
  dcfg.lookahead = shard_plan_->lookahead;
  dispatcher_ =
      std::make_unique<sim::ParallelDispatcher>(*sim_, worker_pool_.get(), dcfg);
}

void Scenario::build_topology() {
  wifi_sender_node_ = medium_->add_node("wifi-E", kWifiSenderPos);
  wifi_receiver_node_ = medium_->add_node("wifi-F", kWifiReceiverPos);

  zigbee_base_pos_ = location_position(config_.location);
  zigbee_sender_node_ = medium_->add_node("zigbee-tx", zigbee_base_pos_);

  // Receiver sits `receiver_distance_m` away from the sender, pushed away
  // from the Wi-Fi sender so it is shielded a little from interference.
  const double d = config_.zigbee_link_distance_m.value_or(
      receiver_distance_m(config_.location));
  const double dx = zigbee_base_pos_.x - kWifiSenderPos.x;
  const double dy = zigbee_base_pos_.y - kWifiSenderPos.y;
  const double norm = std::max(0.1, std::hypot(dx, dy));
  const phy::Position rx_pos{zigbee_base_pos_.x + d * dx / norm,
                             zigbee_base_pos_.y + d * dy / norm};
  zigbee_receiver_node_ = medium_->add_node("zigbee-rx", rx_pos);

  const wifi::WifiMac::Config wifi_cfg = testbed_wifi_config();
  wifi_sender_mac_ = std::make_unique<wifi::WifiMac>(*medium_, wifi_sender_node_, wifi_cfg);
  wifi_receiver_mac_ =
      std::make_unique<wifi::WifiMac>(*medium_, wifi_receiver_node_, wifi_cfg);

  zigbee::ZigbeeMac::Config zb_cfg;
  zb_cfg.channel = 24;  // overlaps Wi-Fi channel 11
  zb_cfg.tx_power_dbm = config_.zigbee_data_power_dbm;
  // Fast failure at white-space edges: long CSMA/retry chains would blur
  // the Wi-Fi device's 20 ms end-of-burst silence window. BiCord firmware
  // reacts to corruption by re-signaling instead of blind retries.
  zb_cfg.retry_limit = 1;
  zb_cfg.timings.max_csma_backoffs = 2;
  zigbee_sender_mac_ =
      std::make_unique<zigbee::ZigbeeMac>(*medium_, zigbee_sender_node_, zb_cfg);
  zigbee_receiver_mac_ =
      std::make_unique<zigbee::ZigbeeMac>(*medium_, zigbee_receiver_node_, zb_cfg);

  energy_meter_ = std::make_unique<zigbee::EnergyMeter>(*sim_);
  energy_meter_->attach(zigbee_sender_mac_->radio());
  energy_meter_->set_tx_power_dbm(config_.zigbee_data_power_dbm);
}

void Scenario::build_wifi_traffic() {
  auto collect = [this](const wifi::WifiMac::SendOutcome& outcome) {
    if (outcome.frame.kind != phy::FrameKind::Data) return;
    ++wifi_generated_;
    if (outcome.delivered) {
      ++wifi_delivered_;
      const double ms = (outcome.completed - outcome.enqueued).ms();
      (outcome.frame.tag > 0 ? wifi_delay_high_ : wifi_delay_low_).add(ms);
    }
  };

  switch (config_.wifi_traffic) {
    case WifiTrafficKind::Cbr:
      wifi_sender_mac_->set_sent_callback(collect);
      cbr_source_ = std::make_unique<wifi::CbrSource>(
          *wifi_sender_mac_, wifi_receiver_node_, config_.wifi_cbr_payload_bytes,
          config_.wifi_cbr_interval);
      cbr_source_->start();
      break;
    case WifiTrafficKind::Saturated:
      saturated_source_ = std::make_unique<wifi::SaturatedSource>(
          *wifi_sender_mac_, wifi_receiver_node_, config_.wifi_payload_bytes);
      saturated_source_->set_sent_callback(collect);
      saturated_source_->start();
      break;
    case WifiTrafficKind::Priority:
      priority_source_ = std::make_unique<wifi::PriorityScheduleSource>(
          *wifi_sender_mac_, wifi_receiver_node_, config_.wifi_payload_bytes,
          config_.wifi_high_share, config_.wifi_priority_cycle);
      priority_source_->set_sent_callback(collect);
      priority_source_->start();
      break;
  }
}

std::unique_ptr<core::ZigbeeAgentBase> Scenario::make_zigbee_agent(
    zigbee::ZigbeeMac& mac, phy::NodeId receiver, double data_power_dbm,
    double signaling_power_dbm, zigbee::EnergyMeter* meter) {
  switch (config_.coordination) {
    case Coordination::BiCord:
    case Coordination::LteU: {
      // The LTE-U requester is the unmodified BiCord agent: with no CTI
      // classifier attached it probes the channel optimistically and falls
      // back to signaling — exactly the behaviour an eNB interferer needs.
      core::BiCordZigbeeAgent::Config za;
      za.signaling = config_.signaling;
      za.data_power_dbm = data_power_dbm;
      za.default_signaling_power_dbm = signaling_power_dbm;
      auto agent = std::make_unique<core::BiCordZigbeeAgent>(
          zigbee::requester_port(mac), receiver, za);
      agent->set_energy_meter(meter);
      return agent;
    }
    case Coordination::Tsch: {
      zigbee::TschRequester::Config za;
      za.signaling = config_.signaling;
      za.data_power_dbm = data_power_dbm;
      za.signaling_power_dbm = signaling_power_dbm;
      return std::make_unique<zigbee::TschRequester>(zigbee::requester_port(mac),
                                                     receiver, za);
    }
    case Coordination::Ecc: {
      core::EccZigbeeAgent::Config za;
      za.data_power_dbm = data_power_dbm;
      return std::make_unique<core::EccZigbeeAgent>(zigbee::requester_port(mac),
                                                    receiver, za);
    }
    case Coordination::Csma:
      break;
  }
  return std::make_unique<core::CsmaZigbeeAgent>(zigbee::requester_port(mac),
                                                 receiver, data_power_dbm);
}

void Scenario::build_coordination() {
  const double sig_power = config_.signaling_power_dbm.value_or(
      default_signaling_power_dbm(config_.location));

  switch (config_.coordination) {
    case Coordination::BiCord: {
      core::BiCordWifiAgent::Config wa;
      wa.allocator = config_.allocator;
      wa.csi = config_.csi;
      wa.detector = config_.detector;
      bicord_wifi_ = std::make_unique<core::BiCordWifiAgent>(
          wifi::grantor_port(*wifi_receiver_mac_), wa);
      if (!config_.wifi_grants_requests) {
        bicord_wifi_->set_policy([] { return false; });
      } else if (config_.wifi_traffic == WifiTrafficKind::Priority) {
        // Sec. VIII-G: ignore ZigBee requests while video (high priority)
        // traffic is active.
        auto* src = priority_source_.get();
        bicord_wifi_->set_policy([src] { return !src->high_priority_active(); });
      }
      if (!config_.extra_grantors_m.empty()) build_grantors(wa, sig_power);
      break;
    }
    case Coordination::Ecc: {
      auto ecc_cfg = config_.ecc;
      ecc_cfg.zigbee_channel = 24;
      ecc_wifi_ = std::make_unique<core::EccWifiAgent>(
          wifi::grantor_port(*wifi_sender_mac_), ecc_cfg);
      ecc_wifi_->start();
      break;
    }
    case Coordination::LteU: {
      // The eNB sits mid-room: inside the testbed but not on top of either
      // link. Only this branch adds the node, so historical presets keep
      // their NodeIds byte for byte.
      lteu_node_ = medium_->add_node("lteu-enb", phy::Position{2.5, 2.5});
      lteu_device_ =
          std::make_unique<interferers::LteUDevice>(*medium_, lteu_node_, config_.lteu);
      interferers::LteUGrantor::Config gc;
      gc.allocator = config_.allocator;
      lteu_grantor_ = std::make_unique<interferers::LteUGrantor>(
          *medium_, lteu_node_, *lteu_device_, gc);
      lteu_device_->start();
      break;
    }
    case Coordination::Tsch: {
      // Same grantor stack as BiCord — only the traits pointer changes, which
      // flips the engine onto the clock-bounded lease path (a hopping
      // requester cannot be assumed to overhear the grant-end resume).
      core::BiCordWifiAgent::Config wa;
      wa.allocator = config_.allocator;
      wa.csi = config_.csi;
      wa.detector = config_.detector;
      wa.traits = &core::kTschTraits;
      wa.grant_margin = core::kTschTraits.grant_margin;
      wa.watchdog_slack = core::kTschTraits.watchdog_slack;
      bicord_wifi_ = std::make_unique<core::BiCordWifiAgent>(
          wifi::grantor_port(*wifi_receiver_mac_), wa);
      if (!config_.wifi_grants_requests) {
        bicord_wifi_->set_policy([] { return false; });
      }
      zigbee::TschHopSchedule::Config hc;
      hc.hop_period = config_.tsch_hop_period;
      tsch_schedule_ = std::make_unique<zigbee::TschHopSchedule>(*sim_, hc);
      tsch_schedule_->add_radio(zigbee_sender_mac_->radio());
      tsch_schedule_->add_radio(zigbee_receiver_mac_->radio());
      tsch_schedule_->start();
      break;
    }
    case Coordination::Csma:
      break;
  }

  zigbee_agent_ =
      make_zigbee_agent(*zigbee_sender_mac_, zigbee_receiver_node_,
                        config_.zigbee_data_power_dbm, sig_power, energy_meter_.get());

  if (config_.zigbee_duty_cycle) {
    duty_cycler_ = std::make_unique<zigbee::DutyCycler>(*zigbee_sender_mac_);
    // Stay awake while the agent still holds undelivered packets: the MAC
    // looks idle between agent-paced packets and during signaling gaps.
    duty_cycler_->set_busy_hook(
        [this] { return zigbee_agent_->backlog() > 0; });
  }
  burst_source_ = std::make_unique<zigbee::BurstSource>(*sim_, config_.burst);
  burst_source_->set_burst_callback([this](int n, std::uint32_t payload) {
    if (duty_cycler_ != nullptr) duty_cycler_->wake();
    zigbee_agent_->submit_burst(n, payload);
  });
  burst_source_->start();
}

void Scenario::build_grantors(const core::BiCordWifiAgent::Config& wa,
                              double sig_power) {
  // Election metric: the mean received signaling power of the requester at
  // each grantor — pure geometry (deterministic path-loss mean), so every
  // grantor derives the same ranking without any election traffic.
  const auto metric_dbm = [&](double dist_m) {
    return sig_power - config_.path_loss.mean_loss_db(dist_m);
  };

  election_ = std::make_unique<core::GrantorElection>(
      *sim_, config_.election_grace, core::kWifiTraits.grant_margin);
  const double f_dist = std::hypot(kWifiReceiverPos.x - zigbee_base_pos_.x,
                                   kWifiReceiverPos.y - zigbee_base_pos_.y);
  bicord_wifi_->join_election(*election_, metric_dbm(f_dist));

  extra_grantors_.reserve(config_.extra_grantors_m.size());
  int gi = 0;
  for (const double dist : config_.extra_grantors_m) {
    // Deterministic golden-angle directions around the ZigBee sender: the
    // configured value is exactly the requester distance the metric uses.
    const double ang = kGoldenAngle * static_cast<double>(++gi);
    const phy::Position pos{zigbee_base_pos_.x + dist * std::cos(ang),
                            zigbee_base_pos_.y + dist * std::sin(ang)};
    const phy::NodeId node = medium_->add_node("grantor-ap", pos);

    ExtraGrantor g;
    g.mac = std::make_unique<wifi::WifiMac>(*medium_, node, testbed_wifi_config());
    g.agent = std::make_unique<core::BiCordWifiAgent>(wifi::grantor_port(*g.mac), wa);
    if (!config_.wifi_grants_requests) {
      g.agent->set_policy([] { return false; });
    } else if (config_.wifi_traffic == WifiTrafficKind::Priority) {
      auto* src = priority_source_.get();
      g.agent->set_policy([src] { return !src->high_priority_active(); });
    }
    g.agent->join_election(*election_, metric_dbm(dist));
    extra_grantors_.push_back(std::move(g));
  }
}

void Scenario::build_extra_zigbee() {
  for (const auto& spec : config_.extra_zigbee) {
    const phy::Position base = location_position(spec.location);
    const phy::Position pos{base.x + spec.offset.x, base.y + spec.offset.y};
    const phy::NodeId tx = medium_->add_node("zigbee-tx-extra", pos);

    const double d = receiver_distance_m(spec.location);
    const double norm = std::max(0.1, std::hypot(pos.x, pos.y));
    const phy::NodeId rx = medium_->add_node(
        "zigbee-rx-extra",
        phy::Position{pos.x + d * pos.x / norm, pos.y + d * pos.y / norm});

    zigbee::ZigbeeMac::Config zc;
    zc.channel = 24;
    zc.tx_power_dbm = spec.data_power_dbm;
    zc.retry_limit = 1;
    zc.timings.max_csma_backoffs = 2;

    ZigbeeEndpoint ep;
    ep.sender = std::make_unique<zigbee::ZigbeeMac>(*medium_, tx, zc);
    ep.receiver = std::make_unique<zigbee::ZigbeeMac>(*medium_, rx, zc);
    ep.agent = make_zigbee_agent(
        *ep.sender, rx, spec.data_power_dbm,
        spec.signaling_power_dbm.value_or(default_signaling_power_dbm(spec.location)),
        nullptr);
    ep.source = std::make_unique<zigbee::BurstSource>(*sim_, spec.burst);
    auto* agent = ep.agent.get();
    ep.source->set_burst_callback([agent](int n, std::uint32_t payload) {
      agent->submit_burst(n, payload);
    });
    ep.source->start();
    extras_.push_back(std::move(ep));
  }
}

void Scenario::build_dense() {
  const DenseFieldSpec& f = config_.dense;
  if (f.empty()) return;

  const std::size_t wifi_pairs = static_cast<std::size_t>(std::max(f.wifi_pairs, 0));
  const std::size_t zigbee_links = static_cast<std::size_t>(std::max(f.zigbee_links, 0));
  const std::size_t ble_nodes = static_cast<std::size_t>(std::max(f.ble_nodes, 0));

  // One placement site per device installation; link partners (Wi-Fi client,
  // ZigBee receiver) sit a few metres from their site at a deterministic
  // golden-angle offset, so no two installations share an axis.
  const std::size_t sites_needed = wifi_pairs + zigbee_links + ble_nodes;
  const auto sites = generate_placement(
      PlacementParams{f.area_m, f.clusters, f.cluster_sigma_m, 5.0}, sites_needed,
      f.placement_seed);
  std::size_t site = 0;

  dense_wifi_.reserve(wifi_pairs);
  for (std::size_t i = 0; i < wifi_pairs; ++i) {
    const phy::Position ap_pos = sites[site++];
    const double ang = kGoldenAngle * static_cast<double>(i);
    const double d = 2.0 + static_cast<double>(i % 7);
    const phy::Position cl_pos{ap_pos.x + d * std::cos(ang), ap_pos.y + d * std::sin(ang)};
    const phy::NodeId ap = medium_->add_node("dense-ap", ap_pos);
    const phy::NodeId client = medium_->add_node("dense-sta", cl_pos);

    wifi::WifiMac::Config wc;
    static constexpr int kWifiChannels[] = {1, 6, 11};
    wc.channel = kWifiChannels[i % 3];
    wc.tx_power_dbm = f.wifi_tx_power_dbm;

    DenseWifiPair pair;
    pair.ap = std::make_unique<wifi::WifiMac>(*medium_, ap, wc);
    pair.client = std::make_unique<wifi::WifiMac>(*medium_, client, wc);
    // Hash-jittered interval: co-channel APs must not fire in lockstep or
    // the field degenerates into one synchronized collision per period.
    const Duration interval =
        f.wifi_interval + Duration::from_us(static_cast<std::int64_t>((i * 317) % 5000));
    pair.source = std::make_unique<wifi::CbrSource>(*pair.ap, client,
                                                    f.wifi_payload_bytes, interval);
    auto* delivered = &dense_wifi_.emplace_back(std::move(pair)).delivered;
    dense_wifi_.back().ap->set_sent_callback(
        [delivered](const wifi::WifiMac::SendOutcome& outcome) {
          if (outcome.delivered && outcome.frame.kind == phy::FrameKind::Data) ++*delivered;
        });
    dense_wifi_.back().source->start();
  }

  dense_zigbee_.reserve(zigbee_links);
  for (std::size_t i = 0; i < zigbee_links; ++i) {
    const phy::Position tx_pos = sites[site++];
    const double ang = kGoldenAngle * static_cast<double>(i) + 0.7;
    const double d = 1.5 + 0.5 * static_cast<double>(i % 8);
    const phy::Position rx_pos{tx_pos.x + d * std::cos(ang), tx_pos.y + d * std::sin(ang)};
    const phy::NodeId tx = medium_->add_node("dense-zb-tx", tx_pos);
    const phy::NodeId rx = medium_->add_node("dense-zb-rx", rx_pos);

    zigbee::ZigbeeMac::Config zc;
    zc.channel = 11 + static_cast<int>(i % 16);  // spread over all 16 channels
    zc.tx_power_dbm = f.zigbee_tx_power_dbm;

    ZigbeeEndpoint ep;
    ep.sender = std::make_unique<zigbee::ZigbeeMac>(*medium_, tx, zc);
    ep.receiver = std::make_unique<zigbee::ZigbeeMac>(*medium_, rx, zc);
    // Field links are plain CSMA regardless of the testbed's coordination
    // mode: they are background traffic, not BiCord participants.
    ep.agent = std::make_unique<core::CsmaZigbeeAgent>(
        zigbee::requester_port(*ep.sender), rx, f.zigbee_tx_power_dbm);
    zigbee::BurstSource::Config bc;
    bc.packets_per_burst = 2 + static_cast<int>(i % 5);
    bc.payload_bytes = 30 + 10 * static_cast<std::uint32_t>(i % 6);
    bc.mean_interval = Duration::from_ms(150 + 50 * static_cast<std::int64_t>(i % 8));
    bc.poisson = (i % 2) == 0;
    ep.source = std::make_unique<zigbee::BurstSource>(*sim_, bc);
    auto* agent = ep.agent.get();
    ep.source->set_burst_callback([agent](int n, std::uint32_t payload) {
      agent->submit_burst(n, payload);
    });
    ep.source->start();
    dense_zigbee_.push_back(std::move(ep));
  }

  dense_ble_.reserve(ble_nodes);
  for (std::size_t i = 0; i < ble_nodes; ++i) {
    const phy::NodeId node = medium_->add_node("dense-bt", sites[site++]);
    interferers::BluetoothDevice::Config bt;
    bt.tx_power_dbm = f.ble_tx_power_dbm;
    auto device = std::make_unique<interferers::BluetoothDevice>(*medium_, node, bt);
    device->start();
    dense_ble_.push_back(std::move(device));
  }
}

void Scenario::build_mobility() {
  if (config_.person_mobility && bicord_wifi_ != nullptr) {
    bicord_wifi_->csi_stream().set_mobility(config_.person_event_rate_hz);
  }
  if (config_.device_mobility) {
    device_mover_ = std::make_unique<sim::PeriodicTask>(
        *sim_, config_.device_move_period, [this] {
          // Random walk within ~1 m of the base position (Sec. VIII-F).
          auto& rng = sim_->rng();
          const double r = rng.uniform(0.0, 0.5);
          const double theta = rng.uniform(0.0, 6.283185307179586);
          medium_->set_position(zigbee_sender_node_,
                                phy::Position{zigbee_base_pos_.x + r * std::cos(theta),
                                              zigbee_base_pos_.y + r * std::sin(theta)});
        });
    device_mover_->start();
  }
}

void Scenario::build_faults() {
  if (config_.fault_plan.empty()) return;
  fault_injector_ = std::make_unique<fault::FaultInjector>(*sim_, config_.fault_plan);
  fault_injector_->attach_medium(*medium_);
  if (bicord_wifi_ != nullptr) fault_injector_->attach_wifi_agent(*bicord_wifi_);
  // Extra grantors get their own clock-skew slots (attach order after the
  // testbed grantor, so single-grantor plans draw identically to before).
  for (auto& g : extra_grantors_) fault_injector_->attach_wifi_agent(*g.agent);
  if (auto* zb = bicord_zigbee()) fault_injector_->attach_zigbee_agent(*zb);

  fault_injector_->set_burst_shift_handler([this](int packets, Duration interval) {
    auto cfg = burst_source_->config();
    if (packets > 0) cfg.packets_per_burst = packets;
    if (interval > Duration::zero()) cfg.mean_interval = interval;
    burst_source_->set_config(cfg);
  });
  // Link index space: 0 = primary, 1..extras = extra links, then the dense
  // field's ZigBee links — so churn plans can cycle background devices
  // in and out of dense scenarios without touching the testbed. Negative
  // links address grantors: -1 = testbed receiver F, -2.. = extra grantor
  // APs; node-leave kills that grantor's coordination process (the radio
  // keeps running), node-join revives it.
  fault_injector_->set_node_handler([this](int link, bool join) {
    if (link < 0) {
      const std::size_t g = static_cast<std::size_t>(-link) - 1;
      core::BiCordWifiAgent* agent = nullptr;
      if (g == 0) {
        agent = bicord_wifi_.get();
      } else if (g - 1 < extra_grantors_.size()) {
        agent = extra_grantors_[g - 1].agent.get();
      }
      if (agent != nullptr) agent->set_offline(!join);
      return;
    }
    zigbee::BurstSource* source = nullptr;
    if (link == 0) {
      source = burst_source_.get();
    } else if (static_cast<std::size_t>(link - 1) < extras_.size()) {
      source = extras_[static_cast<std::size_t>(link - 1)].source.get();
    } else if (static_cast<std::size_t>(link - 1) - extras_.size() < dense_zigbee_.size()) {
      source = dense_zigbee_[static_cast<std::size_t>(link - 1) - extras_.size()].source.get();
    }
    if (source == nullptr) return;
    if (join && !source->running()) {
      source->start();
    } else if (!join && source->running()) {
      source->stop();
    }
  });
  fault_injector_->arm();
}

void Scenario::run_for(Duration d) {
  if (dispatcher_ != nullptr) {
    dispatcher_->run_for(d);
  } else {
    sim_->run_for(d);
  }
}

void Scenario::start_measurement() {
  probe_.start(sim_->now());
  measure_start_ = sim_->now();
}

UtilizationReport Scenario::utilization() const { return probe_.report(sim_->now()); }

const core::ZigbeeLinkStats& Scenario::zigbee_stats() const {
  return zigbee_agent_->stats();
}

double Scenario::zigbee_goodput_kbps() const {
  const double elapsed = (sim_->now() - measure_start_).sec();
  if (elapsed <= 0.0) return 0.0;
  return static_cast<double>(zigbee_agent_->stats().payload_bytes_delivered) * 8.0 /
         1000.0 / elapsed;
}

const Samples& Scenario::wifi_delay_ms(int priority) const {
  return priority > 0 ? wifi_delay_high_ : wifi_delay_low_;
}

double Scenario::wifi_delivery_ratio() const {
  return wifi_generated_ ? static_cast<double>(wifi_delivered_) /
                               static_cast<double>(wifi_generated_)
                         : 0.0;
}

std::uint64_t Scenario::dense_wifi_delivered() const {
  std::uint64_t total = 0;
  for (const auto& p : dense_wifi_) total += p.delivered;
  return total;
}

std::uint64_t Scenario::dense_zigbee_delivered() const {
  std::uint64_t total = 0;
  for (const auto& ep : dense_zigbee_) total += ep.agent->stats().delivered;
  return total;
}

core::BiCordZigbeeAgent* Scenario::bicord_zigbee() {
  return dynamic_cast<core::BiCordZigbeeAgent*>(zigbee_agent_.get());
}

zigbee::TschRequester* Scenario::tsch_requester() {
  return dynamic_cast<zigbee::TschRequester*>(zigbee_agent_.get());
}

core::BiCordWifiAgent* Scenario::grantor_agent(std::size_t member) {
  if (member == 0) return bicord_wifi_.get();
  if (member - 1 < extra_grantors_.size()) return extra_grantors_[member - 1].agent.get();
  return nullptr;
}

core::ZigbeeAgentBase& Scenario::zigbee_agent_at(std::size_t i) {
  if (i == 0) return *zigbee_agent_;
  return *extras_.at(i - 1).agent;
}

const core::ZigbeeLinkStats& Scenario::zigbee_stats_at(std::size_t i) const {
  if (i == 0) return zigbee_agent_->stats();
  return extras_.at(i - 1).agent->stats();
}

core::ZigbeeLinkStats Scenario::aggregate_zigbee_stats() const {
  core::ZigbeeLinkStats total;
  for (std::size_t i = 0; i < zigbee_link_count(); ++i) {
    const auto& s = zigbee_stats_at(i);
    total.generated += s.generated;
    total.delivered += s.delivered;
    total.dropped += s.dropped;
    total.payload_bytes_delivered += s.payload_bytes_delivered;
    for (double v : s.delay_ms.values()) total.delay_ms.add(v);
  }
  return total;
}

}  // namespace bicord::coex
