#pragma once
// The Sec. VII-D extension testbed in a box: a ZigBee link inside a cluster
// of aggressive BLE connections, optionally coordinated by BiCord-for-BLE.
//
// Mirrors coex::Scenario for the ZigBee/BLE technology pair: several BLE
// audio-like links hop across the 2.4 GHz band around one ZigBee link; with
// coordination enabled each BLE master runs a BleBiCordAgent (cross-decoding
// receiver + spectral leases) and the ZigBee sender a BleAwareZigbeeAgent.
// Extracted from bench_ext_ble so benches, bicordsim, and the golden
// determinism test share one topology (construction order — and therefore
// RNG/event scheduling — is part of the contract).

#include <cstdint>
#include <memory>
#include <vector>

#include "ble/ble_bicord.hpp"
#include "ble/ble_link.hpp"
#include "ble/ble_zigbee_agent.hpp"
#include "phy/medium.hpp"
#include "phy/path_loss.hpp"
#include "sim/simulator.hpp"
#include "zigbee/traffic.hpp"
#include "zigbee/zigbee_mac.hpp"

namespace bicord::coex {

struct BleScenarioConfig {
  std::uint64_t seed = 2626;
  /// Number of BLE master/slave pairs packed around the ZigBee link.
  int ble_links = 4;
  /// Run BiCord-for-BLE coordination agents on the BLE masters.
  bool coordinate = true;

  // --- BLE side (audio-streaming-like load) ---------------------------------
  Duration ble_connection_interval = Duration::from_us(7500);
  std::uint32_t ble_payload_bytes = 251;  ///< max LE data PDU
  double ble_tx_power_dbm = 4.0;          ///< class-2-ish audio links

  // --- ZigBee side ----------------------------------------------------------
  int zigbee_channel = 24;
  zigbee::BurstSource::Config burst{
      .packets_per_burst = 5,
      .payload_bytes = 50,
      .mean_interval = Duration::from_ms(150),
  };

  /// Same office propagation model as ScenarioConfig.
  phy::PathLossModel path_loss{40.0, 3.0, 0.0, 0.1};
};

class BleScenario {
 public:
  explicit BleScenario(BleScenarioConfig config);

  BleScenario(const BleScenario&) = delete;
  BleScenario& operator=(const BleScenario&) = delete;

  void run_for(Duration d);

  /// Headline metrics matching bench_ext_ble's report columns.
  struct Report {
    double zb_delivery = 0.0;
    double zb_delay_ms = 0.0;
    double zb_attempt_overhead = 0.0;  ///< MAC attempts per delivered packet
    double ble_success = 0.0;
    std::uint64_t leases = 0;
    std::uint64_t controls = 0;
  };
  [[nodiscard]] Report report() const;

  // --- components -----------------------------------------------------------
  [[nodiscard]] sim::Simulator& simulator() { return *sim_; }
  [[nodiscard]] phy::Medium& medium() { return *medium_; }
  [[nodiscard]] ble::BleAwareZigbeeAgent& zigbee_agent() { return *zigbee_agent_; }
  [[nodiscard]] const std::vector<std::unique_ptr<ble::BleConnection>>& ble_links() const {
    return links_;
  }
  [[nodiscard]] const std::vector<std::unique_ptr<ble::BleBiCordAgent>>& ble_agents() const {
    return agents_;
  }
  [[nodiscard]] const BleScenarioConfig& config() const { return config_; }

 private:
  BleScenarioConfig config_;
  std::unique_ptr<sim::Simulator> sim_;
  std::unique_ptr<phy::Medium> medium_;
  std::vector<std::unique_ptr<ble::BleConnection>> links_;
  std::unique_ptr<zigbee::ZigbeeMac> zigbee_sender_mac_;
  std::unique_ptr<zigbee::ZigbeeMac> zigbee_receiver_mac_;
  std::vector<std::unique_ptr<ble::BleBiCordAgent>> agents_;
  std::unique_ptr<ble::BleAwareZigbeeAgent> zigbee_agent_;
  std::unique_ptr<zigbee::BurstSource> burst_source_;
};

}  // namespace bicord::coex
