#pragma once
// The cross-technology signaling experiment (paper Sec. VIII-B, Tables I
// and II).
//
// A ZigBee node at one of the testbed locations transmits trials of k
// control packets while the Wi-Fi link E -> F carries the paper's CBR
// workload (100 B every 1 ms). The Wi-Fi receiver runs the CSI detector; a
// detection inside a trial's window (plus a small guard) is a true
// positive, everything else — detections in the quiet gaps between trials
// or duplicates within one trial — is a false positive. Precision and
// recall follow the paper's definitions.

#include <cstdint>
#include <vector>

#include "coex/scenario.hpp"
#include "csi/csi_detector.hpp"
#include "csi/csi_model.hpp"

namespace bicord::coex {

struct SignalingExperimentConfig {
  std::uint64_t seed = 1;
  ZigbeeLocation location = ZigbeeLocation::A;
  double power_dbm = 0.0;
  int control_packets = 4;     ///< packets per signaling trial (3/4/5)
  int trials = 600;            ///< paper: 600
  Duration trial_gap = Duration::from_ms(16);  ///< quiet time between trials
  Duration control_gap = Duration::from_us(250);
  std::uint32_t control_payload_bytes = 120;
  csi::CsiModelParams csi;
  csi::DetectorParams detector;
  /// Use the continuity rule (default) or the naive amplitude-only detector
  /// (ablation).
  bool amplitude_only = false;
};

struct SignalingResult {
  int trials = 0;
  int detected_trials = 0;   ///< trials with >= 1 in-window detection
  int true_positives = 0;    ///< == detected_trials (1 TP max per trial)
  int false_positives = 0;   ///< gap detections + in-trial duplicates
  double wifi_prr = 0.0;     ///< Wi-Fi link delivery ratio during the run
  double wifi_prr_baseline = 0.0;  ///< same link without any signaling

  [[nodiscard]] double recall() const {
    return trials ? static_cast<double>(detected_trials) / trials : 0.0;
  }
  [[nodiscard]] double precision() const {
    const int positives = true_positives + false_positives;
    return positives ? static_cast<double>(true_positives) / positives : 0.0;
  }
};

[[nodiscard]] SignalingResult run_signaling_experiment(
    const SignalingExperimentConfig& config);

}  // namespace bicord::coex
