#pragma once
// Deterministic site placement for the dense / city presets.
//
// Dense scenarios drop hundreds of background devices over a square field.
// Real deployments are not uniform — APs and sensors cluster in buildings —
// so the generator supports a Thomas-style cluster process: uniform cluster
// centres, Gaussian scatter around them, everything clamped to the field.
// Placement draws from its own seeded Rng (never the simulator stream), so
// adding or removing field devices cannot perturb any other stochastic
// behaviour in a run, and a placement is replayable from (params, count,
// seed) alone.

#include <cstdint>
#include <vector>

#include "phy/geometry.hpp"

namespace bicord::coex {

struct PlacementParams {
  /// Edge of the square field, metres; sites land in [margin, area - margin].
  double area_m = 1000.0;
  /// Number of cluster centres; 0 places sites uniformly over the field.
  int clusters = 0;
  /// Gaussian scatter (per axis) of sites around their cluster centre.
  double cluster_sigma_m = 30.0;
  /// Keeps sites (and cluster centres) off the exact field border.
  double margin_m = 5.0;
};

/// Generates `count` site positions. Deterministic in (params, count, seed).
[[nodiscard]] std::vector<phy::Position> generate_placement(
    const PlacementParams& params, std::size_t count, std::uint64_t seed);

}  // namespace bicord::coex
