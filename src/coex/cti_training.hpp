#pragma once
// Builds and evaluates the CTI-detection pipeline (paper Sec. VII-A).
//
// Reproduces the paper's data-collection procedure: a ZigBee collector
// records 40 kHz / 5 ms RSSI segments while exactly one interference source
// is active — a foreign ZigBee sender (50 B every 2 ms), a Bluetooth
// headset stream, a microwave oven, or a Wi-Fi CBR sender (100 B every
// 1 ms) placed at 1, 3 and 5 m. Half the segments train the decision tree
// and the k-means fingerprint clusters; the other half measure accuracy.

#include <cstdint>
#include <vector>

#include "detect/classifier.hpp"

namespace bicord::coex {

struct CtiTrainingConfig {
  std::uint64_t seed = 42;
  /// Segments recorded per source configuration (paper: 200).
  int segments_per_source = 200;
  /// Wi-Fi sender distances from the collector, metres (paper: 1, 3, 5).
  std::vector<double> wifi_distances_m = {1.0, 3.0, 5.0};
  detect::FeatureParams features;
};

struct CtiTrainingResult {
  detect::InterferenceClassifier classifier;
  detect::DeviceIdentifier identifier;

  /// Held-out multi-class accuracy of the technology classifier.
  double tech_accuracy = 0.0;
  /// Held-out binary accuracy of "is this Wi-Fi?" — the paper's 96.39 %.
  double wifi_detection_accuracy = 0.0;
  /// Held-out per-device identification accuracy — the paper's 89.76 %.
  double device_accuracy = 0.0;
  /// Std-dev of the per-device accuracies — the paper's 2.14 %.
  double device_accuracy_std = 0.0;

  std::size_t training_segments = 0;
  std::size_t test_segments = 0;
};

/// Runs the full collection + training + evaluation procedure.
[[nodiscard]] CtiTrainingResult train_cti_pipeline(const CtiTrainingConfig& config);

}  // namespace bicord::coex
