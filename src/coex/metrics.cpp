#include "coex/metrics.hpp"

namespace bicord::coex {

void AirtimeProbe::start(TimePoint now) {
  started_ = now;
  wifi_at_start_ = medium_.airtime(phy::Technology::WiFi);
  zigbee_at_start_ = medium_.airtime(phy::Technology::ZigBee);
}

UtilizationReport AirtimeProbe::report(TimePoint now) const {
  UtilizationReport r;
  const double elapsed = (now - started_).sec();
  if (elapsed <= 0.0) return r;
  r.wifi = (medium_.airtime(phy::Technology::WiFi) - wifi_at_start_).sec() / elapsed;
  r.zigbee = (medium_.airtime(phy::Technology::ZigBee) - zigbee_at_start_).sec() / elapsed;
  r.total = r.wifi + r.zigbee;
  return r;
}

}  // namespace bicord::coex
