#include "coex/scenario_spec.hpp"

#include <cctype>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <sstream>

namespace bicord::coex {
namespace {

std::string trim(const std::string& s) {
  std::size_t b = 0;
  std::size_t e = s.size();
  while (b < e && std::isspace(static_cast<unsigned char>(s[b])) != 0) ++b;
  while (e > b && std::isspace(static_cast<unsigned char>(s[e - 1])) != 0) --e;
  return s.substr(b, e - b);
}

std::string lower(std::string s) {
  for (char& c : s) c = static_cast<char>(std::tolower(static_cast<unsigned char>(c)));
  return s;
}

bool parse_i64(const std::string& s, std::int64_t* out) {
  if (s.empty()) return false;
  char* end = nullptr;
  const long long v = std::strtoll(s.c_str(), &end, 10);
  if (end != s.c_str() + s.size()) return false;
  *out = v;
  return true;
}

bool parse_u64(const std::string& s, std::uint64_t* out) {
  if (s.empty() || s[0] == '-') return false;
  char* end = nullptr;
  const unsigned long long v = std::strtoull(s.c_str(), &end, 10);
  if (end != s.c_str() + s.size()) return false;
  *out = v;
  return true;
}

bool parse_f64(const std::string& s, double* out) {
  if (s.empty()) return false;
  char* end = nullptr;
  const double v = std::strtod(s.c_str(), &end);
  if (end != s.c_str() + s.size()) return false;
  *out = v;
  return true;
}

bool parse_bool(const std::string& s, bool* out) {
  const std::string v = lower(s);
  if (v == "true" || v == "1" || v == "on" || v == "yes") {
    *out = true;
    return true;
  }
  if (v == "false" || v == "0" || v == "off" || v == "no") {
    *out = false;
    return true;
  }
  return false;
}

/// Durations use the fault-plan DSL's suffixes: us / ms / s (decimals OK).
bool parse_duration(const std::string& s, Duration* out) {
  if (s.empty()) return false;
  double scale_to_us = 0.0;
  std::string num;
  if (s.size() > 2 && s.compare(s.size() - 2, 2, "us") == 0) {
    scale_to_us = 1.0;
    num = s.substr(0, s.size() - 2);
  } else if (s.size() > 2 && s.compare(s.size() - 2, 2, "ms") == 0) {
    scale_to_us = 1e3;
    num = s.substr(0, s.size() - 2);
  } else if (s.size() > 1 && s.back() == 's') {
    scale_to_us = 1e6;
    num = s.substr(0, s.size() - 1);
  } else {
    return false;
  }
  double v = 0.0;
  if (!parse_f64(trim(num), &v)) return false;
  *out = Duration::from_us(std::llround(v * scale_to_us));
  return true;
}

bool parse_coordination(const std::string& s, Coordination* out) {
  const std::string v = lower(s);
  if (v == "bicord") *out = Coordination::BiCord;
  else if (v == "ecc") *out = Coordination::Ecc;
  else if (v == "csma") *out = Coordination::Csma;
  else if (v == "lteu") *out = Coordination::LteU;
  else if (v == "tsch") *out = Coordination::Tsch;
  else return false;
  return true;
}

bool parse_location(const std::string& s, ZigbeeLocation* out) {
  const std::string v = lower(s);
  if (v == "a") *out = ZigbeeLocation::A;
  else if (v == "b") *out = ZigbeeLocation::B;
  else if (v == "c") *out = ZigbeeLocation::C;
  else if (v == "d") *out = ZigbeeLocation::D;
  else return false;
  return true;
}

bool parse_wifi_traffic(const std::string& s, WifiTrafficKind* out) {
  const std::string v = lower(s);
  if (v == "cbr") *out = WifiTrafficKind::Cbr;
  else if (v == "saturated") *out = WifiTrafficKind::Saturated;
  else if (v == "priority") *out = WifiTrafficKind::Priority;
  else return false;
  return true;
}

/// "dx,dy" -> Position.
bool parse_position(const std::string& s, phy::Position* out) {
  const auto comma = s.find(',');
  if (comma == std::string::npos) return false;
  double x = 0.0;
  double y = 0.0;
  if (!parse_f64(trim(s.substr(0, comma)), &x)) return false;
  if (!parse_f64(trim(s.substr(comma + 1)), &y)) return false;
  *out = phy::Position{x, y};
  return true;
}

/// `extra.link` value: space-separated key=value tokens
///   loc=A..D offset=dx,dy packets=N payload=B interval=<dur> poisson=<bool>
///   power=<dBm> signaling=<dBm>
bool parse_extra_link(const std::string& text, ExtraZigbeeSpec* out,
                      std::string* why) {
  ExtraZigbeeSpec spec;
  std::istringstream in(text);
  std::string token;
  while (in >> token) {
    const auto eq = token.find('=');
    if (eq == std::string::npos) {
      *why = "token '" + token + "' is not key=value";
      return false;
    }
    const std::string key = token.substr(0, eq);
    const std::string value = token.substr(eq + 1);
    bool ok = true;
    std::int64_t i = 0;
    if (key == "loc") {
      ok = parse_location(value, &spec.location);
    } else if (key == "offset") {
      ok = parse_position(value, &spec.offset);
    } else if (key == "packets") {
      ok = parse_i64(value, &i) && i > 0;
      spec.burst.packets_per_burst = static_cast<int>(i);
    } else if (key == "payload") {
      ok = parse_i64(value, &i) && i > 0;
      spec.burst.payload_bytes = static_cast<std::uint32_t>(i);
    } else if (key == "interval") {
      ok = parse_duration(value, &spec.burst.mean_interval);
    } else if (key == "poisson") {
      ok = parse_bool(value, &spec.burst.poisson);
    } else if (key == "power") {
      ok = parse_f64(value, &spec.data_power_dbm);
    } else if (key == "signaling") {
      double p = 0.0;
      ok = parse_f64(value, &p);
      spec.signaling_power_dbm = p;
    } else {
      *why = "unknown token key '" + key + "'";
      return false;
    }
    if (!ok) {
      *why = "bad value '" + value + "' for token '" + key + "'";
      return false;
    }
  }
  *out = spec;
  return true;
}

/// Shortest decimal form that round-trips the exact double.
std::string format_double(double v) {
  char buf[64];
  for (int prec = 15; prec <= 17; ++prec) {
    std::snprintf(buf, sizeof(buf), "%.*g", prec, v);
    double back = 0.0;
    if (parse_f64(buf, &back) && back == v) break;
  }
  return buf;
}

constexpr const char* kKnownKeys[] = {
    "seed",          "topology",
    "coordination",  "location",
    "wifi.traffic",  "wifi.payload",
    "wifi.cbr_interval", "wifi.cbr_payload",
    "wifi.high_share", "wifi.priority_cycle",
    "wifi.grants_requests",
    "grantors",      "election.grace",
    "burst.packets", "burst.payload",
    "burst.interval", "burst.poisson",
    "zigbee.data_power", "zigbee.signaling_power",
    "zigbee.link_distance", "zigbee.duty_cycle",
    "allocator.initial_whitespace", "allocator.control_duration",
    "allocator.end_of_burst_gap", "allocator.reestimate_period",
    "allocator.max_whitespace",
    "signaling.control_payload", "signaling.max_control_packets",
    "signaling.control_gap", "signaling.ignored_backoff",
    "ecc.period",    "ecc.whitespace",
    "ecc.emulation_power", "ecc.emulation_airtime",
    "mobility.person", "mobility.person_rate",
    "mobility.device", "mobility.device_period",
    "pathloss.ref_db", "pathloss.exponent",
    "pathloss.sigma",
    "medium.snap_floor", "medium.spatial_index",
    "medium.cell",   "medium.max_tx_power",
    "sim.threads",
    "dense.wifi_pairs", "dense.zigbee_links",
    "dense.ble_nodes", "dense.area",
    "dense.clusters", "dense.cluster_sigma",
    "dense.seed",    "dense.wifi_interval",
    "dense.wifi_payload", "dense.wifi_power",
    "dense.zigbee_power", "dense.ble_power",
    "fault.preset",  "fault.event",
    "fault.clock_skew_ppm",
    "extra.link",    "extra.clear",
    "ble.links",     "ble.coordinate",
    "ble.connection_interval", "ble.payload",
    "ble.tx_power",  "ble.zigbee_channel",
    "lteu.duty",     "lteu.period",
    "lteu.power",    "tsch.hop_period",
};

bool known_key(const std::string& key) {
  for (const char* k : kKnownKeys) {
    if (key == k) return true;
  }
  return false;
}

/// Both lowering targets; keys shared between topologies (seed, burst.*)
/// update both so a preset stays meaningful under a later `topology` switch.
struct Lowering {
  ScenarioConfig cfg;
  BleScenarioConfig ble;
  bool is_ble = false;
};

std::string describe_entry(const ScenarioSpec::Entry& e) {
  std::string where = "key '" + e.key + "'";
  if (e.line > 0) where = "line " + std::to_string(e.line) + ": " + where;
  return where;
}

bool apply_entry(const ScenarioSpec::Entry& e, Lowering* out, std::string* error) {
  const std::string& key = e.key;
  const std::string& value = e.value;
  auto fail = [&](const std::string& why) {
    *error = describe_entry(e) + ": " + why;
    return false;
  };
  auto bad_value = [&](const char* expected) {
    return fail(std::string("expected ") + expected + ", got '" + value + "'");
  };

  std::int64_t i = 0;
  std::uint64_t u = 0;
  double f = 0.0;
  bool b = false;
  Duration d;

  if (key == "seed") {
    if (!parse_u64(value, &u)) return bad_value("an unsigned integer");
    out->cfg.seed = u;
    out->ble.seed = u;
  } else if (key == "topology") {
    const std::string v = lower(value);
    if (v == "coex") out->is_ble = false;
    else if (v == "ble") out->is_ble = true;
    else return bad_value("'coex' or 'ble'");
  } else if (key == "coordination") {
    if (!parse_coordination(value, &out->cfg.coordination))
      return bad_value("bicord, ecc, or csma");
  } else if (key == "location") {
    if (!parse_location(value, &out->cfg.location)) return bad_value("A, B, C, or D");
  } else if (key == "wifi.traffic") {
    if (!parse_wifi_traffic(value, &out->cfg.wifi_traffic))
      return bad_value("cbr, saturated, or priority");
  } else if (key == "wifi.payload") {
    if (!parse_i64(value, &i) || i <= 0) return bad_value("a positive integer");
    out->cfg.wifi_payload_bytes = static_cast<std::uint32_t>(i);
  } else if (key == "wifi.cbr_interval") {
    if (!parse_duration(value, &out->cfg.wifi_cbr_interval))
      return bad_value("a duration (us/ms/s suffix)");
  } else if (key == "wifi.cbr_payload") {
    if (!parse_i64(value, &i) || i <= 0) return bad_value("a positive integer");
    out->cfg.wifi_cbr_payload_bytes = static_cast<std::uint32_t>(i);
  } else if (key == "wifi.high_share") {
    if (!parse_f64(value, &f)) return bad_value("a number");
    out->cfg.wifi_high_share = f;
  } else if (key == "wifi.priority_cycle") {
    if (!parse_duration(value, &out->cfg.wifi_priority_cycle))
      return bad_value("a duration (us/ms/s suffix)");
  } else if (key == "wifi.grants_requests") {
    if (!parse_bool(value, &b)) return bad_value("a boolean");
    out->cfg.wifi_grants_requests = b;
  } else if (key == "grantors") {
    // Comma-separated distances (metres) of extra grantor APs from the
    // ZigBee sender. Distances double as election-metric inputs, so zero
    // and duplicates are rejected: both would make the RSSI ranking
    // degenerate instead of merely redundant.
    std::vector<double> dists;
    std::size_t pos = 0;
    while (true) {
      const auto comma = value.find(',', pos);
      const std::string tok =
          trim(comma == std::string::npos ? value.substr(pos)
                                          : value.substr(pos, comma - pos));
      if (!parse_f64(tok, &f) || f <= 0.0)
        return fail("expected a positive distance in metres, got '" + tok + "'");
      for (const double seen : dists) {
        if (seen == f) return fail("duplicate grantor distance '" + tok + "'");
      }
      dists.push_back(f);
      if (comma == std::string::npos) break;
      pos = comma + 1;
    }
    out->cfg.extra_grantors_m = std::move(dists);
  } else if (key == "election.grace") {
    if (!parse_duration(value, &d) || d <= Duration::zero())
      return bad_value("a positive duration (us/ms/s suffix)");
    out->cfg.election_grace = d;
  } else if (key == "burst.packets") {
    if (!parse_i64(value, &i) || i <= 0) return bad_value("a positive integer");
    out->cfg.burst.packets_per_burst = static_cast<int>(i);
    out->ble.burst.packets_per_burst = static_cast<int>(i);
  } else if (key == "burst.payload") {
    if (!parse_i64(value, &i) || i <= 0) return bad_value("a positive integer");
    out->cfg.burst.payload_bytes = static_cast<std::uint32_t>(i);
    out->ble.burst.payload_bytes = static_cast<std::uint32_t>(i);
  } else if (key == "burst.interval") {
    if (!parse_duration(value, &d)) return bad_value("a duration (us/ms/s suffix)");
    out->cfg.burst.mean_interval = d;
    out->ble.burst.mean_interval = d;
  } else if (key == "burst.poisson") {
    if (!parse_bool(value, &b)) return bad_value("a boolean");
    out->cfg.burst.poisson = b;
    out->ble.burst.poisson = b;
  } else if (key == "zigbee.data_power") {
    if (!parse_f64(value, &f)) return bad_value("a power in dBm");
    out->cfg.zigbee_data_power_dbm = f;
  } else if (key == "zigbee.signaling_power") {
    if (lower(value) == "default") {
      out->cfg.signaling_power_dbm.reset();
    } else {
      if (!parse_f64(value, &f)) return bad_value("a power in dBm or 'default'");
      out->cfg.signaling_power_dbm = f;
    }
  } else if (key == "zigbee.link_distance") {
    if (lower(value) == "default") {
      out->cfg.zigbee_link_distance_m.reset();
    } else {
      if (!parse_f64(value, &f) || f <= 0.0)
        return bad_value("a positive distance in metres or 'default'");
      out->cfg.zigbee_link_distance_m = f;
    }
  } else if (key == "zigbee.duty_cycle") {
    if (!parse_bool(value, &b)) return bad_value("a boolean");
    out->cfg.zigbee_duty_cycle = b;
  } else if (key == "allocator.initial_whitespace") {
    if (!parse_duration(value, &out->cfg.allocator.initial_whitespace))
      return bad_value("a duration (us/ms/s suffix)");
  } else if (key == "allocator.control_duration") {
    if (!parse_duration(value, &out->cfg.allocator.control_duration))
      return bad_value("a duration (us/ms/s suffix)");
  } else if (key == "allocator.end_of_burst_gap") {
    if (!parse_duration(value, &out->cfg.allocator.end_of_burst_gap))
      return bad_value("a duration (us/ms/s suffix)");
  } else if (key == "allocator.reestimate_period") {
    if (!parse_duration(value, &out->cfg.allocator.reestimate_period))
      return bad_value("a duration (us/ms/s suffix)");
  } else if (key == "allocator.max_whitespace") {
    if (!parse_duration(value, &out->cfg.allocator.max_whitespace))
      return bad_value("a duration (us/ms/s suffix)");
  } else if (key == "signaling.control_payload") {
    if (!parse_i64(value, &i) || i <= 0) return bad_value("a positive integer");
    out->cfg.signaling.control_payload_bytes = static_cast<std::uint32_t>(i);
  } else if (key == "signaling.max_control_packets") {
    if (!parse_i64(value, &i) || i <= 0) return bad_value("a positive integer");
    out->cfg.signaling.max_control_packets = static_cast<int>(i);
  } else if (key == "signaling.control_gap") {
    if (!parse_duration(value, &out->cfg.signaling.control_gap))
      return bad_value("a duration (us/ms/s suffix)");
  } else if (key == "signaling.ignored_backoff") {
    if (!parse_duration(value, &out->cfg.signaling.ignored_backoff))
      return bad_value("a duration (us/ms/s suffix)");
  } else if (key == "ecc.period") {
    if (!parse_duration(value, &out->cfg.ecc.period))
      return bad_value("a duration (us/ms/s suffix)");
  } else if (key == "ecc.whitespace") {
    if (!parse_duration(value, &out->cfg.ecc.whitespace))
      return bad_value("a duration (us/ms/s suffix)");
  } else if (key == "ecc.emulation_power") {
    if (!parse_f64(value, &f)) return bad_value("a power in dBm");
    out->cfg.ecc.emulation_power_dbm = f;
  } else if (key == "ecc.emulation_airtime") {
    if (!parse_duration(value, &out->cfg.ecc.emulation_airtime))
      return bad_value("a duration (us/ms/s suffix)");
  } else if (key == "mobility.person") {
    if (!parse_bool(value, &b)) return bad_value("a boolean");
    out->cfg.person_mobility = b;
  } else if (key == "mobility.person_rate") {
    if (!parse_f64(value, &f) || f <= 0.0) return bad_value("a positive rate in Hz");
    out->cfg.person_event_rate_hz = f;
  } else if (key == "mobility.device") {
    if (!parse_bool(value, &b)) return bad_value("a boolean");
    out->cfg.device_mobility = b;
  } else if (key == "mobility.device_period") {
    if (!parse_duration(value, &out->cfg.device_move_period))
      return bad_value("a duration (us/ms/s suffix)");
  } else if (key == "pathloss.ref_db") {
    if (!parse_f64(value, &f)) return bad_value("a loss in dB");
    out->cfg.path_loss.pl_d0_db = f;
  } else if (key == "pathloss.exponent") {
    if (!parse_f64(value, &f) || f <= 0.0) return bad_value("a positive exponent");
    out->cfg.path_loss.exponent = f;
  } else if (key == "pathloss.sigma") {
    if (!parse_f64(value, &f) || f < 0.0) return bad_value("a non-negative sigma in dB");
    out->cfg.path_loss.shadowing_sigma_db = f;
  } else if (key == "medium.snap_floor") {
    if (!parse_f64(value, &f)) return bad_value("a power in dBm");
    out->cfg.medium.snap_floor_dbm = f;
  } else if (key == "medium.spatial_index") {
    if (!parse_bool(value, &b)) return bad_value("a boolean");
    out->cfg.medium.spatial_index = b;
  } else if (key == "medium.cell") {
    if (!parse_f64(value, &f) || f < 0.0)
      return bad_value("a cell size in metres (0 = derive)");
    out->cfg.medium.cell_size_m = f;
  } else if (key == "medium.max_tx_power") {
    if (!parse_f64(value, &f)) return bad_value("a power in dBm");
    out->cfg.medium.max_tx_power_dbm = f;
  } else if (key == "sim.threads") {
    if (!parse_i64(value, &i) || i < 1 || i > 256)
      return bad_value("a thread count in [1, 256]");
    out->cfg.sim_threads = static_cast<int>(i);
  } else if (key == "dense.wifi_pairs") {
    if (!parse_i64(value, &i) || i < 0) return bad_value("a non-negative integer");
    out->cfg.dense.wifi_pairs = static_cast<int>(i);
  } else if (key == "dense.zigbee_links") {
    if (!parse_i64(value, &i) || i < 0) return bad_value("a non-negative integer");
    out->cfg.dense.zigbee_links = static_cast<int>(i);
  } else if (key == "dense.ble_nodes") {
    if (!parse_i64(value, &i) || i < 0) return bad_value("a non-negative integer");
    out->cfg.dense.ble_nodes = static_cast<int>(i);
  } else if (key == "dense.area") {
    if (!parse_f64(value, &f) || f <= 0.0) return bad_value("a positive edge in metres");
    out->cfg.dense.area_m = f;
  } else if (key == "dense.clusters") {
    if (!parse_i64(value, &i) || i < 0) return bad_value("a non-negative integer");
    out->cfg.dense.clusters = static_cast<int>(i);
  } else if (key == "dense.cluster_sigma") {
    if (!parse_f64(value, &f) || f <= 0.0) return bad_value("a positive sigma in metres");
    out->cfg.dense.cluster_sigma_m = f;
  } else if (key == "dense.seed") {
    if (!parse_u64(value, &u)) return bad_value("an unsigned integer");
    out->cfg.dense.placement_seed = u;
  } else if (key == "dense.wifi_interval") {
    if (!parse_duration(value, &out->cfg.dense.wifi_interval))
      return bad_value("a duration (us/ms/s suffix)");
  } else if (key == "dense.wifi_payload") {
    if (!parse_i64(value, &i) || i <= 0) return bad_value("a positive integer");
    out->cfg.dense.wifi_payload_bytes = static_cast<std::uint32_t>(i);
  } else if (key == "dense.wifi_power") {
    if (!parse_f64(value, &f)) return bad_value("a power in dBm");
    out->cfg.dense.wifi_tx_power_dbm = f;
  } else if (key == "dense.zigbee_power") {
    if (!parse_f64(value, &f)) return bad_value("a power in dBm");
    out->cfg.dense.zigbee_tx_power_dbm = f;
  } else if (key == "dense.ble_power") {
    if (!parse_f64(value, &f)) return bad_value("a power in dBm");
    out->cfg.dense.ble_tx_power_dbm = f;
  } else if (key == "fault.preset") {
    auto plan = fault::FaultPlan::preset(value);
    if (!plan) return bad_value("a fault-plan preset name (see fault::FaultPlan)");
    out->cfg.fault_plan = *plan;
  } else if (key == "fault.event") {
    std::string why;
    auto plan = fault::FaultPlan::parse(value, &why);
    if (!plan) return fail("bad fault event: " + why);
    for (const auto& event : plan->events()) out->cfg.fault_plan.add(event);
  } else if (key == "fault.clock_skew_ppm") {
    // Lowered to a ClockSkew event at t=0: every agent draws a persistent
    // crystal drift in ±ppm before the first timer arms. 1000 ppm (0.1%) is
    // far beyond any real crystal; treat more as a spec typo.
    if (!parse_f64(value, &f) || f <= 0.0 || f > 1000.0)
      return bad_value("a drift magnitude in ppm, in (0, 1000]");
    fault::FaultEvent skew;
    skew.kind = fault::FaultKind::ClockSkew;
    skew.magnitude = f;
    out->cfg.fault_plan.add(skew);
  } else if (key == "extra.link") {
    ExtraZigbeeSpec spec;
    std::string why;
    if (!parse_extra_link(value, &spec, &why)) return fail(why);
    out->cfg.extra_zigbee.push_back(spec);
  } else if (key == "extra.clear") {
    if (!parse_bool(value, &b) || !b) return bad_value("'true'");
    out->cfg.extra_zigbee.clear();
  } else if (key == "ble.links") {
    if (!parse_i64(value, &i) || i <= 0) return bad_value("a positive integer");
    out->ble.ble_links = static_cast<int>(i);
  } else if (key == "ble.coordinate") {
    if (!parse_bool(value, &b)) return bad_value("a boolean");
    out->ble.coordinate = b;
  } else if (key == "ble.connection_interval") {
    if (!parse_duration(value, &out->ble.ble_connection_interval))
      return bad_value("a duration (us/ms/s suffix)");
  } else if (key == "ble.payload") {
    if (!parse_i64(value, &i) || i <= 0) return bad_value("a positive integer");
    out->ble.ble_payload_bytes = static_cast<std::uint32_t>(i);
  } else if (key == "ble.tx_power") {
    if (!parse_f64(value, &f)) return bad_value("a power in dBm");
    out->ble.ble_tx_power_dbm = f;
  } else if (key == "ble.zigbee_channel") {
    if (!parse_i64(value, &i) || i < 11 || i > 26)
      return bad_value("an 802.15.4 channel (11-26)");
    out->ble.zigbee_channel = static_cast<int>(i);
  } else if (key == "lteu.duty") {
    if (!parse_f64(value, &f) || f <= 0.0 || f > 1.0)
      return bad_value("a duty fraction in (0, 1]");
    out->cfg.lteu.duty = f;
  } else if (key == "lteu.period") {
    if (!parse_duration(value, &d) || d <= Duration::zero())
      return bad_value("a positive duration (us/ms/s suffix)");
    out->cfg.lteu.period = d;
  } else if (key == "lteu.power") {
    if (!parse_f64(value, &f)) return bad_value("a power in dBm");
    out->cfg.lteu.tx_power_dbm = f;
  } else if (key == "tsch.hop_period") {
    if (!parse_duration(value, &d) || d <= Duration::zero())
      return bad_value("a positive duration (us/ms/s suffix)");
    out->cfg.tsch_hop_period = d;
  } else {
    return fail("unknown key");  // parse() rejects these; set() can still reach here
  }
  return true;
}

struct PresetDef {
  const char* name;
  const char* summary;
  const char* text;
};

// One preset per paper experiment. These carry the *base* configuration the
// matching bench starts from; per-cell sweep values (packet counts, shares,
// intervals, ...) are applied by the bench as set() overrides.
constexpr PresetDef kPresets[] = {
    {"default", "library defaults: BiCord at location A, 5 x 50 B bursts @ 200 ms",
     "seed = 1\n"},
    {"motivation",
     "Sec. VIII-A motivation: uncoordinated ZigBee under saturated Wi-Fi",
     "seed = 1\n"
     "coordination = csma\n"
     "location = A\n"},
    {"table1", "Tables 1-2 setting: BiCord signaling at location A",
     "seed = 1\n"
     "coordination = bicord\n"
     "location = A\n"},
    {"fig7", "Fig. 7: white-space learning, 10 x 50 B bursts @ 200 ms, 30 ms step",
     "seed = 77\n"
     "coordination = bicord\n"
     "location = A\n"
     "burst.packets = 10\n"
     "burst.payload = 50\n"
     "burst.interval = 200ms\n"
     "burst.poisson = false\n"
     "allocator.initial_whitespace = 30ms\n"},
    {"fig8", "Fig. 8: iterations to adjust (sweep packets/step/location)",
     "seed = 88\n"
     "coordination = bicord\n"
     "location = A\n"
     "burst.packets = 5\n"
     "burst.payload = 50\n"
     "burst.interval = 200ms\n"
     "burst.poisson = false\n"
     "allocator.initial_whitespace = 30ms\n"},
    {"fig9", "Fig. 9: converged white space + over-provision (sweep packets/step)",
     "seed = 99\n"
     "coordination = bicord\n"
     "location = A\n"
     "burst.packets = 5\n"
     "burst.payload = 50\n"
     "burst.interval = 250ms\n"
     "burst.poisson = false\n"
     "allocator.initial_whitespace = 30ms\n"},
    {"fig10", "Fig. 10: BiCord vs ECC utilization/delay/throughput sweep",
     "seed = 1010\n"
     "coordination = bicord\n"
     "location = A\n"
     "burst.packets = 5\n"
     "burst.payload = 50\n"
     "ecc.period = 100ms\n"},
    {"fig11", "Fig. 11: parameter impact (payload, burst size, location)",
     "seed = 1111\n"
     "coordination = bicord\n"
     "location = A\n"
     "burst.packets = 5\n"
     "burst.payload = 50\n"
     "burst.interval = 200ms\n"},
    {"fig12", "Fig. 12: mobile scenarios (person / device mobility)",
     "seed = 1212\n"
     "coordination = bicord\n"
     "location = A\n"
     "burst.packets = 5\n"
     "burst.payload = 50\n"
     "burst.interval = 200ms\n"},
    {"fig13", "Fig. 13: prioritized Wi-Fi traffic (high-priority share sweep)",
     "seed = 1313\n"
     "coordination = bicord\n"
     "location = A\n"
     "wifi.traffic = priority\n"
     "burst.packets = 5\n"
     "burst.payload = 50\n"
     "burst.interval = 200ms\n"},
    {"multinode",
     "Sec. VI extension: three ZigBee links with mixed traffic patterns",
     "seed = 2020\n"
     "coordination = bicord\n"
     "location = A\n"
     "burst.packets = 5\n"
     "burst.payload = 50\n"
     "burst.interval = 250ms\n"
     "extra.link = loc=C packets=3 payload=30 interval=150ms\n"
     "extra.link = loc=B offset=-0.5,0.6 packets=8 payload=60 interval=600ms\n"},
    // The dense family scales the office testbed into a city block: the same
    // primary links, surrounded by a clustered field of background devices
    // (coex/placement.hpp). Physics: exponent 3.8 (urban), snap floor
    // -97 dBm — contributions weaker than that are provably irrelevant to
    // every receiver here — giving a ~111 m interference radius at 20 dBm
    // (~33 m at ZigBee's 0 dBm), which is what makes the spatial index
    // (enabled here) effective: windows hold one cluster, not the field.
    {"dense",
     "dense field: testbed + 60 Wi-Fi pairs, 60 ZigBee links, 15 BT over 1.2 km",
     "seed = 3030\n"
     "coordination = bicord\n"
     "location = A\n"
     "burst.packets = 5\n"
     "burst.payload = 50\n"
     "burst.interval = 200ms\n"
     "pathloss.exponent = 3.8\n"
     "medium.snap_floor = -97\n"
     "medium.spatial_index = true\n"
     "medium.max_tx_power = 20\n"
     "dense.wifi_pairs = 60\n"
     "dense.zigbee_links = 60\n"
     "dense.ble_nodes = 15\n"
     "dense.area = 1200\n"
     "dense.clusters = 12\n"
     "dense.cluster_sigma = 120\n"
     "fault.event = node-leave at=1200ms link=2\n"   // churn: a dense link
     "fault.event = node-join at=2200ms link=2\n"    // drops out and returns
     "fault.event = node-leave at=1800ms link=9\n"
     "fault.event = node-join at=2800ms link=9\n"},
    {"dense1k",
     "bench scale: testbed + 330 Wi-Fi pairs, 360 ZigBee links, 160 BT (1544 nodes)",
     "seed = 3131\n"
     "coordination = bicord\n"
     "location = A\n"
     "burst.packets = 5\n"
     "burst.payload = 50\n"
     "burst.interval = 200ms\n"
     "pathloss.exponent = 3.8\n"
     "medium.snap_floor = -97\n"
     "medium.spatial_index = true\n"
     "medium.max_tx_power = 20\n"
     "dense.wifi_pairs = 330\n"
     "dense.zigbee_links = 360\n"
     "dense.ble_nodes = 160\n"
     "dense.area = 3200\n"
     "dense.clusters = 32\n"
     "dense.cluster_sigma = 120\n"},
    {"city",
     "city scale: testbed + 440 Wi-Fi pairs, 460 ZigBee links, 40 BT over 4 km",
     "seed = 3232\n"
     "coordination = bicord\n"
     "location = A\n"
     "burst.packets = 5\n"
     "burst.payload = 50\n"
     "burst.interval = 200ms\n"
     "pathloss.exponent = 3.8\n"
     "medium.snap_floor = -97\n"
     "medium.spatial_index = true\n"
     "medium.max_tx_power = 20\n"
     "dense.wifi_pairs = 440\n"
     "dense.zigbee_links = 460\n"
     "dense.ble_nodes = 40\n"
     "dense.area = 4000\n"
     "dense.clusters = 24\n"
     "dense.cluster_sigma = 120\n"
     "fault.event = node-leave at=1s link=4\n"
     "fault.event = node-join at=2s link=4\n"
     "fault.event = node-leave at=1500ms link=40\n"
     "fault.event = node-join at=2500ms link=40\n"
     "fault.event = node-leave at=2s link=120\n"
     "fault.event = node-join at=3s link=120\n"},
    // The failover rig: the testbed grantor F (~1.3 m from the requester at
    // location A) plus two extra grantor APs at 2.5 m and 4 m. F wins the
    // RSSI election; the extras shadow its grants and take over when it goes
    // quiet. A modest dense field keeps the air contended enough that
    // shadow-CTS decoding is exercised, without dense-preset runtimes.
    {"multigrantor",
     "failover rig: testbed F + 2 shadow grantor APs, small dense field",
     "seed = 4040\n"
     "coordination = bicord\n"
     "location = A\n"
     "burst.packets = 5\n"
     "burst.payload = 50\n"
     "burst.interval = 200ms\n"
     "pathloss.exponent = 3.8\n"
     "medium.snap_floor = -97\n"
     "medium.spatial_index = true\n"
     "medium.max_tx_power = 20\n"
     "dense.wifi_pairs = 12\n"
     "dense.zigbee_links = 12\n"
     "dense.ble_nodes = 4\n"
     "dense.area = 600\n"
     "dense.clusters = 6\n"
     "dense.cluster_sigma = 80\n"
     "grantors = 2.5,4\n"
     "election.grace = 60ms\n"},
    {"failover",
     "multigrantor + ±200 ppm crystal drift + mid-run primary-grantor kill",
     "seed = 4040\n"
     "coordination = bicord\n"
     "location = A\n"
     "burst.packets = 5\n"
     "burst.payload = 50\n"
     "burst.interval = 200ms\n"
     "pathloss.exponent = 3.8\n"
     "medium.snap_floor = -97\n"
     "medium.spatial_index = true\n"
     "medium.max_tx_power = 20\n"
     "dense.wifi_pairs = 12\n"
     "dense.zigbee_links = 12\n"
     "dense.ble_nodes = 4\n"
     "dense.area = 600\n"
     "dense.clusters = 6\n"
     "dense.cluster_sigma = 80\n"
     "grantors = 2.5,4\n"
     "election.grace = 60ms\n"
     "fault.clock_skew_ppm = 200\n"
     // link -1 = grantor 0 = testbed F: the elected primary dies mid-run
     // and rejoins 3 s later, forcing a takeover and a handback.
     "fault.event = node-leave at=1500ms link=-1\n"
     "fault.event = node-join at=4500ms link=-1\n"},
    {"ble", "Sec. VII-D extension: ZigBee inside a BLE cluster, BiCord-for-BLE",
     "topology = ble\n"
     "seed = 2626\n"
     "ble.links = 4\n"
     "ble.coordinate = true\n"
     "burst.packets = 5\n"
     "burst.payload = 50\n"
     "burst.interval = 150ms\n"},
    // Third technology: a duty-cycled LTE-U eNB replaces Wi-Fi as the
    // interferer/grantor. Wi-Fi stays light CBR so the eNB's ON bursts are
    // the dominant interference the lease has to carve white space out of.
    {"lteu", "LTE-U eNB as grantor: duty-cycled carrier, energy-envelope requests",
     "seed = 5050\n"
     "coordination = lteu\n"
     "location = A\n"
     "wifi.traffic = cbr\n"
     "wifi.cbr_interval = 40ms\n"
     "wifi.cbr_payload = 200\n"
     "burst.packets = 5\n"
     "burst.payload = 50\n"
     "burst.interval = 200ms\n"
     "lteu.duty = 0.5\n"
     "lteu.period = 20ms\n"},
    // Fourth technology: the requester hops a TSCH slotframe while the
    // grantor (unchanged BiCord Wi-Fi agent) runs the clock-bounded lease
    // path selected by kTschTraits.
    {"tsch", "802.15.4e TSCH requester: channel hopping under a leased grant",
     "seed = 5151\n"
     "coordination = tsch\n"
     "location = A\n"
     "burst.packets = 5\n"
     "burst.payload = 50\n"
     "burst.interval = 200ms\n"
     "tsch.hop_period = 10ms\n"},
};

}  // namespace

std::optional<ScenarioSpec> ScenarioSpec::parse(const std::string& text,
                                                std::string* error) {
  ScenarioSpec spec;
  std::istringstream in(text);
  std::string raw;
  int lineno = 0;
  auto fail = [&](const std::string& why) {
    if (error != nullptr) *error = "line " + std::to_string(lineno) + ": " + why;
    return std::nullopt;
  };
  while (std::getline(in, raw)) {
    ++lineno;
    const auto hash = raw.find('#');
    if (hash != std::string::npos) raw.erase(hash);
    const std::string line = trim(raw);
    if (line.empty()) continue;
    const auto eq = line.find('=');
    if (eq == std::string::npos) return fail("expected 'key = value', got '" + line + "'");
    const std::string key = trim(line.substr(0, eq));
    const std::string value = trim(line.substr(eq + 1));
    if (key.empty()) return fail("missing key before '='");
    if (value.empty()) return fail("missing value for key '" + key + "'");
    if (!known_key(key)) return fail("unknown key '" + key + "'");
    spec.entries_.push_back(Entry{key, value, lineno});
  }
  return spec;
}

std::optional<ScenarioSpec> ScenarioSpec::preset(const std::string& name) {
  for (const auto& p : kPresets) {
    if (name == p.name) {
      std::string error;
      auto spec = parse(p.text, &error);
      if (!spec) {
        // A preset that does not parse is a programming error caught by the
        // scenario_spec tests; fail loudly rather than return half a spec.
        std::fprintf(stderr, "bicord: internal error in preset '%s': %s\n",
                     p.name, error.c_str());
        std::abort();
      }
      return spec;
    }
  }
  return std::nullopt;
}

std::vector<std::string> ScenarioSpec::preset_names() {
  std::vector<std::string> names;
  for (const auto& p : kPresets) names.emplace_back(p.name);
  return names;
}

std::string ScenarioSpec::preset_summary(const std::string& name) {
  for (const auto& p : kPresets) {
    if (name == p.name) return p.summary;
  }
  return "";
}

void ScenarioSpec::set(const std::string& key, const std::string& value) {
  entries_.push_back(Entry{key, value, 0});
}

void ScenarioSpec::set(const std::string& key, std::int64_t value) {
  set(key, std::to_string(value));
}

void ScenarioSpec::set(const std::string& key, std::uint64_t value) {
  set(key, std::to_string(value));
}

void ScenarioSpec::set(const std::string& key, double value) {
  set(key, format_double(value));
}

void ScenarioSpec::set(const std::string& key, bool value) {
  set(key, value ? std::string("true") : std::string("false"));
}

void ScenarioSpec::set(const std::string& key, Duration value) {
  set(key, std::to_string(value.us()) + "us");
}

std::string ScenarioSpec::serialize() const {
  std::string out;
  for (const auto& e : entries_) {
    out += e.key;
    out += " = ";
    out += e.value;
    out += '\n';
  }
  return out;
}

bool ScenarioSpec::is_ble() const {
  // Later assignments win, so the last `topology` entry decides.
  bool ble = false;
  for (const auto& e : entries_) {
    if (e.key == "topology") ble = lower(e.value) == "ble";
  }
  return ble;
}

std::optional<ScenarioConfig> ScenarioSpec::config(std::string* error) const {
  Lowering low;
  std::string why;
  for (const auto& e : entries_) {
    if (!apply_entry(e, &low, &why)) {
      if (error != nullptr) *error = why;
      return std::nullopt;
    }
  }
  return low.cfg;
}

std::optional<BleScenarioConfig> ScenarioSpec::ble_config(std::string* error) const {
  Lowering low;
  std::string why;
  for (const auto& e : entries_) {
    if (!apply_entry(e, &low, &why)) {
      if (error != nullptr) *error = why;
      return std::nullopt;
    }
  }
  return low.ble;
}

ScenarioConfig ScenarioSpec::must_config() const {
  std::string error;
  auto cfg = config(&error);
  if (!cfg) {
    std::fprintf(stderr, "bicord: bad scenario spec: %s\n", error.c_str());
    std::exit(1);
  }
  return *cfg;
}

BleScenarioConfig ScenarioSpec::must_ble_config() const {
  std::string error;
  auto cfg = ble_config(&error);
  if (!cfg) {
    std::fprintf(stderr, "bicord: bad scenario spec: %s\n", error.c_str());
    std::exit(1);
  }
  return *cfg;
}

}  // namespace bicord::coex
