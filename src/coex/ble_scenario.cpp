#include "coex/ble_scenario.hpp"

namespace bicord::coex {

// Construction order matches the original bench_ext_ble topology exactly:
// BLE pairs first (nodes m/s per link, connection started immediately), then
// the ZigBee endpoints, then the coordination agents, then the workload.
// Reordering would change node ids and Rng::split streams and break the
// bitwise determinism goldens.
BleScenario::BleScenario(BleScenarioConfig config) : config_(config) {
  sim_ = std::make_unique<sim::Simulator>(config_.seed);
  medium_ = std::make_unique<phy::Medium>(*sim_, config_.path_loss);

  for (int i = 0; i < config_.ble_links; ++i) {
    const auto m = medium_->add_node("ble-m", {0.4 * i, 0.2});
    const auto s = medium_->add_node("ble-s", {0.4 * i, 1.4});
    ble::BleConnection::Config cfg;
    cfg.connection_interval = config_.ble_connection_interval;
    cfg.payload_bytes = config_.ble_payload_bytes;
    cfg.tx_power_dbm = config_.ble_tx_power_dbm;
    cfg.hop_increment = 7 + 2 * (i % 5);  // coprime with 37 for i % 5 in 0..4
    links_.push_back(std::make_unique<ble::BleConnection>(*medium_, m, s, cfg));
    links_.back()->start();
  }

  const auto zb_tx = medium_->add_node("zb-tx", {0.9, 0.7});  // inside the BLE cluster
  const auto zb_rx = medium_->add_node("zb-rx", {2.3, 2.3});
  zigbee::ZigbeeMac::Config zc;
  zc.channel = config_.zigbee_channel;
  zc.retry_limit = 1;
  zigbee_sender_mac_ = std::make_unique<zigbee::ZigbeeMac>(*medium_, zb_tx, zc);
  zigbee_receiver_mac_ = std::make_unique<zigbee::ZigbeeMac>(*medium_, zb_rx, zc);

  if (config_.coordinate) {
    for (auto& l : links_) {
      agents_.push_back(std::make_unique<ble::BleBiCordAgent>(
          *medium_, *l, ble::BleBiCordAgent::Config{}));
    }
  }

  zigbee_agent_ = std::make_unique<ble::BleAwareZigbeeAgent>(
      *zigbee_sender_mac_, zb_rx, ble::BleAwareZigbeeAgent::Config{});
  burst_source_ = std::make_unique<zigbee::BurstSource>(*sim_, config_.burst);
  burst_source_->set_burst_callback([this](int n, std::uint32_t payload) {
    zigbee_agent_->submit_burst(n, payload);
  });
  burst_source_->start();
}

void BleScenario::run_for(Duration d) { sim_->run_for(d); }

BleScenario::Report BleScenario::report() const {
  Report r;
  const auto& stats = zigbee_agent_->stats();
  r.zb_delivery = stats.delivery_ratio();
  r.zb_delay_ms = stats.delay_ms.empty() ? 0.0 : stats.delay_ms.mean();
  // On-air data transmissions per delivered packet (MAC retries included).
  const auto data_frames =
      zigbee_sender_mac_->radio().frames_sent() - zigbee_agent_->control_packets_sent();
  r.zb_attempt_overhead = stats.delivered
                              ? static_cast<double>(data_frames) /
                                    static_cast<double>(stats.delivered)
                              : 0.0;
  double ble_ok = 0.0;
  double ble_total = 0.0;
  for (const auto& l : links_) {
    ble_ok += static_cast<double>(l->stats().packets_ok);
    ble_total += static_cast<double>(l->stats().packets_ok + l->stats().packets_corrupted);
  }
  r.ble_success = ble_total > 0.0 ? ble_ok / ble_total : 0.0;
  for (const auto& a : agents_) r.leases += a->leases_granted();
  r.controls = zigbee_agent_->control_packets_sent();
  return r;
}

}  // namespace bicord::coex
