#include "coex/placement.hpp"

#include <algorithm>

#include "util/rng.hpp"

namespace bicord::coex {
namespace {

double clamp_to_field(double v, double lo, double hi) {
  return std::min(std::max(v, lo), hi);
}

}  // namespace

std::vector<phy::Position> generate_placement(const PlacementParams& params,
                                              std::size_t count,
                                              std::uint64_t seed) {
  const double lo = params.margin_m;
  const double hi = std::max(params.area_m - params.margin_m, lo);
  Rng rng(seed);

  std::vector<phy::Position> centres;
  if (params.clusters > 0) {
    centres.reserve(static_cast<std::size_t>(params.clusters));
    for (int c = 0; c < params.clusters; ++c) {
      centres.push_back(phy::Position{rng.uniform(lo, hi), rng.uniform(lo, hi)});
    }
  }

  std::vector<phy::Position> sites;
  sites.reserve(count);
  for (std::size_t i = 0; i < count; ++i) {
    if (centres.empty()) {
      sites.push_back(phy::Position{rng.uniform(lo, hi), rng.uniform(lo, hi)});
      continue;
    }
    // Round-robin over centres (not a random pick) keeps cluster sizes even,
    // so node counts per neighbourhood stay predictable across preset sizes.
    const phy::Position& c = centres[i % centres.size()];
    sites.push_back(
        phy::Position{clamp_to_field(c.x + rng.normal(0.0, params.cluster_sigma_m), lo, hi),
                      clamp_to_field(c.y + rng.normal(0.0, params.cluster_sigma_m), lo, hi)});
  }
  return sites;
}

}  // namespace bicord::coex
