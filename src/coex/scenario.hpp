#pragma once
// The paper's experimental testbed in a box (Fig. 6).
//
// A Scenario wires up the full stack for one run: the office medium, the
// Wi-Fi link E -> F (3 m apart), a ZigBee sender at one of the four
// evaluated locations A-D with its receiver, the chosen coordination scheme
// (BiCord / ECC / plain CSMA), workload generators, optional mobility, and
// the measurement probes. Examples and every bench build on this class.

#include <memory>
#include <optional>
#include <vector>

#include "coex/metrics.hpp"
#include "core/bicord_wifi.hpp"
#include "core/bicord_zigbee.hpp"
#include "core/ecc.hpp"
#include "fault/fault_injector.hpp"
#include "interferers/bluetooth.hpp"
#include "interferers/lteu.hpp"
#include "phy/medium.hpp"
#include "phy/shard_map.hpp"
#include "sim/parallel_dispatch.hpp"
#include "sim/simulator.hpp"
#include "util/stats.hpp"
#include "wifi/traffic.hpp"
#include "wifi/wifi_mac.hpp"
#include "zigbee/duty_cycle.hpp"
#include "zigbee/energy.hpp"
#include "zigbee/traffic.hpp"
#include "zigbee/tsch.hpp"
#include "zigbee/zigbee_mac.hpp"

namespace bicord::coex {

enum class Coordination { BiCord, Ecc, Csma, LteU, Tsch };
enum class ZigbeeLocation { A, B, C, D };
enum class WifiTrafficKind { Cbr, Saturated, Priority };

[[nodiscard]] const char* to_string(Coordination c);
[[nodiscard]] const char* to_string(ZigbeeLocation l);

/// Paper footnote 3: signaling power used at each location.
[[nodiscard]] double default_signaling_power_dbm(ZigbeeLocation loc);
/// Testbed coordinates (metres) for the ZigBee sender at each location.
[[nodiscard]] phy::Position location_position(ZigbeeLocation loc);

/// An additional ZigBee sender/receiver pair sharing the testbed (paper
/// Sec. VI: "multiple ZigBee nodes with different traffic pattern").
struct ExtraZigbeeSpec {
  ZigbeeLocation location = ZigbeeLocation::C;
  /// Placement offset from the location's nominal coordinates so two nodes
  /// at the same location do not coincide.
  phy::Position offset{0.4, -0.3};
  zigbee::BurstSource::Config burst;
  double data_power_dbm = -7.0;
  std::optional<double> signaling_power_dbm;
};

/// A field of background devices surrounding the office testbed: Wi-Fi
/// AP/client CBR pairs, plain-CSMA ZigBee links, and Bluetooth interferers,
/// placed over a square area by the deterministic cluster process in
/// placement.hpp. Powers the dense / dense1k / city presets; empty by
/// default, so every historical scenario is byte-identical to before this
/// struct existed.
struct DenseFieldSpec {
  int wifi_pairs = 0;    ///< AP + client CBR pairs (2 nodes each)
  int zigbee_links = 0;  ///< sender + receiver CSMA links (2 nodes each)
  int ble_nodes = 0;     ///< frequency-hopping Bluetooth interferers
  double area_m = 1200.0;       ///< square field edge, metres
  int clusters = 12;            ///< 0 = uniform placement
  double cluster_sigma_m = 40.0;
  /// Placement draws from Rng(placement_seed), never the simulator stream:
  /// growing the field cannot perturb the testbed's stochastic behaviour.
  std::uint64_t placement_seed = 97;
  double wifi_tx_power_dbm = 20.0;
  std::uint32_t wifi_payload_bytes = 400;
  Duration wifi_interval = Duration::from_ms(25);  ///< jittered per pair
  double zigbee_tx_power_dbm = 0.0;
  double ble_tx_power_dbm = 4.0;
  [[nodiscard]] bool empty() const {
    return wifi_pairs <= 0 && zigbee_links <= 0 && ble_nodes <= 0;
  }
};

struct ScenarioConfig {
  std::uint64_t seed = 1;
  Coordination coordination = Coordination::BiCord;
  ZigbeeLocation location = ZigbeeLocation::A;

  // --- Wi-Fi side ---------------------------------------------------------
  WifiTrafficKind wifi_traffic = WifiTrafficKind::Saturated;
  std::uint32_t wifi_payload_bytes = 4000;  ///< aggregated MPDU
  Duration wifi_cbr_interval = Duration::from_ms(1);
  std::uint32_t wifi_cbr_payload_bytes = 100;  ///< paper: 100 B every 1 ms
  double wifi_high_share = 0.3;                ///< Priority mode only
  Duration wifi_priority_cycle = Duration::from_sec(1);
  /// When false the Wi-Fi device never grants white spaces (BiCord policy
  /// "ignore requests").
  bool wifi_grants_requests = true;

  // --- multi-grantor coordination -------------------------------------------
  /// Additional co-located grantor APs (BiCord only): distance in metres of
  /// each extra grantor from the ZigBee sender. Non-empty builds a
  /// GrantorElection over the testbed receiver F plus these APs; empty keeps
  /// the historical single-grantor behaviour byte for byte.
  std::vector<double> extra_grantors_m;
  /// How long a secondary grantor waits for the primary to answer an
  /// uncovered request before taking over.
  Duration election_grace = Duration::from_ms(60);

  // --- ZigBee workload -----------------------------------------------------
  zigbee::BurstSource::Config burst;
  /// Paper Sec. VIII-A: the ZigBee sender uses -7 dBm for data and loses
  /// >95 % of packets whenever the Wi-Fi sender is active.
  double zigbee_data_power_dbm = -7.0;
  /// Control-packet power; nullopt means the per-location default from
  /// default_signaling_power_dbm() (paper footnote 3).
  std::optional<double> signaling_power_dbm;
  /// Distance from ZigBee sender to its receiver (paper: 1-5 m).
  std::optional<double> zigbee_link_distance_m;
  /// Additional ZigBee links beyond the primary one.
  std::vector<ExtraZigbeeSpec> extra_zigbee;

  // --- protocol parameters --------------------------------------------------
  // T_c in the estimator reflects *this implementation's* per-round
  // signaling cost (one 4.4 ms control packet + gap polls), as the paper's
  // 8 ms reflected theirs. The end-of-burst gap likewise covers this
  // substrate's re-signal latency (ACK timeout + CSMA failure + control +
  // detection, ~12-18 ms): a continuing burst must reliably re-request
  // within the gap or the estimator never sees the shortfall.
  core::AllocatorParams allocator{
      .control_duration = Duration::from_ms(5),
      .end_of_burst_gap = Duration::from_ms(30),
  };
  core::SignalingParams signaling;
  csi::CsiModelParams csi;
  csi::DetectorParams detector;
  core::EccWifiAgent::Config ecc;

  // --- environment ----------------------------------------------------------
  /// 40 dB @ 1 m, exponent 3.0, shadowing sigma 0 dB (off by default — the
  /// CSI/impulse models carry the fast variation), distances clamped at 0.1 m.
  phy::PathLossModel path_loss{40.0, 3.0, 0.0, 0.1};
  /// Medium performance knobs (snap floor, spatial index). Defaults keep the
  /// historical brute-force behaviour bit for bit; dense presets flip the
  /// index on, and the equivalence suite proves outputs stay identical.
  phy::MediumTuning medium;
  /// Worker threads inside this one simulation (`sim.threads`). 1 (default)
  /// keeps the untouched serial path byte for byte; >= 2 attaches a
  /// sim::WorkerPool to the medium (phased tx fan-out) and routes run_for
  /// through a sim::ParallelDispatcher over a phy::ShardPlan. Output stays
  /// bitwise identical across thread counts (golden-determinism pinned).
  int sim_threads = 1;
  /// Background device field for the dense / city presets (empty = none).
  DenseFieldSpec dense;
  bool person_mobility = false;    ///< someone walks near the Wi-Fi receiver
  double person_event_rate_hz = 0.4;
  bool device_mobility = false;    ///< the ZigBee sender moves within ~1 m
  Duration device_move_period = Duration::from_ms(400);
  /// Duty-cycle the primary ZigBee sender's radio (sleep when idle) — the
  /// battery-operation mode the paper's energy analysis assumes.
  bool zigbee_duty_cycle = false;

  // --- third/fourth technologies ---------------------------------------------
  /// LTE-U eNB parameters (Coordination::LteU only): CSAT period, duty
  /// cycle, transmit power. The eNB replaces the Wi-Fi device as grantor.
  interferers::LteUDevice::Config lteu;
  /// TSCH slotframe hop period (Coordination::Tsch only).
  Duration tsch_hop_period = Duration::from_ms(10);

  // --- fault injection -------------------------------------------------------
  /// Adversarial-channel faults applied during the run. Part of the config
  /// value so ExperimentRunner trials replay the same plan per seed. Empty
  /// by default: no injector is built and behaviour is byte-identical to a
  /// plan-free scenario.
  fault::FaultPlan fault_plan;
};

class Scenario {
 public:
  explicit Scenario(ScenarioConfig config);
  ~Scenario();

  Scenario(const Scenario&) = delete;
  Scenario& operator=(const Scenario&) = delete;

  /// Advances the simulation. Workloads start on construction.
  void run_for(Duration d);
  /// Marks the start of the metric window (call after a warm-up period).
  void start_measurement();

  // --- results --------------------------------------------------------------
  [[nodiscard]] UtilizationReport utilization() const;
  [[nodiscard]] const core::ZigbeeLinkStats& zigbee_stats() const;
  /// ZigBee goodput over the measurement window, in kbit/s.
  [[nodiscard]] double zigbee_goodput_kbps() const;
  /// Wi-Fi per-frame delay (enqueue -> delivered), by priority tag.
  [[nodiscard]] const Samples& wifi_delay_ms(int priority) const;
  [[nodiscard]] double wifi_delivery_ratio() const;

  // --- components -----------------------------------------------------------
  [[nodiscard]] sim::Simulator& simulator() { return *sim_; }
  [[nodiscard]] phy::Medium& medium() { return *medium_; }
  [[nodiscard]] wifi::WifiMac& wifi_sender() { return *wifi_sender_mac_; }
  [[nodiscard]] wifi::WifiMac& wifi_receiver() { return *wifi_receiver_mac_; }
  [[nodiscard]] zigbee::ZigbeeMac& zigbee_sender() { return *zigbee_sender_mac_; }
  [[nodiscard]] zigbee::ZigbeeMac& zigbee_receiver() { return *zigbee_receiver_mac_; }
  [[nodiscard]] core::ZigbeeAgentBase& zigbee_agent() { return *zigbee_agent_; }
  [[nodiscard]] zigbee::BurstSource& burst_source() { return *burst_source_; }
  [[nodiscard]] zigbee::EnergyMeter& energy_meter() { return *energy_meter_; }
  /// Non-null only for the matching coordination mode.
  [[nodiscard]] core::BiCordWifiAgent* bicord_wifi() { return bicord_wifi_.get(); }
  [[nodiscard]] core::BiCordZigbeeAgent* bicord_zigbee();
  [[nodiscard]] core::EccWifiAgent* ecc_wifi() { return ecc_wifi_.get(); }
  /// Non-null when `zigbee_duty_cycle` is enabled.
  [[nodiscard]] zigbee::DutyCycler* duty_cycler() { return duty_cycler_.get(); }
  /// Non-null only under Coordination::LteU: the duty-cycled eNB and its
  /// undecodable-request grantor.
  [[nodiscard]] interferers::LteUDevice* lteu_device() { return lteu_device_.get(); }
  [[nodiscard]] interferers::LteUGrantor* lteu_grantor() { return lteu_grantor_.get(); }
  /// Non-null only under Coordination::Tsch: the shared slotframe clock and
  /// the hopping requester (which is also zigbee_agent()).
  [[nodiscard]] zigbee::TschHopSchedule* tsch_schedule() { return tsch_schedule_.get(); }
  [[nodiscard]] zigbee::TschRequester* tsch_requester();
  /// Intra-simulation parallelism (non-null when sim_threads >= 2).
  [[nodiscard]] sim::ParallelDispatcher* dispatcher() { return dispatcher_.get(); }
  [[nodiscard]] const phy::ShardPlan* shard_plan() const {
    return shard_plan_ ? &*shard_plan_ : nullptr;
  }
  [[nodiscard]] int sim_threads() const { return config_.sim_threads; }
  [[nodiscard]] const ScenarioConfig& config() const { return config_; }
  [[nodiscard]] wifi::PriorityScheduleSource* priority_source() {
    return priority_source_.get();
  }
  /// Non-null when the config carried a non-empty fault plan.
  [[nodiscard]] fault::FaultInjector* fault_injector() { return fault_injector_.get(); }

  // --- multi-grantor access ---------------------------------------------------
  /// Non-null when `extra_grantors_m` is non-empty and coordination is
  /// BiCord: the shared election over all co-located grantors.
  [[nodiscard]] core::GrantorElection* election() { return election_.get(); }
  [[nodiscard]] const core::GrantorElection* election() const { return election_.get(); }
  /// Extra grantor APs beyond the testbed receiver F.
  [[nodiscard]] std::size_t extra_grantor_count() const { return extra_grantors_.size(); }
  [[nodiscard]] core::BiCordWifiAgent& extra_grantor_agent(std::size_t i) {
    return *extra_grantors_.at(i).agent;
  }
  /// Grantor agent by election-member order: 0 = testbed F, 1.. = extras.
  /// Null when out of range or not a BiCord scenario.
  [[nodiscard]] core::BiCordWifiAgent* grantor_agent(std::size_t member);

  // --- dense field access -----------------------------------------------------
  /// Background devices actually built (0 unless the config's dense spec is
  /// non-empty). Counts are devices, not nodes: a pair/link spans two nodes.
  [[nodiscard]] std::size_t dense_wifi_pair_count() const { return dense_wifi_.size(); }
  [[nodiscard]] std::size_t dense_zigbee_link_count() const { return dense_zigbee_.size(); }
  [[nodiscard]] std::size_t dense_ble_count() const { return dense_ble_.size(); }
  /// Frames delivered across every dense Wi-Fi pair (activity sanity checks).
  [[nodiscard]] std::uint64_t dense_wifi_delivered() const;
  /// Packets delivered across every dense ZigBee link.
  [[nodiscard]] std::uint64_t dense_zigbee_delivered() const;

  // --- multi-node access ------------------------------------------------------
  /// Total ZigBee links (1 primary + extras).
  [[nodiscard]] std::size_t zigbee_link_count() const { return 1 + extras_.size(); }
  /// Per-link agent/stats; index 0 is the primary link.
  [[nodiscard]] core::ZigbeeAgentBase& zigbee_agent_at(std::size_t i);
  [[nodiscard]] const core::ZigbeeLinkStats& zigbee_stats_at(std::size_t i) const;
  /// Aggregate delivery stats over every ZigBee link.
  [[nodiscard]] core::ZigbeeLinkStats aggregate_zigbee_stats() const;

 private:
  struct ZigbeeEndpoint {
    std::unique_ptr<zigbee::ZigbeeMac> sender;
    std::unique_ptr<zigbee::ZigbeeMac> receiver;
    std::unique_ptr<core::ZigbeeAgentBase> agent;
    std::unique_ptr<zigbee::BurstSource> source;
  };

  struct DenseWifiPair {
    std::unique_ptr<wifi::WifiMac> ap;
    std::unique_ptr<wifi::WifiMac> client;
    std::unique_ptr<wifi::CbrSource> source;
    std::uint64_t delivered = 0;
  };

  struct ExtraGrantor {
    std::unique_ptr<wifi::WifiMac> mac;
    std::unique_ptr<core::BiCordWifiAgent> agent;
  };

  void build_topology();
  void build_wifi_traffic();
  void build_coordination();
  /// Extra grantor APs + the shared election (BiCord + extra_grantors_m).
  void build_grantors(const core::BiCordWifiAgent::Config& wa, double sig_power);
  void build_extra_zigbee();
  void build_dense();
  void build_mobility();
  void build_faults();
  /// Worker pool + shard plan + dispatcher (sim_threads >= 2 only). Runs
  /// last: the plan needs the final node population.
  void build_parallel();
  std::unique_ptr<core::ZigbeeAgentBase> make_zigbee_agent(
      zigbee::ZigbeeMac& mac, phy::NodeId receiver, double data_power_dbm,
      double signaling_power_dbm, zigbee::EnergyMeter* meter);

  ScenarioConfig config_;
  std::unique_ptr<sim::Simulator> sim_;
  std::unique_ptr<phy::Medium> medium_;
  std::unique_ptr<sim::WorkerPool> worker_pool_;
  std::unique_ptr<sim::ParallelDispatcher> dispatcher_;
  std::optional<phy::ShardPlan> shard_plan_;

  phy::NodeId wifi_sender_node_ = 0;
  phy::NodeId wifi_receiver_node_ = 0;
  phy::NodeId zigbee_sender_node_ = 0;
  phy::NodeId zigbee_receiver_node_ = 0;
  phy::Position zigbee_base_pos_;

  std::unique_ptr<wifi::WifiMac> wifi_sender_mac_;
  std::unique_ptr<wifi::WifiMac> wifi_receiver_mac_;
  std::unique_ptr<zigbee::ZigbeeMac> zigbee_sender_mac_;
  std::unique_ptr<zigbee::ZigbeeMac> zigbee_receiver_mac_;

  std::unique_ptr<wifi::CbrSource> cbr_source_;
  std::unique_ptr<wifi::SaturatedSource> saturated_source_;
  std::unique_ptr<wifi::PriorityScheduleSource> priority_source_;

  std::unique_ptr<core::BiCordWifiAgent> bicord_wifi_;
  std::unique_ptr<core::EccWifiAgent> ecc_wifi_;
  std::unique_ptr<core::ZigbeeAgentBase> zigbee_agent_;
  std::unique_ptr<zigbee::BurstSource> burst_source_;
  std::unique_ptr<zigbee::EnergyMeter> energy_meter_;
  std::unique_ptr<zigbee::DutyCycler> duty_cycler_;
  phy::NodeId lteu_node_ = 0;
  std::unique_ptr<interferers::LteUDevice> lteu_device_;
  std::unique_ptr<interferers::LteUGrantor> lteu_grantor_;
  std::unique_ptr<zigbee::TschHopSchedule> tsch_schedule_;
  std::unique_ptr<sim::PeriodicTask> device_mover_;
  std::vector<ZigbeeEndpoint> extras_;
  std::vector<ExtraGrantor> extra_grantors_;
  std::unique_ptr<core::GrantorElection> election_;
  std::vector<DenseWifiPair> dense_wifi_;
  std::vector<ZigbeeEndpoint> dense_zigbee_;
  std::vector<std::unique_ptr<interferers::BluetoothDevice>> dense_ble_;
  std::unique_ptr<fault::FaultInjector> fault_injector_;

  AirtimeProbe probe_;
  Samples wifi_delay_low_;
  Samples wifi_delay_high_;
  std::uint64_t wifi_generated_ = 0;
  std::uint64_t wifi_delivered_ = 0;
  TimePoint measure_start_;
};

/// Runs a scenario with warm-up and measurement windows; returns after
/// `measure` of measured time. The single warm-up idiom shared by the
/// experiment runner, the benches, and the examples.
inline void warm_and_measure(Scenario& scenario, Duration warmup, Duration measure) {
  scenario.run_for(warmup);
  scenario.start_measurement();
  scenario.run_for(measure);
}

}  // namespace bicord::coex
