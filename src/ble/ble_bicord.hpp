#pragma once
// BiCord coordination for ZigBee/BLE coexistence (paper Sec. VII-D).
//
// The paper's extension argument: with a ZigBee -> Bluetooth CTC channel
// (receiver-side cross-decoding), the same request/grant loop coordinates
// ZigBee and Bluetooth networks. The BLE analogue of a time-domain white
// space is *spectral*: on a request, the BLE master excludes the data
// channels overlapping the ZigBee band from its adaptive-frequency-hopping
// map for a lease period; BiCord's white-space allocator decides the lease
// length exactly as it decides white-space lengths for Wi-Fi — learning the
// ZigBee burst pattern from repeated requests.

#include <cstdint>
#include <vector>

#include "ble/ble_link.hpp"
#include "core/whitespace.hpp"
#include "phy/radio.hpp"

namespace bicord::ble {

class BleBiCordAgent {
 public:
  struct Config {
    core::AllocatorParams allocator;
    /// The ZigBee channel being protected (802.15.4 numbering).
    int zigbee_channel = 24;
    /// Lease extension granted per request on top of the allocator grant.
    Duration grant_margin = Duration::from_ms(2);
  };

  /// `connection` is the master's BLE link; the agent listens for ZigBee
  /// control packets with a cross-decoding receiver on the master node.
  BleBiCordAgent(phy::Medium& medium, BleConnection& connection, Config config);

  [[nodiscard]] std::uint64_t requests_detected() const { return requests_; }
  [[nodiscard]] std::uint64_t leases_granted() const { return leases_; }
  [[nodiscard]] bool lease_active() const;
  [[nodiscard]] const core::WhitespaceAllocator& allocator() const { return allocator_; }
  [[nodiscard]] const std::vector<int>& protected_channels() const {
    return protected_channels_;
  }

 private:
  void on_control_frame(const phy::RxResult& rx);
  void grant_lease(Duration lease);
  void lease_expired();

  phy::Medium& medium_;
  sim::Simulator& sim_;
  BleConnection& connection_;
  Config config_;
  core::WhitespaceAllocator allocator_;
  /// Cross-decoding receiver: a ZigBee-band radio co-located with the
  /// master (Jiang et al., "cross-decoding").
  phy::Radio cross_decoder_;

  std::vector<int> protected_channels_;
  TimePoint lease_until_;
  TimePoint last_request_;
  sim::EventId lease_timer_ = sim::kInvalidEventId;

  std::uint64_t requests_ = 0;
  std::uint64_t leases_ = 0;
};

}  // namespace bicord::ble
