#pragma once
// BiCord coordination for ZigBee/BLE coexistence (paper Sec. VII-D).
//
// The paper's extension argument: with a ZigBee -> Bluetooth CTC channel
// (receiver-side cross-decoding), the same request/grant loop coordinates
// ZigBee and Bluetooth networks. The BLE analogue of a time-domain white
// space is *spectral*: on a request, the BLE master excludes the data
// channels overlapping the ZigBee band from its adaptive-frequency-hopping
// map for a lease period. The loop itself — allocator, grant accounting,
// lease expiry, end-of-burst estimation — is the shared
// core::CoordinationEngine in its lease-based (kBleTraits) mode; this
// adapter contributes only the cross-decoding receiver and the hop-map
// protection mechanics.

#include <cstdint>
#include <vector>

#include "ble/ble_link.hpp"
#include "core/coordination_engine.hpp"
#include "core/technology_traits.hpp"
#include "core/whitespace.hpp"
#include "phy/radio.hpp"

namespace bicord::ble {

class BleBiCordAgent {
 public:
  struct Config {
    core::AllocatorParams allocator;
    /// The ZigBee channel being protected (802.15.4 numbering).
    int zigbee_channel = 24;
    /// Lease extension granted per request on top of the allocator grant.
    Duration grant_margin = core::kBleTraits.grant_margin;
  };

  /// `connection` is the master's BLE link; the agent listens for ZigBee
  /// control packets with a cross-decoding receiver on the master node.
  BleBiCordAgent(phy::Medium& medium, BleConnection& connection, Config config);

  [[nodiscard]] std::uint64_t requests_detected() const { return engine_.requests(); }
  [[nodiscard]] std::uint64_t leases_granted() const { return engine_.grants(); }
  [[nodiscard]] bool lease_active() const { return engine_.grant_active(); }
  [[nodiscard]] const core::WhitespaceAllocator& allocator() const {
    return engine_.allocator();
  }
  [[nodiscard]] const std::vector<int>& protected_channels() const {
    return protected_channels_;
  }

 private:
  void on_control_frame(const phy::RxResult& rx);

  sim::Simulator& sim_;
  BleConnection& connection_;
  Config config_;
  core::CoordinationEngine engine_;
  /// Cross-decoding receiver: a ZigBee-band radio co-located with the
  /// master (Jiang et al., "cross-decoding").
  phy::Radio cross_decoder_;

  std::vector<int> protected_channels_;
};

}  // namespace bicord::ble
