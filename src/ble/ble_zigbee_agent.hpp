#pragma once
// ZigBee-side agent for the BLE coexistence extension.
//
// Against BLE the channel is only *intermittently* occupied (frequency
// hopping touches the ZigBee band a few percent of the time), so CCA-based
// acquisition never triggers — the signal to coordinate is *delivery
// failure*. On a failed transmission the agent emits a short train of
// control packets (which the BLE master's cross-decoding receiver
// understands as a channel request) and retries. Control emission and round
// accounting are the shared core::RequesterEngine; this adapter only paces
// the train.

#include <cstdint>

#include "core/coordination_engine.hpp"
#include "core/protocol_params.hpp"
#include "core/zigbee_agent.hpp"
#include "zigbee/zigbee_mac.hpp"

namespace bicord::ble {

class BleAwareZigbeeAgent final : public core::ZigbeeAgentBase {
 public:
  struct Config {
    core::SignalingParams signaling;
    double data_power_dbm = 0.0;
    double signaling_power_dbm = 0.0;
    /// Control packets per request train.
    int control_packets = 2;
  };

  /// Keeps the concrete-MAC convenience signature (ble may name zigbee);
  /// wraps `mac` in a requester port internally.
  BleAwareZigbeeAgent(zigbee::ZigbeeMac& mac, phy::NodeId receiver, Config config);

  [[nodiscard]] std::uint64_t control_packets_sent() const {
    return engine_.control_packets();
  }
  [[nodiscard]] std::uint64_t signaling_rounds() const {
    return engine_.signaling_rounds();
  }

 protected:
  void kick() override;
  void on_head_outcome(const core::DataOutcome& outcome) override;

 private:
  void signal_train(int remaining);

  Config config_;
  core::RequesterEngine engine_;
  bool signaling_ = false;
};

}  // namespace bicord::ble
