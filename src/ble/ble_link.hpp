#pragma once
// Bluetooth Low Energy connection substrate (paper Sec. VII-D extension).
//
// A BLE connection exchanges master->slave and slave->master packets in
// *connection events* spaced by the connection interval, hopping over the
// 37 data channels according to an adaptive channel map. Channels can be
// excluded at runtime (adaptive frequency hopping) — which is exactly the
// lever a BiCord-style coordinator uses to clear the ZigBee band: instead
// of a time-domain white space, the BLE device leaves the *frequency*.

#include <array>
#include <cstdint>

#include "phy/medium.hpp"
#include "phy/radio.hpp"
#include "sim/simulator.hpp"
#include "util/rng.hpp"

namespace bicord::ble {

inline constexpr int kDataChannels = 37;

/// BLE data channel n (0..36) -> 2 MHz band. Data channels skip the three
/// advertising channels at 2402/2426/2480 MHz.
[[nodiscard]] phy::Band data_channel_band(int n);

class BleConnection {
 public:
  struct Config {
    Duration connection_interval = Duration::from_ms(15);
    /// Payload per direction per event (audio-streaming-like load).
    std::uint32_t payload_bytes = 100;
    double tx_power_dbm = 0.0;
    /// Channel-map hop increment (must be coprime with 37).
    int hop_increment = 7;
  };

  struct Stats {
    std::uint64_t events = 0;
    std::uint64_t packets_ok = 0;
    std::uint64_t packets_corrupted = 0;
    std::uint64_t events_skipped = 0;  ///< no usable channel in the map

    [[nodiscard]] double packet_success() const {
      const auto total = packets_ok + packets_corrupted;
      return total ? static_cast<double>(packets_ok) / static_cast<double>(total) : 0.0;
    }
  };

  BleConnection(phy::Medium& medium, phy::NodeId master, phy::NodeId slave,
                Config config);

  void start();
  void stop();

  /// Adaptive frequency hopping: include/exclude a data channel. At least
  /// two channels must stay enabled; excess exclusions are refused (false).
  bool set_channel_enabled(int channel, bool enabled);
  [[nodiscard]] bool channel_enabled(int channel) const { return map_[static_cast<std::size_t>(channel)]; }
  [[nodiscard]] int enabled_channels() const;

  /// Channels whose band overlaps `band` (for coordination agents).
  [[nodiscard]] static std::vector<int> channels_overlapping(phy::Band band);

  [[nodiscard]] const Stats& stats() const { return stats_; }
  [[nodiscard]] int current_channel() const { return channel_; }
  [[nodiscard]] phy::NodeId master() const { return master_; }

 private:
  void connection_event();
  [[nodiscard]] int next_enabled_channel();
  /// One packet master->slave or slave->master; returns its airtime.
  Duration transmit_packet(phy::NodeId from, phy::NodeId to, int channel);
  void judge_packet(phy::NodeId to, int channel, double tx_power_dbm,
                    phy::NodeId from);

  phy::Medium& medium_;
  sim::Simulator& sim_;
  phy::NodeId master_;
  phy::NodeId slave_;
  Config config_;
  Rng rng_;

  std::array<bool, kDataChannels> map_;
  int channel_ = 0;
  bool running_ = false;
  sim::EventId event_ = sim::kInvalidEventId;
  Stats stats_;
};

}  // namespace bicord::ble
