#include "ble/ble_link.hpp"

#include <cmath>
#include <numeric>
#include <stdexcept>

#include "phy/units.hpp"

namespace bicord::ble {

namespace {
using namespace bicord::time_literals;

constexpr Duration kIfs = Duration::from_us(150);  // T_IFS
constexpr double kSinrThresholdDb = 6.0;           // GFSK demodulation
constexpr double kSinrWidthDb = 1.5;

/// BLE 1M PHY on-air duration: (preamble 1 + AA 4 + header 2 + payload +
/// CRC 3) bytes at 1 Mb/s.
Duration ble_airtime(std::uint32_t payload_bytes) {
  return Duration::from_us((10 + static_cast<std::int64_t>(payload_bytes)) * 8);
}
}  // namespace

phy::Band data_channel_band(int n) {
  if (n < 0 || n >= kDataChannels) {
    throw std::invalid_argument("ble::data_channel_band: n must be in [0,36]");
  }
  // Data channels 0-10 -> 2404..2424 MHz, 11-36 -> 2428..2478 MHz
  // (2426 MHz is the advertising channel 38).
  const double center = n <= 10 ? 2404.0 + 2.0 * n : 2428.0 + 2.0 * (n - 11);
  return phy::Band{center, 2.0};
}

BleConnection::BleConnection(phy::Medium& medium, phy::NodeId master,
                             phy::NodeId slave, Config config)
    : medium_(medium),
      sim_(medium.simulator()),
      master_(master),
      slave_(slave),
      config_(config),
      rng_(medium.simulator().rng().split()) {
  map_.fill(true);
  if (std::gcd(config_.hop_increment, kDataChannels) != 1) {
    throw std::invalid_argument("BleConnection: hop_increment must be coprime with 37");
  }
}

void BleConnection::start() {
  if (running_) return;
  running_ = true;
  connection_event();
}

void BleConnection::stop() {
  running_ = false;
  if (event_ != sim::kInvalidEventId) {
    sim_.cancel(event_);
    event_ = sim::kInvalidEventId;
  }
}

int BleConnection::enabled_channels() const {
  int n = 0;
  for (bool e : map_) n += e ? 1 : 0;
  return n;
}

bool BleConnection::set_channel_enabled(int channel, bool enabled) {
  if (channel < 0 || channel >= kDataChannels) {
    throw std::invalid_argument("BleConnection::set_channel_enabled: bad channel");
  }
  auto& slot = map_[static_cast<std::size_t>(channel)];
  if (!enabled && slot && enabled_channels() <= 2) return false;  // keep the link alive
  slot = enabled;
  return true;
}

std::vector<int> BleConnection::channels_overlapping(phy::Band band) {
  std::vector<int> hits;
  for (int c = 0; c < kDataChannels; ++c) {
    if (phy::overlap_mhz(data_channel_band(c), band) > 0.0) hits.push_back(c);
  }
  return hits;
}

int BleConnection::next_enabled_channel() {
  // Channel selection algorithm #1 style: hop, remapping excluded channels.
  for (int step = 0; step < kDataChannels; ++step) {
    channel_ = (channel_ + config_.hop_increment) % kDataChannels;
    if (map_[static_cast<std::size_t>(channel_)]) return channel_;
  }
  return -1;
}

Duration BleConnection::transmit_packet(phy::NodeId from, phy::NodeId to, int channel) {
  const Duration airtime = ble_airtime(config_.payload_bytes);
  phy::Frame f;
  f.tech = phy::Technology::Bluetooth;
  f.kind = phy::FrameKind::Data;
  f.src = from;
  f.dst = to;
  f.bytes = config_.payload_bytes + 10;
  medium_.begin_tx(f, data_channel_band(channel), config_.tx_power_dbm, airtime);
  judge_packet(to, channel, config_.tx_power_dbm, from);
  return airtime;
}

void BleConnection::judge_packet(phy::NodeId to, int channel, double tx_power_dbm,
                                 phy::NodeId from) {
  // Sample the interference at the receiver at the packet's start and
  // midpoint (events can begin or end mid-packet) and decide on the worst.
  const phy::Band band = data_channel_band(channel);
  const double signal = medium_.rx_power_dbm(from, tx_power_dbm, band, to, band);
  auto interference = [this, to, band, from] {
    return medium_.energy_dbm(to, band, from);
  };
  const double i0 = interference();
  const Duration airtime = ble_airtime(config_.payload_bytes);
  sim_.after(airtime / 2, [this, signal, i0, interference] {
    const double worst = std::max(i0, interference());
    const double sinr = signal - worst;
    const double p = 1.0 / (1.0 + std::exp(-(sinr - kSinrThresholdDb) / kSinrWidthDb));
    if (rng_.bernoulli(p)) {
      ++stats_.packets_ok;
    } else {
      ++stats_.packets_corrupted;
    }
  });
}

void BleConnection::connection_event() {
  if (!running_) return;
  ++stats_.events;
  const int channel = next_enabled_channel();
  if (channel < 0) {
    ++stats_.events_skipped;
  } else {
    // Master -> slave, then slave -> master after T_IFS.
    const Duration m_air = transmit_packet(master_, slave_, channel);
    sim_.after(m_air + kIfs, [this, channel] {
      if (!running_) return;
      transmit_packet(slave_, master_, channel);
    });
  }
  event_ = sim_.after(config_.connection_interval, [this] {
    event_ = sim::kInvalidEventId;
    connection_event();
  });
}

}  // namespace bicord::ble
