#include "ble/ble_zigbee_agent.hpp"

#include "zigbee/bicord_port.hpp"

namespace bicord::ble {

BleAwareZigbeeAgent::BleAwareZigbeeAgent(zigbee::ZigbeeMac& mac, phy::NodeId receiver,
                                         Config config)
    : ZigbeeAgentBase(zigbee::requester_port(mac), receiver),
      config_(config),
      engine_(*mac_, core::RequesterEngine::Config{config.signaling}) {
  max_attempts_ = 30;
}

void BleAwareZigbeeAgent::kick() {
  if (queue_empty() || signaling_ || pumping()) return;
  pump_head(config_.data_power_dbm);
}

void BleAwareZigbeeAgent::on_head_outcome(const core::DataOutcome& outcome) {
  const bool failed = !outcome.delivered;
  // Claim the signaling state *before* the base accounting runs its kick():
  // otherwise the kick would launch the next data attempt and the control
  // train would race the MAC for the radio.
  if (failed && !signaling_) signaling_ = true;
  ZigbeeAgentBase::on_head_outcome(outcome);
  if (failed && signaling_) {
    if (queue_empty()) {
      signaling_ = false;
      return;
    }
    // Delivery failure under hopping interference: request protection.
    engine_.begin_round();
    signal_train(config_.control_packets);
  }
}

void BleAwareZigbeeAgent::signal_train(int remaining) {
  if (remaining == 0 || queue_empty()) {
    signaling_ = false;
    kick();
    return;
  }
  if (mac_->radio_transmitting()) {
    // A stray transmission (late MAC retry) still holds the radio; retry
    // the train shortly.
    sim_.after(Duration::from_ms(1), [this, remaining] { signal_train(remaining); });
    return;
  }
  engine_.send_control(config_.signaling_power_dbm, [this, remaining] {
    sim_.after(config_.signaling.control_gap, [this, remaining] {
      signal_train(remaining - 1);
    });
  });
}

}  // namespace bicord::ble
