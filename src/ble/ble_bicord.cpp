#include "ble/ble_bicord.hpp"

#include "phy/spectrum.hpp"

namespace bicord::ble {

namespace {
phy::Radio::Config decoder_config(int zigbee_channel) {
  phy::Radio::Config rc;
  rc.tech = phy::Technology::ZigBee;  // cross-decoding of 802.15.4 frames
  rc.band = phy::zigbee_channel(zigbee_channel);
  rc.sensitivity_dbm = -90.0;  // cross-decoding is less sensitive than native
  rc.sinr_threshold_db = 5.0;
  rc.sinr_width_db = 1.5;
  rc.fading_sigma_db = 1.5;
  return rc;
}
}  // namespace

BleBiCordAgent::BleBiCordAgent(phy::Medium& medium, BleConnection& connection,
                               Config config)
    : sim_(medium.simulator()),
      connection_(connection),
      config_(config),
      engine_(medium.simulator(), core::kBleTraits, config.allocator,
              /*history_capacity=*/1024),
      cross_decoder_(medium, connection.master(), decoder_config(config.zigbee_channel)) {
  protected_channels_ =
      BleConnection::channels_overlapping(phy::zigbee_channel(config_.zigbee_channel));
  engine_.set_release_hook([this] {
    for (int c : protected_channels_) connection_.set_channel_enabled(c, true);
  });
  cross_decoder_.set_rx_callback(
      [this](const phy::RxResult& rx) { on_control_frame(rx); });
}

void BleBiCordAgent::on_control_frame(const phy::RxResult& rx) {
  if (!rx.success || rx.frame.kind != phy::FrameKind::Control) return;
  const auto grant = engine_.on_request(sim_.now());
  if (!grant.has_value()) return;  // already protecting the band
  // The BLE agent drives its own engine instance (single-grantor piconet, no
  // election to shadow), so issuing the lease here is the sanctioned path.
  // bicord-lint: allow(grant-issue-outside-engine)
  engine_.begin_lease(sim_.now(), *grant + config_.grant_margin);
  for (int c : protected_channels_) connection_.set_channel_enabled(c, false);
  engine_.arm_lease_expiry();  // bicord-lint: allow(grant-issue-outside-engine)
}

}  // namespace bicord::ble
