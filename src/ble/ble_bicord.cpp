#include "ble/ble_bicord.hpp"

#include "phy/spectrum.hpp"

namespace bicord::ble {

namespace {
phy::Radio::Config decoder_config(int zigbee_channel) {
  phy::Radio::Config rc;
  rc.tech = phy::Technology::ZigBee;  // cross-decoding of 802.15.4 frames
  rc.band = phy::zigbee_channel(zigbee_channel);
  rc.sensitivity_dbm = -90.0;  // cross-decoding is less sensitive than native
  rc.sinr_threshold_db = 5.0;
  rc.sinr_width_db = 1.5;
  rc.fading_sigma_db = 1.5;
  return rc;
}
}  // namespace

BleBiCordAgent::BleBiCordAgent(phy::Medium& medium, BleConnection& connection,
                               Config config)
    : medium_(medium),
      sim_(medium.simulator()),
      connection_(connection),
      config_(config),
      allocator_(config.allocator),
      cross_decoder_(medium, connection.master(), decoder_config(config.zigbee_channel)) {
  protected_channels_ =
      BleConnection::channels_overlapping(phy::zigbee_channel(config_.zigbee_channel));
  cross_decoder_.set_rx_callback(
      [this](const phy::RxResult& rx) { on_control_frame(rx); });
}

bool BleBiCordAgent::lease_active() const { return sim_.now() < lease_until_; }

void BleBiCordAgent::on_control_frame(const phy::RxResult& rx) {
  if (!rx.success || rx.frame.kind != phy::FrameKind::Control) return;
  ++requests_;
  last_request_ = sim_.now();
  if (lease_active()) return;  // already protecting the band
  const Duration grant = allocator_.on_request(sim_.now());
  grant_lease(grant + config_.grant_margin);
}

void BleBiCordAgent::grant_lease(Duration lease) {
  ++leases_;
  lease_until_ = sim_.now() + lease;
  for (int c : protected_channels_) connection_.set_channel_enabled(c, false);
  if (lease_timer_ != sim::kInvalidEventId) sim_.cancel(lease_timer_);
  lease_timer_ = sim_.at(lease_until_, [this] {
    lease_timer_ = sim::kInvalidEventId;
    lease_expired();
  });
}

void BleBiCordAgent::lease_expired() {
  for (int c : protected_channels_) connection_.set_channel_enabled(c, true);
  // End-of-burst detection mirrors the Wi-Fi agent: silence after the lease
  // elapses marks the burst complete and feeds the estimator.
  const TimePoint resumed = sim_.now();
  sim_.after(allocator_.params().end_of_burst_gap, [this, resumed] {
    if (lease_active()) return;           // a new lease started meanwhile
    if (last_request_ > resumed) return;  // burst continuing
    allocator_.on_burst_end(sim_.now());
  });
}

}  // namespace bicord::ble
