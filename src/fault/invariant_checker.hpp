#pragma once
// Always-on invariant checker for chaos soaks.
//
// Samples the watched agents on a fixed period and records a violation line
// whenever a protocol invariant is broken:
//   * the Wi-Fi agent holds a grant longer than any legitimate white space
//     plus watchdog slack (a wedged grant_outstanding_),
//   * the allocator estimate leaves [0, max_whitespace],
//   * the ZigBee agent sits in a non-idle state without making any progress
//     (no delivery, drop, control packet, CTI sample, or give-up) for longer
//     than `max_stall`,
//   * the ZigBee backlog or the simulator event queue grows without bound.
// When a GrantorElection is watched, two failover invariants are always on:
//   * double-grant overlap — no two grantors' protection windows for the
//     same requester may overlap in time (the election's grant log is
//     replayed incrementally each tick),
//   * bounded handoff gap — every takeover must produce the new primary's
//     first grant within grace + lease margin of the uncovered request that
//     triggered it (checked per tick once filled; unfilled takeovers older
//     than the bound are violations too).
// finish() additionally verifies end-of-run quiescence and, given the
// injector, that every swallowed pause-end was answered by a watchdog
// recovery. Violations are strings so a failing soak is diagnosable from
// the test log alone.

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "core/bicord_wifi.hpp"
#include "core/bicord_zigbee.hpp"
#include "fault/fault_injector.hpp"
#include "sim/simulator.hpp"

namespace bicord::fault {

struct InvariantLimits {
  Duration period = Duration::from_ms(50);
  /// Longest a grant may stay outstanding: covers max_whitespace + margin +
  /// watchdog slack with headroom for CTS queueing.
  Duration max_grant_hold = Duration::from_ms(400);
  /// Longest the ZigBee agent may sit non-idle without any counter moving.
  Duration max_stall = Duration::from_sec(2);
  std::size_t max_backlog = 512;
  std::size_t max_pending_events = 100000;
};

class InvariantChecker {
 public:
  explicit InvariantChecker(sim::Simulator& sim, InvariantLimits limits = InvariantLimits{});

  InvariantChecker(const InvariantChecker&) = delete;
  InvariantChecker& operator=(const InvariantChecker&) = delete;

  void watch_wifi(const core::BiCordWifiAgent& agent) { wifi_ = &agent; }
  void watch_zigbee(const core::BiCordZigbeeAgent& agent) { zigbee_ = &agent; }
  /// Enables the multi-grantor invariants (double-grant overlap, bounded
  /// handoff gap) by replaying the election's grant/handoff logs.
  void watch_election(const core::GrantorElection& election) {
    election_ = &election;
  }

  /// Starts the periodic checks (idempotent).
  void start();

  /// End-of-run checks; pass the injector to verify fault/recovery pairing.
  void finish(const FaultInjector* injector = nullptr);

  [[nodiscard]] const std::vector<std::string>& violations() const { return violations_; }
  [[nodiscard]] bool ok() const { return violations_.empty(); }
  [[nodiscard]] std::uint64_t checks_run() const { return checks_; }
  /// All violations joined into one line-per-violation blob (for asserts).
  [[nodiscard]] std::string report() const;

 private:
  void tick();
  void violate(const std::string& what);
  [[nodiscard]] std::uint64_t zigbee_progress_counter() const;
  /// Incremental replay of the election logs; `final_pass` also flags
  /// still-unfilled takeovers older than the handoff bound.
  void check_election(bool final_pass);

  sim::Simulator& sim_;
  InvariantLimits limits_;
  const core::BiCordWifiAgent* wifi_ = nullptr;
  const core::BiCordZigbeeAgent* zigbee_ = nullptr;
  const core::GrantorElection* election_ = nullptr;
  std::unique_ptr<sim::PeriodicTask> task_;

  std::uint64_t last_zigbee_progress_ = 0;
  TimePoint last_zigbee_change_;
  std::uint64_t grant_cursor_ = 0;    ///< next unchecked election grant (all-time)
  std::size_t handoff_cursor_ = 0;    ///< next unchecked handoff record
  std::vector<TimePoint> member_protected_until_;
  std::uint64_t checks_ = 0;
  std::vector<std::string> violations_;
};

}  // namespace bicord::fault
