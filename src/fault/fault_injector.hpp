#pragma once
// Applies a FaultPlan to a running scenario, deterministically.
//
// The injector is the single place where fault randomness lives: every draw
// (probabilistic frame corruption, clock jitter) comes off one dedicated RNG
// stream derived with the *const* Rng::split(key) — the parent stream is not
// advanced, so attaching an injector never perturbs the existing per-device
// streams and two runs with the same seed stay bitwise identical whether or
// not --jobs parallelism is in play (PR 1's determinism contract).
//
// Wiring (done by coex::Scenario::build_faults, or by hand in tests):
//   * attach_medium     — installs the TxInterceptor for frame drop/corrupt
//   * attach_wifi_agent — pause-end filter, clock jitter, detector/CSI hooks
//   * attach_zigbee_agent — clock jitter, RSSI-sampler glitches
//   * set_burst_shift_handler / set_node_handler — traffic-source faults
// then arm() schedules one activation event per FaultEvent.

#include <cstdint>
#include <functional>

#include "core/bicord_wifi.hpp"
#include "core/bicord_zigbee.hpp"
#include "fault/fault_plan.hpp"
#include "phy/medium.hpp"
#include "sim/simulator.hpp"
#include "util/rng.hpp"

namespace bicord::fault {

class FaultInjector final : public phy::TxInterceptor {
 public:
  /// Everything the injector actually did, for soak assertions and the
  /// bicordsim fault report.
  struct Counters {
    std::uint64_t cts_corrupted = 0;
    std::uint64_t controls_dropped = 0;
    std::uint64_t frames_corrupted = 0;
    std::uint64_t pause_ends_swallowed = 0;
    std::uint64_t detector_false_positives = 0;
    std::uint64_t detector_fn_windows = 0;
    std::uint64_t csi_dropout_windows = 0;
    std::uint64_t rssi_glitch_windows = 0;
    std::uint64_t clock_jitter_windows = 0;
    std::uint64_t clock_skew_activations = 0;
    std::uint64_t burst_shifts = 0;
    std::uint64_t node_leaves = 0;
    std::uint64_t node_joins = 0;

    [[nodiscard]] std::uint64_t total() const {
      return cts_corrupted + controls_dropped + frames_corrupted + pause_ends_swallowed +
             detector_false_positives + detector_fn_windows + csi_dropout_windows +
             rssi_glitch_windows + clock_jitter_windows + clock_skew_activations +
             burst_shifts + node_leaves + node_joins;
    }
  };

  /// Handler for BurstShift events: (packets_per_burst, mean_interval).
  using BurstShiftHandler = std::function<void(int, Duration)>;
  /// Handler for NodeLeave/NodeJoin events: (link index, join?).
  using NodeHandler = std::function<void(int, bool)>;

  FaultInjector(sim::Simulator& sim, FaultPlan plan);
  ~FaultInjector();

  FaultInjector(const FaultInjector&) = delete;
  FaultInjector& operator=(const FaultInjector&) = delete;

  void attach_medium(phy::Medium& medium);
  /// May be called for several grantors (multi-grantor scenarios); each gets
  /// its own clock-skew slot in attach order. Detector/CSI faults keep
  /// targeting the first-attached agent (the testbed grantor).
  void attach_wifi_agent(core::BiCordWifiAgent& agent);
  void attach_zigbee_agent(core::BiCordZigbeeAgent& agent);
  void set_burst_shift_handler(BurstShiftHandler handler) {
    burst_shift_ = std::move(handler);
  }
  void set_node_handler(NodeHandler handler) { node_ = std::move(handler); }

  /// Schedules one activation event per FaultEvent. Call once, after the
  /// attach_* wiring; events whose time already passed are applied now.
  void arm();

  [[nodiscard]] const FaultPlan& plan() const { return plan_; }
  [[nodiscard]] const Counters& counters() const { return counters_; }

  // phy::TxInterceptor
  phy::TxVerdict intercept(const phy::ActiveTransmission& tx) override;

 private:
  struct CorruptWindow {
    TimePoint until;
    double probability = 1.0;
    phy::Technology tech = phy::Technology::ZigBee;
  };
  struct JitterWindow {
    TimePoint until;
    double magnitude = 0.0;
  };

  void activate(const FaultEvent& ev);
  [[nodiscard]] bool swallow_pause_end(TimePoint t);
  [[nodiscard]] Duration jitter(Duration d);
  /// Applies agent `slot`'s crystal-drift factor (1 + ppm·1e-6). RNG-free per
  /// call — the ppm values are drawn once at ClockSkew activation — so
  /// plans without a clock-skew event stay bitwise identical.
  [[nodiscard]] Duration skewed(std::size_t slot, Duration d) const;

  sim::Simulator& sim_;
  FaultPlan plan_;
  Rng rng_;  ///< dedicated stream; every fault draw comes from here
  Counters counters_;

  phy::Medium* medium_ = nullptr;
  core::BiCordWifiAgent* wifi_ = nullptr;
  core::BiCordZigbeeAgent* zigbee_ = nullptr;
  BurstShiftHandler burst_shift_;
  NodeHandler node_;

  int cts_loss_budget_ = 0;
  int control_deaf_budget_ = 0;
  int pause_end_budget_ = 0;
  std::vector<CorruptWindow> corrupt_windows_;
  JitterWindow jitter_window_;
  std::vector<double> skew_ppm_;  ///< one slot per attached agent, attach order
  bool armed_ = false;
};

}  // namespace bicord::fault
