#pragma once
// Declarative fault plans for the deterministic fault-injection subsystem.
//
// A FaultPlan is a list of FaultEvents — scheduled ("at 1.5 s, corrupt the
// next 2 CTS frames") or probabilistic ("between 1 s and 2.5 s, corrupt 25%
// of ZigBee frames") faults that the FaultInjector applies through hooks in
// the PHY medium, the CSI detector, the RSSI sampler, the agents' timers,
// and the traffic sources. Plans are plain data: they can be built in code,
// taken from a named preset, or parsed from a small text DSL (one event per
// line) so `bicordsim --fault-plan @file` can replay a soak exactly.

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "phy/frame.hpp"
#include "util/time.hpp"

namespace bicord::fault {

enum class FaultKind : std::uint8_t {
  /// Corrupt the next `count` CTS-to-self frames: they occupy the air (the
  /// sender still self-pauses) but no receiver decodes the NAV.
  CtsLoss,
  /// Drop the next `count` ZigBee control packets: every receiver is deaf to
  /// them (no energy, no CSI disturbance) — the request simply vanishes.
  ControlDeaf,
  /// For `window` after `at`, corrupt frames of `tech` with `probability`.
  FrameCorrupt,
  /// Swallow the next `count` Wi-Fi pause-end notifications (lost resume
  /// interrupt) — the stale-grant watchdog must rescue the agent.
  PauseEndLoss,
  /// Stall the Wi-Fi CSI extraction pipeline for `window` (no samples).
  CsiDropout,
  /// Force one spurious detection at `at` (false positive).
  DetectorFalsePositive,
  /// Swallow every would-be detection for `window` (false negatives).
  DetectorFalseNegative,
  /// Add `magnitude` dB to every RSSI sample read for `window`.
  RssiGlitch,
  /// For `window`, scale agent timer delays by U(1-m, 1+m) (clock jitter).
  ClockJitter,
  /// Give every attached agent a persistent crystal-drift rate: each agent
  /// draws its own skew in ±`magnitude` ppm (one draw per agent, attach
  /// order, off the dedicated fault stream) and from then on *all* its timer
  /// delays — watchdogs and lease expiries included — are scaled by
  /// (1 + ppm·1e-6). Unlike ClockJitter this never re-rolls per timer, so it
  /// models drift, not scheduling noise.
  ClockSkew,
  /// Reconfigure the primary ZigBee burst source: `burst_packets` packets
  /// per burst, `burst_interval` mean spacing (pattern change mid-run).
  BurstShift,
  /// Stop the extra ZigBee node `link` (0 = primary source).
  NodeLeave,
  /// (Re)start the extra ZigBee node `link` (0 = primary source).
  NodeJoin,
};

[[nodiscard]] const char* to_string(FaultKind kind);

struct FaultEvent {
  FaultKind kind = FaultKind::CtsLoss;
  /// Activation time (absolute simulation time).
  TimePoint at;
  /// Active window for windowed kinds (FrameCorrupt, CsiDropout, ...).
  Duration window;
  /// Budget for counted kinds (CtsLoss, ControlDeaf, PauseEndLoss).
  int count = 1;
  /// Per-frame probability for FrameCorrupt.
  double probability = 1.0;
  /// Kind-specific magnitude: dB offset (RssiGlitch), jitter fraction
  /// (ClockJitter), or max |ppm| of crystal drift (ClockSkew).
  double magnitude = 0.0;
  /// Technology filter for FrameCorrupt.
  phy::Technology tech = phy::Technology::ZigBee;
  /// BurstShift parameters.
  int burst_packets = 0;
  Duration burst_interval;
  /// Node index for NodeLeave / NodeJoin (0 = primary burst source, 1+ =
  /// extra ZigBee senders in scenario order).
  int link = 0;
};

class FaultPlan {
 public:
  FaultPlan() = default;

  FaultPlan& add(FaultEvent event) {
    events_.push_back(event);
    return *this;
  }

  [[nodiscard]] bool empty() const { return events_.empty(); }
  [[nodiscard]] std::size_t size() const { return events_.size(); }
  [[nodiscard]] const std::vector<FaultEvent>& events() const { return events_; }

  /// One human-readable line per event.
  [[nodiscard]] std::string describe() const;

  /// Named plans used by the chaos soak and `bicordsim --fault-plan`:
  /// "cts-loss", "detector", "rssi", "burst-shift", "frame-loss",
  /// "clock-jitter", "mixed". Returns nullopt for unknown names.
  [[nodiscard]] static std::optional<FaultPlan> preset(const std::string& name);

  /// Parses the text DSL: one event per line,
  ///   <kind> at=<time> [window=] [count=] [prob=] [mag=] [tech=]
  ///          [packets=] [interval=] [link=]
  /// with duration suffixes us/ms/s; '#' starts a comment. Returns nullopt
  /// (and fills *error) on malformed input.
  [[nodiscard]] static std::optional<FaultPlan> parse(const std::string& text,
                                                     std::string* error = nullptr);

 private:
  std::vector<FaultEvent> events_;
};

}  // namespace bicord::fault
