#include "fault/invariant_checker.hpp"

#include <sstream>

#include "util/logging.hpp"

namespace bicord::fault {

InvariantChecker::InvariantChecker(sim::Simulator& sim, InvariantLimits limits)
    : sim_(sim), limits_(limits) {}

void InvariantChecker::start() {
  if (task_ != nullptr) return;
  last_zigbee_change_ = sim_.now();
  task_ = std::make_unique<sim::PeriodicTask>(sim_, limits_.period, [this] { tick(); });
  task_->start();
}

void InvariantChecker::violate(const std::string& what) {
  violations_.push_back("[" + sim_.now().to_string() + "] " + what);
  BICORD_LOG(Error, sim_.now(), "fault.invariant", what);
}

std::uint64_t InvariantChecker::zigbee_progress_counter() const {
  const auto& st = zigbee_->stats();
  return st.delivered + st.dropped + zigbee_->control_packets_sent() +
         zigbee_->cti_samples_taken() + zigbee_->give_ups() +
         zigbee_->ignored_requests();
}

void InvariantChecker::tick() {
  ++checks_;
  const TimePoint now = sim_.now();

  if (wifi_ != nullptr) {
    if (wifi_->grant_outstanding() &&
        now - wifi_->grant_started() > limits_.max_grant_hold) {
      violate("wifi grant outstanding since " + wifi_->grant_started().to_string() +
              " exceeds max_grant_hold");
    }
    const Duration est = wifi_->allocator().estimate();
    const Duration cap = wifi_->allocator().params().max_whitespace;
    if (est < Duration::zero() || est > cap) {
      violate("allocator estimate " + est.to_string() + " outside [0, " +
              cap.to_string() + "]");
    }
  }

  if (zigbee_ != nullptr) {
    const std::uint64_t progress = zigbee_progress_counter();
    const bool idle = zigbee_->state() == core::BiCordZigbeeAgent::State::Idle;
    if (progress != last_zigbee_progress_ || idle) {
      last_zigbee_progress_ = progress;
      last_zigbee_change_ = now;
    } else if (now - last_zigbee_change_ > limits_.max_stall) {
      violate("zigbee agent wedged: non-idle with no progress since " +
              last_zigbee_change_.to_string());
      last_zigbee_change_ = now;  // report once per stall, not per tick
    }
    if (zigbee_->backlog() > limits_.max_backlog) {
      violate("zigbee backlog " + std::to_string(zigbee_->backlog()) +
              " exceeds max_backlog " + std::to_string(limits_.max_backlog));
    }
  }

  if (sim_.pending_events() > limits_.max_pending_events) {
    violate("event queue " + std::to_string(sim_.pending_events()) +
            " exceeds max_pending_events");
  }

  if (election_ != nullptr) check_election(/*final_pass=*/false);
}

void InvariantChecker::check_election(bool final_pass) {
  const TimePoint now = sim_.now();
  member_protected_until_.resize(election_->member_count(), TimePoint{});

  // Double-grant overlap: replay new grant records in issue order. A record
  // from member m whose protection starts before another member's last
  // protection ended means two grantors promised the requester overlapping
  // white space — the failure mode the election exists to prevent.
  if (grant_cursor_ < election_->grant_log_base()) {
    grant_cursor_ = election_->grant_log_base();  // capped log outran the tick
  }
  for (; grant_cursor_ < election_->grant_log_end(); ++grant_cursor_) {
    const auto& g = election_->grant_record(grant_cursor_);
    for (std::size_t k = 0; k < member_protected_until_.size(); ++k) {
      if (k == g.member) continue;
      if (g.start < member_protected_until_[k]) {
        violate("double-grant overlap: member " + std::to_string(g.member) +
                " granted at " + g.start.to_string() + " while member " +
                std::to_string(k) + "'s protection runs until " +
                member_protected_until_[k].to_string());
      }
    }
    if (g.protected_until > member_protected_until_[g.member]) {
      member_protected_until_[g.member] = g.protected_until;
    }
  }

  // Bounded handoff gap: a takeover must produce the new primary's first
  // grant within grace + lease margin of the request that triggered it.
  const Duration bound = election_->handoff_bound();
  const auto& handoffs = election_->handoffs();
  while (handoff_cursor_ < handoffs.size()) {
    const auto& h = handoffs[handoff_cursor_];
    if (h.first_grant.has_value()) {
      const Duration gap = *h.first_grant - h.request;
      if (gap > bound) {
        violate("handoff gap " + gap.to_string() + " exceeds bound " +
                bound.to_string() + " (takeover at " + h.takeover.to_string() + ")");
      }
      ++handoff_cursor_;
      continue;
    }
    if (now - h.request > bound && (final_pass || now - h.request > bound + limits_.period)) {
      violate("handoff gap unbounded: takeover at " + h.takeover.to_string() +
              " never produced a grant within " + bound.to_string() +
              " of the request at " + h.request.to_string());
      ++handoff_cursor_;
      continue;
    }
    break;  // still within the bound — recheck next tick
  }
}

void InvariantChecker::finish(const FaultInjector* injector) {
  const TimePoint now = sim_.now();
  if (wifi_ != nullptr && wifi_->grant_outstanding() &&
      now - wifi_->grant_started() > limits_.max_grant_hold) {
    violate("at finish: wifi grant still outstanding past max_grant_hold");
  }
  if (zigbee_ != nullptr &&
      zigbee_->state() != core::BiCordZigbeeAgent::State::Idle &&
      zigbee_progress_counter() == last_zigbee_progress_ &&
      now - last_zigbee_change_ > limits_.max_stall) {
    violate("at finish: zigbee agent non-idle and stalled");
  }
  if (election_ != nullptr) check_election(/*final_pass=*/true);
  if (injector != nullptr && wifi_ != nullptr) {
    // Every swallowed pause-end must have been answered by a watchdog
    // recovery — recovery or explicit give-up, never a silent wedge.
    const auto swallowed = injector->counters().pause_ends_swallowed;
    if (wifi_->watchdog_recoveries() < swallowed) {
      violate("at finish: " + std::to_string(swallowed) +
              " pause-ends swallowed but only " +
              std::to_string(wifi_->watchdog_recoveries()) + " watchdog recoveries");
    }
  }
}

std::string InvariantChecker::report() const {
  std::ostringstream os;
  for (const auto& v : violations_) os << v << "\n";
  return os.str();
}

}  // namespace bicord::fault
