#include "fault/invariant_checker.hpp"

#include <sstream>

#include "util/logging.hpp"

namespace bicord::fault {

InvariantChecker::InvariantChecker(sim::Simulator& sim, InvariantLimits limits)
    : sim_(sim), limits_(limits) {}

void InvariantChecker::start() {
  if (task_ != nullptr) return;
  last_zigbee_change_ = sim_.now();
  task_ = std::make_unique<sim::PeriodicTask>(sim_, limits_.period, [this] { tick(); });
  task_->start();
}

void InvariantChecker::violate(const std::string& what) {
  violations_.push_back("[" + sim_.now().to_string() + "] " + what);
  BICORD_LOG(Error, sim_.now(), "fault.invariant", what);
}

std::uint64_t InvariantChecker::zigbee_progress_counter() const {
  const auto& st = zigbee_->stats();
  return st.delivered + st.dropped + zigbee_->control_packets_sent() +
         zigbee_->cti_samples_taken() + zigbee_->give_ups() +
         zigbee_->ignored_requests();
}

void InvariantChecker::tick() {
  ++checks_;
  const TimePoint now = sim_.now();

  if (wifi_ != nullptr) {
    if (wifi_->grant_outstanding() &&
        now - wifi_->grant_started() > limits_.max_grant_hold) {
      violate("wifi grant outstanding since " + wifi_->grant_started().to_string() +
              " exceeds max_grant_hold");
    }
    const Duration est = wifi_->allocator().estimate();
    const Duration cap = wifi_->allocator().params().max_whitespace;
    if (est < Duration::zero() || est > cap) {
      violate("allocator estimate " + est.to_string() + " outside [0, " +
              cap.to_string() + "]");
    }
  }

  if (zigbee_ != nullptr) {
    const std::uint64_t progress = zigbee_progress_counter();
    const bool idle = zigbee_->state() == core::BiCordZigbeeAgent::State::Idle;
    if (progress != last_zigbee_progress_ || idle) {
      last_zigbee_progress_ = progress;
      last_zigbee_change_ = now;
    } else if (now - last_zigbee_change_ > limits_.max_stall) {
      violate("zigbee agent wedged: non-idle with no progress since " +
              last_zigbee_change_.to_string());
      last_zigbee_change_ = now;  // report once per stall, not per tick
    }
    if (zigbee_->backlog() > limits_.max_backlog) {
      violate("zigbee backlog " + std::to_string(zigbee_->backlog()) +
              " exceeds max_backlog " + std::to_string(limits_.max_backlog));
    }
  }

  if (sim_.pending_events() > limits_.max_pending_events) {
    violate("event queue " + std::to_string(sim_.pending_events()) +
            " exceeds max_pending_events");
  }
}

void InvariantChecker::finish(const FaultInjector* injector) {
  const TimePoint now = sim_.now();
  if (wifi_ != nullptr && wifi_->grant_outstanding() &&
      now - wifi_->grant_started() > limits_.max_grant_hold) {
    violate("at finish: wifi grant still outstanding past max_grant_hold");
  }
  if (zigbee_ != nullptr &&
      zigbee_->state() != core::BiCordZigbeeAgent::State::Idle &&
      zigbee_progress_counter() == last_zigbee_progress_ &&
      now - last_zigbee_change_ > limits_.max_stall) {
    violate("at finish: zigbee agent non-idle and stalled");
  }
  if (injector != nullptr && wifi_ != nullptr) {
    // Every swallowed pause-end must have been answered by a watchdog
    // recovery — recovery or explicit give-up, never a silent wedge.
    const auto swallowed = injector->counters().pause_ends_swallowed;
    if (wifi_->watchdog_recoveries() < swallowed) {
      violate("at finish: " + std::to_string(swallowed) +
              " pause-ends swallowed but only " +
              std::to_string(wifi_->watchdog_recoveries()) + " watchdog recoveries");
    }
  }
}

std::string InvariantChecker::report() const {
  std::ostringstream os;
  for (const auto& v : violations_) os << v << "\n";
  return os.str();
}

}  // namespace bicord::fault
