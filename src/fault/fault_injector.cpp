#include "fault/fault_injector.hpp"

#include <algorithm>
#include <stdexcept>

#include "util/logging.hpp"

namespace bicord::fault {

FaultInjector::FaultInjector(sim::Simulator& sim, FaultPlan plan)
    : sim_(sim),
      plan_(std::move(plan)),
      // const split: derives the fault stream without advancing the parent,
      // so an armed injector never shifts the scenario's other RNG streams.
      rng_(sim.rng().split(0xFA017EC7ULL)) {}

FaultInjector::~FaultInjector() {
  if (medium_ != nullptr) medium_->set_tx_interceptor(nullptr);
}

void FaultInjector::attach_medium(phy::Medium& medium) {
  medium_ = &medium;
  medium.set_tx_interceptor(this);
}

void FaultInjector::attach_wifi_agent(core::BiCordWifiAgent& agent) {
  if (wifi_ == nullptr) wifi_ = &agent;  // detector/CSI faults hit the testbed grantor
  const std::size_t slot = skew_ppm_.size();
  skew_ppm_.push_back(0.0);
  agent.set_pause_end_filter([this](TimePoint t) { return swallow_pause_end(t); });
  agent.set_timer_jitter([this, slot](Duration d) { return jitter(skewed(slot, d)); });
  // Skew-only hook: reaches the watchdog/lease timers jitter never touches.
  agent.set_timer_skew([this, slot](Duration d) { return skewed(slot, d); });
}

void FaultInjector::attach_zigbee_agent(core::BiCordZigbeeAgent& agent) {
  zigbee_ = &agent;
  const std::size_t slot = skew_ppm_.size();
  skew_ppm_.push_back(0.0);
  agent.set_timer_jitter([this, slot](Duration d) { return jitter(skewed(slot, d)); });
}

void FaultInjector::arm() {
  if (armed_) throw std::logic_error("FaultInjector::arm: already armed");
  armed_ = true;
  for (const auto& ev : plan_.events()) {
    if (ev.at <= sim_.now()) {
      activate(ev);
    } else {
      sim_.at(ev.at, [this, ev] { activate(ev); });
    }
  }
}

void FaultInjector::activate(const FaultEvent& ev) {
  const TimePoint now = sim_.now();
  BICORD_LOG(Warn, now, "fault.inject", "activating " << to_string(ev.kind));
  switch (ev.kind) {
    case FaultKind::CtsLoss:
      cts_loss_budget_ += std::max(ev.count, 0);
      break;
    case FaultKind::ControlDeaf:
      control_deaf_budget_ += std::max(ev.count, 0);
      break;
    case FaultKind::PauseEndLoss:
      pause_end_budget_ += std::max(ev.count, 0);
      break;
    case FaultKind::FrameCorrupt:
      corrupt_windows_.push_back(
          CorruptWindow{now + ev.window, ev.probability, ev.tech});
      break;
    case FaultKind::CsiDropout:
      if (wifi_ != nullptr) {
        wifi_->csi_stream().drop_until(now + ev.window);
        ++counters_.csi_dropout_windows;
      }
      break;
    case FaultKind::DetectorFalsePositive:
      if (wifi_ != nullptr) {
        ++counters_.detector_false_positives;
        wifi_->detector().inject_detection(now);
      }
      break;
    case FaultKind::DetectorFalseNegative:
      if (wifi_ != nullptr) {
        wifi_->detector().suppress_until(now + ev.window);
        ++counters_.detector_fn_windows;
      }
      break;
    case FaultKind::RssiGlitch:
      if (zigbee_ != nullptr) {
        zigbee_->sampler().inject_offset(ev.magnitude, now + ev.window);
        ++counters_.rssi_glitch_windows;
      }
      break;
    case FaultKind::ClockJitter:
      jitter_window_ = JitterWindow{now + ev.window, ev.magnitude};
      ++counters_.clock_jitter_windows;
      break;
    case FaultKind::ClockSkew: {
      // One uniform draw per attached agent, in attach order — deterministic
      // for a given plan + wiring, and zero draws when the plan has no
      // clock-skew event.
      const double mag = std::max(ev.magnitude, 0.0);
      for (double& ppm : skew_ppm_) ppm = rng_.uniform(-mag, mag);
      ++counters_.clock_skew_activations;
      break;
    }
    case FaultKind::BurstShift:
      if (burst_shift_) {
        burst_shift_(ev.burst_packets, ev.burst_interval);
        ++counters_.burst_shifts;
      }
      break;
    case FaultKind::NodeLeave:
      if (node_) {
        node_(ev.link, /*join=*/false);
        ++counters_.node_leaves;
      }
      break;
    case FaultKind::NodeJoin:
      if (node_) {
        node_(ev.link, /*join=*/true);
        ++counters_.node_joins;
      }
      break;
  }
}

phy::TxVerdict FaultInjector::intercept(const phy::ActiveTransmission& tx) {
  const TimePoint now = sim_.now();
  if (tx.frame.kind == phy::FrameKind::Cts && cts_loss_budget_ > 0) {
    --cts_loss_budget_;
    ++counters_.cts_corrupted;
    BICORD_LOG(Warn, now, "fault.inject",
               "corrupting CTS from node " << tx.frame.src << " ("
                                           << cts_loss_budget_ << " left)");
    return phy::TxVerdict::Corrupt;
  }
  if (tx.frame.kind == phy::FrameKind::Control &&
      tx.frame.tech == phy::Technology::ZigBee && control_deaf_budget_ > 0) {
    --control_deaf_budget_;
    ++counters_.controls_dropped;
    BICORD_LOG(Warn, now, "fault.inject",
               "dropping control packet from node " << tx.frame.src << " ("
                                                    << control_deaf_budget_ << " left)");
    return phy::TxVerdict::Drop;
  }
  if (!corrupt_windows_.empty()) {
    corrupt_windows_.erase(
        std::remove_if(corrupt_windows_.begin(), corrupt_windows_.end(),
                       [now](const CorruptWindow& w) { return now >= w.until; }),
        corrupt_windows_.end());
    for (const auto& w : corrupt_windows_) {
      if (tx.frame.tech != w.tech) continue;
      if (!rng_.bernoulli(w.probability)) continue;
      ++counters_.frames_corrupted;
      BICORD_LOG(Warn, now, "fault.inject",
                 "corrupting " << phy::to_string(tx.frame.kind) << " frame from node "
                               << tx.frame.src);
      return phy::TxVerdict::Corrupt;
    }
  }
  return phy::TxVerdict::Deliver;
}

bool FaultInjector::swallow_pause_end(TimePoint t) {
  if (pause_end_budget_ <= 0) return false;
  --pause_end_budget_;
  ++counters_.pause_ends_swallowed;
  BICORD_LOG(Warn, t, "fault.inject",
             "swallowing pause-end notification (" << pause_end_budget_ << " left)");
  return true;
}

Duration FaultInjector::skewed(std::size_t slot, Duration d) const {
  const double ppm = skew_ppm_[slot];
  if (ppm == 0.0) return d;
  const double f = 1.0 + ppm * 1e-6;
  const auto us = static_cast<std::int64_t>(static_cast<double>(d.us()) * f);
  return Duration::from_us(std::max<std::int64_t>(us, 1));
}

Duration FaultInjector::jitter(Duration d) {
  if (sim_.now() >= jitter_window_.until || jitter_window_.magnitude <= 0.0) return d;
  const double f = rng_.uniform(1.0 - jitter_window_.magnitude,
                                1.0 + jitter_window_.magnitude);
  const auto us =
      static_cast<std::int64_t>(static_cast<double>(d.us()) * std::max(f, 0.0));
  return Duration::from_us(std::max<std::int64_t>(us, 1));
}

}  // namespace bicord::fault
