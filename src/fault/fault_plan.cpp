#include "fault/fault_plan.hpp"

#include <cctype>
#include <sstream>

namespace bicord::fault {

const char* to_string(FaultKind kind) {
  switch (kind) {
    case FaultKind::CtsLoss: return "cts-loss";
    case FaultKind::ControlDeaf: return "control-deaf";
    case FaultKind::FrameCorrupt: return "frame-corrupt";
    case FaultKind::PauseEndLoss: return "pause-end-loss";
    case FaultKind::CsiDropout: return "csi-dropout";
    case FaultKind::DetectorFalsePositive: return "detector-fp";
    case FaultKind::DetectorFalseNegative: return "detector-fn";
    case FaultKind::RssiGlitch: return "rssi-glitch";
    case FaultKind::ClockJitter: return "clock-jitter";
    case FaultKind::ClockSkew: return "clock-skew";
    case FaultKind::BurstShift: return "burst-shift";
    case FaultKind::NodeLeave: return "node-leave";
    case FaultKind::NodeJoin: return "node-join";
  }
  return "?";
}

namespace {

std::optional<FaultKind> parse_kind(const std::string& word) {
  for (const FaultKind k :
       {FaultKind::CtsLoss, FaultKind::ControlDeaf, FaultKind::FrameCorrupt,
        FaultKind::PauseEndLoss, FaultKind::CsiDropout, FaultKind::DetectorFalsePositive,
        FaultKind::DetectorFalseNegative, FaultKind::RssiGlitch, FaultKind::ClockJitter,
        FaultKind::ClockSkew, FaultKind::BurstShift, FaultKind::NodeLeave,
        FaultKind::NodeJoin}) {
    if (word == to_string(k)) return k;
  }
  return std::nullopt;
}

std::optional<phy::Technology> parse_tech(const std::string& word) {
  if (word == "wifi") return phy::Technology::WiFi;
  if (word == "zigbee") return phy::Technology::ZigBee;
  if (word == "bluetooth") return phy::Technology::Bluetooth;
  if (word == "microwave") return phy::Technology::Microwave;
  return std::nullopt;
}

/// "250us" / "30ms" / "2s" / "1.5s" -> Duration.
std::optional<Duration> parse_duration(const std::string& word) {
  std::size_t unit = 0;
  while (unit < word.size() &&
         (std::isdigit(static_cast<unsigned char>(word[unit])) != 0 ||
          word[unit] == '.' || word[unit] == '-')) {
    ++unit;
  }
  if (unit == 0 || unit == word.size()) return std::nullopt;
  double value = 0.0;
  try {
    std::size_t consumed = 0;
    value = std::stod(word.substr(0, unit), &consumed);
    if (consumed != unit) return std::nullopt;
  } catch (...) {
    return std::nullopt;
  }
  const std::string suffix = word.substr(unit);
  if (suffix == "us") return Duration::from_us(static_cast<std::int64_t>(value));
  if (suffix == "ms") return Duration::from_ms_f(value);
  if (suffix == "s") return Duration::from_sec_f(value);
  return std::nullopt;
}

bool fail(std::string* error, const std::string& message) {
  if (error != nullptr) *error = message;
  return false;
}

bool parse_event_line(const std::string& line, int line_no, FaultEvent* out,
                      bool* blank, std::string* error) {
  std::istringstream in(line);
  std::string word;
  *blank = true;
  if (!(in >> word) || word[0] == '#') return true;  // blank / comment line
  *blank = false;

  const auto kind = parse_kind(word);
  if (!kind) {
    return fail(error, "line " + std::to_string(line_no) + ": unknown fault kind '" +
                           word + "'");
  }
  FaultEvent ev;
  ev.kind = *kind;
  bool have_at = false;
  while (in >> word) {
    if (word[0] == '#') break;
    const auto eq = word.find('=');
    if (eq == std::string::npos) {
      return fail(error, "line " + std::to_string(line_no) + ": expected key=value, got '" +
                             word + "'");
    }
    const std::string key = word.substr(0, eq);
    const std::string value = word.substr(eq + 1);
    const auto bad_value = [&] {
      return fail(error, "line " + std::to_string(line_no) + ": bad value for '" + key +
                             "': '" + value + "'");
    };
    if (key == "at") {
      const auto d = parse_duration(value);
      if (!d) return bad_value();
      ev.at = TimePoint::origin() + *d;
      have_at = true;
    } else if (key == "window") {
      const auto d = parse_duration(value);
      if (!d) return bad_value();
      ev.window = *d;
    } else if (key == "interval") {
      const auto d = parse_duration(value);
      if (!d) return bad_value();
      ev.burst_interval = *d;
    } else if (key == "count") {
      try {
        ev.count = std::stoi(value);
      } catch (...) {
        return bad_value();
      }
    } else if (key == "packets") {
      try {
        ev.burst_packets = std::stoi(value);
      } catch (...) {
        return bad_value();
      }
    } else if (key == "link") {
      try {
        ev.link = std::stoi(value);
      } catch (...) {
        return bad_value();
      }
    } else if (key == "prob") {
      try {
        ev.probability = std::stod(value);
      } catch (...) {
        return bad_value();
      }
    } else if (key == "mag") {
      try {
        ev.magnitude = std::stod(value);
      } catch (...) {
        return bad_value();
      }
    } else if (key == "tech") {
      const auto t = parse_tech(value);
      if (!t) return bad_value();
      ev.tech = *t;
    } else {
      return fail(error, "line " + std::to_string(line_no) + ": unknown key '" + key + "'");
    }
  }
  if (!have_at) {
    return fail(error, "line " + std::to_string(line_no) + ": missing at=<time>");
  }
  *out = ev;
  return true;
}

}  // namespace

std::string FaultPlan::describe() const {
  std::ostringstream os;
  for (const auto& ev : events_) {
    os << to_string(ev.kind) << " at=" << ev.at.to_string();
    switch (ev.kind) {
      case FaultKind::CtsLoss:
      case FaultKind::ControlDeaf:
      case FaultKind::PauseEndLoss:
        os << " count=" << ev.count;
        break;
      case FaultKind::FrameCorrupt:
        os << " window=" << ev.window << " prob=" << ev.probability << " tech="
           << (ev.tech == phy::Technology::WiFi ? "wifi" : "zigbee");
        break;
      case FaultKind::CsiDropout:
      case FaultKind::DetectorFalseNegative:
        os << " window=" << ev.window;
        break;
      case FaultKind::DetectorFalsePositive:
        break;
      case FaultKind::RssiGlitch:
        os << " window=" << ev.window << " mag=" << ev.magnitude << "dB";
        break;
      case FaultKind::ClockJitter:
        os << " window=" << ev.window << " mag=" << ev.magnitude;
        break;
      case FaultKind::ClockSkew:
        os << " mag=" << ev.magnitude << "ppm";
        break;
      case FaultKind::BurstShift:
        os << " packets=" << ev.burst_packets << " interval=" << ev.burst_interval;
        break;
      case FaultKind::NodeLeave:
      case FaultKind::NodeJoin:
        os << " link=" << ev.link;
        break;
    }
    os << "\n";
  }
  return os.str();
}

std::optional<FaultPlan> FaultPlan::parse(const std::string& text, std::string* error) {
  FaultPlan plan;
  std::istringstream in(text);
  std::string line;
  int line_no = 0;
  while (std::getline(in, line)) {
    ++line_no;
    FaultEvent ev;
    bool blank = false;
    if (!parse_event_line(line, line_no, &ev, &blank, error)) return std::nullopt;
    if (!blank) plan.add(ev);
  }
  return plan;
}

std::optional<FaultPlan> FaultPlan::preset(const std::string& name) {
  using namespace time_literals;
  const auto at = [](Duration d) { return TimePoint::origin() + d; };

  FaultPlan plan;
  if (name == "cts-loss") {
    plan.add({.kind = FaultKind::CtsLoss, .at = at(1_sec), .count = 2})
        .add({.kind = FaultKind::PauseEndLoss, .at = at(2200_ms), .count = 1})
        .add({.kind = FaultKind::CtsLoss, .at = at(3500_ms), .count = 3});
    return plan;
  }
  if (name == "detector") {
    plan.add({.kind = FaultKind::CsiDropout, .at = at(1_sec), .window = 250_ms})
        .add({.kind = FaultKind::DetectorFalseNegative, .at = at(2_sec), .window = 400_ms})
        .add({.kind = FaultKind::DetectorFalsePositive, .at = at(3_sec)})
        .add({.kind = FaultKind::DetectorFalsePositive, .at = at(3200_ms)})
        .add({.kind = FaultKind::CsiDropout, .at = at(4_sec), .window = 150_ms});
    return plan;
  }
  if (name == "rssi") {
    plan.add({.kind = FaultKind::RssiGlitch, .at = at(1_sec), .window = 400_ms,
              .magnitude = 25.0})
        .add({.kind = FaultKind::RssiGlitch, .at = at(2500_ms), .window = 400_ms,
              .magnitude = -30.0});
    return plan;
  }
  if (name == "burst-shift") {
    plan.add({.kind = FaultKind::BurstShift, .at = at(1500_ms), .burst_packets = 12,
              .burst_interval = 120_ms})
        .add({.kind = FaultKind::NodeLeave, .at = at(3_sec), .link = 0})
        .add({.kind = FaultKind::NodeJoin, .at = at(3800_ms), .link = 0})
        .add({.kind = FaultKind::BurstShift, .at = at(4500_ms), .burst_packets = 3,
              .burst_interval = 300_ms});
    return plan;
  }
  if (name == "frame-loss") {
    plan.add({.kind = FaultKind::FrameCorrupt, .at = at(800_ms), .window = 1500_ms,
              .probability = 0.25, .tech = phy::Technology::ZigBee})
        .add({.kind = FaultKind::FrameCorrupt, .at = at(3_sec), .window = 1_sec,
              .probability = 0.15, .tech = phy::Technology::WiFi});
    return plan;
  }
  if (name == "clock-jitter") {
    plan.add({.kind = FaultKind::ClockJitter, .at = at(500_ms), .window = 5_sec,
              .magnitude = 0.2});
    return plan;
  }
  if (name == "mixed") {
    for (const char* part : {"cts-loss", "detector", "rssi", "burst-shift", "frame-loss",
                             "clock-jitter"}) {
      const auto sub = preset(part);
      for (const auto& ev : sub->events()) plan.add(ev);
    }
    return plan;
  }
  return std::nullopt;
}

}  // namespace bicord::fault
