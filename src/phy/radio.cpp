#include "phy/radio.hpp"

#include <algorithm>
#include <stdexcept>

#include "phy/units.hpp"
#include "util/logging.hpp"

namespace bicord::phy {

Radio::Radio(Medium& medium, NodeId node, Config config)
    : medium_(medium),
      node_(node),
      config_(config),
      rng_(medium.simulator().rng().split()),
      noise_mw_(dbm_to_mw(Medium::noise_floor_dbm(config.band))) {
  // More concurrent foreign transmissions than this never occur in practice;
  // reserving keeps the per-tx bookkeeping allocation-free from the start.
  ongoing_.reserve(16);
  medium_.attach(this, node_);
}

Radio::~Radio() { medium_.detach(this); }

void Radio::set_band(Band band) {
  if (state_ != RadioState::Idle && state_ != RadioState::Sleep) {
    throw std::logic_error("Radio::set_band: radio busy");
  }
  apply_band(band);
}

void Radio::retune(Band band) {
  if (rx_) {
    // The lock is gone the instant the synthesizer moves: no decode draw,
    // no rx callback — the frame simply never finished for this receiver.
    rx_.reset();
    ++receptions_truncated_;
    if (state_ == RadioState::Rx) enter(RadioState::Idle);
  }
  // A transmission in flight is unaffected: the medium carries its original
  // band, and own-tx completion does not consult config_.band.
  apply_band(band);
}

void Radio::apply_band(Band band) {
  config_.band = band;
  noise_mw_ = dbm_to_mw(Medium::noise_floor_dbm(band));
  if (ongoing_.empty()) return;
  // Retuning changes what the front end sees of every transmission already
  // on the air (band overlap, narrowband discount): recompute each tracked
  // entry against the new band, preserving its fading draw, so energy and
  // SINR queries never mix new-band noise with old-band signal powers.
  foreign_mw_sum_ = 0.0;
  for (auto& o : ongoing_) {
    for (const auto& tx : medium_.active()) {
      if (tx.id == o.id) {
        o = make_ongoing(tx, o.fading_db);
        break;
      }
    }
    foreign_mw_sum_ += o.rx_power_mw;
  }
}

Radio::Ongoing Radio::make_ongoing(const ActiveTransmission& tx,
                                   double fading_db) const {
  const double p = medium_.rx_power_dbm(tx, node_, config_.band) + fading_db;
  // Narrowband interferers are largely ridden out by coding/interleaving
  // (SINR only — they remain fully visible to energy queries and CSI).
  double p_sinr = p;
  if (config_.narrowband_discount_db > 0.0 &&
      tx.band.width_mhz < config_.narrowband_ratio * config_.band.width_mhz) {
    p_sinr -= config_.narrowband_discount_db;
  }
  const double p_mw = dbm_to_mw(p);
  const double sinr_mw = p_sinr == p ? p_mw : dbm_to_mw(p_sinr);
  return Ongoing{tx.id,   fading_db,     p,             p_mw,
                 sinr_mw, tx.frame.tech, tx.frame.kind, tx.band};
}

void Radio::enter(RadioState next) {
  if (state_ == next) return;
  const RadioState prev = state_;
  state_ = next;
  if (state_cb_) state_cb_(prev, next);
}

void Radio::transmit(const Frame& frame, double tx_power_dbm, Duration duration,
                     TxDoneCallback done) {
  if (state_ == RadioState::Tx) throw std::logic_error("Radio::transmit: already transmitting");
  if (state_ == RadioState::Sleep) throw std::logic_error("Radio::transmit: radio asleep");
  if (frame.src != node_) throw std::invalid_argument("Radio::transmit: frame.src mismatch");
  if (rx_) {
    // Half-duplex: transmitting aborts the in-progress reception.
    rx_.reset();
  }
  enter(RadioState::Tx);
  tx_done_ = std::move(done);
  ++frames_sent_;
  own_tx_ = medium_.begin_tx(frame, config_.band, tx_power_dbm, duration);
}

double Radio::energy_dbm() const {
  return mw_to_dbm(foreign_mw_sum_ + noise_mw_);
}

void Radio::sleep() {
  if (state_ == RadioState::Tx) throw std::logic_error("Radio::sleep: transmitting");
  rx_.reset();
  enter(RadioState::Sleep);
}

void Radio::wake() {
  if (state_ == RadioState::Sleep) enter(RadioState::Idle);
}

bool Radio::decodable(const ActiveTransmission& tx) const {
  if (tx.frame.tech != config_.tech) return false;
  if (tx.frame.kind == FrameKind::Noise) return false;
  // Require the transmission to substantially cover this radio's channel.
  return overlap_mhz(tx.band, config_.band) >= 0.5 * config_.band.width_mhz;
}

double Radio::interference_mw(TxId exclude) const {
  double acc = 0.0;
  for (const auto& o : ongoing_) {
    if (o.id == exclude) continue;
    acc += o.rx_power_mw;
  }
  return acc;
}

void Radio::update_rx_sinr() {
  if (!rx_) return;
  auto& r = rx_->result;
  const double noise_mw = noise_mw_;
  double interf_mw = 0.0;
  for (const auto& o : ongoing_) {
    if (o.id == rx_->tx_id) continue;
    interf_mw += o.sinr_mw;
    if (o.rx_power_dbm > r.max_interference_dbm) r.max_interference_dbm = o.rx_power_dbm;
    if (o.tech == Technology::ZigBee) {
      r.zigbee_overlap = true;
      if (o.rx_power_dbm > r.zigbee_overlap_dbm) {
        r.zigbee_overlap_dbm = o.rx_power_dbm;
        r.zigbee_overlap_tx = o.id;
      }
    }
  }
  const double sinr = r.rssi_dbm - mw_to_dbm(interf_mw + noise_mw);
  if (sinr < r.min_sinr_db) r.min_sinr_db = sinr;
}

void Radio::on_tx_start(const ActiveTransmission& tx) {
  if (tx.frame.src == node_) return;  // own emission
  if (tx.fault_dropped) return;       // fault injection: deaf to this frame
  // Below the medium's snap floor: don't track, and — critically — don't
  // draw fading or poke the MAC, so RNG streams are bitwise identical
  // whether or not the medium's spatial index pruned this event away.
  if (!medium_.audible(tx, node_)) return;

  const double fading_db = config_.fading_sigma_db > 0.0
                               ? rng_.normal(0.0, config_.fading_sigma_db)
                               : 0.0;
  ongoing_.push_back(make_ongoing(tx, fading_db));
  const double p = ongoing_.back().rx_power_dbm;
  foreign_mw_sum_ += ongoing_.back().rx_power_mw;

  if (state_ == RadioState::Sleep) return;

  if (state_ == RadioState::Idle && !rx_ && decodable(tx) && p >= config_.sensitivity_dbm) {
    // Lock onto the frame (preamble acquisition).
    CurrentRx cur;
    cur.tx_id = tx.id;
    cur.result.frame = tx.frame;
    cur.result.rssi_dbm = p;
    cur.result.min_sinr_db = 1e9;  // lowered by update_rx_sinr below
    cur.result.start = tx.start;
    cur.result.end = tx.end;
    rx_ = cur;
    enter(RadioState::Rx);
  }
  // Whether locked or not, a new emission changes the interference picture.
  update_rx_sinr();
  if (activity_cb_) activity_cb_();
}

void Radio::on_tx_end(const ActiveTransmission& tx) {
  if (tx.frame.src == node_) {
    if (tx.id == own_tx_) {
      own_tx_ = kInvalidTx;
      enter(RadioState::Idle);
      if (tx_done_) {
        auto done = std::move(tx_done_);
        tx_done_ = nullptr;
        done();
      }
      if (activity_cb_) activity_cb_();
    }
    return;
  }

  // Untracked transmissions (fault-dropped or below the snap floor at start)
  // end without a trace: no SINR sample, no MAC poke. Mirrors on_tx_start's
  // early-outs so both medium paths consume RNG identically.
  const auto it = std::find_if(ongoing_.begin(), ongoing_.end(),
                               [&tx](const Ongoing& o) { return o.id == tx.id; });
  if (it == ongoing_.end()) return;

  // Capture the final SINR sample before the emission leaves the air.
  update_rx_sinr();

  const bool was_locked = rx_ && rx_->tx_id == tx.id;
  foreign_mw_sum_ -= it->rx_power_mw;
  ongoing_.erase(it);
  if (ongoing_.empty()) foreign_mw_sum_ = 0.0;

  if (was_locked) finalize_rx(tx);
  if (activity_cb_) activity_cb_();
}

// --- phased delivery --------------------------------------------------------
//
// The absorb/react pair partitions the single-phase handlers above without
// reordering anything a callback or another listener can observe. Absorb
// performs the listener-local prefix (early-outs, fading draw from the
// radio's own split stream, tracking-state update, staged lock, SINR
// sample); react replays the externally visible suffix (state transitions,
// decode draw + delivery, activity pokes) serially in attach order, so the
// shared-RNG draw order inside MAC callbacks matches the serial path draw
// for draw.

void Radio::on_tx_start_absorb(const ActiveTransmission& tx) {
  StagedEdge staged;
  staged.tx_id = tx.id;
  // Early-outs mirror on_tx_start exactly (no draw, no tracking, no poke).
  if (tx.frame.src != node_ && !tx.fault_dropped && medium_.audible(tx, node_)) {
    const double fading_db = config_.fading_sigma_db > 0.0
                                 // bicord-lint: allow(rng-in-parallel) — rng_ is this radio's own split stream; draw order is per-listener, not cross-worker.
                                 ? rng_.normal(0.0, config_.fading_sigma_db)
                                 : 0.0;
    ongoing_.push_back(make_ongoing(tx, fading_db));
    const double p = ongoing_.back().rx_power_dbm;
    foreign_mw_sum_ += ongoing_.back().rx_power_mw;
    staged.tracked = true;
    staged.asleep = state_ == RadioState::Sleep;
    if (!staged.asleep) {
      if (state_ == RadioState::Idle && !rx_ && decodable(tx) &&
          p >= config_.sensitivity_dbm) {
        CurrentRx cur;
        cur.tx_id = tx.id;
        cur.result.frame = tx.frame;
        cur.result.rssi_dbm = p;
        cur.result.min_sinr_db = 1e9;  // lowered by update_rx_sinr below
        cur.result.start = tx.start;
        cur.result.end = tx.end;
        rx_ = cur;
        staged.locked = true;  // enter(Rx) deferred to react
      }
      update_rx_sinr();
    }
  }
  staged_.push_back(staged);
}

void Radio::on_tx_start_react(const ActiveTransmission& tx) {
  const auto it = std::find_if(staged_.rbegin(), staged_.rend(),
                               [&tx](const StagedEdge& s) { return s.tx_id == tx.id; });
  if (it == staged_.rend()) {
    on_tx_start(tx);  // defensive: no absorb ran for this edge
    return;
  }
  const StagedEdge staged = *it;
  staged_.erase(std::next(it).base());
  if (!staged.tracked || staged.asleep) return;
  if (staged.locked) enter(RadioState::Rx);
  if (activity_cb_) activity_cb_();
}

void Radio::on_tx_end_absorb(const ActiveTransmission& tx) {
  StagedEdge staged;
  staged.tx_id = tx.id;
  // Own emissions are handled entirely in react (tx-done + state are
  // externally visible); untracked foreign ends stay traceless.
  if (tx.frame.src != node_) {
    const auto it = std::find_if(ongoing_.begin(), ongoing_.end(),
                                 [&tx](const Ongoing& o) { return o.id == tx.id; });
    if (it != ongoing_.end()) {
      update_rx_sinr();
      staged.locked = rx_ && rx_->tx_id == tx.id;
      foreign_mw_sum_ -= it->rx_power_mw;
      ongoing_.erase(it);
      if (ongoing_.empty()) foreign_mw_sum_ = 0.0;
      staged.tracked = true;
    }
  }
  staged_.push_back(staged);
}

void Radio::on_tx_end_react(const ActiveTransmission& tx) {
  const auto it = std::find_if(staged_.rbegin(), staged_.rend(),
                               [&tx](const StagedEdge& s) { return s.tx_id == tx.id; });
  if (it == staged_.rend()) {
    on_tx_end(tx);  // defensive: no absorb ran for this edge
    return;
  }
  const StagedEdge staged = *it;
  staged_.erase(std::next(it).base());
  if (tx.frame.src == node_) {
    on_tx_end(tx);  // the own-emission branch is untouched by absorb
    return;
  }
  if (!staged.tracked) return;
  if (staged.locked) finalize_rx(tx);
  if (activity_cb_) activity_cb_();
}

void Radio::finalize_rx(const ActiveTransmission& tx) {
  RxResult result = rx_->result;
  rx_.reset();
  if (state_ == RadioState::Rx) enter(RadioState::Idle);

  // Logistic PER curve around the SINR threshold gives a soft decode edge.
  const double x = (result.min_sinr_db - config_.sinr_threshold_db) /
                   (config_.sinr_width_db > 0.0 ? config_.sinr_width_db : 1.0);
  const double p_success = 1.0 / (1.0 + std::exp(-x));
  result.success = rng_.bernoulli(p_success);
  if (tx.fault_corrupted) result.success = false;  // fault injection wins
  result.end = tx.end;

  if (result.success) {
    ++frames_received_;
  } else {
    ++frames_corrupted_;
  }
  BICORD_LOG(Trace, medium_.simulator().now(), "phy.radio",
             medium_.node_name(node_) << " rx " << to_string(result.frame.kind) << " from "
                                      << result.frame.src << " rssi=" << result.rssi_dbm
                                      << " sinr=" << result.min_sinr_db
                                      << (result.success ? " OK" : " CORRUPT"));
  if (rx_cb_) rx_cb_(result);
}

}  // namespace bicord::phy
