#pragma once
// NodeId → shard partition for intra-simulation parallelism.
//
// sim::ParallelDispatcher needs (a) a deterministic assignment of nodes to
// shards that respects spatial locality — nodes sharing a grid cell column
// never split across shards, so a tx fan-out that stays within a cell ring
// stays within a bounded shard neighborhood — and (b) a conservative
// lookahead window derived from the minimum latency at which activity in
// one shard can influence another.
//
// The lookahead bound (DESIGN.md Sec. 14): the model propagates energy
// instantaneously, so any event that touches the shared phy::Medium has
// *zero* cross-shard latency whenever two shards hold nodes within one
// interference radius of each other — such events are barrier-class by
// construction and run serially (the parallelism for them comes from the
// medium's phased fan-out instead). What a shard can defer is everything
// above the medium: a frame must be received, turned around by a MAC, and
// re-emitted before it can influence another shard's *scheduling* state, so
// the smallest MAC turnaround among active technologies (Wi-Fi slot/SIFS,
// 802.15.4 aTurnaroundTime, the TechnologyTraits grant margins) bounds the
// window for shard-lane events.

#include <cstddef>
#include <cstdint>
#include <vector>

#include "phy/medium.hpp"
#include "util/time.hpp"

namespace bicord::phy {

struct ShardPlan {
  int shards = 1;
  /// Shard of each node, indexed by NodeId; always size node_count().
  std::vector<int> node_shard;
  /// Conservative lookahead window for shard-lane events.
  Duration lookahead = Duration::from_us(1);
  /// Node pairs within one interference radius that span two shards: every
  /// tx fan-out between them crosses a shard boundary.
  std::size_t cross_shard_pairs = 0;
  /// True when any cross-shard pair exists under instantaneous propagation —
  /// then every medium-coupled event classifies as barrier-class.
  bool medium_coupled_barrier = false;
};

/// Builds the partition: nodes are striped by spatial-index cell column
/// (x-major, the same cell geometry the medium derives), cut into `shards`
/// stripes of roughly equal population without splitting a cell column.
/// `min_mac_turnaround` is the smallest receive→react→transmit latency among
/// the technologies active in the scenario; the plan's lookahead is
/// max(1us, min_mac_turnaround). Deterministic for a given medium state.
[[nodiscard]] ShardPlan plan_shards(const Medium& medium, int shards,
                                    Duration min_mac_turnaround);

/// Shard owning `node` (0 when the plan is empty or the id is unknown).
[[nodiscard]] int shard_of(const ShardPlan& plan, NodeId node);

/// Schedule-time classification: does an interaction between these nodes
/// cross a shard boundary (and therefore need the window-edge barrier or a
/// single-owner-shard route)?
[[nodiscard]] bool crosses_shards(const ShardPlan& plan, NodeId a, NodeId b);

}  // namespace bicord::phy
