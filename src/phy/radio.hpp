#pragma once
// Half-duplex transceiver bound to one node and one channel.
//
// The radio is the boundary between the shared medium and a MAC: it decides
// which on-air frames it can lock onto, tracks interference for the locked
// frame over its whole duration (min-SINR), and reports each completed
// reception with rich diagnostics (RSSI, min SINR, strongest cross-
// technology overlap). The overlap diagnostics feed the CSI model: a Wi-Fi
// reception that overlapped a ZigBee transmission is exactly the event
// BiCord's cross-technology signaling relies on.

#include <functional>
#include <optional>
#include <vector>

#include "phy/frame.hpp"
#include "phy/medium.hpp"
#include "phy/spectrum.hpp"
#include "phy/units.hpp"
#include "sim/simulator.hpp"
#include "util/rng.hpp"

namespace bicord::phy {

enum class RadioState : std::uint8_t { Sleep, Idle, Rx, Tx };

[[nodiscard]] constexpr const char* to_string(RadioState s) {
  switch (s) {
    case RadioState::Sleep: return "Sleep";
    case RadioState::Idle: return "Idle";
    case RadioState::Rx: return "Rx";
    case RadioState::Tx: return "Tx";
  }
  return "?";
}

/// A completed reception attempt delivered to the MAC.
struct RxResult {
  Frame frame;
  double rssi_dbm = kFloorDbm;            ///< signal power at this receiver
  double min_sinr_db = 0.0;               ///< worst SINR over the frame
  double max_interference_dbm = kFloorDbm;///< strongest concurrent emission
  double zigbee_overlap_dbm = kFloorDbm;  ///< strongest 802.15.4 overlap
  bool zigbee_overlap = false;            ///< any 802.15.4 tx overlapped
  TxId zigbee_overlap_tx = kInvalidTx;    ///< id of the strongest 802.15.4 tx
  bool success = false;                   ///< frame decoded correctly
  TimePoint start;
  TimePoint end;
};

class Radio final : public MediumListener {
 public:
  struct Config {
    Technology tech = Technology::WiFi;
    Band band;
    /// Minimum received power to lock onto (and later decode) a frame.
    double sensitivity_dbm = -90.0;
    /// SINR at which decoding succeeds with probability 0.5; the success
    /// curve is a logistic of width `sinr_width_db` around it.
    double sinr_threshold_db = 4.0;
    double sinr_width_db = 1.0;
    /// Per-frame fast-fading std-dev applied to the signal power.
    double fading_sigma_db = 1.5;
    /// Extra SINR-only attenuation applied to interferers much narrower than
    /// this radio's band (OFDM coding/interleaving rides out narrowband
    /// jammers; a 2 MHz ZigBee tone punctures only 2 of 20 MHz). Applied when
    /// the interferer band is below `narrowband_ratio` of our band.
    double narrowband_discount_db = 0.0;
    double narrowband_ratio = 0.3;
  };

  using RxCallback = std::function<void(const RxResult&)>;
  using TxDoneCallback = std::function<void()>;
  /// (previous state, new state) — drives the energy meter.
  using StateCallback = std::function<void(RadioState, RadioState)>;
  /// Fires on every medium activity edge (any tx start/end) — lets MACs
  /// re-evaluate CCA without polling.
  using ActivityCallback = std::function<void()>;

  Radio(Medium& medium, NodeId node, Config config);
  ~Radio();

  Radio(const Radio&) = delete;
  Radio& operator=(const Radio&) = delete;

  [[nodiscard]] NodeId node() const { return node_; }
  [[nodiscard]] RadioState state() const { return state_; }
  [[nodiscard]] const Config& config() const { return config_; }
  [[nodiscard]] Band band() const { return config_.band; }
  void set_band(Band band);
  /// Frequency-agility variant of set_band for hopping radios (TSCH slot
  /// boundaries): legal in any state. An in-progress reception is lost —
  /// the slot-boundary truncation a real hopping receiver suffers (counted
  /// in receptions_truncated()). An in-progress transmission keeps its
  /// original band on the medium (the carrier is already on the air); only
  /// the receive front end moves.
  void retune(Band band);

  void set_rx_callback(RxCallback cb) { rx_cb_ = std::move(cb); }
  void set_state_callback(StateCallback cb) { state_cb_ = std::move(cb); }
  void set_activity_callback(ActivityCallback cb) { activity_cb_ = std::move(cb); }

  /// Starts a transmission. The radio must not already be transmitting; an
  /// in-progress reception is aborted (half-duplex). `done` fires when the
  /// last symbol leaves the antenna.
  void transmit(const Frame& frame, double tx_power_dbm, Duration duration,
                TxDoneCallback done = {});

  /// In-band energy right now, excluding this node's own emissions — what a
  /// CCA energy-detect reads. O(1): the radio keeps a running linear-power
  /// sum of the foreign transmissions it tracks, so the per-edge CCA
  /// re-evaluations in the MACs never re-walk the medium. The reading
  /// includes this radio's per-transmission fading draw (the ED front end
  /// measures the same channel the demodulator sees). Each transmission's
  /// power is evaluated against the radio's current band — set_band()
  /// recomputes the tracked entries on retune.
  [[nodiscard]] double energy_dbm() const;

  /// True if a frame this radio could decode is currently on the air and
  /// being received.
  [[nodiscard]] bool receiving() const { return state_ == RadioState::Rx; }
  [[nodiscard]] bool transmitting() const { return state_ == RadioState::Tx; }

  void sleep();
  void wake();

  // MediumListener:
  void on_tx_start(const ActiveTransmission& tx) override;
  void on_tx_end(const ActiveTransmission& tx) override;
  // Phased delivery (worker pool attached): absorb updates only this radio's
  // tracking state — fading draw (own split stream), ongoing entry, energy
  // sum, staged rx lock, SINR sample — while react, serial in attach order,
  // performs everything externally visible: state transitions, decode +
  // delivery, MAC activity pokes. The union replays on_tx_start/on_tx_end
  // exactly, so output is bitwise identical to the serial path.
  void on_tx_start_absorb(const ActiveTransmission& tx) override;
  void on_tx_start_react(const ActiveTransmission& tx) override;
  void on_tx_end_absorb(const ActiveTransmission& tx) override;
  void on_tx_end_react(const ActiveTransmission& tx) override;

  // --- statistics -----------------------------------------------------------
  [[nodiscard]] std::uint64_t frames_sent() const { return frames_sent_; }
  [[nodiscard]] std::uint64_t frames_received() const { return frames_received_; }
  [[nodiscard]] std::uint64_t frames_corrupted() const { return frames_corrupted_; }
  /// Receptions cut short by a retune() while locked onto a frame.
  [[nodiscard]] std::uint64_t receptions_truncated() const {
    return receptions_truncated_;
  }

 private:
  /// One foreign transmission currently on the air, with its received power
  /// pre-converted to linear units at insertion (on_tx_start): the SINR
  /// update runs on every medium edge and must not pay a pow() per entry.
  /// `sinr_mw` already includes the narrowband discount. Both powers are
  /// evaluated against the radio's current band; set_band() recomputes every
  /// entry so a retune mid-air never mixes old-band signal powers with the
  /// new band's noise floor. `fading_db` keeps the per-transmission fading
  /// draw so that recomputation preserves it.
  struct Ongoing {
    TxId id;
    double fading_db;    ///< this radio's fast-fading draw for the tx
    double rx_power_dbm;
    double rx_power_mw;  ///< dbm_to_mw(rx_power_dbm), cached
    double sinr_mw;      ///< dbm_to_mw(rx_power_dbm - narrowband discount)
    Technology tech;
    FrameKind kind;
    Band band;
  };
  struct CurrentRx {
    TxId tx_id;
    RxResult result;
  };
  /// What an absorb phase staged for its matching react phase. Keyed by tx
  /// id and kept in a small vector: a react callback that transmits would
  /// nest another phased fan-out before the outer react loop finishes.
  struct StagedEdge {
    TxId tx_id = kInvalidTx;
    bool tracked = false;  ///< absorb updated ongoing_/foreign_mw_sum_
    bool locked = false;   ///< start: lock acquired; end: frame was locked
    bool asleep = false;   ///< radio slept through the edge (no MAC poke)
  };

  void enter(RadioState next);
  /// Shared tail of set_band/retune: swap the band and recompute every
  /// tracked entry (and the noise floor) against it.
  void apply_band(Band band);
  /// Builds the tracked-power entry for `tx` against the radio's current
  /// band, applying `fading_db` and the narrowband discount. Shared by
  /// on_tx_start and the set_band recompute.
  [[nodiscard]] Ongoing make_ongoing(const ActiveTransmission& tx,
                                     double fading_db) const;
  /// True when this radio's PHY can demodulate `tx` (same technology and
  /// sufficient band alignment).
  [[nodiscard]] bool decodable(const ActiveTransmission& tx) const;
  [[nodiscard]] double interference_mw(TxId exclude) const;
  void update_rx_sinr();
  void finalize_rx(const ActiveTransmission& tx);

  Medium& medium_;
  NodeId node_;
  Config config_;
  Rng rng_;
  RadioState state_ = RadioState::Idle;
  double noise_mw_ = 0.0;  ///< dbm_to_mw(noise floor of config_.band), cached

  /// Foreign energy on the air. A handful of entries at most, so a flat
  /// vector with linear search beats a node-based map (no allocation per
  /// transmission once capacity is warm, cache-friendly SINR sweeps).
  std::vector<Ongoing> ongoing_;
  /// Running sum of ongoing_[i].rx_power_mw, snapped back to exactly zero
  /// whenever the air goes quiet so incremental +/- rounding cannot drift.
  double foreign_mw_sum_ = 0.0;
  std::optional<CurrentRx> rx_;
  std::vector<StagedEdge> staged_;  ///< absorb→react handoff (phased fan-out)
  RxCallback rx_cb_;
  StateCallback state_cb_;
  ActivityCallback activity_cb_;
  TxDoneCallback tx_done_;
  TxId own_tx_ = kInvalidTx;

  std::uint64_t frames_sent_ = 0;
  std::uint64_t frames_received_ = 0;
  std::uint64_t frames_corrupted_ = 0;
  std::uint64_t receptions_truncated_ = 0;
};

}  // namespace bicord::phy
