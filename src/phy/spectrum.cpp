#include "phy/spectrum.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace bicord::phy {

double overlap_mhz(Band a, Band b) {
  return std::max(0.0, std::min(a.hi(), b.hi()) - std::max(a.lo(), b.lo()));
}

double in_band_fraction(Band tx, Band rx) {
  if (tx.width_mhz <= 0.0) throw std::invalid_argument("in_band_fraction: empty tx band");
  return overlap_mhz(tx, rx) / tx.width_mhz;
}

double overlap_loss_db(Band tx, Band rx) {
  const double f = in_band_fraction(tx, rx);
  if (f <= 0.0) return 200.0;  // effectively disjoint
  return -10.0 * std::log10(f);
}

Band wifi_channel(int n) {
  if (n < 1 || n > 13) throw std::invalid_argument("wifi_channel: n must be in [1,13]");
  return Band{2412.0 + 5.0 * (n - 1), 20.0};
}

Band zigbee_channel(int n) {
  if (n < 11 || n > 26) throw std::invalid_argument("zigbee_channel: n must be in [11,26]");
  return Band{2405.0 + 5.0 * (n - 11), 2.0};
}

Band bluetooth_channel(int n) {
  if (n < 0 || n > 78) throw std::invalid_argument("bluetooth_channel: n must be in [0,78]");
  return Band{2402.0 + 1.0 * n, 1.0};
}

}  // namespace bicord::phy
