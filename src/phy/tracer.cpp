#include "phy/tracer.hpp"

#include <algorithm>
#include <ostream>
#include <sstream>

namespace bicord::phy {

MediumTracer::MediumTracer(Medium& medium, std::size_t capacity_hint)
    : medium_(medium) {
  records_.reserve(capacity_hint);
  medium_.attach(this);
  attached_ = true;
}

MediumTracer::~MediumTracer() { stop(); }

void MediumTracer::stop() {
  if (attached_) {
    medium_.detach(this);
    attached_ = false;
  }
}

void MediumTracer::on_tx_start(const ActiveTransmission& tx) {
  TxRecord r;
  r.start = tx.start;
  r.end = tx.end;
  r.src = tx.frame.src;
  r.tech = tx.frame.tech;
  r.kind = tx.frame.kind;
  r.band_center_mhz = tx.band.center_mhz;
  r.bytes = tx.frame.bytes;
  records_.push_back(r);
}

void MediumTracer::on_tx_end(const ActiveTransmission&) {}

std::vector<TxRecord> MediumTracer::window(TimePoint from, TimePoint to) const {
  std::vector<TxRecord> out;
  for (const auto& r : records_) {
    if (r.end >= from && r.start <= to) out.push_back(r);
  }
  return out;
}

void MediumTracer::write_jsonl(std::ostream& os) const {
  for (const auto& r : records_) {
    os << "{\"start_us\":" << r.start.us() << ",\"end_us\":" << r.end.us()
       << ",\"node\":\"" << medium_.node_name(r.src) << "\",\"tech\":\""
       << to_string(r.tech) << "\",\"kind\":\"" << to_string(r.kind)
       << "\",\"band_mhz\":" << r.band_center_mhz << ",\"bytes\":" << r.bytes
       << "}\n";
  }
}

namespace {
char glyph_for(Technology tech, FrameKind kind) {
  if (tech == Technology::WiFi) {
    switch (kind) {
      case FrameKind::Cts: return 'C';
      case FrameKind::Ack: return 'a';
      case FrameKind::Notify: return 'N';
      default: return 'W';
    }
  }
  if (tech == Technology::ZigBee) {
    switch (kind) {
      case FrameKind::Control: return 's';
      case FrameKind::Ack: return 'k';
      case FrameKind::Notify: return 'n';
      default: return 'Z';
    }
  }
  if (tech == Technology::Bluetooth) return 'B';
  if (tech == Technology::LteU) return 'L';
  return 'M';  // microwave / other noise
}

/// Priority when several frames share a bucket: reservations and signaling
/// beat bulk data so the coordination stays visible.
int glyph_priority(char g) {
  switch (g) {
    case 'C': return 5;
    case 's': return 4;
    case 'N': return 4;
    case 'Z': return 3;
    case 'W': return 2;
    case 'B': return 2;
    case 'M': return 2;
    default: return 1;
  }
}
}  // namespace

std::string MediumTracer::render_timeline(TimePoint from, TimePoint to,
                                          std::size_t width) const {
  if (to <= from || width == 0) return {};
  const double span_us = static_cast<double>((to - from).us());

  // Rows: Wi-Fi, ZigBee, other.
  std::array<std::string, 3> rows;
  for (auto& row : rows) row.assign(width, '.');

  for (const auto& r : window(from, to)) {
    const std::size_t row_idx = r.tech == Technology::WiFi   ? 0
                                : r.tech == Technology::ZigBee ? 1
                                                               : 2;
    const double b0 = static_cast<double>((std::max(r.start, from) - from).us()) /
                      span_us * static_cast<double>(width);
    const double b1 = static_cast<double>((std::min(r.end, to) - from).us()) / span_us *
                      static_cast<double>(width);
    const char g = glyph_for(r.tech, r.kind);
    const auto lo = static_cast<std::size_t>(b0);
    const auto hi = std::min(width - 1, static_cast<std::size_t>(b1));
    for (std::size_t i = lo; i <= hi; ++i) {
      if (glyph_priority(g) > glyph_priority(rows[row_idx][i])) rows[row_idx][i] = g;
    }
  }

  std::ostringstream os;
  os << "timeline " << from.to_string() << " .. " << to.to_string() << "\n";
  os << "  wifi   |" << rows[0] << "|\n";
  os << "  zigbee |" << rows[1] << "|\n";
  os << "  other  |" << rows[2] << "|\n";
  os << "  (W data, C cts, a ack | Z data, s control, k ack | B bluetooth, M noise)\n";
  return os.str();
}

}  // namespace bicord::phy
