#pragma once
// Uniform-grid spatial index over node positions.
//
// Purely geometric bookkeeping behind phy::Medium's O(neighborhood) paths:
// maps every node to the grid cell containing its position and answers
// "visit every node within `ring` cells of this cell". Windows are
// enumerated in row-major cell order and buckets in insertion order, but
// callers must not rely on either: the Medium sorts whatever it gathers
// (by TxId or attach seq) before acting on it, so bucket order never leaks
// into simulation results. That also makes swap-remove rebucketing safe.
//
// The cell table is open addressing with power-of-two capacity. It is only
// ever probed by key (never iterated in storage order), which keeps results
// deterministic. Cells are created on demand and never destroyed — a run's
// node set occupies a bounded region, so empty husk cells are cheap — and
// the occupied bounding box grows monotonically, letting unbounded windows
// (infinite interference radius) clamp to occupied space instead of looping
// over empty cells.

#include <cstdint>
#include <vector>

#include "phy/frame.hpp"
#include "phy/geometry.hpp"

namespace bicord::phy {

class SpatialIndex {
 public:
  /// Windows never need more than this many rings: they are clamped to the
  /// occupied bounding box anyway, and 2^20 cells of any sane size exceed
  /// every deployment the simulator can hold.
  static constexpr std::int64_t kMaxRing = 1 << 20;

  explicit SpatialIndex(double cell_size_m);

  /// Registers node `id` (ids must arrive densely: 0, 1, 2, ...).
  void add_node(NodeId id, Position pos);
  /// Rebuckets `id` after a move; returns true when its grid cell changed.
  bool move_node(NodeId id, Position pos);

  [[nodiscard]] double cell_size_m() const { return cell_m_; }
  [[nodiscard]] std::size_t node_count() const { return node_cell_.size(); }
  [[nodiscard]] CellCoord cell_of_node(NodeId id) const { return node_cell_[id]; }
  [[nodiscard]] CellCoord cell_at(Position pos) const { return cell_of(pos, cell_m_); }

  /// Smallest ring (Chebyshev cell distance) such that the window
  /// [c-ring, c+ring]^2 around the cell of *any* point p contains every
  /// node within `radius_m` of p: floor(r/cell) + 1 covers the worst-case
  /// in-cell offset, and one extra cell absorbs floor()-boundary rounding.
  [[nodiscard]] std::int64_t ring_for(double radius_m) const;

  /// Visits every node whose cell lies within `ring` cells (Chebyshev) of
  /// `center`, row-major (y outer, x inner), clamped to the occupied
  /// bounding box.
  template <typename Fn>
  void for_each_in_window(CellCoord center, std::int64_t ring, Fn&& fn) const {
    if (node_cell_.empty()) return;
    const std::int64_t cx = center.cx;
    const std::int64_t cy = center.cy;
    const std::int64_t x0 = std::max<std::int64_t>(cx - ring, min_cx_);
    const std::int64_t x1 = std::min<std::int64_t>(cx + ring, max_cx_);
    const std::int64_t y0 = std::max<std::int64_t>(cy - ring, min_cy_);
    const std::int64_t y1 = std::min<std::int64_t>(cy + ring, max_cy_);
    if (!grid_.empty()) {
      // Fast path: the bbox fits the flat row-major map, so a window probe
      // is one array load instead of a hash walk. Same cells, same order.
      for (std::int64_t y = y0; y <= y1; ++y) {
        const std::int64_t row = (y - min_cy_) * grid_w_;
        for (std::int64_t x = x0; x <= x1; ++x) {
          const std::uint32_t ci = grid_[static_cast<std::size_t>(row + (x - min_cx_))];
          if (ci == kNoCell) continue;
          for (const NodeId n : cells_[ci].nodes) fn(n);
        }
      }
      return;
    }
    for (std::int64_t y = y0; y <= y1; ++y) {
      for (std::int64_t x = x0; x <= x1; ++x) {
        const std::uint32_t ci = find_cell(pack(static_cast<std::int32_t>(x),
                                                static_cast<std::int32_t>(y)));
        if (ci == kNoCell) continue;
        for (const NodeId n : cells_[ci].nodes) fn(n);
      }
    }
  }

 private:
  struct Cell {
    std::uint64_t key = 0;
    std::vector<NodeId> nodes;
  };
  static constexpr std::uint32_t kNoCell = 0xFFFFFFFFu;

  [[nodiscard]] static std::uint64_t pack(std::int32_t cx, std::int32_t cy) {
    return (static_cast<std::uint64_t>(static_cast<std::uint32_t>(cx)) << 32) |
           static_cast<std::uint32_t>(cy);
  }
  /// Bbox areas up to this many cells keep a flat row-major cell map (the
  /// window fast path): 2^16 cells is ~256 KB of indices — cache-friendly —
  /// and at any realistic cell size covers multi-kilometre deployments.
  static constexpr std::int64_t kMaxGridCells = std::int64_t{1} << 16;

  [[nodiscard]] std::uint32_t find_cell(std::uint64_t key) const;
  [[nodiscard]] std::uint32_t find_or_create(std::uint64_t key);
  void grow_table();
  void expand_bbox(CellCoord c);
  void rebuild_grid();

  double cell_m_;
  std::vector<Cell> cells_;
  std::vector<std::uint32_t> table_;  ///< open addressing; kNoCell = empty slot
  std::vector<CellCoord> node_cell_;  ///< indexed by NodeId
  // Occupied bounding box; grows monotonically (cells are never destroyed).
  bool bbox_empty_ = true;
  std::int64_t min_cx_ = 0;
  std::int64_t max_cx_ = 0;
  std::int64_t min_cy_ = 0;
  std::int64_t max_cy_ = 0;
  // Flat bbox-shaped cell map; empty once the bbox outgrows kMaxGridCells
  // (the hash table then serves every probe).
  std::vector<std::uint32_t> grid_;
  std::int64_t grid_w_ = 0;
  bool grid_ok_ = true;
};

}  // namespace bicord::phy
