#pragma once
// Log-distance path-loss with per-link log-normal shadowing.
//
// Indoor office propagation (the paper's environment) is modelled as
//   PL(d) = PL(d0) + 10 n log10(d / d0) + X_sigma
// with d0 = 1 m. X_sigma is drawn once per (tx, rx) link and held constant —
// shadowing is a property of the geometry, not of time — so experiments are
// reproducible and links keep a stable character across a run.

#include <cstdint>

namespace bicord::phy {

struct PathLossModel {
  double pl_d0_db = 40.0;     ///< path loss at 1 m (2.4 GHz free space ~40 dB)
  double exponent = 3.0;      ///< indoor-office range 2.7..3.5
  double shadowing_sigma_db = 3.0;
  double min_distance_m = 0.1;  ///< distances below this clamp (near field)

  /// Deterministic mean path loss (no shadowing) at distance `d` metres.
  [[nodiscard]] double mean_loss_db(double d_m) const;

  /// Shadowing offset for an identified link; pure function of the link key
  /// (hash-seeded normal) so it never changes during a run.
  [[nodiscard]] double shadowing_db(std::uint64_t link_key) const;
};

}  // namespace bicord::phy
