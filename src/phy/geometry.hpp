#pragma once
// 2D placement of devices (the paper's office testbed is planar, Fig. 6).

#include <cmath>
#include <cstdint>

namespace bicord::phy {

struct Position {
  double x = 0.0;  ///< metres
  double y = 0.0;  ///< metres

  friend bool operator==(const Position&, const Position&) = default;
};

[[nodiscard]] inline double distance(Position a, Position b) {
  const double dx = a.x - b.x;
  const double dy = a.y - b.y;
  return std::sqrt(dx * dx + dy * dy);
}

/// Squared distance — the spatial-culling predicate compares against a
/// squared radius so the hot path never pays the sqrt.
[[nodiscard]] inline double distance2(Position a, Position b) {
  const double dx = a.x - b.x;
  const double dy = a.y - b.y;
  return dx * dx + dy * dy;
}

/// Integer grid cell containing a position (uniform grid, SpatialIndex).
struct CellCoord {
  std::int32_t cx = 0;
  std::int32_t cy = 0;

  friend bool operator==(const CellCoord&, const CellCoord&) = default;
};

[[nodiscard]] inline CellCoord cell_of(Position p, double cell_size_m) {
  return CellCoord{static_cast<std::int32_t>(std::floor(p.x / cell_size_m)),
                   static_cast<std::int32_t>(std::floor(p.y / cell_size_m))};
}

}  // namespace bicord::phy
