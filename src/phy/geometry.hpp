#pragma once
// 2D placement of devices (the paper's office testbed is planar, Fig. 6).

#include <cmath>

namespace bicord::phy {

struct Position {
  double x = 0.0;  ///< metres
  double y = 0.0;  ///< metres

  friend bool operator==(const Position&, const Position&) = default;
};

[[nodiscard]] inline double distance(Position a, Position b) {
  const double dx = a.x - b.x;
  const double dy = a.y - b.y;
  return std::sqrt(dx * dx + dy * dy);
}

}  // namespace bicord::phy
