#pragma once
// The shared wireless medium.
//
// The Medium owns the registry of nodes (name + position), tracks every
// in-flight transmission, computes per-link received power (path loss +
// per-link shadowing + band-overlap scaling), answers energy queries (CCA,
// RSSI sampling), and fans transmission start/end notifications out to the
// attached radios. It also accounts per-technology airtime, which the
// metrics layer turns into the paper's "channel utilization".
//
// Two execution paths produce bitwise-identical results (DESIGN.md Sec. 12):
// the brute-force path visits every active transmission / every listener,
// while the spatially-indexed path (MediumTuning::spatial_index) culls both
// to a grid neighborhood sized by a conservative interference radius. The
// audibility predicate that decides what a receiver can hear is shared by
// both paths, so the equivalence is by construction, and the test suite
// (tests/phy/medium_equivalence_test.cpp) enforces it.

#include <algorithm>
#include <array>
#include <cstdint>
#include <limits>
#include <memory>
#include <string>
#include <vector>

#include "phy/frame.hpp"
#include "phy/geometry.hpp"
#include "phy/path_loss.hpp"
#include "phy/spatial_index.hpp"
#include "phy/spectrum.hpp"
#include "phy/units.hpp"
#include "sim/simulator.hpp"
#include "util/time.hpp"

namespace bicord::sim {
class WorkerPool;
}

namespace bicord::phy {

using TxId = std::uint64_t;
inline constexpr TxId kInvalidTx = 0;

/// A transmission currently on the air.
struct ActiveTransmission {
  TxId id = kInvalidTx;
  Frame frame;
  Band band;
  double tx_power_dbm = 0.0;
  TimePoint start;
  TimePoint end;
  /// Fault injection: the frame is on the air but no receiver can decode it
  /// (its energy is still visible to CCA/RSSI/SINR).
  bool fault_corrupted = false;
  /// Fault injection: the frame is invisible to every *other* node — no
  /// energy, no lock — as if every receiver were momentarily deaf. The
  /// sender's own tx-done path is unaffected.
  bool fault_dropped = false;
};

/// Verdict a TxInterceptor returns for each transmission entering the air.
enum class TxVerdict : std::uint8_t { Deliver, Corrupt, Drop };

/// Fault-injection hook consulted once per begin_tx, before listeners are
/// notified. Deterministic per seed when the implementation draws from a
/// dedicated split RNG stream (see fault::FaultInjector).
class TxInterceptor {
 public:
  virtual TxVerdict intercept(const ActiveTransmission& tx) = 0;

 protected:
  ~TxInterceptor() = default;
};

/// Implemented by radios (and passive observers such as RSSI samplers that
/// want edge-triggered updates).
///
/// Delivery contract: a listener attached *globally* sees every event on the
/// medium. A listener attached *bound to a node* is guaranteed the events
/// that can change what its node observes — the start and end of every
/// transmission audible at the node (see Medium::audible) and every position
/// change that can alter an audible link — and may additionally receive
/// events for inaudible transmissions (it must treat those as no-ops; the
/// spatially-indexed path prunes them, the brute-force path does not).
class MediumListener {
 public:
  virtual void on_tx_start(const ActiveTransmission& tx) = 0;
  virtual void on_tx_end(const ActiveTransmission& tx) = 0;
  /// A node's position changed. Received power is a pure function of medium
  /// state between transmission edges *and* moves, so edge-driven observers
  /// (batched RSSI capture) need this to stay exact under device mobility.
  virtual void on_position_change(NodeId node) { (void)node; }

  // --- phased delivery (worker pool attached; DESIGN.md Sec. 14) -----------
  //
  // With a sim::WorkerPool on the medium, each tx edge fans out in two
  // phases: a parallel *absorb* phase where a listener may update only its
  // own state (plus pure, write-free medium reads — the loss cache is
  // bypassed), then a serial *react* phase in attach order for everything
  // externally visible: state-machine transitions, MAC callbacks, shared-RNG
  // draws, logging. The defaults keep non-radio listeners (tracers, RSSI
  // samplers) entirely serial: absorb is a no-op and react runs the legacy
  // single-phase hook, so the split is opt-in per listener and the serial
  // path is byte-for-byte unaffected.
  virtual void on_tx_start_absorb(const ActiveTransmission& tx) { (void)tx; }
  virtual void on_tx_start_react(const ActiveTransmission& tx) { on_tx_start(tx); }
  virtual void on_tx_end_absorb(const ActiveTransmission& tx) { (void)tx; }
  virtual void on_tx_end_react(const ActiveTransmission& tx) { on_tx_end(tx); }

 protected:
  ~MediumListener() = default;
};

/// Performance knobs. The defaults reproduce the historical behavior bit for
/// bit; enabling the spatial index must not change any simulation output
/// either — the equivalence suite proves it per seed.
struct MediumTuning {
  /// Contributions whose received power provably cannot exceed this floor are
  /// skipped — identically — by both execution paths (energy sums and
  /// listener tracking). At the default kFloorDbm the derived interference
  /// radius is hundreds of metres, far beyond the office testbed, so nothing
  /// is ever culled in the paper's presets. Dense presets raise it toward
  /// the victim technology's thermal noise floor to make culling effective.
  double snap_floor_dbm = kFloorDbm;
  /// Route energy queries and listener fan-out through a uniform-grid
  /// spatial index: O(neighborhood) instead of O(nodes) per event.
  bool spatial_index = false;
  /// Grid cell edge in metres; 0 derives radius(max_tx_power_dbm) / 3.
  double cell_size_m = 0.0;
  /// Upper bound on any tx power this medium will carry — sizes the derived
  /// cell and seeds the energy-query window. Exceeding it at begin_tx is
  /// safe (the window ratchets up), merely slower.
  double max_tx_power_dbm = 30.0;
};

class Medium {
 public:
  Medium(sim::Simulator& sim, PathLossModel path_loss, MediumTuning tuning = {});

  Medium(const Medium&) = delete;
  Medium& operator=(const Medium&) = delete;

  // --- node registry -------------------------------------------------------

  NodeId add_node(std::string name, Position pos);
  void set_position(NodeId id, Position pos);
  [[nodiscard]] Position position(NodeId id) const;
  [[nodiscard]] const std::string& node_name(NodeId id) const;
  [[nodiscard]] std::size_t node_count() const { return nodes_.size(); }

  /// Attaches a global listener: sees every event on the medium.
  void attach(MediumListener* listener);
  /// Attaches a listener bound to `node`: the indexed path only routes it
  /// events material at that node's position (see MediumListener contract).
  /// Radios and RSSI samplers bind; tracers and protocol observers that need
  /// the full event stream attach globally.
  void attach(MediumListener* listener, NodeId node);
  void detach(MediumListener* listener);

  /// Installs (or clears, with nullptr) the fault-injection hook. At most one
  /// interceptor is active; it is consulted once per begin_tx.
  void set_tx_interceptor(TxInterceptor* interceptor) { interceptor_ = interceptor; }

  /// Attaches a worker pool (not owned; may be nullptr to restore the serial
  /// path): tx edges switch to the phased absorb/react fan-out, with the
  /// absorb phase parallel across the audience. Output stays bitwise
  /// identical to the serial path (the golden suite pins it). A pool with
  /// one thread is treated as no pool.
  void set_worker_pool(sim::WorkerPool* pool);
  [[nodiscard]] sim::WorkerPool* worker_pool() const { return pool_; }

  // --- transmission --------------------------------------------------------

  /// Puts a frame on the air for `duration`; the end event is scheduled
  /// automatically. Returns the transmission id.
  TxId begin_tx(const Frame& frame, Band band, double tx_power_dbm, Duration duration);

  [[nodiscard]] const std::vector<ActiveTransmission>& active() const { return active_; }

  // --- propagation / energy queries ---------------------------------------

  /// Received power at node `dst` listening on `rx_band` for a transmission
  /// from `src` with the given parameters. Includes mean path loss, a fixed
  /// per-link shadowing term, and the band-overlap attenuation.
  [[nodiscard]] double rx_power_dbm(NodeId src, double tx_power_dbm, Band tx_band,
                                    NodeId dst, Band rx_band) const;
  [[nodiscard]] double rx_power_dbm(const ActiveTransmission& tx, NodeId dst,
                                    Band rx_band) const;

  /// True when `tx` can deliver more than tuning().snap_floor_dbm at `dst`:
  /// distance(src, dst) <= interference_radius_m(tx power). The predicate is
  /// deliberately band-agnostic (a disjoint-band neighbor still registers
  /// floor-level energy) and conservative under shadowing, so culling a
  /// non-audible transmission can never change an energy sum above the snap
  /// floor. Both execution paths apply exactly this predicate.
  [[nodiscard]] bool audible(const ActiveTransmission& tx, NodeId dst) const;

  /// Distance at which `tx_power_dbm` provably falls below the snap floor:
  /// inverts the mean path loss at snap_floor_dbm, pads by the provable
  /// shadowing bound (see DESIGN.md Sec. 12) and 5% slack. Infinite when the
  /// path-loss exponent is non-positive (then nothing is ever culled).
  [[nodiscard]] double interference_radius_m(double tx_power_dbm) const;

  /// Total in-band energy at `rx` from all active transmissions except those
  /// originated by `exclude_src`, combined with the thermal noise floor of
  /// `rx_band`. This is what a CCA energy-detect or RSSI register reads.
  [[nodiscard]] double energy_dbm(NodeId rx, Band rx_band,
                                  NodeId exclude_src = kInvalidNode) const;

  /// Thermal noise floor for a band: -174 dBm/Hz + 10 log10(BW) + NF(6 dB).
  [[nodiscard]] static double noise_floor_dbm(Band band);

  // --- airtime accounting ---------------------------------------------------

  /// Cumulative on-air time per technology since construction.
  [[nodiscard]] Duration airtime(Technology tech) const;
  /// Cumulative on-air time per (node, any technology).
  [[nodiscard]] Duration airtime_of(NodeId node) const;

  [[nodiscard]] sim::Simulator& simulator() { return sim_; }
  [[nodiscard]] const PathLossModel& path_loss() const { return path_loss_; }
  [[nodiscard]] const MediumTuning& tuning() const { return tuning_; }
  [[nodiscard]] bool spatially_indexed() const { return index_ != nullptr; }

 private:
  struct NodeEntry {
    std::string name;
    Position pos;
  };

  /// Listener registration. `seq` is the monotone attach counter: audiences
  /// are sorted by it so both paths invoke listeners in attach order, and
  /// transmission end edges filter on the seq watermark captured at begin
  /// so listeners attached mid-flight never see an end without its start.
  struct ListenerSlot {
    MediumListener* listener = nullptr;
    std::uint64_t seq = 0;
    NodeId bound = kInvalidNode;  ///< kInvalidNode = global
  };
  struct ListenerRef {
    MediumListener* listener = nullptr;
    std::uint64_t seq = 0;
  };

  /// Per-active-transmission bookkeeping, parallel to active_.
  struct TxAux {
    double radius2 = 0.0;         ///< audibility radius^2 for this power
    std::uint64_t watermark = 0;  ///< listener seq fence captured at begin
    CellCoord start_cell{};       ///< source cell when the start edge fired
    std::int64_t ring = 0;        ///< window ring for this tx (indexed mode)
    /// Finalized start audience (indexed mode): the end edge replays it —
    /// plus any pins — instead of re-walking the grid window, halving the
    /// gather work per transmission. Storage comes from a pool, so steady
    /// state allocates nothing per tx. Detach scrubs it like `pinned`.
    std::vector<ListenerRef> audience;
    /// Bound listeners that became relevant (or risked becoming unreachable)
    /// mid-flight: movers crossing cells, and — when the *source* moves —
    /// everyone in the window around its new cell. They get the end edge on
    /// top of `audience`. Moves are rare, so this stays off the hot path.
    std::vector<ListenerRef> pinned;
  };

  /// Memoized audibility radius per distinct tx power (a run uses a
  /// handful). Shared by begin_tx and the public audible() so both read the
  /// exact same double.
  struct RadiusEntry {
    double power_dbm = 0.0;
    double radius_m = 0.0;
    double radius2 = 0.0;
  };

  void finish_tx(TxId id);
  [[nodiscard]] const NodeEntry& node(NodeId id) const;
  [[nodiscard]] const RadiusEntry& radius_entry(double tx_power_dbm) const;
  [[nodiscard]] static bool audible_at(double radius2, Position src, Position dst) {
    // radius2 is +inf when culling is impossible; any finite distance passes.
    return distance2(src, dst) <= radius2;
  }

  // --- listener fan-out ----------------------------------------------------
  //
  // Brute-force path: iterate the master slot list in attach (seq) order,
  // optionally fenced by a seq watermark. Indexed path: gather the bound
  // listeners of every node in the event's grid window plus the globals into
  // a reusable audience buffer, sort by seq, dedupe, then invoke. Reentrancy
  // (a callback transmitting, attaching, detaching, adding nodes) is handled
  // by never holding references into mutable containers while user code
  // runs: audiences are snapshots, detach null-marks them in place.

  /// Notifies every listener with seq < watermark present when the loop
  /// starts, in attach order. Listeners detached during the loop are
  /// null-marked and skipped, then compacted once the outermost notification
  /// unwinds.
  template <typename Fn>
  void notify_below(std::uint64_t watermark, Fn&& fn) {
    ++notify_depth_;
    const std::size_t n = listeners_.size();
    for (std::size_t i = 0; i < n; ++i) {
      const ListenerSlot& s = listeners_[i];
      if (s.listener != nullptr && s.seq < watermark) fn(s.listener);
    }
    if (--notify_depth_ == 0 && listeners_dirty_) compact_listeners();
  }

  template <typename Fn>
  void notify(Fn&& fn) {
    notify_below(std::numeric_limits<std::uint64_t>::max(), std::forward<Fn>(fn));
  }

  template <typename Fn>
  void notify_audience(const std::vector<ListenerRef>& audience, Fn&& fn) {
    ++notify_depth_;
    const std::size_t n = audience.size();
    for (std::size_t i = 0; i < n; ++i) {
      if (audience[i].listener != nullptr) fn(audience[i].listener);
    }
    if (--notify_depth_ == 0 && listeners_dirty_) compact_listeners();
  }

  /// Phased tx-edge fan-out (worker pool attached): parallel absorb over the
  /// audience, then serial react in attach order. `start` picks the
  /// start/end listener hooks; `watermark` fences like notify_below.
  void notify_phased_below(std::uint64_t watermark, const ActiveTransmission& tx,
                           bool start);
  void notify_phased_audience(const std::vector<ListenerRef>& audience,
                              const ActiveTransmission& tx, bool start);
  /// Throws when called during the parallel absorb phase: structural
  /// mutation must be scheduled through the event queue instead.
  void check_not_absorbing(const char* what) const;

  void compact_listeners();
  /// Audience buffers are pooled per notification depth so nested events
  /// (a callback that transmits) get their own scratch without allocating
  /// per event. unique_ptr keeps buffers address-stable while the pool grows.
  [[nodiscard]] std::vector<ListenerRef>& acquire_audience();
  void release_audience() { --audience_depth_; }
  /// Pooled storage for TxAux::audience snapshots: capacity is recycled
  /// across transmissions so begin_tx never allocates in steady state.
  [[nodiscard]] std::vector<ListenerRef> acquire_aux_audience() {
    if (aux_audience_pool_.empty()) return {};
    std::vector<ListenerRef> v = std::move(aux_audience_pool_.back());
    aux_audience_pool_.pop_back();
    v.clear();
    return v;
  }
  void release_aux_audience(std::vector<ListenerRef>&& v) {
    aux_audience_pool_.push_back(std::move(v));
  }
  /// Appends the bound listeners of every node in the window to `out`.
  void gather_window_listeners(CellCoord center, std::int64_t ring,
                               std::vector<ListenerRef>& out) const;
  /// Sorts by seq and drops duplicates (a listener can enter an audience
  /// via several window cells or a pin). Stable event order = attach order.
  static void finalize_audience(std::vector<ListenerRef>& audience);

  /// Total link loss (mean path loss + shadowing + band overlap) with a
  /// direct-mapped cache keyed by (src, dst, band pair). A collision simply
  /// evicts the previous entry (it is a cache of a pure function, so
  /// recomputation is always safe), which keeps lookup to one slot compare
  /// and the structure allocation-free after construction. The cached value
  /// is the same double the direct computation produces — energy readings
  /// stay bitwise identical — and the cache is flushed whenever a node moves.
  /// During a parallel absorb phase the cache is bypassed entirely (pure
  /// recomputation), keeping the phase write-free and race-free.
  [[nodiscard]] double link_loss_db(NodeId src, Band tx_band, NodeId dst,
                                    Band rx_band) const;
  /// The uncached computation behind link_loss_db — bitwise identical.
  [[nodiscard]] double compute_link_loss_db(NodeId src, Band tx_band, NodeId dst,
                                            Band rx_band) const;

  /// Linear noise-floor memo (a run uses a handful of bands) — energy_dbm
  /// pays a band compare instead of a log10 + pow per query.
  [[nodiscard]] double noise_floor_mw(Band band) const;

  /// 16 bytes per slot keeps the whole table L1-resident (a full-tuple entry
  /// was 48 bytes and pushed every lookup out to L2). The tag is the full
  /// 64-bit avalanche hash of (src, dst, band pair) with the low bit forced
  /// to 1 (0 marks an empty slot): a false hit needs two live keys that agree
  /// in all 63 tag bits *and* map to the same slot — vanishingly unlikely and,
  /// being seed-independent, it could only shift one link's loss by a
  /// deterministic constant, never break run-to-run reproducibility.
  struct LossCacheEntry {
    std::uint64_t tag = 0;  ///< 0 marks an empty slot
    double loss_db = 0.0;
  };
  static constexpr std::size_t kLossCacheSlots = 1024;  // power of two

  sim::Simulator& sim_;
  PathLossModel path_loss_;
  MediumTuning tuning_;
  std::unique_ptr<SpatialIndex> index_;  ///< null = brute-force path
  std::vector<NodeEntry> nodes_;
  std::vector<ActiveTransmission> active_;  ///< ascending by TxId
  std::vector<TxAux> tx_aux_;               ///< parallel to active_
  /// Active TxIds per source node — a moving source implicitly carries its
  /// transmissions to its new cell. Maintained in both modes (cheap).
  std::vector<std::vector<TxId>> node_active_tx_;
  std::vector<ListenerSlot> listeners_;
  std::uint64_t next_listener_seq_ = 0;
  std::vector<ListenerRef> global_listeners_;
  std::vector<std::vector<ListenerRef>> node_listeners_;  ///< by NodeId
  std::vector<std::unique_ptr<std::vector<ListenerRef>>> audience_pool_;
  std::size_t audience_depth_ = 0;
  std::vector<std::vector<ListenerRef>> aux_audience_pool_;
  /// Monotone max of every active ring ever seen (seeded from
  /// tuning.max_tx_power_dbm): the energy-query and position-change window.
  std::int64_t max_ring_ = 0;
  int notify_depth_ = 0;
  bool listeners_dirty_ = false;
  /// Phased fan-out state: the pool (null = legacy serial path) and a flag
  /// raised only while the parallel absorb phase is in flight — it gates the
  /// loss-cache bypass and the structural-mutation guards.
  sim::WorkerPool* pool_ = nullptr;
  bool fanout_parallel_ = false;
  TxInterceptor* interceptor_ = nullptr;
  /// Airtime accumulators are dense (small enum / dense node ids): begin_tx
  /// bumps two of them per transmission, so no hashing on that path.
  std::array<Duration, kTechnologyCount> airtime_{};  ///< indexed by Technology
  std::vector<Duration> node_airtime_;  ///< indexed by NodeId
  mutable std::vector<LossCacheEntry> loss_cache_;
  mutable std::vector<std::pair<Band, double>> noise_mw_memo_;
  mutable std::vector<RadiusEntry> radius_memo_;
  mutable std::vector<TxId> energy_scratch_;  ///< indexed energy candidates
  TxId next_tx_id_ = 1;
};

}  // namespace bicord::phy
