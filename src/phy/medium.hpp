#pragma once
// The shared wireless medium.
//
// The Medium owns the registry of nodes (name + position), tracks every
// in-flight transmission, computes per-link received power (path loss +
// per-link shadowing + band-overlap scaling), answers energy queries (CCA,
// RSSI sampling), and fans transmission start/end notifications out to the
// attached radios. It also accounts per-technology airtime, which the
// metrics layer turns into the paper's "channel utilization".

#include <algorithm>
#include <array>
#include <cstdint>
#include <string>
#include <vector>

#include "phy/frame.hpp"
#include "phy/geometry.hpp"
#include "phy/path_loss.hpp"
#include "phy/spectrum.hpp"
#include "sim/simulator.hpp"
#include "util/time.hpp"

namespace bicord::phy {

using TxId = std::uint64_t;
inline constexpr TxId kInvalidTx = 0;

/// A transmission currently on the air.
struct ActiveTransmission {
  TxId id = kInvalidTx;
  Frame frame;
  Band band;
  double tx_power_dbm = 0.0;
  TimePoint start;
  TimePoint end;
  /// Fault injection: the frame is on the air but no receiver can decode it
  /// (its energy is still visible to CCA/RSSI/SINR).
  bool fault_corrupted = false;
  /// Fault injection: the frame is invisible to every *other* node — no
  /// energy, no lock — as if every receiver were momentarily deaf. The
  /// sender's own tx-done path is unaffected.
  bool fault_dropped = false;
};

/// Verdict a TxInterceptor returns for each transmission entering the air.
enum class TxVerdict : std::uint8_t { Deliver, Corrupt, Drop };

/// Fault-injection hook consulted once per begin_tx, before listeners are
/// notified. Deterministic per seed when the implementation draws from a
/// dedicated split RNG stream (see fault::FaultInjector).
class TxInterceptor {
 public:
  virtual TxVerdict intercept(const ActiveTransmission& tx) = 0;

 protected:
  ~TxInterceptor() = default;
};

/// Implemented by radios (and passive observers such as RSSI samplers that
/// want edge-triggered updates). Callbacks fire for every transmission on
/// the medium including the listener's own.
class MediumListener {
 public:
  virtual void on_tx_start(const ActiveTransmission& tx) = 0;
  virtual void on_tx_end(const ActiveTransmission& tx) = 0;
  /// A node's position changed. Received power is a pure function of medium
  /// state between transmission edges *and* moves, so edge-driven observers
  /// (batched RSSI capture) need this to stay exact under device mobility.
  virtual void on_position_change(NodeId node) { (void)node; }

 protected:
  ~MediumListener() = default;
};

class Medium {
 public:
  Medium(sim::Simulator& sim, PathLossModel path_loss);

  Medium(const Medium&) = delete;
  Medium& operator=(const Medium&) = delete;

  // --- node registry -------------------------------------------------------

  NodeId add_node(std::string name, Position pos);
  void set_position(NodeId id, Position pos);
  [[nodiscard]] Position position(NodeId id) const;
  [[nodiscard]] const std::string& node_name(NodeId id) const;
  [[nodiscard]] std::size_t node_count() const { return nodes_.size(); }

  void attach(MediumListener* listener);
  void detach(MediumListener* listener);

  /// Installs (or clears, with nullptr) the fault-injection hook. At most one
  /// interceptor is active; it is consulted once per begin_tx.
  void set_tx_interceptor(TxInterceptor* interceptor) { interceptor_ = interceptor; }

  // --- transmission --------------------------------------------------------

  /// Puts a frame on the air for `duration`; the end event is scheduled
  /// automatically. Returns the transmission id.
  TxId begin_tx(const Frame& frame, Band band, double tx_power_dbm, Duration duration);

  [[nodiscard]] const std::vector<ActiveTransmission>& active() const { return active_; }

  // --- propagation / energy queries ---------------------------------------

  /// Received power at node `dst` listening on `rx_band` for a transmission
  /// from `src` with the given parameters. Includes mean path loss, a fixed
  /// per-link shadowing term, and the band-overlap attenuation.
  [[nodiscard]] double rx_power_dbm(NodeId src, double tx_power_dbm, Band tx_band,
                                    NodeId dst, Band rx_band) const;
  [[nodiscard]] double rx_power_dbm(const ActiveTransmission& tx, NodeId dst,
                                    Band rx_band) const;

  /// Total in-band energy at `rx` from all active transmissions except those
  /// originated by `exclude_src`, combined with the thermal noise floor of
  /// `rx_band`. This is what a CCA energy-detect or RSSI register reads.
  [[nodiscard]] double energy_dbm(NodeId rx, Band rx_band,
                                  NodeId exclude_src = kInvalidNode) const;

  /// Thermal noise floor for a band: -174 dBm/Hz + 10 log10(BW) + NF(6 dB).
  [[nodiscard]] static double noise_floor_dbm(Band band);

  // --- airtime accounting ---------------------------------------------------

  /// Cumulative on-air time per technology since construction.
  [[nodiscard]] Duration airtime(Technology tech) const;
  /// Cumulative on-air time per (node, any technology).
  [[nodiscard]] Duration airtime_of(NodeId node) const;

  [[nodiscard]] sim::Simulator& simulator() { return sim_; }
  [[nodiscard]] const PathLossModel& path_loss() const { return path_loss_; }

 private:
  struct NodeEntry {
    std::string name;
    Position pos;
  };

  void finish_tx(TxId id);
  [[nodiscard]] const NodeEntry& node(NodeId id) const;

  /// Notifies every listener present when the loop starts, in attach order,
  /// without copying the listener vector (the old per-begin_tx snapshot copy
  /// was the kernel's last hot-path allocation). Listeners attached during
  /// the loop are not notified for this event; listeners detached during the
  /// loop are null-marked and skipped, then compacted once the outermost
  /// notification unwinds.
  template <typename Fn>
  void notify(Fn&& fn) {
    ++notify_depth_;
    const std::size_t n = listeners_.size();
    for (std::size_t i = 0; i < n; ++i) {
      if (listeners_[i] != nullptr) fn(listeners_[i]);
    }
    if (--notify_depth_ == 0 && listeners_dirty_) {
      listeners_.erase(std::remove(listeners_.begin(), listeners_.end(), nullptr),
                       listeners_.end());
      listeners_dirty_ = false;
    }
  }

  /// Total link loss (mean path loss + shadowing + band overlap) with a
  /// direct-mapped cache keyed by (src, dst, band pair). A collision simply
  /// evicts the previous entry (it is a cache of a pure function, so
  /// recomputation is always safe), which keeps lookup to one slot compare
  /// and the structure allocation-free after construction. The cached value
  /// is the same double the direct computation produces — energy readings
  /// stay bitwise identical — and the cache is flushed whenever a node moves.
  [[nodiscard]] double link_loss_db(NodeId src, Band tx_band, NodeId dst,
                                    Band rx_band) const;

  /// Linear noise-floor memo (a run uses a handful of bands) — energy_dbm
  /// pays a band compare instead of a log10 + pow per query.
  [[nodiscard]] double noise_floor_mw(Band band) const;

  /// 16 bytes per slot keeps the whole table L1-resident (a full-tuple entry
  /// was 48 bytes and pushed every lookup out to L2). The tag is the full
  /// 64-bit avalanche hash of (src, dst, band pair) with the low bit forced
  /// to 1 (0 marks an empty slot): a false hit needs two live keys that agree
  /// in all 63 tag bits *and* map to the same slot — vanishingly unlikely and,
  /// being seed-independent, it could only shift one link's loss by a
  /// deterministic constant, never break run-to-run reproducibility.
  struct LossCacheEntry {
    std::uint64_t tag = 0;  ///< 0 marks an empty slot
    double loss_db = 0.0;
  };
  static constexpr std::size_t kLossCacheSlots = 1024;  // power of two

  sim::Simulator& sim_;
  PathLossModel path_loss_;
  std::vector<NodeEntry> nodes_;
  std::vector<ActiveTransmission> active_;
  std::vector<MediumListener*> listeners_;
  int notify_depth_ = 0;
  bool listeners_dirty_ = false;
  TxInterceptor* interceptor_ = nullptr;
  /// Airtime accumulators are dense (small enum / dense node ids): begin_tx
  /// bumps two of them per transmission, so no hashing on that path.
  std::array<Duration, 4> airtime_{};   ///< indexed by Technology
  std::vector<Duration> node_airtime_;  ///< indexed by NodeId
  mutable std::vector<LossCacheEntry> loss_cache_;
  mutable std::vector<std::pair<Band, double>> noise_mw_memo_;
  TxId next_tx_id_ = 1;
};

}  // namespace bicord::phy
