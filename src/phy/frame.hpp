#pragma once
// Technology-agnostic frame descriptor exchanged over the shared medium.
//
// The PHY layer does not interpret payloads; frames carry only the metadata
// the MAC/coordination layers need. Cross-technology interactions work on
// frame *existence* and energy, never on payload bits — exactly the premise
// of BiCord's one-bit signaling.

#include <cstddef>
#include <cstdint>

#include "util/time.hpp"

namespace bicord::phy {

enum class Technology : std::uint8_t { WiFi, ZigBee, Bluetooth, Microwave, LteU };
inline constexpr std::size_t kTechnologyCount = 5;

[[nodiscard]] constexpr const char* to_string(Technology t) {
  switch (t) {
    case Technology::WiFi: return "WiFi";
    case Technology::ZigBee: return "ZigBee";
    case Technology::Bluetooth: return "Bluetooth";
    case Technology::Microwave: return "Microwave";
    case Technology::LteU: return "LTE-U";
  }
  return "?";
}

enum class FrameKind : std::uint8_t {
  Data,     ///< application payload
  Ack,      ///< link-layer acknowledgment
  Cts,      ///< Wi-Fi CTS(-to-self); `nav` carries the reservation length
  Control,  ///< BiCord cross-technology signaling packet (ZigBee side)
  Notify,   ///< ECC downlink CTC notification of an upcoming white space
  Noise,    ///< non-decodable emission (microwave oven, jammers)
};

[[nodiscard]] constexpr const char* to_string(FrameKind k) {
  switch (k) {
    case FrameKind::Data: return "Data";
    case FrameKind::Ack: return "Ack";
    case FrameKind::Cts: return "Cts";
    case FrameKind::Control: return "Control";
    case FrameKind::Notify: return "Notify";
    case FrameKind::Noise: return "Noise";
  }
  return "?";
}

using NodeId = std::uint32_t;
inline constexpr NodeId kBroadcastNode = 0xFFFFFFFFu;
inline constexpr NodeId kInvalidNode = 0xFFFFFFFEu;

struct Frame {
  Technology tech = Technology::WiFi;
  FrameKind kind = FrameKind::Data;
  NodeId src = kInvalidNode;
  NodeId dst = kBroadcastNode;
  std::uint32_t bytes = 0;   ///< on-air size incl. MAC overhead
  std::uint64_t seq = 0;     ///< per-sender sequence number
  Duration nav;              ///< medium reservation (Cts/Notify), else zero
  std::int32_t tag = 0;      ///< protocol scratch (e.g. burst id)
};

}  // namespace bicord::phy
