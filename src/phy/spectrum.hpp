#pragma once
// 2.4 GHz ISM band channel maps and band-overlap arithmetic.
//
// Wi-Fi channels are 20 MHz wide and 5 MHz apart (ch 1 = 2412 MHz);
// IEEE 802.15.4 (ZigBee) channels are 2 MHz wide and 5 MHz apart
// (ch 11 = 2405 MHz); Bluetooth classic hops over 79 channels of 1 MHz
// (ch 0 = 2402 MHz). The paper pairs Wi-Fi ch 11/13 with ZigBee ch 24/26 so
// the bands overlap.

#include <cstdint>

namespace bicord::phy {

/// A contiguous slice of spectrum described by its centre and width in MHz.
struct Band {
  double center_mhz = 0.0;
  double width_mhz = 0.0;

  [[nodiscard]] double lo() const { return center_mhz - width_mhz / 2.0; }
  [[nodiscard]] double hi() const { return center_mhz + width_mhz / 2.0; }

  friend bool operator==(const Band&, const Band&) = default;
};

/// Overlapping width of two bands in MHz (0 when disjoint).
[[nodiscard]] double overlap_mhz(Band a, Band b);

/// Fraction of transmitter band `tx` whose energy lands inside receiver
/// band `rx`, assuming the transmit power is spread evenly over `tx`.
/// E.g. a 20 MHz Wi-Fi frame deposits only 2/20 = 10 % of its power into an
/// overlapped 2 MHz ZigBee channel, while a ZigBee frame inside a Wi-Fi
/// channel deposits 100 %. This asymmetry is central to the coexistence
/// problem the paper addresses.
[[nodiscard]] double in_band_fraction(Band tx, Band rx);

/// Same, expressed as a dB attenuation to apply to the received power
/// (returns +inf-like large value when disjoint; use with care).
[[nodiscard]] double overlap_loss_db(Band tx, Band rx);

/// IEEE 802.11b/g channel n in [1, 13].
[[nodiscard]] Band wifi_channel(int n);
/// IEEE 802.15.4 channel n in [11, 26].
[[nodiscard]] Band zigbee_channel(int n);
/// Bluetooth BR/EDR channel n in [0, 78].
[[nodiscard]] Band bluetooth_channel(int n);

}  // namespace bicord::phy
