#include "phy/medium.hpp"

#include <algorithm>
#include <cmath>
#include <cstring>
#include <stdexcept>

#include "phy/units.hpp"

namespace bicord::phy {

Medium::Medium(sim::Simulator& sim, PathLossModel path_loss)
    : sim_(sim), path_loss_(path_loss) {}

NodeId Medium::add_node(std::string name, Position pos) {
  nodes_.push_back(NodeEntry{std::move(name), pos});
  node_airtime_.push_back(Duration::zero());
  return static_cast<NodeId>(nodes_.size() - 1);
}

const Medium::NodeEntry& Medium::node(NodeId id) const {
  if (id >= nodes_.size()) throw std::out_of_range("Medium: unknown node id");
  return nodes_[id];
}

void Medium::set_position(NodeId id, Position pos) {
  if (id >= nodes_.size()) throw std::out_of_range("Medium: unknown node id");
  nodes_[id].pos = pos;
  // Distances changed: every cached link loss involving any node is suspect.
  // Moves are rare (mobility period >> sample period), so a full flush is
  // cheaper than per-node bookkeeping. assign() keeps the slot storage.
  loss_cache_.assign(loss_cache_.size(), LossCacheEntry{});
  notify([id](MediumListener* l) { l->on_position_change(id); });
}

Position Medium::position(NodeId id) const { return node(id).pos; }

const std::string& Medium::node_name(NodeId id) const { return node(id).name; }

void Medium::attach(MediumListener* listener) {
  if (listener == nullptr) throw std::invalid_argument("Medium::attach: null listener");
  listeners_.push_back(listener);
}

void Medium::detach(MediumListener* listener) {
  if (notify_depth_ > 0) {
    // Mid-notification: null-mark so the running loop skips it; the slot is
    // compacted when the outermost notify() unwinds.
    for (auto*& l : listeners_) {
      if (l == listener) {
        l = nullptr;
        listeners_dirty_ = true;
      }
    }
    return;
  }
  listeners_.erase(std::remove(listeners_.begin(), listeners_.end(), listener),
                   listeners_.end());
}

TxId Medium::begin_tx(const Frame& frame, Band band, double tx_power_dbm,
                      Duration duration) {
  if (frame.src >= nodes_.size()) {
    throw std::invalid_argument("Medium::begin_tx: frame.src is not a registered node");
  }
  if (duration <= Duration::zero()) {
    throw std::invalid_argument("Medium::begin_tx: non-positive duration");
  }
  ActiveTransmission tx;
  tx.id = next_tx_id_++;
  tx.frame = frame;
  tx.band = band;
  tx.tx_power_dbm = tx_power_dbm;
  tx.start = sim_.now();
  tx.end = sim_.now() + duration;
  if (interceptor_ != nullptr) {
    switch (interceptor_->intercept(tx)) {
      case TxVerdict::Deliver:
        break;
      case TxVerdict::Corrupt:
        tx.fault_corrupted = true;
        break;
      case TxVerdict::Drop:
        tx.fault_dropped = true;
        break;
    }
  }
  active_.push_back(tx);

  airtime_[static_cast<std::size_t>(frame.tech)] += duration;
  node_airtime_[frame.src] += duration;

  notify([&tx](MediumListener* l) { l->on_tx_start(tx); });

  const TxId id = tx.id;
  sim_.at(tx.end, [this, id] { finish_tx(id); });
  return id;
}

void Medium::finish_tx(TxId id) {
  const auto it = std::find_if(active_.begin(), active_.end(),
                               [id](const ActiveTransmission& t) { return t.id == id; });
  if (it == active_.end()) return;  // defensive: already removed
  const ActiveTransmission tx = *it;
  active_.erase(it);
  notify([&tx](MediumListener* l) { l->on_tx_end(tx); });
}

namespace {
/// 64-bit finalizer (murmur3) — spreads node ids and band bit patterns.
std::uint64_t mix64(std::uint64_t x) {
  x ^= x >> 33;
  x *= 0xff51afd7ed558ccdULL;
  x ^= x >> 33;
  x *= 0xc4ceb9fe1a85ec53ULL;
  x ^= x >> 33;
  return x;
}

std::uint64_t band_bits(Band b) {
  std::uint64_t c = 0;
  std::uint64_t w = 0;
  static_assert(sizeof(double) == sizeof(std::uint64_t));
  std::memcpy(&c, &b.center_mhz, sizeof(c));
  std::memcpy(&w, &b.width_mhz, sizeof(w));
  // Distinct odd multipliers keep (center, width) and the two band operands
  // from cancelling under xor; the single mix64 at the end does the real
  // avalanche work.
  return c * 0x9e3779b97f4a7c15ULL + w * 0xc2b2ae3d27d4eb4fULL;
}
}  // namespace

double Medium::link_loss_db(NodeId src, Band tx_band, NodeId dst, Band rx_band) const {
  if (src >= nodes_.size() || dst >= nodes_.size()) {
    // throws for the unknown node (and dst below if src is fine)
    static_cast<void>(node(src));
    static_cast<void>(node(dst));
  }
  if (loss_cache_.empty()) loss_cache_.resize(kLossCacheSlots);
  const std::uint64_t h =
      mix64(((static_cast<std::uint64_t>(src) << 32) | dst) ^ band_bits(tx_band) ^
            (band_bits(rx_band) << 1));
  const std::uint64_t tag = h | 1;  // low bit set: 0 stays the empty marker
  LossCacheEntry& e = loss_cache_[(h >> 1) & (kLossCacheSlots - 1)];
  if (e.tag == tag) return e.loss_db;
  const double d = distance(node(src).pos, node(dst).pos);
  // Link key is direction-independent so A->B and B->A shadow identically.
  const std::uint64_t lo = std::min(src, dst);
  const std::uint64_t hi = std::max(src, dst);
  const std::uint64_t link_key = (lo << 32) | hi;
  const double loss = path_loss_.mean_loss_db(d) + path_loss_.shadowing_db(link_key) +
                      overlap_loss_db(tx_band, rx_band);
  e = LossCacheEntry{tag, loss};
  return loss;
}

double Medium::rx_power_dbm(NodeId src, double tx_power_dbm, Band tx_band, NodeId dst,
                            Band rx_band) const {
  const double p = tx_power_dbm - link_loss_db(src, tx_band, dst, rx_band);
  return p < kFloorDbm ? kFloorDbm : p;
}

double Medium::rx_power_dbm(const ActiveTransmission& tx, NodeId dst, Band rx_band) const {
  return rx_power_dbm(tx.frame.src, tx.tx_power_dbm, tx.band, dst, rx_band);
}

double Medium::noise_floor_mw(Band band) const {
  for (const auto& [b, mw] : noise_mw_memo_) {
    if (b == band) return mw;
  }
  const double mw = dbm_to_mw(noise_floor_dbm(band));
  noise_mw_memo_.emplace_back(band, mw);
  return mw;
}

double Medium::energy_dbm(NodeId rx, Band rx_band, NodeId exclude_src) const {
  double acc_mw = noise_floor_mw(rx_band);
  for (const auto& tx : active_) {
    if (tx.frame.src == rx || tx.frame.src == exclude_src) continue;
    if (tx.fault_dropped) continue;  // invisible to every other node
    acc_mw += dbm_to_mw(rx_power_dbm(tx, rx, rx_band));
  }
  return mw_to_dbm(acc_mw);
}

double Medium::noise_floor_dbm(Band band) {
  if (band.width_mhz <= 0.0) throw std::invalid_argument("noise_floor_dbm: empty band");
  return -174.0 + 10.0 * std::log10(band.width_mhz * 1e6) + 6.0;
}

Duration Medium::airtime(Technology tech) const {
  const auto i = static_cast<std::size_t>(tech);
  return i < airtime_.size() ? airtime_[i] : Duration::zero();
}

Duration Medium::airtime_of(NodeId node_id) const {
  return node_id < node_airtime_.size() ? node_airtime_[node_id] : Duration::zero();
}

}  // namespace bicord::phy
