#include "phy/medium.hpp"

#include <algorithm>
#include <cmath>
#include <cstring>
#include <stdexcept>
#include <string>

#include "sim/parallel_dispatch.hpp"

namespace bicord::phy {

Medium::Medium(sim::Simulator& sim, PathLossModel path_loss, MediumTuning tuning)
    : sim_(sim), path_loss_(path_loss), tuning_(tuning) {
  if (tuning_.spatial_index) {
    double cell = tuning_.cell_size_m;
    if (!(cell > 0.0)) {
      // Roughly a third of the maximum interference radius keeps windows at
      // ring 5 (11x11 cells) while buckets stay coarse enough to hold a
      // workable number of nodes. An unbounded radius (exponent <= 0) falls
      // back to an arbitrary cell: every window clamps to the occupied
      // bounding box anyway, so the choice only affects constant factors.
      const double r = interference_radius_m(tuning_.max_tx_power_dbm);
      cell = std::isfinite(r) ? std::max(r / 3.0, 1e-3) : 50.0;
    }
    index_ = std::make_unique<SpatialIndex>(cell);
    max_ring_ = index_->ring_for(interference_radius_m(tuning_.max_tx_power_dbm));
  }
}

void Medium::set_worker_pool(sim::WorkerPool* pool) {
  pool_ = (pool != nullptr && pool->threads() > 1) ? pool : nullptr;
}

void Medium::check_not_absorbing(const char* what) const {
  if (fanout_parallel_) {
    throw std::logic_error(std::string("Medium::") + what +
                           ": called from a parallel absorb phase — schedule "
                           "the mutation through the event queue instead");
  }
}

NodeId Medium::add_node(std::string name, Position pos) {
  check_not_absorbing("add_node");
  nodes_.push_back(NodeEntry{std::move(name), pos});
  node_airtime_.push_back(Duration::zero());
  node_listeners_.emplace_back();
  node_active_tx_.emplace_back();
  const auto id = static_cast<NodeId>(nodes_.size() - 1);
  if (index_ != nullptr) index_->add_node(id, pos);
  return id;
}

const Medium::NodeEntry& Medium::node(NodeId id) const {
  if (id >= nodes_.size()) throw std::out_of_range("Medium: unknown node id");
  return nodes_[id];
}

void Medium::set_position(NodeId id, Position pos) {
  check_not_absorbing("set_position");
  if (id >= nodes_.size()) throw std::out_of_range("Medium: unknown node id");
  nodes_[id].pos = pos;
  // Distances changed: every cached link loss involving any node is suspect.
  // Moves are rare (mobility period >> sample period), so a full flush is
  // cheaper than per-node bookkeeping. assign() keeps the slot storage.
  loss_cache_.assign(loss_cache_.size(), LossCacheEntry{});
  if (index_ == nullptr) {
    notify([id](MediumListener* l) { l->on_position_change(id); });
    return;
  }
  const CellCoord old_cell = index_->cell_of_node(id);
  if (index_->move_node(id, pos)) {
    // The mover's bound listeners may have left the start window of active
    // transmissions they tracked: pin them so end edges still reach them.
    // Over-pinning is harmless — end audiences dedupe and watermark-filter.
    if (!node_listeners_[id].empty()) {
      for (auto& aux : tx_aux_) {
        aux.pinned.insert(aux.pinned.end(), node_listeners_[id].begin(),
                          node_listeners_[id].end());
      }
    }
    // Transmissions sourced at the mover carry their audible footprint with
    // them. Listeners near the *old* cell are already in the start-audience
    // snapshot; pin everyone reachable from the new cell so observers the
    // transmission just became audible to get its end edge too.
    const CellCoord new_cell = index_->cell_of_node(id);
    for (const TxId t : node_active_tx_[id]) {
      for (std::size_t i = 0; i < active_.size(); ++i) {
        if (active_[i].id != t) continue;
        gather_window_listeners(new_cell, tx_aux_[i].ring, tx_aux_[i].pinned);
        tx_aux_[i].start_cell = new_cell;
        break;
      }
    }
  }
  // Only links sourced at the mover change readings, so every listener whose
  // observations can shift sits within the maximum ring of the mover's old
  // or new cell (including the mover's own listeners). Globals always hear.
  const CellCoord new_cell = index_->cell_of_node(id);
  auto& audience = acquire_audience();
  audience.clear();
  gather_window_listeners(old_cell, max_ring_, audience);
  if (!(new_cell == old_cell)) gather_window_listeners(new_cell, max_ring_, audience);
  audience.insert(audience.end(), global_listeners_.begin(), global_listeners_.end());
  finalize_audience(audience);
  notify_audience(audience, [id](MediumListener* l) { l->on_position_change(id); });
  release_audience();
}

Position Medium::position(NodeId id) const { return node(id).pos; }

const std::string& Medium::node_name(NodeId id) const { return node(id).name; }

void Medium::attach(MediumListener* listener) { attach(listener, kInvalidNode); }

void Medium::attach(MediumListener* listener, NodeId node) {
  check_not_absorbing("attach");
  if (listener == nullptr) throw std::invalid_argument("Medium::attach: null listener");
  if (node != kInvalidNode && node >= nodes_.size()) {
    throw std::invalid_argument("Medium::attach: unknown node id");
  }
  const std::uint64_t seq = next_listener_seq_++;
  listeners_.push_back(ListenerSlot{listener, seq, node});
  if (node == kInvalidNode) {
    global_listeners_.push_back(ListenerRef{listener, seq});
  } else {
    node_listeners_[node].push_back(ListenerRef{listener, seq});
  }
}

void Medium::detach(MediumListener* listener) {
  check_not_absorbing("detach");
  const auto scrub = [listener](std::vector<ListenerRef>& v) {
    v.erase(std::remove_if(v.begin(), v.end(),
                           [listener](const ListenerRef& r) {
                             return r.listener == listener;
                           }),
            v.end());
  };
  // Side structures are only read while audiences are being built (never
  // while user code runs), so direct erasure is safe even mid-notification.
  for (const ListenerSlot& s : listeners_) {
    if (s.listener != listener) continue;
    if (s.bound == kInvalidNode) {
      scrub(global_listeners_);
    } else {
      scrub(node_listeners_[s.bound]);
    }
  }
  for (auto& aux : tx_aux_) {
    if (!aux.audience.empty()) scrub(aux.audience);
    if (!aux.pinned.empty()) scrub(aux.pinned);
  }
  // In-flight audiences are snapshots: null-mark so their loops skip it.
  for (std::size_t i = 0; i < audience_depth_; ++i) {
    for (ListenerRef& r : *audience_pool_[i]) {
      if (r.listener == listener) r.listener = nullptr;
    }
  }
  if (notify_depth_ > 0) {
    // Mid-notification: null-mark so the running loop skips it; the slot is
    // compacted when the outermost notify() unwinds.
    for (ListenerSlot& s : listeners_) {
      if (s.listener == listener) {
        s.listener = nullptr;
        listeners_dirty_ = true;
      }
    }
    return;
  }
  listeners_.erase(std::remove_if(listeners_.begin(), listeners_.end(),
                                  [listener](const ListenerSlot& s) {
                                    return s.listener == listener;
                                  }),
                   listeners_.end());
}

void Medium::notify_phased_below(std::uint64_t watermark,
                                 const ActiveTransmission& tx, bool start) {
  ++notify_depth_;
  const std::size_t n = listeners_.size();
  fanout_parallel_ = true;
  pool_->parallel_for(n, [&](std::size_t i) {
    const ListenerSlot& s = listeners_[i];
    if (s.listener == nullptr || s.seq >= watermark) return;
    if (start) {
      s.listener->on_tx_start_absorb(tx);
    } else {
      s.listener->on_tx_end_absorb(tx);
    }
  });
  fanout_parallel_ = false;
  for (std::size_t i = 0; i < n; ++i) {
    const ListenerSlot& s = listeners_[i];
    if (s.listener == nullptr || s.seq >= watermark) continue;
    if (start) {
      s.listener->on_tx_start_react(tx);
    } else {
      s.listener->on_tx_end_react(tx);
    }
  }
  if (--notify_depth_ == 0 && listeners_dirty_) compact_listeners();
}

void Medium::notify_phased_audience(const std::vector<ListenerRef>& audience,
                                    const ActiveTransmission& tx, bool start) {
  ++notify_depth_;
  const std::size_t n = audience.size();
  fanout_parallel_ = true;
  pool_->parallel_for(n, [&](std::size_t i) {
    MediumListener* l = audience[i].listener;
    if (l == nullptr) return;
    if (start) {
      l->on_tx_start_absorb(tx);
    } else {
      l->on_tx_end_absorb(tx);
    }
  });
  fanout_parallel_ = false;
  for (std::size_t i = 0; i < n; ++i) {
    MediumListener* l = audience[i].listener;
    if (l == nullptr) continue;
    if (start) {
      l->on_tx_start_react(tx);
    } else {
      l->on_tx_end_react(tx);
    }
  }
  if (--notify_depth_ == 0 && listeners_dirty_) compact_listeners();
}

void Medium::compact_listeners() {
  listeners_.erase(std::remove_if(listeners_.begin(), listeners_.end(),
                                  [](const ListenerSlot& s) {
                                    return s.listener == nullptr;
                                  }),
                   listeners_.end());
  listeners_dirty_ = false;
}

std::vector<Medium::ListenerRef>& Medium::acquire_audience() {
  if (audience_depth_ == audience_pool_.size()) {
    audience_pool_.push_back(std::make_unique<std::vector<ListenerRef>>());
  }
  return *audience_pool_[audience_depth_++];
}

void Medium::gather_window_listeners(CellCoord center, std::int64_t ring,
                                     std::vector<ListenerRef>& out) const {
  index_->for_each_in_window(center, ring, [this, &out](NodeId n) {
    const auto& refs = node_listeners_[n];
    out.insert(out.end(), refs.begin(), refs.end());
  });
}

void Medium::finalize_audience(std::vector<ListenerRef>& audience) {
  std::sort(audience.begin(), audience.end(),
            [](const ListenerRef& a, const ListenerRef& b) { return a.seq < b.seq; });
  audience.erase(std::unique(audience.begin(), audience.end(),
                             [](const ListenerRef& a, const ListenerRef& b) {
                               return a.seq == b.seq;
                             }),
                 audience.end());
}

const Medium::RadiusEntry& Medium::radius_entry(double tx_power_dbm) const {
  for (const auto& e : radius_memo_) {
    if (e.power_dbm == tx_power_dbm) return e;
  }
  const double r = interference_radius_m(tx_power_dbm);
  radius_memo_.push_back(RadiusEntry{tx_power_dbm, r, r * r});
  return radius_memo_.back();
}

double Medium::interference_radius_m(double tx_power_dbm) const {
  if (path_loss_.exponent <= 0.0) return std::numeric_limits<double>::infinity();
  // Provable bound on |shadowing_db| / sigma: PathLossModel::shadowing_db
  // clamps the Box-Muller uniform at u1 >= 2^-53, so |z| <= sqrt(2*53*ln 2)
  // ~= 8.5718; 9 sigma is therefore strictly outside every possible draw.
  constexpr double kShadowingZBound = 9.0;
  const double margin_db = path_loss_.shadowing_sigma_db > 0.0
                               ? kShadowingZBound * path_loss_.shadowing_sigma_db
                               : 0.0;
  const double excess_db =
      tx_power_dbm + margin_db - path_loss_.pl_d0_db - tuning_.snap_floor_dbm;
  // 5% slack (~0.2 dB at exponent 3) keeps the cut strictly conservative
  // against FP rounding in mean_loss_db; band-overlap attenuation (>= 0) is
  // conservatively ignored. Overflowing pow lands on +inf = never cull.
  return 1.05 * std::pow(10.0, excess_db / (10.0 * path_loss_.exponent));
}

bool Medium::audible(const ActiveTransmission& tx, NodeId dst) const {
  return audible_at(radius_entry(tx.tx_power_dbm).radius2, node(tx.frame.src).pos,
                    node(dst).pos);
}

TxId Medium::begin_tx(const Frame& frame, Band band, double tx_power_dbm,
                      Duration duration) {
  check_not_absorbing("begin_tx");
  if (frame.src >= nodes_.size()) {
    throw std::invalid_argument("Medium::begin_tx: frame.src is not a registered node");
  }
  if (duration <= Duration::zero()) {
    throw std::invalid_argument("Medium::begin_tx: non-positive duration");
  }
  ActiveTransmission tx;
  tx.id = next_tx_id_++;
  tx.frame = frame;
  tx.band = band;
  tx.tx_power_dbm = tx_power_dbm;
  tx.start = sim_.now();
  tx.end = sim_.now() + duration;
  if (interceptor_ != nullptr) {
    switch (interceptor_->intercept(tx)) {
      case TxVerdict::Deliver:
        break;
      case TxVerdict::Corrupt:
        tx.fault_corrupted = true;
        break;
      case TxVerdict::Drop:
        tx.fault_dropped = true;
        break;
    }
  }
  TxAux aux;
  const RadiusEntry& re = radius_entry(tx_power_dbm);
  aux.radius2 = re.radius2;
  aux.watermark = next_listener_seq_;
  if (index_ != nullptr) {
    aux.start_cell = index_->cell_of_node(frame.src);
    aux.ring = index_->ring_for(re.radius_m);
    if (aux.ring > max_ring_) max_ring_ = aux.ring;
  }
  active_.push_back(tx);
  tx_aux_.push_back(std::move(aux));
  node_active_tx_[frame.src].push_back(tx.id);

  airtime_[static_cast<std::size_t>(frame.tech)] += duration;
  node_airtime_[frame.src] += duration;

  if (index_ == nullptr) {
    if (pool_ != nullptr) {
      notify_phased_below(std::numeric_limits<std::uint64_t>::max(), tx,
                          /*start=*/true);
    } else {
      notify([&tx](MediumListener* l) { l->on_tx_start(tx); });
    }
  } else {
    // Snapshot before callbacks run: nested begin_tx may grow tx_aux_.
    const CellCoord cell = tx_aux_.back().start_cell;
    const std::int64_t ring = tx_aux_.back().ring;
    auto& audience = acquire_audience();
    audience.clear();
    gather_window_listeners(cell, ring, audience);
    audience.insert(audience.end(), global_listeners_.begin(), global_listeners_.end());
    finalize_audience(audience);
    // Save the finalized start audience for the end edge (every ref has
    // seq < watermark by construction). Must happen before callbacks run:
    // a callback may detach (which scrubs saved audiences) or transmit
    // (which may reallocate tx_aux_).
    std::vector<ListenerRef> snap = acquire_aux_audience();
    snap.assign(audience.begin(), audience.end());
    tx_aux_.back().audience = std::move(snap);
    if (pool_ != nullptr) {
      notify_phased_audience(audience, tx, /*start=*/true);
    } else {
      notify_audience(audience, [&tx](MediumListener* l) { l->on_tx_start(tx); });
    }
    release_audience();
  }

  const TxId id = tx.id;
  sim_.at(tx.end, [this, id] { finish_tx(id); });
  return id;
}

void Medium::finish_tx(TxId id) {
  const auto it = std::find_if(active_.begin(), active_.end(),
                               [id](const ActiveTransmission& t) { return t.id == id; });
  if (it == active_.end()) return;  // defensive: already removed
  const auto i = static_cast<std::size_t>(it - active_.begin());
  const ActiveTransmission tx = *it;
  TxAux aux = std::move(tx_aux_[i]);
  active_.erase(it);
  tx_aux_.erase(tx_aux_.begin() + static_cast<std::ptrdiff_t>(i));
  auto& src_list = node_active_tx_[tx.frame.src];
  src_list.erase(std::find(src_list.begin(), src_list.end(), id));

  if (index_ == nullptr) {
    // The watermark fence means a listener attached mid-flight never sees an
    // end edge without its start — exactly what the indexed path delivers.
    if (pool_ != nullptr) {
      notify_phased_below(aux.watermark, tx, /*start=*/false);
    } else {
      notify_below(aux.watermark, [&tx](MediumListener* l) { l->on_tx_end(tx); });
    }
    return;
  }
  // Replay the saved start audience instead of re-walking the grid window:
  // everything that heard the start is in it, detach scrubbed anyone who
  // left, and mid-flight movers (in either direction, including a moving
  // source) were pinned by set_position. Pins may duplicate saved refs or
  // carry post-watermark seqs; the filter + finalize pass absorbs both.
  auto& audience = acquire_audience();
  audience.clear();
  audience.insert(audience.end(), aux.audience.begin(), aux.audience.end());
  audience.insert(audience.end(), aux.pinned.begin(), aux.pinned.end());
  audience.erase(std::remove_if(audience.begin(), audience.end(),
                                [&aux](const ListenerRef& r) {
                                  return r.seq >= aux.watermark;
                                }),
                 audience.end());
  finalize_audience(audience);
  if (pool_ != nullptr) {
    notify_phased_audience(audience, tx, /*start=*/false);
  } else {
    notify_audience(audience, [&tx](MediumListener* l) { l->on_tx_end(tx); });
  }
  release_audience();
  release_aux_audience(std::move(aux.audience));
}

namespace {
/// 64-bit finalizer (murmur3) — spreads node ids and band bit patterns.
std::uint64_t mix64(std::uint64_t x) {
  x ^= x >> 33;
  x *= 0xff51afd7ed558ccdULL;
  x ^= x >> 33;
  x *= 0xc4ceb9fe1a85ec53ULL;
  x ^= x >> 33;
  return x;
}

std::uint64_t band_bits(Band b) {
  std::uint64_t c = 0;
  std::uint64_t w = 0;
  static_assert(sizeof(double) == sizeof(std::uint64_t));
  std::memcpy(&c, &b.center_mhz, sizeof(c));
  std::memcpy(&w, &b.width_mhz, sizeof(w));
  // Distinct odd multipliers keep (center, width) and the two band operands
  // from cancelling under xor; the single mix64 at the end does the real
  // avalanche work.
  return c * 0x9e3779b97f4a7c15ULL + w * 0xc2b2ae3d27d4eb4fULL;
}
}  // namespace

double Medium::compute_link_loss_db(NodeId src, Band tx_band, NodeId dst,
                                    Band rx_band) const {
  const double d = distance(node(src).pos, node(dst).pos);
  // Link key is direction-independent so A->B and B->A shadow identically.
  const std::uint64_t lo = std::min(src, dst);
  const std::uint64_t hi = std::max(src, dst);
  const std::uint64_t link_key = (lo << 32) | hi;
  return path_loss_.mean_loss_db(d) + path_loss_.shadowing_db(link_key) +
         overlap_loss_db(tx_band, rx_band);
}

double Medium::link_loss_db(NodeId src, Band tx_band, NodeId dst, Band rx_band) const {
  if (src >= nodes_.size() || dst >= nodes_.size()) {
    // throws for the unknown node (and dst below if src is fine)
    static_cast<void>(node(src));
    static_cast<void>(node(dst));
  }
  if (fanout_parallel_) {
    // Parallel absorb phase: several listeners may probe links concurrently.
    // The cache memoizes a pure function, so bypassing it entirely keeps the
    // phase write-free (and race-free) while producing the identical double.
    return compute_link_loss_db(src, tx_band, dst, rx_band);
  }
  if (loss_cache_.empty()) loss_cache_.resize(kLossCacheSlots);
  const std::uint64_t h =
      mix64(((static_cast<std::uint64_t>(src) << 32) | dst) ^ band_bits(tx_band) ^
            (band_bits(rx_band) << 1));
  const std::uint64_t tag = h | 1;  // low bit set: 0 stays the empty marker
  LossCacheEntry& e = loss_cache_[(h >> 1) & (kLossCacheSlots - 1)];
  if (e.tag == tag) return e.loss_db;
  const double loss = compute_link_loss_db(src, tx_band, dst, rx_band);
  e = LossCacheEntry{tag, loss};
  return loss;
}

double Medium::rx_power_dbm(NodeId src, double tx_power_dbm, Band tx_band, NodeId dst,
                            Band rx_band) const {
  const double p = tx_power_dbm - link_loss_db(src, tx_band, dst, rx_band);
  return p < kFloorDbm ? kFloorDbm : p;
}

double Medium::rx_power_dbm(const ActiveTransmission& tx, NodeId dst, Band rx_band) const {
  return rx_power_dbm(tx.frame.src, tx.tx_power_dbm, tx.band, dst, rx_band);
}

double Medium::noise_floor_mw(Band band) const {
  for (const auto& [b, mw] : noise_mw_memo_) {
    if (b == band) return mw;
  }
  const double mw = dbm_to_mw(noise_floor_dbm(band));
  noise_mw_memo_.emplace_back(band, mw);
  return mw;
}

double Medium::energy_dbm(NodeId rx, Band rx_band, NodeId exclude_src) const {
  // Shared scratch + memo writes make this serial-only; radios answer their
  // MACs' CCA reads from their own running sums instead.
  check_not_absorbing("energy_dbm");
  double acc_mw = noise_floor_mw(rx_band);
  if (active_.empty()) return mw_to_dbm(acc_mw);
  const Position rx_pos = node(rx).pos;
  // Below the crossover the linear scan touches fewer cache lines than the
  // window does cell probes, so take it even when indexed: it visits a
  // superset of the window's candidates in the same ascending-TxId order
  // with the same skip chain, hence bitwise-identical sums.
  const std::size_t window_probes =
      static_cast<std::size_t>(2 * std::min<std::int64_t>(max_ring_, 128) + 1) *
      static_cast<std::size_t>(2 * std::min<std::int64_t>(max_ring_, 128) + 1);
  if (index_ == nullptr || active_.size() <= window_probes) {
    for (std::size_t i = 0; i < active_.size(); ++i) {
      const ActiveTransmission& tx = active_[i];
      if (tx.frame.src == rx || tx.frame.src == exclude_src) continue;
      if (tx.fault_dropped) continue;  // invisible to every other node
      if (!audible_at(tx_aux_[i].radius2, nodes_[tx.frame.src].pos, rx_pos)) continue;
      acc_mw += dbm_to_mw(rx_power_dbm(tx, rx, rx_band));
    }
    return mw_to_dbm(acc_mw);
  }
  // Gather candidate transmissions from the grid neighborhood. Sorting by
  // TxId recreates the exact iteration (and therefore FP summation) order of
  // the brute-force loop — active_ is ascending by id — and the dedupe
  // guards against a window visiting a bucket twice.
  energy_scratch_.clear();
  index_->for_each_in_window(index_->cell_of_node(rx), max_ring_, [this](NodeId n) {
    const auto& txs = node_active_tx_[n];
    energy_scratch_.insert(energy_scratch_.end(), txs.begin(), txs.end());
  });
  std::sort(energy_scratch_.begin(), energy_scratch_.end());
  energy_scratch_.erase(std::unique(energy_scratch_.begin(), energy_scratch_.end()),
                        energy_scratch_.end());
  std::size_t ai = 0;
  for (const TxId t : energy_scratch_) {
    while (ai < active_.size() && active_[ai].id < t) ++ai;
    if (ai == active_.size()) break;
    if (active_[ai].id != t) continue;
    const ActiveTransmission& tx = active_[ai];
    if (tx.frame.src == rx || tx.frame.src == exclude_src) continue;
    if (tx.fault_dropped) continue;  // invisible to every other node
    if (!audible_at(tx_aux_[ai].radius2, nodes_[tx.frame.src].pos, rx_pos)) continue;
    acc_mw += dbm_to_mw(rx_power_dbm(tx, rx, rx_band));
  }
  return mw_to_dbm(acc_mw);
}

double Medium::noise_floor_dbm(Band band) {
  if (band.width_mhz <= 0.0) throw std::invalid_argument("noise_floor_dbm: empty band");
  return -174.0 + 10.0 * std::log10(band.width_mhz * 1e6) + 6.0;
}

Duration Medium::airtime(Technology tech) const {
  const auto i = static_cast<std::size_t>(tech);
  return i < airtime_.size() ? airtime_[i] : Duration::zero();
}

Duration Medium::airtime_of(NodeId node_id) const {
  return node_id < node_airtime_.size() ? node_airtime_[node_id] : Duration::zero();
}

}  // namespace bicord::phy
