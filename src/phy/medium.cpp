#include "phy/medium.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

#include "phy/units.hpp"

namespace bicord::phy {

Medium::Medium(sim::Simulator& sim, PathLossModel path_loss)
    : sim_(sim), path_loss_(path_loss) {}

NodeId Medium::add_node(std::string name, Position pos) {
  nodes_.push_back(NodeEntry{std::move(name), pos});
  return static_cast<NodeId>(nodes_.size() - 1);
}

const Medium::NodeEntry& Medium::node(NodeId id) const {
  if (id >= nodes_.size()) throw std::out_of_range("Medium: unknown node id");
  return nodes_[id];
}

void Medium::set_position(NodeId id, Position pos) {
  if (id >= nodes_.size()) throw std::out_of_range("Medium: unknown node id");
  nodes_[id].pos = pos;
}

Position Medium::position(NodeId id) const { return node(id).pos; }

const std::string& Medium::node_name(NodeId id) const { return node(id).name; }

void Medium::attach(MediumListener* listener) {
  if (listener == nullptr) throw std::invalid_argument("Medium::attach: null listener");
  listeners_.push_back(listener);
}

void Medium::detach(MediumListener* listener) {
  listeners_.erase(std::remove(listeners_.begin(), listeners_.end(), listener),
                   listeners_.end());
}

TxId Medium::begin_tx(const Frame& frame, Band band, double tx_power_dbm,
                      Duration duration) {
  if (frame.src >= nodes_.size()) {
    throw std::invalid_argument("Medium::begin_tx: frame.src is not a registered node");
  }
  if (duration <= Duration::zero()) {
    throw std::invalid_argument("Medium::begin_tx: non-positive duration");
  }
  ActiveTransmission tx;
  tx.id = next_tx_id_++;
  tx.frame = frame;
  tx.band = band;
  tx.tx_power_dbm = tx_power_dbm;
  tx.start = sim_.now();
  tx.end = sim_.now() + duration;
  if (interceptor_ != nullptr) {
    switch (interceptor_->intercept(tx)) {
      case TxVerdict::Deliver:
        break;
      case TxVerdict::Corrupt:
        tx.fault_corrupted = true;
        break;
      case TxVerdict::Drop:
        tx.fault_dropped = true;
        break;
    }
  }
  active_.push_back(tx);

  airtime_[frame.tech] += duration;
  node_airtime_[frame.src] += duration;

  // Snapshot listeners: callbacks may attach/detach.
  const auto listeners = listeners_;
  for (auto* l : listeners) l->on_tx_start(tx);

  const TxId id = tx.id;
  sim_.at(tx.end, [this, id] { finish_tx(id); });
  return id;
}

void Medium::finish_tx(TxId id) {
  const auto it = std::find_if(active_.begin(), active_.end(),
                               [id](const ActiveTransmission& t) { return t.id == id; });
  if (it == active_.end()) return;  // defensive: already removed
  const ActiveTransmission tx = *it;
  active_.erase(it);
  const auto listeners = listeners_;
  for (auto* l : listeners) l->on_tx_end(tx);
}

double Medium::rx_power_dbm(NodeId src, double tx_power_dbm, Band tx_band, NodeId dst,
                            Band rx_band) const {
  const double d = distance(node(src).pos, node(dst).pos);
  // Link key is direction-independent so A->B and B->A shadow identically.
  const std::uint64_t lo = std::min(src, dst);
  const std::uint64_t hi = std::max(src, dst);
  const std::uint64_t link_key = (lo << 32) | hi;
  const double loss = path_loss_.mean_loss_db(d) + path_loss_.shadowing_db(link_key) +
                      overlap_loss_db(tx_band, rx_band);
  const double p = tx_power_dbm - loss;
  return p < kFloorDbm ? kFloorDbm : p;
}

double Medium::rx_power_dbm(const ActiveTransmission& tx, NodeId dst, Band rx_band) const {
  return rx_power_dbm(tx.frame.src, tx.tx_power_dbm, tx.band, dst, rx_band);
}

double Medium::energy_dbm(NodeId rx, Band rx_band, NodeId exclude_src) const {
  double acc_mw = dbm_to_mw(noise_floor_dbm(rx_band));
  for (const auto& tx : active_) {
    if (tx.frame.src == rx || tx.frame.src == exclude_src) continue;
    if (tx.fault_dropped) continue;  // invisible to every other node
    acc_mw += dbm_to_mw(rx_power_dbm(tx, rx, rx_band));
  }
  return mw_to_dbm(acc_mw);
}

double Medium::noise_floor_dbm(Band band) {
  if (band.width_mhz <= 0.0) throw std::invalid_argument("noise_floor_dbm: empty band");
  return -174.0 + 10.0 * std::log10(band.width_mhz * 1e6) + 6.0;
}

Duration Medium::airtime(Technology tech) const {
  const auto it = airtime_.find(tech);
  return it == airtime_.end() ? Duration::zero() : it->second;
}

Duration Medium::airtime_of(NodeId node_id) const {
  const auto it = node_airtime_.find(node_id);
  return it == node_airtime_.end() ? Duration::zero() : it->second;
}

}  // namespace bicord::phy
