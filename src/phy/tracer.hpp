#pragma once
// Transmission tracing: record everything that happens on the medium.
//
// A MediumTracer captures each transmission's timing, source, technology,
// kind, and band. The records can be exported as JSON-lines for external
// tooling, or rendered as an ASCII timeline that makes the coordination
// visible at a glance — Wi-Fi traffic pausing, ZigBee bursts filling the
// white space, the CTS that opened it.

#include <cstdint>
#include <iosfwd>
#include <string>
#include <vector>

#include "phy/medium.hpp"

namespace bicord::phy {

struct TxRecord {
  TimePoint start;
  TimePoint end;
  NodeId src = kInvalidNode;
  Technology tech = Technology::WiFi;
  FrameKind kind = FrameKind::Data;
  double band_center_mhz = 0.0;
  std::uint32_t bytes = 0;
};

class MediumTracer final : public MediumListener {
 public:
  /// Attaches to the medium immediately; records until destroyed or
  /// stop()ped. `capacity_hint` preallocates record storage.
  explicit MediumTracer(Medium& medium, std::size_t capacity_hint = 4096);
  ~MediumTracer();

  MediumTracer(const MediumTracer&) = delete;
  MediumTracer& operator=(const MediumTracer&) = delete;

  void stop();
  void clear() { records_.clear(); }
  [[nodiscard]] const std::vector<TxRecord>& records() const { return records_; }

  /// Keep only records overlapping [from, to].
  [[nodiscard]] std::vector<TxRecord> window(TimePoint from, TimePoint to) const;

  /// One JSON object per line:
  /// {"start_us":..,"end_us":..,"node":"..","tech":"..","kind":"..,...}
  void write_jsonl(std::ostream& os) const;

  /// ASCII timeline of [from, to]: one row per technology, `width` buckets;
  /// a bucket shows the dominant frame kind active in it (W=Wi-Fi data,
  /// C=CTS, Z=ZigBee data, s=control/signaling, A=ack, '.'=idle).
  [[nodiscard]] std::string render_timeline(TimePoint from, TimePoint to,
                                            std::size_t width = 100) const;

  // MediumListener:
  void on_tx_start(const ActiveTransmission& tx) override;
  void on_tx_end(const ActiveTransmission& tx) override;

 private:
  Medium& medium_;
  bool attached_ = false;
  std::vector<TxRecord> records_;
};

}  // namespace bicord::phy
