#pragma once
// RF power units and conversions.
//
// Powers are carried as plain `double` dBm throughout the library (strong
// typing here hurts more than it helps: dB arithmetic is pervasive), but all
// *combination* of powers goes through the helpers below so the linear/log
// distinction stays in one place.

#include <cmath>

namespace bicord::phy {

/// Received power below this is treated as "nothing" by all code paths.
inline constexpr double kFloorDbm = -120.0;

[[nodiscard]] inline double dbm_to_mw(double dbm) {
  // 10^(x/10) == 2^(x * log2(10)/10). exp2 is severalfold cheaper than the
  // general-base pow, and this conversion runs on every transmission edge.
  constexpr double kLog2TenOverTen = 0.33219280948873623;
  return std::exp2(dbm * kLog2TenOverTen);
}

[[nodiscard]] inline double mw_to_dbm(double mw) {
  if (mw <= 0.0) return kFloorDbm;
  return 10.0 * std::log10(mw);
}

/// Sum of two powers expressed in dBm (addition happens in linear domain).
[[nodiscard]] inline double combine_dbm(double a_dbm, double b_dbm) {
  return mw_to_dbm(dbm_to_mw(a_dbm) + dbm_to_mw(b_dbm));
}

/// Signal-to-interference-plus-noise ratio in dB.
[[nodiscard]] inline double sinr_db(double signal_dbm, double interference_dbm,
                                    double noise_dbm) {
  const double denom_mw = dbm_to_mw(interference_dbm) + dbm_to_mw(noise_dbm);
  return signal_dbm - mw_to_dbm(denom_mw);
}

}  // namespace bicord::phy
