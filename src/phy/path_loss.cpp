#include "phy/path_loss.hpp"

#include <cmath>

namespace bicord::phy {

double PathLossModel::mean_loss_db(double d_m) const {
  const double d = d_m < min_distance_m ? min_distance_m : d_m;
  return pl_d0_db + 10.0 * exponent * std::log10(d);
}

double PathLossModel::shadowing_db(std::uint64_t link_key) const {
  if (shadowing_sigma_db <= 0.0) return 0.0;
  // SplitMix64 scramble of the link key -> two uniform doubles -> Box-Muller.
  auto mix = [](std::uint64_t x) {
    x += 0x9E3779B97F4A7C15ULL;
    x = (x ^ (x >> 30)) * 0xBF58476D1CE4E5B9ULL;
    x = (x ^ (x >> 27)) * 0x94D049BB133111EBULL;
    return x ^ (x >> 31);
  };
  const std::uint64_t a = mix(link_key);
  const std::uint64_t b = mix(a);
  double u1 = static_cast<double>(a >> 11) * 0x1.0p-53;
  const double u2 = static_cast<double>(b >> 11) * 0x1.0p-53;
  if (u1 <= 0.0) u1 = 0x1.0p-53;
  const double z = std::sqrt(-2.0 * std::log(u1)) * std::cos(6.283185307179586 * u2);
  return shadowing_sigma_db * z;
}

}  // namespace bicord::phy
