#include "phy/spatial_index.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace bicord::phy {

namespace {
/// 64-bit finalizer (murmur3) — same avalanche as the medium's loss cache.
std::uint64_t mix64(std::uint64_t x) {
  x ^= x >> 33;
  x *= 0xff51afd7ed558ccdULL;
  x ^= x >> 33;
  x *= 0xc4ceb9fe1a85ec53ULL;
  x ^= x >> 33;
  return x;
}
}  // namespace

SpatialIndex::SpatialIndex(double cell_size_m) : cell_m_(cell_size_m) {
  if (!(cell_size_m > 0.0) || !std::isfinite(cell_size_m)) {
    throw std::invalid_argument("SpatialIndex: cell size must be positive and finite");
  }
  table_.assign(64, kNoCell);
}

std::uint32_t SpatialIndex::find_cell(std::uint64_t key) const {
  const std::size_t mask = table_.size() - 1;
  std::size_t i = mix64(key) & mask;
  while (table_[i] != kNoCell) {
    if (cells_[table_[i]].key == key) return table_[i];
    i = (i + 1) & mask;
  }
  return kNoCell;
}

std::uint32_t SpatialIndex::find_or_create(std::uint64_t key) {
  const std::uint32_t found = find_cell(key);
  if (found != kNoCell) return found;
  if ((cells_.size() + 1) * 2 > table_.size()) grow_table();
  const auto ci = static_cast<std::uint32_t>(cells_.size());
  cells_.push_back(Cell{key, {}});
  const std::size_t mask = table_.size() - 1;
  std::size_t i = mix64(key) & mask;
  while (table_[i] != kNoCell) i = (i + 1) & mask;
  table_[i] = ci;
  // Keep the flat map in step: a new cell is the only way the bbox (and
  // therefore the map geometry) can change.
  const auto cx = static_cast<std::int32_t>(key >> 32);
  const auto cy = static_cast<std::int32_t>(key & 0xFFFFFFFFu);
  expand_bbox(CellCoord{cx, cy});
  if (!grid_.empty()) {
    grid_[static_cast<std::size_t>((cy - min_cy_) * grid_w_ + (cx - min_cx_))] = ci;
  }
  return ci;
}

void SpatialIndex::grow_table() {
  table_.assign(table_.size() * 2, kNoCell);
  const std::size_t mask = table_.size() - 1;
  for (std::uint32_t ci = 0; ci < cells_.size(); ++ci) {
    std::size_t i = mix64(cells_[ci].key) & mask;
    while (table_[i] != kNoCell) i = (i + 1) & mask;
    table_[i] = ci;
  }
}

void SpatialIndex::expand_bbox(CellCoord c) {
  if (bbox_empty_) {
    bbox_empty_ = false;
    min_cx_ = max_cx_ = c.cx;
    min_cy_ = max_cy_ = c.cy;
    rebuild_grid();
    return;
  }
  if (c.cx >= min_cx_ && c.cx <= max_cx_ && c.cy >= min_cy_ && c.cy <= max_cy_) return;
  min_cx_ = std::min<std::int64_t>(min_cx_, c.cx);
  max_cx_ = std::max<std::int64_t>(max_cx_, c.cx);
  min_cy_ = std::min<std::int64_t>(min_cy_, c.cy);
  max_cy_ = std::max<std::int64_t>(max_cy_, c.cy);
  rebuild_grid();
}

void SpatialIndex::rebuild_grid() {
  if (!grid_ok_) return;
  const std::int64_t w = max_cx_ - min_cx_ + 1;
  const std::int64_t h = max_cy_ - min_cy_ + 1;
  if (w > kMaxGridCells || h > kMaxGridCells || w * h > kMaxGridCells) {
    // Outgrown: drop to hash probes for good (the bbox never shrinks).
    grid_ok_ = false;
    grid_.clear();
    grid_.shrink_to_fit();
    grid_w_ = 0;
    return;
  }
  grid_w_ = w;
  grid_.assign(static_cast<std::size_t>(w * h), kNoCell);
  for (std::uint32_t ci = 0; ci < cells_.size(); ++ci) {
    const auto cx = static_cast<std::int32_t>(cells_[ci].key >> 32);
    const auto cy = static_cast<std::int32_t>(cells_[ci].key & 0xFFFFFFFFu);
    grid_[static_cast<std::size_t>((cy - min_cy_) * grid_w_ + (cx - min_cx_))] = ci;
  }
}

void SpatialIndex::add_node(NodeId id, Position pos) {
  if (id != node_cell_.size()) {
    throw std::invalid_argument("SpatialIndex: node ids must be added densely");
  }
  const CellCoord c = cell_at(pos);
  node_cell_.push_back(c);
  cells_[find_or_create(pack(c.cx, c.cy))].nodes.push_back(id);
}

bool SpatialIndex::move_node(NodeId id, Position pos) {
  const CellCoord from = node_cell_[id];
  const CellCoord to = cell_at(pos);
  if (to == from) return false;
  auto& old_bucket = cells_[find_cell(pack(from.cx, from.cy))].nodes;
  const auto it = std::find(old_bucket.begin(), old_bucket.end(), id);
  // Swap-remove: bucket order is never observable (callers sort).
  *it = old_bucket.back();
  old_bucket.pop_back();
  node_cell_[id] = to;
  cells_[find_or_create(pack(to.cx, to.cy))].nodes.push_back(id);
  return true;
}

std::int64_t SpatialIndex::ring_for(double radius_m) const {
  if (!(radius_m >= 0.0)) return kMaxRing;  // NaN-safe
  const double cells = radius_m / cell_m_;
  if (!(cells < static_cast<double>(kMaxRing - 2))) return kMaxRing;
  return static_cast<std::int64_t>(cells) + 2;
}

}  // namespace bicord::phy
