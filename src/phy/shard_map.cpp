#include "phy/shard_map.hpp"

#include <algorithm>
#include <cmath>
#include <limits>
#include <stdexcept>

namespace bicord::phy {
namespace {

/// Mirrors the cell-size derivation in the Medium constructor so stripes
/// align with the index's cell geometry whether or not the index is enabled.
double derive_cell_size_m(const Medium& medium) {
  const MediumTuning& tuning = medium.tuning();
  if (tuning.cell_size_m > 0.0) return tuning.cell_size_m;
  const double r = medium.interference_radius_m(tuning.max_tx_power_dbm);
  return std::isfinite(r) ? std::max(r / 3.0, 1e-3) : 50.0;
}

}  // namespace

ShardPlan plan_shards(const Medium& medium, int shards,
                      Duration min_mac_turnaround) {
  if (shards < 1) throw std::invalid_argument("plan_shards: shards must be >= 1");
  const std::size_t n = medium.node_count();
  ShardPlan plan;
  plan.shards = shards;
  plan.node_shard.assign(n, 0);
  plan.lookahead = std::max(Duration::from_us(1), min_mac_turnaround);
  if (n == 0 || shards == 1) return plan;

  // Stripe by cell column: sort nodes by (cell x, node id), then cut into
  // `shards` stripes of roughly equal population, never splitting a column.
  const double cell_m = derive_cell_size_m(medium);
  std::vector<std::pair<std::int64_t, NodeId>> keyed;
  keyed.reserve(n);
  for (NodeId id = 0; id < n; ++id) {
    const auto col = static_cast<std::int64_t>(
        std::floor(medium.position(id).x / cell_m));
    keyed.emplace_back(col, id);
  }
  std::sort(keyed.begin(), keyed.end());
  const std::size_t target = (n + static_cast<std::size_t>(shards) - 1) /
                             static_cast<std::size_t>(shards);
  int shard = 0;
  std::size_t in_shard = 0;
  for (std::size_t i = 0; i < keyed.size(); ++i) {
    const bool column_edge = i == 0 || keyed[i].first != keyed[i - 1].first;
    if (column_edge && in_shard >= target && shard + 1 < shards) {
      ++shard;
      in_shard = 0;
    }
    plan.node_shard[keyed[i].second] = shard;
    ++in_shard;
  }

  // Cross-shard classification: any pair within one interference radius that
  // spans two shards makes medium-coupled events barrier-class (the model's
  // propagation is instantaneous, so their cross-shard latency is zero).
  const double radius =
      medium.interference_radius_m(medium.tuning().max_tx_power_dbm);
  const double radius2 = std::isfinite(radius)
                             ? radius * radius
                             : std::numeric_limits<double>::infinity();
  for (NodeId a = 0; a < n; ++a) {
    for (NodeId b = a + 1; b < n; ++b) {
      if (plan.node_shard[a] == plan.node_shard[b]) continue;
      if (distance2(medium.position(a), medium.position(b)) <= radius2) {
        ++plan.cross_shard_pairs;
      }
    }
  }
  plan.medium_coupled_barrier = plan.cross_shard_pairs > 0;
  return plan;
}

int shard_of(const ShardPlan& plan, NodeId node) {
  return node < plan.node_shard.size() ? plan.node_shard[node] : 0;
}

bool crosses_shards(const ShardPlan& plan, NodeId a, NodeId b) {
  return shard_of(plan, a) != shard_of(plan, b);
}

}  // namespace bicord::phy
