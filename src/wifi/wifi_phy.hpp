#pragma once
// IEEE 802.11 (2.4 GHz OFDM) timing parameters and airtime arithmetic.

#include <cstdint>

#include "util/time.hpp"

namespace bicord::wifi {

inline constexpr std::uint32_t kAckBytes = 14;
inline constexpr std::uint32_t kCtsBytes = 14;
inline constexpr std::uint32_t kMacOverheadBytes = 28;  ///< MAC hdr + FCS

/// ERP-OFDM (802.11g) timings.
struct PhyTimings {
  double data_rate_mbps = 24.0;   ///< rate for data payloads
  double basic_rate_mbps = 6.0;   ///< rate for ACK/CTS control frames
  Duration preamble = Duration::from_us(20);  ///< PLCP preamble + header
  Duration slot = Duration::from_us(9);
  Duration sifs = Duration::from_us(10);
  int cw_min = 15;
  int cw_max = 1023;

  [[nodiscard]] Duration difs() const { return sifs + 2 * slot; }
  [[nodiscard]] Duration pifs() const { return sifs + slot; }

  /// On-air duration of a PSDU of `bytes` (already including MAC overhead)
  /// at `rate_mbps`: preamble + whole 4 us OFDM symbols covering
  /// SERVICE(16) + 8*bytes + TAIL(6) bits.
  [[nodiscard]] Duration airtime(std::uint32_t bytes, double rate_mbps) const {
    const double bits = 16.0 + 8.0 * static_cast<double>(bytes) + 6.0;
    const double bits_per_symbol = rate_mbps * 4.0;  // symbol = 4 us
    const auto symbols =
        static_cast<std::int64_t>((bits + bits_per_symbol - 1.0) / bits_per_symbol);
    return preamble + Duration::from_us(symbols * 4);
  }

  [[nodiscard]] Duration data_airtime(std::uint32_t payload_bytes) const {
    return airtime(payload_bytes + kMacOverheadBytes, data_rate_mbps);
  }
  [[nodiscard]] Duration ack_airtime() const { return airtime(kAckBytes, basic_rate_mbps); }
  [[nodiscard]] Duration cts_airtime() const { return airtime(kCtsBytes, basic_rate_mbps); }
};

}  // namespace bicord::wifi
