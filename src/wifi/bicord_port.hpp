#pragma once
// wifi-side adapter for the core::GrantorMac seam.
//
// A thin, stateless forwarding shim: every virtual maps 1:1 onto one WifiMac
// call (protect() = a front-queued broadcast CTS whose NAV self-pauses the
// MAC), so the adapter neither schedules events nor draws RNG — the golden
// determinism suite pins scenario output bitwise across it.

#include <memory>

#include "core/ports.hpp"
#include "wifi/wifi_mac.hpp"

namespace bicord::wifi {

/// Wraps `mac` as the grantor-side port consumed by core's agents. The MAC
/// must outlive the returned port (the agents own the port, the scenario
/// owns the MAC).
[[nodiscard]] std::unique_ptr<core::GrantorMac> grantor_port(WifiMac& mac);

}  // namespace bicord::wifi
