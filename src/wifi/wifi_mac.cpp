#include "wifi/wifi_mac.hpp"

#include <algorithm>
#include <stdexcept>

#include "util/logging.hpp"

namespace bicord::wifi {

using phy::Frame;
using phy::FrameKind;
using phy::RxResult;

namespace {
phy::Radio::Config radio_config(const WifiMac::Config& cfg) {
  phy::Radio::Config rc;
  rc.tech = phy::Technology::WiFi;
  rc.band = phy::wifi_channel(cfg.channel);
  rc.sensitivity_dbm = -82.0;
  rc.sinr_threshold_db = 5.0;
  rc.sinr_width_db = 1.0;
  rc.fading_sigma_db = 1.0;
  // A 2 MHz ZigBee overlap inside the 20 MHz channel leaves enough capture
  // margin that OFDM mostly survives — the paper reports a 1-6 % Wi-Fi PRR
  // drop from ZigBee signaling, which at these link budgets emerges from
  // the raw SINR without an extra coding bonus.
  rc.narrowband_discount_db = 0.0;
  return rc;
}
}  // namespace

WifiMac::WifiMac(phy::Medium& medium, phy::NodeId node, Config config)
    : medium_(medium),
      sim_(medium.simulator()),
      node_(node),
      config_(config),
      radio_(medium, node, radio_config(config)),
      cca_rng_(medium.simulator().rng().split()) {
  radio_.set_rx_callback([this](const RxResult& rx) { handle_rx(rx); });
  radio_.set_activity_callback([this] { reevaluate(); });
}

void WifiMac::enqueue(const SendRequest& req) {
  // push_back(Attempt{...}), not emplace_back: Attempt is an aggregate, and
  // parenthesized aggregate init (P0960) needs Clang 16 — above our floor.
  queue_.push_back(Attempt{req, sim_.now(), next_seq_++, 0, config_.timings.cw_min, 0, false});
  maybe_start_attempt();
}

void WifiMac::enqueue_front(const SendRequest& req) {
  queue_.push_front(Attempt{req, sim_.now(), next_seq_++, 0, config_.timings.cw_min, 0, false});
  maybe_start_attempt();
}

void WifiMac::pause_for(Duration d) {
  const TimePoint until = sim_.now() + d;
  if (until <= pause_until_) return;
  pause_until_ = until;
  if (access_timer_ != sim::kInvalidEventId) {
    sim_.cancel(access_timer_);
    access_timer_ = sim::kInvalidEventId;
  }
  if (pause_timer_ != sim::kInvalidEventId) sim_.cancel(pause_timer_);
  pause_timer_ = sim_.at(pause_until_, [this] {
    pause_timer_ = sim::kInvalidEventId;
    const TimePoint ended = sim_.now();
    reevaluate();
    if (pause_end_cb_) pause_end_cb_(ended);
  });
}

bool WifiMac::paused() const { return pause_until_ > sim_.now(); }

void WifiMac::maybe_start_attempt() {
  if (current_ || queue_.empty()) return;
  current_ = queue_.front();
  queue_.pop_front();
  // Control-class frames (CTS reservations, CTC notifications) get expedited
  // access: no random backoff, PIFS spacing.
  if (current_->req.kind == FrameKind::Data) {
    current_->backoff_slots =
        static_cast<int>(sim_.rng().uniform_int(0, current_->cw));
  } else {
    current_->backoff_slots = 0;
  }
  reevaluate();
}

bool WifiMac::channel_busy() const {
  if (radio_.transmitting() || radio_.receiving()) return true;
  double energy = radio_.energy_dbm();
  if (config_.cca_noise_sigma_db > 0.0) {
    energy += cca_rng_.normal(0.0, config_.cca_noise_sigma_db);
  }
  return energy >= config_.ed_threshold_dbm;
}

TimePoint WifiMac::earliest_access_time() const {
  TimePoint t = sim_.now();
  if (pause_until_ > t) t = pause_until_;
  if (nav_until_ > t) t = nav_until_;
  return t;
}

void WifiMac::reevaluate() {
  if (!current_ || transmitting_ || awaiting_ack_) return;

  const bool busy = channel_busy();
  if (busy) {
    if (access_timer_ != sim::kInvalidEventId) {
      // Freeze: credit fully elapsed idle backoff slots.
      const Duration ifs = current_->req.kind == FrameKind::Data
                               ? config_.timings.difs()
                               : config_.timings.pifs();
      const Duration armed_for = access_timer_deadline_ - sim_.now();
      const Duration total = ifs + current_->backoff_slots * config_.timings.slot;
      const Duration elapsed = total - armed_for;
      if (elapsed > ifs) {
        const auto consumed =
            static_cast<int>((elapsed - ifs) / config_.timings.slot);
        current_->backoff_slots = std::max(0, current_->backoff_slots - consumed);
      }
      sim_.cancel(access_timer_);
      access_timer_ = sim::kInvalidEventId;
    }
    // The radio keeps sensing: with a noisy ED measurement a borderline
    // channel can read busy now and idle shortly after, so re-check on a
    // short timer rather than waiting for the next medium edge only.
    if (config_.cca_noise_sigma_db > 0.0 && recheck_timer_ == sim::kInvalidEventId) {
      recheck_timer_ = sim_.after(Duration::from_us(300), [this] {
        recheck_timer_ = sim::kInvalidEventId;
        reevaluate();
      });
    }
    return;
  }

  const TimePoint gate = earliest_access_time();
  if (gate > sim_.now()) {
    // Waiting out a pause or NAV; a timer for the gate is (re)armed lazily.
    if (gate_timer_ == sim::kInvalidEventId) {
      gate_timer_ = sim_.at(gate, [this] {
        gate_timer_ = sim::kInvalidEventId;
        reevaluate();
      });
    }
    return;
  }

  if (access_timer_ != sim::kInvalidEventId) return;  // already counting down

  const Duration ifs = current_->req.kind == FrameKind::Data ? config_.timings.difs()
                                                             : config_.timings.pifs();
  const Duration wait = ifs + current_->backoff_slots * config_.timings.slot;
  access_timer_deadline_ = sim_.now() + wait;
  access_timer_ = sim_.at(access_timer_deadline_, [this] {
    access_timer_ = sim::kInvalidEventId;
    access_timer_fired();
  });
}

void WifiMac::access_timer_fired() {
  if (!current_ || transmitting_ || awaiting_ack_) return;
  if (channel_busy() || earliest_access_time() > sim_.now()) {
    reevaluate();
    return;
  }
  start_transmission();
}

Duration WifiMac::frame_airtime(const SendRequest& req) const {
  switch (req.kind) {
    case FrameKind::Data:
      return config_.timings.data_airtime(req.payload_bytes);
    case FrameKind::Cts:
      return config_.timings.cts_airtime();
    default:
      // Notify (CTC broadcast) and other control payloads go at basic rate.
      return config_.timings.airtime(req.payload_bytes + kMacOverheadBytes,
                                     config_.timings.basic_rate_mbps);
  }
}

void WifiMac::start_transmission() {
  Frame frame;
  frame.tech = phy::Technology::WiFi;
  frame.kind = current_->req.kind;
  frame.src = node_;
  frame.dst = current_->req.dst;
  frame.bytes = current_->req.payload_bytes + kMacOverheadBytes;
  frame.seq = current_->seq;
  frame.nav = current_->req.nav;
  frame.tag = current_->req.priority;

  transmitting_ = true;
  radio_.transmit(frame, config_.tx_power_dbm, frame_airtime(current_->req),
                  [this] { on_tx_complete(); });
}

void WifiMac::on_tx_complete() {
  transmitting_ = false;
  // CTS-to-self / CTC notification: honour our own reservation.
  if ((current_->req.kind == FrameKind::Cts || current_->req.kind == FrameKind::Notify) &&
      current_->req.nav > Duration::zero()) {
    pause_for(current_->req.nav);
  }
  const bool wants_ack = config_.ack_data && current_->req.kind == FrameKind::Data &&
                         current_->req.dst != phy::kBroadcastNode;
  if (!wants_ack) {
    finish_attempt(true);
    return;
  }
  awaiting_ack_ = true;
  const Duration timeout = config_.timings.sifs + config_.timings.ack_airtime() +
                           Duration::from_us(30);
  ack_timer_ = sim_.after(timeout, [this] {
    ack_timer_ = sim::kInvalidEventId;
    ack_timeout_fired();
  });
}

void WifiMac::ack_timeout_fired() {
  awaiting_ack_ = false;
  ++current_->retries;
  if (current_->retries > config_.retry_limit) {
    finish_attempt(false);
    return;
  }
  current_->cw = std::min(config_.timings.cw_max, current_->cw * 2 + 1);
  current_->backoff_slots = static_cast<int>(sim_.rng().uniform_int(0, current_->cw));
  reevaluate();
}

void WifiMac::handle_rx(const RxResult& rx) {
  if (rx_hook_) rx_hook_(rx);
  if (!rx.success) return;
  const Frame& f = rx.frame;

  if (f.kind == FrameKind::Ack && f.dst == node_) {
    if (awaiting_ack_ && current_ && f.seq == current_->seq) {
      if (ack_timer_ != sim::kInvalidEventId) {
        sim_.cancel(ack_timer_);
        ack_timer_ = sim::kInvalidEventId;
      }
      awaiting_ack_ = false;
      finish_attempt(true);
    }
    return;
  }

  if (f.kind == FrameKind::Data && f.dst == node_ && config_.ack_data) {
    send_ack(f);
  }

  if ((f.kind == FrameKind::Cts || f.kind == FrameKind::Notify) &&
      f.nav > Duration::zero() && f.src != node_) {
    const TimePoint until = sim_.now() + f.nav;
    if (until > nav_until_) {
      nav_until_ = until;
      if (access_timer_ != sim::kInvalidEventId) {
        sim_.cancel(access_timer_);
        access_timer_ = sim::kInvalidEventId;
      }
      reevaluate();
    }
  }
}

void WifiMac::send_ack(const Frame& data) {
  Frame ack;
  ack.tech = phy::Technology::WiFi;
  ack.kind = FrameKind::Ack;
  ack.src = node_;
  ack.dst = data.src;
  ack.bytes = kAckBytes;
  ack.seq = data.seq;
  sim_.after(config_.timings.sifs, [this, ack] {
    // ACKs preempt contention but cannot preempt the radio itself.
    if (radio_.transmitting()) return;
    radio_.transmit(ack, config_.tx_power_dbm, config_.timings.ack_airtime());
  });
}

void WifiMac::finish_attempt(bool was_delivered) {
  SendOutcome outcome;
  outcome.frame.tech = phy::Technology::WiFi;
  outcome.frame.kind = current_->req.kind;
  outcome.frame.src = node_;
  outcome.frame.dst = current_->req.dst;
  outcome.frame.bytes = current_->req.payload_bytes + kMacOverheadBytes;
  outcome.frame.seq = current_->seq;
  outcome.frame.tag = current_->req.priority;
  outcome.delivered = was_delivered;
  outcome.retries = current_->retries;
  outcome.enqueued = current_->enqueued;
  outcome.completed = sim_.now();

  if (was_delivered) {
    ++delivered_;
  } else {
    ++dropped_;
  }
  current_.reset();
  if (sent_cb_) sent_cb_(outcome);
  maybe_start_attempt();
}

}  // namespace bicord::wifi
