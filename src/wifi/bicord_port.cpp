#include "wifi/bicord_port.hpp"

#include <utility>

namespace bicord::wifi {

namespace {

class GrantorPort final : public core::GrantorMac {
 public:
  explicit GrantorPort(WifiMac& mac) : mac_(mac) {}

  sim::Simulator& simulator() override { return mac_.simulator(); }
  phy::Medium& medium() override { return mac_.medium(); }
  phy::NodeId node() const override { return mac_.node(); }

  void protect(Duration nav) override {
    WifiMac::SendRequest cts;
    cts.dst = phy::kBroadcastNode;
    cts.kind = phy::FrameKind::Cts;
    cts.nav = nav;
    mac_.enqueue_front(cts);
  }

  bool reservation_active() const override { return mac_.paused(); }

  void set_resume_callback(std::function<void(TimePoint)> cb) override {
    mac_.set_pause_end_callback(std::move(cb));
  }

  void set_rx_hook(std::function<void(const phy::RxResult&)> hook) override {
    mac_.set_rx_hook(std::move(hook));
  }

 private:
  WifiMac& mac_;
};

}  // namespace

std::unique_ptr<core::GrantorMac> grantor_port(WifiMac& mac) {
  return std::make_unique<GrantorPort>(mac);
}

}  // namespace bicord::wifi
