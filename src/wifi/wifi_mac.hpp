#pragma once
// IEEE 802.11 DCF-style MAC: CSMA/CA with binary exponential backoff,
// energy-detect + preamble carrier sense, SIFS-spaced ACKs, NAV honoring
// (CTS reservations), and explicit pause support.
//
// The pause mechanism is how white spaces are realised: a coordination agent
// broadcasts a CTS whose `nav` field silences every other Wi-Fi MAC that
// decodes it, and calls pause_for() on its own MAC for the same period.

#include <cstdint>
#include <deque>
#include <functional>
#include <optional>

#include "phy/frame.hpp"
#include "phy/medium.hpp"
#include "phy/radio.hpp"
#include "sim/simulator.hpp"
#include "wifi/wifi_phy.hpp"

namespace bicord::wifi {

class WifiMac {
 public:
  struct Config {
    PhyTimings timings;
    /// Operating channel (paper: Wi-Fi channel 11 or 13).
    int channel = 11;
    double tx_power_dbm = 20.0;
    /// Energy-detect CCA threshold for non-Wi-Fi energy. Note: ED applies
    /// to the whole 20 MHz channel, so a 2 MHz ZigBee signal must be ~10 dB
    /// stronger than a Wi-Fi signal to trip it.
    double ed_threshold_dbm = -62.0;
    /// Measurement noise on each ED check (dB std-dev); > 0 softens the
    /// threshold into a logistic deferral probability, which is what real
    /// radios exhibit near the ED edge.
    double cca_noise_sigma_db = 0.0;
    int retry_limit = 7;
    /// Acknowledge unicast data (and retransmit on ACK timeout).
    bool ack_data = true;
  };

  struct SendRequest {
    phy::NodeId dst = phy::kBroadcastNode;
    std::uint32_t payload_bytes = 0;
    phy::FrameKind kind = phy::FrameKind::Data;
    Duration nav;       ///< reservation advertised in Cts/Notify frames
    int priority = 0;   ///< application tag copied into frame.tag
  };

  /// Outcome of a send: delivered (ACKed or broadcast sent) or dropped after
  /// retry exhaustion. `enqueued` enables delay accounting.
  struct SendOutcome {
    phy::Frame frame;
    bool delivered = false;
    int retries = 0;
    TimePoint enqueued;
    TimePoint completed;
  };

  using SentCallback = std::function<void(const SendOutcome&)>;
  /// Every successfully decoded frame (any dst) — feeds agents and the CSI
  /// extractor. Corrupted frames are also forwarded (success = false).
  using RxHook = std::function<void(const phy::RxResult&)>;
  /// Fires when an explicit pause (white space) elapses; the argument is the
  /// instant the pause ended. Coordination agents use this to start their
  /// end-of-burst silence timers.
  using PauseEndCallback = std::function<void(TimePoint)>;

  WifiMac(phy::Medium& medium, phy::NodeId node, Config config);

  WifiMac(const WifiMac&) = delete;
  WifiMac& operator=(const WifiMac&) = delete;

  [[nodiscard]] phy::NodeId node() const { return node_; }
  [[nodiscard]] phy::Radio& radio() { return radio_; }
  [[nodiscard]] const Config& config() const { return config_; }
  [[nodiscard]] sim::Simulator& simulator() { return sim_; }
  [[nodiscard]] phy::Medium& medium() { return medium_; }

  void set_sent_callback(SentCallback cb) { sent_cb_ = std::move(cb); }
  void set_rx_hook(RxHook cb) { rx_hook_ = std::move(cb); }
  void set_pause_end_callback(PauseEndCallback cb) { pause_end_cb_ = std::move(cb); }

  /// Queues a frame for transmission through the normal DCF procedure.
  void enqueue(const SendRequest& req);
  /// Queues at the front (used for time-critical CTS reservations).
  void enqueue_front(const SendRequest& req);

  /// Silences this MAC for `d` from now (white space / voluntary deferral).
  /// Pauses extend but never shorten an existing pause. Transmitting a Cts
  /// or Notify frame with a non-zero `nav` pauses the sender automatically
  /// for the advertised reservation (CTS-to-self semantics).
  void pause_for(Duration d);
  [[nodiscard]] bool paused() const;
  /// Instant until which this MAC honours a NAV set by an overheard CTS.
  [[nodiscard]] TimePoint nav_until() const { return nav_until_; }

  [[nodiscard]] std::size_t queue_depth() const { return queue_.size(); }

  // Stats.
  [[nodiscard]] std::uint64_t delivered() const { return delivered_; }
  [[nodiscard]] std::uint64_t dropped() const { return dropped_; }

 private:
  struct Attempt {
    SendRequest req;
    TimePoint enqueued;
    std::uint64_t seq = 0;
    int retries = 0;
    int cw = 0;
    int backoff_slots = 0;
    bool backoff_armed = false;
  };

  void maybe_start_attempt();
  /// Re-evaluates medium state; arms/disarms the access timer.
  void reevaluate();
  [[nodiscard]] bool channel_busy() const;
  [[nodiscard]] TimePoint earliest_access_time() const;
  void access_timer_fired();
  void start_transmission();
  void on_tx_complete();
  void ack_timeout_fired();
  void handle_rx(const phy::RxResult& rx);
  void send_ack(const phy::Frame& data);
  void finish_attempt(bool delivered);
  [[nodiscard]] Duration frame_airtime(const SendRequest& req) const;

  phy::Medium& medium_;
  sim::Simulator& sim_;
  phy::NodeId node_;
  Config config_;
  phy::Radio radio_;
  mutable Rng cca_rng_;

  std::deque<Attempt> queue_;
  std::optional<Attempt> current_;
  bool awaiting_ack_ = false;
  bool transmitting_ = false;
  sim::EventId access_timer_ = sim::kInvalidEventId;
  TimePoint access_timer_deadline_;
  sim::EventId ack_timer_ = sim::kInvalidEventId;
  sim::EventId gate_timer_ = sim::kInvalidEventId;
  sim::EventId pause_timer_ = sim::kInvalidEventId;
  sim::EventId recheck_timer_ = sim::kInvalidEventId;

  TimePoint pause_until_;
  TimePoint nav_until_;
  std::uint64_t next_seq_ = 1;

  SentCallback sent_cb_;
  RxHook rx_hook_;
  PauseEndCallback pause_end_cb_;

  std::uint64_t delivered_ = 0;
  std::uint64_t dropped_ = 0;
};

}  // namespace bicord::wifi
