#pragma once
// Wi-Fi application traffic sources.
//
// Three archetypes cover everything the paper evaluates:
//  * CbrSource — the evaluation's default "100-byte packets every 1 ms"
//    sender (Sec. VIII-A) that also clocks the receiver's CSI stream;
//  * SaturatedSource — backlogged file transfer for the channel-utilization
//    experiments (the MAC is always contending);
//  * PriorityScheduleSource — alternates high-priority (video) and
//    low-priority (file) periods for the Fig. 13 prioritization experiment.

#include <cstdint>

#include "sim/simulator.hpp"
#include "util/stats.hpp"
#include "wifi/wifi_mac.hpp"

namespace bicord::wifi {

/// Constant-bit-rate unicast data: one `payload_bytes` frame every `interval`.
class CbrSource {
 public:
  CbrSource(WifiMac& mac, phy::NodeId dst, std::uint32_t payload_bytes,
            Duration interval);

  void start();
  void stop();
  [[nodiscard]] std::uint64_t generated() const { return generated_; }

 private:
  WifiMac& mac_;
  phy::NodeId dst_;
  std::uint32_t payload_bytes_;
  sim::PeriodicTask task_;
  std::uint64_t generated_ = 0;
};

/// Backlogged sender: keeps `depth` frames queued at all times, refilling as
/// the MAC drains them. Models a large file transfer.
class SaturatedSource {
 public:
  SaturatedSource(WifiMac& mac, phy::NodeId dst, std::uint32_t payload_bytes,
                  int depth = 2);

  void start();
  void stop();
  [[nodiscard]] std::uint64_t generated() const { return generated_; }
  /// Chained: SaturatedSource installs itself as the MAC's sent callback and
  /// forwards outcomes here.
  void set_sent_callback(WifiMac::SentCallback cb) { forward_ = std::move(cb); }

 private:
  void refill();

  WifiMac& mac_;
  phy::NodeId dst_;
  std::uint32_t payload_bytes_;
  int depth_;
  bool running_ = false;
  std::uint64_t generated_ = 0;
  WifiMac::SentCallback forward_;
};

/// Saturated traffic alternating between high-priority (video, priority 1)
/// and low-priority (file transfer, priority 0) windows. Within each cycle
/// of length `cycle`, the first `high_share` fraction is high priority.
class PriorityScheduleSource {
 public:
  PriorityScheduleSource(WifiMac& mac, phy::NodeId dst, std::uint32_t payload_bytes,
                         double high_share, Duration cycle);

  void start();
  void stop();
  /// True while the source is inside a high-priority window — the BiCord
  /// agent consults this to decide whether to honour ZigBee requests.
  [[nodiscard]] bool high_priority_active() const;
  [[nodiscard]] std::uint64_t generated() const { return generated_; }
  void set_sent_callback(WifiMac::SentCallback cb) { forward_ = std::move(cb); }

 private:
  void refill();
  [[nodiscard]] int current_priority() const;

  WifiMac& mac_;
  phy::NodeId dst_;
  std::uint32_t payload_bytes_;
  double high_share_;
  Duration cycle_;
  bool running_ = false;
  TimePoint started_;
  std::uint64_t generated_ = 0;
  WifiMac::SentCallback forward_;
};

}  // namespace bicord::wifi
