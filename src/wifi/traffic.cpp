#include "wifi/traffic.hpp"

namespace bicord::wifi {

CbrSource::CbrSource(WifiMac& mac, phy::NodeId dst, std::uint32_t payload_bytes,
                     Duration interval)
    : mac_(mac),
      dst_(dst),
      payload_bytes_(payload_bytes),
      task_(mac.simulator(), interval, [this] {
        mac_.enqueue(WifiMac::SendRequest{dst_, payload_bytes_, phy::FrameKind::Data,
                                          Duration::zero(), 0});
        ++generated_;
      }) {}

void CbrSource::start() { task_.start_after(Duration::zero()); }

void CbrSource::stop() { task_.stop(); }

SaturatedSource::SaturatedSource(WifiMac& mac, phy::NodeId dst,
                                 std::uint32_t payload_bytes, int depth)
    : mac_(mac), dst_(dst), payload_bytes_(payload_bytes), depth_(depth) {}

void SaturatedSource::start() {
  running_ = true;
  mac_.set_sent_callback([this](const WifiMac::SendOutcome& outcome) {
    if (forward_) forward_(outcome);
    refill();
  });
  for (int i = 0; i < depth_; ++i) refill();
}

void SaturatedSource::stop() { running_ = false; }

void SaturatedSource::refill() {
  if (!running_) return;
  while (mac_.queue_depth() < static_cast<std::size_t>(depth_)) {
    mac_.enqueue(WifiMac::SendRequest{dst_, payload_bytes_, phy::FrameKind::Data,
                                      Duration::zero(), 0});
    ++generated_;
  }
}

PriorityScheduleSource::PriorityScheduleSource(WifiMac& mac, phy::NodeId dst,
                                               std::uint32_t payload_bytes,
                                               double high_share, Duration cycle)
    : mac_(mac),
      dst_(dst),
      payload_bytes_(payload_bytes),
      high_share_(high_share),
      cycle_(cycle) {}

void PriorityScheduleSource::start() {
  running_ = true;
  started_ = mac_.simulator().now();
  mac_.set_sent_callback([this](const WifiMac::SendOutcome& outcome) {
    if (forward_) forward_(outcome);
    refill();
  });
  refill();
  refill();
}

void PriorityScheduleSource::stop() { running_ = false; }

bool PriorityScheduleSource::high_priority_active() const {
  if (!running_) return false;
  const Duration into_cycle =
      Duration::from_us((mac_.simulator().now() - started_).us() % cycle_.us());
  return static_cast<double>(into_cycle.us()) <
         high_share_ * static_cast<double>(cycle_.us());
}

int PriorityScheduleSource::current_priority() const {
  return high_priority_active() ? 1 : 0;
}

void PriorityScheduleSource::refill() {
  if (!running_) return;
  // A real file transfer / video stream keeps a deep buffer queued at the
  // MAC; per-frame delay then reflects reservation overheads (Fig. 13).
  while (mac_.queue_depth() < 24) {
    mac_.enqueue(WifiMac::SendRequest{dst_, payload_bytes_, phy::FrameKind::Data,
                                      Duration::zero(), current_priority()});
    ++generated_;
  }
}

}  // namespace bicord::wifi
