#pragma once
// Synthetic CSI amplitude-jitter stream.
//
// The paper's Wi-Fi receiver (Intel 5300) extracts one CSI reading per
// received frame and watches the *jitter* of the amplitude sequence. Three
// regimes matter (Fig. 3):
//   (a) noise            — small jitter with occasional strong impulses,
//   (b) ZigBee overlap   — sustained high fluctuation while a ZigBee frame
//                          overlaps the Wi-Fi reception, strength governed
//                          by the interference-to-signal ratio (ISR),
//   (c) person mobility  — slow fading bursts that mimic (b) and cause the
//                          false positives measured in Fig. 12.
//
// CsiStream turns each completed Wi-Fi reception (phy::RxResult) into one
// CsiSample. Everything is per-receiver, seeded from the simulator RNG.

#include <functional>

#include "phy/radio.hpp"
#include "sim/simulator.hpp"
#include "util/rng.hpp"
#include "util/time.hpp"

namespace bicord::csi {

struct CsiSample {
  TimePoint time;
  double amplitude = 0.0;     ///< jitter metric (arbitrary units, ~[0, 1.5])
  bool zigbee_ground_truth = false;  ///< for evaluation only, never used by detectors
};

struct CsiModelParams {
  /// Rayleigh scale of the quiescent jitter.
  double base_sigma = 0.06;
  /// Probability that a sample carries a strong noise impulse.
  double impulse_prob = 0.006;
  /// Impulse amplitude range (uniform).
  double impulse_lo = 0.55;
  double impulse_hi = 1.2;
  /// Per-ZigBee-transmission *visibility*: whether a given ZigBee packet
  /// disturbs the CSI at all is a property of the momentary channel and is
  /// drawn once per packet — Bernoulli with probability
  /// logistic((ISR - mid) / slope), where ISR = zigbee_dbm - rssi_dbm.
  double visibility_mid_db = -9.0;
  double visibility_slope_db = 7.0;
  /// Within a visible packet, each overlapped CSI sample goes high with
  /// this probability.
  double visible_high_prob = 0.85;
  /// Amplitude range of ZigBee-induced fluctuation (uniform).
  double fluct_lo = 0.6;
  double fluct_hi = 1.4;
  /// Channel-estimator memory: after a ZigBee overlap ends, the disturbance
  /// probability decays by this factor per subsequent frame.
  double tail_decay = 0.45;
  /// The estimator fully re-converges during any reception gap longer than
  /// this (e.g. across a white space) — the tail does not survive pauses.
  Duration tail_reset_gap = Duration::from_ms(6);
  /// Person-mobility fading: mean rate of fade events and their length.
  double mobility_event_rate_hz = 0.0;
  Duration mobility_event_len = Duration::from_ms(120);
  double mobility_high_prob = 0.3;
};

class CsiStream {
 public:
  using SampleCallback = std::function<void(const CsiSample&)>;

  CsiStream(sim::Simulator& sim, CsiModelParams params);

  void set_sample_callback(SampleCallback cb) { callback_ = std::move(cb); }
  [[nodiscard]] const CsiModelParams& params() const { return params_; }
  void set_params(const CsiModelParams& p) {
    params_ = p;
    inv_visibility_slope_ = 1.0 / params_.visibility_slope_db;
  }

  /// Feed every completed Wi-Fi reception (the MAC rx hook) here; emits one
  /// CsiSample through the callback.
  void on_frame(const phy::RxResult& rx);

  /// Enables/disables the person-mobility disturbance process.
  void set_mobility(double event_rate_hz);

  /// Fault injection: discard every incoming frame (no CsiSample emitted)
  /// until `t` — models the CSI extraction pipeline stalling.
  void drop_until(TimePoint t);

  [[nodiscard]] std::uint64_t samples_emitted() const { return samples_; }
  [[nodiscard]] std::uint64_t samples_dropped() const { return dropped_; }

 private:
  [[nodiscard]] bool mobility_active();
  /// Refreshes the cached per-packet visibility draw when `rx` overlaps a
  /// ZigBee transmission not seen before (one Bernoulli per ZigBee packet).
  void update_visibility(const phy::RxResult& rx);

  sim::Simulator& sim_;
  CsiModelParams params_;
  double inv_visibility_slope_;  ///< 1 / params_.visibility_slope_db, cached
  Rng rng_;
  SampleCallback callback_;
  double tail_prob_ = 0.0;  ///< decaying post-overlap disturbance probability
  phy::TxId last_zigbee_tx_ = phy::kInvalidTx;
  bool last_visible_ = false;
  TimePoint last_frame_;
  TimePoint fade_start_;  ///< current-or-next mobility fade window
  TimePoint fade_until_;
  TimePoint drop_until_;  ///< fault injection: stream dead until here
  std::uint64_t samples_ = 0;
  std::uint64_t dropped_ = 0;
};

}  // namespace bicord::csi
