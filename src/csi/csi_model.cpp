#include "csi/csi_model.hpp"

#include <algorithm>
#include <cmath>

namespace bicord::csi {

CsiStream::CsiStream(sim::Simulator& sim, CsiModelParams params)
    : sim_(sim),
      params_(params),
      inv_visibility_slope_(1.0 / params.visibility_slope_db),
      rng_(sim.rng().split()) {}

void CsiStream::update_visibility(const phy::RxResult& rx) {
  if (rx.zigbee_overlap_tx == last_zigbee_tx_) return;
  last_zigbee_tx_ = rx.zigbee_overlap_tx;
  const double isr_db = rx.zigbee_overlap_dbm - rx.rssi_dbm;
  const double x = (isr_db - params_.visibility_mid_db) * inv_visibility_slope_;
  last_visible_ = rng_.bernoulli(1.0 / (1.0 + std::exp(-x)));
}

void CsiStream::set_mobility(double event_rate_hz) {
  params_.mobility_event_rate_hz = event_rate_hz;
  fade_start_ = fade_until_ = sim_.now();
}

bool CsiStream::mobility_active() {
  if (params_.mobility_event_rate_hz <= 0.0) return false;
  const TimePoint now = sim_.now();
  // Renewal process: always hold the current-or-next fade window
  // [fade_start_, fade_until_) and advance it lazily past `now`.
  while (fade_until_ <= now) {
    const Duration gap =
        Duration::from_sec_f(rng_.exponential(1.0 / params_.mobility_event_rate_hz));
    fade_start_ = fade_until_ + gap;
    fade_until_ = fade_start_ + params_.mobility_event_len;
  }
  return fade_start_ <= now;
}

void CsiStream::drop_until(TimePoint t) {
  if (t > drop_until_) drop_until_ = t;
}

void CsiStream::on_frame(const phy::RxResult& rx) {
  if (sim_.now() < drop_until_) {
    // Fault injection: the CSI pipeline is stalled; this frame yields no
    // sample and (like any reception gap) lets the estimator tail settle.
    ++dropped_;
    return;
  }
  // A long reception gap (white space, idle link) lets the channel
  // estimator settle: stale disturbance does not leak across pauses.
  if (sim_.now() - last_frame_ > params_.tail_reset_gap) tail_prob_ = 0.0;
  last_frame_ = sim_.now();

  CsiSample s;
  s.time = sim_.now();
  s.amplitude = rng_.rayleigh(params_.base_sigma);

  // Strong noise impulse (Fig. 3a): occasional, isolated.
  if (rng_.bernoulli(params_.impulse_prob)) {
    s.amplitude = std::max(s.amplitude,
                           rng_.uniform(params_.impulse_lo, params_.impulse_hi));
  }

  // ZigBee overlap (Fig. 3b-d): sustained while control packets are on air.
  if (rx.zigbee_overlap) {
    // Visibility is a per-packet channel property: drawn once per ZigBee
    // transmission, then every overlapped CSI sample of that packet is
    // disturbed with high probability.
    update_visibility(rx);
    if (last_visible_ && rng_.bernoulli(params_.visible_high_prob)) {
      s.amplitude = std::max(s.amplitude,
                             rng_.uniform(params_.fluct_lo, params_.fluct_hi));
      s.zigbee_ground_truth = true;
    }
    tail_prob_ = last_visible_ ? 0.3 : 0.0;
  } else if (tail_prob_ > 1e-3) {
    // Channel-estimator memory: the equaliser takes a few frames to settle
    // after the interferer disappears.
    if (rng_.bernoulli(tail_prob_)) {
      s.amplitude = std::max(s.amplitude,
                             rng_.uniform(params_.fluct_lo, params_.fluct_hi));
    }
    tail_prob_ *= params_.tail_decay;
  }

  // Person walking through the Fresnel zone (Fig. 12 scenario).
  if (mobility_active() && rng_.bernoulli(params_.mobility_high_prob)) {
    s.amplitude = std::max(s.amplitude,
                           rng_.uniform(params_.fluct_lo, params_.fluct_hi));
  }

  ++samples_;
  if (callback_) callback_(s);
}

}  // namespace bicord::csi
