#include "csi/csi_detector.hpp"

#include <stdexcept>

namespace bicord::csi {

CsiDetector::CsiDetector(DetectorParams params) : params_(params) {
  if (params_.n_required < 1) {
    throw std::invalid_argument("CsiDetector: n_required must be >= 1");
  }
  if (params_.window <= Duration::zero()) {
    throw std::invalid_argument("CsiDetector: window must be positive");
  }
}

void CsiDetector::add_sample(const CsiSample& sample) {
  ++seen_;
  if (sample.amplitude <= params_.threshold) return;
  ++high_;

  if (sample.time < quiet_until_) return;

  if (amplitude_only_) {
    fire(sample.time);
    return;
  }

  recent_high_.push_back(sample.time);
  const TimePoint cutoff = sample.time - params_.window;
  while (!recent_high_.empty() && recent_high_.front() < cutoff) {
    recent_high_.pop_front();
  }
  if (static_cast<int>(recent_high_.size()) >= params_.n_required) {
    fire(sample.time);
    recent_high_.clear();
  }
}

void CsiDetector::fire(TimePoint t) {
  if (t < suppress_until_) {
    // Fault injection: the detector "misses" this one (false negative).
    ++suppressed_;
    recent_high_.clear();
    return;
  }
  ++detections_;
  quiet_until_ = t + params_.refractory;
  if (callback_) callback_(t);
}

void CsiDetector::inject_detection(TimePoint t) {
  ++injected_;
  ++detections_;
  quiet_until_ = t + params_.refractory;
  recent_high_.clear();
  if (callback_) callback_(t);
}

void CsiDetector::suppress_until(TimePoint t) {
  if (t > suppress_until_) suppress_until_ = t;
}

void CsiDetector::reset() {
  recent_high_.clear();
  quiet_until_ = TimePoint::origin();
  suppress_until_ = TimePoint::origin();
  seen_ = high_ = detections_ = injected_ = suppressed_ = 0;
}

}  // namespace bicord::csi
