#pragma once
// BiCord's cross-technology signal detector (paper Sec. V).
//
// The Wi-Fi device classifies each CSI jitter sample as "slight jitter" or
// "high fluctuation" by amplitude threshold, then declares a ZigBee
// transmission when it finds N high-fluctuation samples within a sliding
// window of T — the *continuity* of the disturbance is what separates a
// ZigBee signal from isolated strong-noise impulses. No synchronisation
// with the ZigBee sender is needed; detection is the one-bit channel
// request.

#include <cstdint>
#include <deque>
#include <functional>

#include "csi/csi_model.hpp"
#include "util/time.hpp"

namespace bicord::csi {

struct DetectorParams {
  /// Amplitude above which a sample counts as "high fluctuation".
  double threshold = 0.45;
  /// N: high-fluctuation samples required ... (paper: N = 2)
  int n_required = 2;
  /// T: ... within this window (paper: T = 5 ms).
  Duration window = Duration::from_ms(5);
  /// Suppress further detections for this long after firing, so one control
  /// burst yields one channel request.
  Duration refractory = Duration::from_ms(8);
};

class CsiDetector {
 public:
  using DetectionCallback = std::function<void(TimePoint)>;

  explicit CsiDetector(DetectorParams params = DetectorParams{});

  void set_detection_callback(DetectionCallback cb) { callback_ = std::move(cb); }
  [[nodiscard]] const DetectorParams& params() const { return params_; }

  /// Feed CSI samples in time order; fires the callback on detection.
  void add_sample(const CsiSample& sample);

  /// Naive amplitude-only variant (ablation baseline): every high sample is
  /// a detection. Enabled instead of the continuity rule when set.
  void set_amplitude_only(bool enabled) { amplitude_only_ = enabled; }

  [[nodiscard]] std::uint64_t samples_seen() const { return seen_; }
  [[nodiscard]] std::uint64_t high_samples() const { return high_; }
  [[nodiscard]] std::uint64_t detections() const { return detections_; }

  // --- fault injection -------------------------------------------------------

  /// Forces a detection at `t` as if the continuity rule had fired (counts
  /// toward detections(), honours nothing — used to model false positives).
  void inject_detection(TimePoint t);
  /// Swallows every would-be detection until `t` (models false negatives).
  void suppress_until(TimePoint t);

  [[nodiscard]] std::uint64_t injected_detections() const { return injected_; }
  [[nodiscard]] std::uint64_t suppressed_detections() const { return suppressed_; }

  void reset();

 private:
  void fire(TimePoint t);

  DetectorParams params_;
  DetectionCallback callback_;
  std::deque<TimePoint> recent_high_;
  TimePoint quiet_until_;
  TimePoint suppress_until_;
  bool amplitude_only_ = false;
  std::uint64_t seen_ = 0;
  std::uint64_t high_ = 0;
  std::uint64_t detections_ = 0;
  std::uint64_t injected_ = 0;
  std::uint64_t suppressed_ = 0;
};

}  // namespace bicord::csi
