#pragma once
// zigbee-side adapter for the core::RequesterMac seam.
//
// A thin forwarding shim: every virtual maps 1:1 onto one ZigbeeMac call.
// The only logic it owns is the sent-callback filter (the port reports data
// frames only — control packets complete through their send_control `done`
// continuation), which is exactly the filter the pre-seam agent base
// installed itself. No events scheduled, no RNG drawn — the golden
// determinism suite pins scenario output bitwise across it.

#include <memory>

#include "core/ports.hpp"
#include "zigbee/zigbee_mac.hpp"

namespace bicord::zigbee {

/// Wraps `mac` as the requester-side port consumed by core's agents. The MAC
/// must outlive the returned port (the agents own the port, the scenario
/// owns the MAC).
[[nodiscard]] std::unique_ptr<core::RequesterMac> requester_port(ZigbeeMac& mac);

}  // namespace bicord::zigbee
