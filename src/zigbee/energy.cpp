#include "zigbee/energy.hpp"

#include <algorithm>

namespace bicord::zigbee {

EnergyMeter::EnergyMeter(sim::Simulator& sim, Currents currents)
    : sim_(sim), currents_(currents), state_since_(sim.now()) {}

void EnergyMeter::attach(phy::Radio& radio) {
  state_ = radio.state();
  state_since_ = sim_.now();
  radio.set_state_callback(
      [this](phy::RadioState prev, phy::RadioState next) { on_state(prev, next); });
}

double EnergyMeter::current_ma(phy::RadioState s) const {
  switch (s) {
    case phy::RadioState::Tx: {
      // Linear interpolation of PA draw between -25 dBm and 0 dBm settings.
      const double t = std::clamp((tx_power_dbm_ + 25.0) / 25.0, 0.0, 1.2);
      return currents_.tx_m25dbm_ma +
             t * (currents_.tx_0dbm_ma - currents_.tx_m25dbm_ma);
    }
    case phy::RadioState::Rx:
      return currents_.rx_ma;
    case phy::RadioState::Idle:
      return currents_.idle_ma;
    case phy::RadioState::Sleep:
      return currents_.sleep_ma;
  }
  return 0.0;
}

void EnergyMeter::settle() {
  const Duration dt = sim_.now() - state_since_;
  if (dt <= Duration::zero()) return;
  const double mj = current_ma(state_) * currents_.voltage_v * dt.sec();
  switch (state_) {
    case phy::RadioState::Tx: tx_mj_ += mj; break;
    case phy::RadioState::Rx: rx_mj_ += mj; break;
    case phy::RadioState::Idle: idle_mj_ += mj; break;
    case phy::RadioState::Sleep: sleep_mj_ += mj; break;
  }
  dwell_[static_cast<int>(state_)] += dt;
  state_since_ = sim_.now();
}

void EnergyMeter::on_state(phy::RadioState /*prev*/, phy::RadioState next) {
  settle();
  state_ = next;
}

void EnergyMeter::add_listen(Duration d) {
  if (d > Duration::zero()) rx_mj_ += currents_.rx_ma * currents_.voltage_v * d.sec();
}

double EnergyMeter::total_mj() const {
  // Include the unsettled tail of the current state.
  const Duration dt = sim_.now() - state_since_;
  const double tail = current_ma(state_) * currents_.voltage_v * dt.sec();
  return tx_mj_ + rx_mj_ + idle_mj_ + sleep_mj_ + tail;
}

Duration EnergyMeter::time_in(phy::RadioState s) const {
  Duration d = dwell_[static_cast<int>(s)];
  if (s == state_) d += sim_.now() - state_since_;
  return d;
}

void EnergyMeter::reset() {
  tx_mj_ = rx_mj_ = idle_mj_ = sleep_mj_ = 0.0;
  for (auto& d : dwell_) d = Duration::zero();
  state_since_ = sim_.now();
}

}  // namespace bicord::zigbee
