#pragma once
// IEEE 802.15.4 (2.4 GHz O-QPSK, 250 kbps) timing parameters.
//
// All the arithmetic the paper relies on falls out of these constants: a
// 50-byte-payload data frame occupies ~2.1 ms of air, a 120-byte BiCord
// control packet ~4.4 ms (long enough to span two back-to-back Wi-Fi frames),
// and an ACK 352 us.

#include <cstdint>

#include "util/time.hpp"

namespace bicord::zigbee {

inline constexpr std::int64_t kUsPerByte = 32;        ///< 250 kbps
inline constexpr std::uint32_t kPhyOverheadBytes = 6;  ///< preamble+SFD+len
inline constexpr std::uint32_t kMacOverheadBytes = 11; ///< MAC hdr + FCS
inline constexpr std::uint32_t kAckFrameBytes = 11;    ///< incl. PHY overhead

struct PhyTimings {
  Duration symbol = Duration::from_us(16);
  Duration backoff_period = Duration::from_us(320);  ///< aUnitBackoffPeriod
  Duration cca_duration = Duration::from_us(128);    ///< 8 symbols
  Duration turnaround = Duration::from_us(192);      ///< aTurnaroundTime
  Duration ack_wait = Duration::from_us(864);        ///< macAckWaitDuration
  int mac_min_be = 3;
  int mac_max_be = 5;
  int max_csma_backoffs = 4;

  /// On-air time of a data frame with `payload_bytes` of MAC payload.
  [[nodiscard]] Duration data_airtime(std::uint32_t payload_bytes) const {
    return Duration::from_us(
        static_cast<std::int64_t>(payload_bytes + kPhyOverheadBytes + kMacOverheadBytes) *
        kUsPerByte);
  }
  [[nodiscard]] Duration ack_airtime() const {
    return Duration::from_us(static_cast<std::int64_t>(kAckFrameBytes) * kUsPerByte);
  }
};

}  // namespace bicord::zigbee
