#include "zigbee/bicord_port.hpp"

#include <utility>

namespace bicord::zigbee {

// The port-level sentinel must stay interchangeable with the MAC's: agents
// pass core::kNoPowerOverride straight through send_data().
static_assert(core::kNoPowerOverride == ZigbeeMac::kNoOverride);

namespace {

class RequesterPort final : public core::RequesterMac {
 public:
  explicit RequesterPort(ZigbeeMac& mac) : mac_(mac) {}

  sim::Simulator& simulator() override { return mac_.simulator(); }
  phy::Medium& medium() override { return mac_.medium(); }
  phy::NodeId node() const override { return mac_.node(); }
  phy::Band band() const override { return mac_.radio().band(); }

  void wake_radio() override { mac_.radio().wake(); }
  bool radio_transmitting() const override { return mac_.radio().transmitting(); }
  bool channel_busy() override { return mac_.channel_busy(); }

  void set_data_outcome_callback(
      std::function<void(const core::DataOutcome&)> cb) override {
    mac_.set_sent_callback(
        [cb = std::move(cb)](const ZigbeeMac::SendOutcome& outcome) {
          if (outcome.frame.kind != phy::FrameKind::Data) return;
          cb(core::DataOutcome{outcome.delivered, outcome.completed});
        });
  }

  void send_data(phy::NodeId dst, std::uint32_t payload_bytes,
                 double power_dbm_override) override {
    ZigbeeMac::SendRequest req;
    req.dst = dst;
    req.payload_bytes = payload_bytes;
    req.kind = phy::FrameKind::Data;
    req.power_dbm_override = power_dbm_override;
    mac_.enqueue(req);
  }

  void send_control(std::uint32_t payload_bytes, double power_dbm,
                    std::function<void()> done) override {
    ZigbeeMac::SendRequest control;
    control.dst = phy::kBroadcastNode;
    control.payload_bytes = payload_bytes;
    control.kind = phy::FrameKind::Control;
    control.power_dbm_override = power_dbm;
    mac_.send_raw(control, std::move(done));
  }

  Duration data_exchange_airtime(std::uint32_t payload_bytes) const override {
    const auto& timings = mac_.config().timings;
    return timings.data_airtime(payload_bytes) + timings.turnaround +
           timings.ack_airtime();
  }

  void set_rx_hook(std::function<void(const phy::RxResult&)> hook) override {
    mac_.set_rx_hook(std::move(hook));
  }

 private:
  ZigbeeMac& mac_;
};

}  // namespace

std::unique_ptr<core::RequesterMac> requester_port(ZigbeeMac& mac) {
  return std::make_unique<RequesterPort>(mac);
}

}  // namespace bicord::zigbee
