#pragma once
// ZigBee application traffic: bursty sensor data.
//
// The paper's workloads (Sec. VIII) are bursts of N fixed-size packets whose
// inter-burst interval follows a Poisson process around a configured mean —
// "the conventional practice in real-world ZigBee implementations" (GreenOrbs
// measurement study). Bursts are handed to the coordination agent, which
// owns queueing and channel access.

#include <cstdint>
#include <functional>

#include "sim/simulator.hpp"
#include "util/rng.hpp"
#include "util/time.hpp"

namespace bicord::zigbee {

class BurstSource {
 public:
  struct Config {
    int packets_per_burst = 5;
    std::uint32_t payload_bytes = 50;
    Duration mean_interval = Duration::from_ms(200);
    /// Exponentially distributed intervals (Poisson arrivals) when true,
    /// fixed intervals otherwise.
    bool poisson = true;
  };

  /// Called once per burst with (packet count, payload size).
  using BurstCallback = std::function<void(int, std::uint32_t)>;

  BurstSource(sim::Simulator& sim, Config config);

  void set_burst_callback(BurstCallback cb) { callback_ = std::move(cb); }
  void start();
  void stop();
  [[nodiscard]] bool running() const { return event_ != sim::kInvalidEventId; }
  [[nodiscard]] std::uint64_t bursts_generated() const { return bursts_; }
  [[nodiscard]] const Config& config() const { return config_; }
  /// Takes effect from the next scheduled burst.
  void set_config(Config config) { config_ = config; }

 private:
  void arm();
  void fire();

  sim::Simulator& sim_;
  Config config_;
  Rng rng_;
  BurstCallback callback_;
  sim::EventId event_ = sim::kInvalidEventId;
  std::uint64_t bursts_ = 0;
};

}  // namespace bicord::zigbee
