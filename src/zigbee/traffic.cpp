#include "zigbee/traffic.hpp"

namespace bicord::zigbee {

BurstSource::BurstSource(sim::Simulator& sim, Config config)
    : sim_(sim), config_(config), rng_(sim.rng().split()) {}

void BurstSource::start() {
  stop();
  arm();
}

void BurstSource::stop() {
  if (event_ != sim::kInvalidEventId) {
    sim_.cancel(event_);
    event_ = sim::kInvalidEventId;
  }
}

void BurstSource::arm() {
  const Duration wait = config_.poisson ? rng_.exp_duration(config_.mean_interval)
                                        : config_.mean_interval;
  event_ = sim_.after(wait, [this] {
    event_ = sim::kInvalidEventId;
    fire();
  });
}

void BurstSource::fire() {
  ++bursts_;
  if (callback_) callback_(config_.packets_per_burst, config_.payload_bytes);
  arm();
}

}  // namespace bicord::zigbee
