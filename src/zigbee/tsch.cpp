#include "zigbee/tsch.hpp"

namespace bicord::zigbee {

TschHopSchedule::TschHopSchedule(sim::Simulator& sim, Config config)
    : sim_(sim), config_(std::move(config)) {
  if (config_.channels.empty()) config_.channels = {21, 22, 23, 24};
}

void TschHopSchedule::add_radio(phy::Radio& radio) {
  radios_.push_back(&radio);
  radio.retune(phy::zigbee_channel(current_channel()));
}

int TschHopSchedule::current_channel() const {
  return config_.channels[slot_ % config_.channels.size()];
}

void TschHopSchedule::start() {
  if (running_) return;
  running_ = true;
  event_ = sim_.after(config_.hop_period, [this] {
    event_ = sim::kInvalidEventId;
    hop_tick();
  });
}

void TschHopSchedule::stop() {
  running_ = false;
  if (event_ != sim::kInvalidEventId) {
    sim_.cancel(event_);
    event_ = sim::kInvalidEventId;
  }
}

void TschHopSchedule::hop_tick() {
  if (!running_) return;
  ++slot_;
  ++hops_;
  retune_all();
  event_ = sim_.after(config_.hop_period, [this] {
    event_ = sim::kInvalidEventId;
    hop_tick();
  });
}

void TschHopSchedule::retune_all() {
  const phy::Band band = phy::zigbee_channel(current_channel());
  // Lockstep retune: a frame already on the air keeps its original band on
  // the medium; a receiver retuned mid-reception loses the lock — exactly
  // the slot-boundary truncation a real TSCH link suffers, and the reason
  // the grantor's lease (not a resume notification) ends the grant.
  for (phy::Radio* r : radios_) r->retune(band);
}

TschRequester::TschRequester(std::unique_ptr<core::RequesterMac> mac,
                             phy::NodeId receiver, Config config)
    : ZigbeeAgentBase(std::move(mac), receiver),
      config_(config),
      engine_(*mac_, core::RequesterEngine::Config{config.signaling,
                                                   config.backoff_jitter,
                                                   /*give_up_after_ignored=*/0}) {
  max_attempts_ = 50;  // reliability first, like the BiCord requester
  engine_.set_backoff_resume([this] {
    if (state_ == State::Backoff) state_ = State::Idle;
    kick();
  });
}

void TschRequester::kick() {
  if (queue_empty()) {
    if (state_ == State::Draining) state_ = State::Idle;
    return;
  }
  if (state_ == State::Signaling || state_ == State::Backoff || pumping()) return;
  if (!mac_->channel_busy()) {
    // Optimistic probe: the current hop channel reads idle (white space, or
    // a hop that cleared the interferer). The ACK confirms the grant.
    state_ = State::Draining;
    pump_head(config_.data_power_dbm);
    return;
  }
  state_ = State::Signaling;
  engine_.begin_round();
  signal_step();
}

void TschRequester::signal_step() {
  if (queue_empty()) {
    state_ = State::Idle;
    return;
  }
  if (pumping()) return;  // a data probe is in flight; its outcome resumes us
  if (engine_.round_exhausted()) {
    const auto ignored = engine_.round_ignored();
    state_ = State::Backoff;
    engine_.schedule_backoff(ignored.backoff);
    return;
  }
  engine_.send_control(config_.signaling_power_dbm, [this] { gap_poll(0); });
}

void TschRequester::gap_poll(int idle_streak) {
  if (state_ != State::Signaling || pumping()) return;
  if (mac_->channel_busy()) {
    // Still occupied on this hop channel: next control packet after the gap.
    sim_.after(engine_.timer_jittered(config_.signaling.control_gap),
               [this] { signal_step(); });
    return;
  }
  if (idle_streak + 1 >= config_.idle_polls_to_probe) {
    pump_head(config_.data_power_dbm);
    return;
  }
  sim_.after(engine_.timer_jittered(config_.poll_gap),
             [this, idle_streak] { gap_poll(idle_streak + 1); });
}

void TschRequester::on_head_outcome(const core::DataOutcome& outcome) {
  const bool was_signaling = state_ == State::Signaling;
  if (outcome.delivered) {
    engine_.reset_streaks();
    state_ = State::Draining;
  } else if (!was_signaling) {
    state_ = State::Idle;
  }
  ZigbeeAgentBase::on_head_outcome(outcome);  // accounting + kick()
  if (was_signaling && !outcome.delivered && state_ == State::Signaling) {
    signal_step();
  }
}

}  // namespace bicord::zigbee
