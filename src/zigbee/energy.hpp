#pragma once
// CC2420-style energy accounting for a ZigBee node (TelosB mote).
//
// The meter integrates radio-state dwell times against datasheet current
// draws, with the transmit current interpolated over the PA power setting.
// Used to reproduce the Sec. VII-B energy-cost analysis.

#include <cstdint>

#include "core/ports.hpp"
#include "phy/radio.hpp"
#include "sim/simulator.hpp"
#include "util/time.hpp"

namespace bicord::zigbee {

/// Implements core::EnergyProbe so requester agents can report PA changes
/// and listen time without naming this concrete meter.
class EnergyMeter : public core::EnergyProbe {
 public:
  struct Currents {
    double tx_0dbm_ma = 17.4;   ///< PA at 0 dBm
    double tx_m25dbm_ma = 8.5;  ///< PA at -25 dBm (linear interp between)
    double rx_ma = 18.8;        ///< receive / listen (CCA, RSSI sampling)
    double idle_ma = 0.426;     ///< oscillator on, radio idle
    double sleep_ma = 0.02;
    double voltage_v = 3.0;
  };

  explicit EnergyMeter(sim::Simulator& sim) : EnergyMeter(sim, Currents{}) {}
  EnergyMeter(sim::Simulator& sim, Currents currents);

  /// Wire into a radio: meter.attach(radio) installs the state callback.
  void attach(phy::Radio& radio);

  /// The PA setting used for subsequent transmissions (interpolates current).
  void set_tx_power_dbm(double dbm) override { tx_power_dbm_ = dbm; }

  /// Credits extra receive-mode time not visible through radio states
  /// (e.g. RSSI sampling keeps the RF front-end in RX).
  void add_listen(Duration d) override;

  /// Total energy consumed so far, in millijoules.
  [[nodiscard]] double total_mj() const;
  [[nodiscard]] double tx_mj() const { return tx_mj_; }
  [[nodiscard]] double rx_mj() const { return rx_mj_; }
  [[nodiscard]] Duration time_in(phy::RadioState s) const;
  void reset();

 private:
  void on_state(phy::RadioState prev, phy::RadioState next);
  [[nodiscard]] double current_ma(phy::RadioState s) const;
  void settle();

  sim::Simulator& sim_;
  Currents currents_;
  double tx_power_dbm_ = 0.0;
  phy::RadioState state_ = phy::RadioState::Idle;
  TimePoint state_since_;
  double tx_mj_ = 0.0;
  double rx_mj_ = 0.0;
  double idle_mj_ = 0.0;
  double sleep_mj_ = 0.0;
  Duration dwell_[4] = {};
};

}  // namespace bicord::zigbee
