#pragma once
// Radio duty cycling for a ZigBee sender node.
//
// A battery-powered mote does not listen continuously: between activities
// the radio sleeps and only wakes for its own traffic (the paper's energy
// analysis assumes this — Sec. VII-B compares *active* radio energy, and
// notes that traditional approaches "keep sensing the channel", i.e. burn
// the RX current BiCord avoids). The DutyCycler puts the radio to sleep
// whenever the MAC has been idle for `idle_timeout` and wakes it when new
// work arrives; the energy meter then shows the sleep-current baseline the
// datasheet promises.

#include <functional>

#include "sim/simulator.hpp"
#include "zigbee/zigbee_mac.hpp"

namespace bicord::zigbee {

class DutyCycler {
 public:
  struct Config {
    /// Radio sleeps after this much continuous MAC idleness.
    Duration idle_timeout = Duration::from_ms(5);
  };

  explicit DutyCycler(ZigbeeMac& mac) : DutyCycler(mac, Config{}) {}
  DutyCycler(ZigbeeMac& mac, Config config);
  ~DutyCycler();

  DutyCycler(const DutyCycler&) = delete;
  DutyCycler& operator=(const DutyCycler&) = delete;

  /// Wakes the radio (no-op when awake). Call before submitting work.
  void wake();
  /// Optional extra business signal (e.g. an agent's backlog): while it
  /// returns true the radio stays awake even if the MAC looks idle.
  void set_busy_hook(std::function<bool()> hook) { busy_hook_ = std::move(hook); }
  /// Notifies the cycler that MAC activity just finished; re-arms the
  /// sleep timer.
  void activity();

  [[nodiscard]] bool sleeping() const;
  [[nodiscard]] std::uint64_t sleep_transitions() const { return sleeps_; }

 private:
  void arm();
  void maybe_sleep();

  ZigbeeMac& mac_;
  sim::Simulator& sim_;
  Config config_;
  std::function<bool()> busy_hook_;
  sim::EventId timer_ = sim::kInvalidEventId;
  std::uint64_t sleeps_ = 0;
};

}  // namespace bicord::zigbee
