#pragma once
// IEEE 802.15.4 unslotted CSMA/CA MAC with ACKs and retransmission, plus the
// "raw" transmit path BiCord needs: control packets are deliberately sent
// *without* clear-channel assessment so they overlap ongoing Wi-Fi frames —
// that overlap is the cross-technology signal.

#include <cstdint>
#include <deque>
#include <functional>
#include <optional>

#include "phy/frame.hpp"
#include "phy/medium.hpp"
#include "phy/radio.hpp"
#include "sim/simulator.hpp"
#include "zigbee/zigbee_phy.hpp"

namespace bicord::zigbee {

class ZigbeeMac {
 public:
  struct Config {
    PhyTimings timings;
    /// Operating channel (paper: 802.15.4 channel 24 or 26).
    int channel = 24;
    double tx_power_dbm = 0.0;
    /// CCA energy threshold (CC2420 default around -77 dBm).
    double cca_threshold_dbm = -77.0;
    int retry_limit = 3;
    bool ack_data = true;
  };

  struct SendRequest {
    phy::NodeId dst = phy::kBroadcastNode;
    std::uint32_t payload_bytes = 0;
    phy::FrameKind kind = phy::FrameKind::Data;
    /// Optional per-frame PA override (PowerMap-selected signaling power);
    /// NaN means "use Config::tx_power_dbm".
    double power_dbm_override = kNoOverride;
    std::int32_t tag = 0;
  };
  static constexpr double kNoOverride = -1000.0;

  struct SendOutcome {
    phy::Frame frame;
    bool delivered = false;          ///< ACKed (or sent, for broadcast/raw)
    bool channel_access_failure = false;  ///< CSMA gave up before airing once
    int retries = 0;
    TimePoint enqueued;
    TimePoint completed;
  };

  using SentCallback = std::function<void(const SendOutcome&)>;
  using RxHook = std::function<void(const phy::RxResult&)>;

  ZigbeeMac(phy::Medium& medium, phy::NodeId node, Config config);

  ZigbeeMac(const ZigbeeMac&) = delete;
  ZigbeeMac& operator=(const ZigbeeMac&) = delete;

  [[nodiscard]] phy::NodeId node() const { return node_; }
  [[nodiscard]] phy::Radio& radio() { return radio_; }
  [[nodiscard]] const Config& config() const { return config_; }
  [[nodiscard]] sim::Simulator& simulator() { return sim_; }
  [[nodiscard]] phy::Medium& medium() { return medium_; }

  void set_sent_callback(SentCallback cb) { sent_cb_ = std::move(cb); }
  void set_rx_hook(RxHook cb) { rx_hook_ = std::move(cb); }

  /// Queues a frame for CSMA/CA transmission.
  void enqueue(const SendRequest& req);
  /// Transmits immediately with no CCA and no ACK expectation — BiCord's
  /// cross-technology control packets. Throws if the radio is transmitting.
  /// `done` fires when the frame leaves the air.
  void send_raw(const SendRequest& req, std::function<void()> done = {});

  /// Energy-detect view of the channel (true = above CCA threshold).
  [[nodiscard]] bool channel_busy() const;
  /// True while any transmission work is pending or in flight (queued
  /// frames, a CSMA attempt, an awaited ACK) — duty cyclers must not sleep
  /// the radio then.
  [[nodiscard]] bool busy() const {
    return current_.has_value() || transmitting_ || awaiting_ack_ || !queue_.empty();
  }
  [[nodiscard]] double channel_energy_dbm() const { return radio_.energy_dbm(); }
  [[nodiscard]] std::size_t queue_depth() const { return queue_.size(); }
  /// Drops all queued frames (not the in-flight attempt).
  void flush_queue() { queue_.clear(); }

  // Stats.
  [[nodiscard]] std::uint64_t delivered() const { return delivered_; }
  [[nodiscard]] std::uint64_t dropped() const { return dropped_; }

 private:
  struct Attempt {
    SendRequest req;
    TimePoint enqueued;
    std::uint64_t seq = 0;
    int retries = 0;
    int nb = 0;  ///< CSMA backoff attempts this transmission
    int be = 3;
  };

  void maybe_start_attempt();
  void start_csma();
  void backoff_expired();
  void transmit_current();
  void on_tx_complete();
  void ack_timeout_fired();
  void handle_rx(const phy::RxResult& rx);
  void send_ack(const phy::Frame& data);
  void finish_attempt(bool delivered, bool access_failure);
  [[nodiscard]] double tx_power(const SendRequest& req) const;

  phy::Medium& medium_;
  sim::Simulator& sim_;
  phy::NodeId node_;
  Config config_;
  phy::Radio radio_;

  std::deque<Attempt> queue_;
  std::optional<Attempt> current_;
  bool awaiting_ack_ = false;
  bool transmitting_ = false;
  sim::EventId backoff_timer_ = sim::kInvalidEventId;
  sim::EventId ack_timer_ = sim::kInvalidEventId;
  std::uint64_t next_seq_ = 1;

  SentCallback sent_cb_;
  RxHook rx_hook_;

  std::uint64_t delivered_ = 0;
  std::uint64_t dropped_ = 0;
};

}  // namespace bicord::zigbee
