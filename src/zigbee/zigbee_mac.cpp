#include "zigbee/zigbee_mac.hpp"

#include <algorithm>
#include <stdexcept>

#include "util/logging.hpp"

namespace bicord::zigbee {

using phy::Frame;
using phy::FrameKind;
using phy::RxResult;

namespace {
phy::Radio::Config radio_config(const ZigbeeMac::Config& cfg) {
  phy::Radio::Config rc;
  rc.tech = phy::Technology::ZigBee;
  rc.band = phy::zigbee_channel(cfg.channel);
  rc.sensitivity_dbm = -95.0;  // CC2420 datasheet sensitivity
  // DSSS spreading gives robust decode a little above the noise floor.
  rc.sinr_threshold_db = 3.0;
  rc.sinr_width_db = 1.5;
  rc.fading_sigma_db = 1.5;
  return rc;
}
}  // namespace

ZigbeeMac::ZigbeeMac(phy::Medium& medium, phy::NodeId node, Config config)
    : medium_(medium),
      sim_(medium.simulator()),
      node_(node),
      config_(config),
      radio_(medium, node, radio_config(config)) {
  radio_.set_rx_callback([this](const RxResult& rx) { handle_rx(rx); });
}

double ZigbeeMac::tx_power(const SendRequest& req) const {
  return req.power_dbm_override == kNoOverride ? config_.tx_power_dbm
                                               : req.power_dbm_override;
}

bool ZigbeeMac::channel_busy() const {
  return radio_.energy_dbm() >= config_.cca_threshold_dbm;
}

void ZigbeeMac::enqueue(const SendRequest& req) {
  // push_back(Attempt{...}), not emplace_back: Attempt is an aggregate, and
  // parenthesized aggregate init (P0960) needs Clang 16 — above our floor.
  queue_.push_back(Attempt{req, sim_.now(), next_seq_++, 0, 0, config_.timings.mac_min_be});
  maybe_start_attempt();
}

void ZigbeeMac::send_raw(const SendRequest& req, std::function<void()> done) {
  if (radio_.transmitting()) throw std::logic_error("ZigbeeMac::send_raw: radio busy");
  Frame frame;
  frame.tech = phy::Technology::ZigBee;
  frame.kind = req.kind;
  frame.src = node_;
  frame.dst = req.dst;
  frame.bytes = req.payload_bytes + kPhyOverheadBytes + kMacOverheadBytes;
  frame.seq = next_seq_++;
  frame.tag = req.tag;
  radio_.transmit(frame, tx_power(req), config_.timings.data_airtime(req.payload_bytes),
                  std::move(done));
}

void ZigbeeMac::maybe_start_attempt() {
  if (current_ || queue_.empty()) return;
  if (transmitting_) return;  // raw frame in flight; resume on its completion
  current_ = queue_.front();
  queue_.pop_front();
  current_->nb = 0;
  current_->be = config_.timings.mac_min_be;
  start_csma();
}

void ZigbeeMac::start_csma() {
  const auto max_delay = (std::int64_t{1} << current_->be) - 1;
  const auto slots = sim_.rng().uniform_int(0, max_delay);
  const Duration wait = config_.timings.backoff_period * slots +
                        config_.timings.cca_duration;
  backoff_timer_ = sim_.after(wait, [this] {
    backoff_timer_ = sim::kInvalidEventId;
    backoff_expired();
  });
}

void ZigbeeMac::backoff_expired() {
  if (!current_) return;
  if (channel_busy() || radio_.transmitting() || radio_.receiving()) {
    ++current_->nb;
    current_->be = std::min(current_->be + 1, config_.timings.mac_max_be);
    if (current_->nb > config_.timings.max_csma_backoffs) {
      finish_attempt(false, true);
      return;
    }
    start_csma();
    return;
  }
  // Rx->Tx turnaround, then transmit.
  sim_.after(config_.timings.turnaround, [this] {
    if (!current_) return;
    if (channel_busy() || radio_.transmitting()) {
      // Preempted during turnaround (the ZigBee/Wi-Fi race the paper
      // describes: slow radios lose the channel while switching modes).
      ++current_->nb;
      current_->be = std::min(current_->be + 1, config_.timings.mac_max_be);
      if (current_->nb > config_.timings.max_csma_backoffs) {
        finish_attempt(false, true);
        return;
      }
      start_csma();
      return;
    }
    transmit_current();
  });
}

void ZigbeeMac::transmit_current() {
  Frame frame;
  frame.tech = phy::Technology::ZigBee;
  frame.kind = current_->req.kind;
  frame.src = node_;
  frame.dst = current_->req.dst;
  frame.bytes = current_->req.payload_bytes + kPhyOverheadBytes + kMacOverheadBytes;
  frame.seq = current_->seq;
  frame.tag = current_->req.tag;

  transmitting_ = true;
  radio_.transmit(frame, tx_power(current_->req),
                  config_.timings.data_airtime(current_->req.payload_bytes),
                  [this] { on_tx_complete(); });
}

void ZigbeeMac::on_tx_complete() {
  transmitting_ = false;
  if (!current_) {
    maybe_start_attempt();
    return;
  }
  const bool wants_ack = config_.ack_data && current_->req.kind == FrameKind::Data &&
                         current_->req.dst != phy::kBroadcastNode;
  if (!wants_ack) {
    finish_attempt(true, false);
    return;
  }
  awaiting_ack_ = true;
  ack_timer_ = sim_.after(config_.timings.ack_wait + config_.timings.ack_airtime(),
                          [this] {
                            ack_timer_ = sim::kInvalidEventId;
                            ack_timeout_fired();
                          });
}

void ZigbeeMac::ack_timeout_fired() {
  awaiting_ack_ = false;
  if (!current_) return;
  ++current_->retries;
  if (current_->retries > config_.retry_limit) {
    finish_attempt(false, false);
    return;
  }
  current_->nb = 0;
  current_->be = config_.timings.mac_min_be;
  start_csma();
}

void ZigbeeMac::handle_rx(const RxResult& rx) {
  if (rx_hook_) rx_hook_(rx);
  if (!rx.success) return;
  const Frame& f = rx.frame;

  if (f.kind == FrameKind::Ack && f.dst == node_) {
    if (awaiting_ack_ && current_ && f.seq == current_->seq) {
      if (ack_timer_ != sim::kInvalidEventId) {
        sim_.cancel(ack_timer_);
        ack_timer_ = sim::kInvalidEventId;
      }
      awaiting_ack_ = false;
      finish_attempt(true, false);
    }
    return;
  }

  if (f.kind == FrameKind::Data && f.dst == node_ && config_.ack_data) {
    send_ack(f);
  }
}

void ZigbeeMac::send_ack(const Frame& data) {
  Frame ack;
  ack.tech = phy::Technology::ZigBee;
  ack.kind = FrameKind::Ack;
  ack.src = node_;
  ack.dst = data.src;
  ack.bytes = kAckFrameBytes;
  ack.seq = data.seq;
  sim_.after(config_.timings.turnaround, [this, ack] {
    if (radio_.transmitting() || radio_.state() == phy::RadioState::Sleep) return;
    radio_.transmit(ack, config_.tx_power_dbm, config_.timings.ack_airtime());
  });
}

void ZigbeeMac::finish_attempt(bool was_delivered, bool access_failure) {
  SendOutcome outcome;
  outcome.frame.tech = phy::Technology::ZigBee;
  outcome.frame.kind = current_->req.kind;
  outcome.frame.src = node_;
  outcome.frame.dst = current_->req.dst;
  outcome.frame.bytes = current_->req.payload_bytes + kPhyOverheadBytes + kMacOverheadBytes;
  outcome.frame.seq = current_->seq;
  outcome.frame.tag = current_->req.tag;
  outcome.delivered = was_delivered;
  outcome.channel_access_failure = access_failure;
  outcome.retries = current_->retries;
  outcome.enqueued = current_->enqueued;
  outcome.completed = sim_.now();

  if (was_delivered) {
    ++delivered_;
  } else {
    ++dropped_;
  }
  current_.reset();
  if (sent_cb_) sent_cb_(outcome);
  maybe_start_attempt();
}

}  // namespace bicord::zigbee
