#pragma once
// 802.15.4e TSCH under BiCord: frequency agility on the requester side (the
// seam's fourth technology).
//
// A TSCH network walks a shared slotframe hopping sequence — every node
// retunes at each slot boundary, so interference on one channel only costs
// the slots that land there. Against a wideband Wi-Fi interferer that covers
// several hop channels at once (Wi-Fi ch 11 spans 802.15.4 ch 20-24),
// hopping alone does not help and the link falls back on BiCord signaling.
//
// What changes on the grantor side is only the grant-ending path: a hopping
// requester cannot be assumed to still be on (or even overhear) the granted
// channel when the protection ends, so the grantor runs the clock-bounded
// lease path (core::kTschTraits.lease_based) instead of flag + watchdog —
// selected purely through BiCordWifiAgent::Config::traits, zero engine or
// agent surgery.
//
// TschHopSchedule owns the shared slotframe clock and retunes every enrolled
// radio in lockstep; TschRequester is the requester agent: CCA-triggered
// signaling through the shared core::RequesterEngine, optimistic data probe
// on sustained silence, re-signal on delivery failure.

#include <cstdint>
#include <memory>
#include <vector>

#include "core/coordination_engine.hpp"
#include "core/protocol_params.hpp"
#include "core/zigbee_agent.hpp"
#include "phy/radio.hpp"
#include "phy/spectrum.hpp"
#include "sim/simulator.hpp"
#include "util/time.hpp"

namespace bicord::zigbee {

/// The shared slotframe: every enrolled radio hops to the same channel at
/// the same instant. Purely periodic — no RNG stream is consumed.
class TschHopSchedule {
 public:
  struct Config {
    /// Slot length; every slot boundary retunes to the next hop channel.
    Duration hop_period = Duration::from_ms(10);
    /// Hop sequence (802.15.4 channel numbers). The default keeps every hop
    /// inside Wi-Fi channel 11's 20 MHz, the paper's coexistence setting.
    std::vector<int> channels = {21, 22, 23, 24};
  };

  explicit TschHopSchedule(sim::Simulator& sim) : TschHopSchedule(sim, Config{}) {}
  TschHopSchedule(sim::Simulator& sim, Config config);

  /// Enrolls a radio; it is retuned immediately to the current hop channel
  /// and on every subsequent boundary. Radios must outlive the schedule.
  void add_radio(phy::Radio& radio);

  void start();
  void stop();

  [[nodiscard]] bool running() const { return running_; }
  [[nodiscard]] int current_channel() const;
  [[nodiscard]] std::uint64_t hops() const { return hops_; }
  [[nodiscard]] const Config& config() const { return config_; }

 private:
  void hop_tick();
  void retune_all();

  sim::Simulator& sim_;
  Config config_;
  std::vector<phy::Radio*> radios_;
  std::size_t slot_ = 0;
  bool running_ = false;
  sim::EventId event_ = sim::kInvalidEventId;
  std::uint64_t hops_ = 0;
};

/// Requester agent for a TSCH sender. Same shape as the BiCord ZigBee agent
/// minus the CTI-classification stage (the hop schedule already implies the
/// interferer is wideband — narrowband interferers would have been hopped
/// around): busy channel -> control-packet train -> optimistic data probe on
/// silence -> drain; delivery failure re-signals.
class TschRequester final : public core::ZigbeeAgentBase {
 public:
  struct Config {
    core::SignalingParams signaling;
    double data_power_dbm = 0.0;
    double signaling_power_dbm = 0.0;
    /// Channel poll spacing while waiting out the inter-control gap.
    Duration poll_gap = Duration::from_us(500);
    /// Consecutive idle polls before the agent probes a data packet.
    int idle_polls_to_probe = 3;
    /// Multiplicative jitter on the ignored-round backoff.
    double backoff_jitter = 0.25;
  };

  enum class State : std::uint8_t { Idle, Signaling, Draining, Backoff };

  /// Takes ownership of the requester port (see zigbee::requester_port).
  TschRequester(std::unique_ptr<core::RequesterMac> mac, phy::NodeId receiver,
                Config config);

  [[nodiscard]] State state() const { return state_; }
  [[nodiscard]] std::uint64_t control_packets_sent() const {
    return engine_.control_packets();
  }
  [[nodiscard]] std::uint64_t signaling_rounds() const {
    return engine_.signaling_rounds();
  }
  [[nodiscard]] std::uint64_t ignored_requests() const {
    return engine_.ignored_requests();
  }
  [[nodiscard]] std::uint64_t give_ups() const { return engine_.give_ups(); }

 protected:
  void kick() override;
  void on_head_outcome(const core::DataOutcome& outcome) override;

 private:
  void signal_step();
  void gap_poll(int idle_streak);

  Config config_;
  State state_ = State::Idle;
  core::RequesterEngine engine_;
};

}  // namespace bicord::zigbee
