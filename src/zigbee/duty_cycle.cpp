#include "zigbee/duty_cycle.hpp"

namespace bicord::zigbee {

DutyCycler::DutyCycler(ZigbeeMac& mac, Config config)
    : mac_(mac), sim_(mac.simulator()), config_(config) {
  arm();
}

DutyCycler::~DutyCycler() {
  if (timer_ != sim::kInvalidEventId) sim_.cancel(timer_);
}

bool DutyCycler::sleeping() const {
  return mac_.radio().state() == phy::RadioState::Sleep;
}

void DutyCycler::wake() {
  mac_.radio().wake();
  arm();
}

void DutyCycler::activity() { arm(); }

void DutyCycler::arm() {
  if (timer_ != sim::kInvalidEventId) sim_.cancel(timer_);
  timer_ = sim_.after(config_.idle_timeout, [this] {
    timer_ = sim::kInvalidEventId;
    maybe_sleep();
  });
}

void DutyCycler::maybe_sleep() {
  auto& radio = mac_.radio();
  // Only sleep when the MAC is genuinely quiet: nothing queued, nothing in
  // flight (including CSMA attempts and ACK waits), no reception locked.
  const bool externally_busy = busy_hook_ && busy_hook_();
  if (!externally_busy && !mac_.busy() && !radio.receiving() &&
      radio.state() == phy::RadioState::Idle) {
    radio.sleep();
    ++sleeps_;
    return;
  }
  arm();  // busy: check again later
}

}  // namespace bicord::zigbee
