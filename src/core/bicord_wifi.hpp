#pragma once
// BiCord's Wi-Fi-side agent (paper Sec. V, VI).
//
// Runs on the Wi-Fi device that *receives* the ongoing traffic (the CSI
// observer). Every decoded frame yields a CSI jitter sample; the detector's
// threshold + continuity rule turns a ZigBee control-packet overlap into a
// one-bit channel request. On a request the agent consults its policy (a
// device may ignore requests while carrying high-priority traffic), asks the
// adaptive allocator for a white-space length, and broadcasts a CTS whose
// NAV silences every Wi-Fi transmitter in range — the MAC self-pauses for
// the same period. After resuming, 20 ms without a further detection marks
// the end of the ZigBee burst and feeds the allocator's estimator.

#include <cstddef>
#include <cstdint>
#include <functional>

#include "core/grant_history.hpp"
#include "core/whitespace.hpp"
#include "sim/simulator.hpp"
#include "csi/csi_detector.hpp"
#include "csi/csi_model.hpp"
#include "wifi/wifi_mac.hpp"

namespace bicord::core {

class BiCordWifiAgent {
 public:
  struct Config {
    AllocatorParams allocator;
    csi::CsiModelParams csi;
    csi::DetectorParams detector;
    /// Extra reservation to cover the CTS airtime + turnaround.
    Duration grant_margin = Duration::from_us(500);
    /// Stale-grant watchdog: if the pause-end notification has not arrived
    /// this long after the granted NAV should have elapsed, the agent assumes
    /// the grant was lost (corrupted CTS, wedged MAC) and force-clears it.
    Duration watchdog_slack = Duration::from_ms(20);
    /// Most recent grants retained by grant_history() (all-time stats are
    /// kept regardless).
    std::size_t grant_history_capacity = 1024;
  };

  /// Returns true when the device is willing to grant a white space now.
  using Policy = std::function<bool()>;
  /// Observer for every grant (start, length) — drives Fig. 7.
  using GrantObserver = std::function<void(TimePoint, Duration)>;

  /// Fault hook: return true to swallow a pause-end notification (models a
  /// lost resume interrupt). Consulted only while a grant is outstanding.
  using PauseEndFilter = std::function<bool(TimePoint)>;
  /// Fault hook: perturb a relative timer delay (clock jitter).
  using TimerJitter = std::function<Duration(Duration)>;

  BiCordWifiAgent(wifi::WifiMac& mac, Config config);
  ~BiCordWifiAgent();

  BiCordWifiAgent(const BiCordWifiAgent&) = delete;
  BiCordWifiAgent& operator=(const BiCordWifiAgent&) = delete;

  void set_policy(Policy policy) { policy_ = std::move(policy); }
  void set_grant_observer(GrantObserver obs) { grant_observer_ = std::move(obs); }
  void set_pause_end_filter(PauseEndFilter filter) { pause_end_filter_ = std::move(filter); }
  void set_timer_jitter(TimerJitter jitter) { timer_jitter_ = std::move(jitter); }

  [[nodiscard]] const WhitespaceAllocator& allocator() const { return allocator_; }
  [[nodiscard]] csi::CsiStream& csi_stream() { return csi_; }
  [[nodiscard]] csi::CsiDetector& detector() { return detector_; }

  [[nodiscard]] std::uint64_t requests_detected() const { return requests_; }
  [[nodiscard]] std::uint64_t whitespaces_granted() const { return grants_; }
  [[nodiscard]] std::uint64_t requests_ignored() const { return ignored_; }
  /// Recent grants in order (capped window; all-time stats via total()/sum()).
  [[nodiscard]] const GrantHistory& grant_history() const { return grant_history_; }

  /// True while a CTS is queued or the granted white space is running.
  [[nodiscard]] bool grant_outstanding() const { return grant_outstanding_; }
  [[nodiscard]] TimePoint grant_started() const { return grant_started_; }
  /// Times the stale-grant watchdog had to force-clear a wedged grant.
  [[nodiscard]] std::uint64_t watchdog_recoveries() const { return watchdog_recoveries_; }

 private:
  void on_detection(TimePoint t);
  void on_pause_end(TimePoint t);
  void end_of_burst_check(TimePoint resume_time);
  void arm_watchdog(TimePoint deadline);
  void disarm_watchdog();
  void on_watchdog();
  [[nodiscard]] Duration jittered(Duration d) const;

  wifi::WifiMac& mac_;
  sim::Simulator& sim_;
  Config config_;
  WhitespaceAllocator allocator_;
  csi::CsiStream csi_;
  csi::CsiDetector detector_;
  Policy policy_;
  GrantObserver grant_observer_;
  PauseEndFilter pause_end_filter_;
  TimerJitter timer_jitter_;

  bool grant_outstanding_ = false;  ///< CTS queued or white space running
  TimePoint grant_started_;
  TimePoint last_detection_;
  sim::EventId watchdog_event_ = sim::kInvalidEventId;

  std::uint64_t requests_ = 0;
  std::uint64_t grants_ = 0;
  std::uint64_t ignored_ = 0;
  std::uint64_t watchdog_recoveries_ = 0;
  GrantHistory grant_history_;
};

}  // namespace bicord::core
