#pragma once
// BiCord's Wi-Fi-side agent (paper Sec. V, VI).
//
// Runs on the Wi-Fi device that *receives* the ongoing traffic (the CSI
// observer). Every decoded frame yields a CSI jitter sample; the detector's
// threshold + continuity rule turns a ZigBee control-packet overlap into a
// one-bit channel request. On a request the agent consults its policy (a
// device may ignore requests while carrying high-priority traffic), asks the
// adaptive allocator for a white-space length, and broadcasts a CTS whose
// NAV silences every Wi-Fi transmitter in range — the MAC self-pauses for
// the same period. After resuming, 20 ms without a further detection marks
// the end of the ZigBee burst and feeds the allocator's estimator.

#include <cstdint>
#include <functional>
#include <vector>

#include "core/whitespace.hpp"
#include "csi/csi_detector.hpp"
#include "csi/csi_model.hpp"
#include "wifi/wifi_mac.hpp"

namespace bicord::core {

class BiCordWifiAgent {
 public:
  struct Config {
    AllocatorParams allocator;
    csi::CsiModelParams csi;
    csi::DetectorParams detector;
    /// Extra reservation to cover the CTS airtime + turnaround.
    Duration grant_margin = Duration::from_us(500);
  };

  /// Returns true when the device is willing to grant a white space now.
  using Policy = std::function<bool()>;
  /// Observer for every grant (start, length) — drives Fig. 7.
  using GrantObserver = std::function<void(TimePoint, Duration)>;

  BiCordWifiAgent(wifi::WifiMac& mac, Config config);

  BiCordWifiAgent(const BiCordWifiAgent&) = delete;
  BiCordWifiAgent& operator=(const BiCordWifiAgent&) = delete;

  void set_policy(Policy policy) { policy_ = std::move(policy); }
  void set_grant_observer(GrantObserver obs) { grant_observer_ = std::move(obs); }

  [[nodiscard]] const WhitespaceAllocator& allocator() const { return allocator_; }
  [[nodiscard]] csi::CsiStream& csi_stream() { return csi_; }
  [[nodiscard]] csi::CsiDetector& detector() { return detector_; }

  [[nodiscard]] std::uint64_t requests_detected() const { return requests_; }
  [[nodiscard]] std::uint64_t whitespaces_granted() const { return grants_; }
  [[nodiscard]] std::uint64_t requests_ignored() const { return ignored_; }
  /// Every grant issued, in order (length only; timing via the observer).
  [[nodiscard]] const std::vector<Duration>& grant_history() const { return grant_history_; }

 private:
  void on_detection(TimePoint t);
  void on_pause_end(TimePoint t);
  void end_of_burst_check(TimePoint resume_time);

  wifi::WifiMac& mac_;
  sim::Simulator& sim_;
  Config config_;
  WhitespaceAllocator allocator_;
  csi::CsiStream csi_;
  csi::CsiDetector detector_;
  Policy policy_;
  GrantObserver grant_observer_;

  bool grant_outstanding_ = false;  ///< CTS queued or white space running
  TimePoint last_detection_;

  std::uint64_t requests_ = 0;
  std::uint64_t grants_ = 0;
  std::uint64_t ignored_ = 0;
  std::vector<Duration> grant_history_;
};

}  // namespace bicord::core
