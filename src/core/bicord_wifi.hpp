#pragma once
// BiCord's Wi-Fi-side agent (paper Sec. V, VI).
//
// Runs on the Wi-Fi device that *receives* the ongoing traffic (the CSI
// observer). Every decoded frame yields a CSI jitter sample; the detector's
// threshold + continuity rule turns a ZigBee control-packet overlap into a
// one-bit channel request. The grant loop itself — allocator consultation,
// policy refusal, grant history, end-of-burst estimation, and the
// stale-grant watchdog — is the shared core::CoordinationEngine; this agent
// contributes the Wi-Fi specifics: the CSI detection chain and the CTS whose
// NAV silences every Wi-Fi transmitter in range (the MAC self-pauses for the
// same period). After resuming, 20 ms without a further detection marks the
// end of the ZigBee burst and feeds the allocator's estimator.
//
// The grant-ending path follows the configured TechnologyTraits: flag-based
// grants (kWifiTraits) wait for the MAC's resume notification with the
// watchdog as backstop; lease-based traits (kTschTraits — a channel-hopping
// requester cannot be assumed to see the protection end) run the clock-
// bounded lease path instead, so the grant closes on the lease timer no
// matter what the requester's hop schedule does meanwhile.

#include <cstddef>
#include <cstdint>
#include <memory>

#include "core/coordination_engine.hpp"
#include "core/ports.hpp"
#include "core/technology_traits.hpp"
#include "core/whitespace.hpp"
#include "sim/simulator.hpp"
#include "csi/csi_detector.hpp"
#include "csi/csi_model.hpp"

namespace bicord::core {

class BiCordWifiAgent {
 public:
  struct Config {
    AllocatorParams allocator;
    csi::CsiModelParams csi;
    csi::DetectorParams detector;
    /// Grant-path selection (flag/watchdog vs clock-bounded lease) and log
    /// tag. Must outlive the agent (the k*Traits globals do).
    const TechnologyTraits* traits = &kWifiTraits;
    /// Extra reservation to cover the CTS airtime + turnaround.
    Duration grant_margin = kWifiTraits.grant_margin;
    /// Stale-grant watchdog: if the pause-end notification has not arrived
    /// this long after the granted NAV should have elapsed, the agent assumes
    /// the grant was lost (corrupted CTS, wedged MAC) and force-clears it.
    /// Flag-based traits only; lease-based grants expire on their own clock.
    Duration watchdog_slack = kWifiTraits.watchdog_slack;
    /// Most recent grants retained by grant_history() (all-time stats are
    /// kept regardless).
    std::size_t grant_history_capacity = 1024;
  };

  /// Returns true when the device is willing to grant a white space now.
  using Policy = CoordinationEngine::Policy;
  /// Observer for every grant (start, length) — drives Fig. 7.
  using GrantObserver = CoordinationEngine::GrantObserver;
  /// Fault hook: return true to swallow a pause-end notification (models a
  /// lost resume interrupt). Consulted only while a grant is outstanding.
  using PauseEndFilter = CoordinationEngine::ResumeFilter;
  /// Fault hook: perturb a relative timer delay (clock jitter).
  using TimerJitter = CoordinationEngine::TimerJitter;

  /// Takes ownership of the grantor port (see wifi::grantor_port).
  BiCordWifiAgent(std::unique_ptr<GrantorMac> mac, Config config);

  BiCordWifiAgent(const BiCordWifiAgent&) = delete;
  BiCordWifiAgent& operator=(const BiCordWifiAgent&) = delete;

  void set_policy(Policy policy) { engine_.set_policy(std::move(policy)); }
  void set_grant_observer(GrantObserver obs) {
    engine_.set_grant_observer(std::move(obs));
  }
  void set_pause_end_filter(PauseEndFilter filter) {
    engine_.set_resume_filter(std::move(filter));
  }
  void set_timer_jitter(TimerJitter jitter) {
    engine_.set_timer_jitter(std::move(jitter));
  }
  /// Fault hook: crystal-drift scale on every engine timer (watchdog
  /// included) — see CoordinationEngine::TimerSkew.
  void set_timer_skew(CoordinationEngine::TimerSkew skew) {
    engine_.set_timer_skew(std::move(skew));
  }

  /// Joins a multi-grantor election. `metric_dbm` is this grantor's stable
  /// election metric (mean received signaling power of the requester). While
  /// not the elected primary, detections are shadowed instead of granted;
  /// overheard CTS broadcasts from other grantors feed the election's
  /// protection tracking; and on takeover the election replays the pending
  /// request through this agent's normal grant path.
  void join_election(GrantorElection& election, double metric_dbm);

  /// Simulates the coordination process dying (burst churn kills the
  /// primary): while offline the agent neither detects, grants, nor shadows.
  /// The radio itself keeps running — only coordination is gone.
  void set_offline(bool offline) { offline_ = offline; }
  [[nodiscard]] bool offline() const { return offline_; }

  /// Requests observed-but-not-granted while a secondary grantor.
  [[nodiscard]] std::uint64_t requests_shadowed() const {
    return engine_.shadowed();
  }

  [[nodiscard]] const WhitespaceAllocator& allocator() const {
    return engine_.allocator();
  }
  [[nodiscard]] csi::CsiStream& csi_stream() { return csi_; }
  [[nodiscard]] csi::CsiDetector& detector() { return detector_; }

  [[nodiscard]] std::uint64_t requests_detected() const { return engine_.requests(); }
  [[nodiscard]] std::uint64_t whitespaces_granted() const { return engine_.grants(); }
  [[nodiscard]] std::uint64_t requests_ignored() const { return engine_.ignored(); }
  /// Recent grants in order (capped window; all-time stats via total()/sum()).
  [[nodiscard]] const GrantHistory& grant_history() const {
    return engine_.grant_history();
  }

  /// True while a CTS is queued or the granted white space is running.
  [[nodiscard]] bool grant_outstanding() const { return engine_.grant_active(); }
  [[nodiscard]] TimePoint grant_started() const { return engine_.grant_started(); }
  /// Times the stale-grant watchdog had to force-clear a wedged grant.
  [[nodiscard]] std::uint64_t watchdog_recoveries() const {
    return engine_.watchdog_recoveries();
  }

 private:
  void on_detection(TimePoint t);

  std::unique_ptr<GrantorMac> mac_;
  Config config_;
  CoordinationEngine engine_;
  csi::CsiStream csi_;
  csi::CsiDetector detector_;
  GrantorElection* election_ = nullptr;
  GrantorElection::MemberId member_ = 0;
  bool offline_ = false;
};

}  // namespace bicord::core
