#include "core/grantor_election.hpp"

#include <algorithm>

#include "util/logging.hpp"

namespace bicord::core {

GrantorElection::GrantorElection(sim::Simulator& sim, Duration grace,
                                 Duration handoff_margin,
                                 std::size_t grant_log_capacity)
    : sim_(sim),
      grace_(grace),
      handoff_margin_(handoff_margin),
      grant_log_capacity_(grant_log_capacity) {}

GrantorElection::~GrantorElection() { cancel_takeover_timer(); }

GrantorElection::MemberId GrantorElection::add_member(phy::NodeId node,
                                                      double metric_dbm,
                                                      TakeoverHook hook,
                                                      AliveCheck alive) {
  const MemberId id = members_.size();
  members_.push_back(Member{node, metric_dbm, std::move(hook), std::move(alive)});
  recompute_ranking();
  return id;
}

void GrantorElection::recompute_ranking() {
  ranked_.resize(members_.size());
  for (MemberId i = 0; i < members_.size(); ++i) ranked_[i] = i;
  std::sort(ranked_.begin(), ranked_.end(), [this](MemberId a, MemberId b) {
    if (members_[a].metric_dbm != members_[b].metric_dbm) {
      return members_[a].metric_dbm > members_[b].metric_dbm;
    }
    return members_[a].node < members_[b].node;
  });
  primary_ = ranked_.front();
}

void GrantorElection::on_request_observed(MemberId m, TimePoint t) {
  (void)m;
  ++requests_observed_;
  if (t < covered_until_) return;             // absorbed by a running protection
  if (any_grant_ && last_grant_at_ >= t) return;  // already answered
  if (takeover_event_ != sim::kInvalidEventId) return;  // grace clock running
  pending_request_ = t;
  takeover_event_ = sim_.after(grace_, [this] {
    takeover_event_ = sim::kInvalidEventId;
    on_takeover_timer();
  });
}

void GrantorElection::on_grant_issued(MemberId m, TimePoint t, Duration protection) {
  const TimePoint until = t + protection;
  grant_log_.push_back(GrantRecord{m, t, until});
  if (grant_log_.size() > grant_log_capacity_) {
    grant_log_.pop_front();
    ++grant_log_base_;
  }
  if (until > covered_until_) covered_until_ = until;
  last_grant_at_ = t;
  any_grant_ = true;
  if (!handoffs_.empty()) {
    HandoffRecord& h = handoffs_.back();
    if (!h.first_grant.has_value() && h.to == m && t >= h.takeover) {
      h.first_grant = t;
    }
  }
  cancel_takeover_timer();  // the pending request (if any) is being served
}

void GrantorElection::on_grant_shadowed(MemberId m, TimePoint t, Duration protection) {
  (void)m;
  ++shadowed_cts_;
  const TimePoint until = t + protection;
  if (until > covered_until_) covered_until_ = until;
  if (!any_grant_ || t > last_grant_at_) last_grant_at_ = t;
  any_grant_ = true;
  cancel_takeover_timer();  // the overheard CTS answers the pending request
}

void GrantorElection::on_takeover_timer() {
  if (any_grant_ && last_grant_at_ >= pending_request_) return;  // answered late
  const MemberId old = primary_;
  std::size_t pos = 0;
  for (std::size_t i = 0; i < ranked_.size(); ++i) {
    if (ranked_[i] == old) {
      pos = i;
      break;
    }
  }
  // Next *alive* member in rank order, wrapping past the silent primary. A
  // dead grantor never self-promotes, so succession skips it; wrapping all
  // the way back to an alive old primary re-arms its own grant path (it was
  // silent, not dead). With every member down there is nobody to promote.
  MemberId next = old;
  for (std::size_t step = 1; step <= ranked_.size(); ++step) {
    const MemberId cand = ranked_[(pos + step) % ranked_.size()];
    if (member_alive(cand)) {
      next = cand;
      break;
    }
  }
  if (next == old && !member_alive(old)) {
    BICORD_LOG(Warn, sim_.now(), "election",
               "takeover aborted: no alive successor for member " << old);
    return;
  }
  primary_ = next;
  ++takeovers_;
  handoffs_.push_back(
      HandoffRecord{pending_request_, sim_.now(), old, primary_, std::nullopt});
  BICORD_LOG(Warn, sim_.now(), "election",
             "takeover: member " << primary_ << " (node " << members_[primary_].node
                                 << ") replaces member " << old << " after "
                                 << grace_ << " of silence");
  const TakeoverHook& hook = members_[primary_].hook;
  if (hook) hook(sim_.now());  // replay the unanswered request
}

void GrantorElection::cancel_takeover_timer() {
  if (takeover_event_ == sim::kInvalidEventId) return;
  sim_.cancel(takeover_event_);
  takeover_event_ = sim::kInvalidEventId;
}

std::optional<Duration> GrantorElection::max_handoff_gap() const {
  std::optional<Duration> gap;
  for (const HandoffRecord& h : handoffs_) {
    if (!h.first_grant.has_value()) continue;
    const Duration g = *h.first_grant - h.request;
    if (!gap.has_value() || g > *gap) gap = g;
  }
  return gap;
}

}  // namespace bicord::core
