#pragma once
// Protocol constants from the paper, collected in one place.
//
// Sec. V:    control packets of 120 bytes; detector N = 2 within T = 5 ms.
// Sec. VI:   initial white space 30/40 ms; control duration T_c = 8 ms in the
//            estimator; end-of-burst gap 20 ms; re-estimation timer 10 s.
// Sec. VIII: Wi-Fi CBR 100 B / 1 ms; ZigBee bursts of 5 x 50 B.

#include <cstdint>

#include "util/time.hpp"

namespace bicord::core {

struct SignalingParams {
  /// Control packet payload — long enough to span two back-to-back Wi-Fi
  /// frames so at least one overlap is guaranteed.
  std::uint32_t control_payload_bytes = 120;
  /// Give up after this many unanswered control packets (the Wi-Fi device
  /// is ignoring the request or out of range).
  int max_control_packets = 8;
  /// Spacing between consecutive control packets.
  Duration control_gap = Duration::from_us(250);
  /// Back off this long after an ignored request before trying again.
  Duration ignored_backoff = Duration::from_ms(50);
};

struct AllocatorParams {
  /// Initial white space during the learning phase (the paper's "step",
  /// 30 or 40 ms).
  Duration initial_whitespace = Duration::from_ms(30);
  /// T_c: nominal duration of one signaling exchange, used in the
  /// conservative estimate T_est = (T_w - 2 T_c) * N_round.
  Duration control_duration = Duration::from_ms(8);
  /// Silence after Wi-Fi resumes that marks the end of a ZigBee burst.
  Duration end_of_burst_gap = Duration::from_ms(20);
  /// Expiry timer forcing periodic re-estimation (shrinking bursts would
  /// otherwise leave the white space permanently over-provisioned).
  Duration reestimate_period = Duration::from_sec(10);
  /// Safety cap on any single white space.
  Duration max_whitespace = Duration::from_ms(250);
};

}  // namespace bicord::core
