#pragma once
// The technology seam of the coordination core (paper Sec. V, VII-D).
//
// BiCord's request/grant loop is technology-agnostic: a requester signals,
// the grantor asks the adaptive allocator for a white space, protects the
// band for that long, and feeds burst boundaries back into the estimator.
// What differs between the Wi-Fi and BLE instantiations is *how* the band is
// protected and which timing constants the protection needs:
//
//   * Wi-Fi grants are a time-domain pause (a CTS NAV silences the BSS); the
//     grant ends when the MAC's pause-end notification fires, so the grantor
//     tracks an explicit outstanding flag plus a stale-grant watchdog for the
//     case where that notification is lost.
//   * BLE grants are spectral leases (the master drops the overlapping data
//     channels from its hopping map); the lease ends by clock, so "active"
//     is simply now < lease end and no watchdog is needed.
//
// A TechnologyTraits value captures exactly that difference; everything else
// lives once in core::CoordinationEngine / core::RequesterEngine.

#include "util/time.hpp"

namespace bicord::core {

struct TechnologyTraits {
  /// Short technology name, used in recovery log messages ("wifi watchdog:
  /// ..." — keep stable, tests and operators grep for it).
  const char* name;
  /// Log component tag for grant-path debug lines.
  const char* log_tag;
  /// Extra reservation on top of the allocator grant: CTS airtime +
  /// turnaround for Wi-Fi, hop-map propagation for BLE.
  Duration grant_margin;
  /// Stale-grant watchdog slack (flag-based grants only; unused for leases).
  Duration watchdog_slack;
  /// False: the grant is an explicit flag cleared by a resume notification
  /// (watchdog-guarded). True: the grant is a clock-bounded lease.
  bool lease_based;
};

inline constexpr TechnologyTraits kWifiTraits{
    "wifi", "bicord.wifi", Duration::from_us(500), Duration::from_ms(20), false};

inline constexpr TechnologyTraits kBleTraits{
    "ble", "bicord.ble", Duration::from_ms(2), Duration::zero(), true};

/// LTE-U eNB grantor: grants are duty-cycle suppressions. The eNB cannot
/// tell the requester when the suppression ends (it has no decodable
/// downlink to a ZigBee node), so the grant is a clock-bounded lease; the
/// margin covers the worst-case remainder of an ON burst already on the air
/// when the grant is issued.
inline constexpr TechnologyTraits kLteUTraits{
    "lteu", "bicord.lteu", Duration::from_ms(2), Duration::zero(), true};

/// 802.15.4e TSCH requester under a Wi-Fi grantor: the requester hops
/// channels on its own slotframe clock and cannot be assumed to observe the
/// protection end on whatever channel it has retuned to, so the grantor
/// runs the clock-bounded lease path. The margin covers CTS airtime plus a
/// hop-boundary retune.
inline constexpr TechnologyTraits kTschTraits{
    "tsch", "bicord.tsch", Duration::from_ms(1), Duration::zero(), true};

}  // namespace bicord::core
