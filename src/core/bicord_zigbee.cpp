#include "core/bicord_zigbee.hpp"

#include "util/logging.hpp"

namespace bicord::core {

namespace {
RequesterEngine::Config engine_config(const BiCordZigbeeAgent::Config& config) {
  RequesterEngine::Config ec;
  ec.signaling = config.signaling;
  ec.backoff_jitter = config.backoff_jitter;
  ec.give_up_after_ignored = config.give_up_after_ignored;
  return ec;
}
}  // namespace

BiCordZigbeeAgent::BiCordZigbeeAgent(std::unique_ptr<RequesterMac> mac,
                                     phy::NodeId receiver, Config config)
    : ZigbeeAgentBase(std::move(mac), receiver),
      config_(config),
      engine_(*mac_, engine_config(config)),
      sampler_(mac_->medium(), mac_->node(), mac_->band()) {
  max_attempts_ = 50;  // reliability first: BiCord keeps requesting channel
  engine_.set_pre_send([this] {
    if (meter_ != nullptr) meter_->set_tx_power_dbm(signaling_power_dbm_);
  });
  engine_.set_backoff_resume([this] {
    if (state_ == State::Backoff) state_ = State::Idle;
    kick();
  });
}

void BiCordZigbeeAgent::kick() {
  if (queue_empty()) {
    if (state_ == State::Draining || state_ == State::Idle ||
        state_ == State::CsmaFallback) {
      state_ = State::Idle;
    }
    return;
  }
  // Asynchronous phases complete on their own; Backoff has a pending event,
  // and an in-flight data probe reports back through on_head_outcome.
  if (state_ == State::Sampling || state_ == State::Signaling ||
      state_ == State::Backoff || pumping()) {
    return;
  }
  if (state_ == State::CsmaFallback) {
    if (sim_.now() < csma_deadline_) {
      pump_head(config_.data_power_dbm);  // plain CSMA, no signaling
      return;
    }
    // Fallback window over: return to normal coordination with a clean
    // slate (the Wi-Fi device may be willing to grant again).
    state_ = State::Idle;
    engine_.reset_streaks();
  }
  if (have_channel_) {
    state_ = State::Draining;
    pump_head(config_.data_power_dbm);
  } else {
    acquire();
  }
}

void BiCordZigbeeAgent::acquire() {
  // Cached Wi-Fi verdict: skip straight to signaling.
  if (cached_wifi_power_ && sim_.now() < cache_valid_until_) {
    start_signaling(*cached_wifi_power_);
    return;
  }
  if (!config_.use_cti_detection || classifier_ == nullptr || !classifier_->trained()) {
    // Detection disabled: optimistically try the channel once; failures fall
    // back to signaling via on_head_outcome.
    if (!mac_->channel_busy()) {
      state_ = State::Draining;
      pump_head(config_.data_power_dbm);
    } else {
      start_signaling(config_.default_signaling_power_dbm);
    }
    return;
  }
  state_ = State::Sampling;
  ++cti_samples_;
  if (meter_ != nullptr) {
    meter_->add_listen(Duration::from_us(25) * 200);
  }
  sampler_.capture([this](detect::RssiSegment segment) { on_segment(std::move(segment)); });
}

void BiCordZigbeeAgent::on_segment(detect::RssiSegment segment) {
  const auto verdict = classifier_->classify(segment);
  if (!verdict.has_value()) {
    // No activity: the channel is free (or we are inside a white space).
    state_ = State::Draining;
    have_channel_ = true;
    pump_head(config_.data_power_dbm);
    return;
  }
  if (*verdict != phy::Technology::WiFi) {
    // Bluetooth / microwave / foreign ZigBee: cross-technology signaling
    // cannot help; retry after a short backoff (paper: return to sleep).
    ++non_wifi_;
    enter_backoff(config_.non_wifi_backoff);
    return;
  }
  double power = config_.default_signaling_power_dbm;
  if (identifier_ != nullptr && identifier_->built()) {
    power = power_map_.power_for(identifier_->identify(segment));
  }
  cached_wifi_power_ = power;
  cache_valid_until_ = sim_.now() + config_.cti_cache;
  start_signaling(power);
}

void BiCordZigbeeAgent::start_signaling(double power_dbm) {
  state_ = State::Signaling;
  signaling_power_dbm_ = power_dbm;
  engine_.begin_round();
  signal_step();
}

void BiCordZigbeeAgent::signal_step() {
  if (queue_empty()) {
    state_ = State::Idle;
    return;
  }
  if (pumping()) return;  // a data probe is in flight; its outcome resumes us
  if (engine_.round_exhausted()) {
    // The Wi-Fi device is ignoring us (e.g. high-priority traffic): back
    // off exponentially so repeated refusals do not fill the air with
    // control packets.
    have_channel_ = false;
    const auto ignored = engine_.round_ignored();
    if (ignored.gave_up) {
      // Bounded give-up: signaling is clearly not being answered. Stop
      // burning control packets and drain what we can via plain CSMA.
      state_ = State::CsmaFallback;
      csma_deadline_ = sim_.now() + config_.csma_fallback_period;
      BICORD_LOG(Warn, sim_.now(), "fault.recovery",
                 "zigbee giving up after " << config_.give_up_after_ignored
                                           << " ignored rounds; CSMA fallback for "
                                           << config_.csma_fallback_period);
      pump_head(config_.data_power_dbm);
      return;
    }
    enter_backoff(ignored.backoff);
    return;
  }
  engine_.send_control(signaling_power_dbm_, [this] {
    if (meter_ != nullptr) meter_->set_tx_power_dbm(config_.data_power_dbm);
    gap_poll(0, 0, 0);
  });
}

void BiCordZigbeeAgent::gap_poll(int polls, int idle_streak, int busy_streak) {
  if (state_ != State::Signaling || pumping()) return;
  if (mac_->channel_busy()) {
    idle_streak = 0;
    ++busy_streak;
  } else {
    ++idle_streak;
    busy_streak = 0;
  }
  // Two consecutive idle reads spanning more than a Wi-Fi inter-frame gap:
  // the white space started — probe with the actual data packet; its ACK
  // confirms the grant (paper Sec. V).
  if (idle_streak >= 2) {
    pump_head(config_.data_power_dbm);
    return;
  }
  // Sustained busy reads: Wi-Fi is clearly still up, send the next control
  // packet. The streak is three because a granted CTS needs ~1 ms to win
  // the channel after our control packet ends — giving up after two reads
  // would waste a whole control packet exactly when the grant is arriving.
  if (busy_streak >= 3 || polls >= 6) {
    signal_step();
    return;
  }
  const Duration spacing = engine_.timer_jittered(Duration::from_us(300));
  sim_.after(spacing, [this, polls, idle_streak, busy_streak] {
    gap_poll(polls + 1, idle_streak, busy_streak);
  });
}

void BiCordZigbeeAgent::on_head_outcome(const DataOutcome& outcome) {
  if (state_ == State::CsmaFallback) {
    // Plain CSMA during the fallback window: a delivery is not a grant, so
    // only the base accounting (and its kick) applies.
    ZigbeeAgentBase::on_head_outcome(outcome);
    return;
  }
  const bool was_signaling = state_ == State::Signaling;
  if (outcome.delivered) {
    engine_.reset_streaks();
    have_channel_ = true;
    state_ = State::Draining;
  } else {
    have_channel_ = false;
    if (!was_signaling) state_ = State::Idle;
  }
  ZigbeeAgentBase::on_head_outcome(outcome);  // accounting + kick()
  if (was_signaling && !outcome.delivered && state_ == State::Signaling) {
    signal_step();
  }
}

void BiCordZigbeeAgent::enter_backoff(Duration d) {
  state_ = State::Backoff;
  engine_.schedule_backoff(d);
}

}  // namespace bicord::core
