#include "core/whitespace.hpp"

#include <algorithm>

namespace bicord::core {

WhitespaceAllocator::WhitespaceAllocator(AllocatorParams params) : params_(params) {}

void WhitespaceAllocator::maybe_expire(TimePoint now) {
  if (in_burst_) return;  // never re-estimate mid-burst
  if (now - last_reset_ >= params_.reestimate_period) reset(now);
}

Duration WhitespaceAllocator::on_request(TimePoint now) {
  maybe_expire(now);
  in_burst_ = true;
  ++rounds_this_burst_;
  if (!converged_) ++iterations_since_reset_;

  Duration grant;
  if (phase_ == AllocatorPhase::Learning) {
    grant = params_.initial_whitespace;
  } else if (rounds_this_burst_ == 1) {
    // Sanity clamp: contradictory event orderings (e.g. a fault-swallowed
    // burst end leaving a stale zero/negative estimate) must never produce
    // an unusable grant — fall back to the learning-step length.
    grant = estimate_ > Duration::zero() ? estimate_ : params_.initial_whitespace;
  } else {
    // The adjusted estimate fell short: serve the remainder with a
    // supplemental short white space. Whether the estimate itself grows is
    // decided at burst end (a single long burst can be a transient — e.g.
    // two Poisson bursts landing together — and must not ratchet the
    // steady-state reservation; see on_burst_end).
    grant = params_.initial_whitespace;
  }
  return std::min(grant, params_.max_whitespace);
}

void WhitespaceAllocator::on_burst_end(TimePoint /*now*/) {
  if (!in_burst_) return;
  int shortfall = rounds_this_burst_ - 1;
  if (phase_ == AllocatorPhase::Learning) {
    // Conservative estimate: subtract 2 T_c of signaling overhead per round.
    // Clamped: a fault-stretched learning burst (lost CTS forcing dozens of
    // rounds) must not ratchet the reservation past the configured cap.
    estimate_ = std::min(per_round_credit() * rounds_this_burst_, params_.max_whitespace);
    phase_ = AllocatorPhase::Adjusted;
    shortfall = 0;  // learning rounds are expected, not a shortfall signal
  } else if (shortfall == 0) {
    if (!converged_) {
      converged_ = true;
      iterations_to_converge_ = iterations_since_reset_;
    }
  }
  if (shortfall > 0) {
    ++shortfall_streak_;
    min_streak_shortfall_ = shortfall_streak_ == 1
                                ? shortfall
                                : std::min(min_streak_shortfall_, shortfall);
    // Only a *persistent* shortfall is a pattern change: isolated long
    // bursts (two Poisson bursts landing together) are served with
    // supplemental white spaces but must not ratchet the steady-state
    // reservation upward.
    if (shortfall_streak_ >= 3) {
      estimate_ = estimate_ + per_round_credit() * min_streak_shortfall_;
      if (estimate_ > params_.max_whitespace) estimate_ = params_.max_whitespace;
      converged_ = false;
      shortfall_streak_ = 0;
    }
  } else {
    shortfall_streak_ = 0;
  }
  in_burst_ = false;
  rounds_this_burst_ = 0;
}

void WhitespaceAllocator::reset(TimePoint now) {
  phase_ = AllocatorPhase::Learning;
  estimate_ = Duration::zero();
  rounds_this_burst_ = 0;
  shortfall_streak_ = 0;
  min_streak_shortfall_ = 0;
  iterations_since_reset_ = 0;
  iterations_to_converge_ = 0;
  converged_ = false;
  in_burst_ = false;
  last_reset_ = now;
}

}  // namespace bicord::core
