#pragma once
// Capped history of white-space grant lengths.
//
// BiCordWifiAgent records every grant it issues. An unbounded vector is fine
// for a 10 s run but not for chaos soaks or long --repeat sweeps, so the
// history keeps only the most recent `capacity` grants while maintaining
// running all-time summary statistics (count, sum, min, max) that cover every
// grant ever pushed, not just the retained window.

#include <algorithm>
#include <cstddef>
#include <cstdint>
#include <deque>

#include "util/time.hpp"

namespace bicord::core {

class GrantHistory {
 public:
  explicit GrantHistory(std::size_t capacity = 1024)
      : capacity_(capacity == 0 ? 1 : capacity) {}

  void push(Duration grant) {
    if (recent_.size() == capacity_) recent_.pop_front();
    recent_.push_back(grant);
    ++total_;
    sum_ += grant;
    if (total_ == 1) {
      min_ = max_ = grant;
    } else {
      min_ = std::min(min_, grant);
      max_ = std::max(max_, grant);
    }
  }

  // --- retained window (most recent `capacity` grants) ----------------------

  [[nodiscard]] std::size_t size() const { return recent_.size(); }
  [[nodiscard]] bool empty() const { return recent_.empty(); }
  [[nodiscard]] std::size_t capacity() const { return capacity_; }
  [[nodiscard]] Duration operator[](std::size_t i) const { return recent_[i]; }
  [[nodiscard]] auto begin() const { return recent_.begin(); }
  [[nodiscard]] auto end() const { return recent_.end(); }
  [[nodiscard]] Duration back() const { return recent_.back(); }

  // --- all-time summary (never forgets) -------------------------------------

  [[nodiscard]] std::uint64_t total() const { return total_; }
  [[nodiscard]] Duration sum() const { return sum_; }
  [[nodiscard]] Duration min() const { return min_; }
  [[nodiscard]] Duration max() const { return max_; }
  [[nodiscard]] double mean_ms() const {
    return total_ == 0 ? 0.0 : sum_.ms() / static_cast<double>(total_);
  }

  void clear() {
    recent_.clear();
    total_ = 0;
    sum_ = min_ = max_ = Duration::zero();
  }

 private:
  std::size_t capacity_;
  std::deque<Duration> recent_;
  std::uint64_t total_ = 0;
  Duration sum_;
  Duration min_;
  Duration max_;
};

}  // namespace bicord::core
