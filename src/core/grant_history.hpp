#pragma once
// Capped history of white-space grants (start instant + length).
//
// BiCordWifiAgent records every grant it issues. An unbounded vector is fine
// for a 10 s run but not for chaos soaks or long --repeat sweeps, so the
// history keeps only the most recent `capacity` grants while maintaining
// running all-time summary statistics (count, sum, min, max) that cover every
// grant ever pushed, not just the retained window.
//
// Each entry also carries the instant the grant was issued, so callers can
// ask whether a retained grant still protects the band at time t. The
// protection window is half-open — [start, start + length + margin) — which
// pins the tie semantics clock drift would otherwise hide: a grant ending
// exactly at the margin instant is already expired, matching the engine's
// strict `now < lease_until` lease check.

#include <algorithm>
#include <cstddef>
#include <cstdint>
#include <deque>
#include <iterator>

#include "util/time.hpp"

namespace bicord::core {

class GrantHistory {
 public:
  struct Entry {
    TimePoint start;
    Duration length;
  };

  explicit GrantHistory(std::size_t capacity = 1024)
      : capacity_(capacity == 0 ? 1 : capacity) {}

  /// Records a grant issued at `start` for `length` of white space.
  void push(TimePoint start, Duration length) {
    if (recent_.size() == capacity_) recent_.pop_front();
    recent_.push_back(Entry{start, length});
    ++total_;
    sum_ += length;
    if (total_ == 1) {
      min_ = max_ = length;
    } else {
      min_ = std::min(min_, length);
      max_ = std::max(max_, length);
    }
  }

  /// Length-only overload (start unknown / irrelevant — summary stats only).
  void push(Duration length) { push(TimePoint{}, length); }

  // --- retained window (most recent `capacity` grants) ----------------------

  [[nodiscard]] std::size_t size() const { return recent_.size(); }
  [[nodiscard]] bool empty() const { return recent_.empty(); }
  [[nodiscard]] std::size_t capacity() const { return capacity_; }
  /// Grant length of retained entry `i` (oldest first).
  [[nodiscard]] Duration operator[](std::size_t i) const {
    return recent_[i].length;
  }
  [[nodiscard]] TimePoint start(std::size_t i) const { return recent_[i].start; }
  [[nodiscard]] Duration back() const { return recent_.back().length; }

  /// Iterates grant *lengths* (oldest first), so `for (Duration g : history)`
  /// keeps working now that entries also carry the start instant.
  class const_iterator {
   public:
    using iterator_category = std::forward_iterator_tag;
    using value_type = Duration;
    using difference_type = std::ptrdiff_t;
    using pointer = const Duration*;
    using reference = Duration;

    explicit const_iterator(std::deque<Entry>::const_iterator it) : it_(it) {}
    Duration operator*() const { return it_->length; }
    const_iterator& operator++() {
      ++it_;
      return *this;
    }
    const_iterator operator++(int) {
      const_iterator copy = *this;
      ++it_;
      return copy;
    }
    bool operator==(const const_iterator& o) const { return it_ == o.it_; }
    bool operator!=(const const_iterator& o) const { return it_ != o.it_; }

   private:
    std::deque<Entry>::const_iterator it_;
  };
  [[nodiscard]] const_iterator begin() const {
    return const_iterator(recent_.begin());
  }
  [[nodiscard]] const_iterator end() const { return const_iterator(recent_.end()); }

  /// True while retained grant `i`, padded by the technology margin, still
  /// protects instant `t`: start <= t < start + length + margin. The end
  /// instant itself is expired, not active — the same strict inequality the
  /// engine's lease check uses, so both sides of the seam agree under drift.
  [[nodiscard]] bool covers(std::size_t i, TimePoint t, Duration margin) const {
    const Entry& e = recent_[i];
    return e.start <= t && t < e.start + e.length + margin;
  }
  /// Complement of covers() on the trailing edge: the grant has fully
  /// elapsed (including margin) at `t`.
  [[nodiscard]] bool expired(std::size_t i, TimePoint t, Duration margin) const {
    const Entry& e = recent_[i];
    return t >= e.start + e.length + margin;
  }

  // --- all-time summary (never forgets) -------------------------------------

  [[nodiscard]] std::uint64_t total() const { return total_; }
  [[nodiscard]] Duration sum() const { return sum_; }
  [[nodiscard]] Duration min() const { return min_; }
  [[nodiscard]] Duration max() const { return max_; }
  [[nodiscard]] double mean_ms() const {
    return total_ == 0 ? 0.0 : sum_.ms() / static_cast<double>(total_);
  }

  void clear() {
    recent_.clear();
    total_ = 0;
    sum_ = min_ = max_ = Duration::zero();
  }

 private:
  std::size_t capacity_;
  std::deque<Entry> recent_;
  std::uint64_t total_ = 0;
  Duration sum_;
  Duration min_;
  Duration max_;
};

}  // namespace bicord::core
