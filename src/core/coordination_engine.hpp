#pragma once
// Technology-agnostic halves of BiCord's coordination loop (paper Sec. V).
//
// CoordinationEngine is the grantor side: detect -> grant -> learn -> adjust
// -> expire. It owns the adaptive white-space allocator, the grant history,
// the request/grant/ignore counters, and the two ways a grant can end — a
// resume notification (flag-based grants, stale-grant watchdog included) or
// a lease expiry timer (clock-bounded leases). The technology agent supplies
// the detection events and the protection mechanics (queueing a CTS,
// dropping hop-map channels) and picks the behavior via TechnologyTraits.
//
// RequesterEngine is the requester side: signal -> wait -> transmit ->
// re-signal. It owns control-packet emission (raw, deliberately overlapping
// the interferer), round accounting, the bounded give-up ledger, and the
// jittered exponential backoff with its dedicated split RNG stream. The
// agent keeps its own acquisition state machine (CTI sampling, draining,
// CSMA fallback) and calls into the engine at each shared step.
//
// Determinism contract: every engine call keeps the exact event-scheduling
// and RNG-draw order of the pre-refactor agents — the golden determinism
// test pins scenario output bitwise across this seam.

#include <cstddef>
#include <cstdint>
#include <functional>
#include <optional>

#include "core/grant_history.hpp"
#include "core/grantor_election.hpp"
#include "core/ports.hpp"
#include "core/protocol_params.hpp"
#include "core/technology_traits.hpp"
#include "core/whitespace.hpp"
#include "sim/simulator.hpp"
#include "util/rng.hpp"

namespace bicord::core {

class CoordinationEngine {
 public:
  /// Returns true when the device is willing to grant a white space now.
  using Policy = std::function<bool()>;
  /// Observer for every grant (start, length) — drives Fig. 7.
  using GrantObserver = std::function<void(TimePoint, Duration)>;
  /// Fault hook: return true to swallow a resume notification (models a
  /// lost resume interrupt). Consulted only while a grant is active.
  using ResumeFilter = std::function<bool(TimePoint)>;
  /// Fault hook: perturb a relative timer delay (clock jitter).
  using TimerJitter = std::function<Duration(Duration)>;
  /// Fault hook: scale a relative timer delay by this node's crystal error
  /// (clock skew, ±ppm). Unlike TimerJitter it applies to *every* engine
  /// timer — watchdog and lease expiry included — because a drifted crystal
  /// mis-times exactly the deadlines the lease margins are sized for.
  using TimerSkew = std::function<Duration(Duration)>;
  /// Runs when a lease expires, before the end-of-burst check (the agent
  /// un-protects the band here).
  using ReleaseHook = std::function<void()>;

  CoordinationEngine(sim::Simulator& sim, const TechnologyTraits& traits,
                     AllocatorParams allocator, std::size_t history_capacity);
  ~CoordinationEngine();

  CoordinationEngine(const CoordinationEngine&) = delete;
  CoordinationEngine& operator=(const CoordinationEngine&) = delete;

  void set_policy(Policy policy) { policy_ = std::move(policy); }
  void set_grant_observer(GrantObserver obs) { grant_observer_ = std::move(obs); }
  void set_resume_filter(ResumeFilter filter) { resume_filter_ = std::move(filter); }
  void set_timer_jitter(TimerJitter jitter) { timer_jitter_ = std::move(jitter); }
  void set_timer_skew(TimerSkew skew) { timer_skew_ = std::move(skew); }
  void set_release_hook(ReleaseHook hook) { release_hook_ = std::move(hook); }

  /// Joins a multi-grantor election as `member`. While this engine is not the
  /// elected primary, on_request() shadows the request (books it to the
  /// election, grants nothing); while primary, every grant is reported so
  /// secondaries and the invariant checker can track the protection window.
  void set_election(GrantorElection* election, GrantorElection::MemberId member) {
    election_ = election;
    member_ = member;
  }

  /// A channel request arrived at `t`. Books the request; returns the
  /// allocator's white-space grant, or nullopt when the request is absorbed
  /// into the grant already running or refused by the policy. On a grant the
  /// agent protects the band and then calls begin_grant()+arm_watchdog() or
  /// begin_lease()+arm_lease_expiry().
  std::optional<Duration> on_request(TimePoint t);

  /// Flag-based grant: mark the grant outstanding as of `t`.
  void begin_grant(TimePoint t);
  /// The protected period ended (e.g. the MAC's pause-end fired at `t`):
  /// clear the grant and start the end-of-burst check.
  void on_resume(TimePoint t);
  /// Arm the stale-grant watchdog; if no resume arrives by `deadline` the
  /// grant is force-cleared (lost CTS, wedged MAC).
  void arm_watchdog(TimePoint deadline);

  /// Clock-bounded lease: record the lease window [now, now + lease).
  void begin_lease(TimePoint now, Duration lease);
  /// (Re-)arm the expiry timer for the current lease; on expiry the release
  /// hook runs, then the end-of-burst check.
  void arm_lease_expiry();

  [[nodiscard]] const WhitespaceAllocator& allocator() const { return allocator_; }
  [[nodiscard]] const GrantHistory& grant_history() const { return grant_history_; }
  [[nodiscard]] const TechnologyTraits& traits() const { return traits_; }

  /// True while the band is protected (outstanding flag or running lease).
  [[nodiscard]] bool grant_active() const;
  [[nodiscard]] TimePoint grant_started() const { return grant_started_; }

  [[nodiscard]] std::uint64_t requests() const { return requests_; }
  [[nodiscard]] std::uint64_t grants() const { return grants_; }
  [[nodiscard]] std::uint64_t ignored() const { return ignored_; }
  /// Requests booked while a secondary in a multi-grantor election (observed
  /// and reported, never granted).
  [[nodiscard]] std::uint64_t shadowed() const { return shadowed_; }
  [[nodiscard]] std::uint64_t watchdog_recoveries() const { return watchdog_recoveries_; }

 private:
  void disarm_watchdog();
  void on_watchdog();
  void on_lease_expired();
  /// Sustained silence after `resume_time` marks the end of the requester's
  /// burst and feeds the allocator's estimator.
  void end_of_burst_check(TimePoint resume_time);
  [[nodiscard]] Duration jittered(Duration d) const;
  [[nodiscard]] Duration skewed(Duration d) const;

  sim::Simulator& sim_;
  const TechnologyTraits& traits_;
  WhitespaceAllocator allocator_;
  GrantHistory grant_history_;
  Policy policy_;
  GrantObserver grant_observer_;
  ResumeFilter resume_filter_;
  TimerJitter timer_jitter_;
  TimerSkew timer_skew_;
  ReleaseHook release_hook_;
  GrantorElection* election_ = nullptr;
  GrantorElection::MemberId member_ = 0;

  bool grant_outstanding_ = false;  ///< flag-based grants only
  TimePoint lease_until_;           ///< clock-bounded leases only
  TimePoint grant_started_;
  TimePoint last_request_;
  sim::EventId watchdog_event_ = sim::kInvalidEventId;
  sim::EventId lease_event_ = sim::kInvalidEventId;

  std::uint64_t requests_ = 0;
  std::uint64_t grants_ = 0;
  std::uint64_t ignored_ = 0;
  std::uint64_t shadowed_ = 0;
  std::uint64_t watchdog_recoveries_ = 0;
};

class RequesterEngine {
 public:
  struct Config {
    SignalingParams signaling;
    /// Multiplicative jitter on every backoff (d * U(1-j, 1+j)), so repeated
    /// refusals from several nodes do not re-synchronise their retries.
    /// Drawn from a dedicated split RNG stream: deterministic per seed.
    double backoff_jitter = 0.0;
    /// Bounded give-up: after this many consecutive ignored signaling rounds
    /// round_ignored() reports gave_up instead of a backoff. 0 disables.
    int give_up_after_ignored = 0;
  };

  /// Books one ignored signaling round.
  struct IgnoredOutcome {
    bool gave_up;      ///< the give-up bound fired; streak reset
    Duration backoff;  ///< exponential backoff to wait (when !gave_up)
  };

  /// Fault hook: perturb a relative timer delay (clock jitter).
  using TimerJitter = std::function<Duration(Duration)>;

  /// `mac` is the requester-side port; the owning agent keeps it alive for
  /// the engine's whole lifetime.
  RequesterEngine(RequesterMac& mac, Config config);
  ~RequesterEngine();

  RequesterEngine(const RequesterEngine&) = delete;
  RequesterEngine& operator=(const RequesterEngine&) = delete;

  void set_timer_jitter(TimerJitter jitter) { timer_jitter_ = std::move(jitter); }
  /// Runs between the radio wake and the control-packet send (e.g. retune an
  /// energy meter to the signaling PA setting). Set once, before first use.
  void set_pre_send(std::function<void()> hook) { pre_send_ = std::move(hook); }
  /// Resume action for schedule_backoff() (agent state transition + kick).
  /// Set once, before first use.
  void set_backoff_resume(std::function<void()> resume) {
    backoff_resume_ = std::move(resume);
  }

  /// Starts a signaling round: resets the per-round control budget.
  void begin_round();
  /// True when the round's control budget is spent (the grantor is ignoring
  /// us, e.g. high-priority traffic).
  [[nodiscard]] bool round_exhausted() const;
  /// Emits one raw control packet at `power_dbm` (wakes the duty-cycled
  /// radio first) and runs `done` when the transmission completes.
  void send_control(double power_dbm, std::function<void()> done);
  /// Books an ignored round: bumps the capped backoff exponent and the
  /// give-up streak; returns either gave_up or the backoff to wait.
  IgnoredOutcome round_ignored();
  /// A delivery succeeded (or the fallback window closed): clear the
  /// ignored-round ledger.
  void reset_streaks();
  /// Cancels any pending backoff and schedules the resume callback after
  /// jittered(d).
  void schedule_backoff(Duration d);

  /// Timer-jitter-only perturbation for fixed poll spacings (no RNG draw).
  [[nodiscard]] Duration timer_jittered(Duration d) const;

  [[nodiscard]] std::uint64_t control_packets() const { return control_packets_; }
  [[nodiscard]] std::uint64_t signaling_rounds() const { return signaling_rounds_; }
  [[nodiscard]] std::uint64_t ignored_requests() const { return ignored_requests_; }
  [[nodiscard]] std::uint64_t give_ups() const { return give_ups_; }

 private:
  [[nodiscard]] Duration jittered(Duration d);

  RequesterMac& mac_;
  sim::Simulator& sim_;
  Config config_;
  Rng rng_;  ///< jitter draws only; split off a dedicated stream
  TimerJitter timer_jitter_;
  std::function<void()> pre_send_;
  std::function<void()> backoff_resume_;

  int controls_this_round_ = 0;
  int consecutive_ignored_ = 0;  ///< capped; exponent of the backoff
  int ignored_streak_ = 0;       ///< uncapped; drives the give-up bound
  sim::EventId backoff_event_ = sim::kInvalidEventId;

  std::uint64_t control_packets_ = 0;
  std::uint64_t signaling_rounds_ = 0;
  std::uint64_t ignored_requests_ = 0;
  std::uint64_t give_ups_ = 0;
};

}  // namespace bicord::core
