#include "core/zigbee_agent.hpp"

#include <utility>

namespace bicord::core {

ZigbeeAgentBase::ZigbeeAgentBase(std::unique_ptr<RequesterMac> mac,
                                 phy::NodeId receiver)
    : mac_(std::move(mac)), sim_(mac_->simulator()), receiver_(receiver) {
  mac_->set_data_outcome_callback([this](const DataOutcome& outcome) {
    pumping_ = false;
    on_head_outcome(outcome);
  });
}

void ZigbeeAgentBase::submit_burst(int count, std::uint32_t payload_bytes) {
  const TimePoint now = sim_.now();
  for (int i = 0; i < count; ++i) {
    queue_.push_back(Pending{payload_bytes, now, 0});
    ++stats_.generated;
  }
  kick();
}

void ZigbeeAgentBase::pump_head(double power_dbm_override) {
  if (pumping_ || queue_.empty()) return;
  mac_->wake_radio();  // no-op unless a duty cycler put the radio to sleep
  pumping_ = true;
  mac_->send_data(receiver_, queue_.front().payload_bytes, power_dbm_override);
}

void ZigbeeAgentBase::on_head_outcome(const DataOutcome& outcome) {
  if (queue_.empty()) return;  // defensive: stray outcome
  Pending& head = queue_.front();
  if (outcome.delivered) {
    stats_.delay_ms.add((outcome.completed - head.arrival).ms());
    ++stats_.delivered;
    stats_.payload_bytes_delivered += head.payload_bytes;
    queue_.pop_front();
    if (inter_packet_gap_ > Duration::zero()) {
      sim_.after(inter_packet_gap_, [this] { kick(); });
      return;
    }
  } else {
    if (++head.attempts >= max_attempts_) {
      ++stats_.dropped;
      queue_.pop_front();
    }
  }
  kick();
}

}  // namespace bicord::core
