#include "core/zigbee_agent.hpp"

namespace bicord::core {

ZigbeeAgentBase::ZigbeeAgentBase(zigbee::ZigbeeMac& mac, phy::NodeId receiver)
    : mac_(mac), sim_(mac.simulator()), receiver_(receiver) {
  mac_.set_sent_callback([this](const zigbee::ZigbeeMac::SendOutcome& outcome) {
    if (outcome.frame.kind != phy::FrameKind::Data) return;
    pumping_ = false;
    on_head_outcome(outcome);
  });
}

void ZigbeeAgentBase::submit_burst(int count, std::uint32_t payload_bytes) {
  const TimePoint now = sim_.now();
  for (int i = 0; i < count; ++i) {
    queue_.push_back(Pending{payload_bytes, now, 0});
    ++stats_.generated;
  }
  kick();
}

void ZigbeeAgentBase::pump_head(double power_dbm_override) {
  if (pumping_ || queue_.empty()) return;
  mac_.radio().wake();  // no-op unless a duty cycler put the radio to sleep
  pumping_ = true;
  zigbee::ZigbeeMac::SendRequest req;
  req.dst = receiver_;
  req.payload_bytes = queue_.front().payload_bytes;
  req.kind = phy::FrameKind::Data;
  req.power_dbm_override = power_dbm_override;
  mac_.enqueue(req);
}

void ZigbeeAgentBase::on_head_outcome(const zigbee::ZigbeeMac::SendOutcome& outcome) {
  if (queue_.empty()) return;  // defensive: stray outcome
  Pending& head = queue_.front();
  if (outcome.delivered) {
    stats_.delay_ms.add((outcome.completed - head.arrival).ms());
    ++stats_.delivered;
    stats_.payload_bytes_delivered += head.payload_bytes;
    queue_.pop_front();
    if (inter_packet_gap_ > Duration::zero()) {
      sim_.after(inter_packet_gap_, [this] { kick(); });
      return;
    }
  } else {
    if (++head.attempts >= max_attempts_) {
      ++stats_.dropped;
      queue_.pop_front();
    }
  }
  kick();
}

}  // namespace bicord::core
