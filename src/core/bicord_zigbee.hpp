#pragma once
// BiCord's ZigBee-side agent (paper Sec. IV, V, VII-A).
//
// When a burst arrives under cross-technology interference the agent walks
// the paper's pipeline:
//   1. CTI detection — capture a 5 ms / 40 kHz RSSI segment, classify the
//      interferer (decision tree over ZiSense features). Non-Wi-Fi
//      interference (Bluetooth, microwave) is not coordinatable: back off.
//   2. Device identification — Smoggy-Link fingerprint -> k-means cluster ->
//      PowerMap lookup of the signaling transmit power for that Wi-Fi
//      device.
//   3. Cross-technology signaling — raw (no-CCA) 120-byte control packets
//      deliberately overlapping Wi-Fi frames, interleaved with data
//      attempts: the data packet's ACK is the confirmation that a white
//      space was granted. Gives up after `max_control_packets` and retries
//      after a backoff (the Wi-Fi device may be prioritising its own
//      traffic).
//   4. Draining — pump the burst; any delivery failure (white space ended)
//      falls back to step 3 (classification results are cached).
//
// Control emission, round/give-up accounting, and the jittered exponential
// backoff are the shared core::RequesterEngine; this agent owns the state
// machine and the Wi-Fi-specific CTI detection / identification steps.

#include <cstdint>
#include <memory>
#include <optional>

#include "core/coordination_engine.hpp"
#include "core/ports.hpp"
#include "core/protocol_params.hpp"
#include "core/zigbee_agent.hpp"
#include "detect/classifier.hpp"
#include "detect/rssi_sampler.hpp"

namespace bicord::core {

class BiCordZigbeeAgent final : public ZigbeeAgentBase {
 public:
  struct Config {
    SignalingParams signaling;
    /// PA setting for data packets.
    double data_power_dbm = 0.0;
    /// Fallback signaling power when no PowerMap entry applies.
    double default_signaling_power_dbm = 0.0;
    /// Run the CTI-detection pipeline before signaling. Takes effect only
    /// once a trained classifier is attached; without one any busy channel
    /// is assumed to be Wi-Fi.
    bool use_cti_detection = true;
    /// Reuse the last classification for this long before re-sampling.
    Duration cti_cache = Duration::from_sec(2);
    /// Retry delay when the interferer is not Wi-Fi.
    Duration non_wifi_backoff = Duration::from_ms(20);
    /// Multiplicative jitter on every backoff (d * U(1-j, 1+j)), so repeated
    /// refusals from several nodes do not re-synchronise their retries.
    /// Drawn from a dedicated split RNG stream: deterministic per seed.
    double backoff_jitter = 0.25;
    /// Bounded give-up: after this many consecutive ignored signaling rounds
    /// the agent stops burning control packets and drains via plain CSMA for
    /// `csma_fallback_period` before trying to coordinate again. 0 disables.
    int give_up_after_ignored = 6;
    Duration csma_fallback_period = Duration::from_ms(400);
    detect::FeatureParams features;
  };

  enum class State : std::uint8_t {
    Idle, Sampling, Signaling, Draining, Backoff, CsmaFallback
  };

  /// Fault hook: perturb a relative timer delay (clock jitter).
  using TimerJitter = RequesterEngine::TimerJitter;

  /// Takes ownership of the requester port (see zigbee::requester_port).
  BiCordZigbeeAgent(std::unique_ptr<RequesterMac> mac, phy::NodeId receiver,
                    Config config);

  /// Optional trained CTI pipeline (scenario-owned; may outlive runs).
  void set_classifier(const detect::InterferenceClassifier* classifier) {
    classifier_ = classifier;
  }
  void set_device_identifier(const detect::DeviceIdentifier* identifier) {
    identifier_ = identifier;
  }
  void set_power_map(detect::PowerMap map) { power_map_ = std::move(map); }
  void set_energy_meter(EnergyProbe* meter) { meter_ = meter; }
  void set_timer_jitter(TimerJitter jitter) {
    engine_.set_timer_jitter(std::move(jitter));
  }

  [[nodiscard]] State state() const { return state_; }
  [[nodiscard]] std::uint64_t control_packets_sent() const {
    return engine_.control_packets();
  }
  [[nodiscard]] std::uint64_t signaling_rounds() const {
    return engine_.signaling_rounds();
  }
  [[nodiscard]] std::uint64_t ignored_requests() const {
    return engine_.ignored_requests();
  }
  [[nodiscard]] std::uint64_t non_wifi_detections() const { return non_wifi_; }
  [[nodiscard]] std::uint64_t cti_samples_taken() const { return cti_samples_; }
  /// Times the agent gave up signaling and fell back to plain CSMA.
  [[nodiscard]] std::uint64_t give_ups() const { return engine_.give_ups(); }
  /// The RSSI sampler feeding CTI detection (exposed for fault injection).
  [[nodiscard]] detect::RssiSampler& sampler() { return sampler_; }

 protected:
  void kick() override;
  void on_head_outcome(const DataOutcome& outcome) override;

 private:
  void acquire();
  void on_segment(detect::RssiSegment segment);
  void start_signaling(double power_dbm);
  void signal_step();
  /// Polls the channel during the inter-control gap; probes data on
  /// sustained silence, sends the next control on sustained activity.
  void gap_poll(int polls, int idle_streak, int busy_streak);
  void enter_backoff(Duration d);

  Config config_;
  State state_ = State::Idle;
  bool have_channel_ = false;
  RequesterEngine engine_;

  const detect::InterferenceClassifier* classifier_ = nullptr;
  const detect::DeviceIdentifier* identifier_ = nullptr;
  detect::PowerMap power_map_;
  detect::RssiSampler sampler_;
  EnergyProbe* meter_ = nullptr;

  double signaling_power_dbm_ = 0.0;
  TimePoint csma_deadline_;  ///< end of the current CSMA fallback window
  std::optional<double> cached_wifi_power_;
  TimePoint cache_valid_until_;

  std::uint64_t non_wifi_ = 0;
  std::uint64_t cti_samples_ = 0;
};

}  // namespace bicord::core
