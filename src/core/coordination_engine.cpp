#include "core/coordination_engine.hpp"

#include <algorithm>

#include "util/logging.hpp"

namespace bicord::core {

CoordinationEngine::CoordinationEngine(sim::Simulator& sim,
                                       const TechnologyTraits& traits,
                                       AllocatorParams allocator,
                                       std::size_t history_capacity)
    : sim_(sim),
      traits_(traits),
      allocator_(allocator),
      grant_history_(history_capacity) {}

CoordinationEngine::~CoordinationEngine() {
  disarm_watchdog();
  if (lease_event_ != sim::kInvalidEventId) {
    sim_.cancel(lease_event_);
    lease_event_ = sim::kInvalidEventId;
  }
}

bool CoordinationEngine::grant_active() const {
  return traits_.lease_based ? sim_.now() < lease_until_ : grant_outstanding_;
}

Duration CoordinationEngine::jittered(Duration d) const {
  if (!timer_jitter_) return d;
  Duration j = timer_jitter_(d);
  return j > Duration::zero() ? j : Duration::from_us(1);
}

Duration CoordinationEngine::skewed(Duration d) const {
  if (!timer_skew_) return d;
  Duration s = timer_skew_(d);
  return s > Duration::zero() ? s : Duration::from_us(1);
}

std::optional<Duration> CoordinationEngine::on_request(TimePoint t) {
  ++requests_;
  last_request_ = t;
  if (grant_active()) {
    // Already serving this burst (leftover requester traffic overlapping our
    // resumed transmissions re-triggers detection; the allocator sees it as
    // the same round until the protection actually elapses).
    return std::nullopt;
  }
  if (election_ != nullptr && !election_->is_primary(member_)) {
    // Secondary grantor: observe the request, never answer it. The election
    // starts the grace clock and promotes us if the primary stays silent.
    ++shadowed_;
    election_->on_request_observed(member_, t);
    return std::nullopt;
  }
  if (policy_ && !policy_()) {
    ++ignored_;
    return std::nullopt;
  }
  const Duration grant = allocator_.on_request(t);
  ++grants_;
  grant_history_.push(t, grant);
  if (grant_observer_) grant_observer_(t, grant);
  if (election_ != nullptr) {
    election_->on_grant_issued(member_, t, grant + traits_.grant_margin);
  }
  BICORD_LOG(Debug, t, traits_.log_tag,
             "request detected, granting " << grant << " white space");
  return grant;
}

void CoordinationEngine::begin_grant(TimePoint t) {
  grant_outstanding_ = true;
  grant_started_ = t;
}

void CoordinationEngine::on_resume(TimePoint t) {
  if (!grant_active()) return;
  if (resume_filter_ && resume_filter_(t)) return;  // fault injection
  grant_outstanding_ = false;
  disarm_watchdog();
  // Sustained silence after resuming marks the end of the requester's burst.
  end_of_burst_check(t);
}

void CoordinationEngine::arm_watchdog(TimePoint deadline) {
  disarm_watchdog();
  // Armed as a relative delay through the skew hook: a drifted crystal fires
  // the watchdog early or late. Without a skew hook this is event-for-event
  // identical to scheduling at the absolute deadline.
  const Duration delay =
      deadline > sim_.now() ? deadline - sim_.now() : Duration::zero();
  watchdog_event_ = sim_.after(skewed(delay), [this] {
    watchdog_event_ = sim::kInvalidEventId;
    on_watchdog();
  });
}

void CoordinationEngine::disarm_watchdog() {
  if (watchdog_event_ != sim::kInvalidEventId) {
    sim_.cancel(watchdog_event_);
    watchdog_event_ = sim::kInvalidEventId;
  }
}

void CoordinationEngine::on_watchdog() {
  if (!grant_active()) return;
  ++watchdog_recoveries_;
  grant_outstanding_ = false;
  BICORD_LOG(Warn, sim_.now(), "fault.recovery",
             traits_.name << " watchdog: grant from " << grant_started_
                          << " never resumed; force-clearing");
  // Treat the watchdog instant as the resume point so the allocator still
  // closes the round instead of waiting for a resume that will never come.
  end_of_burst_check(sim_.now());
}

void CoordinationEngine::begin_lease(TimePoint now, Duration lease) {
  lease_until_ = now + lease;
  grant_started_ = now;
}

void CoordinationEngine::arm_lease_expiry() {
  if (lease_event_ != sim::kInvalidEventId) sim_.cancel(lease_event_);
  // Relative delay through the skew hook: a fast crystal releases the lease
  // before lease_until_, a slow one after — the drift the lease margin in
  // TechnologyTraits has to absorb. No skew hook = same instant as before.
  const Duration delay =
      lease_until_ > sim_.now() ? lease_until_ - sim_.now() : Duration::zero();
  lease_event_ = sim_.after(skewed(delay), [this] {
    lease_event_ = sim::kInvalidEventId;
    on_lease_expired();
  });
}

void CoordinationEngine::on_lease_expired() {
  if (release_hook_) release_hook_();
  end_of_burst_check(sim_.now());
}

void CoordinationEngine::end_of_burst_check(TimePoint resume_time) {
  sim_.after(jittered(allocator_.params().end_of_burst_gap), [this, resume_time] {
    if (grant_active()) return;  // a new round started meanwhile
    if (last_request_ > resume_time) return;  // request arrived, handled
    allocator_.on_burst_end(sim_.now());
  });
}

RequesterEngine::RequesterEngine(RequesterMac& mac, Config config)
    : mac_(mac),
      sim_(mac.medium().simulator()),
      config_(config),
      // const split(k): derives a dedicated jitter stream without advancing
      // the parent RNG, so adding it does not perturb any existing stream.
      rng_(mac.medium().simulator().rng().split(0xB1C0FDULL ^ mac.node())) {}

RequesterEngine::~RequesterEngine() {
  if (backoff_event_ != sim::kInvalidEventId) {
    sim_.cancel(backoff_event_);
    backoff_event_ = sim::kInvalidEventId;
  }
}

Duration RequesterEngine::jittered(Duration d) {
  if (config_.backoff_jitter > 0.0) {
    const double f =
        rng_.uniform(1.0 - config_.backoff_jitter, 1.0 + config_.backoff_jitter);
    d = Duration::from_us(std::max<std::int64_t>(
        100, static_cast<std::int64_t>(static_cast<double>(d.us()) * f)));
  }
  return timer_jittered(d);
}

Duration RequesterEngine::timer_jittered(Duration d) const {
  if (!timer_jitter_) return d;
  const Duration j = timer_jitter_(d);
  return j > Duration::zero() ? j : Duration::from_us(1);
}

void RequesterEngine::begin_round() {
  controls_this_round_ = 0;
  ++signaling_rounds_;
}

bool RequesterEngine::round_exhausted() const {
  return controls_this_round_ >= config_.signaling.max_control_packets;
}

void RequesterEngine::send_control(double power_dbm, std::function<void()> done) {
  ++controls_this_round_;
  ++control_packets_;
  mac_.wake_radio();  // duty-cycled radios sleep between bursts
  if (pre_send_) pre_send_();
  mac_.send_control(config_.signaling.control_payload_bytes, power_dbm,
                    std::move(done));
}

RequesterEngine::IgnoredOutcome RequesterEngine::round_ignored() {
  ++ignored_requests_;
  consecutive_ignored_ = std::min(consecutive_ignored_ + 1, 4);
  ++ignored_streak_;
  if (config_.give_up_after_ignored > 0 &&
      ignored_streak_ >= config_.give_up_after_ignored) {
    ++give_ups_;
    ignored_streak_ = 0;
    return {true, Duration::zero()};
  }
  return {false, config_.signaling.ignored_backoff * (1 << consecutive_ignored_)};
}

void RequesterEngine::reset_streaks() {
  consecutive_ignored_ = 0;
  ignored_streak_ = 0;
}

void RequesterEngine::schedule_backoff(Duration d) {
  if (backoff_event_ != sim::kInvalidEventId) sim_.cancel(backoff_event_);
  backoff_event_ = sim_.after(jittered(d), [this] {
    backoff_event_ = sim::kInvalidEventId;
    if (backoff_resume_) backoff_resume_();
  });
}

}  // namespace bicord::core
