#include "core/ecc.hpp"

#include <utility>

#include "phy/spectrum.hpp"

namespace bicord::core {

EccWifiAgent::EccWifiAgent(std::unique_ptr<GrantorMac> mac, Config config)
    : mac_(std::move(mac)),
      sim_(mac_->simulator()),
      config_(config),
      task_(mac_->simulator(), config.period, [this] { tick(); }) {}

void EccWifiAgent::start() { task_.start(); }

void EccWifiAgent::stop() { task_.stop(); }

void EccWifiAgent::tick() {
  if (mac_->reservation_active()) return;  // previous reservation still running

  // Reserve the medium for the notification plus the blind white space.
  const Duration lead = Duration::from_us(1500);
  mac_->protect(lead + config_.emulation_airtime + config_.whitespace);
  ++notifications_;

  // Emit the emulated ZigBee notification once the CTS has (very likely)
  // gone out. WEBee drives the Wi-Fi radio to synthesise a 802.15.4-
  // compatible waveform, so the frame appears as genuine ZigBee technology
  // on the ZigBee channel.
  sim_.after(lead, [this] {
    phy::Frame notify;
    notify.tech = phy::Technology::ZigBee;
    notify.kind = phy::FrameKind::Notify;
    notify.src = mac_->node();
    notify.dst = phy::kBroadcastNode;
    notify.bytes = 30;
    notify.nav = config_.whitespace;
    mac_->medium().begin_tx(notify, phy::zigbee_channel(config_.zigbee_channel),
                            config_.emulation_power_dbm, config_.emulation_airtime);
  });
}

EccZigbeeAgent::EccZigbeeAgent(std::unique_ptr<RequesterMac> mac,
                               phy::NodeId receiver, Config config)
    : ZigbeeAgentBase(std::move(mac), receiver),
      config_(config),
      rng_(mac_->simulator().rng().split()) {
  mac_->set_rx_hook([this](const phy::RxResult& rx) {
    if (!rx.success || rx.frame.kind != phy::FrameKind::Notify) return;
    if (!rng_.bernoulli(config_.ctc_fidelity)) return;  // emulation glitch
    ++heard_;
    const TimePoint until = sim_.now() + rx.frame.nav;
    if (until > window_until_) window_until_ = until;
    kick();
  });
}

void EccZigbeeAgent::kick() {
  if (queue_empty() || pumping()) return;
  // Only transmit when the rest of the advertised white space still fits
  // one packet exchange; otherwise wait for the next notification.
  const Duration budget = mac_->data_exchange_airtime(head()->payload_bytes) +
                          config_.packet_budget_slack;
  if (sim_.now() + budget <= window_until_) {
    pump_head(config_.data_power_dbm);
  }
}

CsmaZigbeeAgent::CsmaZigbeeAgent(std::unique_ptr<RequesterMac> mac,
                                 phy::NodeId receiver, double data_power_dbm)
    : ZigbeeAgentBase(std::move(mac), receiver), data_power_dbm_(data_power_dbm) {}

void CsmaZigbeeAgent::kick() { pump_head(data_power_dbm_); }

}  // namespace bicord::core
