#pragma once
// ECC baseline (Yin et al., MobiSys'18): explicit channel coordination via
// *unidirectional* CTC.
//
// The Wi-Fi device periodically (every 100 ms) reserves the medium with a
// CTS and broadcasts a physical-layer-emulated ZigBee notification (WEBee-
// style) advertising a white space of fixed, blindly chosen length. ZigBee
// nodes can only wait for a notification and squeeze as many packets as fit
// into the advertised window; they have no way to ask for more or to decline
// unneeded reservations — exactly the inefficiency BiCord removes.

#include <cstdint>
#include <memory>

#include "core/ports.hpp"
#include "core/zigbee_agent.hpp"
#include "phy/medium.hpp"
#include "sim/simulator.hpp"
#include "util/rng.hpp"

namespace bicord::core {

class EccWifiAgent {
 public:
  struct Config {
    Duration period = Duration::from_ms(100);
    Duration whitespace = Duration::from_ms(20);
    /// 802.15.4 channel the emulated notification is sent on.
    int zigbee_channel = 24;
    /// Effective radiated power of the WEBee-style emulation (distortion
    /// makes it weaker than a native frame).
    double emulation_power_dbm = 12.0;
    /// Airtime of the emulated notification frame.
    Duration emulation_airtime = Duration::from_us(1200);
  };

  /// Takes ownership of the grantor port (see wifi::grantor_port).
  EccWifiAgent(std::unique_ptr<GrantorMac> mac, Config config);

  void start();
  void stop();
  [[nodiscard]] std::uint64_t notifications_sent() const { return notifications_; }
  [[nodiscard]] const Config& config() const { return config_; }

 private:
  void tick();

  std::unique_ptr<GrantorMac> mac_;
  sim::Simulator& sim_;
  Config config_;
  sim::PeriodicTask task_;
  std::uint64_t notifications_ = 0;
};

class EccZigbeeAgent final : public ZigbeeAgentBase {
 public:
  struct Config {
    double data_power_dbm = 0.0;
    /// Decode probability of the emulated CTC notification (WEBee frames are
    /// imperfect reconstructions).
    double ctc_fidelity = 0.9;
    /// Per-packet time budget used to decide whether another packet still
    /// fits in the advertised window.
    Duration packet_budget_slack = Duration::from_ms(2);
  };

  EccZigbeeAgent(std::unique_ptr<RequesterMac> mac, phy::NodeId receiver,
                 Config config);

  [[nodiscard]] std::uint64_t notifications_heard() const { return heard_; }
  [[nodiscard]] TimePoint window_until() const { return window_until_; }

 protected:
  void kick() override;

 private:
  Config config_;
  Rng rng_;
  TimePoint window_until_;
  std::uint64_t heard_ = 0;
};

/// No coordination at all: plain 802.15.4 CSMA/CA with MAC retries. The
/// "gauging channel availability is not enough" baseline.
class CsmaZigbeeAgent final : public ZigbeeAgentBase {
 public:
  CsmaZigbeeAgent(std::unique_ptr<RequesterMac> mac, phy::NodeId receiver,
                  double data_power_dbm);

 protected:
  void kick() override;

 private:
  double data_power_dbm_;
};

}  // namespace bicord::core
