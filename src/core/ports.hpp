#pragma once
// The TechnologyTraits seam, made structural (paper Sec. V, VII-D).
//
// The coordination engines and the shared agent machinery never name a
// concrete MAC. Everything they need from a radio stack fits two narrow
// interfaces owned by this layer:
//
//   * RequesterMac — what a requester-side agent consumes: raw control
//     emission (no CCA, deliberately overlapping the interferer), data
//     pumping with per-packet outcomes, channel energy reads, and the
//     identity/clock plumbing the engines derive their RNG streams from.
//   * GrantorMac — what a grantor-side agent consumes: a protection
//     primitive (reserve the band for a NAV), the reservation state, the
//     resume notification, and the raw receive tap the detection chains
//     feed on.
//
// wifi/, zigbee/, and ble/ supply the adapters (wifi::grantor_port,
// zigbee::requester_port); core/ owns the interfaces so the dependency
// points strictly downward — the `layering` lint rule enforces that core
// has no wifi/zigbee/ble include, direct or transitive, with an empty
// baseline.
//
// Determinism contract: adapters must forward calls 1:1 without scheduling
// events or drawing RNG of their own — the golden determinism suite pins
// scenario output bitwise across this seam.

#include <cstdint>
#include <functional>

#include "phy/frame.hpp"
#include "phy/medium.hpp"
#include "phy/radio.hpp"
#include "phy/spectrum.hpp"
#include "sim/simulator.hpp"
#include "util/time.hpp"

namespace bicord::core {

/// Result of one completed data-packet attempt (the adapter filters MAC
/// callbacks down to data frames before translating).
struct DataOutcome {
  bool delivered = false;   ///< ACKed by the receiver
  TimePoint completed;      ///< time the MAC attempt finished
};

/// Sentinel: "use the MAC's configured default transmit power".
inline constexpr double kNoPowerOverride = -1000.0;

/// Requester-side MAC surface. One agent owns one port; callbacks are
/// single-slot (set once, before first use).
class RequesterMac {
 public:
  virtual ~RequesterMac() = default;

  [[nodiscard]] virtual sim::Simulator& simulator() = 0;
  [[nodiscard]] virtual phy::Medium& medium() = 0;
  [[nodiscard]] virtual phy::NodeId node() const = 0;
  /// Band the data radio is currently tuned to.
  [[nodiscard]] virtual phy::Band band() const = 0;

  /// Wakes the duty-cycled radio (no-op when already awake). Kept separate
  /// from the send calls so the wake -> pre-send -> send event order of the
  /// pre-seam agents is preserved exactly.
  virtual void wake_radio() = 0;
  /// True while the radio itself is mid-transmission (raw sends would throw).
  [[nodiscard]] virtual bool radio_transmitting() const = 0;
  /// One CCA energy read at the current instant.
  [[nodiscard]] virtual bool channel_busy() = 0;

  /// Delivery outcomes for data packets sent via send_data() (MAC retries
  /// folded into one outcome per attempt).
  virtual void set_data_outcome_callback(std::function<void(const DataOutcome&)> cb) = 0;
  /// Queues one data packet through the normal (CSMA) MAC path.
  virtual void send_data(phy::NodeId dst, std::uint32_t payload_bytes,
                         double power_dbm_override) = 0;
  /// Emits one raw broadcast control packet — no CCA, no ACK — at
  /// `power_dbm`; `done` runs when the transmission completes.
  virtual void send_control(std::uint32_t payload_bytes, double power_dbm,
                            std::function<void()> done) = 0;
  /// Airtime of one full data exchange (data frame + turnaround + ACK) for
  /// `payload_bytes` of payload — the fits-in-window budget, slack excluded.
  [[nodiscard]] virtual Duration data_exchange_airtime(std::uint32_t payload_bytes) const = 0;
  /// Raw receive tap: every frame the radio locked onto (CTC notification
  /// listeners live here).
  virtual void set_rx_hook(std::function<void(const phy::RxResult&)> hook) = 0;
};

/// Grantor-side MAC surface.
class GrantorMac {
 public:
  virtual ~GrantorMac() = default;

  [[nodiscard]] virtual sim::Simulator& simulator() = 0;
  [[nodiscard]] virtual phy::Medium& medium() = 0;
  [[nodiscard]] virtual phy::NodeId node() const = 0;

  /// Reserves the band for `nav` ahead of any queued traffic (Wi-Fi: a CTS
  /// whose NAV silences every transmitter in range, the MAC self-pauses).
  virtual void protect(Duration nav) = 0;
  /// True while a protection issued via protect() is queued or running.
  [[nodiscard]] virtual bool reservation_active() const = 0;
  /// Fires when the reservation ends (Wi-Fi: the pause-end notification) —
  /// the flag-based grant path's resume signal.
  virtual void set_resume_callback(std::function<void(TimePoint)> cb) = 0;
  /// Raw receive tap: every frame the radio locked onto, corrupt frames
  /// included (the CSI chain wants those too).
  virtual void set_rx_hook(std::function<void(const phy::RxResult&)> hook) = 0;
};

/// Energy-accounting surface a requester agent reports into (the CC2420
/// meter in zigbee/ implements this).
class EnergyProbe {
 public:
  virtual ~EnergyProbe() = default;

  /// The PA setting used for subsequent transmissions.
  virtual void set_tx_power_dbm(double dbm) = 0;
  /// Credits extra receive-mode time not visible through radio states.
  virtual void add_listen(Duration d) = 0;
};

}  // namespace bicord::core
