#include "core/bicord_wifi.hpp"

#include "util/logging.hpp"

namespace bicord::core {

BiCordWifiAgent::BiCordWifiAgent(wifi::WifiMac& mac, Config config)
    : mac_(mac),
      sim_(mac.simulator()),
      config_(config),
      allocator_(config.allocator),
      csi_(mac.simulator(), config.csi),
      detector_(config.detector) {
  mac_.set_rx_hook([this](const phy::RxResult& rx) {
    // Every decodable Wi-Fi frame contributes a CSI reading (the Intel 5300
    // extractor reports CSI for corrupt frames too, as long as the preamble
    // locked).
    csi_.on_frame(rx);
  });
  csi_.set_sample_callback([this](const csi::CsiSample& s) { detector_.add_sample(s); });
  detector_.set_detection_callback([this](TimePoint t) { on_detection(t); });
  mac_.set_pause_end_callback([this](TimePoint t) { on_pause_end(t); });
}

void BiCordWifiAgent::on_detection(TimePoint t) {
  ++requests_;
  last_detection_ = t;
  if (grant_outstanding_) {
    // Already serving this burst (leftover ZigBee data overlapping our
    // resumed traffic re-triggers the detector; the allocator sees it as the
    // same round until the white space actually elapses).
    return;
  }
  if (policy_ && !policy_()) {
    ++ignored_;
    return;
  }
  const Duration grant = allocator_.on_request(t);
  ++grants_;
  grant_history_.push_back(grant);
  if (grant_observer_) grant_observer_(t, grant);
  BICORD_LOG(Debug, t, "bicord.wifi",
             "request detected, granting " << grant << " white space");

  grant_outstanding_ = true;
  wifi::WifiMac::SendRequest cts;
  cts.dst = phy::kBroadcastNode;
  cts.kind = phy::FrameKind::Cts;
  cts.nav = grant + config_.grant_margin;
  mac_.enqueue_front(cts);
}

void BiCordWifiAgent::on_pause_end(TimePoint t) {
  if (!grant_outstanding_) return;
  grant_outstanding_ = false;
  // Sustained silence after resuming marks the end of the ZigBee burst.
  end_of_burst_check(t);
}

void BiCordWifiAgent::end_of_burst_check(TimePoint resume_time) {
  sim_.after(allocator_.params().end_of_burst_gap, [this, resume_time] {
    if (grant_outstanding_) return;  // a new round started meanwhile
    if (last_detection_ > resume_time) return;  // request arrived, handled
    allocator_.on_burst_end(sim_.now());
  });
}

}  // namespace bicord::core
