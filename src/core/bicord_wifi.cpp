#include "core/bicord_wifi.hpp"

namespace bicord::core {

BiCordWifiAgent::BiCordWifiAgent(wifi::WifiMac& mac, Config config)
    : mac_(mac),
      config_(config),
      engine_(mac.simulator(), kWifiTraits, config.allocator,
              config.grant_history_capacity),
      csi_(mac.simulator(), config.csi),
      detector_(config.detector) {
  mac_.set_rx_hook([this](const phy::RxResult& rx) {
    if (offline_) return;  // coordination process dead; radio still decodes
    // Every decodable Wi-Fi frame contributes a CSI reading (the Intel 5300
    // extractor reports CSI for corrupt frames too, as long as the preamble
    // locked).
    csi_.on_frame(rx);
    // Shadow channel: a CTS from a co-located grantor tells a secondary how
    // long the band is protected without any extra signaling.
    if (election_ != nullptr && rx.success && rx.frame.kind == phy::FrameKind::Cts &&
        rx.frame.src != mac_.node()) {
      election_->on_grant_shadowed(member_, rx.end, rx.frame.nav);
    }
  });
  csi_.set_sample_callback([this](const csi::CsiSample& s) { detector_.add_sample(s); });
  detector_.set_detection_callback([this](TimePoint t) { on_detection(t); });
  mac_.set_pause_end_callback([this](TimePoint t) { engine_.on_resume(t); });
}

void BiCordWifiAgent::join_election(GrantorElection& election, double metric_dbm) {
  election_ = &election;
  member_ = election.add_member(
      mac_.node(), metric_dbm, [this](TimePoint t) { on_detection(t); },
      [this] { return !offline_; });
  engine_.set_election(&election, member_);
}

void BiCordWifiAgent::on_detection(TimePoint t) {
  if (offline_) return;
  const auto grant = engine_.on_request(t);
  if (!grant.has_value()) return;  // absorbed into the running grant, or refused

  engine_.begin_grant(t);
  wifi::WifiMac::SendRequest cts;
  cts.dst = phy::kBroadcastNode;
  cts.kind = phy::FrameKind::Cts;
  cts.nav = *grant + config_.grant_margin;
  mac_.enqueue_front(cts);
  // The pause-end notification normally clears the grant when the NAV
  // elapses; if it never arrives (lost CTS, swallowed resume interrupt) the
  // watchdog guarantees the grant cannot stay outstanding forever.
  engine_.arm_watchdog(t + cts.nav + config_.watchdog_slack);
}

}  // namespace bicord::core
