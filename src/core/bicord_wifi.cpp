#include "core/bicord_wifi.hpp"

#include <utility>

namespace bicord::core {

BiCordWifiAgent::BiCordWifiAgent(std::unique_ptr<GrantorMac> mac, Config config)
    : mac_(std::move(mac)),
      config_(config),
      engine_(mac_->simulator(), *config.traits, config.allocator,
              config.grant_history_capacity),
      csi_(mac_->simulator(), config.csi),
      detector_(config.detector) {
  mac_->set_rx_hook([this](const phy::RxResult& rx) {
    if (offline_) return;  // coordination process dead; radio still decodes
    // Every decodable Wi-Fi frame contributes a CSI reading (the Intel 5300
    // extractor reports CSI for corrupt frames too, as long as the preamble
    // locked).
    csi_.on_frame(rx);
    // Shadow channel: a CTS from a co-located grantor tells a secondary how
    // long the band is protected without any extra signaling.
    if (election_ != nullptr && rx.success && rx.frame.kind == phy::FrameKind::Cts &&
        rx.frame.src != mac_->node()) {
      election_->on_grant_shadowed(member_, rx.end, rx.frame.nav);
    }
  });
  csi_.set_sample_callback([this](const csi::CsiSample& s) { detector_.add_sample(s); });
  detector_.set_detection_callback([this](TimePoint t) { on_detection(t); });
  if (!config_.traits->lease_based) {
    mac_->set_resume_callback([this](TimePoint t) { engine_.on_resume(t); });
  }
}

void BiCordWifiAgent::join_election(GrantorElection& election, double metric_dbm) {
  election_ = &election;
  member_ = election.add_member(
      mac_->node(), metric_dbm, [this](TimePoint t) { on_detection(t); },
      [this] { return !offline_; });
  engine_.set_election(&election, member_);
}

void BiCordWifiAgent::on_detection(TimePoint t) {
  if (offline_) return;
  const auto grant = engine_.on_request(t);
  if (!grant.has_value()) return;  // absorbed into the running grant, or refused

  const Duration nav = *grant + config_.grant_margin;
  if (config_.traits->lease_based) {
    // Clock-bounded lease: a frequency-agile requester cannot be assumed to
    // observe the protection end, so the resume notification is ignored and
    // the lease timer alone closes the round (no watchdog needed).
    engine_.begin_lease(t, nav);
    mac_->protect(nav);
    engine_.arm_lease_expiry();
    return;
  }
  engine_.begin_grant(t);
  mac_->protect(nav);
  // The pause-end notification normally clears the grant when the NAV
  // elapses; if it never arrives (lost CTS, swallowed resume interrupt) the
  // watchdog guarantees the grant cannot stay outstanding forever.
  engine_.arm_watchdog(t + nav + config_.watchdog_slack);
}

}  // namespace bicord::core
