#include "core/bicord_wifi.hpp"

#include "util/logging.hpp"

namespace bicord::core {

BiCordWifiAgent::BiCordWifiAgent(wifi::WifiMac& mac, Config config)
    : mac_(mac),
      sim_(mac.simulator()),
      config_(config),
      allocator_(config.allocator),
      csi_(mac.simulator(), config.csi),
      detector_(config.detector),
      grant_history_(config.grant_history_capacity) {
  mac_.set_rx_hook([this](const phy::RxResult& rx) {
    // Every decodable Wi-Fi frame contributes a CSI reading (the Intel 5300
    // extractor reports CSI for corrupt frames too, as long as the preamble
    // locked).
    csi_.on_frame(rx);
  });
  csi_.set_sample_callback([this](const csi::CsiSample& s) { detector_.add_sample(s); });
  detector_.set_detection_callback([this](TimePoint t) { on_detection(t); });
  mac_.set_pause_end_callback([this](TimePoint t) { on_pause_end(t); });
}

BiCordWifiAgent::~BiCordWifiAgent() { disarm_watchdog(); }

Duration BiCordWifiAgent::jittered(Duration d) const {
  if (!timer_jitter_) return d;
  Duration j = timer_jitter_(d);
  return j > Duration::zero() ? j : Duration::from_us(1);
}

void BiCordWifiAgent::on_detection(TimePoint t) {
  ++requests_;
  last_detection_ = t;
  if (grant_outstanding_) {
    // Already serving this burst (leftover ZigBee data overlapping our
    // resumed traffic re-triggers the detector; the allocator sees it as the
    // same round until the white space actually elapses).
    return;
  }
  if (policy_ && !policy_()) {
    ++ignored_;
    return;
  }
  const Duration grant = allocator_.on_request(t);
  ++grants_;
  grant_history_.push(grant);
  if (grant_observer_) grant_observer_(t, grant);
  BICORD_LOG(Debug, t, "bicord.wifi",
             "request detected, granting " << grant << " white space");

  grant_outstanding_ = true;
  grant_started_ = t;
  wifi::WifiMac::SendRequest cts;
  cts.dst = phy::kBroadcastNode;
  cts.kind = phy::FrameKind::Cts;
  cts.nav = grant + config_.grant_margin;
  mac_.enqueue_front(cts);
  // The pause-end notification normally clears the grant when the NAV
  // elapses; if it never arrives (lost CTS, swallowed resume interrupt) the
  // watchdog guarantees grant_outstanding_ cannot stay set forever.
  arm_watchdog(t + cts.nav + config_.watchdog_slack);
}

void BiCordWifiAgent::on_pause_end(TimePoint t) {
  if (!grant_outstanding_) return;
  if (pause_end_filter_ && pause_end_filter_(t)) return;  // fault injection
  grant_outstanding_ = false;
  disarm_watchdog();
  // Sustained silence after resuming marks the end of the ZigBee burst.
  end_of_burst_check(t);
}

void BiCordWifiAgent::arm_watchdog(TimePoint deadline) {
  disarm_watchdog();
  watchdog_event_ = sim_.at(deadline, [this] {
    watchdog_event_ = sim::kInvalidEventId;
    on_watchdog();
  });
}

void BiCordWifiAgent::disarm_watchdog() {
  if (watchdog_event_ != sim::kInvalidEventId) {
    sim_.cancel(watchdog_event_);
    watchdog_event_ = sim::kInvalidEventId;
  }
}

void BiCordWifiAgent::on_watchdog() {
  if (!grant_outstanding_) return;
  ++watchdog_recoveries_;
  grant_outstanding_ = false;
  BICORD_LOG(Warn, sim_.now(), "fault.recovery",
             "wifi watchdog: grant from " << grant_started_
                                          << " never resumed; force-clearing");
  // Treat the watchdog instant as the resume point so the allocator still
  // closes the round instead of waiting for a pause-end that will never come.
  end_of_burst_check(sim_.now());
}

void BiCordWifiAgent::end_of_burst_check(TimePoint resume_time) {
  sim_.after(jittered(allocator_.params().end_of_burst_gap), [this, resume_time] {
    if (grant_outstanding_) return;  // a new round started meanwhile
    if (last_detection_ > resume_time) return;  // request arrived, handled
    allocator_.on_burst_end(sim_.now());
  });
}

}  // namespace bicord::core
