#pragma once
// Common machinery for requester-side coordination agents.
//
// Every scheme evaluated in the paper (BiCord, ECC, plain CSMA) drives the
// same sender workload: bursts of data packets arrive, are queued, and must
// reach the receiver reliably (every packet ACKed). The base class owns the
// queue, per-packet delay/throughput accounting, and the MAC pumping loop;
// subclasses decide *when* the channel may be used. The MAC itself is only
// reachable through the core::RequesterMac port — the base never names a
// concrete radio stack.

#include <cstdint>
#include <deque>
#include <memory>

#include "core/ports.hpp"
#include "util/stats.hpp"
#include "util/time.hpp"

namespace bicord::core {

/// Delivery statistics for a requester-side sender under a coordination
/// scheme.
struct ZigbeeLinkStats {
  Samples delay_ms;             ///< burst arrival -> ACK, per packet
  std::uint64_t generated = 0;
  std::uint64_t delivered = 0;
  std::uint64_t dropped = 0;    ///< gave up after max attempts
  std::uint64_t payload_bytes_delivered = 0;

  [[nodiscard]] double delivery_ratio() const {
    return generated ? static_cast<double>(delivered) / static_cast<double>(generated)
                     : 0.0;
  }
};

class ZigbeeAgentBase {
 public:
  /// Takes ownership of the requester port (see zigbee::requester_port).
  ZigbeeAgentBase(std::unique_ptr<RequesterMac> mac, phy::NodeId receiver);
  virtual ~ZigbeeAgentBase() = default;

  ZigbeeAgentBase(const ZigbeeAgentBase&) = delete;
  ZigbeeAgentBase& operator=(const ZigbeeAgentBase&) = delete;

  /// Hands a burst of `count` packets of `payload_bytes` to the agent
  /// (wire this to zigbee::BurstSource).
  void submit_burst(int count, std::uint32_t payload_bytes);

  [[nodiscard]] const ZigbeeLinkStats& stats() const { return stats_; }
  [[nodiscard]] std::size_t backlog() const { return queue_.size(); }
  [[nodiscard]] RequesterMac& port() { return *mac_; }

 protected:
  struct Pending {
    std::uint32_t payload_bytes;
    TimePoint arrival;
    int attempts = 0;
  };

  /// Subclass hook: new work arrived or a transmission finished; decide what
  /// to do next (signal, wait, or call pump_head()).
  virtual void kick() = 0;

  /// Sends the head-of-queue packet through the MAC; exactly one in flight.
  /// Safe to call when idle — no-ops if empty or already pumping.
  void pump_head(double power_dbm_override = kNoPowerOverride);
  [[nodiscard]] bool pumping() const { return pumping_; }
  [[nodiscard]] bool queue_empty() const { return queue_.empty(); }
  [[nodiscard]] const Pending* head() const { return queue_.empty() ? nullptr : &queue_.front(); }
  [[nodiscard]] sim::Simulator& simulator() { return sim_; }

  /// Called on every completed MAC attempt for the head packet. Default:
  /// success -> account + pop + kick; failure -> bump attempts (drop after
  /// `max_attempts_`) + kick.
  virtual void on_head_outcome(const DataOutcome& outcome);

  std::unique_ptr<RequesterMac> mac_;
  sim::Simulator& sim_;
  phy::NodeId receiver_;
  ZigbeeLinkStats stats_;
  int max_attempts_ = 12;  ///< agent-level attempts (each w/ MAC retries)
  /// Application pacing between packets of a burst (T_i in the paper's
  /// Eq. 1): sensor firmware needs time to produce the next packet. With
  /// MAC overheads this yields the paper's ~6 ms per-packet cycle.
  Duration inter_packet_gap_ = Duration::from_us(1600);

 private:
  std::deque<Pending> queue_;
  bool pumping_ = false;
};

}  // namespace bicord::core
