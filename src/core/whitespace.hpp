#pragma once
// Adaptive white-space allocation (paper Sec. VI) as a pure state machine.
//
// The allocator never touches the simulator: the Wi-Fi agent reports two
// kinds of events — a channel request (cross-technology detection) and the
// end of a ZigBee burst (sustained silence after resuming) — and the
// allocator answers "how long a white space to grant". This keeps the
// paper's core algorithm directly unit-testable.
//
// Operation:
//  * Learning phase: every request is granted the initial (short) white
//    space W0. When the burst ends after N_round rounds, the burst length is
//    estimated conservatively as T_est = (W0 - 2 T_c) * N_round.
//  * Adjustment phase: the first request of a burst gets T_est. If that was
//    not enough (the ZigBee node requests again within the same burst), a
//    supplemental W0 is granted and the estimate grows by (W0 - 2 T_c),
//    converging monotonically from below.
//  * Re-estimation: an expiry timer (and any caller-detected pattern change)
//    resets the allocator to the learning phase so shrinking bursts do not
//    leave the white space over-provisioned forever.

#include <cstdint>

#include "core/protocol_params.hpp"
#include "util/time.hpp"

namespace bicord::core {

enum class AllocatorPhase : std::uint8_t { Learning, Adjusted };

class WhitespaceAllocator {
 public:
  explicit WhitespaceAllocator(AllocatorParams params = AllocatorParams{});

  /// A cross-technology channel request arrived; returns the white space to
  /// grant. `now` drives the expiry timer.
  [[nodiscard]] Duration on_request(TimePoint now);

  /// The Wi-Fi device observed `end_of_burst_gap` of silence after resuming:
  /// the current ZigBee burst is complete.
  void on_burst_end(TimePoint now);

  /// Forces re-estimation (pattern change detected by the caller).
  void reset(TimePoint now);

  [[nodiscard]] AllocatorPhase phase() const { return phase_; }
  /// Current burst-length estimate (zero while unknown).
  [[nodiscard]] Duration estimate() const { return estimate_; }
  /// White-space grants issued within the burst in progress.
  [[nodiscard]] int rounds_this_burst() const { return rounds_this_burst_; }
  /// Total grants issued since the last reset until the estimate last
  /// stabilised (the paper's "number of iterations", Fig. 8).
  [[nodiscard]] int iterations_to_converge() const { return iterations_to_converge_; }
  [[nodiscard]] bool converged() const { return converged_; }
  [[nodiscard]] const AllocatorParams& params() const { return params_; }

 private:
  [[nodiscard]] Duration per_round_credit() const {
    Duration c = params_.initial_whitespace - 2 * params_.control_duration;
    return c > Duration::zero() ? c : Duration::from_ms(1);
  }
  void maybe_expire(TimePoint now);

  AllocatorParams params_;
  AllocatorPhase phase_ = AllocatorPhase::Learning;
  Duration estimate_;
  int rounds_this_burst_ = 0;
  int shortfall_streak_ = 0;      ///< consecutive bursts that needed supplements
  int min_streak_shortfall_ = 0;  ///< smallest shortfall within the streak
  int iterations_since_reset_ = 0;
  int iterations_to_converge_ = 0;
  bool converged_ = false;
  bool in_burst_ = false;
  TimePoint last_reset_;
  bool expiry_armed_ = false;
};

}  // namespace bicord::core
