#pragma once
// Deterministic primary election + failover among co-located grantors.
//
// Real dense deployments have many Wi-Fi APs overhearing the same ZigBee
// signaling. BiCord's request/grant loop assumes exactly one grantor answers,
// so coexisting grantors must agree on a primary and hand the role over when
// it dies. GrantorElection is that agreement, modelled as the consistent
// shared view the grantors converge on:
//
//   * election — members register with a stable metric (mean received
//     signaling power of the requester at that grantor, in dBm); the primary
//     is the best-metric member, ties broken toward the lower node id. The
//     metric is geometry-derived and every grantor computes the same
//     ordering, so no election traffic is needed.
//   * shadowing — secondaries do not grant. They still detect requests and
//     overhear the primary's CTS broadcasts, so they track how long the band
//     is protected (`covered_until`) and which requests were answered.
//   * takeover — when a secondary observes a request that no running
//     protection covers and the primary stays silent for `grace`, the
//     next-ranked member promotes itself and replays the pending request
//     through its own grant path. The handoff gap (first uncovered request ->
//     new primary's first grant) is therefore exactly `grace` on a clean
//     failover, and the invariant checker enforces gap <= grace + margin.
//
// Every grant any member issues is recorded in a capped log that the
// InvariantChecker replays to prove no two grantors' protections ever
// overlap (the "double-grant" invariant). The election itself consumes no
// RNG and schedules at most one timer, so single-grantor scenarios that
// never construct it stay byte-identical (PR 5 contract).

#include <cstddef>
#include <cstdint>
#include <deque>
#include <functional>
#include <optional>
#include <vector>

#include "phy/frame.hpp"
#include "sim/simulator.hpp"
#include "util/time.hpp"

namespace bicord::core {

class GrantorElection {
 public:
  using MemberId = std::size_t;
  /// Takeover hook: the newly promoted primary replays the pending request
  /// observed at `t` through its normal grant path (detection replay).
  using TakeoverHook = std::function<void(TimePoint)>;
  /// Liveness probe: succession skips members whose coordination process is
  /// down. A crashed grantor never self-promotes, so the shared view models
  /// the first *alive* ranked successor's grace timer firing.
  using AliveCheck = std::function<bool()>;

  /// One issued grant, as the invariant checker replays it.
  struct GrantRecord {
    MemberId member = 0;
    TimePoint start;
    TimePoint protected_until;  ///< start + grant + technology margin
  };

  /// One primary handoff. `first_grant` stays empty until the new primary
  /// actually issues a grant — an unfilled record older than handoff_bound()
  /// is an unbounded-gap violation.
  struct HandoffRecord {
    TimePoint request;   ///< the uncovered request that started the grace clock
    TimePoint takeover;  ///< when the secondary promoted itself
    MemberId from = 0;
    MemberId to = 0;
    std::optional<TimePoint> first_grant;
  };

  /// `grace` is how long a secondary waits for the primary to answer an
  /// uncovered request; `handoff_margin` is the technology lease margin that
  /// pads the enforced handoff bound (grace + margin).
  GrantorElection(sim::Simulator& sim, Duration grace, Duration handoff_margin,
                  std::size_t grant_log_capacity = 256);
  ~GrantorElection();

  GrantorElection(const GrantorElection&) = delete;
  GrantorElection& operator=(const GrantorElection&) = delete;

  /// Registers a grantor. Call for every member before the run starts; the
  /// primary is recomputed after each registration (metric desc, node asc).
  /// A missing `alive` check means "always alive".
  MemberId add_member(phy::NodeId node, double metric_dbm, TakeoverHook hook,
                      AliveCheck alive = nullptr);

  [[nodiscard]] std::size_t member_count() const { return members_.size(); }
  [[nodiscard]] MemberId primary() const { return primary_; }
  [[nodiscard]] bool is_primary(MemberId m) const { return m == primary_; }
  [[nodiscard]] phy::NodeId member_node(MemberId m) const { return members_[m].node; }
  [[nodiscard]] double member_metric_dbm(MemberId m) const { return members_[m].metric_dbm; }

  // --- event feed (engines and agents call these) ---------------------------
  /// A secondary detected a request at `t` that its engine did not grant.
  /// Starts the grace clock when no known protection covers `t`.
  void on_request_observed(MemberId m, TimePoint t);
  /// Member `m` issued a grant at `t` protecting the band for `protection`.
  void on_grant_issued(MemberId m, TimePoint t, Duration protection);
  /// Member `m` overheard another grantor's CTS at `t` advertising
  /// `protection` of NAV — the shadow channel secondaries learn from.
  void on_grant_shadowed(MemberId m, TimePoint t, Duration protection);

  // --- takeover parameters / stats ------------------------------------------
  [[nodiscard]] Duration grace() const { return grace_; }
  /// The enforced handoff bound: grace + technology lease margin.
  [[nodiscard]] Duration handoff_bound() const { return grace_ + handoff_margin_; }
  [[nodiscard]] std::uint64_t takeovers() const { return takeovers_; }
  [[nodiscard]] std::uint64_t shadowed_cts() const { return shadowed_cts_; }
  [[nodiscard]] std::uint64_t requests_observed() const { return requests_observed_; }
  [[nodiscard]] const std::vector<HandoffRecord>& handoffs() const { return handoffs_; }
  /// Largest filled handoff gap (first_grant - request); empty when no
  /// takeover has completed yet.
  [[nodiscard]] std::optional<Duration> max_handoff_gap() const;
  /// Instant until which some member's grant protects the band.
  [[nodiscard]] TimePoint covered_until() const { return covered_until_; }

  // --- grant log (replayed by the InvariantChecker) -------------------------
  /// All-time index of the first retained record (the log is capped).
  [[nodiscard]] std::uint64_t grant_log_base() const { return grant_log_base_; }
  /// All-time index one past the newest record.
  [[nodiscard]] std::uint64_t grant_log_end() const {
    return grant_log_base_ + grant_log_.size();
  }
  /// Record by all-time index; `seq` must be in [grant_log_base, grant_log_end).
  [[nodiscard]] const GrantRecord& grant_record(std::uint64_t seq) const {
    return grant_log_[static_cast<std::size_t>(seq - grant_log_base_)];
  }

 private:
  struct Member {
    phy::NodeId node = 0;
    double metric_dbm = 0.0;
    TakeoverHook hook;
    AliveCheck alive;
  };

  [[nodiscard]] bool member_alive(MemberId m) const {
    return !members_[m].alive || members_[m].alive();
  }

  void recompute_ranking();
  void cancel_takeover_timer();
  void on_takeover_timer();

  sim::Simulator& sim_;
  Duration grace_;
  Duration handoff_margin_;
  std::size_t grant_log_capacity_;

  std::vector<Member> members_;
  std::vector<MemberId> ranked_;  ///< metric desc, node asc; succession order
  MemberId primary_ = 0;

  TimePoint covered_until_;
  TimePoint last_grant_at_;
  bool any_grant_ = false;

  TimePoint pending_request_;
  sim::EventId takeover_event_ = sim::kInvalidEventId;

  std::deque<GrantRecord> grant_log_;
  std::uint64_t grant_log_base_ = 0;
  std::vector<HandoffRecord> handoffs_;
  std::uint64_t takeovers_ = 0;
  std::uint64_t shadowed_cts_ = 0;
  std::uint64_t requests_observed_ = 0;
};

}  // namespace bicord::core
