#pragma once
// Microwave-oven interferer.
//
// Domestic ovens emit broadband noise gated by the mains half-cycle: on for
// roughly half of each 20 ms period (50 Hz grid), sweeping a wide chunk of
// the 2.4 GHz band. The signature — long continuous on-times with a strict
// 20 ms periodicity and no packet structure — is the second negative class
// for CTI detection.

#include <cstdint>

#include "phy/frame.hpp"
#include "phy/medium.hpp"
#include "sim/simulator.hpp"
#include "util/rng.hpp"

namespace bicord::interferers {

class MicrowaveOven {
 public:
  struct Config {
    double tx_power_dbm = 30.0;  ///< strong leakage near the oven
    Duration mains_period = Duration::from_ms(20);  ///< 50 Hz
    double duty_cycle = 0.5;
    phy::Band band{2450.0, 60.0};  ///< broad emission centred mid-band
    /// Small per-cycle jitter of the on-time (magnetron warmup).
    Duration jitter = Duration::from_us(300);
  };

  MicrowaveOven(phy::Medium& medium, phy::NodeId node)
      : MicrowaveOven(medium, node, Config{}) {}
  MicrowaveOven(phy::Medium& medium, phy::NodeId node, Config config);

  void start();
  void stop();
  [[nodiscard]] bool running() const { return running_; }
  [[nodiscard]] std::uint64_t cycles() const { return cycles_; }

 private:
  void cycle_tick();

  phy::Medium& medium_;
  sim::Simulator& sim_;
  phy::NodeId node_;
  Config config_;
  Rng rng_;
  bool running_ = false;
  sim::EventId event_ = sim::kInvalidEventId;
  std::uint64_t cycles_ = 0;
};

}  // namespace bicord::interferers
