#include "interferers/microwave.hpp"

namespace bicord::interferers {

MicrowaveOven::MicrowaveOven(phy::Medium& medium, phy::NodeId node, Config config)
    : medium_(medium),
      sim_(medium.simulator()),
      node_(node),
      config_(config),
      rng_(medium.simulator().rng().split()) {}

void MicrowaveOven::start() {
  if (running_) return;
  running_ = true;
  cycle_tick();
}

void MicrowaveOven::stop() {
  running_ = false;
  if (event_ != sim::kInvalidEventId) {
    sim_.cancel(event_);
    event_ = sim::kInvalidEventId;
  }
}

void MicrowaveOven::cycle_tick() {
  if (!running_) return;
  ++cycles_;
  const Duration nominal_on =
      Duration::from_sec_f(config_.mains_period.sec() * config_.duty_cycle);
  const Duration jitter = Duration::from_us(
      rng_.uniform_int(-config_.jitter.us(), config_.jitter.us()));
  Duration on = nominal_on + jitter;
  if (on <= Duration::zero()) on = Duration::from_us(100);

  phy::Frame frame;
  frame.tech = phy::Technology::Microwave;
  frame.kind = phy::FrameKind::Noise;
  frame.src = node_;
  frame.dst = phy::kBroadcastNode;
  frame.seq = cycles_;
  medium_.begin_tx(frame, config_.band, config_.tx_power_dbm, on);

  event_ = sim_.after(config_.mains_period, [this] {
    event_ = sim::kInvalidEventId;
    cycle_tick();
  });
}

}  // namespace bicord::interferers
