#pragma once
// Bluetooth BR/EDR interferer (frequency-hopping A2DP-style stream).
//
// Needed as a *negative class* for CTI detection: a ZigBee node must not
// mistake a Bluetooth headset for Wi-Fi and start cross-technology
// signaling. Classic Bluetooth hops pseudo-randomly over 79 1 MHz channels
// at 1600 hops/s (625 us slots); an audio stream occupies a slot with some
// duty cycle and short (~400 us) packets. The resulting RSSI signature —
// short bursts, highly variable energy (most hops land outside the ZigBee
// channel), large peak-to-average ratio — is what the ZiSense features key
// on.

#include <cstdint>

#include "phy/frame.hpp"
#include "phy/medium.hpp"
#include "sim/simulator.hpp"
#include "util/rng.hpp"

namespace bicord::interferers {

class BluetoothDevice {
 public:
  struct Config {
    double tx_power_dbm = 4.0;       ///< class 2 device
    Duration slot = Duration::from_us(625);
    Duration packet_len = Duration::from_us(410);  ///< single-slot payload
    double slot_occupancy = 0.6;     ///< fraction of slots carrying a packet
  };

  BluetoothDevice(phy::Medium& medium, phy::NodeId node)
      : BluetoothDevice(medium, node, Config{}) {}
  BluetoothDevice(phy::Medium& medium, phy::NodeId node, Config config);

  void start();
  void stop();
  [[nodiscard]] bool running() const { return running_; }
  [[nodiscard]] std::uint64_t packets_sent() const { return packets_; }

 private:
  void slot_tick();

  phy::Medium& medium_;
  sim::Simulator& sim_;
  phy::NodeId node_;
  Config config_;
  Rng rng_;
  bool running_ = false;
  sim::EventId event_ = sim::kInvalidEventId;
  std::uint64_t packets_ = 0;
  std::uint64_t seq_ = 0;
};

}  // namespace bicord::interferers
