#include "interferers/lteu.hpp"

namespace bicord::interferers {

LteUDevice::Config::Config() : band(phy::wifi_channel(11)) {}

LteUDevice::LteUDevice(phy::Medium& medium, phy::NodeId node, Config config)
    : medium_(medium), sim_(medium.simulator()), node_(node), config_(config) {}

void LteUDevice::start() {
  if (running_) return;
  running_ = true;
  cycle_tick();
}

void LteUDevice::stop() {
  running_ = false;
  if (event_ != sim::kInvalidEventId) {
    sim_.cancel(event_);
    event_ = sim::kInvalidEventId;
  }
}

void LteUDevice::suppress_for(Duration d) {
  const TimePoint until = sim_.now() + d;
  if (until > suppress_until_) suppress_until_ = until;
}

bool LteUDevice::suppressed() const { return sim_.now() < suppress_until_; }

Duration LteUDevice::on_duration() const {
  return Duration::from_sec_f(config_.period.sec() * config_.duty);
}

void LteUDevice::cycle_tick() {
  if (!running_) return;
  if (suppressed()) {
    ++suppressed_cycles_;
  } else {
    Duration on = on_duration();
    if (on > config_.period) on = config_.period;
    if (on > Duration::zero()) {
      phy::Frame frame;
      frame.tech = phy::Technology::LteU;
      frame.kind = phy::FrameKind::Noise;
      frame.src = node_;
      frame.dst = phy::kBroadcastNode;
      frame.seq = ++seq_;
      medium_.begin_tx(frame, config_.band, config_.tx_power_dbm, on);
      ++bursts_;
    }
  }
  event_ = sim_.after(config_.period, [this] {
    event_ = sim::kInvalidEventId;
    cycle_tick();
  });
}

namespace {
phy::Radio::Config sniffer_config(int zigbee_channel) {
  phy::Radio::Config rc;
  // The sniffer locks onto 802.15.4 bursts to time their energy envelope;
  // Technology::ZigBee here means "can track the burst", not "can decode
  // it" — the matcher below never reads a payload-dependent field.
  rc.tech = phy::Technology::ZigBee;
  rc.band = phy::zigbee_channel(zigbee_channel);
  rc.sensitivity_dbm = -88.0;  // an envelope detector, not a demodulator
  rc.sinr_threshold_db = 5.0;
  rc.sinr_width_db = 1.5;
  rc.fading_sigma_db = 1.5;
  return rc;
}
}  // namespace

LteUGrantor::LteUGrantor(phy::Medium& medium, phy::NodeId node, LteUDevice& device,
                         Config config)
    : sim_(medium.simulator()),
      device_(device),
      config_(config),
      engine_(medium.simulator(), core::kLteUTraits, config.allocator,
              config.grant_history_capacity),
      sniffer_(medium, node, sniffer_config(config.zigbee_channel)) {
  // Lease expiry = duty cycle resumes on its own (suppress_for already
  // bounded the suppression by the same clock); nothing to un-protect, but
  // the hook keeps the release path explicit and observable in logs/tests.
  engine_.set_release_hook([] {});
  sniffer_.set_rx_callback([this](const phy::RxResult& rx) { on_sniff(rx); });
}

void LteUGrantor::on_sniff(const phy::RxResult& rx) {
  // Energy-envelope matching only: duration within tolerance of the control
  // packet's airtime, at a plausible power. rx.success and rx.frame.kind are
  // intentionally not consulted — the eNB cannot demodulate 802.15.4, so a
  // corrupted control packet is as good a request as a clean one.
  const Duration airtime = rx.end - rx.start;
  const Duration delta = airtime > config_.control_airtime
                             ? airtime - config_.control_airtime
                             : config_.control_airtime - airtime;
  if (delta > config_.airtime_tolerance) return;
  if (rx.rssi_dbm < config_.min_rssi_dbm) return;

  const auto grant = engine_.on_request(sim_.now());
  if (!grant.has_value()) return;  // absorbed into the running lease
  const Duration lease = *grant + config_.grant_margin;
  // Single-grantor carrier (one eNB owns the duty cycle; no election to
  // shadow), so issuing the lease here is the sanctioned path.
  // bicord-lint: allow(grant-issue-outside-engine)
  engine_.begin_lease(sim_.now(), lease);
  device_.suppress_for(lease);
  engine_.arm_lease_expiry();  // bicord-lint: allow(grant-issue-outside-engine)
}

}  // namespace bicord::interferers
