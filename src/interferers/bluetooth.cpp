#include "interferers/bluetooth.hpp"

#include "phy/spectrum.hpp"

namespace bicord::interferers {

BluetoothDevice::BluetoothDevice(phy::Medium& medium, phy::NodeId node, Config config)
    : medium_(medium),
      sim_(medium.simulator()),
      node_(node),
      config_(config),
      rng_(medium.simulator().rng().split()) {}

void BluetoothDevice::start() {
  if (running_) return;
  running_ = true;
  slot_tick();
}

void BluetoothDevice::stop() {
  running_ = false;
  if (event_ != sim::kInvalidEventId) {
    sim_.cancel(event_);
    event_ = sim::kInvalidEventId;
  }
}

void BluetoothDevice::slot_tick() {
  if (!running_) return;
  if (rng_.bernoulli(config_.slot_occupancy)) {
    // Pseudo-random hop over the 79 BR/EDR channels.
    const int hop = static_cast<int>(rng_.uniform_int(0, 78));
    phy::Frame frame;
    frame.tech = phy::Technology::Bluetooth;
    frame.kind = phy::FrameKind::Data;
    frame.src = node_;
    frame.dst = phy::kBroadcastNode;
    frame.bytes = 54;
    frame.seq = seq_++;
    medium_.begin_tx(frame, phy::bluetooth_channel(hop), config_.tx_power_dbm,
                     config_.packet_len);
    ++packets_;
  }
  event_ = sim_.after(config_.slot, [this] {
    event_ = sim::kInvalidEventId;
    slot_tick();
  });
}

}  // namespace bicord::interferers
