#pragma once
// LTE-U coexistence: a duty-cycled unlicensed LTE carrier plus its
// BiCord-style grantor (the seam's third technology).
//
// LTE-U (pre-LAA) shares the 5/2.4 GHz unlicensed bands by duty-cycling the
// whole carrier: the eNB transmits wideband for a fixed ON period, then
// stays silent for the OFF remainder of each CSAT cycle. Two properties
// make it the interesting third instantiation of the TechnologyTraits seam:
//
//   * The eNB cannot decode 802.15.4 frames at all. It detects a BiCord
//     channel request from the *energy envelope* alone — a burst whose
//     on-air duration matches the 120-byte control packet's airtime at a
//     plausible receive power. No payload bits are ever read.
//   * The eNB has no decodable downlink to a ZigBee node either, so it
//     cannot announce when a grant ends. A grant is therefore a clock-
//     bounded lease (kLteUTraits.lease_based): the eNB suppresses its ON
//     bursts for the leased window and simply resumes afterwards.
//
// Both halves ride the unchanged core::CoordinationEngine — the whole LTE-U
// instantiation is traits + this adapter, zero engine edits.

#include <cstdint>
#include <memory>

#include "core/coordination_engine.hpp"
#include "core/technology_traits.hpp"
#include "phy/frame.hpp"
#include "phy/medium.hpp"
#include "phy/radio.hpp"
#include "phy/spectrum.hpp"
#include "sim/simulator.hpp"
#include "util/time.hpp"

namespace bicord::interferers {

/// The duty-cycled carrier: one wideband burst per CSAT period, suppressible
/// for a leased window. Purely periodic — no RNG stream is consumed, so
/// adding an eNB to a scenario cannot perturb other agents' draws.
class LteUDevice {
 public:
  struct Config {
    /// Carrier band; defaults to Wi-Fi channel 11 (overlaps ZigBee ch 24).
    phy::Band band;
    double tx_power_dbm = 16.0;
    /// CSAT cycle: one ON burst of `period * duty` every `period`.
    Duration period = Duration::from_ms(20);
    double duty = 0.5;

    Config();
  };

  LteUDevice(phy::Medium& medium, phy::NodeId node)
      : LteUDevice(medium, node, Config{}) {}
  LteUDevice(phy::Medium& medium, phy::NodeId node, Config config);

  void start();
  void stop();
  /// Skip ON bursts until `sim.now() + d` (extends, never shortens). The
  /// burst already on the air — if any — completes; the grantor's traits
  /// margin covers that tail.
  void suppress_for(Duration d);

  [[nodiscard]] bool running() const { return running_; }
  [[nodiscard]] bool suppressed() const;
  [[nodiscard]] const Config& config() const { return config_; }
  [[nodiscard]] Duration on_duration() const;
  [[nodiscard]] std::uint64_t bursts_sent() const { return bursts_; }
  [[nodiscard]] std::uint64_t cycles_suppressed() const { return suppressed_cycles_; }

 private:
  void cycle_tick();

  phy::Medium& medium_;
  sim::Simulator& sim_;
  phy::NodeId node_;
  Config config_;
  bool running_ = false;
  sim::EventId event_ = sim::kInvalidEventId;
  TimePoint suppress_until_;
  std::uint64_t bursts_ = 0;
  std::uint64_t suppressed_cycles_ = 0;
  std::uint64_t seq_ = 0;
};

/// The eNB-side grantor. Listens on the overlapped ZigBee channel with a
/// sniffer radio, matches receptions on airtime + receive power only (LTE-U
/// cannot demodulate 802.15.4 — rx.success and rx.frame.kind are
/// deliberately never consulted), and answers a match by leasing a white
/// space from the shared CoordinationEngine and suppressing the carrier's
/// duty cycle for that long.
class LteUGrantor {
 public:
  struct Config {
    core::AllocatorParams allocator;
    /// 802.15.4 channel the sniffer parks on.
    int zigbee_channel = 24;
    /// Energy-envelope matcher: a burst counts as a channel request when its
    /// on-air duration is within `airtime_tolerance` of `control_airtime`
    /// and arrived at or above `min_rssi_dbm`. 4384 us is the 120-byte
    /// control packet at 250 kb/s incl. PHY overhead ((120+17) * 32 us).
    Duration control_airtime = Duration::from_us(4384);
    Duration airtime_tolerance = Duration::from_us(320);
    double min_rssi_dbm = -82.0;
    /// Extra lease on top of the allocator grant (kLteUTraits.grant_margin:
    /// covers the tail of an ON burst already on the air).
    Duration grant_margin = core::kLteUTraits.grant_margin;
    std::size_t grant_history_capacity = 1024;
  };

  LteUGrantor(phy::Medium& medium, phy::NodeId node, LteUDevice& device,
              Config config);

  [[nodiscard]] std::uint64_t requests_detected() const { return engine_.requests(); }
  [[nodiscard]] std::uint64_t suppressions_granted() const { return engine_.grants(); }
  [[nodiscard]] std::uint64_t requests_ignored() const { return engine_.ignored(); }
  [[nodiscard]] bool lease_active() const { return engine_.grant_active(); }
  [[nodiscard]] const core::WhitespaceAllocator& allocator() const {
    return engine_.allocator();
  }

 private:
  void on_sniff(const phy::RxResult& rx);

  sim::Simulator& sim_;
  LteUDevice& device_;
  Config config_;
  core::CoordinationEngine engine_;
  phy::Radio sniffer_;
};

}  // namespace bicord::interferers
