#include "detect/kmeans.hpp"

#include <algorithm>
#include <cmath>
#include <limits>
#include <map>
#include <stdexcept>

namespace bicord::detect {

double manhattan(const std::vector<double>& a, const std::vector<double>& b) {
  if (a.size() != b.size()) throw std::invalid_argument("manhattan: dim mismatch");
  double d = 0.0;
  for (std::size_t i = 0; i < a.size(); ++i) d += std::abs(a[i] - b[i]);
  return d;
}

std::vector<std::vector<double>> zscore_normalize(
    const std::vector<std::vector<double>>& rows) {
  if (rows.empty()) return {};
  const std::size_t dim = rows.front().size();
  std::vector<double> mean(dim, 0.0);
  std::vector<double> sd(dim, 0.0);
  for (const auto& r : rows) {
    if (r.size() != dim) throw std::invalid_argument("zscore_normalize: ragged rows");
    for (std::size_t d = 0; d < dim; ++d) mean[d] += r[d];
  }
  for (auto& m : mean) m /= static_cast<double>(rows.size());
  for (const auto& r : rows) {
    for (std::size_t d = 0; d < dim; ++d) {
      sd[d] += (r[d] - mean[d]) * (r[d] - mean[d]);
    }
  }
  for (auto& s : sd) s = std::sqrt(s / static_cast<double>(rows.size()));

  auto out = rows;
  for (auto& r : out) {
    for (std::size_t d = 0; d < dim; ++d) {
      if (sd[d] > 1e-12) r[d] = (r[d] - mean[d]) / sd[d];
    }
  }
  return out;
}

namespace {
struct Attempt {
  KmeansResult result;
  double cost = std::numeric_limits<double>::max();
};

Attempt run_once(const std::vector<std::vector<double>>& rows, int k,
                 int max_iterations, Rng& rng) {
  const std::size_t n = rows.size();
  const std::size_t dim = rows.front().size();

  // k-means++-style seeding under L1.
  std::vector<std::vector<double>> centroids;
  centroids.push_back(rows[static_cast<std::size_t>(
      rng.uniform_int(0, static_cast<std::int64_t>(n) - 1))]);
  while (static_cast<int>(centroids.size()) < k) {
    std::vector<double> d2(n);
    double total = 0.0;
    for (std::size_t i = 0; i < n; ++i) {
      double best = std::numeric_limits<double>::max();
      for (const auto& c : centroids) best = std::min(best, manhattan(rows[i], c));
      d2[i] = best;
      total += best;
    }
    double pick = rng.uniform() * total;
    std::size_t chosen = n - 1;
    for (std::size_t i = 0; i < n; ++i) {
      pick -= d2[i];
      if (pick <= 0.0) {
        chosen = i;
        break;
      }
    }
    centroids.push_back(rows[chosen]);
  }

  Attempt attempt;
  attempt.result.labels.assign(n, 0);
  for (int iter = 0; iter < max_iterations; ++iter) {
    bool changed = false;
    for (std::size_t i = 0; i < n; ++i) {
      int best = 0;
      double best_d = std::numeric_limits<double>::max();
      for (int c = 0; c < k; ++c) {
        const double d = manhattan(rows[i], centroids[static_cast<std::size_t>(c)]);
        if (d < best_d) {
          best_d = d;
          best = c;
        }
      }
      if (attempt.result.labels[i] != best) {
        attempt.result.labels[i] = best;
        changed = true;
      }
    }

    // L1 centroid update: per-dimension median of members.
    for (int c = 0; c < k; ++c) {
      std::vector<std::size_t> members;
      for (std::size_t i = 0; i < n; ++i) {
        if (attempt.result.labels[i] == c) members.push_back(i);
      }
      if (members.empty()) continue;  // keep previous centroid
      for (std::size_t d = 0; d < dim; ++d) {
        std::vector<double> vals;
        vals.reserve(members.size());
        for (auto i : members) vals.push_back(rows[i][d]);
        std::nth_element(vals.begin(), vals.begin() + static_cast<std::ptrdiff_t>(vals.size() / 2),
                         vals.end());
        centroids[static_cast<std::size_t>(c)][d] = vals[vals.size() / 2];
      }
    }

    attempt.result.iterations = iter + 1;
    if (!changed) {
      attempt.result.converged = true;
      break;
    }
  }

  attempt.result.centroids = centroids;
  attempt.cost = 0.0;
  for (std::size_t i = 0; i < n; ++i) {
    attempt.cost += manhattan(
        rows[i], centroids[static_cast<std::size_t>(attempt.result.labels[i])]);
  }
  return attempt;
}
}  // namespace

KmeansResult kmeans_manhattan(const std::vector<std::vector<double>>& rows,
                              KmeansParams params, Rng& rng) {
  if (rows.empty()) throw std::invalid_argument("kmeans_manhattan: no rows");
  if (params.k < 1) throw std::invalid_argument("kmeans_manhattan: k must be >= 1");
  if (rows.size() < static_cast<std::size_t>(params.k)) {
    throw std::invalid_argument("kmeans_manhattan: fewer rows than clusters");
  }

  Attempt best;
  for (int r = 0; r < params.restarts; ++r) {
    Attempt a = run_once(rows, params.k, params.max_iterations, rng);
    if (a.cost < best.cost) best = std::move(a);
  }
  return best.result;
}

double cluster_purity(const std::vector<int>& cluster_labels,
                      const std::vector<int>& true_labels) {
  if (cluster_labels.size() != true_labels.size() || cluster_labels.empty()) {
    throw std::invalid_argument("cluster_purity: mismatched or empty labels");
  }
  std::map<int, std::map<int, std::size_t>> table;
  for (std::size_t i = 0; i < cluster_labels.size(); ++i) {
    ++table[cluster_labels[i]][true_labels[i]];
  }
  std::size_t correct = 0;
  for (const auto& [cluster, counts] : table) {
    std::size_t best = 0;
    for (const auto& [label, n] : counts) best = std::max(best, n);
    correct += best;
  }
  return static_cast<double>(correct) / static_cast<double>(cluster_labels.size());
}

}  // namespace bicord::detect
