#pragma once
// k-means clustering under Manhattan (L1) distance — the paper's device
// fingerprint discriminator (Sec. VII-A, after Smoggy-Link).
//
// With L1 distance the centroid update that minimises within-cluster cost is
// the per-dimension *median*, so this is really k-medians; we keep the
// paper's "k-means with Manhattan distance" name. Features are z-score
// normalised before clustering so no dimension dominates.

#include <cstddef>
#include <vector>

#include "util/rng.hpp"

namespace bicord::detect {

struct KmeansResult {
  std::vector<int> labels;                    ///< cluster per input row
  std::vector<std::vector<double>> centroids; ///< in normalised space
  int iterations = 0;
  bool converged = false;
};

struct KmeansParams {
  int k = 3;
  int max_iterations = 100;
  /// Number of random restarts; the best total cost wins.
  int restarts = 12;
};

[[nodiscard]] double manhattan(const std::vector<double>& a,
                               const std::vector<double>& b);

/// Z-score normalisation: returns rows scaled to zero mean / unit stddev per
/// dimension (dimensions with zero spread pass through unchanged).
[[nodiscard]] std::vector<std::vector<double>> zscore_normalize(
    const std::vector<std::vector<double>>& rows);

[[nodiscard]] KmeansResult kmeans_manhattan(const std::vector<std::vector<double>>& rows,
                                            KmeansParams params, Rng& rng);

/// Cluster purity against ground-truth labels: for each cluster take its
/// majority true label; purity = correctly-majority-labelled / total.
[[nodiscard]] double cluster_purity(const std::vector<int>& cluster_labels,
                                    const std::vector<int>& true_labels);

}  // namespace bicord::detect
