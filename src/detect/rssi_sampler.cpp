#include "detect/rssi_sampler.hpp"

#include <stdexcept>

namespace bicord::detect {

RssiSampler::RssiSampler(phy::Medium& medium, phy::NodeId node, phy::Band band)
    : medium_(medium),
      sim_(medium.simulator()),
      node_(node),
      band_(band),
      rng_(medium.simulator().rng().split()) {
  // Bound attach: the sampler only reads energy at its own node, so the
  // spatially-indexed medium may prune edges that cannot move that reading.
  medium_.attach(this, node_);
}

RssiSampler::~RssiSampler() { medium_.detach(this); }

void RssiSampler::set_measurement_noise(double per_sample_sigma_db,
                                        double per_capture_sigma_db) {
  per_sample_sigma_db_ = per_sample_sigma_db;
  per_capture_sigma_db_ = per_capture_sigma_db;
}

void RssiSampler::capture(std::size_t samples, Duration period, SegmentCallback done) {
  if (in_flight_) throw std::logic_error("RssiSampler: capture already in flight");
  if (samples == 0) throw std::invalid_argument("RssiSampler: zero samples");
  in_flight_ = true;
  samples_ = samples;
  period_ = period;
  start_ = sim_.now();
  current_ = RssiSegment{};
  current_.sample_period = period;
  current_.dbm.reserve(samples);
  done_ = std::move(done);
  listen_time_ += period * static_cast<std::int64_t>(samples);
  // RNG order matches the per-tick sampler: per-capture offset first, then
  // per-sample noise in sample order (drawn in finish()).
  capture_offset_db_ = per_capture_sigma_db_ > 0.0
                           ? rng_.normal(0.0, per_capture_sigma_db_)
                           : 0.0;
  timeline_.clear();
  timeline_.push_back(EnergyPoint{start_, medium_.energy_dbm(node_, band_, node_)});
  glitch_timeline_.clear();
  glitch_timeline_.push_back(GlitchPoint{start_, glitch_offset_db_, glitch_until_});
  // Finalize via a zero-delay re-post at the last sample instant. Edge events
  // landing exactly on that instant can carry later tie-break seqs than an
  // event scheduled now (e.g. the end of a transmission that begins
  // mid-capture), so finishing directly would read the pre-edge level. The
  // re-posted event outranks everything queued before it, letting those
  // same-instant edges drain into the timeline first.
  sim_.after(period * static_cast<std::int64_t>(samples - 1),
             [this] { sim_.after(Duration::zero(), [this] { finish(); }); });
}

void RssiSampler::inject_offset(double offset_db, TimePoint until) {
  glitch_offset_db_ = offset_db;
  glitch_until_ = until;
  if (!in_flight_) return;
  const TimePoint now = sim_.now();
  GlitchPoint p{now, offset_db, until};
  if (glitch_timeline_.back().time == now) {
    glitch_timeline_.back() = p;
  } else {
    glitch_timeline_.push_back(p);
  }
}

void RssiSampler::on_tx_start(const phy::ActiveTransmission&) { record_edge(); }

void RssiSampler::on_tx_end(const phy::ActiveTransmission&) { record_edge(); }

void RssiSampler::on_position_change(phy::NodeId) { record_edge(); }

void RssiSampler::record_edge() {
  if (!in_flight_) return;
  const TimePoint now = sim_.now();
  const double e = medium_.energy_dbm(node_, band_, node_);
  // Several edges at one instant collapse to the final level: a sample on
  // that instant reads the post-edge energy.
  if (timeline_.back().time == now) {
    timeline_.back().dbm = e;
  } else {
    timeline_.push_back(EnergyPoint{now, e});
  }
}

void RssiSampler::finish() {
  std::size_t e = 0;
  std::size_t g = 0;
  for (std::size_t i = 0; i < samples_; ++i) {
    const TimePoint t = start_ + period_ * static_cast<std::int64_t>(i);
    while (e + 1 < timeline_.size() && timeline_[e + 1].time <= t) ++e;
    while (g + 1 < glitch_timeline_.size() && glitch_timeline_[g + 1].time <= t) ++g;
    double v = timeline_[e].dbm + capture_offset_db_;
    if (per_sample_sigma_db_ > 0.0) v += rng_.normal(0.0, per_sample_sigma_db_);
    if (t < glitch_timeline_[g].until) {
      v += glitch_timeline_[g].offset_db;
      ++glitched_;
    }
    current_.dbm.push_back(v);
  }
  in_flight_ = false;
  auto done = std::move(done_);
  done_ = nullptr;
  if (done) done(std::move(current_));
}

}  // namespace bicord::detect
