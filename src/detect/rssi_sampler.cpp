#include "detect/rssi_sampler.hpp"

#include <stdexcept>

namespace bicord::detect {

RssiSampler::RssiSampler(phy::Medium& medium, phy::NodeId node, phy::Band band)
    : medium_(medium),
      sim_(medium.simulator()),
      node_(node),
      band_(band),
      rng_(medium.simulator().rng().split()) {}

void RssiSampler::set_measurement_noise(double per_sample_sigma_db,
                                        double per_capture_sigma_db) {
  per_sample_sigma_db_ = per_sample_sigma_db;
  per_capture_sigma_db_ = per_capture_sigma_db;
}

void RssiSampler::capture(std::size_t samples, Duration period, SegmentCallback done) {
  if (in_flight_) throw std::logic_error("RssiSampler: capture already in flight");
  if (samples == 0) throw std::invalid_argument("RssiSampler: zero samples");
  in_flight_ = true;
  remaining_ = samples;
  period_ = period;
  current_ = RssiSegment{};
  current_.sample_period = period;
  current_.dbm.reserve(samples);
  done_ = std::move(done);
  listen_time_ += period * static_cast<std::int64_t>(samples);
  capture_offset_db_ = per_capture_sigma_db_ > 0.0
                           ? rng_.normal(0.0, per_capture_sigma_db_)
                           : 0.0;
  tick();
}

void RssiSampler::inject_offset(double offset_db, TimePoint until) {
  glitch_offset_db_ = offset_db;
  glitch_until_ = until;
}

void RssiSampler::tick() {
  double v = medium_.energy_dbm(node_, band_, node_) + capture_offset_db_;
  if (per_sample_sigma_db_ > 0.0) v += rng_.normal(0.0, per_sample_sigma_db_);
  if (sim_.now() < glitch_until_) {
    v += glitch_offset_db_;
    ++glitched_;
  }
  current_.dbm.push_back(v);
  if (--remaining_ == 0) {
    in_flight_ = false;
    auto done = std::move(done_);
    done_ = nullptr;
    if (done) done(std::move(current_));
    return;
  }
  sim_.after(period_, [this] { tick(); });
}

}  // namespace bicord::detect
