#pragma once
// CART decision tree (Gini impurity) for interferer classification.
//
// Trained at runtime on labelled synthetic RSSI segments, mirroring the
// paper's ZiSense-style decision tree. Kept deliberately small: dense
// feature vectors, axis-aligned splits, no pruning beyond depth/leaf-size
// limits — adequate for four features and a handful of classes.

#include <cstddef>
#include <cstdint>
#include <vector>

namespace bicord::detect {

class DecisionTree {
 public:
  struct Params {
    int max_depth = 8;
    std::size_t min_leaf = 3;
  };

  DecisionTree() : DecisionTree(Params{}) {}
  explicit DecisionTree(Params params) : params_(params) {}

  /// Fits the tree. `x` is row-major, all rows the same width; `y` holds
  /// non-negative class labels. Throws on empty or ragged input.
  void fit(const std::vector<std::vector<double>>& x, const std::vector<int>& y);

  [[nodiscard]] int predict(const std::vector<double>& row) const;
  [[nodiscard]] bool trained() const { return !nodes_.empty(); }
  [[nodiscard]] std::size_t node_count() const { return nodes_.size(); }
  [[nodiscard]] int depth() const;

  /// Classification accuracy on a labelled set.
  [[nodiscard]] double accuracy(const std::vector<std::vector<double>>& x,
                                const std::vector<int>& y) const;

 private:
  struct Node {
    int feature = -1;       ///< -1 for leaves
    double threshold = 0.0;
    std::int32_t left = -1;
    std::int32_t right = -1;
    int label = 0;          ///< majority class (leaves)
  };

  std::int32_t build(const std::vector<std::vector<double>>& x,
                     const std::vector<int>& y, std::vector<std::size_t>& idx,
                     int depth);

  Params params_;
  std::vector<Node> nodes_;
};

}  // namespace bicord::detect
