#pragma once
// The CTI-detection pipeline a BiCord ZigBee node runs before signaling
// (paper Sec. VII-A):
//   1. InterferenceClassifier — is the ongoing traffic Wi-Fi at all?
//      (ZiSense features -> decision tree; Bluetooth / microwave / ZigBee
//      activity must NOT trigger cross-technology signaling.)
//   2. DeviceIdentifier — *which* Wi-Fi transmitter is it?
//      (Smoggy-Link fingerprint -> Manhattan k-means clusters.)
//   3. PowerMap — per-device signaling transmit power negotiated in advance
//      (after ZigFi), looked up by cluster id.

#include <optional>
#include <vector>

#include "detect/decision_tree.hpp"
#include "detect/features.hpp"
#include "detect/kmeans.hpp"
#include "phy/frame.hpp"

namespace bicord::detect {

/// Trainable Wi-Fi-vs-everything-else classifier over RSSI segments.
class InterferenceClassifier {
 public:
  explicit InterferenceClassifier(FeatureParams params = FeatureParams{});

  /// Adds a labelled training segment.
  void add_training_segment(const RssiSegment& seg, phy::Technology label);
  /// Fits the decision tree; throws if no training data.
  void train(DecisionTree::Params tree_params = DecisionTree::Params{});
  [[nodiscard]] bool trained() const { return tree_.trained(); }

  /// Classifies a segment; nullopt when the segment shows no activity.
  [[nodiscard]] std::optional<phy::Technology> classify(const RssiSegment& seg) const;

  [[nodiscard]] double training_accuracy() const;
  [[nodiscard]] std::size_t training_size() const { return labels_.size(); }
  [[nodiscard]] const FeatureParams& feature_params() const { return params_; }

 private:
  FeatureParams params_;
  DecisionTree tree_;
  std::vector<std::vector<double>> features_;
  std::vector<int> labels_;
};

/// Clusters Wi-Fi device fingerprints; identify() maps a fresh segment to
/// the nearest cluster (device id).
class DeviceIdentifier {
 public:
  explicit DeviceIdentifier(FeatureParams params = FeatureParams{});

  void add_fingerprint(const RssiSegment& seg);
  /// Clusters the collected fingerprints into `k` devices.
  void build(int k, Rng& rng);
  [[nodiscard]] bool built() const { return !centroids_.empty(); }

  /// Nearest-cluster id for a fresh segment (Manhattan distance in the
  /// normalised fingerprint space).
  [[nodiscard]] int identify(const RssiSegment& seg) const;
  [[nodiscard]] const std::vector<int>& training_labels() const { return labels_; }
  [[nodiscard]] int cluster_count() const { return static_cast<int>(centroids_.size()); }

 private:
  [[nodiscard]] std::vector<double> normalize(const std::vector<double>& row) const;

  FeatureParams params_;
  std::vector<std::vector<double>> fingerprints_;  ///< raw feature rows
  std::vector<int> labels_;                        ///< cluster per training row
  std::vector<std::vector<double>> centroids_;     ///< in normalised space
  std::vector<double> mean_;
  std::vector<double> sd_;
  std::vector<double> weight_;  ///< multimodality weight per dimension
};

/// Signaling transmit power per identified Wi-Fi device.
class PowerMap {
 public:
  explicit PowerMap(double default_power_dbm = 0.0)
      : default_power_dbm_(default_power_dbm) {}

  void set(int device_id, double power_dbm);
  [[nodiscard]] double power_for(int device_id) const;
  [[nodiscard]] double default_power() const { return default_power_dbm_; }
  [[nodiscard]] std::size_t size() const { return powers_.size(); }

 private:
  double default_power_dbm_;
  std::vector<std::pair<int, double>> powers_;
};

}  // namespace bicord::detect
