#pragma once
// RSSI-shape features for interferer classification and fingerprinting.
//
// Technology classification uses the four ZiSense features (Sec. VII-A):
// average on-air time, minimum packet interval, peak-to-average power ratio,
// and under-noise-floor. Per-device identification uses the four
// Smoggy-Link fingerprint features: energy span, energy level, energy
// variance, occupancy level.

#include <array>
#include <vector>

#include "detect/rssi_sampler.hpp"

namespace bicord::detect {

/// ZiSense technology-discrimination features.
struct TechFeatures {
  double avg_on_air_us = 0.0;      ///< mean length of busy runs
  double min_packet_interval_us = 0.0;  ///< shortest idle gap between runs
  double peak_to_avg_db = 0.0;     ///< max - mean power of busy samples (dB)
  double under_noise_floor = 0.0;  ///< fraction of samples near/below floor

  [[nodiscard]] std::array<double, 4> as_array() const {
    return {avg_on_air_us, min_packet_interval_us, peak_to_avg_db, under_noise_floor};
  }
};

/// Smoggy-Link per-device fingerprint features.
struct DeviceFingerprint {
  double energy_span_db = 0.0;   ///< max - min of busy samples
  double energy_level_dbm = 0.0; ///< mean of busy samples
  double energy_variance = 0.0;  ///< variance of busy samples (dB^2)
  double occupancy = 0.0;        ///< fraction of busy samples

  [[nodiscard]] std::array<double, 4> as_array() const {
    return {energy_span_db, energy_level_dbm, energy_variance, occupancy};
  }
};

struct FeatureParams {
  /// Samples above `noise_floor_dbm + busy_margin_db` count as busy.
  double noise_floor_dbm = -97.0;
  double busy_margin_db = 5.0;
  /// `under_noise_floor` counts samples below floor + this margin.
  double floor_margin_db = 2.0;
};

[[nodiscard]] TechFeatures extract_tech_features(const RssiSegment& seg,
                                                 const FeatureParams& params);

[[nodiscard]] DeviceFingerprint extract_fingerprint(const RssiSegment& seg,
                                                    const FeatureParams& params);

/// True when the segment contains any busy sample at all (idle channels are
/// not classified).
[[nodiscard]] bool has_activity(const RssiSegment& seg, const FeatureParams& params);

}  // namespace bicord::detect
