#include "detect/classifier.hpp"

#include <algorithm>
#include <cmath>
#include <limits>
#include <stdexcept>

namespace bicord::detect {

namespace {
std::vector<double> tech_row(const RssiSegment& seg, const FeatureParams& params) {
  const auto f = extract_tech_features(seg, params).as_array();
  return {f.begin(), f.end()};
}

std::vector<double> fingerprint_row(const RssiSegment& seg, const FeatureParams& params) {
  const auto f = extract_fingerprint(seg, params).as_array();
  return {f.begin(), f.end()};
}
}  // namespace

InterferenceClassifier::InterferenceClassifier(FeatureParams params) : params_(params) {}

void InterferenceClassifier::add_training_segment(const RssiSegment& seg,
                                                  phy::Technology label) {
  features_.push_back(tech_row(seg, params_));
  labels_.push_back(static_cast<int>(label));
}

void InterferenceClassifier::train(DecisionTree::Params tree_params) {
  if (features_.empty()) {
    throw std::logic_error("InterferenceClassifier::train: no training data");
  }
  tree_ = DecisionTree(tree_params);
  tree_.fit(features_, labels_);
}

std::optional<phy::Technology> InterferenceClassifier::classify(
    const RssiSegment& seg) const {
  if (!tree_.trained()) {
    throw std::logic_error("InterferenceClassifier::classify before train");
  }
  if (!has_activity(seg, params_)) return std::nullopt;
  return static_cast<phy::Technology>(tree_.predict(tech_row(seg, params_)));
}

double InterferenceClassifier::training_accuracy() const {
  return tree_.accuracy(features_, labels_);
}

DeviceIdentifier::DeviceIdentifier(FeatureParams params) : params_(params) {}

void DeviceIdentifier::add_fingerprint(const RssiSegment& seg) {
  fingerprints_.push_back(fingerprint_row(seg, params_));
}

void DeviceIdentifier::build(int k, Rng& rng) {
  if (fingerprints_.empty()) {
    throw std::logic_error("DeviceIdentifier::build: no fingerprints");
  }
  // Record normalisation so fresh segments map into the same space.
  const std::size_t dim = fingerprints_.front().size();
  const auto n = static_cast<double>(fingerprints_.size());
  mean_.assign(dim, 0.0);
  sd_.assign(dim, 0.0);
  weight_.assign(dim, 1.0);
  for (const auto& r : fingerprints_) {
    for (std::size_t d = 0; d < dim; ++d) mean_[d] += r[d];
  }
  for (auto& m : mean_) m /= n;
  for (const auto& r : fingerprints_) {
    for (std::size_t d = 0; d < dim; ++d) {
      sd_[d] += (r[d] - mean_[d]) * (r[d] - mean_[d]);
    }
  }
  for (auto& s : sd_) s = std::sqrt(s / n);

  // Dimension weighting: a fingerprint dimension only helps if it carries
  // *cluster structure*. Well-separated device clusters make a dimension
  // multimodal (negative excess kurtosis); pure measurement noise is
  // near-Gaussian (excess kurtosis ~ 0) and, once z-scored, would dilute
  // the distance as much as a real feature. Weight = max(-kurtosis, floor).
  for (std::size_t d = 0; d < dim; ++d) {
    if (sd_[d] <= 1e-12) {
      weight_[d] = 0.0;
      continue;
    }
    double m4 = 0.0;
    for (const auto& r : fingerprints_) {
      const double z = (r[d] - mean_[d]) / sd_[d];
      m4 += z * z * z * z;
    }
    const double excess_kurtosis = m4 / n - 3.0;
    weight_[d] = std::max(0.1, -excess_kurtosis);
  }

  std::vector<std::vector<double>> normalized;
  normalized.reserve(fingerprints_.size());
  for (const auto& r : fingerprints_) normalized.push_back(normalize(r));

  KmeansParams kp;
  kp.k = k;
  const KmeansResult result = kmeans_manhattan(normalized, kp, rng);
  labels_ = result.labels;
  centroids_ = result.centroids;
}

std::vector<double> DeviceIdentifier::normalize(const std::vector<double>& row) const {
  auto out = row;
  for (std::size_t d = 0; d < out.size() && d < mean_.size(); ++d) {
    if (sd_[d] > 1e-12) {
      out[d] = (out[d] - mean_[d]) / sd_[d] * weight_[d];
    } else {
      out[d] = 0.0;
    }
  }
  return out;
}

int DeviceIdentifier::identify(const RssiSegment& seg) const {
  if (centroids_.empty()) throw std::logic_error("DeviceIdentifier::identify before build");
  const auto row = normalize(fingerprint_row(seg, params_));
  int best = 0;
  double best_d = std::numeric_limits<double>::max();
  for (std::size_t c = 0; c < centroids_.size(); ++c) {
    const double d = manhattan(row, centroids_[c]);
    if (d < best_d) {
      best_d = d;
      best = static_cast<int>(c);
    }
  }
  return best;
}

void PowerMap::set(int device_id, double power_dbm) {
  for (auto& [id, p] : powers_) {
    if (id == device_id) {
      p = power_dbm;
      return;
    }
  }
  powers_.emplace_back(device_id, power_dbm);
}

double PowerMap::power_for(int device_id) const {
  for (const auto& [id, p] : powers_) {
    if (id == device_id) return p;
  }
  return default_power_dbm_;
}

}  // namespace bicord::detect
