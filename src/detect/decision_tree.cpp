#include "detect/decision_tree.hpp"

#include <algorithm>
#include <map>
#include <numeric>
#include <stdexcept>

namespace bicord::detect {

namespace {
int majority_label(const std::vector<int>& y, const std::vector<std::size_t>& idx) {
  std::map<int, std::size_t> counts;
  for (auto i : idx) ++counts[y[i]];
  int best = 0;
  std::size_t best_n = 0;
  for (const auto& [label, n] : counts) {
    if (n > best_n) {
      best = label;
      best_n = n;
    }
  }
  return best;
}

double gini(const std::map<int, std::size_t>& counts, std::size_t total) {
  if (total == 0) return 0.0;
  double g = 1.0;
  for (const auto& [label, n] : counts) {
    const double p = static_cast<double>(n) / static_cast<double>(total);
    g -= p * p;
  }
  return g;
}
}  // namespace

void DecisionTree::fit(const std::vector<std::vector<double>>& x,
                       const std::vector<int>& y) {
  if (x.empty() || x.size() != y.size()) {
    throw std::invalid_argument("DecisionTree::fit: empty or mismatched input");
  }
  const std::size_t width = x.front().size();
  for (const auto& row : x) {
    if (row.size() != width) throw std::invalid_argument("DecisionTree::fit: ragged rows");
  }
  nodes_.clear();
  std::vector<std::size_t> idx(x.size());
  std::iota(idx.begin(), idx.end(), 0);
  build(x, y, idx, 0);
}

std::int32_t DecisionTree::build(const std::vector<std::vector<double>>& x,
                                 const std::vector<int>& y,
                                 std::vector<std::size_t>& idx, int depth) {
  const auto node_id = static_cast<std::int32_t>(nodes_.size());
  nodes_.emplace_back();
  nodes_[static_cast<std::size_t>(node_id)].label = majority_label(y, idx);

  // Stop if pure, too deep, or too small.
  const bool pure = std::all_of(idx.begin(), idx.end(),
                                [&](std::size_t i) { return y[i] == y[idx.front()]; });
  if (pure || depth >= params_.max_depth || idx.size() < 2 * params_.min_leaf) {
    return node_id;
  }

  // Exhaustive best split over (feature, midpoint-between-adjacent-values).
  const std::size_t width = x.front().size();
  int best_feature = -1;
  double best_threshold = 0.0;
  double best_score = 1e18;

  std::vector<std::size_t> order = idx;
  for (std::size_t f = 0; f < width; ++f) {
    std::sort(order.begin(), order.end(),
              [&](std::size_t a, std::size_t b) { return x[a][f] < x[b][f]; });

    std::map<int, std::size_t> left_counts;
    std::map<int, std::size_t> right_counts;
    for (auto i : order) ++right_counts[y[i]];

    for (std::size_t split = 1; split < order.size(); ++split) {
      const std::size_t moved = order[split - 1];
      ++left_counts[y[moved]];
      if (--right_counts[y[moved]] == 0) right_counts.erase(y[moved]);

      if (split < params_.min_leaf || order.size() - split < params_.min_leaf) continue;
      const double lo = x[order[split - 1]][f];
      const double hi = x[order[split]][f];
      if (hi <= lo) continue;  // identical values cannot be separated

      const double score =
          (static_cast<double>(split) * gini(left_counts, split) +
           static_cast<double>(order.size() - split) *
               gini(right_counts, order.size() - split)) /
          static_cast<double>(order.size());
      if (score < best_score) {
        best_score = score;
        best_feature = static_cast<int>(f);
        best_threshold = (lo + hi) / 2.0;
      }
    }
  }

  if (best_feature < 0) return node_id;

  std::vector<std::size_t> left_idx;
  std::vector<std::size_t> right_idx;
  for (auto i : idx) {
    (x[i][static_cast<std::size_t>(best_feature)] < best_threshold ? left_idx : right_idx)
        .push_back(i);
  }
  if (left_idx.empty() || right_idx.empty()) return node_id;

  const std::int32_t left = build(x, y, left_idx, depth + 1);
  const std::int32_t right = build(x, y, right_idx, depth + 1);
  auto& node = nodes_[static_cast<std::size_t>(node_id)];
  node.feature = best_feature;
  node.threshold = best_threshold;
  node.left = left;
  node.right = right;
  return node_id;
}

int DecisionTree::predict(const std::vector<double>& row) const {
  if (nodes_.empty()) throw std::logic_error("DecisionTree::predict before fit");
  std::int32_t cur = 0;
  while (true) {
    const Node& n = nodes_[static_cast<std::size_t>(cur)];
    if (n.feature < 0) return n.label;
    if (static_cast<std::size_t>(n.feature) >= row.size()) {
      throw std::invalid_argument("DecisionTree::predict: row too narrow");
    }
    cur = row[static_cast<std::size_t>(n.feature)] < n.threshold ? n.left : n.right;
  }
}

int DecisionTree::depth() const {
  // Iterative depth via parent-less traversal: recompute by walking.
  std::vector<int> depth_of(nodes_.size(), 0);
  int max_depth = 0;
  for (std::size_t i = 0; i < nodes_.size(); ++i) {
    const Node& n = nodes_[i];
    if (n.feature >= 0) {
      depth_of[static_cast<std::size_t>(n.left)] = depth_of[i] + 1;
      depth_of[static_cast<std::size_t>(n.right)] = depth_of[i] + 1;
      max_depth = std::max(max_depth, depth_of[i] + 1);
    }
  }
  return max_depth;
}

double DecisionTree::accuracy(const std::vector<std::vector<double>>& x,
                              const std::vector<int>& y) const {
  if (x.empty() || x.size() != y.size()) {
    throw std::invalid_argument("DecisionTree::accuracy: empty or mismatched input");
  }
  std::size_t hits = 0;
  for (std::size_t i = 0; i < x.size(); ++i) {
    if (predict(x[i]) == y[i]) ++hits;
  }
  return static_cast<double>(hits) / static_cast<double>(x.size());
}

}  // namespace bicord::detect
