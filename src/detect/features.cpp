#include "detect/features.hpp"

#include <algorithm>
#include <cmath>

#include "phy/units.hpp"

namespace bicord::detect {

namespace {
struct Runs {
  std::vector<std::size_t> on_lengths;   ///< busy run lengths in samples
  std::vector<std::size_t> gap_lengths;  ///< idle gaps *between* busy runs
};

Runs find_runs(const RssiSegment& seg, double busy_threshold_dbm) {
  Runs runs;
  std::size_t run = 0;
  std::size_t gap = 0;
  bool seen_busy = false;
  for (double v : seg.dbm) {
    if (v >= busy_threshold_dbm) {
      if (seen_busy && run == 0 && gap > 0) runs.gap_lengths.push_back(gap);
      gap = 0;
      ++run;
      seen_busy = true;
    } else {
      if (run > 0) runs.on_lengths.push_back(run);
      run = 0;
      if (seen_busy) ++gap;
    }
  }
  if (run > 0) runs.on_lengths.push_back(run);
  return runs;
}
}  // namespace

bool has_activity(const RssiSegment& seg, const FeatureParams& params) {
  const double busy = params.noise_floor_dbm + params.busy_margin_db;
  return std::any_of(seg.dbm.begin(), seg.dbm.end(),
                     [busy](double v) { return v >= busy; });
}

TechFeatures extract_tech_features(const RssiSegment& seg, const FeatureParams& params) {
  TechFeatures f;
  const double busy = params.noise_floor_dbm + params.busy_margin_db;
  const double period_us = static_cast<double>(seg.sample_period.us());
  const Runs runs = find_runs(seg, busy);

  if (!runs.on_lengths.empty()) {
    double total = 0.0;
    for (auto len : runs.on_lengths) total += static_cast<double>(len);
    f.avg_on_air_us = total / static_cast<double>(runs.on_lengths.size()) * period_us;
  }
  if (!runs.gap_lengths.empty()) {
    const auto min_gap = *std::min_element(runs.gap_lengths.begin(), runs.gap_lengths.end());
    f.min_packet_interval_us = static_cast<double>(min_gap) * period_us;
  } else {
    // One continuous emission: report the full window as "interval".
    f.min_packet_interval_us = static_cast<double>(seg.dbm.size()) * period_us;
  }

  double peak_mw = 0.0;
  double sum_mw = 0.0;
  std::size_t busy_count = 0;
  std::size_t under = 0;
  for (double v : seg.dbm) {
    if (v >= busy) {
      const double mw = phy::dbm_to_mw(v);
      peak_mw = std::max(peak_mw, mw);
      sum_mw += mw;
      ++busy_count;
    }
    if (v <= params.noise_floor_dbm + params.floor_margin_db) ++under;
  }
  if (busy_count > 0) {
    const double avg_mw = sum_mw / static_cast<double>(busy_count);
    f.peak_to_avg_db = 10.0 * std::log10(peak_mw / avg_mw);
  }
  f.under_noise_floor =
      static_cast<double>(under) / static_cast<double>(seg.dbm.size());
  return f;
}

DeviceFingerprint extract_fingerprint(const RssiSegment& seg,
                                      const FeatureParams& params) {
  DeviceFingerprint fp;
  const double busy = params.noise_floor_dbm + params.busy_margin_db;
  double lo = 0.0;
  double hi = 0.0;
  double sum = 0.0;
  double sum2 = 0.0;
  std::size_t n = 0;
  for (double v : seg.dbm) {
    if (v < busy) continue;
    if (n == 0) {
      lo = hi = v;
    } else {
      lo = std::min(lo, v);
      hi = std::max(hi, v);
    }
    sum += v;
    sum2 += v * v;
    ++n;
  }
  if (n > 0) {
    const double dn = static_cast<double>(n);
    fp.energy_span_db = hi - lo;
    fp.energy_level_dbm = sum / dn;
    fp.energy_variance = std::max(0.0, sum2 / dn - fp.energy_level_dbm * fp.energy_level_dbm);
  }
  fp.occupancy = static_cast<double>(n) / static_cast<double>(seg.dbm.size());
  return fp;
}

}  // namespace bicord::detect
