#pragma once
// High-rate RSSI capture at a ZigBee node.
//
// The paper's CTI-detection stage records RSSI sequences "at a frequency of
// 40 kHz for 5 ms" (200 samples) and classifies the interferer from their
// shape. The sampler reads the medium's in-band energy on an event-driven
// 25 us grid; because energy only changes at transmission edges this is
// exact, not an approximation.

#include <functional>
#include <vector>

#include "phy/medium.hpp"
#include "util/rng.hpp"
#include "sim/simulator.hpp"
#include "util/time.hpp"

namespace bicord::detect {

struct RssiSegment {
  Duration sample_period = Duration::from_us(25);  ///< 40 kHz
  std::vector<double> dbm;

  [[nodiscard]] Duration length() const {
    return sample_period * static_cast<std::int64_t>(dbm.size());
  }
};

class RssiSampler {
 public:
  using SegmentCallback = std::function<void(RssiSegment)>;

  RssiSampler(phy::Medium& medium, phy::NodeId node, phy::Band band);

  /// Measurement realism (both default to 0 = ideal sampler):
  /// per-sample RSSI register noise and a per-capture shadowing offset
  /// (slow indoor fading: the whole 5 ms segment shifts together).
  void set_measurement_noise(double per_sample_sigma_db, double per_capture_sigma_db);

  /// Captures `samples` RSSI readings spaced `period` apart, then invokes
  /// `done`. Only one capture may be in flight.
  void capture(std::size_t samples, Duration period, SegmentCallback done);
  /// Paper defaults: 200 samples at 40 kHz (5 ms).
  void capture(SegmentCallback done) {
    capture(200, Duration::from_us(25), std::move(done));
  }

  [[nodiscard]] bool busy() const { return in_flight_; }
  /// Total radio-on time spent sampling (for the energy analysis).
  [[nodiscard]] Duration listen_time() const { return listen_time_; }

  /// Fault injection: adds `offset_db` to every sample read before `until`
  /// (a stuck AGC / saturated front end). Replaces any previous glitch.
  void inject_offset(double offset_db, TimePoint until);
  [[nodiscard]] std::uint64_t glitched_samples() const { return glitched_; }

 private:
  void tick();

  phy::Medium& medium_;
  sim::Simulator& sim_;
  phy::NodeId node_;
  phy::Band band_;
  Rng rng_;
  double per_sample_sigma_db_ = 0.0;
  double per_capture_sigma_db_ = 0.0;
  double capture_offset_db_ = 0.0;
  bool in_flight_ = false;
  std::size_t remaining_ = 0;
  Duration period_;
  RssiSegment current_;
  SegmentCallback done_;
  Duration listen_time_;
  double glitch_offset_db_ = 0.0;
  TimePoint glitch_until_;
  std::uint64_t glitched_ = 0;
};

}  // namespace bicord::detect
