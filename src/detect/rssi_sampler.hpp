#pragma once
// High-rate RSSI capture at a ZigBee node.
//
// The paper's CTI-detection stage records RSSI sequences "at a frequency of
// 40 kHz for 5 ms" (200 samples) and classifies the interferer from their
// shape. In-band energy is piecewise constant between transmission edges and
// node moves, so the sampler listens for those edges, records an energy
// timeline, and evaluates all N samples in a single end-of-capture event —
// exact, and hundreds of simulator events cheaper than ticking per sample.

#include <functional>
#include <vector>

#include "phy/medium.hpp"
#include "util/rng.hpp"
#include "sim/simulator.hpp"
#include "util/time.hpp"

namespace bicord::detect {

struct RssiSegment {
  Duration sample_period = Duration::from_us(25);  ///< 40 kHz
  std::vector<double> dbm;

  [[nodiscard]] Duration length() const {
    return sample_period * static_cast<std::int64_t>(dbm.size());
  }
};

class RssiSampler final : public phy::MediumListener {
 public:
  using SegmentCallback = std::function<void(RssiSegment)>;

  RssiSampler(phy::Medium& medium, phy::NodeId node, phy::Band band);
  ~RssiSampler();

  // Registered with the medium by address, so the sampler must not move.
  RssiSampler(const RssiSampler&) = delete;
  RssiSampler& operator=(const RssiSampler&) = delete;

  /// Measurement realism (both default to 0 = ideal sampler):
  /// per-sample RSSI register noise and a per-capture shadowing offset
  /// (slow indoor fading: the whole 5 ms segment shifts together).
  void set_measurement_noise(double per_sample_sigma_db, double per_capture_sigma_db);

  /// Captures `samples` RSSI readings spaced `period` apart, then invokes
  /// `done`. `done` fires at the last sample's instant (start +
  /// (samples-1) * period). Only one capture may be in flight.
  void capture(std::size_t samples, Duration period, SegmentCallback done);
  /// Paper defaults: 200 samples at 40 kHz (5 ms).
  void capture(SegmentCallback done) {
    capture(200, Duration::from_us(25), std::move(done));
  }

  [[nodiscard]] bool busy() const { return in_flight_; }
  /// Total radio-on time spent sampling (for the energy analysis).
  [[nodiscard]] Duration listen_time() const { return listen_time_; }

  /// Fault injection: adds `offset_db` to every sample read before `until`
  /// (a stuck AGC / saturated front end). Replaces any previous glitch.
  void inject_offset(double offset_db, TimePoint until);
  [[nodiscard]] std::uint64_t glitched_samples() const { return glitched_; }

  // MediumListener: energy changes only at these edges; record them.
  void on_tx_start(const phy::ActiveTransmission& tx) override;
  void on_tx_end(const phy::ActiveTransmission& tx) override;
  void on_position_change(phy::NodeId node) override;

 private:
  /// One energy level, valid from `time` until the next point.
  struct EnergyPoint {
    TimePoint time;
    double dbm;
  };
  /// Glitch parameters as of `time` (inject_offset may fire mid-capture).
  struct GlitchPoint {
    TimePoint time;
    double offset_db;
    TimePoint until;
  };

  void record_edge();
  void finish();

  phy::Medium& medium_;
  sim::Simulator& sim_;
  phy::NodeId node_;
  phy::Band band_;
  Rng rng_;
  double per_sample_sigma_db_ = 0.0;
  double per_capture_sigma_db_ = 0.0;
  double capture_offset_db_ = 0.0;
  bool in_flight_ = false;
  std::size_t samples_ = 0;
  Duration period_;
  TimePoint start_;
  std::vector<EnergyPoint> timeline_;
  std::vector<GlitchPoint> glitch_timeline_;
  RssiSegment current_;
  SegmentCallback done_;
  Duration listen_time_;
  double glitch_offset_db_ = 0.0;
  TimePoint glitch_until_;
  std::uint64_t glitched_ = 0;
};

}  // namespace bicord::detect
