#include "ctc/packet_level.hpp"

#include <memory>

namespace bicord::ctc {

namespace {
using namespace bicord::time_literals;

constexpr double kHighThreshold = 0.45;  // same jitter classification as BiCord
constexpr int kPacketsPerOneWindow = 3;  // fill a '1' window with energy
}  // namespace

ZigfiCtcLink::ZigfiCtcLink(zigbee::ZigbeeMac& sender, wifi::WifiMac& receiver,
                           csi::CsiModelParams csi_params, ZigfiConfig config)
    : sender_(sender),
      receiver_(receiver),
      sim_(sender.simulator()),
      config_(config),
      csi_(sender.simulator(), csi_params) {
  receiver_.set_rx_hook([this](const phy::RxResult& rx) { csi_.on_frame(rx); });
  csi_.set_sample_callback([this](const csi::CsiSample& s) {
    if (!sending_) return;
    const auto idx = (s.time - window_origin_) / config_.window;
    if (idx < 0 || idx >= static_cast<std::int64_t>(window_total_.size())) return;
    ++window_total_[static_cast<std::size_t>(idx)];
    if (s.amplitude > kHighThreshold) ++window_high_[static_cast<std::size_t>(idx)];
  });
}

std::vector<int> ZigfiCtcLink::frame_bits(std::uint8_t message) const {
  std::vector<int> bits(kBarker7, kBarker7 + 7);
  for (int b = 7; b >= 0; --b) bits.push_back((message >> b) & 1);
  return bits;
}

void ZigfiCtcLink::send(std::uint8_t message, int max_attempts) {
  if (sending_) throw std::logic_error("ZigfiCtcLink::send: message in flight");
  sending_ = true;
  message_ = message;
  attempts_left_ = max_attempts;
  message_start_ = sim_.now();
  start_attempt();
}

void ZigfiCtcLink::start_attempt() {
  --attempts_left_;
  ++attempts_used_;
  bits_ = frame_bits(message_);
  bit_index_ = 0;
  window_origin_ = sim_.now();
  window_high_.assign(bits_.size(), 0);
  window_total_.assign(bits_.size(), 0);
  send_window(0);
}

void ZigfiCtcLink::send_window(std::size_t index) {
  if (index >= bits_.size()) {
    // Give the receiver the final window plus a guard, then decode.
    sim_.after(2_ms, [this] { decode(); });
    return;
  }
  bit_index_ = index;
  ++windows_tx_;
  if (bits_[index] == 0) {
    // Silence for one window.
    sim_.after(config_.window, [this, index] { send_window(index + 1); });
    return;
  }
  // A '1' window: fill it with back-to-back packets (presence modulation).
  // The chain function holds only a weak reference to itself; shared
  // ownership rides in the in-flight completion/timer captures, so the
  // last pending hop releases the function instead of leaving a
  // shared_ptr cycle behind (LeakSanitizer flagged the self-capture).
  auto send_chain = std::make_shared<std::function<void(int)>>();
  const TimePoint window_end = sim_.now() + config_.window;
  std::weak_ptr<std::function<void(int)>> weak_chain = send_chain;
  *send_chain = [this, weak_chain, index, window_end](int remaining) {
    const Duration airtime =
        sender_.config().timings.data_airtime(config_.packet_bytes);
    if (remaining == 0 || sim_.now() + airtime > window_end) {
      const Duration left = window_end - sim_.now();
      sim_.after(left > Duration::zero() ? left : Duration::zero(),
                 [this, index] { send_window(index + 1); });
      return;
    }
    zigbee::ZigbeeMac::SendRequest req;
    req.dst = phy::kBroadcastNode;
    req.payload_bytes = config_.packet_bytes;
    req.kind = phy::FrameKind::Control;
    req.power_dbm_override = config_.tx_power_dbm;
    // We are being invoked through the function, so the lock cannot fail.
    auto self = weak_chain.lock();
    sender_.send_raw(req, [this, self, remaining] {
      sim_.after(300_us, [self, remaining] { (*self)(remaining - 1); });
    });
  };
  (*send_chain)(kPacketsPerOneWindow);
}

void ZigfiCtcLink::decode() {
  auto read_bit = [this](std::size_t i) {
    if (window_total_[i] == 0) return 0;
    return static_cast<double>(window_high_[i]) /
                       static_cast<double>(window_total_[i]) >=
                   config_.decision_ratio
               ? 1
               : 0;
  };

  // Synchronisation: the Barker-7 preamble must correlate (>= 6/7 chips).
  int sync_matches = 0;
  for (std::size_t i = 0; i < 7; ++i) {
    if (read_bit(i) == kBarker7[i]) ++sync_matches;
  }
  std::optional<std::uint8_t> received;
  if (sync_matches >= 6) {
    std::uint8_t value = 0;
    for (std::size_t i = 0; i < 8; ++i) {
      value = static_cast<std::uint8_t>((value << 1) | read_bit(7 + i));
    }
    received = value;
  }

  if (received.has_value() && *received == message_) {
    sending_ = false;
    ++decoded_;
    if (callback_) callback_(*received, sim_.now() - message_start_);
    return;
  }
  if (attempts_left_ > 0) {
    start_attempt();
    return;
  }
  sending_ = false;  // undelivered: caller observes no callback
}

FreeBeeCtcLink::FreeBeeCtcLink(zigbee::ZigbeeMac& sender, wifi::WifiMac& receiver)
    : FreeBeeCtcLink(sender, receiver, FreeBeeConfig{}) {}

FreeBeeCtcLink::FreeBeeCtcLink(zigbee::ZigbeeMac& sender, wifi::WifiMac& receiver,
                               FreeBeeConfig config)
    : sender_(sender),
      receiver_(receiver),
      sim_(sender.simulator()),
      config_(config),
      rng_(sender.simulator().rng().split()) {
  sender_.medium().attach(this);
}

FreeBeeCtcLink::~FreeBeeCtcLink() { sender_.medium().detach(this); }

void FreeBeeCtcLink::on_tx_start(const phy::ActiveTransmission& tx) {
  if (beacon_in_flight_ && tx.frame.tech == phy::Technology::WiFi) ++wifi_overlaps_;
}

void FreeBeeCtcLink::on_tx_end(const phy::ActiveTransmission&) {}

void FreeBeeCtcLink::send() {
  if (sending_) throw std::logic_error("FreeBeeCtcLink::send: message in flight");
  sending_ = true;
  symbols_received_ = 0;
  message_start_ = sim_.now();
  beacon_tick();
}

void FreeBeeCtcLink::beacon_tick() {
  if (!sending_) return;
  // Timing-shift modulation: the beacon is delayed by a symbol-dependent
  // number of shift units (the exact symbol value does not matter for the
  // latency analysis; the shift keeps the schedule paper-faithful).
  const Duration shift = config_.shift_unit * rng_.uniform_int(0, 3);
  event_ = sim_.after(config_.beacon_interval + shift, [this] {
    event_ = sim::kInvalidEventId;
    if (!sending_) return;
    ++beacons_;

    // The receiver reads the beacon's timing only on a clear channel: any
    // Wi-Fi activity overlapping the beacon hides it (paper Sec. III-B).
    bool active_at_start = false;
    for (const auto& tx : receiver_.medium().active()) {
      if (tx.frame.tech == phy::Technology::WiFi) active_at_start = true;
    }

    zigbee::ZigbeeMac::SendRequest beacon;
    beacon.dst = phy::kBroadcastNode;
    beacon.payload_bytes = config_.beacon_bytes;
    beacon.kind = phy::FrameKind::Data;
    beacon.power_dbm_override = config_.tx_power_dbm;
    if (sender_.radio().transmitting()) {
      // Previous beacon still on air (pathological config); skip this slot.
      beacon_tick();
      return;
    }
    beacon_in_flight_ = true;
    wifi_overlaps_ = 0;
    sender_.send_raw(beacon, [this, active_at_start] {
      beacon_in_flight_ = false;
      const bool dirty = active_at_start || wifi_overlaps_ > 0;
      if (!dirty) {
        ++clean_;
        if (++symbols_received_ >= config_.symbols_per_message) {
          sending_ = false;
          if (callback_) callback_(sim_.now() - message_start_);
          return;
        }
      }
      beacon_tick();
    });
  });
}

}  // namespace bicord::ctc
