#pragma once
// Packet-level cross-technology communication baselines (paper Sec. II/III-B).
//
// Before BiCord, sending information from ZigBee to Wi-Fi meant *packet-
// level modulation*: segment time into windows and encode one bit per
// window as ZigBee-transmission presence/absence. Two archetypes are
// modelled here, faithful to the properties the paper argues about:
//
//  * ZigfiCtcLink — ZigFi/AdaComm style, works on a *busy* channel: the
//    Wi-Fi receiver reads each window from its CSI stream, but first has to
//    synchronise to the window grid via a Barker-7 preamble (AdaComm's
//    measured synchronisation cost is ~110 ms). Only after sync can the
//    payload be decoded.
//  * FreeBeeCtcLink — FreeBee style, embeds symbols in the *timing shift*
//    of periodic beacons: cheap, but a beacon conveys information only if
//    it arrives on a clear channel, so throughput collapses exactly when
//    coordination is needed (Wi-Fi busy).
//
// The bench `bench_motivation_ctc` compares the time these schemes need to
// convey one channel request against BiCord's one-bit signaling — the
// quantitative version of the paper's "CTC is too slow to coordinate"
// argument.

#include <cstdint>
#include <functional>
#include <optional>
#include <vector>

#include "csi/csi_model.hpp"
#include "phy/medium.hpp"
#include "sim/simulator.hpp"
#include "wifi/wifi_mac.hpp"
#include "zigbee/zigbee_mac.hpp"

namespace bicord::ctc {

/// Barker-7 code used as the synchronisation preamble (AdaComm uses a
/// Barker sequence for window alignment).
inline constexpr int kBarker7[7] = {1, 1, 1, 0, 0, 1, 0};

struct ZigfiConfig {
  /// Window length; one payload bit (or preamble chip) per window.
  Duration window = Duration::from_ms(16);
  /// Payload bits per message (a minimal "channel request" datagram).
  int payload_bits = 8;
  /// ZigBee transmit power for the modulated packets.
  double tx_power_dbm = 0.0;
  /// Per-window packet payload (same role as BiCord's control packets).
  std::uint32_t packet_bytes = 120;
  /// Fraction of a window's CSI samples that must be "high" to read a 1.
  double decision_ratio = 0.25;
};

/// One-directional ZigFi-style CTC link from a ZigBee MAC to a Wi-Fi MAC's
/// CSI stream. Drives the full pipeline: preamble, payload, window-energy
/// decoding with majority decisions, retransmission on decode failure.
class ZigfiCtcLink {
 public:
  /// Called when a message decodes; the argument is the decoded byte and
  /// the end-to-end latency from transmission start.
  using MessageCallback = std::function<void(std::uint8_t, Duration)>;

  ZigfiCtcLink(zigbee::ZigbeeMac& sender, wifi::WifiMac& receiver,
               csi::CsiModelParams csi_params, ZigfiConfig config = ZigfiConfig{});

  /// Transmits one message (retries until decoded or `max_attempts`).
  void send(std::uint8_t message, int max_attempts = 5);
  void set_message_callback(MessageCallback cb) { callback_ = std::move(cb); }

  [[nodiscard]] bool busy() const { return sending_; }
  [[nodiscard]] std::uint64_t windows_transmitted() const { return windows_tx_; }
  [[nodiscard]] std::uint64_t messages_decoded() const { return decoded_; }
  [[nodiscard]] std::uint64_t attempts_used() const { return attempts_used_; }
  /// Synchronisation cost alone: preamble chips * window.
  [[nodiscard]] Duration sync_duration() const {
    return config_.window * 7;
  }

 private:
  void start_attempt();
  void send_window(std::size_t index);
  void finish_window();
  [[nodiscard]] std::vector<int> frame_bits(std::uint8_t message) const;
  void decode();

  zigbee::ZigbeeMac& sender_;
  wifi::WifiMac& receiver_;
  sim::Simulator& sim_;
  ZigfiConfig config_;
  csi::CsiStream csi_;

  // Sender state.
  bool sending_ = false;
  std::uint8_t message_ = 0;
  int attempts_left_ = 0;
  std::vector<int> bits_;
  std::size_t bit_index_ = 0;
  TimePoint message_start_;

  // Receiver state: per-window high-sample counts.
  std::vector<int> window_high_;
  std::vector<int> window_total_;
  TimePoint window_origin_;

  MessageCallback callback_;
  std::uint64_t windows_tx_ = 0;
  std::uint64_t decoded_ = 0;
  std::uint64_t attempts_used_ = 0;
};

struct FreeBeeConfig {
  /// Beacon interval (FreeBee piggybacks on periodic beacons).
  Duration beacon_interval = Duration::from_ms(100);
  /// Timing-shift granularity conveying one symbol.
  Duration shift_unit = Duration::from_us(576);
  /// Beacon frame payload.
  std::uint32_t beacon_bytes = 20;
  double tx_power_dbm = 0.0;
  /// Symbols (clean beacons) needed to convey one request message.
  int symbols_per_message = 5;
};

/// FreeBee-style timing-shift CTC. A beacon conveys its symbol only when it
/// does not collide with Wi-Fi activity at the receiver — the paper's
/// "only effective in the presence of a clear channel". Overlap is tracked
/// edge-exactly via a medium listener.
class FreeBeeCtcLink final : public phy::MediumListener {
 public:
  using MessageCallback = std::function<void(Duration)>;

  FreeBeeCtcLink(zigbee::ZigbeeMac& sender, wifi::WifiMac& receiver);
  FreeBeeCtcLink(zigbee::ZigbeeMac& sender, wifi::WifiMac& receiver,
                 FreeBeeConfig config);
  ~FreeBeeCtcLink();

  FreeBeeCtcLink(const FreeBeeCtcLink&) = delete;
  FreeBeeCtcLink& operator=(const FreeBeeCtcLink&) = delete;

  // phy::MediumListener — counts Wi-Fi activity overlapping a beacon.
  void on_tx_start(const phy::ActiveTransmission& tx) override;
  void on_tx_end(const phy::ActiveTransmission& tx) override;

  /// Starts conveying one message; completes after `symbols_per_message`
  /// beacons arrive clean.
  void send();
  void set_message_callback(MessageCallback cb) { callback_ = std::move(cb); }

  [[nodiscard]] bool busy() const { return sending_; }
  [[nodiscard]] std::uint64_t beacons_sent() const { return beacons_; }
  [[nodiscard]] std::uint64_t beacons_clean() const { return clean_; }

 private:
  void beacon_tick();

  zigbee::ZigbeeMac& sender_;
  wifi::WifiMac& receiver_;
  sim::Simulator& sim_;
  FreeBeeConfig config_;
  Rng rng_;

  bool sending_ = false;
  bool beacon_in_flight_ = false;
  int wifi_overlaps_ = 0;
  int symbols_received_ = 0;
  TimePoint message_start_;
  sim::EventId event_ = sim::kInvalidEventId;

  MessageCallback callback_;
  std::uint64_t beacons_ = 0;
  std::uint64_t clean_ = 0;
};

}  // namespace bicord::ctc
