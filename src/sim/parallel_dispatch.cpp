#include "sim/parallel_dispatch.hpp"

#include <algorithm>
#include <stdexcept>
#include <string>
#include <utility>

namespace bicord::sim {
namespace {

// Executing-lane context. Thread-locals (not members) so nested dispatchers
// and pool reuse across dispatchers stay well-defined.
struct LaneContext {
  const ParallelDispatcher* dispatcher = nullptr;
  ShardId shard = ParallelDispatcher::kBarrierShard;
  void* lane = nullptr;
};
thread_local LaneContext tl_ctx;

}  // namespace

// --- WorkerPool -------------------------------------------------------------

WorkerPool::WorkerPool(int threads) : threads_(std::max(1, threads)) {
  workers_.reserve(static_cast<std::size_t>(threads_ - 1));
  for (int i = 1; i < threads_; ++i) {
    // bicord-lint: allow(thread-outside-pool) — this *is* the worker pool.
    workers_.emplace_back([this] { worker_loop(); });
  }
}

WorkerPool::~WorkerPool() {
  {
    std::lock_guard<std::mutex> lk(mu_);
    stop_ = true;
  }
  work_cv_.notify_all();
  for (auto& w : workers_) w.join();
}

void WorkerPool::parallel_for(std::size_t n,
                              const std::function<void(std::size_t)>& fn) {
  if (n == 0) return;
  if (threads_ <= 1 || n == 1) {
    for (std::size_t i = 0; i < n; ++i) fn(i);
    return;
  }
  std::uint64_t batch;
  {
    std::lock_guard<std::mutex> lk(mu_);
    fn_ = &fn;
    batch_n_ = n;
    next_index_ = 0;
    remaining_ = n;
    grain_ = std::max<std::size_t>(
        1, n / (static_cast<std::size_t>(threads_) * 4));
    error_ = nullptr;
    error_index_ = n;
    batch = ++batch_id_;
  }
  work_cv_.notify_all();
  run_indices(batch);
  std::exception_ptr err;
  {
    std::unique_lock<std::mutex> lk(mu_);
    done_cv_.wait(lk, [this] { return remaining_ == 0; });
    fn_ = nullptr;
    err = std::exchange(error_, nullptr);
  }
  if (err) std::rethrow_exception(err);
}

void WorkerPool::run_indices(std::uint64_t batch) {
  for (;;) {
    std::size_t begin;
    std::size_t count;
    {
      std::lock_guard<std::mutex> lk(mu_);
      if (batch_id_ != batch || next_index_ >= batch_n_) return;
      begin = next_index_;
      count = std::min(grain_, batch_n_ - begin);
      next_index_ += count;
    }
    for (std::size_t i = begin; i < begin + count; ++i) {
      try {
        (*fn_)(i);
      } catch (...) {
        std::lock_guard<std::mutex> lk(mu_);
        if (!error_ || i < error_index_) {
          error_ = std::current_exception();
          error_index_ = i;
        }
      }
    }
    bool drained;
    {
      std::lock_guard<std::mutex> lk(mu_);
      remaining_ -= count;
      drained = remaining_ == 0;
    }
    if (drained) done_cv_.notify_all();
  }
}

void WorkerPool::worker_loop() {
  std::uint64_t seen = 0;
  for (;;) {
    std::uint64_t batch;
    {
      std::unique_lock<std::mutex> lk(mu_);
      work_cv_.wait(lk, [&] {
        return stop_ || (batch_id_ != seen && next_index_ < batch_n_);
      });
      if (stop_) return;
      batch = batch_id_;
    }
    run_indices(batch);
    seen = batch;
  }
}

// --- ParallelDispatcher -----------------------------------------------------

ParallelDispatcher::ParallelDispatcher(Simulator& sim, WorkerPool* pool,
                                       Config cfg)
    : sim_(sim),
      pool_(pool),
      cfg_(cfg),
      sim_dispatch_base_(sim.dispatched_events()) {
  if (cfg_.shards < 1) {
    throw std::invalid_argument("ParallelDispatcher: shards must be >= 1");
  }
  if (cfg_.lookahead <= Duration::zero()) {
    throw std::invalid_argument("ParallelDispatcher: lookahead must be > 0");
  }
  lanes_.reserve(static_cast<std::size_t>(cfg_.shards));
  for (int i = 0; i < cfg_.shards; ++i) {
    lanes_.push_back(std::make_unique<Lane>());
    lanes_.back()->now = sim_.now();
  }
}

void ParallelDispatcher::check_shard(ShardId shard) const {
  if (shard < 0 || shard >= cfg_.shards) {
    throw std::out_of_range("ParallelDispatcher: shard " +
                            std::to_string(shard) + " out of range [0, " +
                            std::to_string(cfg_.shards) + ")");
  }
}

void ParallelDispatcher::at(ShardId shard, TimePoint when, EventCallback cb) {
  check_shard(shard);
  if (tl_ctx.dispatcher == this) {
    auto* origin = static_cast<Lane*>(tl_ctx.lane);
    if (shard == tl_ctx.shard) {
      origin->queue.schedule(when, std::move(cb));
    } else {
      origin->outbox.push_back({shard, when, std::move(cb)});
    }
    return;
  }
  lanes_[static_cast<std::size_t>(shard)]->queue.schedule(when, std::move(cb));
}

void ParallelDispatcher::after(ShardId shard, Duration delay,
                               EventCallback cb) {
  at(shard, shard_now() + delay, std::move(cb));
}

void ParallelDispatcher::at_barrier(TimePoint when, EventCallback cb) {
  if (tl_ctx.dispatcher == this) {
    auto* origin = static_cast<Lane*>(tl_ctx.lane);
    origin->outbox.push_back({kBarrierShard, when, std::move(cb)});
    return;
  }
  sim_.at(when, std::move(cb));
}

ShardId ParallelDispatcher::current_shard() const {
  return tl_ctx.dispatcher == this ? tl_ctx.shard : kBarrierShard;
}

TimePoint ParallelDispatcher::shard_now() const {
  if (tl_ctx.dispatcher == this) {
    return static_cast<const Lane*>(tl_ctx.lane)->now;
  }
  return sim_.now();
}

TimePoint ParallelDispatcher::earliest_lane_time() const {
  TimePoint t = TimePoint::max();
  for (const auto& lane : lanes_) {
    if (!lane->queue.empty()) t = std::min(t, lane->queue.next_time());
  }
  return t;
}

bool ParallelDispatcher::lanes_idle() const {
  for (const auto& lane : lanes_) {
    if (!lane->queue.empty()) return false;
  }
  return true;
}

void ParallelDispatcher::run_until(TimePoint deadline) {
  if (in_window_) {
    throw std::logic_error(
        "ParallelDispatcher::run_until: reentered from a lane callback");
  }
  for (;;) {
    const TimePoint t_lane = earliest_lane_time();
    const TimePoint t_sim = sim_.next_event_time();
    if (t_lane > deadline && t_sim > deadline) break;
    if (t_sim <= t_lane) {
      // Serial barrier section: every lane is quiescent; at equal timestamps
      // barrier events run before lane events.
      sim_.run_until(std::min(t_lane, deadline));
      continue;
    }
    // Shard-parallel window over [t_lane, bound).
    TimePoint bound = t_lane + cfg_.lookahead;
    if (t_sim < bound) bound = t_sim;
    if (deadline < TimePoint::max() - Duration::from_us(1)) {
      bound = std::min(bound, deadline + Duration::from_us(1));
    }
    run_window(bound);
  }
  sim_.run_until(deadline);  // park the clock at the deadline
  for (auto& lane : lanes_) lane->now = deadline;
}

void ParallelDispatcher::run_for(Duration d) { run_until(sim_.now() + d); }

void ParallelDispatcher::run_window(TimePoint bound) {
  ++windows_;
  in_window_ = true;
  auto run_lane = [&](std::size_t i) {
    Lane& lane = *lanes_[i];
    tl_ctx = {this, static_cast<ShardId>(i), &lane};
    struct ContextReset {
      ~ContextReset() { tl_ctx = {}; }
    } reset;
    while (!lane.queue.empty() && lane.queue.next_time() < bound) {
      EventQueue::Fired fired = lane.queue.pop();
      lane.now = fired.time;
      ++lane.executed;
      fired.callback();
    }
  };
  try {
    if (pool_ != nullptr && pool_->threads() > 1) {
      pool_->parallel_for(lanes_.size(), run_lane);
    } else {
      for (std::size_t i = 0; i < lanes_.size(); ++i) run_lane(i);
    }
  } catch (...) {
    in_window_ = false;
    commit_outboxes(bound);
    throw;
  }
  in_window_ = false;
  commit_outboxes(bound);
}

void ParallelDispatcher::commit_outboxes(TimePoint bound) {
  // Deterministic merge: origin-shard order, then emission order within the
  // lane. Target lanes tag each commit with their own monotone (time, seq),
  // so downstream execution order is independent of thread interleaving.
  for (auto& lane : lanes_) {
    for (auto& d : lane->outbox) {
      if (d.when < bound) {
        lane->outbox.clear();
        throw std::logic_error(
            "ParallelDispatcher: conservative-lookahead violation: deferred "
            "event at t=" +
            std::to_string(d.when.us()) + "us lands inside the active window "
            "(bound " +
            std::to_string(bound.us()) +
            "us); raise Config.lookahead or route via the owner shard");
      }
      ++deferred_;
      if (d.target == kBarrierShard) {
        sim_.at(d.when, std::move(d.cb));
      } else {
        lanes_[static_cast<std::size_t>(d.target)]->queue.schedule(
            d.when, std::move(d.cb));
      }
    }
    lane->outbox.clear();
  }
}

ParallelDispatcher::Stats ParallelDispatcher::stats() const {
  Stats s;
  s.windows = windows_;
  s.deferred_events = deferred_;
  s.barrier_events = sim_.dispatched_events() - sim_dispatch_base_;
  for (const auto& lane : lanes_) s.sharded_events += lane->executed;
  return s;
}

}  // namespace bicord::sim
