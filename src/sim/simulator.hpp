#pragma once
// The discrete-event simulator: a virtual clock plus the event queue.
//
// Everything in the library that needs to act "later" — frame completions,
// backoff expiry, white-space deadlines, traffic arrivals — schedules a
// callback here. The simulator advances the clock to each event in timestamp
// order; there is no real time anywhere in the library.

#include <cstdint>
#include <functional>

#include "sim/event_queue.hpp"
#include "util/rng.hpp"
#include "util/time.hpp"

namespace bicord::sim {

class Simulator {
 public:
  /// `seed` drives the root RNG from which all per-device streams split.
  explicit Simulator(std::uint64_t seed = 1);

  Simulator(const Simulator&) = delete;
  Simulator& operator=(const Simulator&) = delete;

  [[nodiscard]] TimePoint now() const { return now_; }
  [[nodiscard]] Rng& rng() { return rng_; }
  [[nodiscard]] std::uint64_t seed() const { return seed_; }

  /// Schedules `cb` at absolute time `when` (must be >= now()).
  EventId at(TimePoint when, EventCallback cb);
  /// Schedules `cb` after `delay` (must be >= 0).
  EventId after(Duration delay, EventCallback cb);
  /// Schedules `cb` to fire first after `initial_delay` and then every
  /// `period`, reusing one queue slot across ticks (the allocation-free
  /// repeating-timer primitive; PeriodicTask wraps it). The event re-arms
  /// *after* each tick returns, so same-instant events the tick scheduled
  /// fire first.
  EventId every(Duration initial_delay, Duration period, EventCallback cb);
  /// Changes a periodic event's period, effective at the next re-arm.
  bool set_event_period(EventId id, Duration period);
  /// Cancels a pending event; false if it already fired or was cancelled.
  /// Cancelling a periodic event works from inside its own tick, too.
  bool cancel(EventId id);

  /// Runs events until the queue empties or the clock would pass `deadline`.
  /// The clock is left at min(deadline, time of last event).
  void run_until(TimePoint deadline);
  /// Runs for `d` simulated time from now().
  void run_for(Duration d);
  /// Runs until the event queue is empty.
  void run_all();
  /// Fires exactly one event if any is pending. Returns false when idle.
  bool step();

  [[nodiscard]] std::size_t pending_events() const { return queue_.size(); }
  [[nodiscard]] std::uint64_t dispatched_events() const { return dispatched_; }
  /// Time of the earliest pending event, or TimePoint::max() when idle
  /// (ParallelDispatcher uses this to place window barriers).
  [[nodiscard]] TimePoint next_event_time() const {
    return queue_.empty() ? TimePoint::max() : queue_.next_time();
  }

 private:
  TimePoint now_;
  EventQueue queue_;
  Rng rng_;
  std::uint64_t seed_;
  std::uint64_t dispatched_ = 0;
};

/// Fires every `period` until stop() — convenient for traffic generators,
/// expiry timers, and samplers. Safe to destroy before the simulator (it
/// cancels its pending event). Built on Simulator::every(), so a running
/// task occupies one reusable queue slot instead of re-scheduling a fresh
/// event per tick.
class PeriodicTask {
 public:
  PeriodicTask(Simulator& sim, Duration period, std::function<void()> tick);
  ~PeriodicTask();

  PeriodicTask(const PeriodicTask&) = delete;
  PeriodicTask& operator=(const PeriodicTask&) = delete;

  void start();
  /// Starts with the first tick after `initial_delay`.
  void start_after(Duration initial_delay);
  void stop();
  [[nodiscard]] bool running() const { return event_ != kInvalidEventId; }
  void set_period(Duration period);
  [[nodiscard]] Duration period() const { return period_; }

 private:
  void arm(Duration delay);

  Simulator& sim_;
  Duration period_;
  std::function<void()> tick_;
  EventId event_ = kInvalidEventId;
};

}  // namespace bicord::sim
