#pragma once
// Conservative time-windowed parallel event dispatch.
//
// A single Simulator dispatches every event on one core. For sharded
// workloads — node populations partitioned by spatial cell (phy::ShardPlan)
// — ParallelDispatcher executes per-shard event lanes in parallel inside a
// lookahead window and commits cross-shard effects through a deterministic
// merge, so per-seed output stays bitwise identical to serial execution (the
// same contract the runner pins for `--jobs` 1 vs 8).
//
// Model:
//   * Each shard owns an EventQueue "lane". Events on a lane may touch only
//     that shard's state; the lane executes in (time, seq) order exactly like
//     the serial simulator.
//   * Barrier-class events — anything touching shared state (the global
//     phy::Medium, grantor election, fault plans) — live in the Simulator's
//     own queue and run serially with every lane quiescent. At equal
//     timestamps barrier events run before lane events.
//   * A window [t_min, bound) runs every lane event strictly before
//     bound = min(t_min + lookahead, next barrier time, deadline + 1us),
//     shard-parallel on the WorkerPool. Scheduling from inside a lane:
//     same-shard goes straight onto the lane (and may still fire within the
//     current window); cross-shard and barrier sends are deferred to the
//     window edge and committed in (origin shard, emission index) order —
//     a fixed order independent of thread interleaving. A deferred send
//     targeting a time inside the active window is a conservative-lookahead
//     violation and throws std::logic_error at commit.
//   * Worker threads never touch the Simulator clock or RNG; lane callbacks
//     read their lane-local clock via shard_now().
//
// With threads=1 (or no pool) the identical algorithm runs lanes
// sequentially in shard order, so 1-vs-N bitwise equality holds by
// construction; the tests pin it anyway.

#include <cstddef>
#include <cstdint>
#include <condition_variable>
#include <exception>
#include <functional>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

#include "sim/event_queue.hpp"
#include "sim/simulator.hpp"
#include "util/time.hpp"

namespace bicord::sim {

/// Persistent fork-join worker pool: `threads - 1` workers plus the calling
/// thread cooperate on parallel_for batches. This and runner::TrialPool are
/// the only places in the library allowed to construct threads (enforced by
/// the `thread-outside-pool` lint rule).
class WorkerPool {
 public:
  /// `threads` >= 1; with 1 every parallel_for runs inline on the caller.
  explicit WorkerPool(int threads);
  ~WorkerPool();

  WorkerPool(const WorkerPool&) = delete;
  WorkerPool& operator=(const WorkerPool&) = delete;

  [[nodiscard]] int threads() const { return threads_; }

  /// Invokes fn(i) once for every i in [0, n), spread across the pool; the
  /// calling thread participates. Blocks until every index has completed.
  /// Indices are claimed in chunks, so fn should tolerate any assignment of
  /// index to thread. If callbacks throw, the exception thrown by the lowest
  /// index is rethrown on the caller after the batch drains (deterministic
  /// regardless of interleaving).
  void parallel_for(std::size_t n, const std::function<void(std::size_t)>& fn);

 private:
  void worker_loop();
  void run_indices(std::uint64_t batch);

  std::mutex mu_;
  std::condition_variable work_cv_;  // workers: a new batch is available
  std::condition_variable done_cv_;  // caller: the batch has drained
  const std::function<void(std::size_t)>* fn_ = nullptr;
  std::size_t batch_n_ = 0;
  std::size_t next_index_ = 0;
  std::size_t remaining_ = 0;
  std::size_t grain_ = 1;
  std::uint64_t batch_id_ = 0;
  bool stop_ = false;
  std::exception_ptr error_;
  std::size_t error_index_ = 0;
  int threads_;
  // bicord-lint: allow(thread-outside-pool) — this *is* the worker pool.
  std::vector<std::thread> workers_;
};

using ShardId = int;

class ParallelDispatcher {
 public:
  /// Pseudo-shard id for barrier-class sends and for current_shard() outside
  /// any lane callback.
  static constexpr ShardId kBarrierShard = -1;

  struct Config {
    int shards = 1;
    /// Conservative lookahead W: a lane event at time t may influence another
    /// shard no earlier than t + W. Must be > 0.
    Duration lookahead = Duration::from_us(100);
  };

  /// `pool` may be null (serial lane execution); the dispatcher does not own
  /// it. `sim` carries the barrier queue, clock, and root RNG.
  ParallelDispatcher(Simulator& sim, WorkerPool* pool, Config cfg);

  ParallelDispatcher(const ParallelDispatcher&) = delete;
  ParallelDispatcher& operator=(const ParallelDispatcher&) = delete;

  // --- scheduling ----------------------------------------------------------

  /// Schedules `cb` on `shard`'s lane at absolute time `when`. From inside a
  /// lane callback: same-shard sends apply immediately (and may still fire in
  /// the current window); cross-shard sends are deferred to the window edge
  /// and must satisfy `when >=` the window bound (lookahead), else
  /// std::logic_error at commit. From outside a window they apply
  /// immediately.
  void at(ShardId shard, TimePoint when, EventCallback cb);
  /// after() resolves `delay` against shard_now() — the lane clock inside a
  /// lane callback, the simulator clock outside.
  void after(ShardId shard, Duration delay, EventCallback cb);
  /// Schedules a barrier-class event through the Simulator's own queue; it
  /// runs serially with every lane quiescent. Deferred like a cross-shard
  /// send when called from inside a lane.
  void at_barrier(TimePoint when, EventCallback cb);

  // --- lane context --------------------------------------------------------

  /// Shard whose lane callback is executing on this thread, or kBarrierShard.
  [[nodiscard]] ShardId current_shard() const;
  /// Lane-local clock inside a lane callback; Simulator::now() otherwise.
  [[nodiscard]] TimePoint shard_now() const;

  // --- execution -----------------------------------------------------------

  /// Runs barrier events and lane events with time <= deadline, alternating
  /// serial barrier sections and shard-parallel windows. Leaves every clock
  /// at deadline.
  void run_until(TimePoint deadline);
  void run_for(Duration d);

  // --- introspection -------------------------------------------------------

  struct Stats {
    std::uint64_t windows = 0;         ///< shard-parallel windows executed
    std::uint64_t sharded_events = 0;  ///< events dispatched on lanes
    std::uint64_t barrier_events = 0;  ///< events the Simulator dispatched
    std::uint64_t deferred_events = 0;  ///< cross-shard/barrier commits
  };
  [[nodiscard]] Stats stats() const;
  [[nodiscard]] const Config& config() const { return cfg_; }
  [[nodiscard]] Simulator& simulator() { return sim_; }
  /// True when no lane holds a pending event (barrier queue not counted).
  [[nodiscard]] bool lanes_idle() const;

 private:
  struct Lane {
    EventQueue queue;
    TimePoint now;  // lane-local clock (time of the event in flight)
    struct Deferred {
      ShardId target = kBarrierShard;
      TimePoint when;
      EventCallback cb;
    };
    std::vector<Deferred> outbox;  // emission order within the window
    std::uint64_t executed = 0;
  };

  void run_window(TimePoint bound);
  void commit_outboxes(TimePoint bound);
  [[nodiscard]] TimePoint earliest_lane_time() const;
  void check_shard(ShardId shard) const;

  Simulator& sim_;
  WorkerPool* pool_;
  Config cfg_;
  std::vector<std::unique_ptr<Lane>> lanes_;
  bool in_window_ = false;
  std::uint64_t windows_ = 0;
  std::uint64_t deferred_ = 0;
  std::uint64_t sim_dispatch_base_;
};

}  // namespace bicord::sim
