#include "sim/event_queue.hpp"

#include <stdexcept>

namespace bicord::sim {

EventId EventQueue::schedule(TimePoint when, EventCallback cb) {
  if (!cb) throw std::invalid_argument("EventQueue::schedule: null callback");
  const EventId id = next_id_++;
  heap_.push(Entry{when, next_seq_++, id, std::move(cb)});
  pending_.insert(id);
  return id;
}

bool EventQueue::cancel(EventId id) {
  // Only ids still awaiting dispatch can be cancelled; ids that already
  // fired (or were cancelled before) are no longer in pending_.
  return pending_.erase(id) > 0;
}

void EventQueue::drop_dead() const {
  while (!heap_.empty() && pending_.count(heap_.top().id) == 0) {
    heap_.pop();
  }
}

TimePoint EventQueue::next_time() const {
  drop_dead();
  if (heap_.empty()) throw std::logic_error("EventQueue::next_time on empty queue");
  return heap_.top().time;
}

EventQueue::Fired EventQueue::pop() {
  drop_dead();
  if (heap_.empty()) throw std::logic_error("EventQueue::pop on empty queue");
  Entry top = heap_.top();
  heap_.pop();
  pending_.erase(top.id);
  return Fired{top.time, top.id, std::move(top.callback)};
}

}  // namespace bicord::sim
