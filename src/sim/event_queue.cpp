#include "sim/event_queue.hpp"

#include <stdexcept>

namespace bicord::sim {

EventId EventQueue::schedule(TimePoint when, EventCallback cb) {
  if (!cb) throw std::invalid_argument("EventQueue::schedule: null callback");
  return enqueue(when, Duration::zero(), std::move(cb));
}

EventId EventQueue::schedule_periodic(TimePoint first, Duration period,
                                      EventCallback cb) {
  if (!cb) throw std::invalid_argument("EventQueue::schedule_periodic: null callback");
  if (period <= Duration::zero()) {
    throw std::invalid_argument("EventQueue::schedule_periodic: period must be positive");
  }
  return enqueue(first, period, std::move(cb));
}

EventId EventQueue::enqueue(TimePoint when, Duration period, EventCallback&& cb) {
  if (next_seq_ >= kMaxSeq) {
    throw std::length_error("EventQueue: sequence number space exhausted");
  }
  const std::uint32_t idx = acquire_slot();
  Slot& s = slots_[idx];
  s.callback = std::move(cb);
  s.time = when;
  s.period = period;
  s.seq = next_seq_++;
  s.state = SlotState::Queued;
  ++live_;
  heap_push(make_entry(when, s.seq, idx));
  return encode(idx, s.generation);
}

bool EventQueue::set_period(EventId id, Duration period) {
  if (period <= Duration::zero()) {
    throw std::invalid_argument("EventQueue::set_period: period must be positive");
  }
  const std::uint64_t raw = (id >> 32);
  if (raw == 0 || raw > slots_.size()) return false;
  Slot& s = slots_[static_cast<std::uint32_t>(raw - 1)];
  if (s.generation != static_cast<std::uint32_t>(id)) return false;
  if (s.state != SlotState::Queued && s.state != SlotState::Executing) return false;
  if (s.period <= Duration::zero()) return false;  // one-shot
  s.period = period;
  return true;
}

bool EventQueue::cancel(EventId id) {
  const std::uint64_t raw = (id >> 32);
  if (raw == 0 || raw > slots_.size()) return false;
  const auto idx = static_cast<std::uint32_t>(raw - 1);
  Slot& s = slots_[idx];
  if (s.generation != static_cast<std::uint32_t>(id)) return false;
  switch (s.state) {
    case SlotState::Queued:
      // Lazy deletion: the heap entry stays until pop or compaction, but the
      // callback dies now so captured resources are released eagerly.
      s.callback.reset();
      s.state = SlotState::Dead;
      --live_;
      ++dead_;
      maybe_compact();
      return true;
    case SlotState::Executing:
      // Periodic event cancelling itself from inside its own tick: the
      // callback is running right now, so destruction is deferred to the
      // trampoline (run_periodic) once the tick returns. It stops being
      // live now — it will never fire again.
      s.state = SlotState::ExecCancelled;
      --live_;
      return true;
    default:
      return false;
  }
}

std::uint32_t EventQueue::acquire_slot() {
  if (free_head_ != kNoSlot) {
    const std::uint32_t idx = free_head_;
    free_head_ = slots_[idx].next_free;
    return idx;
  }
  if (slots_.size() > kSlotMask) {
    throw std::length_error("EventQueue: more than 2^20 simultaneous events");
  }
  slots_.emplace_back();
  return static_cast<std::uint32_t>(slots_.size() - 1);
}

void EventQueue::release_slot(std::uint32_t idx) {
  Slot& s = slots_[idx];
  s.callback.reset();
  ++s.generation;  // invalidate outstanding ids
  s.state = SlotState::Free;
  s.next_free = free_head_;
  free_head_ = idx;
}

void EventQueue::heap_push(HeapEntry entry) {
  heap_.push_back(entry);
  std::size_t i = heap_.size() - 1;
  while (i > 0) {
    const std::size_t parent = (i - 1) / 4;
    if (!before(entry, heap_[parent])) break;
    heap_[i] = heap_[parent];
    i = parent;
  }
  heap_[i] = entry;
}

void EventQueue::sift_down(std::size_t i) {
  const std::size_t n = heap_.size();
  const HeapEntry v = heap_[i];
  for (;;) {
    const std::size_t c0 = i * 4 + 1;
    if (c0 >= n) break;
    std::size_t best;
    if (c0 + 4 <= n) {
      // Full node: pairwise min tree. The three selects are data-independent
      // (conditional moves), where a sequential "track the min" loop branches
      // on random keys and mispredicts roughly every other compare.
      const std::size_t a = before(heap_[c0 + 1], heap_[c0]) ? c0 + 1 : c0;
      const std::size_t b = before(heap_[c0 + 3], heap_[c0 + 2]) ? c0 + 3 : c0 + 2;
      best = before(heap_[b], heap_[a]) ? b : a;
    } else {
      best = c0;
      for (std::size_t c = c0 + 1; c < n; ++c) {
        if (before(heap_[c], heap_[best])) best = c;
      }
    }
    if (!before(heap_[best], v)) break;
    heap_[i] = heap_[best];
    i = best;
  }
  heap_[i] = v;
}

void EventQueue::heap_pop_root() {
  heap_[0] = heap_.back();
  heap_.pop_back();
  if (!heap_.empty()) sift_down(0);
}

void EventQueue::prune_dead_top() const {
  auto* self = const_cast<EventQueue*>(this);
  while (!heap_.empty()) {
    const auto idx = static_cast<std::uint32_t>(heap_[0].seq_slot & kSlotMask);
    if (slots_[idx].state != SlotState::Dead) break;
    self->heap_pop_root();
    self->release_slot(idx);
    --dead_;
  }
}

void EventQueue::maybe_compact() {
  if (heap_.size() < kCompactMinHeap || dead_ * 2 <= heap_.size()) return;
  std::size_t out = 0;
  for (std::size_t i = 0; i < heap_.size(); ++i) {
    const HeapEntry entry = heap_[i];
    const auto idx = static_cast<std::uint32_t>(entry.seq_slot & kSlotMask);
    if (slots_[idx].state == SlotState::Dead) {
      release_slot(idx);
    } else {
      heap_[out++] = entry;
    }
  }
  heap_.resize(out);
  dead_ = 0;
  ++compactions_;
  if (out > 1) {
    for (std::size_t i = (out - 2) / 4 + 1; i-- > 0;) sift_down(i);
  }
}

TimePoint EventQueue::next_time() const {
  prune_dead_top();
  if (heap_.empty()) throw std::logic_error("EventQueue::next_time on empty queue");
  return heap_[0].time;
}

EventQueue::Fired EventQueue::pop() {
  prune_dead_top();
  if (heap_.empty()) throw std::logic_error("EventQueue::pop on empty queue");
  const auto idx = static_cast<std::uint32_t>(heap_[0].seq_slot & kSlotMask);
  Fired fired;
  fired.time = heap_[0].time;
  heap_pop_root();
  Slot& s = slots_[idx];
  fired.id = encode(idx, s.generation);
  if (s.period > Duration::zero()) {
    // Keep the slot: the trampoline runs the stored tick and re-arms. The
    // Executing slot still counts as live — empty()/size() include the
    // currently-dispatching periodic event until it is cancelled.
    s.state = SlotState::Executing;
    fired.callback = EventCallback([this, idx] { run_periodic(idx); });
  } else {
    --live_;
    fired.callback = std::move(s.callback);
    release_slot(idx);
  }
  return fired;
}

void EventQueue::run_periodic(std::uint32_t idx) {
  // The slot cannot be freed or reused while Executing (cancel defers to us),
  // so `idx` stays valid — but the Slot *object* does not: if the tick
  // schedules events and grows the slab, every Slot is move-relocated and the
  // old storage freed. The tick therefore runs from a local, never in place.
  EventCallback cb = std::move(slots_[idx].callback);
  // If the tick throws, drop the event instead of wedging the slot in
  // Executing forever: release it and, unless the tick already cancelled
  // itself (which decremented live_), fix the live count.
  struct UnwindGuard {
    EventQueue* q;
    std::uint32_t idx;
    ~UnwindGuard() {
      if (q == nullptr) return;
      if (q->slots_[idx].state == SlotState::Executing) --q->live_;
      q->release_slot(idx);
    }
  } guard{this, idx};
  cb();
  Slot* s = &slots_[idx];  // re-fetch: the tick may have reallocated slots_
  if (s->state == SlotState::Executing) {
    // Re-arm after the tick, with a fresh seq: events the tick scheduled at
    // the next firing instant stay ahead of it, matching the ordering of a
    // callback that re-schedules itself. heap_push goes first — it can throw
    // and must do so while the guard still sees an Executing slot — then the
    // remaining updates are noexcept.
    if (next_seq_ >= kMaxSeq) {
      throw std::length_error("EventQueue: sequence number space exhausted");
    }
    const TimePoint next = s->time + s->period;
    heap_push(make_entry(next, next_seq_, idx));
    s->time = next;
    s->seq = next_seq_++;
    s->state = SlotState::Queued;
    s->callback = std::move(cb);
  } else {  // ExecCancelled: cancelled from inside its own tick
    release_slot(idx);
  }
  guard.q = nullptr;
}

}  // namespace bicord::sim
