#pragma once
// Small-buffer callback type for the simulation kernel's hot path.
//
// Every scheduled event stores one callable. std::function pays a heap
// allocation whenever the capture outgrows its (implementation-defined,
// typically 16-32 byte) inline buffer, and the old EventQueue additionally
// copied the callable out of priority_queue::top() on every pop().
// InlineCallback fixes both: a 64-byte inline buffer absorbs every capture
// the library schedules today, the type is move-only so the queue can never
// silently copy it, and the rare oversized capture falls back to a single
// counted heap allocation (see heap_allocation_count(), which the bench
// harness uses to assert the hot path stays allocation-free).

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <cstring>
#include <new>
#include <type_traits>
#include <utility>

namespace bicord::sim {

namespace detail {
/// Relaxed counter of InlineCallback heap fallbacks (large captures only).
/// Atomic because parallel trial runners build simulators on worker threads.
inline std::atomic<std::uint64_t>& callback_heap_allocs() {
  static std::atomic<std::uint64_t> count{0};
  return count;
}
}  // namespace detail

class InlineCallback {
 public:
  /// Captures up to this many bytes stay inline; larger ones heap-allocate.
  static constexpr std::size_t kInlineSize = 64;
  static constexpr std::size_t kInlineAlign = alignof(std::max_align_t);

  InlineCallback() = default;
  InlineCallback(std::nullptr_t) {}  // NOLINT(google-explicit-constructor)

  /// Wraps any void() callable. A callable that is itself testable-for-null
  /// (function pointer, std::function) and empty yields a null wrapper, so
  /// `EventQueue::schedule(t, std::function<void()>{})` still fails loudly.
  template <typename F,
            typename D = std::decay_t<F>,
            typename = std::enable_if_t<!std::is_same_v<D, InlineCallback> &&
                                        !std::is_same_v<D, std::nullptr_t> &&
                                        std::is_invocable_r_v<void, D&>>>
  InlineCallback(F&& f) {  // NOLINT(google-explicit-constructor)
    if constexpr (std::is_constructible_v<bool, const D&>) {
      if (!static_cast<bool>(f)) return;  // empty function object -> null
    }
    if constexpr (sizeof(D) <= kInlineSize && alignof(D) <= kInlineAlign &&
                  std::is_nothrow_move_constructible_v<D>) {
      ::new (static_cast<void*>(buf_)) D(std::forward<F>(f));
      // Trivially relocatable AND trivially destructible captures (pointers +
      // PODs — the kernel's usual case) are flagged in the tag bit: moves are
      // a plain memcpy and reset() skips the destroy call, with no indirect
      // load to find that out.
      constexpr bool trivial =
          std::is_trivially_copyable_v<D> && std::is_trivially_destructible_v<D>;
      bits_ = reinterpret_cast<std::uintptr_t>(&inline_ops<D>) |
              static_cast<std::uintptr_t>(trivial);
    } else {
      auto* p = new D(std::forward<F>(f));
      detail::callback_heap_allocs().fetch_add(1, std::memory_order_relaxed);
      ::new (static_cast<void*>(buf_)) D*(p);
      bits_ = reinterpret_cast<std::uintptr_t>(&heap_ops<D>);
    }
  }

  InlineCallback(InlineCallback&& o) noexcept : bits_(o.bits_) {
    if (bits_ != 0) {
      relocate_from(o);
      o.bits_ = 0;
    }
  }

  InlineCallback& operator=(InlineCallback&& o) noexcept {
    if (this != &o) {
      reset();
      bits_ = o.bits_;
      if (bits_ != 0) {
        relocate_from(o);
        o.bits_ = 0;
      }
    }
    return *this;
  }

  InlineCallback(const InlineCallback&) = delete;
  InlineCallback& operator=(const InlineCallback&) = delete;

  ~InlineCallback() { reset(); }

  void reset() noexcept {
    if (bits_ != 0) {
      if ((bits_ & kTrivialBit) == 0) ops()->destroy(buf_);
      bits_ = 0;
    }
  }

  [[nodiscard]] explicit operator bool() const { return bits_ != 0; }

  void operator()() { ops()->invoke(buf_); }

  /// Total heap fallbacks since process start (bench counter; see header).
  [[nodiscard]] static std::uint64_t heap_allocation_count() {
    return detail::callback_heap_allocs().load(std::memory_order_relaxed);
  }

 private:
  struct Ops {
    void (*invoke)(void*);
    void (*relocate)(void* dst, void* src) noexcept;  // move into dst, kill src
    void (*destroy)(void*) noexcept;
  };

  /// The vtable pointer carries the "trivially relocatable + destructible"
  /// flag in its low bit (Ops objects are 8-byte aligned), so the move and
  /// reset fast paths branch on a register value instead of chasing the
  /// pointer for a flag.
  static constexpr std::uintptr_t kTrivialBit = 1;

  [[nodiscard]] const Ops* ops() const {
    return reinterpret_cast<const Ops*>(bits_ & ~kTrivialBit);
  }

  /// bits_ must already equal o.bits_ (non-zero); o still owns its value.
  void relocate_from(InlineCallback& o) noexcept {
    if ((bits_ & kTrivialBit) != 0) {
      std::memcpy(buf_, o.buf_, kInlineSize);
    } else {
      ops()->relocate(buf_, o.buf_);
    }
  }

  template <typename F>
  static constexpr Ops inline_ops{
      [](void* p) { (*std::launder(reinterpret_cast<F*>(p)))(); },
      [](void* dst, void* src) noexcept {
        F* s = std::launder(reinterpret_cast<F*>(src));
        ::new (dst) F(std::move(*s));
        s->~F();
      },
      [](void* p) noexcept { std::launder(reinterpret_cast<F*>(p))->~F(); }};

  template <typename F>
  static constexpr Ops heap_ops{
      [](void* p) { (**std::launder(reinterpret_cast<F**>(p)))(); },
      [](void* dst, void* src) noexcept {
        ::new (dst) F*(*std::launder(reinterpret_cast<F**>(src)));
      },
      // The owned pointer must be deleted, so heap callbacks never set the
      // trivial tag bit.
      [](void* p) noexcept { delete *std::launder(reinterpret_cast<F**>(p)); }};

  std::uintptr_t bits_ = 0;
  alignas(kInlineAlign) unsigned char buf_[kInlineSize];
};

}  // namespace bicord::sim
