#include "sim/simulator.hpp"

#include <stdexcept>

namespace bicord::sim {

Simulator::Simulator(std::uint64_t seed) : rng_(seed), seed_(seed) {}

EventId Simulator::at(TimePoint when, EventCallback cb) {
  if (when < now_) throw std::invalid_argument("Simulator::at: time in the past");
  return queue_.schedule(when, std::move(cb));
}

EventId Simulator::after(Duration delay, EventCallback cb) {
  if (delay < Duration::zero()) {
    throw std::invalid_argument("Simulator::after: negative delay");
  }
  return queue_.schedule(now_ + delay, std::move(cb));
}

EventId Simulator::every(Duration initial_delay, Duration period, EventCallback cb) {
  if (initial_delay < Duration::zero()) {
    throw std::invalid_argument("Simulator::every: negative initial delay");
  }
  return queue_.schedule_periodic(now_ + initial_delay, period, std::move(cb));
}

bool Simulator::set_event_period(EventId id, Duration period) {
  return queue_.set_period(id, period);
}

bool Simulator::cancel(EventId id) { return queue_.cancel(id); }

void Simulator::run_until(TimePoint deadline) {
  while (!queue_.empty() && queue_.next_time() <= deadline) {
    auto fired = queue_.pop();
    now_ = fired.time;
    ++dispatched_;
    fired.callback();
  }
  if (now_ < deadline) now_ = deadline;
}

void Simulator::run_for(Duration d) { run_until(now_ + d); }

void Simulator::run_all() {
  while (step()) {
  }
}

bool Simulator::step() {
  if (queue_.empty()) return false;
  auto fired = queue_.pop();
  now_ = fired.time;
  ++dispatched_;
  fired.callback();
  return true;
}

PeriodicTask::PeriodicTask(Simulator& sim, Duration period, std::function<void()> tick)
    : sim_(sim), period_(period), tick_(std::move(tick)) {
  if (period_ <= Duration::zero()) {
    throw std::invalid_argument("PeriodicTask: period must be positive");
  }
  if (!tick_) throw std::invalid_argument("PeriodicTask: null tick");
}

PeriodicTask::~PeriodicTask() { stop(); }

void PeriodicTask::start() { start_after(period_); }

void PeriodicTask::start_after(Duration initial_delay) {
  stop();
  arm(initial_delay);
}

void PeriodicTask::stop() {
  if (event_ != kInvalidEventId) {
    sim_.cancel(event_);
    event_ = kInvalidEventId;
  }
}

void PeriodicTask::set_period(Duration period) {
  if (period <= Duration::zero()) {
    throw std::invalid_argument("PeriodicTask::set_period: period must be positive");
  }
  period_ = period;
  // The already-armed tick keeps its time; the new period applies from the
  // next re-arm (same semantics as the old self-rescheduling chain).
  if (event_ != kInvalidEventId) sim_.set_event_period(event_, period_);
}

void PeriodicTask::arm(Duration delay) {
  event_ = sim_.every(delay, period_, [this] { tick_(); });
}

}  // namespace bicord::sim
